(* Emit the bench trajectory for this PR: a validated JSON file
   (schema scs.bench.trajectory/1, see docs/metrics.md) with one record
   per (workload, n) cell, measured by the obs sink via Obs_run.

   Usage:
     dune exec bench/emit_json.exe -- [-o FILE] [--run ID] [--seed S] [--runs K] [--trials T]
     dune exec bench/emit_json.exe -- --check FILE   # validate only (CI smoke)

   The committed BENCH_5.json at the repo root is produced by the
   default invocation:
     dune exec bench/emit_json.exe -- -o BENCH_5.json

   Each cell is measured [trials] times and the trial with the highest
   schedules_per_sec is kept: the recorded metrics (p50/p99 steps, max
   interval contention) are deterministic for a fixed seed, so trials
   differ only in wall-clock throughput, and best-of-T filters
   scheduler/frequency noise out of the committed numbers. *)

open Scs_workload
open Scs_obs

let cells =
  (* workloads x process counts covered by the trajectory; chosen to
     exercise both contention classes (interval: split, step: bakery)
     plus the composed speculative TAS the paper centres on *)
  [
    (Obs_run.A1, [ 2; 4; 8 ]);
    (Obs_run.Tas Tas_run.Composed, [ 2; 4; 8 ]);
    (Obs_run.Tas Tas_run.Solo_fast, [ 2; 4; 8 ]);
    (Obs_run.Cons Cons_run.Split, [ 2; 4; 8 ]);
    (Obs_run.Cons Cons_run.Bakery, [ 2; 4; 8 ]);
  ]

(* parallel-generation cells: the composed speculative TAS again with
   the batch fanned across OCaml domains (Obs_run.measure
   ~gen_domains). Recorded under a "+genG" workload suffix so the
   single-domain rows above stay comparable across PRs. *)
let gen_cells = [ (Obs_run.Tas Tas_run.Composed, [ 2; 4; 8 ], [ 2; 4 ]) ]

let best_record ~trials ~runs ~seed ~gen_domains target ~n =
  let rec go i best =
    if i >= trials then best
    else
      let r =
        Obs_run.to_record (Obs_run.measure ~runs ~seed ~gen_domains target ~n)
      in
      let best =
        match best with
        | Some b
          when b.Trajectory.schedules_per_sec >= r.Trajectory.schedules_per_sec
          ->
            Some b
        | _ -> Some r
      in
      go (i + 1) best
  in
  match go 0 None with
  | Some r -> r
  | None -> invalid_arg "emit_json: --trials must be >= 1"

let emit ~out ~run ~seed ~runs ~trials =
  let cell target ~n ~gen_domains =
    let r = best_record ~trials ~runs ~seed ~gen_domains target ~n in
    let r =
      if gen_domains = 1 then r
      else
        {
          r with
          Trajectory.workload =
            Printf.sprintf "%s+gen%d" (Obs_run.target_name target) gen_domains;
        }
    in
    Printf.eprintf "  %-18s n=%d  %.0f schedules/s\n%!" r.Trajectory.workload n
      r.Trajectory.schedules_per_sec;
    r
  in
  let base =
    List.concat_map
      (fun (target, ns) -> List.map (fun n -> cell target ~n ~gen_domains:1) ns)
      cells
  in
  let gen =
    List.concat_map
      (fun (target, ns, gs) ->
        List.concat_map
          (fun g -> List.map (fun n -> cell target ~n ~gen_domains:g) ns)
          gs)
      gen_cells
  in
  let records = base @ gen in
  let t = { Trajectory.run; seed; records } in
  Trajectory.save out t;
  Printf.printf "wrote %s: %d records, schema %s\n" out (List.length records)
    Trajectory.schema_version

let check file =
  match Trajectory.load file with
  | Ok t ->
      let native =
        List.length
          (List.filter (fun r -> r.Trajectory.native <> None) t.Trajectory.records)
      in
      Printf.printf "%s: valid (%s, run %s, %d records%s)\n" file
        Trajectory.schema_version t.Trajectory.run
        (List.length t.Trajectory.records)
        (if native > 0 then Printf.sprintf ", %d native" native else "");
      true
  | Error msg ->
      Printf.eprintf "%s: INVALID: %s\n" file msg;
      false

(* --check with no positional files validates every committed
   trajectory in the working directory, so adding BENCH_<k+1>.json to
   the repo root is automatically covered by the CI smoke. *)
let bench_glob () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 11
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare

let () =
  let out = ref "BENCH_5.json" in
  let run = ref "pr5" in
  let seed = ref 42 in
  let runs = ref 20000 in
  let trials = ref 5 in
  let check_mode = ref false in
  let files = ref [] in
  let spec =
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_5.json)");
      ("--run", Arg.Set_string run, "ID run identifier (default pr5)");
      ("--seed", Arg.Set_int seed, "S root seed (default 42)");
      ("--runs", Arg.Set_int runs, "K simulations per cell (default 20000)");
      ( "--trials",
        Arg.Set_int trials,
        "T trials per cell, best throughput kept (default 5)" );
      ( "--check",
        Arg.Set check_mode,
        " validate trajectory files and exit (positional FILEs; default: every \
         BENCH_*.json in the working directory)" );
    ]
  in
  Arg.parse spec
    (fun a ->
      files := a :: !files)
    "emit_json [-o FILE] [--run ID] [--seed S] [--runs K] [--trials T] | --check [FILE...]";
  if not !check_mode then begin
    (match !files with
    | [] -> ()
    | f :: _ -> raise (Arg.Bad (Printf.sprintf "unexpected argument %s" f)));
    emit ~out:!out ~run:!run ~seed:!seed ~runs:!runs ~trials:!trials
  end
  else begin
    let files = match List.rev !files with [] -> bench_glob () | fs -> fs in
    if files = [] then begin
      Printf.eprintf "--check: no BENCH_*.json files found\n";
      exit 1
    end;
    let ok = List.fold_left (fun acc f -> check f && acc) true files in
    exit (if ok then 0 else 1)
  end
