(* Emit the bench trajectory for this PR: a validated JSON file
   (schema scs.bench.trajectory/1, see docs/metrics.md) with one record
   per (workload, n) cell, measured by the obs sink via Obs_run.

   Usage:
     dune exec bench/emit_json.exe -- [-o FILE] [--run ID] [--seed S] [--runs K] [--trials T]
     dune exec bench/emit_json.exe -- --check FILE   # validate only (CI smoke)

   The committed BENCH_5.json at the repo root is produced by the
   default invocation:
     dune exec bench/emit_json.exe -- -o BENCH_5.json

   Each cell is measured [trials] times and the trial with the highest
   schedules_per_sec is kept: the recorded metrics (p50/p99 steps, max
   interval contention) are deterministic for a fixed seed, so trials
   differ only in wall-clock throughput, and best-of-T filters
   scheduler/frequency noise out of the committed numbers. *)

open Scs_workload
open Scs_obs

let cells =
  (* workloads x process counts covered by the trajectory; chosen to
     exercise both contention classes (interval: split, step: bakery)
     plus the composed speculative TAS the paper centres on *)
  [
    (Obs_run.A1, [ 2; 4; 8 ]);
    (Obs_run.Tas Tas_run.Composed, [ 2; 4; 8 ]);
    (Obs_run.Tas Tas_run.Solo_fast, [ 2; 4; 8 ]);
    (Obs_run.Cons Cons_run.Split, [ 2; 4; 8 ]);
    (Obs_run.Cons Cons_run.Bakery, [ 2; 4; 8 ]);
  ]

(* parallel-generation cells: the composed speculative TAS again with
   the batch fanned across OCaml domains (Obs_run.measure
   ~gen_domains). Recorded under a "+genG" workload suffix so the
   single-domain rows above stay comparable across PRs. *)
let gen_cells = [ (Obs_run.Tas Tas_run.Composed, [ 2; 4; 8 ], [ 2; 4 ]) ]

let best_record ~trials ~runs ~seed ~gen_domains target ~n =
  let rec go i best =
    if i >= trials then best
    else
      let r =
        Obs_run.to_record (Obs_run.measure ~runs ~seed ~gen_domains target ~n)
      in
      let best =
        match best with
        | Some b
          when b.Trajectory.schedules_per_sec >= r.Trajectory.schedules_per_sec
          ->
            Some b
        | _ -> Some r
      in
      go (i + 1) best
  in
  match go 0 None with
  | Some r -> r
  | None -> invalid_arg "emit_json: --trials must be >= 1"

let emit ~out ~run ~seed ~runs ~trials =
  let cell target ~n ~gen_domains =
    let r = best_record ~trials ~runs ~seed ~gen_domains target ~n in
    let r =
      if gen_domains = 1 then r
      else
        {
          r with
          Trajectory.workload =
            Printf.sprintf "%s+gen%d" (Obs_run.target_name target) gen_domains;
        }
    in
    Printf.eprintf "  %-18s n=%d  %.0f schedules/s\n%!" r.Trajectory.workload n
      r.Trajectory.schedules_per_sec;
    r
  in
  let base =
    List.concat_map
      (fun (target, ns) -> List.map (fun n -> cell target ~n ~gen_domains:1) ns)
      cells
  in
  let gen =
    List.concat_map
      (fun (target, ns, gs) ->
        List.concat_map
          (fun g -> List.map (fun n -> cell target ~n ~gen_domains:g) ns)
          gs)
      gen_cells
  in
  let records = base @ gen in
  let t = { Trajectory.run; seed; records } in
  Trajectory.save out t;
  Printf.printf "wrote %s: %d records, schema %s\n" out (List.length records)
    Trajectory.schema_version

let check file =
  match Trajectory.load file with
  | Ok t ->
      Printf.printf "%s: valid (%s, run %s, %d records)\n" file
        Trajectory.schema_version t.Trajectory.run
        (List.length t.Trajectory.records);
      exit 0
  | Error msg ->
      Printf.eprintf "%s: INVALID: %s\n" file msg;
      exit 1

let () =
  let out = ref "BENCH_5.json" in
  let run = ref "pr5" in
  let seed = ref 42 in
  let runs = ref 20000 in
  let trials = ref 5 in
  let check_file = ref None in
  let spec =
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_5.json)");
      ("--run", Arg.Set_string run, "ID run identifier (default pr5)");
      ("--seed", Arg.Set_int seed, "S root seed (default 42)");
      ("--runs", Arg.Set_int runs, "K simulations per cell (default 20000)");
      ( "--trials",
        Arg.Set_int trials,
        "T trials per cell, best throughput kept (default 5)" );
      ( "--check",
        Arg.String (fun f -> check_file := Some f),
        "FILE validate an existing trajectory file and exit" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %s" a)))
    "emit_json [-o FILE] [--run ID] [--seed S] [--runs K] [--trials T] | --check FILE";
  match !check_file with
  | Some f -> check f
  | None -> emit ~out:!out ~run:!run ~seed:!seed ~runs:!runs ~trials:!trials
