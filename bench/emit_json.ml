(* Emit the bench trajectory for this PR: a validated JSON file
   (schema scs.bench.trajectory/1, see docs/metrics.md) with one record
   per (workload, n) cell, measured by the obs sink via Obs_run.

   Usage:
     dune exec bench/emit_json.exe -- [-o FILE] [--run ID] [--seed S] [--runs K]
     dune exec bench/emit_json.exe -- --check FILE   # validate only (CI smoke)

   The committed BENCH_4.json at the repo root is produced by the
   default invocation:
     dune exec bench/emit_json.exe -- -o BENCH_4.json *)

open Scs_workload
open Scs_obs

let cells =
  (* workloads x process counts covered by the trajectory; chosen to
     exercise both contention classes (interval: split, step: bakery)
     plus the composed speculative TAS the paper centres on *)
  [
    (Obs_run.A1, [ 2; 4; 8 ]);
    (Obs_run.Tas Tas_run.Composed, [ 2; 4; 8 ]);
    (Obs_run.Tas Tas_run.Solo_fast, [ 2; 4; 8 ]);
    (Obs_run.Cons Cons_run.Split, [ 2; 4; 8 ]);
    (Obs_run.Cons Cons_run.Bakery, [ 2; 4; 8 ]);
  ]

let emit ~out ~run ~seed ~runs =
  let records =
    List.concat_map
      (fun (target, ns) ->
        List.map
          (fun n -> Obs_run.to_record (Obs_run.measure ~runs ~seed target ~n))
          ns)
      cells
  in
  let t = { Trajectory.run; seed; records } in
  Trajectory.save out t;
  Printf.printf "wrote %s: %d records, schema %s\n" out (List.length records)
    Trajectory.schema_version

let check file =
  match Trajectory.load file with
  | Ok t ->
      Printf.printf "%s: valid (%s, run %s, %d records)\n" file
        Trajectory.schema_version t.Trajectory.run
        (List.length t.Trajectory.records);
      exit 0
  | Error msg ->
      Printf.eprintf "%s: INVALID: %s\n" file msg;
      exit 1

let () =
  let out = ref "BENCH_4.json" in
  let run = ref "pr4" in
  let seed = ref 42 in
  let runs = ref 200 in
  let check_file = ref None in
  let spec =
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_4.json)");
      ("--run", Arg.Set_string run, "ID run identifier (default pr4)");
      ("--seed", Arg.Set_int seed, "S root seed (default 42)");
      ("--runs", Arg.Set_int runs, "K simulations per cell (default 200)");
      ( "--check",
        Arg.String (fun f -> check_file := Some f),
        "FILE validate an existing trajectory file and exit" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %s" a)))
    "emit_json [-o FILE] [--run ID] [--seed S] [--runs K] | --check FILE";
  match !check_file with
  | Some f -> check f
  | None -> emit ~out:!out ~run:!run ~seed:!seed ~runs:!runs
