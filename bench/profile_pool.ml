(* Decomposition microbenchmark for the pooled measurement engine:
   where does a pooled run's time go (reset / rng chain / bare effect
   loop / obs instrumentation / fiber starts / allocation)?

   Not part of the test or bench suites — run by hand while tuning:
     dune exec bench/profile_pool.exe
   The numbers quoted in EXPERIMENTS.md T14 ("where the time went")
   come from this tool on the dev container. *)

open Scs_sim
open Scs_util
module Obs = Scs_obs.Obs

let time label f =
  let t0 = Unix.gettimeofday () in
  let runs = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-32s %8d runs  %8.0f runs/s  %7.2f us/run\n%!" label runs
    (float_of_int runs /. dt)
    (dt /. float_of_int runs *. 1e6)

let n = 4
let runs = 50_000

let install_spec ~obs sim =
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module OS = Scs_tas.One_shot.Make (P) in
  let os = OS.create ~strict:false ~name:"tas" () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        Obs.op_begin obs ~pid ~obj:0 ~label:"tas";
        (match OS.A1m.apply (OS.a1 os) ~pid None with
        | Scs_composable.Outcome.Commit _ -> ()
        | Scs_composable.Outcome.Abort v -> (
            Obs.abort obs ~pid;
            Obs.handoff obs ~pid ~label:"a1->a2";
            match OS.A2m.apply (OS.a2 os) ~pid (Some v) with
            | Scs_composable.Outcome.Commit _ -> ()
            | Scs_composable.Outcome.Abort _ -> assert false));
        Obs.op_end obs ~pid ~aborted:false)
  done

let () =
  (* A: reset + run_fast, obs enabled, fixed rng stream *)
  let obs = Obs.create ~record_ring:false ~n () in
  let sim = Sim.create ~obs ~n () in
  install_spec ~obs sim;
  Sim.snapshot sim;
  let prng = Rng.create 42 in
  time "A reset+run_fast obs" (fun () ->
      for i = 1 to runs do
        if i > 1 then Sim.reset sim;
        Sim.run_fast sim (Policy.fast_random (Rng.split prng))
      done;
      runs);

  (* B: same, obs disabled *)
  let sim2 = Sim.create ~n () in
  install_spec ~obs:Obs.null sim2;
  Sim.snapshot sim2;
  let prng = Rng.create 42 in
  time "B reset+run_fast no-obs" (fun () ->
      for i = 1 to runs do
        if i > 1 then Sim.reset sim2;
        Sim.run_fast sim2 (Policy.fast_random (Rng.split prng))
      done;
      runs);

  (* C: reset only *)
  time "C reset only" (fun () ->
      for _ = 1 to runs do
        Sim.reset sim2
      done;
      runs);

  (* D: rng chain only (crash draws + seed + rng2 + split) *)
  let prng = Rng.create 42 in
  time "D rng chain only" (fun () ->
      for _ = 1 to runs do
        let rng = Rng.split prng in
        (* crash_prob 0: one bernoulli draw per pid *)
        for _ = 0 to n - 1 do
          ignore (Rng.float rng)
        done;
        let seed = Rng.int rng 0x3FFFFFFF in
        let rng2 = Rng.create seed in
        ignore (Rng.split rng2)
      done;
      runs);

  (* E: full pooled chain incl. drive wrapper *)
  let obs3 = Obs.create ~record_ring:false ~n () in
  let sim3 = Sim.create ~obs:obs3 ~n () in
  install_spec ~obs:obs3 sim3;
  Sim.snapshot sim3;
  let plan = Policy.crash_plan ~n in
  let prng = Rng.create 42 in
  time "E full pooled chain" (fun () ->
      for i = 1 to runs do
        let rng = Rng.split prng in
        for _ = 0 to n - 1 do
          ignore (Rng.float rng)
        done;
        let seed = Rng.int rng 0x3FFFFFFF in
        let rng2 = Rng.create seed in
        let pol_rng = Rng.split rng2 in
        if i > 1 then Sim.reset sim3;
        Policy.arm_crashes plan [];
        try Policy.drive ~crashes:plan sim3 (Policy.fast_random pol_rng)
        with Sim.Livelock _ -> ()
      done;
      runs);

  (* F: fresh sim per run (legacy shape) *)
  let obs4 = Obs.create ~n () in
  let prng = Rng.create 42 in
  time "F fresh create+install+run" (fun () ->
      for _ = 1 to runs do
        let sim = Sim.create ~obs:obs4 ~n () in
        install_spec ~obs:obs4 sim;
        Sim.run_fast sim (Policy.fast_random (Rng.split prng))
      done;
      runs)

(* G/H: separate per-fiber-start cost from per-memory-step cost *)
let () =
  let mk_sim steps_per_fiber =
    let sim = Sim.create ~n () in
    let r = Sim.reg sim ~name:"r" 0 in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          for _ = 1 to steps_per_fiber do
            Sim.write r 1
          done)
    done;
    Sim.snapshot sim;
    sim
  in
  let bench label steps_per_fiber =
    let sim = mk_sim steps_per_fiber in
    let prng = Rng.create 42 in
    time label (fun () ->
        for i = 1 to runs do
          if i > 1 then Sim.reset sim;
          Sim.run_fast sim (Policy.fast_random (Rng.split prng))
        done;
        runs)
  in
  bench "G 4 fibers x 1 step" 1;
  bench "H 4 fibers x 10 steps" 10;
  bench "I 4 fibers x 30 steps" 30

(* J: allocation per run for the pooled speculative chain *)
let () =
  let obs = Obs.create ~record_ring:false ~n () in
  let sim = Sim.create ~obs ~n () in
  install_spec ~obs sim;
  Sim.snapshot sim;
  let prng = Rng.create 42 in
  let w0 = Gc.minor_words () in
  for i = 1 to runs do
    if i > 1 then Sim.reset sim;
    Sim.run_fast sim (Policy.fast_random (Rng.split prng))
  done;
  let w1 = Gc.minor_words () in
  Printf.printf "J alloc/run: %.0f words\n%!" ((w1 -. w0) /. float_of_int runs);
  (* K: trivial workload alloc/run *)
  let sim2 = Sim.create ~n () in
  let r = Sim.reg sim2 ~name:"r" 0 in
  for pid = 0 to n - 1 do
    Sim.spawn sim2 pid (fun () -> Sim.write r 1)
  done;
  Sim.snapshot sim2;
  let prng = Rng.create 42 in
  let w0 = Gc.minor_words () in
  for i = 1 to runs do
    if i > 1 then Sim.reset sim2;
    Sim.run_fast sim2 (Policy.fast_random (Rng.split prng))
  done;
  let w1 = Gc.minor_words () in
  Printf.printf "K alloc/run (4x1 write): %.0f words\n%!" ((w1 -. w0) /. float_of_int runs)
