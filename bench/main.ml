(* The benchmark harness.

   Part 1 replays every experiment of EXPERIMENTS.md (T1–T10, F1, F2):
   deterministic simulator measurements of the complexity quantities the
   paper claims, plus the native-throughput sweep.

   Part 2 runs Bechamel wall-clock microbenchmarks of the native backend —
   one Test.make per table row family — reporting ns/op estimated by OLS.

   Usage: main.exe            run everything
          main.exe T2 F1 ...  run selected experiments only *)

open Bechamel
open Toolkit

(* ---- Part 2: native microbenchmarks ---------------------------------- *)

module P = Scs_prims.Native_prims
module OS = Scs_tas.One_shot.Make (P)
module B = Scs_tas.Baselines.Make (P)
module L = Scs_tas.Locks.Make (P)
module SC = Scs_consensus.Split_consensus.Make (P)
module Sp = Scs_consensus.Splitter.Make (P)

let bench_speculative_cycle ~strict () =
  (* uncontended one-shot win + quiescent reinitialisation: the steady-
     state cost of a long-lived round without preallocating the round
     array (see One_shot.harness_reset) *)
  let os = OS.create ~strict ~name:"b" () in
  Staged.stage (fun () ->
      ignore (OS.test_and_set os ~pid:0);
      OS.harness_reset os)

let bench_hardware_cycle () =
  let hw = B.Hardware.create ~name:"b" () in
  Staged.stage (fun () ->
      match B.Hardware.test_and_set hw ~pid:0 with
      | Scs_spec.Objects.Winner -> B.Hardware.reset hw
      | Scs_spec.Objects.Loser -> ())

let bench_ttas_cycle () =
  let l = L.Ttas.create ~name:"b" () in
  Staged.stage (fun () ->
      L.Ttas.acquire l;
      L.Ttas.release l)

let bench_speculative_lock_cycle () =
  (* 4M rounds preallocated (~0.5 GB would be too much; each round is a
     few words, so 4M ≈ 200 MB is still heavy — bound the bench instead
     with a modest round pool and a modulo guard) *)
  let rounds = 2_000_000 in
  let l = L.Speculative.create ~name:"b" ~rounds () in
  let h = L.Speculative.handle l ~pid:0 in
  let used = ref 0 in
  Staged.stage (fun () ->
      if !used < rounds - 2 then begin
        incr used;
        L.Speculative.acquire h;
        L.Speculative.release h
      end)

let bench_splitter_cycle () =
  let s = Sp.create ~name:"b" () in
  Staged.stage (fun () ->
      ignore (Sp.split s ~pid:0);
      Sp.reset s)

let bench_split_consensus () =
  (* includes instance allocation: a fresh consensus per decision *)
  Staged.stage (fun () ->
      let c = SC.create ~name:"b" () in
      let i = SC.instance c in
      ignore (i.Scs_consensus.Consensus_intf.run ~pid:0 ~old:None 42))

(* One fixed shuffled 40-op queue history (width 6), checked by the seed
   bitmask oracle and by the scalable engine — the microbench view of
   experiment T12's table. *)
let lin_bench_ops =
  lazy
    (Scs_experiments.Exp_t12.queue_history (Scs_util.Rng.create 42) ~size:40 ~width:6)

let bench_lin_ref () =
  let ops = Lazy.force lin_bench_ops in
  Staged.stage (fun () ->
      assert (Scs_history.Linearize_ref.check_operations Scs_spec.Objects.queue ops))

let bench_lin_scalable () =
  let ops = Lazy.force lin_bench_ops in
  Staged.stage (fun () ->
      assert (Scs_history.Linearize.check_operations Scs_spec.Objects.queue ops))

(* The zipfian CDF at a realistic keyspace: a cold build pays one [**]
   per key; the shared table (what every sharded-uc driver instance and
   domain now reuses) amortises it to a hashtable hit. *)
let zipf_keys = 1_000_000

let bench_zipf_cdf_cold () =
  let module Mx = Scs_load.Mix in
  Staged.stage (fun () ->
      ignore (Mx.make_cold ~read_ratio:0.5 ~keys:zipf_keys ~skew:(Mx.Zipfian 0.99)))

let bench_zipf_cdf_shared () =
  let module Mx = Scs_load.Mix in
  (* warm the cache outside the measured closure *)
  ignore (Mx.zipf_cdf ~keys:zipf_keys ~theta:0.99);
  Staged.stage (fun () ->
      ignore (Mx.make ~read_ratio:0.5 ~keys:zipf_keys ~skew:(Mx.Zipfian 0.99)))

let tests () =
  Test.make_grouped ~name:"native"
    [
      Test.make ~name:"F2 speculative tas cycle (uncontended)"
        (bench_speculative_cycle ~strict:false ());
      Test.make ~name:"F2 strict tas cycle (uncontended)"
        (bench_speculative_cycle ~strict:true ());
      Test.make ~name:"F2 hardware tas cycle" (bench_hardware_cycle ());
      Test.make ~name:"F2 ttas lock cycle" (bench_ttas_cycle ());
      Test.make ~name:"F2 speculative lock cycle" (bench_speculative_lock_cycle ());
      Test.make ~name:"T1 splitter split+reset" (bench_splitter_cycle ());
      Test.make ~name:"T3 split-consensus solo decide (incl. alloc)" (bench_split_consensus ());
      Test.make ~name:"T12 lin-check 40-op queue (seed bitmask)" (bench_lin_ref ());
      Test.make ~name:"T12 lin-check 40-op queue (scalable)" (bench_lin_scalable ());
      Test.make ~name:"S1 zipf cdf 1e6 keys (cold build)" (bench_zipf_cdf_cold ());
      Test.make ~name:"S1 zipf cdf 1e6 keys (shared table)" (bench_zipf_cdf_shared ());
    ]

let run_microbenches () =
  Scs_experiments.Exp_common.section "BECHAMEL"
    "native wall-clock microbenchmarks (ns/op, OLS)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ~compaction:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (tests ()) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Scs_util.Table.print ~header:[ "benchmark"; "ns/op" ] rows

(* ---- main -------------------------------------------------------------- *)

let () =
  (match Array.to_list Sys.argv with
  | _ :: (_ :: _ as ids) ->
      List.iter
        (fun id ->
          match Scs_experiments.Registry.find id with
          | Some e -> e.Scs_experiments.Registry.run ()
          | None -> Printf.eprintf "unknown experiment id %s\n" id)
        ids
  | _ ->
      Scs_experiments.Registry.run_all ();
      (try run_microbenches ()
       with e -> Printf.printf "microbenchmarks failed: %s\n" (Printexc.to_string e)));
  print_newline ()
