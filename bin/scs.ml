(* The `scs` command-line interface.

   scs list                          enumerate experiments
   scs experiment T1 [T2 ...]        run experiments by id
   scs simulate --algo=... -n 4 ...  one simulated TAS run with a trace dump
   scs consensus --algo=... -n 4     one simulated consensus run
   scs check --algo=... --seeds 500  randomized safety checking *)

open Cmdliner
open Scs_spec
open Scs_history
open Scs_sim
open Scs_workload

(* repro artifacts land under a user-supplied --out directory that need
   not exist yet *)
let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* ---- shared args ------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n"; "processes" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let tas_algo_arg =
  let algos =
    [
      ("speculative", Tas_run.Composed);
      ("strict", Tas_run.Strict);
      ("solo-fast", Tas_run.Solo_fast);
      ("hardware", Tas_run.Hardware);
      ("tournament", Tas_run.Tournament);
    ]
  in
  Arg.(
    value
    & opt (enum algos) Tas_run.Composed
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"TAS implementation: $(b,speculative) (paper A1∘A2), $(b,strict), \
              $(b,solo-fast), $(b,hardware) or $(b,tournament).")

let policy_arg =
  let policies = [ ("random", `Random); ("sequential", `Sequential); ("solo", `Solo) ] in
  Arg.(
    value
    & opt (enum policies) `Random
    & info [ "policy" ] ~docv:"POLICY" ~doc:"Schedule: $(b,random), $(b,sequential) or $(b,solo).")

let make_policy = function
  | `Random -> Policy.random
  | `Sequential -> fun _ -> Policy.sequential ()
  | `Solo -> fun _ -> Policy.solo 0

let backend_conv =
  let parse s =
    match Scs_prims.Backend.of_string s with
    | Ok Scs_prims.Backend.Native ->
        Error
          (`Msg
             (Printf.sprintf
                "native is not a simulator backend (use `scs load'); valid backends \
                 here: %s"
                (String.concat ", "
                   (List.filter
                      (fun n -> n <> "native")
                      Scs_prims.Backend.valid_names))))
    | Ok b -> Ok b
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Scs_prims.Backend.name b))

let backend_arg =
  Arg.(
    value
    & opt backend_conv Scs_prims.Backend.default
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Simulator primitive backend: $(b,sim-lin) (atomic registers) or \
           $(b,sim-sc)[:LAG] (per-object sequentially-consistent registers that may \
           serve reads up to LAG writes stale; RMW objects stay atomic).")

(* ---- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Scs_experiments.Registry.t) ->
        Printf.printf "%-4s %s\n" e.Scs_experiments.Registry.id e.Scs_experiments.Registry.title)
      Scs_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.")
    Term.(const run $ const ())

(* ---- experiment -------------------------------------------------------- *)

let experiment_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let run ids =
    match ids with
    | [] -> Scs_experiments.Registry.run_all ()
    | ids ->
        List.iter
          (fun id ->
            match Scs_experiments.Registry.find id with
            | Some e -> e.Scs_experiments.Registry.run ()
            | None -> Printf.eprintf "unknown experiment id %s (try `scs list')\n" id)
          ids
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run reproduction experiments by id.")
    Term.(const run $ ids_arg)

(* ---- simulate ----------------------------------------------------------- *)

let show_resp = function Objects.Winner -> "winner" | Objects.Loser -> "loser"

let show_stage = function
  | Some Scs_tas.One_shot.Fast -> "registers"
  | Some Scs_tas.One_shot.Fallback -> "hardware"
  | None -> "-"

let simulate_cmd =
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the shared-memory step trace.")
  in
  let run n seed algo policy backend trace =
    let r = Tas_run.one_shot ~seed ~backend ~n ~algo ~policy:(make_policy policy) () in
    Printf.printf "algorithm: %s, n=%d, seed=%d, backend=%s\n\n" (Tas_run.algo_name algo) n
      seed
      (Scs_prims.Backend.name backend);
    List.iter
      (fun (o : Tas_run.op_record) ->
        Printf.printf "p%-2d -> %-6s via %-9s steps=%-3d rmws=%d raws=%d [%d,%d]\n"
          o.Tas_run.pid (show_resp o.Tas_run.resp) (show_stage o.Tas_run.stage) o.Tas_run.steps
          o.Tas_run.rmws o.Tas_run.raws o.Tas_run.invoke_ts o.Tas_run.resp_ts)
      r.Tas_run.ops;
    let ops = Trace.operations r.Tas_run.outer in
    Printf.printf "\nlinearizable (strict): %b\n" (Tas_lin.check_one_shot ops);
    Printf.printf "safely composable (Definition 2): %b\n"
      (Scs_composable.Tas_interp.is_safely_composable r.Tas_run.outer);
    Printf.printf "total steps: %d, registers: %d, rmw objects: %d\n"
      (Sim.total_steps r.Tas_run.sim) r.Tas_run.registers r.Tas_run.rmw_objects;
    if trace then begin
      print_newline ();
      Array.iter (fun e -> print_endline (Mem_event.to_string e)) r.Tas_run.mem
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one simulated one-shot TAS execution and check it.")
    Term.(const run $ n_arg $ seed_arg $ tas_algo_arg $ policy_arg $ backend_arg $ trace_arg)

(* ---- consensus ---------------------------------------------------------- *)

let consensus_cmd =
  let algo_arg =
    let algos =
      [
        ("split", Cons_run.Split);
        ("bakery", Cons_run.Bakery);
        ("cas", Cons_run.Cas);
        ("chain", Cons_run.Chain3);
      ]
    in
    Arg.(
      value
      & opt (enum algos) Cons_run.Split
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Consensus: $(b,split), $(b,bakery), $(b,cas) or $(b,chain).")
  in
  let run n seed algo policy backend =
    let r = Cons_run.run ~seed ~backend ~n ~algo ~policy:(make_policy policy) () in
    Printf.printf "algorithm: %s, n=%d, seed=%d, backend=%s\n\n" (Cons_run.algo_name algo) n
      seed
      (Scs_prims.Backend.name backend);
    List.iter
      (fun (o : Cons_run.op) ->
        let outcome =
          match o.Cons_run.outcome with
          | Scs_composable.Outcome.Commit (Some d) -> Printf.sprintf "commit %d" d
          | Scs_composable.Outcome.Commit None -> "commit ⊥"
          | Scs_composable.Outcome.Abort (Some w) -> Printf.sprintf "abort (saw %d)" w
          | Scs_composable.Outcome.Abort None -> "abort ⊥"
        in
        Printf.printf "p%-2d proposes %d -> %-16s steps=%d\n" o.Cons_run.pid o.Cons_run.proposal
          outcome o.Cons_run.steps)
      r.Cons_run.ops;
    Printf.printf "\nagreement: %b, validity: %b\n" r.Cons_run.agreement r.Cons_run.validity
  in
  Cmd.v
    (Cmd.info "consensus" ~doc:"Run one simulated abortable-consensus execution.")
    Term.(const run $ n_arg $ seed_arg $ algo_arg $ policy_arg $ backend_arg)

(* ---- check --------------------------------------------------------------- *)

let check_cmd =
  let seeds_arg =
    Arg.(value & opt int 500 & info [ "seeds" ] ~docv:"K" ~doc:"Number of random schedules.")
  in
  let run n algo seeds =
    let failures = ref 0 in
    for seed = 1 to seeds do
      let r = Tas_run.one_shot ~seed ~n ~algo ~policy:Policy.random () in
      let ops = Trace.operations r.Tas_run.outer in
      let strict_ok = Tas_lin.check_one_shot ops in
      let paper_ok = Scs_composable.Tas_interp.is_safely_composable r.Tas_run.outer in
      let winners = List.length (Tas_run.winners r) in
      let ok =
        winners = 1
        && paper_ok
        && (strict_ok || algo = Tas_run.Composed)
        (* the paper variant is only speculatively linearizable: F-1 *)
      in
      if not ok then begin
        incr failures;
        Printf.printf "seed %d: winners=%d strict=%b paper=%b\n" seed winners strict_ok paper_ok
      end
    done;
    Printf.printf "%s: %d/%d schedules failed\n" (Tas_run.algo_name algo) !failures seeds;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Randomized safety checking of a TAS implementation.")
    Term.(const run $ n_arg $ tas_algo_arg $ seeds_arg)

(* ---- explore -------------------------------------------------------------- *)

let explore_cmd =
  let budget_arg =
    Arg.(
      value & opt int 100_000
      & info [ "budget" ] ~docv:"K"
          ~doc:"Maximum number of terminated runs to enumerate.")
  in
  let por_arg =
    Arg.(
      value & flag
      & info [ "por" ]
          ~doc:
            "Enable sleep-set partial-order reduction: explore one representative \
             schedule per class of commuting reorderings.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Fan the exploration out over $(docv) OCaml domains.")
  in
  let stats_flag_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print simulator-pool statistics (fresh creates vs rewind reuses).")
  in
  let run n algo budget por domains backend pool_stats =
    let outcome, bad =
      Tas_run.explore_one_shot ~max_schedules:budget ~por ~domains ~backend ~n ~algo ()
    in
    Printf.printf
      "%s, n=%d, backend=%s: explored %d schedules%s; pruned %d; %d truncated runs; %d \
       turns in %.2fs; non-linearizable: %d\n"
      (Tas_run.algo_name algo) n
      (Scs_prims.Backend.name backend)
      outcome.Explore.schedules
      (if outcome.Explore.truncated then " (budget-truncated)" else " (complete)")
      outcome.Explore.pruned outcome.Explore.truncated_runs outcome.Explore.steps_replayed
      outcome.Explore.wall_s bad;
    if pool_stats then
      Printf.printf "pool: %d fresh simulator(s), %d rewind reuse(s)\n"
        outcome.Explore.sims_created outcome.Explore.sims_reused;
    if bad > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate interleavings of a one-shot TAS run and check strict           linearizability on each (bounded model checking).")
    Term.(
      const run $ n_arg $ tas_algo_arg $ budget_arg $ por_arg $ domains_arg $ backend_arg
      $ stats_flag_arg)

(* ---- fuzz ------------------------------------------------------------------ *)

let print_fuzz_report ?(pool_stats = false) (r : Fuzz.report) =
  let rows =
    List.map
      (fun (s : Fuzz.policy_stats) ->
        [
          s.Fuzz.s_policy;
          string_of_int s.Fuzz.s_runs;
          Printf.sprintf "%.0f" (Fuzz.schedules_per_sec s);
          (* generation and verification throughput, separately: wall
             time spent producing schedules vs CPU time spent in checks *)
          Printf.sprintf "%.0f" (Fuzz.gen_per_sec s);
          Printf.sprintf "%.0f" (Fuzz.check_per_sec s);
          Printf.sprintf "%.0f" s.Fuzz.s_step_p50;
          Printf.sprintf "%.0f" s.Fuzz.s_step_p99;
          string_of_int s.Fuzz.s_max_contention;
          string_of_int s.Fuzz.s_violations;
          string_of_int s.Fuzz.s_skipped;
          string_of_int s.Fuzz.s_checked_large;
          (match s.Fuzz.s_first_failure with
          | Some (run, t) -> Printf.sprintf "run %d (%.1f ms)" run (1000. *. t)
          | None -> "-");
        ])
      r.Fuzz.r_stats
  in
  Scs_util.Table.print
    ~title:(Printf.sprintf "fuzz %s n=%d seed=%d" r.Fuzz.r_workload r.Fuzz.r_n r.Fuzz.r_seed)
    ~header:
      [
        "policy"; "runs"; "sched/s"; "gen/s"; "check/s"; "p50 st"; "p99 st"; "maxC";
        "viol"; "skip"; "large"; "first failure";
      ]
    rows;
  if pool_stats then begin
    let p = r.Fuzz.r_pool in
    Printf.printf
      "pool: %d fresh simulator(s), %d pooled reuse(s), peak %d objects, peak %d turns\n"
      p.Pool.created p.Pool.reused p.Pool.peak_objects p.Pool.peak_turns
  end

let fuzz_cmd =
  let workload_arg =
    Arg.(
      value & opt string "all"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload to fuzz (see $(b,--list-workloads)); $(b,all) fuzzes every workload \
             that is expected to hold.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list-workloads" ] ~doc:"List fuzz workloads and exit.")
  in
  let n_opt_arg =
    Arg.(
      value & opt (some int) None
      & info [ "n"; "processes" ] ~docv:"N" ~doc:"Process count (default: per workload).")
  in
  let runs_arg =
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"K" ~doc:"Schedules per policy.")
  in
  let budget_arg =
    Arg.(
      value & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per policy.")
  in
  let max_viol_arg =
    Arg.(
      value & opt int 1
      & info [ "max-violations" ] ~docv:"M" ~doc:"Stop a workload after $(docv) violations.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for emitted .scsrepro artifacts.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Emit raw failing schedules unshrunk.")
  in
  let check_domains_arg =
    Arg.(
      value & opt int 1
      & info [ "check-domains" ] ~docv:"D"
          ~doc:
            "Verify runs on $(docv) domains in parallel (1 = inline, fully \
             deterministic).")
  in
  let gen_domains_arg =
    Arg.(
      value & opt int 1
      & info [ "gen-domains" ] ~docv:"D"
          ~doc:
            "Generate schedules on $(docv) domains in parallel, each with its own \
             seed stream and pooled simulator (1 = the legacy sequential stream).")
  in
  let stats_flag_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print simulator-pool statistics (fresh creates vs pooled reuses, \
                peak arena sizes) after each report.")
  in
  let policy_arg =
    let portfolio_conv =
      let parse s =
        match Fuzz.portfolio_of_string s with
        | Some p -> Ok (s, p)
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown policy portfolio %S (valid: %s)" s
                    (String.concat ", " Fuzz.portfolio_names)))
      in
      Arg.conv (parse, fun ppf (s, _) -> Format.pp_print_string ppf s)
    in
    Arg.(
      value
      & opt portfolio_conv ("default", Fuzz.default_portfolio)
      & info [ "policy" ] ~docv:"PORTFOLIO"
          ~doc:
            (Printf.sprintf
               "Scheduler-policy portfolio to fuzz under: %s. $(b,crash-recover) \
                injects crashes that usually recover (and sometimes re-crash the \
                recovered incarnation), exploring recover-during-contention \
                interleavings."
               (String.concat ", " Fuzz.portfolio_names)))
  in
  let run workload list_workloads n_opt runs budget max_violations seed backend
      (_, policies) out no_shrink check_domains gen_domains pool_stats =
    if list_workloads then begin
      List.iter
        (fun (w : Fuzz_run.t) ->
          Printf.printf "%-16s n=%d%s  %s\n" w.Fuzz_run.name w.Fuzz_run.default_n
            (if w.Fuzz_run.expect_failures then " [expect-failures]" else "")
            w.Fuzz_run.describe)
        Fuzz_run.all;
      exit 0
    end;
    let workloads =
      match workload with
      | "all" -> List.filter (fun w -> not w.Fuzz_run.expect_failures) Fuzz_run.all
      | name -> (
          match Fuzz_run.find name with
          | Some w -> [ w ]
          | None ->
              Printf.eprintf "unknown workload %s (try --list-workloads)\n" name;
              exit 1)
    in
    let found = ref 0 in
    List.iter
      (fun (w : Fuzz_run.t) ->
        let n = Option.value n_opt ~default:w.Fuzz_run.default_n in
        let report =
          Fuzz_run.fuzz ~backend ~policies ?time_budget:budget ~runs ~max_violations
            ~seed ~check_domains ~gen_domains w ~n
        in
        print_fuzz_report ~pool_stats report;
        List.iter
          (fun (v : Fuzz.violation) ->
            incr found;
            Printf.printf "\nviolation in %s under %s (run seed %d): %s\n" v.Fuzz.v_workload
              v.Fuzz.v_policy v.Fuzz.v_seed v.Fuzz.v_error;
            let schedule, crashes =
              if no_shrink then (v.Fuzz.v_schedule, v.Fuzz.v_crashes)
              else begin
                let (sched, crs), (st : Shrink.stats) =
                  Fuzz_run.shrink ~backend w ~n ~schedule:v.Fuzz.v_schedule
                    ~crashes:v.Fuzz.v_crashes
                in
                Printf.printf
                  "shrunk %d -> %d turns (%d replays, %d reductions, %d drifts, %d rounds)\n"
                  st.Shrink.orig_len st.Shrink.final_len st.Shrink.attempts
                  st.Shrink.accepted st.Shrink.drifted st.Shrink.rounds;
                (sched, crs)
              end
            in
            print_endline (Fuzz.render_lanes ~n ~schedule ~crashes ());
            let repro =
              { (Fuzz.Repro.of_violation v) with Fuzz.Repro.schedule; crashes }
            in
            let path =
              Filename.concat out
                (Printf.sprintf "%s-n%d-%d.scsrepro" v.Fuzz.v_workload n v.Fuzz.v_seed)
            in
            ensure_dir out;
            Fuzz.Repro.save path repro;
            Printf.printf "repro written to %s\n" path)
          report.Fuzz.r_violations;
        print_newline ())
      workloads;
    if !found > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomized schedule fuzzing under a policy portfolio; failing runs are shrunk to \
          minimal deterministic schedules and written as .scsrepro artifacts (exit status 2 \
          when violations were found).")
    Term.(
      const run $ workload_arg $ list_arg $ n_opt_arg $ runs_arg $ budget_arg $ max_viol_arg
      $ seed_arg $ backend_arg $ policy_arg $ out_arg $ no_shrink_arg $ check_domains_arg
      $ gen_domains_arg $ stats_flag_arg)

(* ---- stats ----------------------------------------------------------------- *)

let stats_cmd =
  let target_arg =
    Arg.(
      value & opt string "speculative"
      & info [ "target" ] ~docv:"TARGET"
          ~doc:"Instrumented workload to measure (see $(b,--list-targets)).")
  in
  let list_targets_arg =
    Arg.(value & flag & info [ "list-targets" ] ~doc:"List measurable targets and exit.")
  in
  let ns_arg =
    Arg.(
      value & opt (list int) []
      & info [ "ns" ] ~docv:"N1,N2,..."
          ~doc:"Sweep process counts (overrides $(b,-n)); one table row and one JSON \
                record per value.")
  in
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"K" ~doc:"Seeded simulations per row.")
  in
  let crash_prob_arg =
    Arg.(
      value & opt float 0.0
      & info [ "crash-prob" ] ~docv:"P"
          ~doc:"Crash each process with probability $(docv) after 1-15 steps.")
  in
  let solo_arg =
    Arg.(
      value & flag
      & info [ "solo" ]
          ~doc:"Measure one solo run of process 0 instead of a seeded batch (the \
                uncontended cost the paper's complexity claims are stated for).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the rows as a bench-trajectory JSON file (schema \
                scs.bench.trajectory/1, validated on write; see docs/metrics.md).")
  in
  let run_id_arg =
    Arg.(
      value & opt string "stats"
      & info [ "run-id" ] ~docv:"ID" ~doc:"The $(b,run) field of the emitted JSON.")
  in
  let objects_arg =
    Arg.(
      value & flag
      & info [ "objects" ] ~doc:"Print the per-object step census of the last row.")
  in
  let gen_domains_arg =
    Arg.(
      value & opt int 1
      & info [ "gen-domains" ] ~docv:"G"
          ~doc:
            "Split each batch across $(docv) OCaml domains, each with a pooled \
             simulator and private obs sink, merged deterministically at join.")
  in
  let no_pool_arg =
    Arg.(
      value & flag
      & info [ "no-pool" ]
          ~doc:
            "Use the legacy fresh-simulator-per-run engine instead of the pooled \
             reset engine (for before/after comparisons).")
  in
  let run target list_targets ns n runs seed policy backend crash_prob solo json run_id
      objects gen_domains no_pool =
    if list_targets then begin
      List.iter print_endline (Obs_run.target_names ());
      exit 0
    end;
    let target =
      match Obs_run.target_of_string target with
      | Some t -> t
      | None ->
          Printf.eprintf "unknown target %s (try --list-targets)\n" target;
          exit 1
    in
    let ns = if ns = [] then [ n ] else ns in
    let aggs =
      List.map
        (fun n ->
          if solo then Obs_run.solo ~backend target ~n
          else
            Obs_run.measure ~runs ~seed ~backend ~policy:(make_policy policy) ~crash_prob
              ~gen_domains ~pooled:(not no_pool) target ~n)
        ns
    in
    let rows =
      List.map
        (fun (a : Obs_run.agg) ->
          [
            string_of_int a.Obs_run.n;
            string_of_int a.Obs_run.runs;
            string_of_int (List.length a.Obs_run.ops);
            Printf.sprintf "%.1f" a.Obs_run.steps.Scs_util.Stats.median;
            Printf.sprintf "%.1f" a.Obs_run.steps.Scs_util.Stats.p99;
            string_of_int (int_of_float a.Obs_run.step_cont.Scs_util.Stats.max);
            string_of_int a.Obs_run.max_interval_contention;
            string_of_int a.Obs_run.aborts;
            string_of_int a.Obs_run.handoffs;
            string_of_int a.Obs_run.crashes;
            Printf.sprintf "%.0f" a.Obs_run.schedules_per_sec;
          ])
        aggs
    in
    Scs_util.Table.print
      ~title:
        (if solo then
           Printf.sprintf "stats %s (solo run of p0)" (Obs_run.target_name target)
         else
           Printf.sprintf "stats %s (%s%s, %d runs/row)"
             (Obs_run.target_name target)
             (match policy with
             | `Random -> "random"
             | `Sequential -> "sequential"
             | `Solo -> "solo-policy")
             (if crash_prob > 0.0 then Printf.sprintf ", crash-prob %.2f" crash_prob
              else "")
             runs)
      ~header:
        [
          "n"; "runs"; "ops"; "p50 steps"; "p99 steps"; "max stepC"; "max ivlC";
          "aborts"; "handoffs"; "crashes"; "sched/s";
        ]
      rows;
    (if objects then
       match List.rev aggs with
       | [] -> ()
       | a :: _ ->
           print_newline ();
           Scs_util.Table.print
             ~title:(Printf.sprintf "per-object step census (n=%d)" a.Obs_run.n)
             ~header:[ "object"; "steps"; "rmws" ]
             (List.map
                (fun (name, steps, rmws) ->
                  [ name; string_of_int steps; string_of_int rmws ])
                a.Obs_run.objects));
    (match (target, List.rev aggs) with
    | Obs_run.Shard, a :: _ ->
        (* group the batch's ops by owning-shard label: the per-shard
           step/contention/abort profiles, and their op-count imbalance *)
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (m : Scs_obs.Obs.op_metric) ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt tbl m.Scs_obs.Obs.om_label) in
            Hashtbl.replace tbl m.Scs_obs.Obs.om_label (m :: prev))
          a.Obs_run.ops;
        let labels = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) in
        let counts = List.map (fun l -> List.length (Hashtbl.find tbl l)) labels in
        let rows =
          List.map
            (fun l ->
              let ms = Hashtbl.find tbl l in
              let steps =
                Scs_util.Stats.summarize_ints
                  (Array.of_list (List.map (fun m -> m.Scs_obs.Obs.om_steps) ms))
              in
              let maxc =
                List.fold_left
                  (fun acc m -> max acc m.Scs_obs.Obs.om_step_contention)
                  0 ms
              in
              let aborted =
                List.length (List.filter (fun m -> m.Scs_obs.Obs.om_aborted) ms)
              in
              [
                l;
                string_of_int (List.length ms);
                Printf.sprintf "%.1f" steps.Scs_util.Stats.median;
                Printf.sprintf "%.1f" steps.Scs_util.Stats.p99;
                string_of_int maxc;
                string_of_int aborted;
              ])
            labels
        in
        print_newline ();
        Scs_util.Table.print
          ~title:(Printf.sprintf "per-shard profiles (n=%d, %d runs)" a.Obs_run.n a.Obs_run.runs)
          ~header:[ "shard"; "ops"; "p50 steps"; "p99 steps"; "max stepC"; "aborted" ]
          rows;
        let mx = List.fold_left max 0 counts
        and mean =
          float_of_int (List.fold_left ( + ) 0 counts)
          /. float_of_int (max 1 (List.length counts))
        in
        if List.length counts > 1 then
          Printf.printf "cross-shard imbalance (max/mean ops): %.2f\n"
            (float_of_int mx /. max 1.0 mean)
    | _ -> ());
    match json with
    | None -> ()
    | Some path ->
        let t =
          {
            Scs_obs.Trajectory.run = run_id;
            seed;
            records = List.map Obs_run.to_record aggs;
          }
        in
        Scs_obs.Trajectory.save path t;
        Printf.printf "\nwrote %s (%d records, schema %s)\n" path (List.length ns)
          Scs_obs.Trajectory.schema_version
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Measure a workload with the observability sink: per-operation step \
          percentiles, step/interval contention, aborts and switch-value handoffs, \
          optionally emitted as a validated bench-trajectory JSON (docs/metrics.md).")
    Term.(
      const run $ target_arg $ list_targets_arg $ ns_arg $ n_arg $ runs_arg $ seed_arg
      $ policy_arg $ backend_arg $ crash_prob_arg $ solo_arg $ json_arg $ run_id_arg
      $ objects_arg $ gen_domains_arg $ no_pool_arg)

(* ---- load ------------------------------------------------------------------ *)

let load_cmd =
  let module L = Scs_load.Load in
  let module Mx = Scs_load.Mix in
  let duration_conv =
    let parse s =
      let len = String.length s in
      let num k = float_of_string_opt (String.sub s 0 (len - k)) in
      let v =
        if len >= 2 && String.sub s (len - 2) 2 = "ms" then
          Option.map (fun f -> f /. 1000.) (num 2)
        else if len >= 1 && s.[len - 1] = 's' then num 1
        else if len >= 1 && s.[len - 1] = 'm' then Option.map (fun f -> f *. 60.) (num 1)
        else float_of_string_opt s
      in
      match v with
      | Some f when f >= 0.0 -> Ok f
      | _ -> Error (`Msg (Printf.sprintf "invalid duration %S (try 500ms, 1s, 2m)" s))
    in
    Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%gs" f)
  in
  let workload_arg =
    Arg.(
      value & opt string "all"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload: a single name ($(b,speculative), $(b,strict-tas), $(b,solo-fast), \
             $(b,one-shot), $(b,hardware), $(b,ttas-lock), $(b,uc-register), $(b,chain), \
             $(b,sharded-uc)), a family ($(b,tas), $(b,uc), $(b,chain), $(b,shard)), or \
             $(b,all).")
  in
  let domains_arg =
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"D" ~doc:"OCaml domains driving the loop.")
  in
  let sweep_arg =
    Arg.(
      value & opt (list int) []
      & info [ "sweep" ] ~docv:"D1,D2,..."
          ~doc:"Sweep domain counts (overrides $(b,--domains)); one row per value.")
  in
  let duration_arg =
    Arg.(
      value & opt duration_conv 1.0
      & info [ "duration" ] ~docv:"T" ~doc:"Measured window per cell (e.g. 500ms, 1s, 2m).")
  in
  let warmup_arg =
    Arg.(value & opt duration_conv 0.2 & info [ "warmup" ] ~docv:"T" ~doc:"Unrecorded warmup.")
  in
  let mix_arg =
    Arg.(
      value & opt string "a"
      & info [ "mix" ] ~docv:"PROFILE"
          ~doc:
            "YCSB profile: $(b,a) (50/50 read/update), $(b,b) (95/5), $(b,c) (read-only) or \
             $(b,u) (update-only).")
  in
  let read_ratio_arg =
    Arg.(
      value & opt (some float) None
      & info [ "read-ratio" ] ~docv:"R" ~doc:"Override the profile's read ratio ([0,1]).")
  in
  let keys_arg =
    Arg.(value & opt int 16 & info [ "keys" ] ~docv:"K" ~doc:"Keyspace size (objects per arena).")
  in
  let skew_arg =
    Arg.(
      value
      & opt (enum [ ("zipfian", `Zipfian); ("uniform", `Uniform) ]) `Zipfian
      & info [ "key-skew" ] ~docv:"SKEW" ~doc:"Key popularity: $(b,zipfian) or $(b,uniform).")
  in
  let theta_arg =
    Arg.(value & opt float 0.99 & info [ "theta" ] ~docv:"THETA" ~doc:"Zipfian exponent.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 4096
      & info [ "rounds" ] ~docv:"R" ~doc:"Long-lived TAS round capacity between recycles.")
  in
  let shards_arg =
    Arg.(
      value & opt (list int) [ 4 ]
      & info [ "shards" ] ~docv:"S1,S2,..."
          ~doc:
            "Shard counts for $(b,sharded-uc): one row per value (e.g. $(b,1,2,4,8) sweeps \
             the scaling curve). Ignored by other workloads.")
  in
  let buckets_arg =
    Arg.(
      value & opt int 64
      & info [ "buckets" ] ~docv:"B"
          ~doc:"Routing-table buckets for $(b,sharded-uc) (clamped up to the shard count).")
  in
  let migrate_every_arg =
    Arg.(
      value & opt int 0
      & info [ "migrate-every" ] ~docv:"K"
          ~doc:
            "sharded-uc: domain 0 delegates a bucket to the next shard every $(docv) of its \
             own updates (0 disables migration).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the rows as a bench-trajectory JSON file with native records \
                (schema scs.bench.trajectory/1, validated on write; docs/metrics.md).")
  in
  let run_id_arg =
    Arg.(
      value & opt string "load"
      & info [ "run-id" ] ~docv:"ID" ~doc:"The $(b,run) field of the emitted JSON.")
  in
  let compare_sim_arg =
    Arg.(
      value & flag
      & info [ "compare-sim" ]
          ~doc:
            "Also measure each workload's simulator analog (same n) and print measured \
             hardware abort/handoff rates next to the simulator's contention estimators \
             (experiment T15). Most comparable with $(b,--mix u), since simulator \
             workloads are update-only.")
  in
  let sim_runs_arg =
    Arg.(
      value & opt int 200
      & info [ "sim-runs" ] ~docv:"K" ~doc:"Seeded simulations per comparison cell.")
  in
  let sim_target = function
    | L.Speculative | L.One_shot -> Some (Obs_run.Tas Tas_run.Composed)
    | L.Strict_tas -> Some (Obs_run.Tas Tas_run.Strict)
    | L.Solo_fast -> Some (Obs_run.Tas Tas_run.Solo_fast)
    | L.Hardware -> Some (Obs_run.Tas Tas_run.Hardware)
    | L.Chain -> Some (Obs_run.Cons Cons_run.Chain3)
    | L.Ttas_lock | L.Uc_register | L.Sharded_uc -> None
  in
  let run workload domains sweep duration_s warmup_s mix_name read_ratio keys skew theta
      rounds shards buckets migrate_every seed json run_id compare_sim sim_runs =
    let workloads =
      match workload with
      | "all" -> L.all_workloads
      | name -> (
          match List.assoc_opt name L.workload_families with
          | Some ws -> ws
          | None -> (
              match L.workload_of_string name with
              | Some w -> [ w ]
              | None ->
                  Printf.eprintf "unknown workload %s\n" name;
                  exit 1))
    in
    let read_ratio =
      match read_ratio with
      | Some r -> r
      | None -> (
          match Mx.profile_of_string mix_name with
          | Some p -> Mx.profile_read_ratio p
          | None ->
              Printf.eprintf "unknown mix profile %s (try a, b, c or u)\n" mix_name;
              exit 1)
    in
    let skew = match skew with `Uniform -> Mx.Uniform | `Zipfian -> Mx.Zipfian theta in
    let mix = Mx.make ~read_ratio ~keys ~skew in
    let ds = if sweep = [] then [ domains ] else sweep in
    let shard_counts = if shards = [] then [ 4 ] else shards in
    let host_cores = Domain.recommended_domain_count () in
    let results =
      List.concat_map
        (fun w ->
          List.concat_map
            (fun d ->
              (* sharded-uc sweeps shard counts as extra rows; everyone
                 else gets a single row per domain count *)
              let cells = match w with L.Sharded_uc -> shard_counts | _ -> [ 0 ] in
              List.map
                (fun sc ->
                  let cfg =
                    {
                      (L.default_cfg ~workload:w ~domains:d) with
                      L.mix;
                      rounds;
                      warmup_s;
                      duration_s;
                      seed;
                      shards = (if sc = 0 then 4 else sc);
                      buckets;
                      migrate_every;
                    }
                  in
                  let r = L.run cfg in
                  Printf.eprintf "  %-12s d=%d%s  %.0f ops/s\n%!" (L.workload_name w) d
                    (if sc = 0 then "" else Printf.sprintf " s=%d" sc)
                    r.L.r_ops_per_sec;
                  r)
                cells)
            ds)
        workloads
    in
    let display (r : L.result) =
      (* "native:<name>[:sK]:<mix>" -> "<name>[:sK]" *)
      let lbl = r.L.r_label in
      let pre = "native:" and suf = ":" ^ Mx.describe mix in
      if
        String.length lbl > String.length pre + String.length suf
        && String.sub lbl 0 (String.length pre) = pre
      then String.sub lbl (String.length pre) (String.length lbl - String.length pre - String.length suf)
      else L.workload_name r.L.r_workload
    in
    Scs_util.Table.print
      ~title:
        (Printf.sprintf "load (%s, %gs/cell, %d host cores%s)" (Mx.describe mix) duration_s
           host_cores
           (if host_cores < List.fold_left max 1 ds then ", domains time-share" else ""))
      ~header:
        [
          "workload"; "d"; "ops/s"; "p50 us"; "p99 us"; "p999 us"; "mean us"; "aborts";
          "ab/upd"; "handoffs"; "resets"; "recycles";
        ]
      (List.map
         (fun (r : L.result) ->
           [
             display r;
             string_of_int r.L.r_domains;
             Printf.sprintf "%.0f" r.L.r_ops_per_sec;
             Printf.sprintf "%.2f" r.L.r_p50_us;
             Printf.sprintf "%.2f" r.L.r_p99_us;
             Printf.sprintf "%.2f" r.L.r_p999_us;
             Printf.sprintf "%.2f" r.L.r_mean_us;
             string_of_int r.L.r_aborts;
             Printf.sprintf "%.4f" r.L.r_abort_rate;
             string_of_int r.L.r_handoffs;
             string_of_int r.L.r_resets;
             string_of_int r.L.r_recycles;
           ])
         results);
    List.iter
      (fun (r : L.result) ->
        match r.L.r_extra with
        | [] -> ()
        | kvs ->
            let shard_ops =
              List.filter_map
                (fun (k, v) ->
                  if String.length k >= 6 && String.sub k 0 5 = "shard" then Some v else None)
                kvs
            in
            let imb =
              match shard_ops with
              | [] | [ _ ] -> ""
              | ops ->
                  let mx = List.fold_left max 0 ops in
                  let mean =
                    float_of_int (List.fold_left ( + ) 0 ops) /. float_of_int (List.length ops)
                  in
                  Printf.sprintf "  imbalance(max/mean)=%.2f" (float_of_int mx /. max 1.0 mean)
            in
            Printf.printf "%s d=%d: %s%s\n" (display r) r.L.r_domains
              (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs))
              imb)
      results;
    if compare_sim then begin
      print_newline ();
      let rows =
        List.filter_map
          (fun (r : L.result) ->
            match sim_target r.L.r_workload with
            | None -> None
            | Some t ->
                let a = Obs_run.measure ~runs:sim_runs ~seed t ~n:r.L.r_domains in
                let ops = List.length a.Obs_run.ops in
                Some
                  [
                    L.workload_name r.L.r_workload;
                    Obs_run.target_name t;
                    string_of_int r.L.r_domains;
                    Printf.sprintf "%.4f" r.L.r_abort_rate;
                    Printf.sprintf "%.4f"
                      (float_of_int a.Obs_run.aborts /. float_of_int (max 1 ops));
                    Printf.sprintf "%.4f"
                      (float_of_int r.L.r_handoffs /. float_of_int (max 1 r.L.r_updates));
                    Printf.sprintf "%.4f"
                      (float_of_int a.Obs_run.handoffs /. float_of_int (max 1 ops));
                    string_of_int a.Obs_run.max_interval_contention;
                  ])
          results
      in
      if rows <> [] then
        Scs_util.Table.print
          ~title:
            (Printf.sprintf
               "native vs simulator (T15: %d sim runs/cell; native rates per update)"
               sim_runs)
          ~header:
            [
              "workload"; "sim target"; "n"; "ab/upd nat"; "ab/op sim"; "ho/upd nat";
              "ho/op sim"; "max ivlC sim";
            ]
          rows
      else print_endline "compare-sim: no simulator analog for the selected workloads"
    end;
    match json with
    | None -> ()
    | Some path ->
        let t =
          { Scs_obs.Trajectory.run = run_id; seed; records = List.map L.to_record results }
        in
        Scs_obs.Trajectory.save path t;
        Printf.printf "\nwrote %s (%d records, schema %s)\n" path (List.length results)
          Scs_obs.Trajectory.schema_version
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Native multicore macro-benchmark: N OCaml 5 domains run a YCSB-style closed loop \
          (configurable read/update mix and key skew) against the paper's objects, \
          reporting throughput, log-bucketed latency percentiles and hardware \
          abort/handoff/reset counters, optionally compared against the simulator's \
          contention estimators and emitted as bench-trajectory JSON.")
    Term.(
      const run $ workload_arg $ domains_arg $ sweep_arg $ duration_arg $ warmup_arg
      $ mix_arg $ read_ratio_arg $ keys_arg $ skew_arg $ theta_arg $ rounds_arg $ shards_arg
      $ buckets_arg $ migrate_every_arg $ seed_arg $ json_arg $ run_id_arg $ compare_sim_arg
      $ sim_runs_arg)

(* ---- difffuzz -------------------------------------------------------------- *)

let difffuzz_cmd =
  let workload_arg =
    Arg.(
      value & opt string "all"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload to diff-fuzz (see $(b,scs fuzz --list-workloads)); $(b,all) covers \
             every workload that is expected to hold on atomic registers.")
  in
  let n_opt_arg =
    Arg.(
      value & opt (some int) None
      & info [ "n"; "processes" ] ~docv:"N" ~doc:"Process count (default: per workload).")
  in
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"K" ~doc:"Runs per schedule policy.")
  in
  let lag_arg =
    Arg.(
      value
      & opt int Scs_prims.Sc_prims.default_lag
      & info [ "sc-lag" ] ~docv:"LAG"
          ~doc:
            "Staleness bound of the SC backend: reads may return a value up to $(docv) \
             writes old. $(b,0) makes the SC backend observationally atomic (every run \
             must then classify as identical-verdict).")
  in
  let max_findings_arg =
    Arg.(
      value & opt int 3
      & info [ "max-findings" ] ~docv:"M"
          ~doc:"Collect at most $(docv) SC-only findings per workload.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Emit raw SC-only schedules unshrunk.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for emitted .scsrepro artifacts.")
  in
  let expect_identical_arg =
    Arg.(
      value & flag
      & info [ "expect-identical" ]
          ~doc:
            "Exit 1 if any run classifies divergently (sc-only or lin-only). With \
             $(b,--sc-lag 0) this is the differential harness's own soundness gate: the \
             SC backend must be verdict-identical to the linearizable one.")
  in
  let run workload n_opt runs seed lag max_findings no_shrink out expect_identical =
    let workloads =
      match workload with
      | "all" -> List.filter (fun w -> not w.Fuzz_run.expect_failures) Fuzz_run.all
      | name -> (
          match Fuzz_run.find name with
          | Some w -> [ w ]
          | None ->
              Printf.eprintf "unknown workload %s (try `scs fuzz --list-workloads')\n" name;
              exit 1)
    in
    let divergent = ref 0 and found = ref 0 in
    List.iter
      (fun (w : Fuzz_run.t) ->
        let n = Option.value n_opt ~default:w.Fuzz_run.default_n in
        let report =
          Diff_fuzz.run ~runs ~seed ~max_findings ~shrink:(not no_shrink) w ~n ~lag
        in
        let rows =
          List.map
            (fun (s : Diff_fuzz.policy_stats) ->
              [
                s.Diff_fuzz.dp_policy;
                string_of_int s.Diff_fuzz.dp_runs;
                string_of_int s.Diff_fuzz.dp_both_pass;
                string_of_int s.Diff_fuzz.dp_both_violate;
                string_of_int s.Diff_fuzz.dp_sc_only;
                string_of_int s.Diff_fuzz.dp_lin_only;
                string_of_int s.Diff_fuzz.dp_skipped;
              ])
            report.Diff_fuzz.dr_stats
        in
        Scs_util.Table.print
          ~title:
            (Printf.sprintf "difffuzz %s n=%d sc-lag=%d seed=%d" report.Diff_fuzz.dr_workload
               n lag seed)
          ~header:
            [ "policy"; "runs"; "both-pass"; "both-viol"; "sc-only"; "lin-only"; "skip" ]
          rows;
        Printf.printf "sc-only rate: %.4f violations/run\n" (Diff_fuzz.sc_only_rate report);
        List.iter
          (fun (s : Diff_fuzz.policy_stats) ->
            divergent := !divergent + s.Diff_fuzz.dp_sc_only + s.Diff_fuzz.dp_lin_only)
          report.Diff_fuzz.dr_stats;
        List.iter
          (fun (f : Diff_fuzz.finding) ->
            incr found;
            Printf.printf
              "\nSC-only violation in %s (sc-lag %d) under %s (run seed %d): %s\n"
              f.Diff_fuzz.df_workload f.Diff_fuzz.df_lag f.Diff_fuzz.df_policy
              f.Diff_fuzz.df_seed f.Diff_fuzz.df_error;
            (match f.Diff_fuzz.df_shrink with
            | Some (st : Shrink.stats) ->
                Printf.printf
                  "shrunk %d -> %d turns (%d replays, %d reductions, %d drifts, %d rounds)\n"
                  st.Shrink.orig_len st.Shrink.final_len st.Shrink.attempts
                  st.Shrink.accepted st.Shrink.drifted st.Shrink.rounds
            | None -> ());
            print_endline
              (Fuzz.render_lanes ~n ~schedule:f.Diff_fuzz.df_schedule ~crashes:[] ());
            let repro = Diff_fuzz.repro_of_finding w f in
            let path =
              Filename.concat out
                (Printf.sprintf "%s-sc%d-n%d-%d.scsrepro" f.Diff_fuzz.df_workload
                   f.Diff_fuzz.df_lag n f.Diff_fuzz.df_seed)
            in
            ensure_dir out;
            Fuzz.Repro.save path repro;
            Printf.printf "repro written to %s (replay with `scs replay')\n" path)
          report.Diff_fuzz.dr_findings;
        print_newline ())
      workloads;
    if expect_identical && !divergent > 0 then begin
      Printf.eprintf "expected identical verdicts, got %d divergent run(s)\n" !divergent;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "difffuzz"
       ~doc:
         "Differential fuzzing across consistency models: replay the same seeded schedule \
          policies on atomic and on per-object sequentially-consistent registers, classify \
          each verdict pair, and shrink SC-only violations — minimal witnesses that \
          composed algorithms lose their guarantees when base registers are only \
          per-object SC, even though every individual register's history is SC.")
    Term.(
      const run $ workload_arg $ n_opt_arg $ runs_arg $ seed_arg $ lag_arg
      $ max_findings_arg $ no_shrink_arg $ out_arg $ expect_identical_arg)

(* ---- replay ---------------------------------------------------------------- *)

let replay_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:".scsrepro artifacts.")
  in
  let lanes_arg =
    Arg.(value & flag & info [ "lanes" ] ~doc:"Render the per-process schedule lanes.")
  in
  let run files lanes =
    let failed = ref false in
    List.iter
      (fun file ->
        let r = Fuzz.Repro.load file in
        match Fuzz_run.find_qualified r.Fuzz.Repro.workload with
        | None ->
            Printf.eprintf "%s: unknown workload %s\n" file r.Fuzz.Repro.workload;
            failed := true
        | Some (w, backend) ->
            let n = r.Fuzz.Repro.n in
            if lanes then
              print_endline
                (Fuzz.render_lanes
                   ~title:(Printf.sprintf "%s (%s)" file r.Fuzz.Repro.error)
                   ~n ~schedule:r.Fuzz.Repro.schedule ~crashes:r.Fuzz.Repro.crashes ());
            let outcome =
              Fuzz_run.replay ~backend w ~n ~schedule:r.Fuzz.Repro.schedule
                ~crashes:r.Fuzz.Repro.crashes
            in
            let describe =
              match outcome with
              | Fuzz_run.Violates msg -> Printf.sprintf "violation reproduced: %s" msg
              | Fuzz_run.Passes -> "check PASSED: recorded violation did not reproduce"
              | Fuzz_run.Skipped msg -> "skipped: " ^ msg
              | Fuzz_run.Drifted p -> Printf.sprintf "replay drift at pid %d" p
            in
            let crash_desc =
              match r.Fuzz.Repro.crashes with
              | [] -> ""
              | cs -> Printf.sprintf " crashes %s" (Crash.list_to_string cs)
            in
            Printf.printf "%s [%s n=%d %d turns%s]: %s\n" file r.Fuzz.Repro.workload n
              (Array.length r.Fuzz.Repro.schedule) crash_desc describe;
            if outcome <> Fuzz_run.Violates r.Fuzz.Repro.error then
              match outcome with
              | Fuzz_run.Violates _ -> () (* different message, still a violation *)
              | _ -> failed := true)
      files;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically replay .scsrepro artifacts with strict scripting; exit status 0 \
          iff every recorded violation re-triggers.")
    Term.(const run $ files_arg $ lanes_arg)

(* ---- main ---------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "scs" ~version:"1.0.0"
      ~doc:"Safely composable shared-memory algorithms (SPAA 2012 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            experiment_cmd;
            simulate_cmd;
            consensus_cmd;
            check_cmd;
            explore_cmd;
            fuzz_cmd;
            difffuzz_cmd;
            load_cmd;
            replay_cmd;
            stats_cmd;
          ]))
