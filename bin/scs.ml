(* The `scs` command-line interface.

   scs list                          enumerate experiments
   scs experiment T1 [T2 ...]        run experiments by id
   scs simulate --algo=... -n 4 ...  one simulated TAS run with a trace dump
   scs consensus --algo=... -n 4     one simulated consensus run
   scs check --algo=... --seeds 500  randomized safety checking *)

open Cmdliner
open Scs_spec
open Scs_history
open Scs_sim
open Scs_workload

(* ---- shared args ------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n"; "processes" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let tas_algo_arg =
  let algos =
    [
      ("speculative", Tas_run.Composed);
      ("strict", Tas_run.Strict);
      ("solo-fast", Tas_run.Solo_fast);
      ("hardware", Tas_run.Hardware);
      ("tournament", Tas_run.Tournament);
    ]
  in
  Arg.(
    value
    & opt (enum algos) Tas_run.Composed
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"TAS implementation: $(b,speculative) (paper A1∘A2), $(b,strict), \
              $(b,solo-fast), $(b,hardware) or $(b,tournament).")

let policy_arg =
  let policies = [ ("random", `Random); ("sequential", `Sequential); ("solo", `Solo) ] in
  Arg.(
    value
    & opt (enum policies) `Random
    & info [ "policy" ] ~docv:"POLICY" ~doc:"Schedule: $(b,random), $(b,sequential) or $(b,solo).")

let make_policy = function
  | `Random -> Policy.random
  | `Sequential -> fun _ -> Policy.sequential ()
  | `Solo -> fun _ -> Policy.solo 0

(* ---- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Scs_experiments.Registry.t) ->
        Printf.printf "%-4s %s\n" e.Scs_experiments.Registry.id e.Scs_experiments.Registry.title)
      Scs_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.")
    Term.(const run $ const ())

(* ---- experiment -------------------------------------------------------- *)

let experiment_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let run ids =
    match ids with
    | [] -> Scs_experiments.Registry.run_all ()
    | ids ->
        List.iter
          (fun id ->
            match Scs_experiments.Registry.find id with
            | Some e -> e.Scs_experiments.Registry.run ()
            | None -> Printf.eprintf "unknown experiment id %s (try `scs list')\n" id)
          ids
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run reproduction experiments by id.")
    Term.(const run $ ids_arg)

(* ---- simulate ----------------------------------------------------------- *)

let show_resp = function Objects.Winner -> "winner" | Objects.Loser -> "loser"

let show_stage = function
  | Some Scs_tas.One_shot.Fast -> "registers"
  | Some Scs_tas.One_shot.Fallback -> "hardware"
  | None -> "-"

let simulate_cmd =
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the shared-memory step trace.")
  in
  let run n seed algo policy trace =
    let r = Tas_run.one_shot ~seed ~n ~algo ~policy:(make_policy policy) () in
    Printf.printf "algorithm: %s, n=%d, seed=%d\n\n" (Tas_run.algo_name algo) n seed;
    List.iter
      (fun (o : Tas_run.op_record) ->
        Printf.printf "p%-2d -> %-6s via %-9s steps=%-3d rmws=%d raws=%d [%d,%d]\n"
          o.Tas_run.pid (show_resp o.Tas_run.resp) (show_stage o.Tas_run.stage) o.Tas_run.steps
          o.Tas_run.rmws o.Tas_run.raws o.Tas_run.invoke_ts o.Tas_run.resp_ts)
      r.Tas_run.ops;
    let ops = Trace.operations r.Tas_run.outer in
    Printf.printf "\nlinearizable (strict): %b\n" (Tas_lin.check_one_shot ops);
    Printf.printf "safely composable (Definition 2): %b\n"
      (Scs_composable.Tas_interp.is_safely_composable r.Tas_run.outer);
    Printf.printf "total steps: %d, registers: %d, rmw objects: %d\n"
      (Sim.total_steps r.Tas_run.sim) r.Tas_run.registers r.Tas_run.rmw_objects;
    if trace then begin
      print_newline ();
      Array.iter (fun e -> print_endline (Mem_event.to_string e)) r.Tas_run.mem
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one simulated one-shot TAS execution and check it.")
    Term.(const run $ n_arg $ seed_arg $ tas_algo_arg $ policy_arg $ trace_arg)

(* ---- consensus ---------------------------------------------------------- *)

let consensus_cmd =
  let algo_arg =
    let algos =
      [
        ("split", Cons_run.Split);
        ("bakery", Cons_run.Bakery);
        ("cas", Cons_run.Cas);
        ("chain", Cons_run.Chain3);
      ]
    in
    Arg.(
      value
      & opt (enum algos) Cons_run.Split
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Consensus: $(b,split), $(b,bakery), $(b,cas) or $(b,chain).")
  in
  let run n seed algo policy =
    let r = Cons_run.run ~seed ~n ~algo ~policy:(make_policy policy) () in
    Printf.printf "algorithm: %s, n=%d, seed=%d\n\n" (Cons_run.algo_name algo) n seed;
    List.iter
      (fun (o : Cons_run.op) ->
        let outcome =
          match o.Cons_run.outcome with
          | Scs_composable.Outcome.Commit (Some d) -> Printf.sprintf "commit %d" d
          | Scs_composable.Outcome.Commit None -> "commit ⊥"
          | Scs_composable.Outcome.Abort (Some w) -> Printf.sprintf "abort (saw %d)" w
          | Scs_composable.Outcome.Abort None -> "abort ⊥"
        in
        Printf.printf "p%-2d proposes %d -> %-16s steps=%d\n" o.Cons_run.pid o.Cons_run.proposal
          outcome o.Cons_run.steps)
      r.Cons_run.ops;
    Printf.printf "\nagreement: %b, validity: %b\n" r.Cons_run.agreement r.Cons_run.validity
  in
  Cmd.v
    (Cmd.info "consensus" ~doc:"Run one simulated abortable-consensus execution.")
    Term.(const run $ n_arg $ seed_arg $ algo_arg $ policy_arg)

(* ---- check --------------------------------------------------------------- *)

let check_cmd =
  let seeds_arg =
    Arg.(value & opt int 500 & info [ "seeds" ] ~docv:"K" ~doc:"Number of random schedules.")
  in
  let run n algo seeds =
    let failures = ref 0 in
    for seed = 1 to seeds do
      let r = Tas_run.one_shot ~seed ~n ~algo ~policy:Policy.random () in
      let ops = Trace.operations r.Tas_run.outer in
      let strict_ok = Tas_lin.check_one_shot ops in
      let paper_ok = Scs_composable.Tas_interp.is_safely_composable r.Tas_run.outer in
      let winners = List.length (Tas_run.winners r) in
      let ok =
        winners = 1
        && paper_ok
        && (strict_ok || algo = Tas_run.Composed)
        (* the paper variant is only speculatively linearizable: F-1 *)
      in
      if not ok then begin
        incr failures;
        Printf.printf "seed %d: winners=%d strict=%b paper=%b\n" seed winners strict_ok paper_ok
      end
    done;
    Printf.printf "%s: %d/%d schedules failed\n" (Tas_run.algo_name algo) !failures seeds;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Randomized safety checking of a TAS implementation.")
    Term.(const run $ n_arg $ tas_algo_arg $ seeds_arg)

(* ---- explore -------------------------------------------------------------- *)

let explore_cmd =
  let budget_arg =
    Arg.(
      value & opt int 100_000
      & info [ "budget" ] ~docv:"K"
          ~doc:"Maximum number of terminated runs to enumerate.")
  in
  let por_arg =
    Arg.(
      value & flag
      & info [ "por" ]
          ~doc:
            "Enable sleep-set partial-order reduction: explore one representative \
             schedule per class of commuting reorderings.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Fan the exploration out over $(docv) OCaml domains.")
  in
  let run n algo budget por domains =
    let outcome, bad =
      Tas_run.explore_one_shot ~max_schedules:budget ~por ~domains ~n ~algo ()
    in
    Printf.printf
      "%s, n=%d: explored %d schedules%s; pruned %d; %d truncated runs; %d turns in \
       %.2fs; non-linearizable: %d\n"
      (Tas_run.algo_name algo) n outcome.Explore.schedules
      (if outcome.Explore.truncated then " (budget-truncated)" else " (complete)")
      outcome.Explore.pruned outcome.Explore.truncated_runs outcome.Explore.steps_replayed
      outcome.Explore.wall_s bad;
    if bad > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate interleavings of a one-shot TAS run and check strict           linearizability on each (bounded model checking).")
    Term.(const run $ n_arg $ tas_algo_arg $ budget_arg $ por_arg $ domains_arg)

(* ---- main ---------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "scs" ~version:"1.0.0"
      ~doc:"Safely composable shared-memory algorithms (SPAA 2012 reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; experiment_cmd; simulate_cmd; consensus_cmd; check_cmd; explore_cmd ]))
