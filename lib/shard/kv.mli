(** The sharded key–value object type.

    The service partitions an integer keyspace into [buckets] hash
    buckets, each owned by exactly one shard (a universal-construction
    instance). A shard's sequential type is a key–value map extended
    with two administrative requests used by bucket migration:

    - [Freeze b] marks bucket [b] frozen and returns its current
      contents sealed as a sorted association list. Client operations
      ([Get]/[Put]) on a frozen bucket answer [Refused] and leave the
      state unchanged — so a committed [Refused] is a {e certificate of
      no effect}, which both the stale-route retry rule and the
      crash-recovery re-invocation rule rely on. Freezing is
      idempotent: no [Put] can commit between two [Freeze b] requests,
      hence both seal the same pairs.
    - [Install (b, pairs)] replaces bucket [b]'s contents with [pairs]
      and unfreezes it (used on the destination shard, and to abort a
      migration back onto the source).

    Because the shard orders all of this in its single
    universal-construction history, the IronFleet-style "drain
    in-flight operations" phase is implicit: an op racing a [Freeze]
    either commits before it (its effect is in the sealed pairs) or
    after it (it answers [Refused] and had no effect). *)

type req =
  | Get of int
  | Put of int * int
  | Freeze of int  (** bucket *)
  | Install of int * (int * int) list  (** bucket, sealed pairs *)

type resp =
  | Value of int
  | Ack
  | Refused  (** bucket frozen here — no effect; re-route and retry *)
  | Sealed of (int * int) list

type state
(** Canonical (sorted) map plus the frozen-bucket set, so structural
    equality and hashing are sound for the checker's state memo. *)

val bucket_of_key : buckets:int -> int -> int
(** Deterministic hash partition; total on all [int] keys. The single
    routing function shared by the spec, the router and the checks. *)

val key_of_req : req -> int option
(** The client key, [None] for administrative requests. *)

val spec : buckets:int -> (state, req, resp) Scs_spec.Spec.t
(** The shard-local sequential specification described above. *)

val flat_spec : ((int * int) list, req, resp) Scs_spec.Spec.t
(** The client-facing keyspace specification: a plain map where [Get]
    and [Put] always succeed (no buckets, no freezing). Service-level
    client histories are checked against this — monolithically, or
    per-key via [Linearize.check_partitioned] (sound because the map
    is a product of independent per-key registers). Administrative
    requests never appear in client histories; they answer [Refused]
    here so the spec stays total. *)

val show_req : req -> string
val show_resp : resp -> string
