(** Keyed routing table: which shard owns which bucket, at which epoch.

    One durable register per bucket holds a {!route} record — owner
    shard, a frozen flag, and an epoch counter bumped by every change.
    Reading a route costs one register read; a client caches nothing,
    so a migration is visible as soon as its table write lands. The
    epoch lets harnesses and checks {e name} table versions: an
    operation routed under epoch [e] that commits [Refused] was stale —
    the bucket froze or moved under it — and must re-read the table and
    retry. Routing is total: {!route} is defined for every [int] key
    before, during and after any migration (a frozen bucket still names
    its owner; clients just wait out the freeze).

    Table writes are the migrator's job; the module assumes a single
    writer at a time (the {!Migration} state machine), while reads are
    concurrent and wait-free. Registers are durable ([P.reg]), so the
    table survives crashes — recovery resumes from whatever prefix of a
    migration's writes landed. *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type route = { owner : int; frozen : bool; epoch : int }
  type t

  val create : name:string -> shards:int -> buckets:int -> unit -> t
  (** Bucket [b] starts at [{ owner = b mod shards; frozen = false;
      epoch = 0 }]. *)

  val shards : t -> int
  val buckets : t -> int

  val route : t -> key:int -> route
  (** One register read on [Kv.bucket_of_key]'s bucket. *)

  val route_bucket : t -> bucket:int -> route

  val freeze : t -> bucket:int -> route
  (** Mark frozen (owner unchanged), bump the epoch; returns the new
      route. Idempotent on an already-frozen bucket apart from the
      epoch bump. *)

  val assign : t -> bucket:int -> shard:int -> route
  (** Set the owner, clear frozen, bump the epoch; returns the new
      route. *)
end
