open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) = struct
  module R = Router.Make (P)
  module Uc = Scs_universal.Uc_object.Make (P)
  module Sc = Scs_consensus.Split_consensus.Make (P)
  module Ab = Scs_consensus.Abortable_bakery.Make (P)
  module Cc = Scs_consensus.Cas_consensus.Make (P)

  let spf = Printf.sprintf

  let default_stages ~n =
    [
      (fun ~name ~slot -> Sc.instance (Sc.create ~name:(spf "%s.split[%d]" name slot) ()));
      (fun ~name ~slot -> Ab.instance (Ab.create ~name:(spf "%s.bakery[%d]" name slot) ~n ()));
      (fun ~name ~slot -> Cc.instance (Cc.create ~name:(spf "%s.cas[%d]" name slot) ()));
    ]

  type shard_obj = (Kv.state, Kv.req, Kv.resp) Uc.Typed.obj

  type t = { n : int; router : R.t; objs : shard_obj array }

  let create ?stages ~name ~n ~shards ~buckets ~capacity () =
    let stages = match stages with Some s -> s | None -> default_stages ~n in
    let spec = Kv.spec ~buckets in
    let objs =
      Array.init shards (fun s ->
          Uc.Typed.create spec
            (Uc.create ~name:(spf "%s.shard[%d]" name s) ~n ~max_requests:capacity ~stages ()))
    in
    { n; router = R.create ~name ~shards ~buckets (); objs }

  let router t = t.router
  let shards t = Array.length t.objs
  let buckets t = R.buckets t.router

  type h = {
    t : t;
    pid : int;
    hs : (shard_obj * Kv.req Uc.phandle) array;
    mutable ctr : int;
    mutable inflight : (int * Kv.req Request.t) option;
  }

  let handle t ~pid =
    {
      t;
      pid;
      hs = Array.map (fun o -> Uc.Typed.handle o ~pid) t.objs;
      ctr = 0;
      inflight = None;
    }

  let fresh_req h payload =
    h.ctr <- h.ctr + 1;
    Request.make ((h.ctr * h.t.n) + h.pid) payload

  let apply_on h ~shard req = Uc.Typed.apply h.hs.(shard) req

  type outcome = Done of Kv.resp | Gave_up

  let default_retries = 64

  let apply ?(retries = default_retries) h payload =
    let key =
      match Kv.key_of_req payload with
      | Some key -> key
      | None -> invalid_arg "Service.apply: administrative request; use apply_on"
    in
    (* The attempt record is cleared here — at the start of the next
       logical operation — and NOT when an attempt returns: a crash
       between the shard committing and the caller recording the
       response must still find the attempt, or recovery would re-run a
       possibly-committed [Put] under a fresh id (a double apply,
       observably non-linearizable; docs/sharding.md works the
       counterexample). *)
    h.inflight <- None;
    let rec go attempts =
      if attempts >= retries then Gave_up
      else
        let r = R.route h.t.router ~key in
        if r.R.frozen then begin
          P.pause ();
          go (attempts + 1)
        end
        else begin
          let req = fresh_req h payload in
          (* The attempt record must be in place before the shard can
             commit the request: a crash inside [apply_on] recovers by
             re-proposing exactly this id on exactly this shard. *)
          h.inflight <- Some (r.R.owner, req);
          let resp = apply_on h ~shard:r.R.owner req in
          match resp with Kv.Refused -> go (attempts + 1) | resp -> Done resp
        end
    in
    go 0

  let inflight h = h.inflight

  let recover ?retries h =
    match h.inflight with
    | None -> None
    | Some (shard, req) -> (
        (* Same id, same shard: deduplication makes this the crashed
           attempt's committed response if it had one, and a first
           commit otherwise — never a second effect. The record stays
           in place so a crash of the recovery itself re-enters here and
           gets the same answer (idempotent); the next [apply] clears
           it. *)
        let resp = apply_on h ~shard req in
        match resp with
        | Kv.Refused -> Some (apply ?retries h (Request.payload req))
        | resp -> Some (Done resp))

  module Migration = struct
    type svc = t

    type phase =
      | Idle
      | Freezing of { bucket : int; dst : int }
      | Installing of { bucket : int; dst : int; pairs : (int * int) list }
      | Rerouting of { bucket : int; dst : int }

    type t = { svc : svc; phase : phase P.reg }

    let create ~name svc = { svc; phase = P.reg ~name:(name ^ ".phase") Idle }
    let phase t = P.read t.phase

    (* Steps shared by the initial run and recovery; each starts from a
       durably recorded phase and finishes by recording the next. *)

    let do_freeze t ~h ~bucket ~dst =
      let rt = router t.svc in
      let src = (R.route_bucket rt ~bucket).R.owner in
      ignore (R.freeze rt ~bucket);
      let pairs =
        match apply_on h ~shard:src (fresh_req h (Kv.Freeze bucket)) with
        | Kv.Sealed pairs -> pairs
        | r -> failwith ("Migration: freeze answered " ^ Kv.show_resp r)
      in
      P.write t.phase (Installing { bucket; dst; pairs });
      pairs

    let do_install t ~h ~bucket ~dst ~pairs =
      (match apply_on h ~shard:dst (fresh_req h (Kv.Install (bucket, pairs))) with
      | Kv.Ack -> ()
      | r -> failwith ("Migration: install answered " ^ Kv.show_resp r));
      P.write t.phase (Rerouting { bucket; dst })

    let do_reroute t ~bucket ~dst =
      ignore (R.assign (router t.svc) ~bucket ~shard:dst);
      P.write t.phase Idle

    let migrate t ~h ~bucket ~dst =
      (match P.read t.phase with
      | Idle -> ()
      | _ -> invalid_arg "Migration.migrate: migration already in flight");
      if dst < 0 || dst >= shards t.svc then invalid_arg "Migration.migrate: dst out of range";
      if bucket < 0 || bucket >= buckets t.svc then
        invalid_arg "Migration.migrate: bucket out of range";
      P.write t.phase (Freezing { bucket; dst });
      let pairs = do_freeze t ~h ~bucket ~dst in
      do_install t ~h ~bucket ~dst ~pairs;
      do_reroute t ~bucket ~dst

    let recover t ~h =
      match P.read t.phase with
      | Idle -> ()
      | Freezing { bucket; dst } ->
          let pairs = do_freeze t ~h ~bucket ~dst in
          do_install t ~h ~bucket ~dst ~pairs;
          do_reroute t ~bucket ~dst
      | Installing { bucket; dst; pairs } ->
          do_install t ~h ~bucket ~dst ~pairs;
          do_reroute t ~bucket ~dst
      | Rerouting { bucket; dst } -> do_reroute t ~bucket ~dst
  end

  module Batcher = struct
    type svc = t

    type cell = {
      c_req : Kv.req Request.t;
      c_bucket : int;
      c_shard : int;
      c_resp : Kv.resp option P.reg;  (** volatile: a DRAM mailbox *)
    }

    type t = {
      svc : svc;
      name : string;
      queues : cell list P.cas_obj array;  (** Treiber stacks, one per shard *)
      locks : P.tas_obj array;  (** combiner locks *)
      cells : int Atomic.t;  (** harness bookkeeping: unique mailbox names *)
      n_batches : int Atomic.t;
      n_batched : int Atomic.t;
    }

    let create ~name svc =
      {
        svc;
        name;
        queues =
          Array.init (shards svc) (fun s -> P.cas_obj ~name:(spf "%s.q[%d]" name s) []);
        locks = Array.init (shards svc) (fun s -> P.tas_obj ~name:(spf "%s.lock[%d]" name s) ());
        cells = Atomic.make 0;
        n_batches = Atomic.make 0;
        n_batched = Atomic.make 0;
      }

    let batches t = Atomic.get t.n_batches
    let batched_ops t = Atomic.get t.n_batched

    let rec push q cell =
      let old = P.cas_read q in
      if not (P.compare_and_swap q ~expect:old ~update:(cell :: old)) then begin
        P.pause ();
        push q cell
      end

    let rec grab q =
      match P.cas_read q with
      | [] -> []
      | old ->
          if P.compare_and_swap q ~expect:old ~update:[] then List.rev old
          else begin
            P.pause ();
            grab q
          end

    (* Drain one shard's queue through the combiner's own handle. Each
       cell's route is revalidated at apply time: the submitter chose
       the shard before queueing, and a migration may have frozen or
       moved the bucket since. *)
    let drain t ~h shard =
      match grab t.queues.(shard) with
      | [] -> ()
      | batch ->
          Atomic.incr t.n_batches;
          List.iter
            (fun c ->
              let r = R.route_bucket (router t.svc) ~bucket:c.c_bucket in
              let resp =
                if r.R.frozen || r.R.owner <> shard then Kv.Refused
                else apply_on h ~shard c.c_req
              in
              Atomic.incr t.n_batched;
              P.write c.c_resp (Some resp))
            batch

    let apply ?(retries = default_retries) t ~h payload =
      let key =
        match Kv.key_of_req payload with
        | Some key -> key
        | None -> invalid_arg "Batcher.apply: administrative request; use apply_on"
      in
      let bucket = Kv.bucket_of_key ~buckets:(buckets t.svc) key in
      let rec go attempts =
        if attempts >= retries then Gave_up
        else
          let r = R.route_bucket (router t.svc) ~bucket in
          if r.R.frozen then begin
            P.pause ();
            go (attempts + 1)
          end
          else begin
            let cell =
              {
                c_req = fresh_req h payload;
                c_bucket = bucket;
                c_shard = r.R.owner;
                c_resp =
                  P.volatile_reg
                    ~name:(spf "%s.cell[%d]" t.name (Atomic.fetch_and_add t.cells 1))
                    None;
              }
            in
            push t.queues.(r.R.owner) cell;
            let rec wait () =
              match P.read cell.c_resp with
              | Some resp -> resp
              | None ->
                  if P.test_and_set t.locks.(r.R.owner) then begin
                    drain t ~h r.R.owner;
                    P.tas_reset t.locks.(r.R.owner)
                  end
                  else P.pause ();
                  wait ()
            in
            match wait () with Kv.Refused -> go (attempts + 1) | resp -> Done resp
          end
      in
      go 0
  end
end
