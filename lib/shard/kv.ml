open Scs_spec

type req = Get of int | Put of int * int | Freeze of int | Install of int * (int * int) list
type resp = Value of int | Ack | Refused | Sealed of (int * int) list

(* Both lists sorted by key/bucket: states reached by the same request
   sequence are structurally equal, which is what the checker's hashed
   state memo needs. *)
type state = { vals : (int * int) list; frozen : int list }

let bucket_of_key ~buckets key =
  if buckets < 1 then invalid_arg "Kv.bucket_of_key: buckets must be >= 1";
  (* Fibonacci-style multiplicative mix so adjacent keys spread out. *)
  let h = key * 0x9E3779B1 in
  let h = h lxor (h lsr 17) in
  (h land max_int) mod buckets

let key_of_req = function Get k | Put (k, _) -> Some k | Freeze _ | Install _ -> None

let rec put_sorted k v = function
  | [] -> [ (k, v) ]
  | ((k', _) as p) :: tl ->
      if k' < k then p :: put_sorted k v tl else if k' = k then (k, v) :: tl else (k, v) :: p :: tl

let get_default k vals = match List.assoc_opt k vals with Some v -> v | None -> 0

let rec insert_sorted b = function
  | [] -> [ b ]
  | b' :: tl as l -> if b' < b then b' :: insert_sorted b tl else if b' = b then l else b :: l

let seal ~buckets b vals = List.filter (fun (k, _) -> bucket_of_key ~buckets k = b) vals

let show_pairs ps =
  "[" ^ String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) ps) ^ "]"

let show_req = function
  | Get k -> Printf.sprintf "get %d" k
  | Put (k, v) -> Printf.sprintf "put %d:=%d" k v
  | Freeze b -> Printf.sprintf "freeze b%d" b
  | Install (b, ps) -> Printf.sprintf "install b%d %s" b (show_pairs ps)

let show_resp = function
  | Value v -> Printf.sprintf "value %d" v
  | Ack -> "ack"
  | Refused -> "refused"
  | Sealed ps -> "sealed " ^ show_pairs ps

let spec ~buckets =
  let apply st = function
    | Get k ->
        if List.mem (bucket_of_key ~buckets k) st.frozen then (st, Refused)
        else (st, Value (get_default k st.vals))
    | Put (k, v) ->
        if List.mem (bucket_of_key ~buckets k) st.frozen then (st, Refused)
        else ({ st with vals = put_sorted k v st.vals }, Ack)
    | Freeze b ->
        ({ st with frozen = insert_sorted b st.frozen }, Sealed (seal ~buckets b st.vals))
    | Install (b, pairs) ->
        let keep = List.filter (fun (k, _) -> bucket_of_key ~buckets k <> b) st.vals in
        let vals = List.fold_left (fun acc (k, v) -> put_sorted k v acc) keep pairs in
        ({ vals; frozen = List.filter (fun b' -> b' <> b) st.frozen }, Ack)
  in
  Spec.make
    ~name:(Printf.sprintf "shard-kv/b%d" buckets)
    ~init:{ vals = []; frozen = [] } ~apply ~show_req ~show_resp ()

let flat_spec =
  let apply vals = function
    | Get k -> (vals, Value (get_default k vals))
    | Put (k, v) -> (put_sorted k v vals, Ack)
    | Freeze _ | Install _ -> (vals, Refused)
  in
  Spec.make ~name:"kv" ~init:[] ~apply ~show_req ~show_resp ()
