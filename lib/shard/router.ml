module Make (P : Scs_prims.Prims_intf.S) = struct
  type route = { owner : int; frozen : bool; epoch : int }
  type t = { shards : int; buckets : int; entries : route P.reg array }

  let create ~name ~shards ~buckets () =
    if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
    if buckets < shards then invalid_arg "Router.create: buckets must be >= shards";
    let entries =
      Array.init buckets (fun b ->
          P.reg
            ~name:(Printf.sprintf "%s.route[%d]" name b)
            { owner = b mod shards; frozen = false; epoch = 0 })
    in
    { shards; buckets; entries }

  let shards t = t.shards
  let buckets t = t.buckets
  let route_bucket t ~bucket = P.read t.entries.(bucket)
  let route t ~key = route_bucket t ~bucket:(Kv.bucket_of_key ~buckets:t.buckets key)

  let update t ~bucket f =
    let r = P.read t.entries.(bucket) in
    let r' = f r in
    P.write t.entries.(bucket) r';
    r'

  let freeze t ~bucket = update t ~bucket (fun r -> { r with frozen = true; epoch = r.epoch + 1 })

  let assign t ~bucket ~shard =
    if shard < 0 || shard >= t.shards then invalid_arg "Router.assign: shard out of range";
    update t ~bucket (fun r -> { owner = shard; frozen = false; epoch = r.epoch + 1 })
end
