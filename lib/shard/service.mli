(** The sharded universal-construction service.

    [shards] universal-construction objects (each the paper's composed
    chain, split > bakery > cas by default) serve a keyspace hash-
    partitioned into [buckets] buckets by a {!Router}. A client
    operation routes its key, applies on the owner shard, and — if the
    shard answers [Refused] (the bucket froze or moved under it) —
    re-reads the table and retries with a {e fresh} request id. The
    retry is sound precisely because a committed [Refused] certifies
    the attempt had no effect (see {!Kv}): the operation is applied at
    most once, under exactly one route, even across migrations.

    Retries are bounded: a client whose bucket stays frozen (a
    migrator crashed for good) eventually gives up, leaving its
    operation pending in the harness trace — which the linearizability
    checker already accounts for (a pending operation may or may not
    have taken effect). No operation is ever dropped silently or
    applied twice.

    {!Make.Migration} and {!Make.Batcher} are nested in the functor on
    purpose: one functor application shares the service's abstract
    types across the router, the migration state machine and the
    combining layer — re-applying [module type of] per unit would mint
    incompatible copies of them.

    {2 Crash recovery}

    The per-process handle records the current in-flight attempt
    [(shard, request)] — modelling the small durable per-process log a
    recoverable client keeps, like the harness of
    [Fuzz_run.recoverable_split]. On recovery {!Make.recover}
    re-proposes the {e same} request id on the {e same} shard: the
    universal construction deduplicates by id, so if the crashed
    attempt already committed this returns its original response (no
    second effect), and otherwise it commits now, once. Only a
    [Refused] outcome — proof of no effect — lets recovery fall back
    to the fresh-id retry loop. Re-proposing under a fresh id without
    that certificate would be unsound: the crashed attempt may have
    committed, and a duplicated [Put] is observable (docs/sharding.md
    works the counterexample). *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  module R : module type of Router.Make (P)
  module Uc : module type of Scs_universal.Uc_object.Make (P)

  type t

  val create :
    ?stages:
      (name:string -> slot:int -> Kv.req Scs_spec.Request.t Scs_consensus.Consensus_intf.t) list ->
    name:string ->
    n:int ->
    shards:int ->
    buckets:int ->
    capacity:int ->
    unit ->
    t
  (** [capacity] is each shard's [max_requests]; administrative
      requests (freeze/install) consume it too. [stages] defaults to
      the composed split > bakery > cas chain sized for [n]
      processes. *)

  val router : t -> R.t
  val shards : t -> int
  val buckets : t -> int

  type h

  val handle : t -> pid:int -> h

  type outcome = Done of Kv.resp | Gave_up

  val apply : ?retries:int -> h -> Kv.req -> outcome
  (** Client path (raises [Invalid_argument] on administrative
      requests): route, apply, retry on freeze/[Refused] with fresh
      ids; [retries] (default 64) bounds attempts, frozen-route waits
      included — each costs one [P.pause]. *)

  val apply_on : h -> shard:int -> Kv.req Scs_spec.Request.t -> Kv.resp
  (** Apply directly on a shard, bypassing the router — the
      migration/admin path, also the idempotent re-invocation path
      (request ids are deduplicated by the universal construction). *)

  val fresh_req : h -> Kv.req -> Kv.req Scs_spec.Request.t
  (** A pid-salted request id, unique across the service's handles. *)

  val inflight : h -> (int * Kv.req Scs_spec.Request.t) option
  (** The attempt to re-propose after a crash, if any. Cleared at the
      {e start} of the next [apply] — never when an attempt returns —
      so a crash between the shard committing and the caller recording
      the response still finds it. A non-[None] value after [apply]
      returned is therefore normal, not a leak. *)

  val recover : ?retries:int -> h -> outcome option
  (** Crash-recovery re-invocation as described above; [None] if no
      attempt was in flight (the caller may then safely re-run the
      operation afresh — nothing reached any shard). Idempotent: a
      crash of the recovery itself re-enters and gets the same
      answer. *)

  (** IronFleet-SHT-style bucket delegation, crash-recoverable.

      Moving bucket [b] from its owner [src] to shard [dst]:

      + write the durable descriptor, phase := [Freezing];
      + freeze [b] in the routing table (epoch bump: clients wait);
      + commit [Freeze b] on [src] — this {e is} the drain: every
        racing client op either committed before it (its effect is in
        the sealed pairs) or answers [Refused] after it — and durably
        record the sealed pairs, phase := [Installing];
      + commit [Install (b, pairs)] on [dst];
      + phase := [Rerouting], {e then} assign [b -> dst] in the table
        (epoch bump: clients re-route), phase := [Idle].

      Every step is idempotent given the phase register, so
      {!Migration.recover} simply resumes from the recorded phase:
      re-freezing seals the same pairs (nothing commits on a frozen
      bucket), and re-installing cannot clobber client writes because
      the table points at [dst] only {e after} the [Rerouting] phase
      is durably recorded — no client [Put] can reach [dst]'s copy of
      [b] while a re-install is still possible. The phase register is
      single-writer: one migration at a time (the harnesses' migrator
      process). *)
  module Migration : sig
    type svc := t

    type phase =
      | Idle
      | Freezing of { bucket : int; dst : int }
      | Installing of { bucket : int; dst : int; pairs : (int * int) list }
      | Rerouting of { bucket : int; dst : int }

    type t

    val create : name:string -> svc -> t
    val phase : t -> phase

    val migrate : t -> h:h -> bucket:int -> dst:int -> unit
    (** Run the protocol above through [h] (the migrator's handle).
        Raises [Invalid_argument] if a migration is already in flight
        or [dst]/[bucket] is out of range. Migrating a bucket onto its
        current owner is legal (freeze, reinstall in place,
        unfreeze). *)

    val recover : t -> h:h -> unit
    (** Resume an interrupted migration from its durable phase; no-op
        when [Idle]. Administrative requests are re-proposed under
        fresh ids — sound because [Freeze]/[Install] are idempotent in
        the shard spec, unlike client [Put]s. *)
  end

  (** Per-shard flat-combining operation queues — the native backend's
      batching layer, written against [P] like everything else so the
      simulator selfcheck covers it.

      A submitter pushes a cell onto its shard's Treiber stack and
      spins: if its response has landed it returns, otherwise it
      try-acquires the shard's combiner lock and, on success, drains
      the whole queue through its {e own} universal-construction
      handle — one process proposing a batch back-to-back, so the
      consensus fast path stays solo and the bakery/cas fallbacks
      stay cold. Self-service on the spin path makes the scheme
      deadlock-free: a cell never waits on a combiner that is not
      running (the submitter becomes one). Route changes between
      submit and drain are caught by the combiner revalidating each
      cell's bucket; stale cells answer [Refused] and the submitter
      re-routes, exactly like the unbatched path. Not crash-safe (the
      queues are volatile); the crash fuzz workloads drive the service
      directly. *)
  module Batcher : sig
    type svc := t
    type t

    val create : name:string -> svc -> t

    val apply : ?retries:int -> t -> h:h -> Kv.req -> outcome
    (** Same contract as {!val:apply}, through the combining layer. *)

    val batches : t -> int
    (** Combiner drains executed so far (harness-visible counter). *)

    val batched_ops : t -> int
    (** Cells served across all drains; [batched_ops / batches] is the
        mean batch size. *)
  end
end
