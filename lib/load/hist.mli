(** Fixed-bucket log-scaled latency histogram for the native load harness.

    The hot path ({!record}) is a handful of integer operations and one
    array increment — no allocation, no branches on the value
    distribution — so per-operation wall-clock recording costs
    nanoseconds even at millions of ops/sec. The layout is an
    HdrHistogram-style exponential bucketing with 32 linear sub-buckets
    per power of two: values below 32 are exact, larger values are
    resolved to a relative error of at most [1/32] (~3.1%), which is
    far below the run-to-run noise of any wall-clock percentile.

    Values are non-negative integers (the harness records nanoseconds);
    negative inputs are clamped to 0. Values at or above 2^40
    (~18 minutes in ns) land in a single overflow bucket; {!quantile}
    answers for them with the exact maximum recorded value.

    Histograms merge by bucket-wise addition, so per-domain histograms
    recorded independently during a run combine into the run-wide
    distribution at join time; {!merge} is associative and commutative
    (exactly, not approximately — asserted by the unit tests). *)

type t

val create : unit -> t

val clear : t -> unit

val record : t -> int -> unit
(** [record t v] adds one sample of value [v] (clamped to [max 0 v]).
    O(1), allocation-free. *)

val count : t -> int
(** Total samples recorded. *)

val total : t -> int
(** Exact sum of all recorded (clamped) values. *)

val max_value : t -> int
(** Exact maximum recorded value; 0 when empty. *)

val min_value : t -> int
(** Exact minimum recorded value; 0 when empty. *)

val mean : t -> float
(** [total / count]; 0 when empty. *)

val overflow : t -> int
(** Samples that landed in the overflow bucket (value ≥ 2^40). *)

val quantile : t -> float -> int
(** [quantile t q] with [q] in (0, 1]: a representative value (bucket
    midpoint, clamped to [[min_value, max_value]] so quantiles never
    overshoot the observed extremes) whose rank is [ceil (q * count)].
    Exact for values below 32; within 3.1% above. Returns {!max_value}
    when the rank falls in the overflow bucket, and 0 on an empty
    histogram. *)

val merge : into:t -> t -> unit
(** Bucket-wise addition of the source into [into]; the source is not
    modified. Associative and commutative. *)

val equal : t -> t -> bool
(** Bucket-for-bucket equality (including count/total/min/max) — used
    by the merge-associativity tests. *)
