(** YCSB-style operation mixes and key-popularity skew for the load
    harness.

    A mix is a read ratio plus a key sampler over a fixed keyspace.
    The named profiles mirror the classic YCSB core workloads —
    A (50/50 read/update), B (95/5) and C (read-only) — and an extra
    U (update-only) profile used when comparing native abort rates
    against the simulator, whose workloads are all updates.

    Zipfian sampling uses the exact CDF of the finite Zipf(θ)
    distribution, precomputed at {!make} time; drawing a key is a
    binary search over the cumulative weights — O(log keys), no
    allocation. Key 0 is the hottest. *)

type profile = A | B | C | U

val profile_of_string : string -> profile option
val profile_read_ratio : profile -> float
(** A = 0.5, B = 0.95, C = 1.0, U = 0.0. *)

type skew = Uniform | Zipfian of float  (** θ; YCSB default 0.99 *)

type t

val make : read_ratio:float -> keys:int -> skew:skew -> t
(** [read_ratio] in [0,1]; [keys] >= 1. Zipfian mixes reuse one
    process-wide immutable CDF array per (keys, θ) — the table is pure
    and read-only, so driver instances and domains share it instead of
    each paying the O(keys) [**] build. *)

val make_cold : read_ratio:float -> keys:int -> skew:skew -> t
(** [make] with a private CDF rebuild, bypassing the shared cache —
    the bench's cold row measures exactly the saved work. *)

val zipf_cdf : keys:int -> theta:float -> float array
(** The shared CDF (built on first use, then cached). Treat as
    read-only. *)

val keys : t -> int
val read_ratio : t -> float
val skew : t -> skew

val is_read : t -> Scs_util.Rng.t -> bool
val sample_key : t -> Scs_util.Rng.t -> int

val describe : t -> string
(** e.g. ["r0.50-zipf0.99-k16"] — used in workload labels and JSON. *)
