(* Exponential buckets with 32 linear sub-buckets per power of two.

   For a value v:
   - v < 32: bucket index is v itself (exact).
   - otherwise, with k the index of v's highest set bit (k >= 5):
       index = (k - 4) * 32 + ((v lsr (k - 5)) land 31)
     which is monotone in v and resolves v to 1/32 relative error.
   - v >= 2^40 goes to the single overflow bucket.

   The inverse (bucket lower bound) for index >= 32 with
   block = index / 32 and sub = index mod 32 is
       lo = (32 + sub) lsl (block - 1),  width = 1 lsl (block - 1). *)

let sub_bits = 5
let subs = 1 lsl sub_bits (* 32 *)
let max_exp = 40 (* values >= 2^40 ns overflow *)
let buckets = ((max_exp - sub_bits) * subs) + subs (* 1152: indices 0 .. 1151 *)

type t = {
  counts : int array; (* [buckets] regular + 1 overflow at index [buckets] *)
  mutable count : int;
  mutable total : int;
  mutable max_v : int;
  mutable min_v : int;
}

let create () =
  { counts = Array.make (buckets + 1) 0; count = 0; total = 0; max_v = 0; min_v = max_int }

let clear t =
  Array.fill t.counts 0 (buckets + 1) 0;
  t.count <- 0;
  t.total <- 0;
  t.max_v <- 0;
  t.min_v <- max_int

(* index of the highest set bit; v > 0; branchy binary reduction, no
   dependence on any intrinsic *)
let log2 v =
  let k = 0 and v = v in
  let k, v = if v >= 1 lsl 32 then (k + 32, v lsr 32) else (k, v) in
  let k, v = if v >= 1 lsl 16 then (k + 16, v lsr 16) else (k, v) in
  let k, v = if v >= 1 lsl 8 then (k + 8, v lsr 8) else (k, v) in
  let k, v = if v >= 1 lsl 4 then (k + 4, v lsr 4) else (k, v) in
  let k, v = if v >= 1 lsl 2 then (k + 2, v lsr 2) else (k, v) in
  if v >= 2 then k + 1 else k

let index_of v =
  if v < subs then v
  else if v >= 1 lsl max_exp then buckets
  else
    let k = log2 v in
    ((k - sub_bits + 1) * subs) + ((v lsr (k - sub_bits)) land (subs - 1))

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.total <- t.total + v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let count t = t.count
let total t = t.total
let max_value t = t.max_v
let min_value t = if t.count = 0 then 0 else t.min_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count
let overflow t = t.counts.(buckets)

(* representative value of a bucket: its midpoint, exact for width-1 and
   width-2 buckets *)
let representative idx =
  if idx < subs then idx
  else
    let block = idx / subs and sub = idx mod subs in
    let lo = (subs + sub) lsl (block - 1) in
    let width = 1 lsl (block - 1) in
    lo + ((width - 1) / 2)

let quantile t q =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let acc = ref 0 and idx = ref 0 and found = ref (-1) in
    while !found < 0 && !idx <= buckets do
      acc := !acc + t.counts.(!idx);
      if !acc >= rank then found := !idx;
      incr idx
    done;
    if !found < 0 || !found = buckets then t.max_v
    else begin
      (* A bucket midpoint can overshoot the true maximum (or undershoot
         the minimum) when the extreme sample sits in the other half of
         its bucket; clamping to the observed range keeps quantiles
         within [min, max] without losing bucket resolution. *)
      let v = representative !found in
      if v > t.max_v then t.max_v else if v < t.min_v then t.min_v else v
    end
  end

let merge ~into src =
  for i = 0 to buckets do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.count <- into.count + src.count;
  into.total <- into.total + src.total;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.min_v < into.min_v then into.min_v <- src.min_v

let equal a b =
  a.count = b.count && a.total = b.total && a.max_v = b.max_v && a.min_v = b.min_v
  && a.counts = b.counts
