(** Native multicore load harness: a YCSB-style closed-loop macro-bench
    that drives the paper's objects on real OCaml 5 domains.

    Everything else in this repository measures {e steps} under the
    deterministic simulator; this module measures {e wall clock} under
    true hardware parallelism. [N] domains run a closed loop against a
    keyed arena of objects; each iteration draws an operation from a
    {!Mix.t} (read vs update, key by uniform or zipfian skew), applies
    it through a backend-agnostic {!inst} driver, and — during the
    measure phase — records its latency into a per-domain {!Hist.t}.
    Per-domain abort/handoff counters live in per-domain {!Scs_obs.Obs}
    sinks merged at join time, so the hot path never contends on the
    observability layer.

    {2 Closed loops over bounded objects}

    The paper's objects are one-shot or bounded: a composed TAS decides
    once, a long-lived TAS has a fixed round array, a consensus chain
    decides once, and a universal-construction object has a bounded
    request history (and response evaluation that replays it). A closed
    loop must therefore periodically {e recycle} its arena. Drivers
    request this by setting a flag bit; the engine then runs a
    quiescent barrier: the requesting domain becomes the leader, every
    other active domain parks at the barrier (domains that already
    stopped are excluded), the leader rebuilds or harness-resets the
    arena while provably no operation is in flight — exactly the
    precondition of the [harness_reset]/[harness_recycle] entry points
    — flips a sense flag, and every domain refreshes its per-domain
    handles before resuming. Recycle counts are reported in {!result}
    so a run can be judged on how much of its wall clock went to arena
    churn.

    The driver functor {!Driver} is deliberately parameterised over
    {!Scs_prims.Prims_intf.S}: instantiated with [Native_prims] it is
    the load harness, instantiated with [Sim_prims] the very same
    driver code runs under the simulator ({!sim_selfcheck}), which
    pins the backend seam — algorithm steps go through [P] only, while
    harness bookkeeping (dispensers, epoch budgets) deliberately uses
    raw [Atomic] so it stays invisible to the simulator's step
    accounting. *)

(** The workload families. [Speculative] and [Strict_tas] are arenas of
    long-lived composed TAS objects (paper Algorithm 2, default and
    strict [A1]); [One_shot] and [Solo_fast] are arenas of one-shot
    compositions recycled per epoch; [Hardware] and [Ttas_lock] are the
    baselines (raw hardware TAS win/reset cycles, and a TTAS
    lock-protected counter); [Uc_register] is a register built from the
    composed universal construction (split > bakery > cas stages);
    [Chain] proposes on a composed consensus chain, advancing to a
    fresh instance as each decides; [Sharded_uc] routes keyed
    operations over [cfg.shards] universal-construction instances
    through the {!Scs_shard} service (batched via its flat-combining
    [Batcher], with optional periodic bucket migration). *)
type workload =
  | Speculative
  | Strict_tas
  | Solo_fast
  | One_shot
  | Hardware
  | Ttas_lock
  | Uc_register
  | Chain
  | Sharded_uc

val workload_name : workload -> string
val workload_of_string : string -> workload option
val all_workloads : workload list

val workload_families : (string * workload list) list
(** The acceptance families: composed TAS variants, the UC-backed
    object, the consensus chain, and the sharded service. *)

type cfg = {
  workload : workload;
  domains : int;
  mix : Mix.t;
  rounds : int;  (** long-lived TAS round capacity *)
  epoch_ops : int;  (** per-domain updates between arena recycles *)
  uc_capacity : int;  (** universal-construction [max_requests] *)
  chain_capacity : int;  (** consensus instances per chain arena *)
  shards : int;  (** sharded-uc: universal-construction instances *)
  buckets : int;  (** sharded-uc: routing-table hash buckets *)
  migrate_every : int;
      (** sharded-uc: domain 0 delegates a bucket every this many of
          its own updates; 0 disables migration *)
  warmup_s : float;
  duration_s : float;
  seed : int;
}

val default_cfg : workload:workload -> domains:int -> cfg
(** Mix A (50/50) over 16 keys with zipfian 0.99 skew, 0.2s warmup,
    1s measure, family-appropriate capacities. *)

type result = {
  r_workload : workload;
  r_label : string;  (** e.g. ["native:speculative:r0.50-zipf0.99-k16"] *)
  r_domains : int;
  r_elapsed_s : float;  (** measured wall-clock window *)
  r_ops : int;
  r_reads : int;
  r_updates : int;
  r_ops_per_sec : float;
  r_p50_us : float;
  r_p99_us : float;
  r_p999_us : float;
  r_mean_us : float;
  r_max_us : float;
  r_aborts : int;  (** fast-path aborts (falls to the hardware module / next stage) *)
  r_handoffs : int;  (** switch-value handoffs between composed modules *)
  r_wins : int;
  r_resets : int;  (** winner resets (long-lived rounds, hardware cycles) *)
  r_recycles : int;  (** quiescent arena recycles *)
  r_abort_rate : float;  (** aborts per update *)
  r_extra : (string * int) list;
      (** workload-specific counters (sharded-uc: flat-combining batch
          counts and per-shard op totals — the imbalance evidence) *)
}

val run : cfg -> result
(** Spawn [cfg.domains] domains, run warmup then the measured window,
    join, merge per-domain sinks. Works on any host — domains
    time-share when cores are scarce (and the wall-clock numbers then
    measure exactly that). *)

val to_record : result -> Scs_obs.Trajectory.record
(** Native trajectory record: simulator-step fields zeroed,
    [schedules_per_sec] mirroring ops/sec, and the [native] sub-record
    populated (see {!Scs_obs.Trajectory.native}). *)

val pp_result : Format.formatter -> result -> unit

(** The backend-agnostic driver layer, exposed for the conformance
    tests. [inst] closures return a flag word: bit 0 = win, bit 1 =
    reset performed, bit 2 = recycle requested; bits 8–15 the op's
    abort count; bits 16–23 its handoff count. *)
type inst = {
  i_read : pid:int -> key:int -> int;
  i_update : pid:int -> key:int -> rng:Scs_util.Rng.t -> int;
  i_refresh : pid:int -> unit;
      (** Rebuild per-domain handles after a recycle; called with no op
          in flight (at the barrier, or quiescently in tests). *)
  i_recycle : unit -> unit;
      (** Rebuild/harness-reset the arena; caller must guarantee
          quiescence. *)
  i_stats : unit -> (string * int) list;
      (** Workload-specific counters for {!result}[.r_extra]; called
          once after all domains have joined. *)
}

val f_win : int
val f_reset : int
val f_recycle : int
val flag_aborts : int -> int
val flag_handoffs : int -> int

module Driver (P : Scs_prims.Prims_intf.S) : sig
  val make : cfg -> inst
  (** Build the driver for [cfg.workload] against backend [P]. All
      algorithm steps go through [P]; only harness bookkeeping uses raw
      [Atomic]. *)
end

val sim_selfcheck :
  ?seed:int ->
  ?backend:Scs_prims.Backend.t ->
  n:int ->
  ops_per_proc:int ->
  workload ->
  bool
(** Instantiate {!Driver} with the simulator backend, run [n] process
    fibers of [ops_per_proc] updates each under a deterministic
    sequential policy, exercise a quiescent recycle + refresh, run a
    second epoch, and check the workload's win/abort invariants (e.g.
    at most one winner per one-shot instance per epoch). Proves the
    driver layer is truly backend-agnostic. *)
