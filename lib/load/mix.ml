open Scs_util

type profile = A | B | C | U

let profile_of_string = function
  | "a" | "A" -> Some A
  | "b" | "B" -> Some B
  | "c" | "C" -> Some C
  | "u" | "U" -> Some U
  | _ -> None

let profile_read_ratio = function A -> 0.5 | B -> 0.95 | C -> 1.0 | U -> 0.0

type skew = Uniform | Zipfian of float

type t = {
  keys : int;
  read_ratio : float;
  skew : skew;
  cdf : float array; (* [||] for uniform *)
}

let make ~read_ratio ~keys ~skew =
  if keys < 1 then invalid_arg "Mix.make: keys must be >= 1";
  if read_ratio < 0.0 || read_ratio > 1.0 then
    invalid_arg "Mix.make: read_ratio must be in [0,1]";
  let cdf =
    match skew with
    | Uniform -> [||]
    | Zipfian theta ->
        let w = Array.init keys (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
        let acc = ref 0.0 in
        let c =
          Array.map
            (fun x ->
              acc := !acc +. x;
              !acc)
            w
        in
        let z = c.(keys - 1) in
        Array.map (fun x -> x /. z) c
  in
  { keys; read_ratio; skew; cdf }

let keys t = t.keys
let read_ratio t = t.read_ratio
let skew t = t.skew
let is_read t rng = t.read_ratio > 0.0 && Rng.float rng < t.read_ratio

let sample_key t rng =
  match t.skew with
  | Uniform -> if t.keys = 1 then 0 else Rng.int rng t.keys
  | Zipfian _ ->
      let u = Rng.float rng in
      (* first index with cdf.(i) >= u *)
      let lo = ref 0 and hi = ref (t.keys - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
      done;
      !lo

let describe t =
  Printf.sprintf "r%.2f-%s-k%d" t.read_ratio
    (match t.skew with Uniform -> "unif" | Zipfian th -> Printf.sprintf "zipf%.2f" th)
    t.keys
