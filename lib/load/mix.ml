open Scs_util

type profile = A | B | C | U

let profile_of_string = function
  | "a" | "A" -> Some A
  | "b" | "B" -> Some B
  | "c" | "C" -> Some C
  | "u" | "U" -> Some U
  | _ -> None

let profile_read_ratio = function A -> 0.5 | B -> 0.95 | C -> 1.0 | U -> 0.0

type skew = Uniform | Zipfian of float

type t = {
  keys : int;
  read_ratio : float;
  skew : skew;
  cdf : float array; (* [||] for uniform *)
}

let build_zipf_cdf ~keys ~theta =
  let w = Array.init keys (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let acc = ref 0.0 in
  let c =
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc)
      w
  in
  let z = c.(keys - 1) in
  Array.map (fun x -> x /. z) c

(* The CDF is pure in (keys, theta) and read-only after construction,
   so every driver instance — and every domain — can share one array.
   Building it is O(keys) with a [**] per key: at --keys 1e6 that is
   the dominant driver setup cost (bench/main.ml has the row), and a
   sweep used to pay it once per row. The mutex only guards the table;
   the arrays themselves are immutable. *)
let cdf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let cdf_lock = Mutex.create ()

let zipf_cdf ~keys ~theta =
  Mutex.lock cdf_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cdf_lock)
    (fun () ->
      match Hashtbl.find_opt cdf_cache (keys, theta) with
      | Some c -> c
      | None ->
          let c = build_zipf_cdf ~keys ~theta in
          Hashtbl.replace cdf_cache (keys, theta) c;
          c)

let mk ~share_cdf ~read_ratio ~keys ~skew =
  if keys < 1 then invalid_arg "Mix.make: keys must be >= 1";
  if read_ratio < 0.0 || read_ratio > 1.0 then
    invalid_arg "Mix.make: read_ratio must be in [0,1]";
  let cdf =
    match skew with
    | Uniform -> [||]
    | Zipfian theta ->
        if share_cdf then zipf_cdf ~keys ~theta else build_zipf_cdf ~keys ~theta
  in
  { keys; read_ratio; skew; cdf }

let make ~read_ratio ~keys ~skew = mk ~share_cdf:true ~read_ratio ~keys ~skew
let make_cold ~read_ratio ~keys ~skew = mk ~share_cdf:false ~read_ratio ~keys ~skew

let keys t = t.keys
let read_ratio t = t.read_ratio
let skew t = t.skew
let is_read t rng = t.read_ratio > 0.0 && Rng.float rng < t.read_ratio

let sample_key t rng =
  match t.skew with
  | Uniform -> if t.keys = 1 then 0 else Rng.int rng t.keys
  | Zipfian _ ->
      let u = Rng.float rng in
      (* first index with cdf.(i) >= u *)
      let lo = ref 0 and hi = ref (t.keys - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
      done;
      !lo

let describe t =
  Printf.sprintf "r%.2f-%s-k%d" t.read_ratio
    (match t.skew with Uniform -> "unif" | Zipfian th -> Printf.sprintf "zipf%.2f" th)
    t.keys
