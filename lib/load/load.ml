open Scs_util
open Scs_spec
open Scs_composable

type workload =
  | Speculative
  | Strict_tas
  | Solo_fast
  | One_shot
  | Hardware
  | Ttas_lock
  | Uc_register
  | Chain
  | Sharded_uc

let workload_name = function
  | Speculative -> "speculative"
  | Strict_tas -> "strict-tas"
  | Solo_fast -> "solo-fast"
  | One_shot -> "one-shot"
  | Hardware -> "hardware"
  | Ttas_lock -> "ttas-lock"
  | Uc_register -> "uc-register"
  | Chain -> "chain"
  | Sharded_uc -> "sharded-uc"

let workload_of_string = function
  | "speculative" -> Some Speculative
  | "strict-tas" | "strict" -> Some Strict_tas
  | "solo-fast" -> Some Solo_fast
  | "one-shot" -> Some One_shot
  | "hardware" -> Some Hardware
  | "ttas-lock" | "ttas" -> Some Ttas_lock
  | "uc-register" | "uc" -> Some Uc_register
  | "chain" -> Some Chain
  | "sharded-uc" | "sharded" -> Some Sharded_uc
  | _ -> None

let all_workloads =
  [
    Speculative;
    Strict_tas;
    Solo_fast;
    One_shot;
    Hardware;
    Ttas_lock;
    Uc_register;
    Chain;
    Sharded_uc;
  ]

let workload_families =
  [
    ("tas", [ Speculative; Strict_tas; Solo_fast; One_shot; Hardware; Ttas_lock ]);
    ("uc", [ Uc_register ]);
    ("chain", [ Chain ]);
    ("shard", [ Sharded_uc ]);
  ]

type cfg = {
  workload : workload;
  domains : int;
  mix : Mix.t;
  rounds : int;
  epoch_ops : int;
  uc_capacity : int;
  chain_capacity : int;
  shards : int;  (** sharded-uc: universal-construction instances *)
  buckets : int;  (** sharded-uc: routing-table hash buckets *)
  migrate_every : int;
      (** sharded-uc: domain 0 delegates a bucket every this many of
          its own updates; 0 disables migration *)
  warmup_s : float;
  duration_s : float;
  seed : int;
}

let default_cfg ~workload ~domains =
  {
    workload;
    domains;
    mix = Mix.make ~read_ratio:0.5 ~keys:16 ~skew:(Mix.Zipfian 0.99);
    rounds = 4096;
    epoch_ops = 8192;
    uc_capacity = 512;
    chain_capacity = 1024;
    shards = 4;
    buckets = 64;
    migrate_every = 0;
    warmup_s = 0.2;
    duration_s = 1.0;
    seed = 42;
  }

(* Flag word returned by driver closures: low bits are events of this
   op, bytes 1 and 2 carry small counters. *)
let f_win = 1
let f_reset = 2
let f_recycle = 4
let f_aborts n = (n land 0xff) lsl 8
let f_handoffs n = (n land 0xff) lsl 16
let flag_aborts fl = (fl lsr 8) land 0xff
let flag_handoffs fl = (fl lsr 16) land 0xff

type inst = {
  i_read : pid:int -> key:int -> int;
  i_update : pid:int -> key:int -> rng:Rng.t -> int;
  i_refresh : pid:int -> unit;
  i_recycle : unit -> unit;
  i_stats : unit -> (string * int) list;
      (** workload-specific counters for the result's extras (e.g. the
          sharded service's per-shard op counts); called after join. *)
}

module Driver (P : Scs_prims.Prims_intf.S) = struct
  module Os = Scs_tas.One_shot.Make (P)
  module Ll = Scs_tas.Long_lived.Make (P)
  module Sf = Scs_tas.Solo_fast.Make (P)
  module Lk = Scs_tas.Locks.Make (P)
  module Bl = Scs_tas.Baselines.Make (P)
  module Uc = Scs_universal.Uc_object.Make (P)
  module Sv = Scs_shard.Service.Make (P)
  module Ch = Scs_consensus.Chain.Make (P)
  module Sc = Scs_consensus.Split_consensus.Make (P)
  module Ab = Scs_consensus.Abortable_bakery.Make (P)
  module Cc = Scs_consensus.Cas_consensus.Make (P)
  module CI = Scs_consensus.Consensus_intf

  let spf = Printf.sprintf

  (* Long-lived composed TAS arena (Speculative / Strict_tas). Rounds
     advance as winners reset; when any key's round count nears the
     array bound, the op requests a recycle and the barrier leader
     rewinds every object ([harness_recycle], sound at quiescence). *)
  let long_lived ~strict ~domains ~keys ~rounds =
    let margin = (4 * domains) + 4 in
    let arr =
      Array.init keys (fun k -> Ll.create ~strict ~name:(spf "load.ll[%d]" k) ~rounds ())
    in
    let handles = Array.init domains (fun pid -> Array.map (fun t -> Ll.handle t ~pid) arr) in
    let i_update ~pid ~key ~rng:_ =
      let h = handles.(pid).(key) in
      match Ll.test_and_set_info h with
      | resp, stage, round ->
          let won = resp = Objects.Winner in
          if won then Ll.reset h;
          (if won then f_win lor f_reset else 0)
          lor (if stage = Scs_tas.One_shot.Fallback then f_aborts 1 lor f_handoffs 1 else 0)
          lor if round >= rounds - margin then f_recycle else 0
      | exception Failure _ -> f_recycle
    in
    let i_read ~pid ~key = if Ll.value_read handles.(pid).(key) then f_win else 0 in
    {
      i_read;
      i_update;
      i_refresh = (fun ~pid:_ -> ());
      i_recycle = (fun () -> Array.iter Ll.harness_recycle arr);
      i_stats = (fun () -> []);
    }

  (* One-shot composition arenas (One_shot / Solo_fast): each key holds
     a single decision; per-domain epoch budgets trigger a periodic
     harness reset so the contended decision path keeps being
     exercised instead of degenerating into a loser-probe loop. *)
  let one_shot_arena ~domains ~keys ~epoch_ops =
    let arr = Array.init keys (fun k -> Os.create ~name:(spf "load.os[%d]" k) ()) in
    let local = Array.make domains 0 in
    let i_update ~pid ~key ~rng:_ =
      let resp, stage = Os.test_and_set_staged arr.(key) ~pid in
      let c = local.(pid) + 1 in
      local.(pid) <- c;
      (if resp = Objects.Winner then f_win else 0)
      lor (if stage = Scs_tas.One_shot.Fallback then f_aborts 1 lor f_handoffs 1 else 0)
      lor if c >= epoch_ops then f_recycle else 0
    in
    let i_read ~pid:_ ~key = if Os.value_read arr.(key) then f_win else 0 in
    {
      i_read;
      i_update;
      i_refresh = (fun ~pid -> local.(pid) <- 0);
      i_recycle = (fun () -> Array.iter Os.harness_reset arr);
      i_stats = (fun () -> []);
    }

  let solo_fast_arena ~domains ~keys ~epoch_ops =
    let arr = Array.init keys (fun k -> Sf.create ~name:(spf "load.sf[%d]" k) ()) in
    let local = Array.make domains 0 in
    let i_update ~pid ~key ~rng:_ =
      let resp, stage = Sf.test_and_set_staged arr.(key) ~pid in
      let c = local.(pid) + 1 in
      local.(pid) <- c;
      (if resp = Objects.Winner then f_win else 0)
      lor (if stage = Scs_tas.One_shot.Fallback then f_aborts 1 lor f_handoffs 1 else 0)
      lor if c >= epoch_ops then f_recycle else 0
    in
    let i_read ~pid:_ ~key = if Sf.value_read arr.(key) then f_win else 0 in
    {
      i_read;
      i_update;
      i_refresh = (fun ~pid -> local.(pid) <- 0);
      i_recycle = (fun () -> Array.iter Sf.harness_reset arr);
      i_stats = (fun () -> []);
    }

  (* Raw hardware TAS baseline: win/reset cycles, one AWAR per update
     even uncontended — the cost the speculative objects avoid. *)
  let hardware ~keys =
    let arr = Array.init keys (fun k -> Bl.Hardware.create ~name:(spf "load.hw[%d]" k) ()) in
    let i_update ~pid ~key ~rng:_ =
      match Bl.Hardware.test_and_set arr.(key) ~pid with
      | Objects.Winner ->
          Bl.Hardware.reset arr.(key);
          f_win lor f_reset
      | Objects.Loser -> 0
    in
    let i_read ~pid:_ ~key = if Bl.Hardware.read arr.(key) then f_win else 0 in
    {
      i_read;
      i_update;
      i_refresh = (fun ~pid:_ -> ());
      i_recycle = (fun () -> ());
      i_stats = (fun () -> []);
    }

  (* TTAS lock baseline: per-key lock-protected counter. The counter
     cells are plain ints written only under the lock; the unlocked
     read is an intentional benign race (immediate values cannot
     tear). *)
  let ttas_lock ~keys =
    let locks = Array.init keys (fun k -> Lk.Ttas.create ~name:(spf "load.lk[%d]" k) ()) in
    let cells = Array.make keys 0 in
    let i_update ~pid:_ ~key ~rng:_ =
      Lk.Ttas.acquire locks.(key);
      cells.(key) <- cells.(key) + 1;
      Lk.Ttas.release locks.(key);
      f_win lor f_reset
    in
    let i_read ~pid:_ ~key = if cells.(key) > 0 then f_win else 0 in
    {
      i_read;
      i_update;
      i_refresh = (fun ~pid:_ -> ());
      i_recycle = (fun () -> ());
      i_stats = (fun () -> []);
    }

  (* Universal-construction register (split > bakery > cas stages).
     Request histories are bounded by [max_requests] and responses
     replay the history, so each op — reads included, they are
     requests too — consumes capacity; per-domain budgets request a
     recycle well before exhaustion, and the leader rebuilds the whole
     arena (a fresh generation of objects; per-domain phandles are
     rebuilt in refresh). *)
  let uc_register ~domains ~keys ~capacity =
    let stages =
      [
        (fun ~name ~slot -> Sc.instance (Sc.create ~name:(spf "%s.split[%d]" name slot) ()));
        (fun ~name ~slot ->
          Ab.instance (Ab.create ~name:(spf "%s.bakery[%d]" name slot) ~n:domains ()));
        (fun ~name ~slot -> Cc.instance (Cc.create ~name:(spf "%s.cas[%d]" name slot) ()));
      ]
    in
    let mk_arena () =
      Array.init keys (fun k ->
          Uc.Typed.create Objects.register
            (Uc.create ~name:(spf "load.uc[%d]" k) ~n:domains ~max_requests:capacity ~stages ()))
    in
    let arena = ref (mk_arena ()) in
    let budget = max 1 ((capacity - (2 * domains) - 2) / domains) in
    let used = Array.make domains 0 in
    let ctr = Array.make domains 0 in
    let handles =
      Array.init domains (fun pid -> Array.map (fun o -> Uc.Typed.handle o ~pid) !arena)
    in
    let fresh_req pid payload =
      let c = ctr.(pid) + 1 in
      ctr.(pid) <- c;
      Request.make ((c * domains) + pid) payload
    in
    let apply ~pid ~key payload =
      let hp = handles.(pid).(key) in
      let s0 = Uc.stage_of (snd hp) in
      match Uc.Typed.apply hp (fresh_req pid payload) with
      | _ ->
          let switched = Uc.stage_of (snd hp) - s0 in
          let u = used.(pid) + 1 in
          used.(pid) <- u;
          f_aborts switched lor f_handoffs switched
          lor if u >= budget then f_recycle else 0
      | exception Failure _ -> f_recycle
    in
    let i_update ~pid ~key ~rng = f_win lor apply ~pid ~key (Objects.Reg_write (Rng.int rng 1024)) in
    let i_read ~pid ~key = apply ~pid ~key Objects.Reg_read in
    let i_refresh ~pid =
      handles.(pid) <- Array.map (fun o -> Uc.Typed.handle o ~pid) !arena;
      used.(pid) <- 0
    in
    {
      i_read;
      i_update;
      i_refresh;
      i_recycle = (fun () -> arena := mk_arena ());
      i_stats = (fun () -> []);
    }

  (* Composed consensus chain: per key, an array of chain instances and
     an atomic cursor. Every proposer plays the current instance (that
     is the contention); the round winner advances the cursor. Nearing
     the end of the array requests a recycle; the leader rebuilds the
     instances and rewinds the cursors. Handoffs are counted by the
     chain's own [on_handoff] hook into per-domain cells. *)
  let chain ~domains ~keys ~capacity =
    let margin = (2 * domains) + 2 in
    let hand = Array.make domains 0 in
    let on_handoff ~pid ~stage:_ = hand.(pid) <- hand.(pid) + 1 in
    let mk_chain k i =
      Ch.make ~on_handoff ~name:(spf "load.chain[%d][%d]" k i)
        [
          Sc.instance (Sc.create ~name:(spf "load.chain[%d][%d].split" k i) ());
          Ab.instance (Ab.create ~name:(spf "load.chain[%d][%d].bakery" k i) ~n:domains ());
          Cc.instance (Cc.create ~name:(spf "load.chain[%d][%d].cas" k i) ());
        ]
    in
    let arena = Array.init keys (fun k -> Array.init capacity (mk_chain k)) in
    let cur = Array.init keys (fun _ -> Atomic.make 0) in
    let i_update ~pid ~key ~rng:_ =
      let i = Atomic.get cur.(key) in
      if i >= capacity then f_recycle
      else begin
        let inst = arena.(key).(i) in
        let h0 = hand.(pid) in
        let won =
          match inst.CI.run ~pid ~old:None (pid + 1) with
          | Outcome.Commit (Some v) -> v = pid + 1
          | _ -> false
        in
        if won then ignore (Atomic.compare_and_set cur.(key) i (i + 1));
        let switched = hand.(pid) - h0 in
        (if won then f_win else 0)
        lor f_aborts switched lor f_handoffs switched
        lor if i >= capacity - margin then f_recycle else 0
      end
    in
    let i_read ~pid ~key =
      let i = min (Atomic.get cur.(key)) (capacity - 1) in
      match arena.(key).(i).CI.propose_raw ~pid None with
      | Outcome.Commit (Some _) -> f_win
      | _ -> 0
    in
    (* Rebuild only the decided prefix of each key: recycle cost stays
       proportional to the ops since the last recycle (a consensus
       instance decides once, so arena churn is intrinsic to a chain
       closed loop), not to [keys * capacity]. *)
    let i_recycle () =
      Array.iteri
        (fun k chains ->
          let used = min (Atomic.get cur.(k) + 1) capacity in
          for i = 0 to used - 1 do
            chains.(i) <- mk_chain k i
          done;
          Atomic.set cur.(k) 0)
        arena
    in
    { i_read; i_update; i_refresh = (fun ~pid:_ -> ()); i_recycle; i_stats = (fun () -> []) }

  (* The sharded universal-construction service: keys hash to buckets,
     buckets route to one of [shards] UC instances, and every op goes
     through the per-shard flat-combining batcher. The keyspace's
     total state budget [capacity] is split across shards, so more
     shards mean shorter per-shard request histories — that is the
     sharding win the --shards sweep measures (response evaluation
     replays the history, so per-op cost scales with per-shard
     capacity), on top of real parallelism when cores allow. Domain 0
     optionally delegates a bucket to the next shard every
     [migrate_every] of its own updates, exercising the freeze → seal
     → install → re-route protocol under full native load. *)
  let sharded_uc ~domains ~shards ~buckets ~capacity ~migrate_every =
    let shard_cap = max ((4 * domains) + 16) (capacity / shards) in
    let generation = Atomic.make 0 in
    let mk () =
      let g = Atomic.fetch_and_add generation 1 in
      let svc =
        Sv.create ~name:(spf "load.svc.g%d" g) ~n:domains ~shards ~buckets
          ~capacity:shard_cap ()
      in
      (svc, Sv.Batcher.create ~name:(spf "load.bat.g%d" g) svc)
    in
    let arena = ref (mk ()) in
    let budget = max 1 ((shard_cap - (2 * domains) - 4) / domains) in
    let handles = Array.init domains (fun pid -> Sv.handle (fst !arena) ~pid) in
    let used = Array.make_matrix domains shards 0 in
    let shard_ops = Array.init shards (fun _ -> Atomic.make 0) in
    let batches = Atomic.make 0 and batched = Atomic.make 0 in
    let mig = ref (Sv.Migration.create ~name:"load.mig.g0" (fst !arena)) in
    let mig_rr = Atomic.make 0 and upd0 = ref 0 in
    let apply ~pid ~key payload =
      let svc, bat = !arena in
      match Sv.Batcher.apply bat ~h:handles.(pid) payload with
      | Sv.Done _ ->
          let b = Scs_shard.Kv.bucket_of_key ~buckets key in
          let s = (Sv.R.route_bucket (Sv.router svc) ~bucket:b).Sv.R.owner in
          Atomic.incr shard_ops.(s);
          let u = used.(pid).(s) + 1 in
          used.(pid).(s) <- u;
          (f_win lor if u >= budget then f_recycle else 0)
      | Sv.Gave_up -> f_recycle
      | exception Failure _ -> f_recycle
    in
    let maybe_migrate ~pid =
      if migrate_every > 0 && pid = 0 then begin
        incr upd0;
        if !upd0 mod migrate_every = 0 then begin
          let svc, _ = !arena in
          let b = Atomic.fetch_and_add mig_rr 1 mod buckets in
          let dst = ((Sv.R.route_bucket (Sv.router svc) ~bucket:b).Sv.R.owner + 1) mod shards in
          try Sv.Migration.migrate !mig ~h:handles.(pid) ~bucket:b ~dst
          with Failure _ -> ()
        end
      end
    in
    let i_update ~pid ~key ~rng =
      maybe_migrate ~pid;
      apply ~pid ~key (Scs_shard.Kv.Put (key, Rng.int rng 1024))
    in
    let i_read ~pid ~key = apply ~pid ~key (Scs_shard.Kv.Get key) land lnot f_win in
    let i_refresh ~pid =
      handles.(pid) <- Sv.handle (fst !arena) ~pid;
      Array.fill used.(pid) 0 shards 0
    in
    let i_recycle () =
      let _, bat = !arena in
      Atomic.set batches (Atomic.get batches + Sv.Batcher.batches bat);
      Atomic.set batched (Atomic.get batched + Sv.Batcher.batched_ops bat);
      let g = Atomic.get generation in
      arena := mk ();
      mig := Sv.Migration.create ~name:(spf "load.mig.g%d" g) (fst !arena)
    in
    let i_stats () =
      let _, bat = !arena in
      (("batches", Atomic.get batches + Sv.Batcher.batches bat)
      :: ("batched_ops", Atomic.get batched + Sv.Batcher.batched_ops bat)
      :: List.init shards (fun s -> (spf "shard%d_ops" s, Atomic.get shard_ops.(s))))
    in
    { i_read; i_update; i_refresh; i_recycle; i_stats }

  let make cfg =
    let domains = cfg.domains and keys = Mix.keys cfg.mix in
    match cfg.workload with
    | Speculative -> long_lived ~strict:false ~domains ~keys ~rounds:cfg.rounds
    | Strict_tas -> long_lived ~strict:true ~domains ~keys ~rounds:cfg.rounds
    | One_shot -> one_shot_arena ~domains ~keys ~epoch_ops:cfg.epoch_ops
    | Solo_fast -> solo_fast_arena ~domains ~keys ~epoch_ops:cfg.epoch_ops
    | Hardware -> hardware ~keys
    | Ttas_lock -> ttas_lock ~keys
    | Uc_register -> uc_register ~domains ~keys ~capacity:cfg.uc_capacity
    | Chain -> chain ~domains ~keys ~capacity:cfg.chain_capacity
    | Sharded_uc ->
        sharded_uc ~domains ~shards:cfg.shards
          ~buckets:(max cfg.buckets cfg.shards)
          ~capacity:cfg.uc_capacity ~migrate_every:cfg.migrate_every
end

(* ------------------------------------------------------------------ *)
(* The native engine.                                                  *)

type result = {
  r_workload : workload;
  r_label : string;
  r_domains : int;
  r_elapsed_s : float;
  r_ops : int;
  r_reads : int;
  r_updates : int;
  r_ops_per_sec : float;
  r_p50_us : float;
  r_p99_us : float;
  r_p999_us : float;
  r_mean_us : float;
  r_max_us : float;
  r_aborts : int;
  r_handoffs : int;
  r_wins : int;
  r_resets : int;
  r_recycles : int;
  r_abort_rate : float;
  r_extra : (string * int) list;
}

type dstat = {
  mutable s_ops : int;
  mutable s_reads : int;
  mutable s_updates : int;
  mutable s_wins : int;
  mutable s_resets : int;
  mutable s_recycles : int;
}

type shared = {
  phase : int Atomic.t;  (* 0 warmup, 1 measure, 2 stop *)
  recycle_req : bool Atomic.t;
  arrived : int Atomic.t;
  sense : bool Atomic.t;
  active : int Atomic.t;
}

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let run cfg =
  if cfg.domains < 1 then invalid_arg "Load.run: domains must be >= 1";
  let domains = cfg.domains and mix = cfg.mix in
  let inst =
    let module D = Driver (Scs_prims.Native_prims) in
    D.make cfg
  in
  let sh =
    {
      phase = Atomic.make 0;
      recycle_req = Atomic.make false;
      arrived = Atomic.make 0;
      sense = Atomic.make false;
      active = Atomic.make domains;
    }
  in
  let hists = Array.init domains (fun _ -> Hist.create ()) in
  let sinks = Array.init domains (fun _ -> Scs_obs.Obs.create ~record_ring:false ~n:domains ()) in
  let stats =
    Array.init domains (fun _ ->
        { s_ops = 0; s_reads = 0; s_updates = 0; s_wins = 0; s_resets = 0; s_recycles = 0 })
  in
  let worker pid =
    let rng = Rng.create ((cfg.seed * 1_000_003) + pid + 1) in
    let st = stats.(pid) and h = hists.(pid) and o = sinks.(pid) in
    (* Quiescent recycle barrier. A follower must read the sense flag
       BEFORE announcing arrival: the leader only releases (flips the
       flag) after counting us, so the flip is ordered after our read
       and we cannot miss it. *)
    let follow_barrier () =
      let s = Atomic.get sh.sense in
      Atomic.incr sh.arrived;
      while Atomic.get sh.sense = s do
        Domain.cpu_relax ()
      done;
      inst.i_refresh ~pid
    in
    let lead_barrier () =
      st.s_recycles <- st.s_recycles + 1;
      (* [active] is re-read each spin: a domain that observes the stop
         phase exits by decrementing it instead of arriving. *)
      while Atomic.get sh.arrived < Atomic.get sh.active - 1 do
        Domain.cpu_relax ()
      done;
      inst.i_recycle ();
      Atomic.set sh.arrived 0;
      Atomic.set sh.recycle_req false;
      Atomic.set sh.sense (not (Atomic.get sh.sense));
      inst.i_refresh ~pid
    in
    let request_recycle () =
      if Atomic.compare_and_set sh.recycle_req false true then lead_barrier ()
      else follow_barrier ()
    in
    let rec loop () =
      if Atomic.get sh.recycle_req then follow_barrier ();
      let ph = Atomic.get sh.phase in
      if ph = 2 then Atomic.decr sh.active
      else begin
        let is_read = Mix.is_read mix rng in
        let key = Mix.sample_key mix rng in
        let t0 = if ph = 1 then now_ns () else 0 in
        let fl = if is_read then inst.i_read ~pid ~key else inst.i_update ~pid ~key ~rng in
        if ph = 1 then begin
          Hist.record h (now_ns () - t0);
          st.s_ops <- st.s_ops + 1;
          if is_read then st.s_reads <- st.s_reads + 1 else st.s_updates <- st.s_updates + 1;
          if fl land f_win <> 0 then st.s_wins <- st.s_wins + 1;
          if fl land f_reset <> 0 then st.s_resets <- st.s_resets + 1;
          for _ = 1 to flag_aborts fl do
            Scs_obs.Obs.abort o ~pid
          done;
          for _ = 1 to flag_handoffs fl do
            Scs_obs.Obs.handoff o ~pid ~label:"switch"
          done
        end;
        if fl land f_recycle <> 0 then request_recycle ();
        loop ()
      end
    in
    loop ()
  in
  let doms = Array.init domains (fun pid -> Domain.spawn (fun () -> worker pid)) in
  if cfg.warmup_s > 0.0 then Unix.sleepf cfg.warmup_s;
  let t0 = now_ns () in
  Atomic.set sh.phase 1;
  Unix.sleepf cfg.duration_s;
  Atomic.set sh.phase 2;
  let t1 = now_ns () in
  Array.iter Domain.join doms;
  let elapsed = float_of_int (t1 - t0) /. 1e9 in
  let hist = Hist.create () in
  Array.iter (fun h -> Hist.merge ~into:hist h) hists;
  let merged = Scs_obs.Obs.create ~record_ring:false ~n:domains () in
  Array.iter (fun o -> Scs_obs.Obs.merge_into ~into:merged o) sinks;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  let ops = sum (fun s -> s.s_ops) and updates = sum (fun s -> s.s_updates) in
  let aborts = Scs_obs.Obs.total_aborts merged in
  let us ns = float_of_int ns /. 1e3 in
  let shard_tag =
    match cfg.workload with Sharded_uc -> Printf.sprintf ":s%d" cfg.shards | _ -> ""
  in
  {
    r_workload = cfg.workload;
    r_label =
      Printf.sprintf "native:%s%s:%s" (workload_name cfg.workload) shard_tag
        (Mix.describe mix);
    r_domains = domains;
    r_elapsed_s = elapsed;
    r_ops = ops;
    r_reads = sum (fun s -> s.s_reads);
    r_updates = updates;
    r_ops_per_sec = (if elapsed > 0.0 then float_of_int ops /. elapsed else 0.0);
    r_p50_us = us (Hist.quantile hist 0.5);
    r_p99_us = us (Hist.quantile hist 0.99);
    r_p999_us = us (Hist.quantile hist 0.999);
    r_mean_us = Hist.mean hist /. 1e3;
    r_max_us = us (Hist.max_value hist);
    r_aborts = aborts;
    r_handoffs = Scs_obs.Obs.total_handoffs merged;
    r_wins = sum (fun s -> s.s_wins);
    r_resets = sum (fun s -> s.s_resets);
    r_recycles = sum (fun s -> s.s_recycles);
    r_abort_rate = float_of_int aborts /. float_of_int (max 1 updates);
    r_extra = inst.i_stats ();
  }

let to_record r =
  {
    Scs_obs.Trajectory.workload = r.r_label;
    sim_backend = None;
    n = r.r_domains;
    runs = r.r_ops;
    p50_steps = 0.0;
    p99_steps = 0.0;
    max_interval_contention = 0;
    schedules_per_sec = r.r_ops_per_sec;
    native =
      Some
        {
          Scs_obs.Trajectory.backend = "native";
          domains = r.r_domains;
          ops_per_sec = r.r_ops_per_sec;
          p50_us = r.r_p50_us;
          p99_us = r.r_p99_us;
          p999_us = r.r_p999_us;
          abort_rate = r.r_abort_rate;
        };
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%-12s d=%d  %9.0f ops/s  p50=%.2fus p99=%.2fus p999=%.2fus  aborts=%d (%.4f/upd) \
     handoffs=%d resets=%d recycles=%d"
    (workload_name r.r_workload) r.r_domains r.r_ops_per_sec r.r_p50_us r.r_p99_us r.r_p999_us
    r.r_aborts r.r_abort_rate r.r_handoffs r.r_resets r.r_recycles

(* ------------------------------------------------------------------ *)
(* Simulator selfcheck: the same driver code under Sim_prims.          *)

let sim_selfcheck ?(seed = 7) ?(backend = Scs_prims.Backend.default) ~n ~ops_per_proc
    workload =
  let keys = 2 in
  let cfg =
    {
      (default_cfg ~workload ~domains:n) with
      mix = Mix.make ~read_ratio:0.0 ~keys ~skew:Mix.Uniform;
      seed;
      (* budgets far above 2 * ops_per_proc: recycling is driven
         explicitly at the epoch boundary below *)
      rounds = max 64 (16 * n * ops_per_proc);
      epoch_ops = max 64 (16 * n * ops_per_proc);
      chain_capacity = max 64 (16 * n * ops_per_proc);
      uc_capacity = max 64 (16 * n * ops_per_proc);
    }
  in
  let sim = Scs_sim.Sim.create ~n ()
  and rows = ref [] (* (epoch, pid, key, flags) *) in
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  let module D = Driver (P) in
  let inst = D.make cfg in
  let do_ops ~epoch pid =
    let rng = Rng.create (seed + pid) in
    for i = 0 to ops_per_proc - 1 do
      let key = (i + pid) mod keys in
      let fl = inst.i_update ~pid ~key ~rng in
      rows := (epoch, pid, key, fl) :: !rows
    done
  in
  for pid = 0 to n - 1 do
    Scs_sim.Sim.spawn sim pid (fun () ->
        do_ops ~epoch:0 pid;
        if pid = n - 1 then begin
          (* Last fiber under the sequential policy: everyone else is
             done, so the arena is quiescent — recycle, refresh every
             pid's handles, and run a second epoch on their behalf. *)
          inst.i_recycle ();
          for p = 0 to n - 1 do
            inst.i_refresh ~pid:p
          done;
          for p = 0 to n - 1 do
            do_ops ~epoch:1 p
          done
        end)
  done;
  (* Sequential policy: always run the lowest runnable pid, so each
     fiber executes to completion in pid order — every operation is
     solo (no step contention). *)
  Scs_sim.Sim.run sim (fun s ->
      match Scs_sim.Sim.runnable s with
      | [] -> Scs_sim.Sim.Stop
      | p :: _ -> Scs_sim.Sim.Sched p);
  let rows = !rows in
  let total = List.length rows in
  let aborts = List.fold_left (fun acc (_, _, _, fl) -> acc + flag_aborts fl) 0 rows in
  let wins_at epoch key =
    List.fold_left
      (fun acc (e, _, k, fl) -> if e = epoch && k = key && fl land f_win <> 0 then acc + 1 else acc)
      0 rows
  in
  let ok_counts =
    match workload with
    | One_shot | Solo_fast ->
        (* exactly one winner per key per epoch (solo: first proposer
           wins, later ones observe the decided value and lose) *)
        List.for_all
          (fun (e, k) -> wins_at e k = 1)
          [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    | Speculative | Strict_tas | Hardware | Ttas_lock | Uc_register | Chain | Sharded_uc ->
        (* solo ops always win their round / commit their write *)
        List.for_all (fun (_, _, _, fl) -> fl land f_win <> 0) rows
  in
  total = 2 * n * ops_per_proc && aborts = 0 && ok_counts
