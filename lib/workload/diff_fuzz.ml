open Scs_util
open Scs_sim

type policy = Uniform | Sticky of float | Pct of int

let policy_name = function
  | Uniform -> "uniform"
  | Sticky p -> Printf.sprintf "sticky(%.2f)" p
  | Pct k -> Printf.sprintf "pct(%d)" k

let default_policies = [ Uniform; Sticky 0.25; Pct 3 ]

let mk_policy ~n pol rng =
  match pol with
  | Uniform -> Policy.random rng
  | Sticky p -> Policy.sticky rng ~switch_prob:p
  | Pct k -> Policy.pct rng ~k ~depth:(16 * n)

type verdict = Pass | Viol of string | Skip of string

type classification = Both_pass | Both_violate | Sc_only | Lin_only | Skipped

type finding = {
  df_workload : string;
  df_n : int;
  df_lag : int;
  df_policy : string;
  df_seed : int;
  df_error : string;
  df_schedule : int array;
  df_orig_turns : int;
  df_shrink : Shrink.stats option;
}

type policy_stats = {
  dp_policy : string;
  dp_runs : int;
  dp_both_pass : int;
  dp_both_violate : int;
  dp_sc_only : int;
  dp_lin_only : int;
  dp_skipped : int;
}

type report = {
  dr_workload : string;
  dr_n : int;
  dr_seed : int;
  dr_lag : int;
  dr_stats : policy_stats list;
  dr_findings : finding list;
}

let sc_only_rate r =
  let runs, sc =
    List.fold_left
      (fun (r0, s0) p -> (r0 + p.dp_runs, s0 + p.dp_sc_only))
      (0, 0) r.dr_stats
  in
  if runs = 0 then 0.0 else float_of_int sc /. float_of_int runs

(* One run of [w] on [backend] under a fresh policy seeded by [run_seed]:
   the per-backend executions share the seed (identical policy stream)
   but drive their own simulator, because stale reads change control
   flow — a strict replay of the linearizable schedule on the SC backend
   would drift as soon as verdicts could differ. The captured schedule
   is what makes an SC failure deterministically replayable. *)
let exec ?max_steps w ~backend ~n ~pol ~run_seed =
  let sim = Sim.create ?max_steps ~n () in
  let inst = w.Fuzz_run.instantiate ~backend ~n () in
  inst.Fuzz_run.setup sim;
  let buf = Vec.create () in
  let p = Policy.capture buf (mk_policy ~n pol (Rng.create run_seed)) in
  let verdict =
    match Sim.run sim p with
    | () -> (
        match inst.Fuzz_run.check sim with
        | () -> Pass
        | exception Fuzz.Violation m -> Viol m
        | exception Fuzz.Skip m -> Skip m)
    | exception Sim.Livelock m -> Skip ("livelock: " ^ m)
  in
  (verdict, Vec.to_array buf)

let classify = function
  | Skip _, _ | _, Skip _ -> Skipped
  | Pass, Pass -> Both_pass
  | Viol _, Viol _ -> Both_violate
  | Pass, Viol _ -> Sc_only
  | Viol _, Pass -> Lin_only

let run ?(policies = default_policies) ?(runs = 200) ?(seed = 42) ?max_steps
    ?(max_findings = 3) ?(shrink = true) (w : Fuzz_run.t) ~n ~lag =
  let sc_backend = Scs_prims.Backend.Sim_sc { lag } in
  let findings = ref [] and nfindings = ref 0 in
  let stats =
    List.mapi
      (fun pi pol ->
        let master = Rng.create (seed + (0x9E3779B1 * (pi + 1))) in
        let both_pass = ref 0
        and both_violate = ref 0
        and sc_only = ref 0
        and lin_only = ref 0
        and skipped = ref 0 in
        for _ = 1 to runs do
          let run_seed = Rng.int (Rng.split master) 0x3FFFFFFF in
          let lin, _ =
            exec ?max_steps w ~backend:Scs_prims.Backend.Sim_lin ~n ~pol ~run_seed
          in
          let sc, sc_schedule = exec ?max_steps w ~backend:sc_backend ~n ~pol ~run_seed in
          match classify (lin, sc) with
          | Both_pass -> incr both_pass
          | Both_violate -> incr both_violate
          | Lin_only -> incr lin_only
          | Skipped -> incr skipped
          | Sc_only ->
              incr sc_only;
              if !nfindings < max_findings then begin
                incr nfindings;
                let error = match sc with Viol m -> m | _ -> assert false in
                let schedule, stats =
                  if shrink then
                    let (schedule, _crashes), stats =
                      Fuzz_run.shrink ~backend:sc_backend w ~n ~schedule:sc_schedule
                        ~crashes:[]
                    in
                    (schedule, Some stats)
                  else (sc_schedule, None)
                in
                findings :=
                  {
                    df_workload = w.Fuzz_run.name;
                    df_n = n;
                    df_lag = lag;
                    df_policy = policy_name pol;
                    df_seed = run_seed;
                    df_error = error;
                    df_schedule = schedule;
                    df_orig_turns = Array.length sc_schedule;
                    df_shrink = stats;
                  }
                  :: !findings
              end
        done;
        {
          dp_policy = policy_name pol;
          dp_runs = runs;
          dp_both_pass = !both_pass;
          dp_both_violate = !both_violate;
          dp_sc_only = !sc_only;
          dp_lin_only = !lin_only;
          dp_skipped = !skipped;
        })
      policies
  in
  {
    dr_workload = w.Fuzz_run.name;
    dr_n = n;
    dr_seed = seed;
    dr_lag = lag;
    dr_stats = stats;
    dr_findings = List.rev !findings;
  }

let repro_of_finding (w : Fuzz_run.t) (f : finding) =
  {
    Fuzz.Repro.workload = Fuzz_run.qualified_name w (Scs_prims.Backend.Sim_sc { lag = f.df_lag });
    n = f.df_n;
    seed = f.df_seed;
    policy = f.df_policy;
    error = f.df_error;
    crashes = [];
    schedule = f.df_schedule;
  }
