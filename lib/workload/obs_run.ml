open Scs_util
open Scs_sim
open Scs_composable
open Scs_obs

type target = A1 | Tas of Tas_run.algo | Cons of Cons_run.algo | Shard

let target_name = function
  | A1 -> "a1"
  | Tas a -> Tas_run.algo_name a
  | Cons a -> Cons_run.algo_name a
  | Shard -> "sharded"

let all_targets =
  [
    A1;
    Tas Tas_run.Composed;
    Tas Tas_run.Strict;
    Tas Tas_run.Solo_fast;
    Tas Tas_run.Hardware;
    Tas Tas_run.Tournament;
    Cons Cons_run.Split;
    Cons Cons_run.Bakery;
    Cons Cons_run.Cas;
    Cons Cons_run.Chain3;
    Shard;
  ]

let target_of_string s = List.find_opt (fun t -> target_name t = s) all_targets
let target_names () = List.map target_name all_targets

type agg = {
  workload : string;
  backend : string;
  n : int;
  runs : int;
  ops : Obs.op_metric list;
  steps : Stats.summary;
  step_cont : Stats.summary;
  max_interval_contention : int;
  aborts : int;
  handoffs : int;
  crashes : int;
  schedules_per_sec : float;
  objects : (string * int * int) list;
}

(* Bare A1: each process performs one [apply] inside an obs bracket.
   Mirrors exp_t1's abort census but measured by the sink instead of a
   post-hoc trace scan. *)
let run_a1 ?(crashes = []) ~backend ~obs ~n ~policy rng =
  let sim = Sim.create ~obs ~n () in
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  let module M = Scs_tas.A1.Make (P) in
  let a1 = M.create ~name:"a1" () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        Obs.op_begin obs ~pid ~obj:0 ~label:"a1";
        let outcome = M.apply a1 ~pid None in
        let aborted = match outcome with Outcome.Abort _ -> true | _ -> false in
        if aborted then Obs.abort obs ~pid;
        Obs.op_end obs ~pid ~aborted)
  done;
  let p = policy rng in
  let p = if crashes = [] then p else Policy.with_crashes crashes p in
  Sim.run sim p

(* Sharded service: every pid pushes a short keyed script through the
   2-shard router; each client operation is bracketed under the label of
   the shard that owns its key at invoke time, so the batch aggregate
   splits into per-shard step/contention profiles (and their op-count
   imbalance) for free. *)
let shard_shards = 2
let shard_buckets = 4

let install_shard ~backend ~obs ~n sim =
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  let module S = Scs_shard.Service.Make (P) in
  let svc =
    S.create ~name:"svc" ~n ~shards:shard_shards ~buckets:shard_buckets
      ~capacity:(max 64 (8 * n)) ()
  in
  let handles = Array.init n (fun pid -> S.handle svc ~pid) in
  let rt = S.router svc in
  let keys = 2 * shard_shards in
  (* per-pid handles cache local log cursors into the UC histories, so a
     [Sim.reset] rewind of the shard objects makes them stale: the rearm
     hook rebuilds them before every pooled run *)
  let rearm () =
    for pid = 0 to n - 1 do
      handles.(pid) <- S.handle svc ~pid
    done
  in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        List.iter
          (fun req ->
            let key = Option.get (Scs_shard.Kv.key_of_req req) in
            let owner =
              (S.R.route_bucket rt
                 ~bucket:(Scs_shard.Kv.bucket_of_key ~buckets:shard_buckets key))
                .S.R.owner
            in
            Obs.op_begin obs ~pid ~obj:owner ~label:(Printf.sprintf "shard%d" owner);
            (match S.apply handles.(pid) req with
            | S.Done _ -> Obs.op_end obs ~pid ~aborted:false
            | S.Gave_up ->
                Obs.abort obs ~pid;
                Obs.op_end obs ~pid ~aborted:true)
            [@warning "-4"])
          [
            Scs_shard.Kv.Put (pid mod keys, 100 + pid);
            Scs_shard.Kv.Get (pid mod keys);
            Scs_shard.Kv.Put ((pid + 1) mod keys, 200 + pid);
          ])
  done;
  rearm

let run_shard ?(crashes = []) ~backend ~obs ~n ~policy rng =
  let sim = Sim.create ~obs ~n () in
  let (_ : unit -> unit) = install_shard ~backend ~obs ~n sim in
  let p = policy rng in
  let p = if crashes = [] then p else Policy.with_crashes crashes p in
  Sim.run sim p

let gen_crashes rng ~n ~crash_prob =
  List.filter_map
    (fun p ->
      if crash_prob > 0.0 && Rng.bernoulli rng crash_prob then
        Some (p, 1 + Rng.int rng 15)
      else None)
    (List.init n (fun p -> p))

let aggregate ~workload ~backend ~n ~runs ~wall (obs : Obs.t) =
  let ops = Obs.op_metrics obs in
  if ops = [] then invalid_arg "Obs_run.measure: batch completed zero operations";
  let steps =
    Stats.summarize_ints (Array.of_list (List.map (fun m -> m.Obs.om_steps) ops))
  in
  let step_cont =
    Stats.summarize_ints
      (Array.of_list (List.map (fun m -> m.Obs.om_step_contention) ops))
  in
  {
    workload;
    backend = Scs_prims.Backend.name backend;
    n;
    runs;
    ops;
    steps;
    step_cont;
    max_interval_contention = Obs.max_interval_contention obs;
    aborts = Obs.total_aborts obs;
    handoffs = Obs.total_handoffs obs;
    crashes = List.length (Obs.crashes obs);
    schedules_per_sec = (if wall > 0.0 then float_of_int runs /. wall else 0.0);
    objects = Obs.objects obs;
  }

let one_run ?(crashes = []) ~backend ~obs ~target ~n ~policy rng =
  match target with
  | A1 -> run_a1 ~crashes ~backend ~obs ~n ~policy rng
  | Shard -> run_shard ~crashes ~backend ~obs ~n ~policy rng
  | Tas algo ->
      let seed = Rng.int rng 0x3FFFFFFF in
      ignore
        (Tas_run.one_shot ~seed ~backend ~trace_mem:false ~crashes ~obs ~n ~algo
           ~policy ())
  | Cons algo ->
      let seed = Rng.int rng 0x3FFFFFFF in
      ignore (Cons_run.run ~seed ~backend ~obs ~n ~algo ~policy ())

(* ---- pooled measurement engine ------------------------------------- *)

(* Install the target's shared objects and fibers once on [sim] (whose
   sink is [obs]), replicating the obs-bracket semantics of the legacy
   per-run drivers ([run_a1] / [Tas_run.one_shot] / [Cons_run.run]) but
   without their tracing scaffolding: the batch aggregate only reads
   the sink. All algorithm state lives in simulator objects, so
   [Sim.reset] rewinds a finished (or livelocked) run back to this
   installed state. Returns the per-run rearm hook, fed the run's
   derived rng for targets whose operations consume randomness. *)
let install ~backend ~obs ~target ~n sim =
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  match target with
  | A1 ->
      let module M = Scs_tas.A1.Make (P) in
      let a1 = M.create ~name:"a1" () in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            Obs.op_begin obs ~pid ~obj:0 ~label:"a1";
            let outcome = M.apply a1 ~pid None in
            let aborted = match outcome with Outcome.Abort _ -> true | _ -> false in
            if aborted then Obs.abort obs ~pid;
            Obs.op_end obs ~pid ~aborted)
      done;
      fun _ -> ()
  | Tas (Tas_run.Composed | Tas_run.Strict) ->
      let module OS = Scs_tas.One_shot.Make (P) in
      let os = OS.create ~strict:(target = Tas Tas_run.Strict) ~name:"tas" () in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            Obs.op_begin obs ~pid ~obj:0 ~label:"tas";
            (match OS.A1m.apply (OS.a1 os) ~pid None with
            | Outcome.Commit _ -> ()
            | Outcome.Abort v -> (
                Obs.abort obs ~pid;
                Obs.handoff obs ~pid ~label:"a1->a2";
                match OS.A2m.apply (OS.a2 os) ~pid (Some v) with
                | Outcome.Commit _ -> ()
                | Outcome.Abort _ -> assert false));
            Obs.op_end obs ~pid ~aborted:false)
      done;
      fun _ -> ()
  | Tas Tas_run.Solo_fast ->
      let module SF = Scs_tas.Solo_fast.Make (P) in
      let sf = SF.create ~name:"sftas" () in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            Obs.op_begin obs ~pid ~obj:0 ~label:"tas";
            (match SF.apply_fast sf ~pid None with
            | Outcome.Commit _ -> ()
            | Outcome.Abort v -> (
                Obs.abort obs ~pid;
                Obs.handoff obs ~pid ~label:"sf->fallback";
                match SF.apply_fallback sf ~pid (Some v) with
                | Outcome.Commit _ -> ()
                | Outcome.Abort _ -> assert false));
            Obs.op_end obs ~pid ~aborted:false)
      done;
      fun _ -> ()
  | Tas Tas_run.Hardware ->
      let module B = Scs_tas.Baselines.Make (P) in
      let hw = B.Hardware.create ~name:"hw" () in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            Obs.op_begin obs ~pid ~obj:0 ~label:"tas";
            ignore (B.Hardware.test_and_set hw ~pid);
            Obs.op_end obs ~pid ~aborted:false)
      done;
      fun _ -> ()
  | Tas Tas_run.Tournament ->
      let module B = Scs_tas.Baselines.Make (P) in
      let tn = B.Tournament.create ~name:"agtv" ~n () in
      let rngs = Array.init n (fun i -> Rng.create (i + 1)) in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            Obs.op_begin obs ~pid ~obj:0 ~label:"tas";
            ignore (B.Tournament.test_and_set tn ~pid ~rng:rngs.(pid));
            Obs.op_end obs ~pid ~aborted:false)
      done;
      fun rng ->
        for i = 0 to n - 1 do
          rngs.(i) <- Rng.split rng
        done
  | Shard ->
      let rearm = install_shard ~backend ~obs ~n sim in
      fun _ -> rearm ()
  | Cons algo ->
      let inst : int Scs_consensus.Consensus_intf.t =
        Cons_run.make_instance ~algo ~n (module P)
      in
      let label = Cons_run.algo_name algo in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            Obs.op_begin obs ~pid ~obj:0 ~label;
            let outcome = inst.Scs_consensus.Consensus_intf.run ~pid ~old:None (100 + pid) in
            let aborted = match outcome with Outcome.Abort _ -> true | _ -> false in
            if aborted then Obs.abort obs ~pid;
            (match outcome with
            | Outcome.Abort (Some _) -> Obs.handoff obs ~pid ~label:"switch"
            | _ -> ());
            Obs.op_end obs ~pid ~aborted)
      done;
      fun _ -> ()

(* One domain's share of a pooled batch: a single simulator installed
   once, rewound with [Sim.reset] per run, driven by the allocation-free
   loop. The per-run rng chain reproduces the legacy engine's exactly
   (crash draws, the per-run derived seed, Tournament's per-pid splits,
   then the policy stream), so the recorded metrics match run for run. *)
let run_domain ~backend ~target ~n ~policy ~crash_prob ~obs ~prng ~runs =
  let sim = Sim.create ~obs ~n () in
  let rearm = install ~backend ~obs ~target ~n sim in
  Sim.snapshot sim;
  let plan = Policy.crash_plan ~n in
  for i = 1 to runs do
    let rng = Rng.split prng in
    let crashes = gen_crashes rng ~n ~crash_prob in
    let pol_rng =
      match target with
      | A1 -> rng
      | Shard ->
          rearm rng;
          rng
      | Tas _ | Cons _ ->
          let seed = Rng.int rng 0x3FFFFFFF in
          let rng2 = Rng.create seed in
          rearm rng2;
          Rng.split rng2
    in
    if i > 1 then Sim.reset sim;
    (* the legacy consensus driver takes no crash wrapper *)
    Policy.arm_crashes plan (match target with Cons _ -> [] | _ -> crashes);
    let fast =
      if policy == Policy.random then Policy.fast_random pol_rng
      else Policy.to_fast (policy pol_rng)
    in
    (try Policy.drive ~crashes:plan sim fast with Sim.Livelock _ -> ())
  done;
  runs

let measure ?(runs = 200) ?(seed = 42) ?(backend = Scs_prims.Backend.default)
    ?(policy = Policy.random) ?(crash_prob = 0.0) ?(gen_domains = 1) ?(pooled = true) target
    ~n =
  let gen_domains = max 1 gen_domains in
  (* The batch sink's event ring is never replayed (the aggregate reads
     counters, census and op metrics only), so the pooled engine skips
     ring recording entirely; the legacy engine keeps it, as it did
     before pooling existed, for honest before/after numbers. *)
  let obs = Obs.create ~record_ring:(not pooled) ~n () in
  let t0 = Unix.gettimeofday () in
  let completed =
    if not pooled then begin
      (* legacy reference engine: fresh simulator and driver per run,
         kept for before/after measurements (experiment T14) *)
      let prng = Rng.create seed in
      let completed = ref 0 in
      for _ = 1 to runs do
        let rng = Rng.split prng in
        let crashes = gen_crashes rng ~n ~crash_prob in
        (try one_run ~crashes ~backend ~obs ~target ~n ~policy rng
         with Sim.Livelock _ -> ());
        incr completed
      done;
      !completed
    end
    else if gen_domains = 1 then
      run_domain ~backend ~target ~n ~policy ~crash_prob ~obs ~prng:(Rng.create seed) ~runs
    else begin
      let base = runs / gen_domains and extra = runs mod gen_domains in
      let counts =
        Array.init gen_domains (fun d -> base + if d < extra then 1 else 0)
      in
      let sinks =
        Array.init gen_domains (fun d ->
            if d = 0 then obs
            else
              Obs.create ~ring_capacity:(Obs.ring_capacity obs)
                ~record_ring:false ~n ())
      in
      let work d () =
        run_domain ~backend ~target ~n ~policy ~crash_prob ~obs:sinks.(d)
          ~prng:(Rng.create (seed + (0x51ED270B * d)))
          ~runs:counts.(d)
      in
      (* [gen_domains] fixes the stream split (and therefore the exact
         schedules sampled); the number of OS domains actually spawned
         is capped at the runtime's recommendation, because
         oversubscribed domains stall each other at every minor-GC
         barrier. A worker executes its streams sequentially, so the
         mapping of streams to workers cannot change any result. *)
      let workers =
        min gen_domains (max 1 (Domain.recommended_domain_count ()))
      in
      let run_streams w () =
        let total = ref 0 in
        let d = ref w in
        while !d < gen_domains do
          total := !total + work !d ();
          d := !d + workers
        done;
        !total
      in
      let others =
        Array.init (workers - 1) (fun i -> Domain.spawn (run_streams (i + 1)))
      in
      let mine = run_streams 0 () in
      let rest = Array.map Domain.join others in
      for d = 1 to gen_domains - 1 do
        Obs.merge_into ~into:obs sinks.(d)
      done;
      Array.fold_left ( + ) mine rest
    end
  in
  let wall = Unix.gettimeofday () -. t0 in
  aggregate ~workload:(target_name target) ~backend ~n ~runs:completed ~wall obs

let solo ?(backend = Scs_prims.Backend.default) target ~n =
  let obs = Obs.create ~n () in
  let t0 = Unix.gettimeofday () in
  one_run ~backend ~obs ~target ~n ~policy:(fun _ -> Policy.solo 0) (Rng.create 1);
  let wall = Unix.gettimeofday () -. t0 in
  let agg = aggregate ~workload:(target_name target) ~backend ~n ~runs:1 ~wall obs in
  (* keep only p0's first operation: the uncontended-cost sample *)
  match List.find_opt (fun m -> m.Obs.om_pid = 0) agg.ops with
  | None -> agg
  | Some m ->
      {
        agg with
        ops = [ m ];
        steps = Stats.summarize_ints [| m.Obs.om_steps |];
        step_cont = Stats.summarize_ints [| m.Obs.om_step_contention |];
      }

let to_record (a : agg) =
  {
    Trajectory.workload = a.workload;
    sim_backend = Some a.backend;
    n = a.n;
    runs = a.runs;
    p50_steps = a.steps.Stats.median;
    p99_steps = a.steps.Stats.p99;
    max_interval_contention = a.max_interval_contention;
    schedules_per_sec = a.schedules_per_sec;
    native = None;
  }
