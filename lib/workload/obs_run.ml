open Scs_util
open Scs_sim
open Scs_composable
open Scs_obs

type target = A1 | Tas of Tas_run.algo | Cons of Cons_run.algo

let target_name = function
  | A1 -> "a1"
  | Tas a -> Tas_run.algo_name a
  | Cons a -> Cons_run.algo_name a

let all_targets =
  [
    A1;
    Tas Tas_run.Composed;
    Tas Tas_run.Strict;
    Tas Tas_run.Solo_fast;
    Tas Tas_run.Hardware;
    Tas Tas_run.Tournament;
    Cons Cons_run.Split;
    Cons Cons_run.Bakery;
    Cons Cons_run.Cas;
    Cons Cons_run.Chain3;
  ]

let target_of_string s = List.find_opt (fun t -> target_name t = s) all_targets
let target_names () = List.map target_name all_targets

type agg = {
  workload : string;
  n : int;
  runs : int;
  ops : Obs.op_metric list;
  steps : Stats.summary;
  step_cont : Stats.summary;
  max_interval_contention : int;
  aborts : int;
  handoffs : int;
  crashes : int;
  schedules_per_sec : float;
  objects : (string * int * int) list;
}

(* Bare A1: each process performs one [apply] inside an obs bracket.
   Mirrors exp_t1's abort census but measured by the sink instead of a
   post-hoc trace scan. *)
let run_a1 ?(crashes = []) ~obs ~n ~policy rng =
  let sim = Sim.create ~obs ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module M = Scs_tas.A1.Make (P) in
  let a1 = M.create ~name:"a1" () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        Obs.op_begin obs ~pid ~obj:0 ~label:"a1";
        let outcome = M.apply a1 ~pid None in
        let aborted = match outcome with Outcome.Abort _ -> true | _ -> false in
        if aborted then Obs.abort obs ~pid;
        Obs.op_end obs ~pid ~aborted)
  done;
  let p = policy rng in
  let p = if crashes = [] then p else Policy.with_crashes crashes p in
  Sim.run sim p

let gen_crashes rng ~n ~crash_prob =
  List.filter_map
    (fun p ->
      if crash_prob > 0.0 && Rng.bernoulli rng crash_prob then
        Some (p, 1 + Rng.int rng 15)
      else None)
    (List.init n (fun p -> p))

let aggregate ~workload ~n ~runs ~wall (obs : Obs.t) =
  let ops = Obs.op_metrics obs in
  if ops = [] then invalid_arg "Obs_run.measure: batch completed zero operations";
  let steps =
    Stats.summarize_ints (Array.of_list (List.map (fun m -> m.Obs.om_steps) ops))
  in
  let step_cont =
    Stats.summarize_ints
      (Array.of_list (List.map (fun m -> m.Obs.om_step_contention) ops))
  in
  {
    workload;
    n;
    runs;
    ops;
    steps;
    step_cont;
    max_interval_contention = Obs.max_interval_contention obs;
    aborts = Obs.total_aborts obs;
    handoffs = Obs.total_handoffs obs;
    crashes = List.length (Obs.crashes obs);
    schedules_per_sec = (if wall > 0.0 then float_of_int runs /. wall else 0.0);
    objects = Obs.objects obs;
  }

let one_run ?(crashes = []) ~obs ~target ~n ~policy rng =
  match target with
  | A1 -> run_a1 ~crashes ~obs ~n ~policy rng
  | Tas algo ->
      let seed = Rng.int rng 0x3FFFFFFF in
      ignore
        (Tas_run.one_shot ~seed ~trace_mem:false ~crashes ~obs ~n ~algo
           ~policy ())
  | Cons algo ->
      let seed = Rng.int rng 0x3FFFFFFF in
      ignore (Cons_run.run ~seed ~obs ~n ~algo ~policy ())

let measure ?(runs = 200) ?(seed = 42) ?(policy = Policy.random)
    ?(crash_prob = 0.0) target ~n =
  let prng = Rng.create seed in
  let obs = Obs.create ~n () in
  let t0 = Unix.gettimeofday () in
  let completed = ref 0 in
  for _ = 1 to runs do
    let rng = Rng.split prng in
    let crashes = gen_crashes rng ~n ~crash_prob in
    (try one_run ~crashes ~obs ~target ~n ~policy rng
     with Sim.Livelock _ -> ());
    incr completed
  done;
  let wall = Unix.gettimeofday () -. t0 in
  aggregate ~workload:(target_name target) ~n ~runs:!completed ~wall obs

let solo target ~n =
  let obs = Obs.create ~n () in
  let t0 = Unix.gettimeofday () in
  one_run ~obs ~target ~n ~policy:(fun _ -> Policy.solo 0) (Rng.create 1);
  let wall = Unix.gettimeofday () -. t0 in
  let agg = aggregate ~workload:(target_name target) ~n ~runs:1 ~wall obs in
  (* keep only p0's first operation: the uncontended-cost sample *)
  match List.find_opt (fun m -> m.Obs.om_pid = 0) agg.ops with
  | None -> agg
  | Some m ->
      {
        agg with
        ops = [ m ];
        steps = Stats.summarize_ints [| m.Obs.om_steps |];
        step_cont = Stats.summarize_ints [| m.Obs.om_step_contention |];
      }

let to_record (a : agg) =
  {
    Trajectory.workload = a.workload;
    n = a.n;
    runs = a.runs;
    p50_steps = a.steps.Stats.median;
    p99_steps = a.steps.Stats.p99;
    max_interval_contention = a.max_interval_contention;
    schedules_per_sec = a.schedules_per_sec;
  }
