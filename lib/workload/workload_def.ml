(** The workload record shared by the fuzzing registries.

    {!Fuzz_run} re-exports these types with manifest equations (so
    [Fuzz_run.t] remains the public name) and aggregates every
    workload list into its registry; defining the record here lets
    satellite modules ({!Shard_run}) build workloads without a
    dependency cycle through the registry itself. *)

type instance = { setup : Scs_sim.Sim.t -> unit; check : Scs_sim.Sim.t -> unit }

type t = {
  name : string;
  describe : string;
  default_n : int;
  expect_failures : bool;
  instantiate : ?backend:Scs_prims.Backend.t -> n:int -> unit -> instance;
}
