(** Simulated test-and-set workloads: the glue between the algorithms, the
    deterministic scheduler and the checkers. Every experiment and most
    tests funnel through this module. *)

open Scs_spec
open Scs_history
open Scs_composable
open Scs_sim

type algo =
  | Composed  (** the speculative A1 ∘ A2 of Section 6, verbatim *)
  | Strict  (** A1 (strict variant) ∘ A2: strictly linearizable *)
  | Solo_fast  (** the Appendix B variant *)
  | Hardware  (** raw hardware TAS *)
  | Tournament  (** AGTV-style register-only randomized TAS *)

val algo_name : algo -> string

type op_record = {
  pid : int;
  round : int;  (** long-lived round (0 for one-shot runs) *)
  resp : Objects.tas_resp;
  stage : Scs_tas.One_shot.stage option;  (** [None] for baselines *)
  steps : int;
  rmws : int;
  raws : int;  (** RAW fences *)
  invoke_ts : int;
  resp_ts : int;
}

type result = {
  ops : op_record list;
  outer : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
      (** client-level trace: invokes and commits only *)
  a1 : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
      (** module-level trace of A1 (invoke/commit/abort); empty for
          baselines *)
  a2 : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
      (** module-level trace of A2 (init/commit) *)
  mem : Mem_event.t array;  (** low-level memory steps *)
  sim : Sim.t;
  schedule : int array;
      (** the complete executed pid schedule, one entry per scheduler
          turn; replaying it with [Policy.scripted ~strict:true] (under
          the same crash wrapper) reproduces this run exactly *)
  registers : int;  (** base objects allocated *)
  rmw_objects : int;
  round_of_req : (int, int) Hashtbl.t;  (** request id → long-lived round *)
}

val one_shot :
  ?seed:int ->
  ?backend:Scs_prims.Backend.t ->
  ?trace_mem:bool ->
  ?crashes:(int * int) list ->
  ?obs:Scs_obs.Obs.t ->
  n:int ->
  algo:algo ->
  policy:(Scs_util.Rng.t -> Policy.t) ->
  unit ->
  result
(** Every process performs exactly one test-and-set. [policy] receives a
    deterministic sub-stream of [seed]. [backend] (default
    {!Scs_prims.Backend.default}) selects the simulator primitive
    backend. [crashes] are [(pid, after_steps)] pairs. [obs] (default
    disabled) receives an operation bracket per test-and-set plus an
    abort + switch-value handoff whenever A1 aborts into A2, so
    per-operation steps and contention can be measured. *)

val long_lived :
  ?seed:int ->
  ?backend:Scs_prims.Backend.t ->
  ?trace_mem:bool ->
  ?crashes:(int * int) list ->
  ?strict:bool ->
  ?obs:Scs_obs.Obs.t ->
  n:int ->
  ops_per_proc:int ->
  policy:(Scs_util.Rng.t -> Policy.t) ->
  unit ->
  result
(** The resettable object of Algorithm 2 (always the Composed algorithm):
    each process runs [ops_per_proc] cycles of test-and-set followed, on a
    win, by reset. [round] in each {!op_record} is the [Count] value the
    operation started from. The outer trace uses the one-shot TAS request
    type per round; use [rounds_of] to regroup it. *)

val rounds_of :
  result -> (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.operation list list
(** Long-lived operations grouped by round, for
    {!Scs_history.Tas_lin.check_long_lived}. *)

val explore_one_shot :
  ?max_schedules:int ->
  ?max_depth:int ->
  ?por:bool ->
  ?domains:int ->
  ?backend:Scs_prims.Backend.t ->
  n:int ->
  algo:algo ->
  unit ->
  Explore.outcome * int
(** Exhaustive bounded model checking of the one-shot workload: every
    process performs exactly one [test_and_set], every maximal schedule's
    client-level history is checked with the specialised TAS
    linearizability checker. Returns the exploration outcome and the
    number of non-linearizable schedules (0 = safe on every explored
    interleaving). [por] and [domains] are passed through to
    {!Explore.exhaustive}; the violation counter is domain-safe.
    [backend] selects the simulator primitive backend — exploring under
    [Sim_sc] counts how many schedules break strict linearizability once
    registers are only per-object SC. *)

(** {1 Derived judgements} *)

val winners : result -> op_record list
val step_contended_ops : result -> (op_record * bool) list
(** Each operation paired with "did it run under step contention"
    (requires [trace_mem:true]). *)
