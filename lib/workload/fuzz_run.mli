(** Named fuzzing workloads: the bridge between {!Scs_sim.Fuzz} /
    {!Scs_sim.Shrink} (which know nothing about algorithms) and the
    algorithms under test. Each workload packages a [setup] that spawns
    the processes on a fresh simulator and a [check] that judges the
    finished run, raising {!Scs_sim.Fuzz.Violation} on failure and
    {!Scs_sim.Fuzz.Skip} when a run cannot be judged (e.g. the history
    exceeds the generic lin-checker's operation cap).

    Workloads with [expect_failures = true] ([f1], [f2]) are known-failing
    finders that re-discover findings F-1/F-2 by random search — useful
    for exercising the shrinker and for throughput experiments, excluded
    from "fuzz everything and expect green" CI runs. *)

open Scs_sim

type instance = { setup : Sim.t -> unit; check : Sim.t -> unit }

type t = {
  name : string;
  describe : string;
  default_n : int;
  expect_failures : bool;  (** violations are the point, not a regression *)
  instantiate : n:int -> instance;
      (** Fresh linked [setup]/[check] pair. Each run must call [setup]
          on a fresh sim and [check] right after it; the pair communicates
          through a slot reset by [setup], so instances are sequential —
          never share one across domains. *)
}

val f1 : t
val f2 : t
val tas_composed : t
val tas_strict : t
val tas_solo_fast : t
val splitter : t
val consensus_chain : t
val queue : t

val all : t list
val find : string -> t option
val names : unit -> string list

val fuzz :
  ?policies:Fuzz.policy_spec list ->
  ?runs:int ->
  ?time_budget:float ->
  ?max_violations:int ->
  ?seed:int ->
  ?max_steps:int ->
  t ->
  n:int ->
  Fuzz.report
(** {!Fuzz.run} on a fresh instance of the workload. *)

type replay_outcome =
  | Violates of string  (** the recorded violation reproduces *)
  | Passes  (** replays cleanly: the check holds on this schedule *)
  | Skipped of string
  | Drifted of int  (** schedule does not replay; offending pid *)

val replay : t -> n:int -> schedule:int array -> crashes:(int * int) list -> replay_outcome
(** Strict scripted replay of a recorded triple, judged by the
    workload's check. *)

val shrink :
  ?max_rounds:int ->
  ?max_steps:int ->
  t ->
  n:int ->
  schedule:int array ->
  crashes:(int * int) list ->
  (int array * (int * int) list) * Shrink.stats
(** {!Shrink.minimize} on a fresh instance of the workload. *)
