(** Named fuzzing workloads: the bridge between {!Scs_sim.Fuzz} /
    {!Scs_sim.Shrink} (which know nothing about algorithms) and the
    algorithms under test. Each workload packages a [setup] that spawns
    the processes on a fresh simulator and a [check] that judges the
    finished run, raising {!Scs_sim.Fuzz.Violation} on failure and
    {!Scs_sim.Fuzz.Skip} when a run cannot be judged. Since the scalable
    linearizability checker, no stock workload skips for history size:
    past-cap histories are verified and counted via
    {!Scs_sim.Fuzz.checked_large}.

    Workloads with [expect_failures = true] ([f1], [f2]) are known-failing
    finders that re-discover findings F-1/F-2 by random search — useful
    for exercising the shrinker and for throughput experiments, excluded
    from "fuzz everything and expect green" CI runs. *)

open Scs_sim

type instance = Workload_def.instance = { setup : Sim.t -> unit; check : Sim.t -> unit }

type t = Workload_def.t = {
  name : string;
  describe : string;
  default_n : int;
  expect_failures : bool;  (** violations are the point, not a regression *)
  instantiate : ?backend:Scs_prims.Backend.t -> n:int -> unit -> instance;
      (** Fresh linked [setup]/[check] pair. Each run must call [setup]
          on a fresh sim and eventually [check] on the finished run; the
          pair communicates through a slot set by [setup]. One instance is
          never shared between runs ({!Scs_sim.Fuzz.run} instantiates per
          run), so deferring [check] to a verification domain is safe.
          [backend] (default {!Scs_prims.Backend.default}) selects the
          primitive backend the algorithms run on; only simulator
          backends are valid here ([Native] raises [Invalid_argument]
          from inside [setup]). *)
}

val f1 : t
val f2 : t
val tas_composed : t
val tas_strict : t
val tas_solo_fast : t

val tas_long_lived : t
(** Strict long-lived TAS: every run's history has 200+ operations (well
    past the legacy 62-op checker cap) and 60+ resets, verified by the
    scalable checker plus a per-round compositional cross-check. The
    cross-check only runs when every operation's round is known: a crash
    inside test-and-set can leave a pending operation whose round was
    never recorded, and guessing its partition makes the split unsound
    (see the partition-key hazard test in test/test_history.ml). *)

val splitter : t
val consensus_chain : t
val queue : t

val recoverable_split : t
(** Recoverable SplitConsensus under the crash-recovery model: every
    process runs one proposal with a {!Scs_sim.Sim.set_recovery} entry
    point installed, recoveries are recorded as {!Scs_history.Trace}
    re-invocations, and the check enforces re-invocation trace
    well-formedness, agreement, validity and switch coherence. Clean
    under every policy, including crash-recover ones. *)

val recoverable_bakery : t
(** Recoverable AbortableBakery, same harness and check. Clean. *)

val recoverable_bakery_volatile : t
(** The deliberately unsound bakery variant with {e volatile}
    announcement arrays ([expect_failures = true]): a crash wipes all
    in-flight announcements, letting survivors commit different values
    (finding F-5). The instructive counterpart that shows the
    durability assignment of {!recoverable_bakery} is load-bearing. *)

val all : t list
val find : string -> t option
val names : unit -> string list

val qualified_name : t -> Scs_prims.Backend.t -> string
(** The workload name as recorded in reports and [.scsrepro] artifacts:
    the plain name for the default backend, ["name@<backend>"] (e.g.
    ["splitter@sim-sc:1"]) otherwise. *)

val find_qualified : string -> (t * Scs_prims.Backend.t) option
(** Parse a possibly backend-qualified workload name back into the
    workload and its backend; plain names map to the default backend. *)

val fuzz :
  ?backend:Scs_prims.Backend.t ->
  ?policies:Fuzz.policy_spec list ->
  ?runs:int ->
  ?time_budget:float ->
  ?max_violations:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?check_domains:int ->
  ?gen_domains:int ->
  ?pool:bool ->
  ?obs:Scs_obs.Obs.t ->
  t ->
  n:int ->
  Fuzz.report
(** {!Fuzz.run} with a fresh instance of the workload per run;
    [check_domains] fans checker work out, [gen_domains] fans schedule
    generation out, [pool] (default true) reuses pooled simulators, and
    [obs] attaches an observability sink to every run's simulator, as
    documented there. [backend] selects the primitive backend; the
    report and its repro artifacts carry the {!qualified_name}. *)

type replay_outcome =
  | Violates of string  (** the recorded violation reproduces *)
  | Passes  (** replays cleanly: the check holds on this schedule *)
  | Skipped of string
  | Drifted of int  (** schedule does not replay; offending pid *)

val replay :
  ?backend:Scs_prims.Backend.t ->
  t ->
  n:int ->
  schedule:int array ->
  crashes:Crash.t list ->
  replay_outcome
(** Strict scripted replay of a recorded triple, judged by the
    workload's check, on the backend the triple was recorded on. *)

val shrink :
  ?backend:Scs_prims.Backend.t ->
  ?max_rounds:int ->
  ?max_steps:int ->
  t ->
  n:int ->
  schedule:int array ->
  crashes:Crash.t list ->
  (int array * Crash.t list) * Shrink.stats
(** {!Shrink.minimize} on a fresh instance of the workload. *)
