(** Cross-consistency differential fuzzing: the same workload, the same
    seeded schedule policies, on two backends — atomic (linearizable)
    registers vs per-object sequentially-consistent registers
    ({!Scs_prims.Sc_prims}) — with each run's verdict pair classified
    and SC-only failures shrunk to minimal witness schedules.

    Per run, both backends execute under a policy built from the {e
    same} per-run seed (identical random stream), each driving its own
    simulator with its schedule captured: stale reads change control
    flow, so strictly replaying the linearizable backend's schedule on
    the SC backend would drift exactly when the backends can disagree.
    Determinism comes from the captured schedule instead — an SC-only
    finding replays bit-for-bit with {!Fuzz_run.replay}
    [~backend:(Sim_sc _)] and shrinks soundly with {!Fuzz_run.shrink}.

    The headline classification is [Sc_only]: the linearizable run
    passes, the SC run violates the workload's own correctness property
    (splitter uniqueness, consensus agreement, linearizability of the
    composed history, ...) — even though every individual SC register's
    history is sequentially consistent by construction. Those runs are
    the paper-facing findings: composition over per-object-SC base
    objects is not SC (Perrin et al.). [Lin_only] runs (possible on
    known-failing workloads such as [f1], where control-flow divergence
    makes the SC run dodge the linearizable run's violation) are counted
    but not collected. *)

open Scs_sim

(** The deterministic policy sub-portfolio (no crash injection — crash
    draws would have to be replicated per backend; schedules alone are
    the adversary here). *)
type policy = Uniform | Sticky of float | Pct of int

val policy_name : policy -> string

val default_policies : policy list
(** uniform, sticky(0.25), pct(3). *)

type classification =
  | Both_pass
  | Both_violate  (** both backends violate (e.g. known-failing finders) *)
  | Sc_only  (** the finding class: SC violates, linearizable passes *)
  | Lin_only  (** divergent the other way (control-flow dodge) *)
  | Skipped  (** either side skipped or livelocked *)

type finding = {
  df_workload : string;  (** base workload name *)
  df_n : int;
  df_lag : int;
  df_policy : string;
  df_seed : int;  (** per-run derived seed, for provenance *)
  df_error : string;  (** the SC-side violation *)
  df_schedule : int array;
      (** SC-backend witness schedule (shrunk when shrinking is on);
          replays with {!Fuzz_run.replay} on [Sim_sc {lag = df_lag}] *)
  df_orig_turns : int;  (** captured schedule length before shrinking *)
  df_shrink : Shrink.stats option;
}

type policy_stats = {
  dp_policy : string;
  dp_runs : int;
  dp_both_pass : int;
  dp_both_violate : int;
  dp_sc_only : int;
  dp_lin_only : int;
  dp_skipped : int;
}

type report = {
  dr_workload : string;
  dr_n : int;
  dr_seed : int;
  dr_lag : int;
  dr_stats : policy_stats list;
  dr_findings : finding list;  (** collected SC-only findings, run order *)
}

val sc_only_rate : report -> float
(** SC-only violations per run, across all policies — the measured
    non-compositionality rate (EXPERIMENTS.md T16). *)

val run :
  ?policies:policy list ->
  ?runs:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?max_findings:int ->
  ?shrink:bool ->
  Fuzz_run.t ->
  n:int ->
  lag:int ->
  report
(** [run w ~n ~lag] fuzzes [w] differentially: per policy (default
    {!default_policies}), [runs] (default 200) seed-derived runs on both
    backends, classifying each verdict pair. Up to [max_findings]
    (default 3) SC-only failures are collected per report, each shrunk
    ([shrink] defaults to true) on the SC backend. With [lag = 0] the SC
    backend is observationally atomic, so every run classifies as
    [Both_pass]/[Both_violate]/[Skipped] — the differential harness's
    own soundness check (test/test_linearize_diff.ml pins it). Fully
    deterministic given [seed]. *)

val repro_of_finding : Fuzz_run.t -> finding -> Fuzz.Repro.t
(** The finding as a [.scsrepro] artifact; the workload field carries
    the backend-qualified name (["splitter@sim-sc:1"]), so {!Fuzz_run.find_qualified}
    replays it on the backend it was recorded on. *)
