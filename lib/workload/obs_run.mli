(** Observability-instrumented measurement runs: the engine behind
    [scs stats], [bench/emit_json.ml] ([BENCH_*.json]) and experiment
    T13.

    A {e target} is a workload whose every high-level operation is
    bracketed on a {!Scs_obs.Obs} sink ({!Tas_run} / {!Cons_run} with
    [~obs], or the bare-A1 driver defined here), so a batch of seeded
    runs yields per-operation step counts and contention measurements
    matching the paper's definitions — plus a schedules/sec throughput
    figure for the bench trajectory. See [docs/metrics.md] for how
    each aggregate maps to the JSON schema. *)

open Scs_sim

type target =
  | A1  (** bare A1: one [apply] per process (Theorem 3's O(1) object) *)
  | Tas of Tas_run.algo
  | Cons of Cons_run.algo
  | Shard
      (** the 2-shard keyed service ({!Scs_shard}): each client op is
          bracketed under the owning shard's label ([shard0]/[shard1]),
          so the aggregate's [ops] split into per-shard profiles *)

val target_name : target -> string
val target_of_string : string -> target option
val target_names : unit -> string list

(** Aggregate of one measurement batch. *)
type agg = {
  workload : string;
  backend : string;  (** {!Scs_prims.Backend.name} of the backend measured *)
  n : int;
  runs : int;  (** completed simulations *)
  ops : Scs_obs.Obs.op_metric list;  (** every bracketed operation, all runs *)
  steps : Scs_util.Stats.summary;  (** per-operation own steps *)
  step_cont : Scs_util.Stats.summary;  (** per-operation step contention *)
  max_interval_contention : int;
  aborts : int;
  handoffs : int;
  crashes : int;
  schedules_per_sec : float;  (** runs / wall-clock, instrumentation included *)
  objects : (string * int * int) list;
      (** per-object step census, [(name, steps, rmws)], busiest first *)
}

val measure :
  ?runs:int ->
  ?seed:int ->
  ?backend:Scs_prims.Backend.t ->
  ?policy:(Scs_util.Rng.t -> Policy.t) ->
  ?crash_prob:float ->
  ?gen_domains:int ->
  ?pooled:bool ->
  target ->
  n:int ->
  agg
(** [measure target ~n] executes [runs] (default 200) seeded
    simulations of the target with a fresh obs sink per batch and
    aggregates. [policy] defaults to {!Policy.random} per run (seeded
    from [seed], default 42); [backend] (default
    {!Scs_prims.Backend.default}) selects the simulator primitive
    backend, so the same step/contention aggregates can be measured
    under per-object-SC registers; [crash_prob] (default 0) independently
    crashes each pid with that probability after 1–15 steps, as the
    fuzzer's crash portfolio does. Raises [Invalid_argument] if the
    batch completes zero operations.

    [pooled] (default [true]) runs the batch on one simulator per
    domain, installed once and rewound with [Sim.reset] between runs,
    under the allocation-free scheduling loop — the per-run rng chain
    matches the legacy fresh-simulator engine ([~pooled:false], kept
    for before/after comparisons) draw for draw, so the recorded
    metrics are identical and only throughput changes.

    [gen_domains] (default 1) splits the batch across that many OCaml
    domains, each with its own pooled simulator and private sink,
    merged deterministically at join (domain-index order). Domain 0
    generates the legacy stream; higher domains use derived streams, so
    per-op metrics aggregate a different (but seed-stable) sample of
    schedules. A custom [policy] closure must be domain-safe. *)

val solo : ?backend:Scs_prims.Backend.t -> target -> n:int -> agg
(** One run in which process 0 executes alone ({!Policy.solo}): the
    uncontended cost the appendix complexity claims are stated for.
    The returned [steps] summary has [n = 1] sample (p0's single
    operation, or its first for chain targets). *)

val to_record : agg -> Scs_obs.Trajectory.record
(** Project onto the [BENCH_*.json] record shape: p50/p99 of
    per-operation steps, max interval contention, schedules/sec. *)
