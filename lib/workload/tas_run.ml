open Scs_util
open Scs_spec
open Scs_history
open Scs_composable
open Scs_sim

type algo = Composed | Strict | Solo_fast | Hardware | Tournament

let algo_name = function
  | Composed -> "speculative"
  | Strict -> "speculative-strict"
  | Solo_fast -> "solo-fast"
  | Hardware -> "hardware"
  | Tournament -> "tournament"

type op_record = {
  pid : int;
  round : int;
  resp : Objects.tas_resp;
  stage : Scs_tas.One_shot.stage option;
  steps : int;
  rmws : int;
  raws : int;
  invoke_ts : int;
  resp_ts : int;
}

type result = {
  ops : op_record list;
  outer : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
  a1 : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
  a2 : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
  mem : Mem_event.t array;
  sim : Sim.t;
  schedule : int array;
  registers : int;
  rmw_objects : int;
  round_of_req : (int, int) Hashtbl.t;
}

(* Shared runner scaffolding: build the simulator, traces and accounting,
   then let [body] spawn the per-process code given a per-operation
   wrapper that records an [op_record] around each attempt. *)
type recorder = {
  rec_outer : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.t;
  rec_a1 : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.t;
  rec_a2 : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.t;
  gen : Request.Gen.t;
  round_of_req : (int, int) Hashtbl.t;
  mutable recs : op_record list;
}

let make_recorder sim =
  let clock () = Sim.clock sim in
  {
    rec_outer = Trace.create ~clock ();
    rec_a1 = Trace.create ~clock ();
    rec_a2 = Trace.create ~clock ();
    gen = Request.Gen.create ();
    round_of_req = Hashtbl.create 64;
    recs = [];
  }

(* Record one operation: [f req] performs the algorithm and returns
   (resp, stage, round); trace events are emitted by [f] itself. The
   simulator's observability sink (a no-op unless the caller passed
   [~obs]) gets a begin/end bracket per operation, which is what feeds
   the per-operation step and contention estimators. *)
let record_op sim recorder ~pid f =
  let req = Request.Gen.fresh recorder.gen Objects.Test_and_set in
  let obs = Sim.obs sim in
  let s0 = Sim.steps_of sim pid in
  let r0 = Sim.rmws_of sim pid in
  let f0 = Sim.raw_fences_of sim pid in
  let t0 = Sim.clock sim in
  Scs_obs.Obs.op_begin obs ~pid ~obj:0 ~label:"tas";
  let resp, stage, round = f req in
  Scs_obs.Obs.op_end obs ~pid ~aborted:false;
  Hashtbl.replace recorder.round_of_req (Request.id req) round;
  let op =
    {
      pid;
      round;
      resp;
      stage;
      steps = Sim.steps_of sim pid - s0;
      rmws = Sim.rmws_of sim pid - r0;
      raws = Sim.raw_fences_of sim pid - f0;
      invoke_ts = t0;
      resp_ts = Sim.clock sim;
    }
  in
  recorder.recs <- op :: recorder.recs;
  resp

let finish sim recorder ~schedule =
  {
    ops = List.rev recorder.recs;
    outer = Trace.events recorder.rec_outer;
    a1 = Trace.events recorder.rec_a1;
    a2 = Trace.events recorder.rec_a2;
    mem = Sim.trace_arr sim;
    sim;
    schedule;
    registers = Sim.objects_allocated sim;
    rmw_objects = Sim.rmw_objects_allocated sim;
    round_of_req = recorder.round_of_req;
  }

(* Capture sits inside the crash wrapper, matching the replay composition
   of [Fuzz.replay]: the recorded schedule holds exactly the executed
   turns, and crash points key on [Sim.steps_of], which evolves
   identically on replay of the same turn prefix. *)
let run_policy ?(crashes = []) sim policy rng =
  let buf = Vec.create () in
  let p = Policy.capture buf (policy rng) in
  let p = if crashes = [] then p else Policy.with_crashes crashes p in
  Sim.run sim p;
  Vec.to_array buf

let one_shot ?(seed = 42) ?(backend = Scs_prims.Backend.default) ?(trace_mem = true)
    ?(crashes = []) ?obs ~n ~algo ~policy () =
  let rng = Rng.create seed in
  let sim = Sim.create ?obs ~n () in
  Sim.set_trace sim trace_mem;
  let obs = Sim.obs sim in
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  let recorder = make_recorder sim in
  let tr = recorder in
  (* a per-process closure performing one traced operation *)
  let op_fn : (pid:int -> Objects.tas_req Request.t -> Objects.tas_resp * Scs_tas.One_shot.stage option) =
    match algo with
    | Composed | Strict ->
        let module OS = Scs_tas.One_shot.Make (P) in
        let os = OS.create ~strict:(algo = Strict) ~name:"tas" () in
        fun ~pid req ->
          Trace.invoke tr.rec_outer ~pid req;
          Trace.invoke tr.rec_a1 ~pid req;
          (match OS.A1m.apply (OS.a1 os) ~pid None with
          | Outcome.Commit r ->
              Trace.commit tr.rec_a1 ~pid req r;
              Trace.commit tr.rec_outer ~pid req r;
              (r, Some Scs_tas.One_shot.Fast)
          | Outcome.Abort v -> (
              Trace.abort tr.rec_a1 ~pid req v;
              Scs_obs.Obs.abort obs ~pid;
              Scs_obs.Obs.handoff obs ~pid ~label:"a1->a2";
              Trace.init tr.rec_a2 ~pid req v;
              match OS.A2m.apply (OS.a2 os) ~pid (Some v) with
              | Outcome.Commit r ->
                  Trace.commit tr.rec_a2 ~pid req r;
                  Trace.commit tr.rec_outer ~pid req r;
                  (r, Some Scs_tas.One_shot.Fallback)
              | Outcome.Abort _ -> assert false))
    | Solo_fast ->
        let module SF = Scs_tas.Solo_fast.Make (P) in
        let sf = SF.create ~name:"sftas" () in
        fun ~pid req ->
          Trace.invoke tr.rec_outer ~pid req;
          Trace.invoke tr.rec_a1 ~pid req;
          (match SF.apply_fast sf ~pid None with
          | Outcome.Commit r ->
              Trace.commit tr.rec_a1 ~pid req r;
              Trace.commit tr.rec_outer ~pid req r;
              (r, Some Scs_tas.One_shot.Fast)
          | Outcome.Abort v -> (
              Trace.abort tr.rec_a1 ~pid req v;
              Scs_obs.Obs.abort obs ~pid;
              Scs_obs.Obs.handoff obs ~pid ~label:"sf->fallback";
              Trace.init tr.rec_a2 ~pid req v;
              match SF.apply_fallback sf ~pid (Some v) with
              | Outcome.Commit r ->
                  Trace.commit tr.rec_a2 ~pid req r;
                  Trace.commit tr.rec_outer ~pid req r;
                  (r, Some Scs_tas.One_shot.Fallback)
              | Outcome.Abort _ -> assert false))
    | Hardware ->
        let module B = Scs_tas.Baselines.Make (P) in
        let hw = B.Hardware.create ~name:"hw" () in
        fun ~pid req ->
          Trace.invoke tr.rec_outer ~pid req;
          let r = B.Hardware.test_and_set hw ~pid in
          Trace.commit tr.rec_outer ~pid req r;
          (r, None)
    | Tournament ->
        let module B = Scs_tas.Baselines.Make (P) in
        let tn = B.Tournament.create ~name:"agtv" ~n () in
        let rngs = Array.init n (fun _ -> Rng.split rng) in
        fun ~pid req ->
          Trace.invoke tr.rec_outer ~pid req;
          let r = B.Tournament.test_and_set tn ~pid ~rng:rngs.(pid) in
          Trace.commit tr.rec_outer ~pid req r;
          (r, None)
  in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        ignore
          (record_op sim recorder ~pid (fun req ->
               let resp, stage = op_fn ~pid req in
               (resp, stage, 0))))
  done;
  let schedule = run_policy ~crashes sim policy (Rng.split rng) in
  finish sim recorder ~schedule

let long_lived ?(seed = 42) ?(backend = Scs_prims.Backend.default) ?(trace_mem = true)
    ?(crashes = []) ?(strict = false) ?obs ~n ~ops_per_proc ~policy () =
  let rng = Rng.create seed in
  let sim = Sim.create ~max_steps:10_000_000 ?obs ~n () in
  Sim.set_trace sim trace_mem;
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  let module LL = Scs_tas.Long_lived.Make (P) in
  let recorder = make_recorder sim in
  let ll = LL.create ~strict ~name:"lltas" ~rounds:((n * ops_per_proc) + 1) () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let h = LL.handle ll ~pid in
        for _ = 1 to ops_per_proc do
          let resp =
            record_op sim recorder ~pid (fun req ->
                Trace.invoke recorder.rec_outer ~pid req;
                let resp, stage, round = LL.test_and_set_info h in
                (* A Fallback response means the speculative A1 aborted
                   and its switch value crossed into A2 this round. *)
                if stage = Scs_tas.One_shot.Fallback then begin
                  Scs_obs.Obs.abort (Sim.obs sim) ~pid;
                  Scs_obs.Obs.handoff (Sim.obs sim) ~pid ~label:"a1->a2"
                end;
                Trace.commit recorder.rec_outer ~pid req resp;
                (resp, Some stage, round))
          in
          if resp = Objects.Winner then LL.reset h
        done)
  done;
  let schedule = run_policy ~crashes sim policy (Rng.split rng) in
  finish sim recorder ~schedule

(* ---- exhaustive one-shot exploration ---------------------------------- *)

(* The per-domain "current trace" slot: [Explore.exhaustive] interleaves
   setup / run / check sequentially within each worker domain, so
   domain-local state is exactly the right scope for handing the trace
   recorded during the last replay to the check that follows it. *)
let explore_slot : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.t option Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> None)

let explore_one_shot ?max_schedules ?max_depth ?(por = false) ?(domains = 1)
    ?(backend = Scs_prims.Backend.default) ~n ~algo () =
  let bad = Atomic.make 0 in
  let setup sim =
    let module P = (val Scs_prims.Backend.sim_prims backend sim) in
    let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    Domain.DLS.set explore_slot (Some tr);
    let op =
      match algo with
      | Composed | Strict ->
          let module OS = Scs_tas.One_shot.Make (P) in
          let os = OS.create ~strict:(algo = Strict) ~name:"tas" () in
          fun ~pid -> OS.test_and_set os ~pid
      | Solo_fast ->
          let module SF = Scs_tas.Solo_fast.Make (P) in
          let sf = SF.create ~name:"sf" () in
          fun ~pid -> SF.test_and_set sf ~pid
      | Hardware ->
          let module B = Scs_tas.Baselines.Make (P) in
          let hw = B.Hardware.create ~name:"hw" () in
          fun ~pid -> B.Hardware.test_and_set hw ~pid
      | Tournament ->
          let module B = Scs_tas.Baselines.Make (P) in
          let tn = B.Tournament.create ~name:"agtv" ~n () in
          let rngs = Array.init n (fun i -> Rng.create (i + 1)) in
          fun ~pid -> B.Tournament.test_and_set tn ~pid ~rng:rngs.(pid)
    in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          Trace.invoke tr ~pid req;
          let r = op ~pid in
          Trace.commit tr ~pid req r)
    done
  in
  let check _sim _sched =
    let tr = Option.get (Domain.DLS.get explore_slot) in
    if not (Tas_lin.check_one_shot (Trace.operations (Trace.events tr))) then
      Atomic.incr bad
  in
  let outcome = Explore.exhaustive ?max_schedules ?max_depth ~por ~domains ~n ~setup ~check () in
  (outcome, Atomic.get bad)

let rounds_of result =
  let ops = Trace.operations result.outer in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (o : _ Trace.operation) ->
      let round =
        match Hashtbl.find_opt result.round_of_req (Request.id o.Trace.op_req) with
        | Some r -> r
        | None -> 0
      in
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl round) in
      Hashtbl.replace tbl round (o :: cur))
    ops;
  Hashtbl.fold (fun _ ops acc -> List.rev ops :: acc) tbl []

let winners result = List.filter (fun o -> o.resp = Objects.Winner) result.ops

let step_contended_ops result =
  List.map
    (fun op ->
      let iv = { Detect.pid = op.pid; start_ts = op.invoke_ts; end_ts = op.resp_ts } in
      (op, Detect.step_contended result.mem iv))
    result.ops
