(** Fuzzing workloads for the sharded universal-construction service
    ({!Scs_shard}): clients route keyed [Get]/[Put] operations through
    the router while (in the migrating variants) one process delegates
    a bucket between shards mid-run — under every schedule policy,
    including crash and crash-recover policies fired mid-migration.

    Every workload records a {e client-level} trace (the service's
    outward face: keyed gets and puts; administrative freeze/install
    requests stay internal) and checks it two ways: per key with
    {!Scs_history.Linearize.check_partitioned} — the compositional
    oracle, sound because the keyspace spec is a product of independent
    per-key registers — and, on small histories, monolithically, with
    the verdicts required to agree (the compositionality theorem, Lin
    et al., made executable). An operation whose client gave up (bucket
    frozen by a migrator that crashed for good) stays pending, which
    the checker already models: a pending operation may or may not have
    taken effect.

    [sharded_kv_s1] is the differential-identity twin of [uc_kv]: the
    same op script through a 1-shard service vs. a bare
    universal-construction object, for the [--shards 1] identity gate
    in CI (same seeds, verdicts must agree — and test/test_shard.ml
    pins response-level identity under a deterministic schedule). *)

val sharded_kv : Workload_def.t
(** 2 shards, 4 buckets, no migration. *)

val sharded_kv_migrate : Workload_def.t
(** 2 shards, 4 buckets; the last process interleaves a full bucket
    delegation (freeze → seal → install → re-route) between its client
    operations, with recovery entry points installed for every process:
    clients re-invoke their in-flight operation (idempotent by request-id
    deduplication, with [Refused] as the no-effect certificate), the
    migrator resumes the delegation from its durable phase register. *)

val sharded_kv_s1 : Workload_def.t
(** 1 shard, 1 bucket — the sharded service degenerated to a single
    universal construction behind a router. *)

val uc_kv : Workload_def.t
(** The plain universal-construction keyspace object, no router. *)

val all : Workload_def.t list
