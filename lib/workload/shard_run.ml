open Scs_spec
open Scs_history
open Scs_sim
module Kv = Scs_shard.Kv

let violation fmt = Printf.ksprintf (fun s -> raise (Fuzz.Violation s)) fmt
let slot () = ref None
let get slot = Option.get !slot

type kv_trace = (Kv.req, Kv.resp, unit) Trace.t

(* Deterministic per-pid op scripts over a 6-key space; fuzzing varies
   schedules and crashes, not operations. Values are unique per (pid,
   op) so the spec can tell writes apart. *)
let keyspace = 6

let client_script pid =
  [
    Kv.Put (pid mod keyspace, (10 * pid) + 1);
    Kv.Put ((pid + 1) mod keyspace, (10 * pid) + 2);
    Kv.Get (pid mod keyspace);
    Kv.Put ((pid + 2) mod keyspace, (10 * pid) + 3);
    Kv.Get ((pid + 1) mod keyspace);
  ]

(* The client-level check: per-key compositional verdict, cross-checked
   against the monolithic checker on small histories (they must agree —
   the compositionality theorem made executable). *)
let kv_check ~what slot _sim =
  let tr : kv_trace = get slot in
  let ops =
    match Trace.operations (Trace.events tr) with
    | ops -> ops
    | exception Invalid_argument msg -> violation "%s: malformed trace: %s" what msg
  in
  let nops = List.length ops in
  if nops > Linearize.max_operations then Fuzz.checked_large ();
  let key (o : _ Trace.operation) =
    match Kv.key_of_req (Request.payload o.Trace.op_req) with
    | Some k -> k
    | None -> violation "%s: administrative request leaked into the client trace" what
  in
  let part_ok = Linearize.check_partitioned ~key ~spec:(fun _ -> Kv.flat_spec) ops in
  if not part_ok then violation "%s: per-key partitioned check failed (%d ops)" what nops;
  if nops <= 36 && not (Linearize.check_operations Kv.flat_spec ops) then
    violation "%s: partitioned and monolithic verdicts disagree (%d ops)" what nops

(* ---- the sharded service under fuzzed schedules ----------------------- *)

let sharded_setup ~shards ~buckets ~migrate ~backend ~n slot sim =
  let module P = (val Scs_prims.Backend.sim_prims backend sim : Scs_prims.Prims_intf.S) in
  let module S = Scs_shard.Service.Make (P) in
  let svc = S.create ~name:"svc" ~n ~shards ~buckets ~capacity:256 () in
  let mig = S.Migration.create ~name:"mig" svc in
  let tr : kv_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  slot := Some tr;
  let gen = Request.Gen.create () in
  let infl = Array.make n None in
  let handles = Array.init n (fun pid -> S.handle svc ~pid) in
  let record pid rq outcome =
    (* clear the in-flight mark BEFORE committing: a crash in between
       leaves the op pending (sound) instead of re-running it *)
    infl.(pid) <- None;
    match outcome with
    | S.Done resp -> Trace.commit tr ~pid rq resp
    | S.Gave_up -> ()
  in
  let do_op pid payload =
    let rq = Request.Gen.fresh gen payload in
    Trace.invoke tr ~pid rq;
    infl.(pid) <- Some rq;
    record pid rq (S.apply handles.(pid) payload)
  in
  let migrator = n - 1 in
  for pid = 0 to n - 1 do
    Sim.set_recovery sim pid (fun () ->
        (* the migrator resumes its delegation first (its own client
           ops never overlap the migration, so at most one of the two
           branches does real work) *)
        if migrate && pid = migrator then S.Migration.recover mig ~h:handles.(pid);
        match infl.(pid) with
        | None -> ()
        | Some rq -> (
            Trace.recover tr ~pid rq;
            match S.recover handles.(pid) with
            | Some outcome -> record pid rq outcome
            | None ->
                (* no attempt reached any shard: safe to run afresh *)
                record pid rq (S.apply handles.(pid) (Request.payload rq))));
    Sim.spawn sim pid (fun () ->
        if migrate && pid = migrator then begin
          do_op pid (Kv.Put (0, 900 + pid));
          let rt = S.router svc in
          let b = Kv.bucket_of_key ~buckets 0 in
          let dst = ((S.R.route_bucket rt ~bucket:b).S.R.owner + 1) mod shards in
          S.Migration.migrate mig ~h:handles.(pid) ~bucket:b ~dst;
          do_op pid (Kv.Get 0);
          do_op pid (Kv.Put (1, 910 + pid))
        end
        else List.iter (do_op pid) (client_script pid))
  done

let mk_sharded name ~describe ~shards ~buckets ~migrate =
  {
    Workload_def.name;
    describe;
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        {
          Workload_def.setup = sharded_setup ~shards ~buckets ~migrate ~backend ~n s;
          check = kv_check ~what:name s;
        });
  }

let sharded_kv =
  mk_sharded "sharded-kv" ~shards:2 ~buckets:4 ~migrate:false
    ~describe:"keyed gets/puts routed over 2 UC shards: per-key compositional linearizability"

let sharded_kv_migrate =
  mk_sharded "sharded-kv-migrate" ~shards:2 ~buckets:4 ~migrate:true
    ~describe:
      "2-shard service with a mid-run bucket delegation; crash/crash-recover safe \
       (freeze-seal-install-reroute, recovery from the durable phase)"

let sharded_kv_s1 =
  mk_sharded "sharded-kv-s1" ~shards:1 ~buckets:1 ~migrate:false
    ~describe:"the sharded service degenerated to 1 shard — uc-kv's differential twin"

(* ---- the bare universal-construction keyspace object ------------------ *)

let uc_setup ~backend ~n slot sim =
  let module P = (val Scs_prims.Backend.sim_prims backend sim : Scs_prims.Prims_intf.S) in
  let module Uc = Scs_universal.Uc_object.Make (P) in
  let module Sc = Scs_consensus.Split_consensus.Make (P) in
  let module Ab = Scs_consensus.Abortable_bakery.Make (P) in
  let module Cc = Scs_consensus.Cas_consensus.Make (P) in
  let spf = Printf.sprintf in
  let stages =
    [
      (fun ~name ~slot -> Sc.instance (Sc.create ~name:(spf "%s.split[%d]" name slot) ()));
      (fun ~name ~slot -> Ab.instance (Ab.create ~name:(spf "%s.bakery[%d]" name slot) ~n ()));
      (fun ~name ~slot -> Cc.instance (Cc.create ~name:(spf "%s.cas[%d]" name slot) ()));
    ]
  in
  let obj =
    Uc.Typed.create (Kv.spec ~buckets:1)
      (Uc.create ~name:"uckv" ~n ~max_requests:256 ~stages ())
  in
  let tr : kv_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  slot := Some tr;
  let gen = Request.Gen.create () in
  let infl = Array.make n None in
  let handles = Array.init n (fun pid -> Uc.Typed.handle obj ~pid) in
  let do_op pid payload =
    let rq = Request.Gen.fresh gen payload in
    Trace.invoke tr ~pid rq;
    infl.(pid) <- Some rq;
    let resp = Uc.Typed.apply handles.(pid) rq in
    infl.(pid) <- None;
    Trace.commit tr ~pid rq resp
  in
  for pid = 0 to n - 1 do
    Sim.set_recovery sim pid (fun () ->
        match infl.(pid) with
        | None -> ()
        | Some rq ->
            (* re-propose the SAME id: the UC deduplicates, so this is
               the crashed attempt's response or a first commit *)
            Trace.recover tr ~pid rq;
            let resp = Uc.Typed.apply handles.(pid) rq in
            infl.(pid) <- None;
            Trace.commit tr ~pid rq resp);
    Sim.spawn sim pid (fun () -> List.iter (do_op pid) (client_script pid))
  done

let uc_kv =
  {
    Workload_def.name = "uc-kv";
    describe = "bare universal-construction keyspace object (no router) — identity baseline";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        {
          Workload_def.setup = uc_setup ~backend ~n s;
          check = kv_check ~what:"uc-kv" s;
        });
  }

let all = [ sharded_kv; sharded_kv_migrate; sharded_kv_s1; uc_kv ]
