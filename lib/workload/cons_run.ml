open Scs_util
open Scs_composable
open Scs_sim
open Scs_consensus

type algo = Split | Bakery | Cas | Chain3

let algo_name = function
  | Split -> "split-consensus"
  | Bakery -> "abortable-bakery"
  | Cas -> "cas"
  | Chain3 -> "split>bakery>cas"

type op = {
  pid : int;
  proposal : int;
  outcome : (int option, int option) Outcome.t;
  steps : int;
  rmws : int;
}

type result = {
  ops : op list;
  sim : Sim.t;
  schedule : int array;
  agreement : bool;
  validity : bool;
}

let make_instance (type a) ~algo ~n (module P : Scs_prims.Prims_intf.S)
    : a Consensus_intf.t =
  match algo with
  | Split ->
      let module SC = Split_consensus.Make (P) in
      SC.instance (SC.create ~name:"split" ())
  | Bakery ->
      let module AB = Abortable_bakery.Make (P) in
      AB.instance (AB.create ~name:"bakery" ~n ())
  | Cas ->
      let module CC = Cas_consensus.Make (P) in
      CC.instance (CC.create ~name:"cas" ())
  | Chain3 ->
      let module SC = Split_consensus.Make (P) in
      let module AB = Abortable_bakery.Make (P) in
      let module CC = Cas_consensus.Make (P) in
      let module CH = Chain.Make (P) in
      CH.make ~name:"chain"
        [
          SC.instance (SC.create ~name:"chain.split" ());
          AB.instance (AB.create ~name:"chain.bakery" ~n ());
          CC.instance (CC.create ~name:"chain.cas" ());
        ]

let run ?(seed = 42) ?(backend = Scs_prims.Backend.default) ?obs ~n ~algo ~policy () =
  let rng = Rng.create seed in
  let sim = Sim.create ?obs ~n () in
  let obs = Sim.obs sim in
  let module P = (val Scs_prims.Backend.sim_prims backend sim) in
  let inst : int Consensus_intf.t = make_instance ~algo ~n (module P) in
  let ops = ref [] in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let proposal = 100 + pid in
        let s0 = Sim.steps_of sim pid in
        let r0 = Sim.rmws_of sim pid in
        (* One obs bracket per propose; all processes hit the same
           consensus instance, so interval contention is measured
           against object 0 exactly as Appendix A defines it. *)
        Scs_obs.Obs.op_begin obs ~pid ~obj:0 ~label:(algo_name algo);
        let outcome = inst.Consensus_intf.run ~pid ~old:None proposal in
        let aborted = match outcome with Outcome.Abort _ -> true | _ -> false in
        if aborted then Scs_obs.Obs.abort obs ~pid;
        (match outcome with
        | Outcome.Abort (Some _) ->
            (* an adopted switch value: what a chain would hand to the
               next stage *)
            Scs_obs.Obs.handoff obs ~pid ~label:"switch"
        | _ -> ());
        Scs_obs.Obs.op_end obs ~pid ~aborted;
        ops :=
          {
            pid;
            proposal;
            outcome;
            steps = Sim.steps_of sim pid - s0;
            rmws = Sim.rmws_of sim pid - r0;
          }
          :: !ops)
  done;
  let buf = Vec.create () in
  Sim.run sim (Policy.capture buf (policy (Rng.split rng)));
  let ops = List.rev !ops in
  let decisions =
    List.filter_map
      (fun o -> match o.outcome with Outcome.Commit (Some d) -> Some d | _ -> None)
      ops
  in
  let agreement =
    match decisions with [] -> true | d :: rest -> List.for_all (fun x -> x = d) rest
  in
  let proposals = List.map (fun o -> o.proposal) ops in
  let validity = List.for_all (fun d -> List.mem d proposals) decisions in
  { ops; sim; schedule = Vec.to_array buf; agreement; validity }

let solo_steps algo ~n =
  let r = run ~n ~algo ~policy:(fun _ -> Policy.solo 0) () in
  match r.ops with
  | [] -> 0
  | o :: _ -> o.steps
