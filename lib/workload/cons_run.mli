(** Simulated abortable-consensus workloads (experiments T3/T4). *)

open Scs_composable
open Scs_sim

type algo =
  | Split  (** SplitConsensus: O(1) solo, commits absent interval contention *)
  | Bakery  (** AbortableBakery: O(n) solo, commits absent step contention *)
  | Cas  (** wait-free CAS consensus *)
  | Chain3  (** Split → Bakery → CAS composition *)

val algo_name : algo -> string

type op = {
  pid : int;
  proposal : int;
  outcome : (int option, int option) Outcome.t;
  steps : int;
  rmws : int;
}

type result = {
  ops : op list;
  sim : Sim.t;
  schedule : int array;  (** the complete executed pid schedule *)
  agreement : bool;  (** all committed non-⊥ decisions equal *)
  validity : bool;  (** every committed decision was somebody's proposal *)
}

val make_instance :
  algo:algo ->
  n:int ->
  (module Scs_prims.Prims_intf.S) ->
  'a Scs_consensus.Consensus_intf.t
(** Build the algorithm instance on a primitives module (all mutable
    state lives in the underlying simulator's objects — used by the
    pooled {!Obs_run} drivers, which rewind that state between runs
    with [Sim.reset]). *)

val run :
  ?seed:int ->
  ?backend:Scs_prims.Backend.t ->
  ?obs:Scs_obs.Obs.t ->
  n:int ->
  algo:algo ->
  policy:(Scs_util.Rng.t -> Policy.t) ->
  unit ->
  result
(** Process [i] proposes [100 + i]. [backend] (default
    {!Scs_prims.Backend.default}) selects the simulator primitive
    backend. [obs] (default disabled) gets one operation bracket per
    propose (all against object 0, the consensus instance), an abort
    count per [Abort] outcome and a handoff per adopted switch value —
    the inputs to the abort-rate-vs-contention analysis of experiment
    T13. *)

val solo_steps : algo -> n:int -> int
(** Steps taken by process 0 deciding alone — the solo/uncontended step
    complexity the appendix algorithms are measured by. *)
