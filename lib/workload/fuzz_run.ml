open Scs_spec
open Scs_history
open Scs_composable
open Scs_sim

type instance = Workload_def.instance = { setup : Sim.t -> unit; check : Sim.t -> unit }

type t = Workload_def.t = {
  name : string;
  describe : string;
  default_n : int;
  expect_failures : bool;
  instantiate : ?backend:Scs_prims.Backend.t -> n:int -> unit -> instance;
}

let violation fmt = Printf.ksprintf (fun s -> raise (Fuzz.Violation s)) fmt

(* Count a history past the legacy 62-op cap as checked-large (such runs
   were skipped before the scalable checker). *)
let note_large nops = if nops > Linearize.max_operations then Fuzz.checked_large ()

(* Each run gets its own workload instance ([Fuzz.run ~instantiate]), so a
   plain ref is the right channel between a run's [setup] and its [check]
   — even when checks are verified on worker domains, no two runs share a
   slot. *)
let slot () = ref None
let get slot = Option.get !slot

(* ---- one-shot TAS workloads ------------------------------------------- *)

type tas_trace = (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.t

let tas_one_shot_setup ~n ~mk slot sim =
  let tr : tas_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  slot := Some tr;
  let op = mk sim in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let req = Request.make pid Objects.Test_and_set in
        Trace.invoke tr ~pid req;
        let r = op ~pid in
        Trace.commit tr ~pid req r)
  done

(* The backend's primitive maker: every workload setup goes through it,
   so fuzzing (and differential fuzzing) select sim-linearizable vs
   sim-SC uniformly. *)
let prims_of backend = Scs_prims.Backend.sim_prims backend

let mk_one_shot ~strict prims sim =
  let module P = (val prims sim : Scs_prims.Prims_intf.S) in
  let module OS = Scs_tas.One_shot.Make (P) in
  let os = OS.create ~strict ~name:"tas" () in
  fun ~pid -> OS.test_and_set os ~pid

let mk_solo_fast prims sim =
  let module P = (val prims sim : Scs_prims.Prims_intf.S) in
  let module SF = Scs_tas.Solo_fast.Make (P) in
  let sf = SF.create ~name:"sf" () in
  fun ~pid -> SF.test_and_set sf ~pid

let check_strictly_linearizable what slot _sim =
  let ops = Trace.operations (Trace.events (get slot)) in
  if not (Tas_lin.check_one_shot ops) then violation "%s not strictly linearizable" what

(* F-1 finder: the verbatim composed algorithm against the strict
   Herlihy–Wing criterion it is known to violate from n = 3 on. *)
let f1 =
  {
    name = "f1";
    describe = "composed A1∘A2 vs strict linearizability (known failing, finding F-1)";
    default_n = 4;
    expect_failures = true;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        {
          setup = tas_one_shot_setup ~n ~mk:(mk_one_shot ~strict:false (prims_of backend)) s;
          check = check_strictly_linearizable "composed A1∘A2" s;
        });
  }

(* F-2 finder: Invariant 4 of the Lemma 4 proof on the bare A1 — no
   operation aborting with W may be invoked after a loser committed. *)
let f2 =
  {
    name = "f2";
    describe = "Invariant 4 on bare A1 (known failing, finding F-2)";
    default_n = 4;
    expect_failures = true;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let setup sim =
          let module P = (val prims_of backend sim) in
          let module A1 = Scs_tas.A1.Make (P) in
          let a1 = A1.create ~name:"a1" () in
          let tr : tas_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
          s := Some tr;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                let req = Request.make pid Objects.Test_and_set in
                Trace.invoke tr ~pid req;
                match A1.apply a1 ~pid None with
                | Outcome.Commit r -> Trace.commit tr ~pid req r
                | Outcome.Abort v -> Trace.abort tr ~pid req v)
          done
        in
        let check _sim =
          let ops = Trace.operations (Trace.events (get s)) in
          let resp_seq (o : _ Trace.operation) =
            match o.Trace.outcome with
            | Trace.Committed { resp_seq; _ } | Trace.Aborted { resp_seq; _ } -> resp_seq
            | Trace.Pending -> max_int
          in
          let first_loser =
            List.fold_left
              (fun m (o : _ Trace.operation) ->
                match o.Trace.outcome with
                | Trace.Committed { resp = Objects.Loser; _ } -> min m (resp_seq o)
                | _ -> m)
              max_int ops
          in
          List.iter
            (fun (o : _ Trace.operation) ->
              match o.Trace.outcome with
              | Trace.Aborted { switch = Tas_switch.W; _ }
                when o.Trace.invoke_seq > first_loser ->
                  violation "Invariant 4 violated: W-abort invoked after a loser committed"
              | _ -> ())
            ops
        in
        { setup; check });
  }

(* Winner uniqueness + safe composability of the composed algorithm:
   must hold on every schedule (Theorem 2 territory), so any violation
   is a real regression. *)
let tas_composed =
  {
    name = "tas-composed";
    describe = "composed A1∘A2: winner uniqueness + Definition 2 interpretation";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let check _sim =
          let evs = Trace.events (get s) in
          let ops = Trace.operations evs in
          let committed, winners =
            List.fold_left
              (fun (c, w) (o : _ Trace.operation) ->
                match o.Trace.outcome with
                | Trace.Committed { resp = Objects.Winner; _ } -> (c + 1, w + 1)
                | Trace.Committed _ -> (c + 1, w)
                | _ -> (c, w))
              (0, 0) ops
          in
          if winners > 1 then violation "%d winners" winners;
          if committed = n && winners = 0 then violation "all committed, no winner";
          if committed = List.length ops then
            match Tas_interp.check_events evs with
            | Ok () -> ()
            | Error e -> violation "no Definition 2 interpretation: %s" e
        in
        { setup = tas_one_shot_setup ~n ~mk:(mk_one_shot ~strict:false (prims_of backend)) s; check });
  }

let tas_strict =
  {
    name = "tas-strict";
    describe = "strict-variant A1∘A2 vs strict linearizability (finding F-3)";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        {
          setup = tas_one_shot_setup ~n ~mk:(mk_one_shot ~strict:true (prims_of backend)) s;
          check = check_strictly_linearizable "strict variant" s;
        });
  }

let tas_solo_fast =
  {
    name = "tas-solo-fast";
    describe = "Appendix B solo-fast variant vs strict linearizability";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        {
          setup = tas_one_shot_setup ~n ~mk:(mk_solo_fast (prims_of backend)) s;
          check = check_strictly_linearizable "solo-fast variant" s;
        });
  }

(* ---- splitter --------------------------------------------------------- *)

let splitter =
  {
    name = "splitter";
    describe = "Moir–Anderson splitter: at most one Stop per era";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let setup sim =
          let module P = (val prims_of backend sim) in
          let module Sp = Scs_consensus.Splitter.Make (P) in
          let sp = Sp.create ~name:"split" () in
          let results = Array.make n None in
          s := Some results;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () -> results.(pid) <- Some (Sp.split sp ~pid))
          done
        in
        let check _sim =
          let results = get s in
          let stops =
            Array.fold_left
              (fun acc r ->
                if r = Some Scs_consensus.Splitter.Stop then acc + 1 else acc)
              0 results
          in
          if stops > 1 then violation "%d processes returned Stop" stops
        in
        { setup; check });
  }

(* ---- consensus chain -------------------------------------------------- *)

let consensus_chain =
  {
    name = "consensus-chain";
    describe = "split>bakery>cas chain: agreement + validity";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let setup sim =
          let module P = (val prims_of backend sim) in
          let module SC = Scs_consensus.Split_consensus.Make (P) in
          let module AB = Scs_consensus.Abortable_bakery.Make (P) in
          let module CC = Scs_consensus.Cas_consensus.Make (P) in
          let module CH = Scs_consensus.Chain.Make (P) in
          let inst : int Scs_consensus.Consensus_intf.t =
            CH.make ~name:"chain"
              [
                SC.instance (SC.create ~name:"chain.split" ());
                AB.instance (AB.create ~name:"chain.bakery" ~n ());
                CC.instance (CC.create ~name:"chain.cas" ());
              ]
          in
          let outcomes = Array.make n None in
          s := Some outcomes;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                outcomes.(pid) <-
                  Some (inst.Scs_consensus.Consensus_intf.run ~pid ~old:None (100 + pid)))
          done
        in
        let check _sim =
          let outcomes = get s in
          let decisions =
            Array.to_list outcomes
            |> List.filter_map (function
                 | Some (Outcome.Commit (Some d)) -> Some d
                 | _ -> None)
          in
          (match decisions with
          | [] -> ()
          | d :: rest ->
              if not (List.for_all (fun x -> x = d) rest) then
                violation "agreement violated: decisions disagree");
          (* validity vs all proposals, not just recorded ones — a
             crashed proposer's value may legitimately be decided *)
          List.iter
            (fun d -> if d < 100 || d >= 100 + n then violation "invalid decision %d" d)
            decisions
        in
        { setup; check });
  }

(* ---- recoverable consensus -------------------------------------------- *)

(* Crash-recovery workloads: one abortable-consensus proposal per
   process, with [Sim.set_recovery] installed so that a crash-recover
   fuzz policy re-admits the crashed process into the algorithm's
   recovery procedure. The trace records the recovery as a re-invocation
   of the in-flight request ([Trace.recover]), and the check starts from
   trace well-formedness under that model.

   The check deliberately does NOT linearize the proposals against a
   consensus spec: an aborted (or pending) proposal may still have taken
   effect inside the instance — that is the whole point of abortable
   objects — so a naive spec check yields false violations. The sound
   properties are agreement, validity and switch coherence: every
   decision value that escapes (committed or carried out by an abort)
   is one of the proposals, and they all agree. *)

type recov_trace = (int, int option, int option) Trace.t

type recov_state = {
  rc_tr : recov_trace;
  rc_outcomes : (int option, int option) Outcome.t option array;
  rc_inflight : int Request.t option array;
}

let recoverable_setup ~n ~prims ~algo slot sim =
  let module P = (val prims sim : Scs_prims.Prims_intf.S) in
  let propose, recover = algo (module P : Scs_prims.Prims_intf.S) in
  let tr : recov_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  let st =
    {
      rc_tr = tr;
      rc_outcomes = Array.make n None;
      rc_inflight = Array.make n None;
    }
  in
  slot := Some st;
  let record pid req outcome =
    st.rc_inflight.(pid) <- None;
    st.rc_outcomes.(pid) <- Some outcome;
    match outcome with
    | Outcome.Commit d -> Trace.commit tr ~pid req d
    | Outcome.Abort w -> Trace.abort tr ~pid req w
  in
  for pid = 0 to n - 1 do
    (* The recovery entry point: re-enter the in-flight operation (a
       re-invocation, not a fresh one). [recover] returning [None] means
       the crash hit before the durable write-ahead phase or after the
       response escaped durable state — the operation stays pending. A
       crash *of the recovery itself* re-runs this closure; the
       algorithms' recovery procedures are idempotent. *)
    Sim.set_recovery sim pid (fun () ->
        match st.rc_inflight.(pid) with
        | None -> ()
        | Some req -> (
            Trace.recover tr ~pid req;
            match recover ~pid with
            | None -> ()
            | Some outcome -> record pid req outcome));
    Sim.spawn sim pid (fun () ->
        let req = Request.make pid (100 + pid) in
        Trace.invoke tr ~pid req;
        st.rc_inflight.(pid) <- Some req;
        record pid req (propose ~pid (Some (100 + pid))))
  done

let recoverable_check ~what ~n slot _sim =
  let st = get slot in
  let evs = Trace.events st.rc_tr in
  (* re-invocation-aware well-formedness: every Recover falls strictly
     inside its request's operation interval *)
  let ops =
    match Trace.operations evs with
    | ops -> ops
    | exception Invalid_argument msg -> violation "%s: malformed trace: %s" what msg
  in
  (* every value that escapes the instance, whether committed or carried
     out as an abort's switch value *)
  let escaped =
    List.filter_map
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Committed { resp = Some d; _ } -> Some d
        | Trace.Aborted { switch = Some d; _ } -> Some d
        | _ -> None)
      ops
  in
  (match escaped with
  | [] -> ()
  | d :: rest ->
      if not (List.for_all (fun x -> x = d) rest) then
        violation "%s: agreement violated: decision values disagree" what);
  List.iter
    (fun d -> if d < 100 || d >= 100 + n then violation "%s: invalid decision %d" what d)
    escaped;
  (* a committed proposal must never be left marked in flight *)
  Array.iteri
    (fun pid -> function
      | Some _ when st.rc_inflight.(pid) <> None ->
          violation "%s: pid %d responded but still marked in flight" what pid
      | _ -> ())
    st.rc_outcomes

let recoverable_split =
  {
    name = "recoverable-split";
    describe = "recoverable SplitConsensus under crash-recovery: agreement + validity";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let algo (module P : Scs_prims.Prims_intf.S) =
          let module RS = Scs_consensus.Recoverable_split.Make (P) in
          let rs = RS.create ~name:"rsplit" ~n () in
          ((fun ~pid v -> RS.propose rs ~pid v), fun ~pid -> RS.recover rs ~pid)
        in
        {
          setup = recoverable_setup ~n ~prims:(prims_of backend) ~algo s;
          check = recoverable_check ~what:"recoverable-split" ~n s;
        });
  }

let recoverable_bakery_named name ~volatile_announce ~describe ~expect_failures =
  {
    name;
    describe;
    default_n = 3;
    expect_failures;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let algo (module P : Scs_prims.Prims_intf.S) =
          let module RB = Scs_consensus.Recoverable_bakery.Make (P) in
          let rb = RB.create ~name:"rbakery" ~volatile_announce ~n () in
          ((fun ~pid v -> RB.propose rb ~pid v), fun ~pid -> RB.recover rb ~pid)
        in
        {
          setup = recoverable_setup ~n ~prims:(prims_of backend) ~algo s;
          check = recoverable_check ~what:name ~n s;
        });
  }

let recoverable_bakery =
  recoverable_bakery_named "recoverable-bakery" ~volatile_announce:false
    ~describe:"recoverable AbortableBakery under crash-recovery: agreement + validity"
    ~expect_failures:false

(* The instructive unsound variant: volatile announcement arrays. A
   crash wipes every in-flight (Ai) entry, after which two survivors can
   both pass their clean checks against an empty array and commit
   different values — finding F-5, pinned in test/test_recovery.ml. *)
let recoverable_bakery_volatile =
  recoverable_bakery_named "recoverable-bakery-volatile" ~volatile_announce:true
    ~describe:
      "bakery with volatile announcements (known failing under crashes, finding F-5)"
    ~expect_failures:true

(* ---- long-lived TAS --------------------------------------------------- *)

(* The paper's Section 6 long-lived TAS (strict per-round variant): each
   process runs enough test-and-set rounds that the global resettable-TAS
   history always exceeds 200 operations — exactly the runs the legacy
   62-op bitmask checker had to skip. The check verifies the whole
   history with the scalable checker AND cross-checks the compositional
   front-end: each round lives in its own one-shot instance, so splitting
   by round id is a sound per-object decomposition (every partition is
   checked against a fresh resettable-TAS spec; the split agrees with the
   monolithic verdict by the compositionality theorem). *)
let tas_long_lived =
  {
    name = "tas-long-lived";
    describe = "strict long-lived TAS, 200+ ops: scalable + per-round split lin-check";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let iters = (200 + n - 1) / n in
        let s = slot () in
        let setup sim =
          let module P = (val prims_of backend sim) in
          let module LL = Scs_tas.Long_lived.Make (P) in
          let ll = LL.create ~strict:true ~name:"ll" ~rounds:((n * iters) + 1) () in
          let gen = Request.Gen.create () in
          let tr : (Objects.rtas_req, Objects.rtas_resp, unit) Trace.t =
            Trace.create ~clock:(fun () -> Sim.clock sim) ()
          in
          (* request id -> round, for the compositional split *)
          let round_of : (int, int) Hashtbl.t = Hashtbl.create 128 in
          s := Some (tr, round_of);
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                let h = LL.handle ll ~pid in
                for _ = 1 to iters do
                  let req = Request.Gen.fresh gen Objects.R_test_and_set in
                  Trace.invoke tr ~pid req;
                  let resp, _stage, round = LL.test_and_set_info h in
                  Hashtbl.replace round_of (Request.id req) round;
                  Trace.commit tr ~pid req
                    (match resp with
                    | Objects.Winner -> Objects.R_winner
                    | Objects.Loser -> Objects.R_loser);
                  if resp = Objects.Winner then begin
                    let rq = Request.Gen.fresh gen Objects.R_reset in
                    Trace.invoke tr ~pid rq;
                    Hashtbl.replace round_of (Request.id rq) round;
                    (* the round-count write happens inside [reset], before
                       the commit below — so every round-r operation is
                       invoked before reset r's commit and may linearize
                       ahead of it *)
                    LL.reset h;
                    Trace.commit tr ~pid rq Objects.R_ok
                  end
                done)
          done
        in
        let check _sim =
          let tr, round_of = get s in
          let ops = Trace.operations (Trace.events tr) in
          note_large (List.length ops);
          if not (Linearize.check_operations Objects.resettable_tas ops) then
            violation "long-lived TAS history (%d ops) not linearizable"
              (List.length ops);
          (* compositional cross-check: one partition per round. Sound only
             when every operation's round is known: a process crashed before
             [test_and_set_info] returned leaves a Pending op with no
             recorded round, and that op may still have taken effect — e.g.
             won its round's hardware TAS, making a committed Loser in that
             round globally linearizable. Misplacing it in a catch-all
             partition strands the Loser alone with a fresh spec, a false
             violation (found by this very fuzzer under uniform+crash). *)
          let round o =
            Hashtbl.find_opt round_of (Request.id o.Trace.op_req)
          in
          if List.for_all (fun o -> round o <> None) ops then
            let key o = Option.get (round o) in
            if
              not
                (Linearize.check_partitioned ~key
                   ~spec:(fun _ -> Objects.resettable_tas)
                   ops)
            then
              violation "per-round split of long-lived TAS history not linearizable"
        in
        { setup; check });
  }

(* ---- speculative queue ------------------------------------------------ *)

(* 22 ops per process puts even the default n = 3 history (66 ops) past
   the legacy 62-op cap — such runs used to be skipped and are now checked
   (and counted as checked-large). Checking cost is exponential in
   concurrency width (= n here, since the queue is a single object), not
   length, so the check carries a node budget: at sane n it never fires,
   and at adversarial width (n ≳ 10) the run degrades to an honest skip
   instead of hanging the batch. *)
let queue =
  let ops_per_proc = 22 in
  let search_budget = 200_000 in
  {
    name = "queue";
    describe = "speculative queue (lib/futures): generic linearizability";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ?(backend = Scs_prims.Backend.default) ~n () ->
        let s = slot () in
        let setup sim =
          let module P = (val prims_of backend sim) in
          let module SO = Scs_futures.Spec_object.Make (P) in
          let obj =
            SO.create ~transfer:Scs_futures.Spec_object.History ~name:"q" ~n
              ~max_requests:(8 * n * ops_per_proc) ~spec:Objects.queue
              ~state_to_requests:(fun q -> List.map (fun x -> Objects.Enqueue x) q)
              ()
          in
          let gen = Request.Gen.create () in
          let tr : (Objects.queue_req, Objects.queue_resp, unit) Trace.t =
            Trace.create ~clock:(fun () -> Sim.clock sim) ()
          in
          s := Some tr;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                let h = SO.handle obj ~pid in
                for k = 1 to ops_per_proc do
                  let payload =
                    if k mod 2 = 1 then Objects.Enqueue ((100 * pid) + k)
                    else Objects.Dequeue
                  in
                  let req = Request.Gen.fresh gen payload in
                  Trace.invoke tr ~pid req;
                  let resp = SO.apply h req in
                  Trace.commit tr ~pid req resp
                done)
          done
        in
        let check _sim =
          let ops = Trace.operations (Trace.events (get s)) in
          let nops = List.length ops in
          match
            Linearize.check_operations ~budget:search_budget Objects.queue ops
          with
          | ok ->
              note_large nops;
              if not ok then violation "queue history not linearizable"
          | exception Linearize.Search_budget_exceeded b ->
              raise
                (Fuzz.Skip
                   (Printf.sprintf
                      "lin-check search budget (%d nodes) exceeded on %d-op history" b
                      nops))
        in
        { setup; check });
  }

let all =
  [
    f1;
    f2;
    tas_composed;
    tas_strict;
    tas_solo_fast;
    tas_long_lived;
    splitter;
    consensus_chain;
    recoverable_split;
    recoverable_bakery;
    recoverable_bakery_volatile;
    queue;
  ]
  @ Shard_run.all

let find name = List.find_opt (fun w -> w.name = name) all
let names () = List.map (fun w -> w.name) all

(* Workload names qualified with a non-default backend — the [.scsrepro]
   encoding ("splitter@sim-sc:1"), so repro artifacts recorded on the SC
   backend replay on it without any format change. *)
let qualified_name w backend =
  match backend with
  | Scs_prims.Backend.Sim_lin -> w.name
  | b -> w.name ^ "@" ^ Scs_prims.Backend.name b

let find_qualified s =
  match String.index_opt s '@' with
  | None -> Option.map (fun w -> (w, Scs_prims.Backend.Sim_lin)) (find s)
  | Some i -> (
      let base = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match (find base, Scs_prims.Backend.of_string rest) with
      | Some w, Ok backend -> Some (w, backend)
      | _ -> None)

let fuzz ?backend ?policies ?runs ?time_budget ?max_violations ?seed ?max_steps ?check_domains
    ?gen_domains ?pool ?obs w ~n =
  let workload =
    qualified_name w (Option.value ~default:Scs_prims.Backend.default backend)
  in
  Fuzz.run ?policies ?runs ?time_budget ?max_violations ?seed ?max_steps
    ?check_domains ?gen_domains ?pool ?obs ~workload ~n
    ~instantiate:(fun () ->
      let { setup; check } = w.instantiate ?backend ~n () in
      (setup, check))
    ()

type replay_outcome =
  | Violates of string  (** the recorded violation reproduces *)
  | Passes  (** replays cleanly: the check holds on this schedule *)
  | Skipped of string
  | Drifted of int  (** schedule does not replay; offending pid *)

let replay ?backend w ~n ~schedule ~crashes =
  let { setup; check } = w.instantiate ?backend ~n () in
  match check (Fuzz.replay ~n ~setup ~schedule ~crashes ()) with
  | () -> Passes
  | exception Fuzz.Violation msg -> Violates msg
  | exception Fuzz.Skip msg -> Skipped msg
  | exception Policy.Replay_drift p -> Drifted p

let shrink ?backend ?max_rounds ?max_steps w ~n ~schedule ~crashes =
  let { setup; check } = w.instantiate ?backend ~n () in
  Shrink.minimize ?max_rounds ?max_steps ~n ~setup ~check ~schedule ~crashes ()
