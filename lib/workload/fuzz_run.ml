open Scs_spec
open Scs_history
open Scs_composable
open Scs_sim

type instance = { setup : Sim.t -> unit; check : Sim.t -> unit }

type t = {
  name : string;
  describe : string;
  default_n : int;
  expect_failures : bool;
  instantiate : n:int -> instance;
}

let violation fmt = Printf.ksprintf (fun s -> raise (Fuzz.Violation s)) fmt

(* Generic Wing–Gong checks are capped at [Linearize.max_operations];
   a fuzz batch must skip such runs (with the skip counted in the
   report), not die mid-batch. *)
let lin_guard f =
  try f ()
  with Linearize.Capacity_exceeded n ->
    raise
      (Fuzz.Skip
         (Printf.sprintf "history has %d operations, past the %d-op lin-check cap" n
            Linearize.max_operations))

(* Fuzzing is sequential within a batch (unlike [Explore.exhaustive]'s
   domain fan-out), so a plain ref is the right channel between each
   run's [setup] and the [check] that immediately follows it. *)
let slot () = ref None
let get slot = Option.get !slot

(* ---- one-shot TAS workloads ------------------------------------------- *)

type tas_trace = (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.t

let tas_one_shot_setup ~n ~mk slot sim =
  let tr : tas_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  slot := Some tr;
  let op = mk sim in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let req = Request.make pid Objects.Test_and_set in
        Trace.invoke tr ~pid req;
        let r = op ~pid in
        Trace.commit tr ~pid req r)
  done

let mk_one_shot ~strict sim =
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module OS = Scs_tas.One_shot.Make (P) in
  let os = OS.create ~strict ~name:"tas" () in
  fun ~pid -> OS.test_and_set os ~pid

let mk_solo_fast sim =
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module SF = Scs_tas.Solo_fast.Make (P) in
  let sf = SF.create ~name:"sf" () in
  fun ~pid -> SF.test_and_set sf ~pid

let check_strictly_linearizable what slot _sim =
  let ops = Trace.operations (Trace.events (get slot)) in
  if not (Tas_lin.check_one_shot ops) then violation "%s not strictly linearizable" what

(* F-1 finder: the verbatim composed algorithm against the strict
   Herlihy–Wing criterion it is known to violate from n = 3 on. *)
let f1 =
  {
    name = "f1";
    describe = "composed A1∘A2 vs strict linearizability (known failing, finding F-1)";
    default_n = 4;
    expect_failures = true;
    instantiate =
      (fun ~n ->
        let s = slot () in
        {
          setup = tas_one_shot_setup ~n ~mk:(mk_one_shot ~strict:false) s;
          check = check_strictly_linearizable "composed A1∘A2" s;
        });
  }

(* F-2 finder: Invariant 4 of the Lemma 4 proof on the bare A1 — no
   operation aborting with W may be invoked after a loser committed. *)
let f2 =
  {
    name = "f2";
    describe = "Invariant 4 on bare A1 (known failing, finding F-2)";
    default_n = 4;
    expect_failures = true;
    instantiate =
      (fun ~n ->
        let s = slot () in
        let setup sim =
          let module P = (val Scs_prims.Sim_prims.make sim) in
          let module A1 = Scs_tas.A1.Make (P) in
          let a1 = A1.create ~name:"a1" () in
          let tr : tas_trace = Trace.create ~clock:(fun () -> Sim.clock sim) () in
          s := Some tr;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                let req = Request.make pid Objects.Test_and_set in
                Trace.invoke tr ~pid req;
                match A1.apply a1 ~pid None with
                | Outcome.Commit r -> Trace.commit tr ~pid req r
                | Outcome.Abort v -> Trace.abort tr ~pid req v)
          done
        in
        let check _sim =
          let ops = Trace.operations (Trace.events (get s)) in
          let resp_seq (o : _ Trace.operation) =
            match o.Trace.outcome with
            | Trace.Committed { resp_seq; _ } | Trace.Aborted { resp_seq; _ } -> resp_seq
            | Trace.Pending -> max_int
          in
          let first_loser =
            List.fold_left
              (fun m (o : _ Trace.operation) ->
                match o.Trace.outcome with
                | Trace.Committed { resp = Objects.Loser; _ } -> min m (resp_seq o)
                | _ -> m)
              max_int ops
          in
          List.iter
            (fun (o : _ Trace.operation) ->
              match o.Trace.outcome with
              | Trace.Aborted { switch = Tas_switch.W; _ }
                when o.Trace.invoke_seq > first_loser ->
                  violation "Invariant 4 violated: W-abort invoked after a loser committed"
              | _ -> ())
            ops
        in
        { setup; check });
  }

(* Winner uniqueness + safe composability of the composed algorithm:
   must hold on every schedule (Theorem 2 territory), so any violation
   is a real regression. *)
let tas_composed =
  {
    name = "tas-composed";
    describe = "composed A1∘A2: winner uniqueness + Definition 2 interpretation";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ~n ->
        let s = slot () in
        let check _sim =
          let evs = Trace.events (get s) in
          let ops = Trace.operations evs in
          let committed, winners =
            List.fold_left
              (fun (c, w) (o : _ Trace.operation) ->
                match o.Trace.outcome with
                | Trace.Committed { resp = Objects.Winner; _ } -> (c + 1, w + 1)
                | Trace.Committed _ -> (c + 1, w)
                | _ -> (c, w))
              (0, 0) ops
          in
          if winners > 1 then violation "%d winners" winners;
          if committed = n && winners = 0 then violation "all committed, no winner";
          if committed = List.length ops then
            match Tas_interp.check_events evs with
            | Ok () -> ()
            | Error e -> violation "no Definition 2 interpretation: %s" e
        in
        { setup = tas_one_shot_setup ~n ~mk:(mk_one_shot ~strict:false) s; check });
  }

let tas_strict =
  {
    name = "tas-strict";
    describe = "strict-variant A1∘A2 vs strict linearizability (finding F-3)";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ~n ->
        let s = slot () in
        {
          setup = tas_one_shot_setup ~n ~mk:(mk_one_shot ~strict:true) s;
          check = check_strictly_linearizable "strict variant" s;
        });
  }

let tas_solo_fast =
  {
    name = "tas-solo-fast";
    describe = "Appendix B solo-fast variant vs strict linearizability";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ~n ->
        let s = slot () in
        {
          setup = tas_one_shot_setup ~n ~mk:mk_solo_fast s;
          check = check_strictly_linearizable "solo-fast variant" s;
        });
  }

(* ---- splitter --------------------------------------------------------- *)

let splitter =
  {
    name = "splitter";
    describe = "Moir–Anderson splitter: at most one Stop per era";
    default_n = 4;
    expect_failures = false;
    instantiate =
      (fun ~n ->
        let s = slot () in
        let setup sim =
          let module P = (val Scs_prims.Sim_prims.make sim) in
          let module Sp = Scs_consensus.Splitter.Make (P) in
          let sp = Sp.create ~name:"split" () in
          let results = Array.make n None in
          s := Some results;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () -> results.(pid) <- Some (Sp.split sp ~pid))
          done
        in
        let check _sim =
          let results = get s in
          let stops =
            Array.fold_left
              (fun acc r ->
                if r = Some Scs_consensus.Splitter.Stop then acc + 1 else acc)
              0 results
          in
          if stops > 1 then violation "%d processes returned Stop" stops
        in
        { setup; check });
  }

(* ---- consensus chain -------------------------------------------------- *)

let consensus_chain =
  {
    name = "consensus-chain";
    describe = "split>bakery>cas chain: agreement + validity";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ~n ->
        let s = slot () in
        let setup sim =
          let module P = (val Scs_prims.Sim_prims.make sim) in
          let module SC = Scs_consensus.Split_consensus.Make (P) in
          let module AB = Scs_consensus.Abortable_bakery.Make (P) in
          let module CC = Scs_consensus.Cas_consensus.Make (P) in
          let module CH = Scs_consensus.Chain.Make (P) in
          let inst : int Scs_consensus.Consensus_intf.t =
            CH.make ~name:"chain"
              [
                SC.instance (SC.create ~name:"chain.split" ());
                AB.instance (AB.create ~name:"chain.bakery" ~n ());
                CC.instance (CC.create ~name:"chain.cas" ());
              ]
          in
          let outcomes = Array.make n None in
          s := Some outcomes;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                outcomes.(pid) <-
                  Some (inst.Scs_consensus.Consensus_intf.run ~pid ~old:None (100 + pid)))
          done
        in
        let check _sim =
          let outcomes = get s in
          let decisions =
            Array.to_list outcomes
            |> List.filter_map (function
                 | Some (Outcome.Commit (Some d)) -> Some d
                 | _ -> None)
          in
          (match decisions with
          | [] -> ()
          | d :: rest ->
              if not (List.for_all (fun x -> x = d) rest) then
                violation "agreement violated: decisions disagree");
          (* validity vs all proposals, not just recorded ones — a
             crashed proposer's value may legitimately be decided *)
          List.iter
            (fun d -> if d < 100 || d >= 100 + n then violation "invalid decision %d" d)
            decisions
        in
        { setup; check });
  }

(* ---- speculative queue ------------------------------------------------ *)

(* The only workload whose check uses the generic (capped) Wing–Gong
   search: at n ≥ 16 the 4n-operation history exceeds the 62-op cap and
   the run is skipped, exercising the report's skip counter. *)
let queue =
  let ops_per_proc = 4 in
  {
    name = "queue";
    describe = "speculative queue (lib/futures): generic linearizability";
    default_n = 3;
    expect_failures = false;
    instantiate =
      (fun ~n ->
        let s = slot () in
        let setup sim =
          let module P = (val Scs_prims.Sim_prims.make sim) in
          let module SO = Scs_futures.Spec_object.Make (P) in
          let obj =
            SO.create ~transfer:Scs_futures.Spec_object.History ~name:"q" ~n
              ~max_requests:(8 * n * ops_per_proc) ~spec:Objects.queue
              ~state_to_requests:(fun q -> List.map (fun x -> Objects.Enqueue x) q)
              ()
          in
          let gen = Request.Gen.create () in
          let tr : (Objects.queue_req, Objects.queue_resp, unit) Trace.t =
            Trace.create ~clock:(fun () -> Sim.clock sim) ()
          in
          s := Some tr;
          for pid = 0 to n - 1 do
            Sim.spawn sim pid (fun () ->
                let h = SO.handle obj ~pid in
                for k = 1 to ops_per_proc do
                  let payload =
                    if k mod 2 = 1 then Objects.Enqueue ((100 * pid) + k)
                    else Objects.Dequeue
                  in
                  let req = Request.Gen.fresh gen payload in
                  Trace.invoke tr ~pid req;
                  let resp = SO.apply h req in
                  Trace.commit tr ~pid req resp
                done)
          done
        in
        let check _sim =
          lin_guard (fun () ->
              if not (Linearize.check_events Objects.queue (Trace.events (get s))) then
                violation "queue history not linearizable")
        in
        { setup; check });
  }

let all =
  [ f1; f2; tas_composed; tas_strict; tas_solo_fast; splitter; consensus_chain; queue ]

let find name = List.find_opt (fun w -> w.name = name) all
let names () = List.map (fun w -> w.name) all

let fuzz ?policies ?runs ?time_budget ?max_violations ?seed ?max_steps w ~n =
  let { setup; check } = w.instantiate ~n in
  Fuzz.run ?policies ?runs ?time_budget ?max_violations ?seed ?max_steps
    ~workload:w.name ~n ~setup ~check ()

type replay_outcome =
  | Violates of string  (** the recorded violation reproduces *)
  | Passes  (** replays cleanly: the check holds on this schedule *)
  | Skipped of string
  | Drifted of int  (** schedule does not replay; offending pid *)

let replay w ~n ~schedule ~crashes =
  let { setup; check } = w.instantiate ~n in
  match check (Fuzz.replay ~n ~setup ~schedule ~crashes ()) with
  | () -> Passes
  | exception Fuzz.Violation msg -> Violates msg
  | exception Fuzz.Skip msg -> Skipped msg
  | exception Policy.Replay_drift p -> Drifted p

let shrink ?max_rounds ?max_steps w ~n ~schedule ~crashes =
  let { setup; check } = w.instantiate ~n in
  Shrink.minimize ?max_rounds ?max_steps ~n ~setup ~check ~schedule ~crashes ()
