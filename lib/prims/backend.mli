(** The primitive-backend seam.

    Every simulator-driven harness (fuzzing, exploration, observability
    batches, the load harness's selfcheck) instantiates algorithms
    against a {!Prims_intf.S}; this type names which implementation to
    use so they can all select it uniformly:

    - [Sim_lin] — {!Sim_prims}: atomic (linearizable) simulated objects,
      the default;
    - [Sim_sc { lag }] — {!Sc_prims}: per-object sequentially-consistent
      registers with reads up to [lag] writes stale, RMW objects atomic;
    - [Native] — {!Native_prims}: real [Atomic]-based primitives on
      OCaml 5 domains (no simulator; {!sim_prims} rejects it). *)

type t = Sim_lin | Sim_sc of { lag : int } | Native

val default : t
(** [Sim_lin]. *)

val name : t -> string
(** Stable display/parse name: ["sim-lin"], ["sim-sc:<lag>"],
    ["native"]. [name] and {!of_string} round-trip. *)

val of_string : string -> (t, string) result
(** Accepts ["sim-lin"]/["lin"], ["sim-sc"]/["sc"] (default lag),
    ["sim-sc:<lag>"]/["sc:<lag>"], ["native"]. The error message for an
    unknown name enumerates {!valid_names}. *)

val valid_names : string list
(** Canonical backend names (["sim-sc:<lag>"] as a pattern), the single
    source for CLI/library error messages and docs. *)

val is_sim : t -> bool

val lag : t -> int option
(** The SC staleness bound, for [Sim_sc] only. *)

val sim_prims : t -> Scs_sim.Sim.t -> (module Prims_intf.S)
(** The backend's primitives over a simulator: {!Sim_prims.make} for
    [Sim_lin], {!Sc_prims.make} for [Sim_sc]. Raises [Invalid_argument]
    for [Native], which has no simulator. *)
