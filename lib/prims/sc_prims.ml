open Scs_util
open Scs_sim

let default_lag = 1

let make ?(lag = default_lag) (sim : Sim.t) : (module Prims_intf.S) =
  if lag < 0 then invalid_arg "Sc_prims.make: lag must be non-negative";
  let n = Sim.n sim in
  (module struct
    (* A register is a full write log plus one view cursor per process.
       [log] entry 0 is the creation value; [views.(p)] indexes the last
       write process [p] has observed. A read serves the *most stale*
       value the lag bound allows — [max views.(p) (length - 1 - lag)],
       i.e. at most [lag] writes behind the log head — and stores the
       index back, so each process's view of each register is monotone
       (reads never travel back in time) and contains the process's own
       writes (a write advances the writer's view to the log head).
       Those two properties make every single register's history
       sequentially consistent by construction. Logs are per-register
       and there is no order between different registers' logs, so the
       register *memory* as a whole is only per-object SC — the
       store-buffering outcome (both processes read the other's register
       stale) is reachable, which is exactly the non-compositionality
       the differential fuzzer hunts for.

       Staleness is deterministic-maximal rather than randomized: the
       adversary is the schedule alone, so recorded schedules replay and
       shrink bit-for-bit, and [lag = 0] degenerates to the atomic
       backend (reads always serve the log head). *)
    type 'a reg = { log : 'a Vec.t; views : int array; id : int; name : string }

    let make_reg ~volatile ~name v =
      let log = Vec.create () in
      Vec.push log v;
      let views = Array.make n 0 in
      let reset () =
        Vec.truncate log 1;
        Array.fill views 0 n 0
      in
      (* a volatile SC register loses its whole write log on any crash:
         survivors fall back to the creation value and, views being
         rewound too, monotonicity restarts from the wiped state *)
      let wipe = if volatile then Some reset else None in
      let id = Sim.custom_obj sim ?wipe ~reset () in
      { log; views; id; name }

    let reg ~name v = make_reg ~volatile:false ~name v
    let volatile_reg ~name v = make_reg ~volatile:true ~name v

    let read r =
      Sim.custom_op ~obj:r.id ~obj_name:r.name ~kind:Op.Read ~info:"" (fun () ->
          let pid = Sim.running_pid sim in
          let view = max r.views.(pid) (Vec.length r.log - 1 - lag) in
          r.views.(pid) <- view;
          Vec.get r.log view)

    let write r v =
      Sim.custom_op ~obj:r.id ~obj_name:r.name ~kind:Op.Write ~info:"" (fun () ->
          let pid = Sim.running_pid sim in
          Vec.push r.log v;
          r.views.(pid) <- Vec.length r.log - 1)

    (* RMW objects stay atomic — SC-ABD style: the reordering model
       applies to plain read/write registers only, consensus objects
       keep their linearizable semantics. Delegate to the simulator's
       built-in objects. *)
    type tas_obj = Sim.tas_obj

    let tas_obj ~name () = Sim.tas_obj sim ~name ()
    let test_and_set = Sim.test_and_set
    let tas_read = Sim.tas_read
    let tas_reset = Sim.tas_reset

    type fai_obj = Sim.fai_obj

    let fai_obj ~name v = Sim.fai_obj sim ~name v
    let fetch_and_inc = Sim.fetch_and_inc
    let fai_read = Sim.fai_read

    type 'a swap_obj = 'a Sim.swap_obj

    let swap_obj ~name v = Sim.swap_obj sim ~name v
    let swap = Sim.swap
    let swap_read = Sim.swap_read

    type 'a cas_obj = 'a Sim.cas_obj

    let cas_obj ~name v = Sim.cas_obj sim ~name v
    let cas_read = Sim.cas_read
    let compare_and_swap = Sim.compare_and_swap

    let pause () = Sim.pause sim
  end)
