(** The base-object interface every algorithm in this repository is written
    against.

    Algorithms are functors over {!S}, so the exact same code runs on:
    - the deterministic simulator ({!Sim_prims}), where each operation is an
      effect handled by the scheduler and counted against the paper's
      complexity metrics; and
    - real OCaml 5 multicore ({!Native_prims}), where operations map to
      [Atomic] and executions are genuinely parallel.

    The interface deliberately mirrors the paper's base objects:
    multi-writer multi-reader atomic registers (consensus number 1),
    hardware test-and-set (consensus number 2), fetch-and-increment
    (consensus number 2) and compare-and-swap (consensus number ∞). The
    consensus-power audit of experiment T6 relies on algorithms only ever
    touching objects through this interface. *)

module type S = sig
  (** {1 Atomic MWMR registers — consensus number 1} *)

  type 'a reg

  val reg : name:string -> 'a -> 'a reg
  val read : 'a reg -> 'a
  val write : 'a reg -> 'a -> unit

  val volatile_reg : name:string -> 'a -> 'a reg
  (** A register whose contents do {e not} survive crashes: under the
      simulator's crash-recovery model every crash (of any process)
      resets it to its creation value, modelling DRAM next to the
      durable (NVM-like) registers {!reg} builds. Reads and writes cost
      the same as {!reg}; only crash behaviour differs. On the native
      backend — where crashes are not simulated — this is an alias of
      {!reg}. *)

  (** {1 Hardware test-and-set — consensus number 2} *)

  type tas_obj

  val tas_obj : name:string -> unit -> tas_obj

  val test_and_set : tas_obj -> bool
  (** [true] iff the caller won (read 0, wrote 1 atomically). *)

  val tas_read : tas_obj -> bool
  val tas_reset : tas_obj -> unit

  (** {1 Fetch-and-increment — consensus number 2} *)

  type fai_obj

  val fai_obj : name:string -> int -> fai_obj
  val fetch_and_inc : fai_obj -> int
  val fai_read : fai_obj -> int

  (** {1 Swap — consensus number 2} *)

  type 'a swap_obj

  val swap_obj : name:string -> 'a -> 'a swap_obj

  val swap : 'a swap_obj -> 'a -> 'a
  (** Atomically exchange, returning the previous value. *)

  val swap_read : 'a swap_obj -> 'a

  (** {1 Compare-and-swap — consensus number ∞}

      Comparison is physical equality, as with [Atomic.compare_and_set]. *)

  type 'a cas_obj

  val cas_obj : name:string -> 'a -> 'a cas_obj
  val cas_read : 'a cas_obj -> 'a
  val compare_and_swap : 'a cas_obj -> expect:'a -> update:'a -> bool

  (** {1 Scheduling hint} *)

  val pause : unit -> unit
  (** Native: [Domain.cpu_relax]. Simulator: consume one scheduler turn. *)
end
