type 'a reg = 'a Atomic.t

let reg ~name:_ v = Atomic.make v
let volatile_reg = reg
let read = Atomic.get
let write = Atomic.set

type tas_obj = bool Atomic.t

let tas_obj ~name:_ () = Atomic.make false
let test_and_set o = not (Atomic.exchange o true)
let tas_read = Atomic.get
let tas_reset o = Atomic.set o false

type fai_obj = int Atomic.t

let fai_obj ~name:_ v = Atomic.make v
let fetch_and_inc o = Atomic.fetch_and_add o 1
let fai_read = Atomic.get

type 'a swap_obj = 'a Atomic.t

let swap_obj ~name:_ v = Atomic.make v
let swap = Atomic.exchange
let swap_read = Atomic.get

type 'a cas_obj = 'a Atomic.t

let cas_obj ~name:_ v = Atomic.make v
let cas_read = Atomic.get
let compare_and_swap o ~expect ~update = Atomic.compare_and_set o expect update

let pause () = Domain.cpu_relax ()
