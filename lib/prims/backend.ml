type t = Sim_lin | Sim_sc of { lag : int } | Native

let default = Sim_lin

let name = function
  | Sim_lin -> "sim-lin"
  | Sim_sc { lag } -> Printf.sprintf "sim-sc:%d" lag
  | Native -> "native"

let valid_names = [ "sim-lin"; "sim-sc"; "sim-sc:<lag>"; "native" ]

let of_string s =
  let lag_of prefix =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      int_of_string_opt (String.sub s pl (String.length s - pl))
    else None
  in
  match s with
  | "sim-lin" | "lin" -> Ok Sim_lin
  | "sim-sc" | "sc" -> Ok (Sim_sc { lag = Sc_prims.default_lag })
  | "native" -> Ok Native
  | _ -> (
      match (lag_of "sim-sc:", lag_of "sc:") with
      | Some lag, _ | None, Some lag ->
          if lag >= 0 then Ok (Sim_sc { lag })
          else Error (Printf.sprintf "backend %S: lag must be non-negative" s)
      | None, None ->
          Error
            (Printf.sprintf "unknown backend %S (valid backends: %s)" s
               (String.concat ", " valid_names)))

let is_sim = function Sim_lin | Sim_sc _ -> true | Native -> false
let lag = function Sim_sc { lag } -> Some lag | Sim_lin | Native -> None

let sim_prims t sim =
  match t with
  | Sim_lin -> Sim_prims.make sim
  | Sim_sc { lag } -> Sc_prims.make ~lag sim
  | Native ->
      invalid_arg
        "Backend.sim_prims: the native backend has no simulator (use Native_prims directly)"
