open Scs_sim

let make (sim : Sim.t) : (module Prims_intf.S) =
  (module struct
    type 'a reg = 'a Sim.reg

    let reg ~name v = Sim.reg sim ~name v
    let volatile_reg ~name v = Sim.reg sim ~volatile:true ~name v
    let read = Sim.read
    let write = Sim.write

    type tas_obj = Sim.tas_obj

    let tas_obj ~name () = Sim.tas_obj sim ~name ()
    let test_and_set = Sim.test_and_set
    let tas_read = Sim.tas_read
    let tas_reset = Sim.tas_reset

    type fai_obj = Sim.fai_obj

    let fai_obj ~name v = Sim.fai_obj sim ~name v
    let fetch_and_inc = Sim.fetch_and_inc
    let fai_read = Sim.fai_read

    type 'a swap_obj = 'a Sim.swap_obj

    let swap_obj ~name v = Sim.swap_obj sim ~name v
    let swap = Sim.swap
    let swap_read = Sim.swap_read

    type 'a cas_obj = 'a Sim.cas_obj

    let cas_obj ~name v = Sim.cas_obj sim ~name v
    let cas_read = Sim.cas_read
    let compare_and_swap = Sim.compare_and_swap

    let pause () = Sim.pause sim
  end)
