(** Sequentially-consistent register backend over the simulator.

    Implements {!Prims_intf.S} like {!Sim_prims}, except that plain
    registers are only {e per-object sequentially consistent} instead of
    atomic: a read may return a stale value, bounded by [lag] — it never
    lags more than [lag] writes behind the register's write log — and
    subject to per-process monotonicity (a process never observes a
    register travel backwards, and always observes its own writes). This
    is a deterministic delayed-visibility model in the spirit of
    per-process reordering implementations of sequential consistency
    (Ekström & Haridi's SC-ABD; Perrin et al.): every single register's
    history is SC by construction, but there is {e no ordering between
    different registers}, so the register memory as a whole is not SC —
    store-buffering outcomes are reachable from [lag >= 1]. RMW objects
    (TAS, CAS, FAI, swap) remain atomic, matching SC-ABD's treatment of
    consensus primitives.

    Staleness is deterministic: a read serves the {e most} stale value
    the lag bound and monotonicity allow. Nondeterminism therefore comes
    from the schedule alone — recorded schedules replay bit-for-bit and
    shrink soundly, and [lag = 0] is observationally identical to
    {!Sim_prims} (reads always serve the newest write; same object ids,
    step kinds and footprints, hence identical scheduling and verdicts).

    Registers integrate with the simulator via {!Scs_sim.Sim.custom_obj}
    /{!Scs_sim.Sim.custom_op}: operations are accounted, traced and
    footprinted like built-in ones, and pooling ({!Scs_sim.Sim.reset})
    rewinds logs and views. The partial-order-reduction contract holds:
    a read touches only the register's own log and the reading process's
    own cursor, so two reads of the same register commute. *)

val default_lag : int
(** 1 — the smallest lag that separates SC from atomic behaviour. *)

val make : ?lag:int -> Scs_sim.Sim.t -> (module Prims_intf.S)
(** [make ~lag sim] builds the backend for [sim]. [lag] (default
    {!default_lag}) bounds how many writes behind the log head a read
    may serve; [lag = 0] is the atomic semantics. Raises
    [Invalid_argument] on negative [lag]. *)
