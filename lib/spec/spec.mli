(** Sequential object types.

    The paper defines an object as a quadruple [(Q, s, I, R, Δ)] — states,
    start state, requests, responses and a sequential specification
    [Δ ⊆ Q × I × Q × R]. We represent the (deterministic) specification as
    an [apply] function together with equality, hashing and printing
    support, which is what the history machinery, the linearizability
    checker and the universal construction consume. *)

type ('q, 'i, 'r) t = {
  name : string;
  init : 'q;
  apply : 'q -> 'i -> 'q * 'r;
  equal_state : 'q -> 'q -> bool;
  equal_resp : 'r -> 'r -> bool;
  hash_state : 'q -> int;
      (** Must be consistent with [equal_state]: equal states hash
          equally. Consumed by the linearizability checker's hashed
          state memo ({!Scs_history.Linearize}); an inconsistent hash
          only costs memo misses (slower, never unsound), but an
          [equal_state] coarser than observational equivalence makes
          any memoized search unsound — see the checker's docs. *)
  show_req : 'i -> string;
  show_resp : 'r -> string;
}

val make :
  name:string ->
  init:'q ->
  apply:('q -> 'i -> 'q * 'r) ->
  ?equal_state:('q -> 'q -> bool) ->
  ?equal_resp:('r -> 'r -> bool) ->
  ?hash_state:('q -> int) ->
  ?show_req:('i -> string) ->
  ?show_resp:('r -> string) ->
  unit ->
  ('q, 'i, 'r) t
(** Equalities default to structural equality and [hash_state] to the
    matching structural [Hashtbl.hash]; printers default to ["_"].
    Supply [hash_state] alongside any custom [equal_state]. *)
