type ('q, 'i, 'r) t = {
  name : string;
  init : 'q;
  apply : 'q -> 'i -> 'q * 'r;
  equal_state : 'q -> 'q -> bool;
  equal_resp : 'r -> 'r -> bool;
  hash_state : 'q -> int;
  show_req : 'i -> string;
  show_resp : 'r -> string;
}

let make ~name ~init ~apply ?(equal_state = ( = )) ?(equal_resp = ( = ))
    ?(hash_state = Hashtbl.hash) ?(show_req = fun _ -> "_") ?(show_resp = fun _ -> "_") () =
  { name; init; apply; equal_state; equal_resp; hash_state; show_req; show_resp }
