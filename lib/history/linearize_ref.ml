(* The seed word-sized-bitmask Wing & Gong checker, kept verbatim as a
   differential oracle: test/test_linearize_diff.ml asserts the scalable
   checker (Linearize) agrees with it on random well-formed traces, and
   experiment T12 benchmarks the two against each other. Not for
   production use — hard-capped at 62 operations. *)

open Scs_spec

type ('i, 'r) comp = { c_req : 'i Request.t; c_resp : 'r; c_inv : int; c_res : int }
type 'i pend = { p_req : 'i Request.t; p_inv : int }

let split_ops ops =
  let comp = ref [] and pend = ref [] in
  List.iter
    (fun (o : _ Trace.operation) ->
      match o.Trace.outcome with
      | Trace.Committed { resp; resp_seq; _ } ->
          comp :=
            { c_req = o.Trace.op_req; c_resp = resp; c_inv = o.Trace.invoke_seq; c_res = resp_seq }
            :: !comp
      | Trace.Aborted _ | Trace.Pending ->
          pend := { p_req = o.Trace.op_req; p_inv = o.Trace.invoke_seq } :: !pend)
    ops;
  (Array.of_list (List.rev !comp), Array.of_list (List.rev !pend))

let max_operations = 62

exception Capacity_exceeded of int

let check_operations (spec : _ Spec.t) ops =
  let comp, pend = split_ops ops in
  let nc = Array.length comp in
  let np = Array.length pend in
  let n = nc + np in
  if n > max_operations then raise (Capacity_exceeded n);
  let all_completed_mask = if nc = 0 then 0 else (1 lsl nc) - 1 in
  let inv i = if i < nc then comp.(i).c_inv else pend.(i - nc).p_inv in
  (* Memo table: mask -> list of object states already explored there. *)
  let memo : (int, 'q list) Hashtbl.t = Hashtbl.create 256 in
  let seen mask state =
    let states = Option.value ~default:[] (Hashtbl.find_opt memo mask) in
    if List.exists (fun s -> spec.Spec.equal_state s state) states then true
    else begin
      Hashtbl.replace memo mask (state :: states);
      false
    end
  in
  let rec search mask state =
    if mask land all_completed_mask = all_completed_mask then true
    else if seen mask state then false
    else begin
      (* An operation may be linearized next iff no unlinearized completed
         operation responded before it was invoked. *)
      let min_res = ref max_int in
      for i = 0 to nc - 1 do
        if mask land (1 lsl i) = 0 && comp.(i).c_res < !min_res then min_res := comp.(i).c_res
      done;
      let try_op i =
        mask land (1 lsl i) = 0
        && inv i < !min_res
        &&
        if i < nc then begin
          let state', resp = spec.Spec.apply state (Request.payload comp.(i).c_req) in
          spec.Spec.equal_resp resp comp.(i).c_resp && search (mask lor (1 lsl i)) state'
        end
        else begin
          let state', _ = spec.Spec.apply state (Request.payload pend.(i - nc).p_req) in
          search (mask lor (1 lsl i)) state'
        end
      in
      let rec any i = i < n && (try_op i || any (i + 1)) in
      any 0
    end
  in
  search 0 spec.Spec.init

let check_events spec evs = check_operations spec (Trace.operations evs)
