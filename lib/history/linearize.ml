open Scs_util
open Scs_spec

type mode = Legacy | Scalable

let max_operations = 62

exception Capacity_exceeded of int
exception Search_budget_exceeded of int

type ('i, 'r) comp = { c_req : 'i Request.t; c_resp : 'r; c_inv : int; c_res : int }
type 'i pend = { p_req : 'i Request.t; p_inv : int }

(* Completed operations sorted by response time (minimal-response-first
   candidate order, Lowe's just-in-time linearization), pending ones by
   invocation time (so the candidate scan can stop at the first
   not-yet-invocable pending op). Sorting is stable w.r.t. verdicts: the
   search is exhaustive, only its branching order changes. *)
let split_ops ops =
  let comp = ref [] and pend = ref [] in
  List.iter
    (fun (o : _ Trace.operation) ->
      match o.Trace.outcome with
      | Trace.Committed { resp; resp_seq; _ } ->
          comp :=
            { c_req = o.Trace.op_req; c_resp = resp; c_inv = o.Trace.invoke_seq; c_res = resp_seq }
            :: !comp
      | Trace.Aborted _ | Trace.Pending ->
          pend := { p_req = o.Trace.op_req; p_inv = o.Trace.invoke_seq } :: !pend)
    ops;
  let comp = Array.of_list !comp and pend = Array.of_list !pend in
  Array.sort (fun a b -> compare a.c_res b.c_res) comp;
  Array.sort (fun a b -> compare a.p_inv b.p_inv) pend;
  (comp, pend)

let check_operations ?(mode = Scalable) ?budget (spec : _ Spec.t) ops =
  let comp, pend = split_ops ops in
  let nc = Array.length comp in
  let np = Array.length pend in
  let n = nc + np in
  (match mode with
  | Legacy when n > max_operations -> raise (Capacity_exceeded n)
  | Legacy | Scalable -> ());
  if nc = 0 then true
    (* no completed operation constrains anything: pending/aborted ops may
       all be dropped *)
  else begin
    (* The linearized set, as a growable bitvector: completed op [i] is bit
       [i], pending op [j] is bit [nc + j]. Mutated along the DFS path and
       restored on backtrack; memo keys hold immutable copies. *)
    let mask = Bitset.create ~bits:n in
    (* Hashed state memo: (mask, object state) pairs already explored,
       bucketed by combined content hash, membership decided by exact
       [Bitset.equal] + [spec.equal_state] (a hash-only memo would be
       unsound under collisions). Sound because the spec is deterministic:
       (mask, state) fully determines the remaining search, provided
       [equal_state] never conflates observationally distinct states — see
       the .mli invariant. *)
    let memo = Hashtbl.create 1024 in
    let seen state =
      let h = (Bitset.hash mask * 0x9E3779B1) lxor spec.Spec.hash_state state in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt memo h) in
      if
        List.exists
          (fun (m, s) -> Bitset.equal m mask && spec.Spec.equal_state s state)
          bucket
      then true
      else begin
        Hashtbl.replace memo h ((Bitset.copy mask, state) :: bucket);
        false
      end
    in
    (* The search is exponential in the concurrency width of the history
       (not its length); [budget] caps the number of search nodes so a
       caller facing adversarial width can give up instead of hanging. *)
    let nodes = ref 0 in
    let spend () =
      match budget with
      | Some b ->
          incr nodes;
          if !nodes > b then raise (Search_budget_exceeded b)
      | None -> ()
    in
    (* [done_c] counts linearized completed ops; [first0] is a lower bound
       for the first unlinearized completed index (comp is res-sorted, so
       that op carries the minimal outstanding response time). *)
    let rec search state done_c first0 =
      spend ();
      if done_c = nc then true
      else if seen state then false
      else begin
        let first = ref first0 in
        while Bitset.test mask !first do
          incr first
        done;
        let first = !first in
        (* An operation may be linearized next iff no unlinearized
           completed operation responded before it was invoked. *)
        let min_res = comp.(first).c_res in
        let rec try_comp i =
          i < nc
          && ((not (Bitset.test mask i))
             && comp.(i).c_inv < min_res
             && begin
                  let state', resp =
                    spec.Spec.apply state (Request.payload comp.(i).c_req)
                  in
                  spec.Spec.equal_resp resp comp.(i).c_resp
                  && begin
                       Bitset.set mask i;
                       let r = search state' (done_c + 1) first in
                       Bitset.clear mask i;
                       r
                     end
                end
             || try_comp (i + 1))
        in
        let rec try_pend j =
          j < np
          && pend.(j).p_inv < min_res
          && (((not (Bitset.test mask (nc + j)))
              && begin
                   let state', _ =
                     spec.Spec.apply state (Request.payload pend.(j).p_req)
                   in
                   Bitset.set mask (nc + j);
                   let r = search state' done_c first in
                   Bitset.clear mask (nc + j);
                   r
                 end)
             || try_pend (j + 1))
        in
        try_comp first || try_pend 0
      end
    in
    search spec.Spec.init 0 0
  end

let check_events ?mode ?budget spec evs =
  check_operations ?mode ?budget spec (Trace.operations evs)

(* ---- sequential consistency ------------------------------------------- *)

(* SC membership drops linearizability's real-time constraint: a witness
   is any total order of the operations that respects each process's
   program order and the sequential spec. The search is therefore a
   DFS over merges of the per-process program-order sequences — at each
   node the candidates are each process's next unconsumed operation —
   with the same completed/pending treatment as [check_operations]
   (a committed op must reproduce its response; a pending/aborted op may
   take effect or be dropped, either way consuming its program-order
   slot). Memoizing on (consumed set, state) stays sound: the consumed
   set is prefix-closed per process, so it determines every process's
   position, and the spec is deterministic.

   Only meaningful on well-formed histories (each process's operations
   sequential, i.e. program order is total per pid); on ill-formed input
   the checker still terminates but overlapping same-pid operations are
   ordered by invocation time, which is an arbitrary strengthening. *)
let check_sc_operations ?(mode = Scalable) ?budget (spec : _ Spec.t) ops =
  let n_all = List.length ops in
  (match mode with
  | Legacy when n_all > max_operations -> raise (Capacity_exceeded n_all)
  | Legacy | Scalable -> ());
  (* per-process program-order sequences *)
  let by_pid = Hashtbl.create 8 in
  List.iter
    (fun (o : _ Trace.operation) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_pid o.Trace.op_pid) in
      Hashtbl.replace by_pid o.Trace.op_pid (o :: cur))
    ops;
  let procs =
    Hashtbl.fold (fun pid l acc -> (pid, l) :: acc) by_pid []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> List.map (fun (_, l) ->
           let a = Array.of_list l in
           Array.sort
             (fun (a : _ Trace.operation) b -> compare a.Trace.invoke_seq b.Trace.invoke_seq)
             a;
           a)
    |> Array.of_list
  in
  let np = Array.length procs in
  let base = Array.make (np + 1) 0 in
  for p = 0 to np - 1 do
    base.(p + 1) <- base.(p) + Array.length procs.(p)
  done;
  let nc =
    List.fold_left
      (fun acc (o : _ Trace.operation) ->
        match o.Trace.outcome with Trace.Committed _ -> acc + 1 | _ -> acc)
      0 ops
  in
  if nc = 0 then true
  else begin
    (* consumed set: bit [base.(p) + i] is process p's i-th operation *)
    let mask = Bitset.create ~bits:n_all in
    let pos = Array.make np 0 in
    let memo = Hashtbl.create 1024 in
    let seen state =
      let h = (Bitset.hash mask * 0x9E3779B1) lxor spec.Spec.hash_state state in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt memo h) in
      if
        List.exists (fun (m, s) -> Bitset.equal m mask && spec.Spec.equal_state s state) bucket
      then true
      else begin
        Hashtbl.replace memo h ((Bitset.copy mask, state) :: bucket);
        false
      end
    in
    let nodes = ref 0 in
    let spend () =
      match budget with
      | Some b ->
          incr nodes;
          if !nodes > b then raise (Search_budget_exceeded b)
      | None -> ()
    in
    let rec search state done_c =
      spend ();
      if done_c = nc then true
      else if seen state then false
      else begin
        let rec try_proc p =
          p < np
          && ((let i = pos.(p) in
               i < Array.length procs.(p)
               && begin
                    let (o : _ Trace.operation) = procs.(p).(i) in
                    let bit = base.(p) + i in
                    let payload = Request.payload o.Trace.op_req in
                    let advance done_c' state' =
                      pos.(p) <- i + 1;
                      Bitset.set mask bit;
                      let r = search state' done_c' in
                      Bitset.clear mask bit;
                      pos.(p) <- i;
                      r
                    in
                    match o.Trace.outcome with
                    | Trace.Committed { resp; _ } ->
                        let state', resp' = spec.Spec.apply state payload in
                        spec.Spec.equal_resp resp' resp && advance (done_c + 1) state'
                    | Trace.Aborted _ | Trace.Pending ->
                        (* may have taken effect, or may be dropped *)
                        (let state', _ = spec.Spec.apply state payload in
                         advance done_c state')
                        || advance done_c state
                  end)
              || try_proc (p + 1))
        in
        try_proc 0
      end
    in
    search spec.Spec.init 0
  end

let check_sc_events ?mode ?budget spec evs =
  check_sc_operations ?mode ?budget spec (Trace.operations evs)

(* ---- compositional front-end ------------------------------------------ *)

let partition ~key ops =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun op ->
      let k = key op in
      match Hashtbl.find_opt tbl k with
      | Some part -> part := op :: !part
      | None ->
          Hashtbl.add tbl k (ref [ op ]);
          order := k :: !order)
    ops;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let check_partitioned ?mode ?budget ~key ~spec ops =
  let parts =
    List.map (fun (k, sub) -> (List.length sub, k, sub)) (partition ~key ops)
  in
  (* cheapest-first: small subhistories refute (or clear) fast, so a
     non-linearizable cheap partition short-circuits the expensive ones *)
  let parts = List.sort (fun (la, _, _) (lb, _, _) -> compare la lb) parts in
  List.for_all (fun (_, k, sub) -> check_operations ?mode ?budget (spec k) sub) parts
