open Scs_util
open Scs_spec

type ('i, 'r, 'v) event =
  | Invoke of { seq : int; ts : int; pid : int; req : 'i Request.t }
  | Init of { seq : int; ts : int; pid : int; req : 'i Request.t; switch : 'v }
  | Commit of { seq : int; ts : int; pid : int; req : 'i Request.t; resp : 'r }
  | Abort of { seq : int; ts : int; pid : int; req : 'i Request.t; switch : 'v }
  | Recover of { seq : int; ts : int; pid : int; req : 'i Request.t }

let event_seq = function
  | Invoke { seq; _ } | Init { seq; _ } | Commit { seq; _ } | Abort { seq; _ }
  | Recover { seq; _ } ->
      seq

let event_pid = function
  | Invoke { pid; _ } | Init { pid; _ } | Commit { pid; _ } | Abort { pid; _ }
  | Recover { pid; _ } ->
      pid

let event_req = function
  | Invoke { req; _ } | Init { req; _ } | Commit { req; _ } | Abort { req; _ }
  | Recover { req; _ } ->
      req

type ('i, 'r, 'v) t = { clock : unit -> int; events : ('i, 'r, 'v) event Vec.t }

let create ?clock () =
  let ev = Vec.create () in
  let clock = match clock with Some c -> c | None -> fun () -> Vec.length ev in
  { clock; events = ev }

let next t = (Vec.length t.events, t.clock ())

let invoke t ~pid req =
  let seq, ts = next t in
  Vec.push t.events (Invoke { seq; ts; pid; req })

let init t ~pid req switch =
  let seq, ts = next t in
  Vec.push t.events (Init { seq; ts; pid; req; switch })

let commit t ~pid req resp =
  let seq, ts = next t in
  Vec.push t.events (Commit { seq; ts; pid; req; resp })

let abort t ~pid req switch =
  let seq, ts = next t in
  Vec.push t.events (Abort { seq; ts; pid; req; switch })

let recover t ~pid req =
  let seq, ts = next t in
  Vec.push t.events (Recover { seq; ts; pid; req })

let events t = Vec.to_array t.events
let length t = Vec.length t.events

type ('i, 'r, 'v) operation = {
  op_pid : int;
  op_req : 'i Request.t;
  invoke_seq : int;
  invoke_ts : int;
  op_init : 'v option;
  op_recoveries : int;
  outcome : ('i, 'r, 'v) outcome;
}

and ('i, 'r, 'v) outcome =
  | Committed of { resp : 'r; resp_seq : int; resp_ts : int }
  | Aborted of { switch : 'v; resp_seq : int; resp_ts : int }
  | Pending

let operations evs =
  let tbl = Hashtbl.create 32 in
  let order = Vec.create () in
  let add_invocation ~seq ~ts ~pid ~req ~init_v =
    let id = Request.id req in
    if Hashtbl.mem tbl id then
      invalid_arg (Printf.sprintf "Trace.operations: request %d invoked twice" id);
    Hashtbl.replace tbl id
      {
        op_pid = pid;
        op_req = req;
        invoke_seq = seq;
        invoke_ts = ts;
        op_init = init_v;
        op_recoveries = 0;
        outcome = Pending;
      };
    Vec.push order id
  in
  (* a Recover is a re-invocation of a pending request, not a fresh
     operation: the operation keeps its original invocation point (it
     was in flight across the crash) and just counts the recovery *)
  let recover_invocation ~req =
    let id = Request.id req in
    match Hashtbl.find_opt tbl id with
    | None ->
        invalid_arg
          (Printf.sprintf "Trace.operations: recovery for uninvoked request %d" id)
    | Some op -> (
        match op.outcome with
        | Pending ->
            Hashtbl.replace tbl id { op with op_recoveries = op.op_recoveries + 1 }
        | _ ->
            invalid_arg
              (Printf.sprintf "Trace.operations: recovery after response of request %d" id))
  in
  let respond ~req outcome =
    let id = Request.id req in
    match Hashtbl.find_opt tbl id with
    | None ->
        invalid_arg (Printf.sprintf "Trace.operations: response for uninvoked request %d" id)
    | Some op -> (
        match op.outcome with
        | Pending -> Hashtbl.replace tbl id { op with outcome }
        | _ ->
            invalid_arg (Printf.sprintf "Trace.operations: request %d responded twice" id))
  in
  Array.iter
    (fun ev ->
      match ev with
      | Invoke { seq; ts; pid; req } -> add_invocation ~seq ~ts ~pid ~req ~init_v:None
      | Init { seq; ts; pid; req; switch } ->
          add_invocation ~seq ~ts ~pid ~req ~init_v:(Some switch)
      | Commit { seq; ts; req; resp; _ } ->
          respond ~req (Committed { resp; resp_seq = seq; resp_ts = ts })
      | Abort { seq; ts; req; switch; _ } ->
          respond ~req (Aborted { switch; resp_seq = seq; resp_ts = ts })
      | Recover { req; _ } -> recover_invocation ~req)
    evs;
  List.map (fun id -> Hashtbl.find tbl id) (Vec.to_list order)

let committed ops =
  List.filter (fun o -> match o.outcome with Committed _ -> true | _ -> false) ops

let aborted ops = List.filter (fun o -> match o.outcome with Aborted _ -> true | _ -> false) ops
let pending ops = List.filter (fun o -> match o.outcome with Pending -> true | _ -> false) ops
