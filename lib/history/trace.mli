(** High-level operation traces.

    A trace is the real-time sequence of invocation, init, commit and abort
    events observed at the boundary of an implementation (Section 3 of the
    paper). Events carry two notions of time:
    - their position in the trace ([seq], assigned by the recorder), which
      defines the real-time precedence order used by the linearizability
      and Abstract checkers, and
    - the simulator's memory-step clock ([ts]), used by the contention
      detectors.

    ['v] is the type of switch values — the information an aborted
    operation hands to whatever replaces it, the central currency of the
    paper's composition theorems (Theorems 1–2): [Abort] events carry
    the switch value out, [Init] events carry one in.

    Costs: recording is O(1) amortised per event ({!Scs_util.Vec} push);
    {!operations} is a single O(events) pass with a hashtable keyed by
    request id. The trace is the input to every checker in this library
    (linearizability, abstractness, composition laws); for step-level
    accounting use {!Scs_sim.Mem_event} / {!Scs_obs.Obs} instead —
    this trace deliberately records only the operation boundary. *)

open Scs_spec

type ('i, 'r, 'v) event =
  | Invoke of { seq : int; ts : int; pid : int; req : 'i Request.t }
  | Init of { seq : int; ts : int; pid : int; req : 'i Request.t; switch : 'v }
      (** an invocation carrying a switch value for module initialisation *)
  | Commit of { seq : int; ts : int; pid : int; req : 'i Request.t; resp : 'r }
  | Abort of { seq : int; ts : int; pid : int; req : 'i Request.t; switch : 'v }
  | Recover of { seq : int; ts : int; pid : int; req : 'i Request.t }
      (** the process crashed while the request was in flight and its
          recovery code re-entered the operation: a {e re-invocation} of
          the same request, not a fresh operation — see {!operations} *)

val event_seq : ('i, 'r, 'v) event -> int
val event_pid : ('i, 'r, 'v) event -> int
val event_req : ('i, 'r, 'v) event -> 'i Request.t

(** {1 Recording} *)

type ('i, 'r, 'v) t

val create : ?clock:(unit -> int) -> unit -> ('i, 'r, 'v) t
(** [clock] supplies the logical timestamp of each event (default: the
    event's own sequence number). *)

val invoke : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> unit
(** Record the start of an operation. O(1) amortised. *)

val init : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> 'v -> unit
(** Like {!invoke}, but the operation inherits [switch] from a
    predecessor's abort (the paper's [init(w)] entry point). *)

val commit : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> 'r -> unit
(** Record a committed response. *)

val abort : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> 'v -> unit
(** Record an aborted response carrying its switch value. *)

val recover : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> unit
(** Record a crash-recovery re-entry into a pending request. Must fall
    strictly between the request's invocation and its response —
    {!operations} rejects anything else. *)

val events : ('i, 'r, 'v) t -> ('i, 'r, 'v) event array
(** Snapshot of the recorded events in [seq] order. O(events). *)

val length : ('i, 'r, 'v) t -> int

(** {1 Derived operation view} *)

type ('i, 'r, 'v) operation = {
  op_pid : int;
  op_req : 'i Request.t;
  invoke_seq : int;
  invoke_ts : int;
  op_init : 'v option;  (** switch value if invoked via [init] *)
  op_recoveries : int;
      (** number of [Recover] re-invocations folded into this operation
          (0 for a crash-free operation) *)
  outcome : ('i, 'r, 'v) outcome;
}

and ('i, 'r, 'v) outcome =
  | Committed of { resp : 'r; resp_seq : int; resp_ts : int }
  | Aborted of { switch : 'v; resp_seq : int; resp_ts : int }
  | Pending  (** invoked, never responded (e.g. crashed) *)

val operations : ('i, 'r, 'v) event array -> ('i, 'r, 'v) operation list
(** Pair invocations with their responses (matched by request id). A
    [Recover] event is folded into its request's single operation as a
    re-invocation: the operation keeps its original [invoke_seq] (it was
    in flight across the crash, so its real-time interval spans original
    invocation to final response — the checkers need no special case)
    and [op_recoveries] counts the re-entries. Raises [Invalid_argument]
    on malformed traces (response without invocation, duplicate
    invocation of one request id, recovery of an uninvoked or
    already-responded request, ...). *)

val committed : ('i, 'r, 'v) operation list -> ('i, 'r, 'v) operation list
val aborted : ('i, 'r, 'v) operation list -> ('i, 'r, 'v) operation list
val pending : ('i, 'r, 'v) operation list -> ('i, 'r, 'v) operation list
