(** Generic linearizability checking (Wing & Gong / Herlihy & Wing),
    scalable edition.

    Given a sequential specification and a real-time trace of operations,
    decide whether the committed responses can be explained by some
    sequential execution that respects real-time precedence. Pending
    operations (invoked, never responded — e.g. crashed processes) may be
    linearized with any response or dropped; aborted operations are treated
    as pending, because an aborted operation of a safely composable module
    may or may not have taken effect (Section 5).

    The engine is a depth-first search over the set of already-linearized
    operations with three structural accelerators over the seed
    implementation (kept as {!Linearize_ref} for differential testing):

    - the linearized set is a growable {!Scs_util.Bitset} instead of a
      word-sized [int] bitmask, so there is no 62-operation capacity wall
      in the default {!Scalable} mode;
    - candidates are tried minimal-response-first (Lowe's just-in-time
      linearization): completed operations are sorted by response time, so
      the most constrained operation is linearized eagerly, the earliest
      outstanding response is found in O(1), and the pending-candidate
      scan stops at the first not-yet-invocable one;
    - visited [(linearized set, object state)] pairs are memoized in a
      table hashed on both components ({!Bitset.hash} combined with
      [Spec.hash_state]) with exact-equality buckets, replacing the seed's
      per-mask linear scan over states.

    {2 Memo soundness invariant}

    Memoizing on [(linearized set, state)] is sound because the spec is
    deterministic: that pair fully determines the remaining search. It
    additionally requires [Spec.equal_state] to be a congruence — equal
    states must have identical future behaviour under [apply]. A coarser
    equality (conflating observationally distinct states) makes the memo
    return [false] for a state whose twin was refuted, producing false
    negatives; test/test_history.ml pins a concrete instance. Hash
    quality, by contrast, is only a performance concern: membership is
    always decided by exact [Bitset.equal] + [equal_state], so a colliding
    (even constant) [hash_state] cannot change verdicts.

    The search remains exponential in the worst case; the memo and the
    response-order heuristic make realistic traces (hundreds to thousands
    of operations of bounded concurrency) check in near-linear time
    (EXPERIMENTS.md T12). *)

open Scs_spec

type mode =
  | Legacy
      (** Seed-compatible capacity semantics: raises {!Capacity_exceeded}
          past {!max_operations} operations (the historical word-sized
          bitmask limit). The algorithm is the new one either way — only
          the cap is enforced. *)
  | Scalable  (** No operation cap. The default. *)

val max_operations : int
(** 62 — the {!Legacy} capacity, kept for compatibility with callers that
    gate on history size. {!Scalable} mode ignores it. *)

exception Capacity_exceeded of int
(** Raised (with the offending operation count) by {!Legacy}-mode checks
    when a trace exceeds {!max_operations}. Never raised in {!Scalable}
    mode. *)

exception Search_budget_exceeded of int
(** Raised (with the exhausted budget) when a [?budget]-bounded check
    visits more search nodes than allowed. The search is exponential in
    the {e concurrency width} of the history — the number of overlapping
    operations — not its length; a budget lets batch callers (fuzzing,
    CI) give up on adversarially wide histories instead of hanging.
    Exceeding the budget carries no verdict: the history may or may not
    be linearizable. *)

val check_operations :
  ?mode:mode ->
  ?budget:int ->
  ('q, 'i, 'r) Spec.t ->
  ('i, 'r, 'v) Trace.operation list ->
  bool
(** [mode] defaults to {!Scalable}; [budget], if given, bounds the number
    of search nodes (see {!Search_budget_exceeded}). *)

val check_events :
  ?mode:mode ->
  ?budget:int ->
  ('q, 'i, 'r) Spec.t ->
  ('i, 'r, 'v) Trace.event array ->
  bool
(** [check_operations] composed with {!Trace.operations}. *)

(** {2 Sequential consistency}

    Sequential consistency (Lamport) keeps linearizability's two other
    ingredients — a single total order explaining all responses against
    the sequential spec, with each process's own operations in program
    order — but drops the real-time constraint: an operation may take
    effect before an operation that finished earlier on another process.
    Every linearizable history is therefore SC, not conversely (a stale
    read after a remote completed write is SC but not linearizable), and
    unlike linearizability SC is {e not} compositional: per-object SC
    subhistories need not interleave into one SC history over the whole
    memory (Perrin et al., the store-buffering shape being the minimal
    witness — test/test_sc.ml pins it). The checkers below decide {e
    membership} for one history against one spec; they deliberately come
    without a [check_partitioned] analogue, because splitting by object
    is unsound for SC. *)

val check_sc_operations :
  ?mode:mode ->
  ?budget:int ->
  ('q, 'i, 'r) Spec.t ->
  ('i, 'r, 'v) Trace.operation list ->
  bool
(** [check_sc_operations spec ops] — is the history sequentially
    consistent w.r.t. [spec]? Committed operations must reproduce their
    responses; pending/aborted operations may take effect or be dropped,
    as in {!check_operations}. The search merges the per-process
    program-order sequences under the same bitset-memoized DFS engine
    (memo key: consumed set × spec state, sound because the consumed
    set is prefix-closed per process); [mode] and [budget] behave as in
    {!check_operations}. Requires a well-formed history: each process's
    operations must be sequential (overlapping same-pid operations are
    ordered by invocation time, an arbitrary strengthening).

    One deliberate asymmetry with {!check_operations}: a pending or
    aborted operation's effect, if it takes one, is pinned to its
    program-order slot here, whereas the linearizability checker — which
    orders by real time only — lets an unresponded operation float past
    {e later operations of the same process}. A process that continues
    after an abort can therefore be linearizable yet not SC under these
    definitions; on histories whose pending/aborted operations are
    process-final (crashed processes, the common case), linearizability
    implies SC, and test/test_linearize_diff.ml checks the implication
    property on exactly that class. *)

val check_sc_events :
  ?mode:mode ->
  ?budget:int ->
  ('q, 'i, 'r) Spec.t ->
  ('i, 'r, 'v) Trace.event array ->
  bool
(** [check_sc_operations] composed with {!Trace.operations}. *)

(** {2 Compositional checking}

    Linearizability is compositional (Herlihy & Wing; constructive proof
    in Lin, arXiv:1412.8324): a history over multiple objects is
    linearizable iff each per-object subhistory is linearizable against
    its own specification. {!check_partitioned} exploits this: it splits a
    trace by an object key and checks each subhistory independently —
    turning one search over [n] operations into many searches over small
    fragments, which is exponentially cheaper in the worst case and
    embarrassingly parallel.

    Splitting is sound exactly when the partitions are genuinely
    independent objects:

    - [key] must be a function of the operation alone (each operation
      touches exactly one object) and must name the {e true} object even
      for [Pending] operations: a pending op may still have taken effect,
      and misplacing it in another partition can strand operations whose
      responses it explains — a false violation (pinned by the partition-
      key hazard test in test/test_history.ml, found live by the fuzzer's
      crash-injecting long-lived TAS workload); and
    - the correctness criterion must be the {e product} of the per-object
      specifications — no cross-object constraint may relate the
      partitions' states (a product spec factors; a spec like "resettable
      TAS where reset also clears a side register in another partition"
      does not).

    Under those conditions [check_partitioned] agrees with a monolithic
    {!check_operations} against the product specification
    (test/test_linearize_diff.ml verifies the equivalence on random
    two-register traces). Real-time order {e between} objects needs no
    check: per-object linearizations always interleave into a global one
    (the compositionality theorem). *)

val check_partitioned :
  ?mode:mode ->
  ?budget:int ->
  key:(('i, 'r, 'v) Trace.operation -> int) ->
  spec:(int -> ('q, 'i, 'r) Spec.t) ->
  ('i, 'r, 'v) Trace.operation list ->
  bool
(** [check_partitioned ~key ~spec ops] partitions [ops] by [key] and
    checks each partition [k] against [spec k], cheapest (fewest
    operations) first, failing fast on the first non-linearizable
    partition. In {!Legacy} mode the 62-operation cap applies to each
    partition separately, as does [budget]. *)
