(** Generic linearizability checking (Wing & Gong / Herlihy & Wing).

    Given a sequential specification and a real-time trace of operations,
    decide whether the committed responses can be explained by some
    sequential execution that respects real-time precedence. Pending
    operations (invoked, never responded — e.g. crashed processes) may be
    linearized with any response or dropped; aborted operations are treated
    as pending, because an aborted operation of a safely composable module
    may or may not have taken effect (Section 5).

    The search is exponential in the worst case and memoized on
    (linearized-set, object state); it is intended for the checker-sized
    traces produced by the test suite (≤ 62 operations). *)

open Scs_spec

val max_operations : int
(** Capacity of the bitmask search: 62 operations (the linearized set is
    a word-sized bitmask). *)

exception Capacity_exceeded of int
(** Raised (with the offending operation count) when a trace exceeds
    {!max_operations}. Fuzzing harnesses catch this and count the run as
    skipped instead of dying mid-batch. *)

val check_operations : ('q, 'i, 'r) Spec.t -> ('i, 'r, 'v) Trace.operation list -> bool
(** Raises {!Capacity_exceeded} beyond {!max_operations} operations. *)

val check_events : ('q, 'i, 'r) Spec.t -> ('i, 'r, 'v) Trace.event array -> bool
(** [check_operations] composed with {!Trace.operations}. *)
