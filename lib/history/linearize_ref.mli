(** The seed bitmask linearizability checker, kept as a differential
    oracle.

    This is the pre-rewrite Wing & Gong search over a word-sized [int]
    bitmask with a linear-scan state memo, verbatim. It exists only so
    that the rewritten {!Linearize} can be cross-validated against it
    (test/test_linearize_diff.ml, 10k+ random traces) and benchmarked
    old-vs-new (EXPERIMENTS.md T12). Do not use it in new code: it is
    hard-capped at {!max_operations} = 62 operations and slower on
    everything nontrivial. *)

open Scs_spec

val max_operations : int
(** 62 — the linearized set is a word-sized bitmask. *)

exception Capacity_exceeded of int
(** Raised (with the offending operation count) past {!max_operations}. *)

val check_operations : ('q, 'i, 'r) Spec.t -> ('i, 'r, 'v) Trace.operation list -> bool
(** Raises {!Capacity_exceeded} beyond {!max_operations} operations. *)

val check_events : ('q, 'i, 'r) Spec.t -> ('i, 'r, 'v) Trace.event array -> bool
(** [check_operations] composed with {!Trace.operations}. *)
