open Scs_spec
open Scs_history

type tas_op = (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.operation
type tas_event = (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let resp_seq (o : tas_op) =
  match o.Trace.outcome with
  | Trace.Committed { resp_seq; _ } | Trace.Aborted { resp_seq; _ } -> resp_seq
  | Trace.Pending -> max_int

let by_resp_seq ops = List.sort (fun a b -> compare (resp_seq a) (resp_seq b)) ops

let committed_winners ops =
  List.filter
    (fun (o : tas_op) ->
      match o.Trace.outcome with
      | Trace.Committed { resp = Objects.Winner; _ } -> true
      | _ -> false)
    ops

let committed_losers ops =
  List.filter
    (fun (o : tas_op) ->
      match o.Trace.outcome with
      | Trace.Committed { resp = Objects.Loser; _ } -> true
      | _ -> false)
    ops

let aborted_with v ops =
  List.filter
    (fun (o : tas_op) ->
      match o.Trace.outcome with
      | Trace.Aborted { switch; _ } -> Tas_switch.equal switch v
      | _ -> false)
    ops

let pending_ops ops = List.filter (fun (o : tas_op) -> o.Trace.outcome = Trace.Pending) ops
let reqs ops = List.map (fun (o : tas_op) -> o.Trace.op_req) ops

(* A request id guaranteed fresh for this trace: stands in for a winner
   that lives in another module's trace (e.g. everyone entered this module
   with switch value L because the object was won elsewhere). *)
let external_winner ops tokens =
  let max_id =
    List.fold_left
      (fun m (o : tas_op) -> max m (Request.id o.Trace.op_req))
      (List.fold_left
         (fun m (t : _ Tas_constraint.token) -> max m (Request.id t.Tas_constraint.t_req))
         0 tokens)
      ops
  in
  Request.make (max_id + 1) Objects.Test_and_set

(* The candidate-winner set A of the Lemma 4 proof, as requests: the
   committed winner and the W-aborts; when both are absent but losers
   committed, a pending request invoked before the first loser's response
   stands in (Invariant 3), and failing that — only possible when the
   object was won in a previous module — a fresh external request does. *)
let candidate_set ~init_tokens ops =
  let winners = committed_winners ops in
  let w_aborts = by_resp_seq (aborted_with Tas_switch.W ops) in
  match winners @ w_aborts with
  | _ :: _ as a -> Ok (reqs a)
  | [] -> (
      match by_resp_seq (committed_losers ops) with
      | [] -> Ok []
      | first :: _ -> (
          let cutoff = resp_seq first in
          match
            List.find_opt (fun (p : tas_op) -> p.Trace.invoke_seq < cutoff) (pending_ops ops)
          with
          | Some p -> Ok [ p.Trace.op_req ]
          | None ->
              if init_tokens <> [] then Ok [ external_winner ops init_tokens ]
              else
                fail
                  "no candidate winner: losers committed but no winner, W-abort or pending \
                   operation precedes the first loser (Invariant 3 violated)"))

(* The Lemma 4 history A ++ B ++ C for a class; with non-empty
   [init_tokens] it may fabricate an external head. *)
let build_full_history ~cls ~init_tokens ops =
  let* a = candidate_set ~init_tokens ops in
  let b = reqs (by_resp_seq (committed_losers ops)) in
  let c = reqs (by_resp_seq (aborted_with Tas_switch.L ops)) in
  match cls with
  | Tas_constraint.No_aborts -> Ok (a @ b)
  | Tas_constraint.Free_head -> (
      match a with
      | [] -> fail "Free_head class but no candidate winner to head the history"
      | _ -> Ok (a @ b @ c))
  | Tas_constraint.Headed_by r -> (
      let rid = Request.id r in
      let heads, rest = List.partition (fun q -> Request.id q = rid) a in
      match heads with
      | [ _ ] -> Ok ((r :: rest) @ b @ c)
      | [] -> fail "class head request %d is not in the candidate set" rid
      | _ -> fail "class head request %d appears twice" rid)

(* The shortest prefix of [h] containing the request [rid]. *)
let prefix_up_to h rid =
  let rec go acc = function
    | [] -> None
    | r :: rest ->
        let acc = r :: acc in
        if Request.id r = rid then Some (List.rev acc) else go acc rest
  in
  go [] h

(* φ(commit of m): the shortest prefix of [hfull] that both contains [m]
   and extends [hinit] (Init Ordering forces commit histories to extend
   the init history). The committed response must equal β(φ(i), m) — the
   reply an Abstract client computes for its own request from the returned
   history; this is how the Lemma 5 interpretation explains a loser's
   commit by the winner's presence in the history. *)
let interpret_events evs ~hinit ~habort ~hfull =
  let module A = Abstract_check in
  let hinit_len = List.length hinit in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ev :: rest -> (
        match (ev : tas_event) with
        | Trace.Invoke { seq; pid; req; _ } -> go (A.Invoke { seq; pid; req } :: acc) rest
        | Trace.Init { seq; pid; req; _ } ->
            go (A.Init { seq; pid; req; hist = hinit } :: acc) rest
        | Trace.Abort { seq; pid; req; _ } ->
            go (A.Abort { seq; pid; req; hist = habort } :: acc) rest
        (* a crash-recovery re-entry is not an abstract-boundary event:
           the operation is already invoked and not yet responded, so
           the Abstract event sequence is unchanged *)
        | Trace.Recover _ -> go acc rest
        | Trace.Commit { seq; pid; req; resp; _ } -> (
            match prefix_up_to hfull (Request.id req) with
            | None ->
                fail "committed request %d does not appear in the constructed history"
                  (Request.id req)
            | Some h_min -> (
                let h = if List.length h_min >= hinit_len then h_min else hinit in
                (* Definition 2, condition 3 (Abstract reading):
                   β(φ(i), m) = response(i). *)
                match History.beta_at Objects.tas h (Request.id req) with
                | Some r when r = resp -> go (A.Commit { seq; pid; req; hist = h } :: acc) rest
                | _ ->
                    fail "β(φ(commit of %d), m) does not match the committed response"
                      (Request.id req))))
  in
  go [] (Array.to_list evs)

let check_class evs ops ~init_tokens ~abort_tokens cls =
  let* hfull0 = build_full_history ~cls ~init_tokens ops in
  (* Requests that entered with an init token but never responded must
     still appear in the init history for it to lie in M(inits(τ)); they
     are appended at the tail, where they affect no response. *)
  let extras =
    List.filter_map
      (fun (t : _ Tas_constraint.token) ->
        let r = t.Tas_constraint.t_req in
        if History.mem (Request.id r) hfull0 then None else Some r)
      init_tokens
  in
  let hfull = hfull0 @ extras in
  let habort = match cls with Tas_constraint.No_aborts -> [] | _ -> hfull in
  (* Condition 2 + class membership: habort ∈ e. *)
  let* () =
    match cls with
    | Tas_constraint.No_aborts -> Ok ()
    | _ ->
        if Tas_constraint.in_class ~tokens:abort_tokens cls habort then Ok ()
        else fail "constructed abort history is outside its equivalence class"
  in
  (* As in the proofs of Lemmas 4 and 5, init indices are interpreted by
     the full constructed history. *)
  let hinit = match init_tokens with [] -> [] | _ -> hfull in
  (* Condition 1: φ constant on inits, with value in M(inits(τ)). *)
  let* () =
    match init_tokens with
    | [] -> Ok ()
    | _ ->
        if Tas_constraint.allows ~tokens:init_tokens hinit then Ok ()
        else fail "interpretation of init events is outside M(inits(τ))"
  in
  let* interpreted = interpret_events evs ~hinit ~habort ~hfull in
  (* Condition 4: φτ is an Abstract trace. *)
  Abstract_check.check ~validity:Abstract_check.Global interpreted

let check_events evs =
  let ops = Trace.operations evs in
  let abort_tokens = Tas_constraint.tokens_of_operations ops in
  let init_tokens = Tas_constraint.init_tokens_of_operations ops in
  let classes = Tas_constraint.classes ~tokens:abort_tokens in
  List.fold_left
    (fun acc cls ->
      let* () = acc in
      check_class evs ops ~init_tokens ~abort_tokens cls)
    (Ok ()) classes

let is_safely_composable evs = match check_events evs with Ok () -> true | Error _ -> false
