open Scs_util

type kind = Read | Write | Rmw

type event =
  | Step of { ts : int; pid : int; kind : kind; obj : int; obj_name : string; info : string }
  | Op_begin of { ts : int; pid : int; obj : int; label : string }
  | Op_end of { ts : int; pid : int; obj : int; aborted : bool }
  | Handoff of { ts : int; pid : int; label : string }
  | Crash of { ts : int; pid : int }
  | Note of { ts : int; text : string }

type op_metric = {
  om_pid : int;
  om_obj : int;
  om_label : string;
  om_start : int;
  om_finish : int;
  om_steps : int;
  om_step_contention : int;
  om_interval_contention : int;
  om_aborted : bool;
}

(* One open operation bracket. [oo_overlap] marks every other process
   observed with a simultaneously-open bracket — its cardinality at
   op_end is the interval contention of this operation. *)
type open_op = {
  oo_obj : int;
  oo_label : string;
  oo_start : int;
  oo_steps0 : int;  (* own steps at begin *)
  oo_total0 : int;  (* global steps at begin *)
  oo_overlap : bool array;  (* length n *)
}

type t = {
  enabled : bool;
  n : int;
  ring_capacity : int;
  ring : event array;  (* circular; valid once written *)
  mutable ring_head : int;  (* next write slot *)
  mutable ring_len : int;
  mutable clock : int;
  steps : int array;
  rmws : int array;
  cas : int array;
  aborts : int array;
  handoffs : int array;
  mutable crashed : int list;  (* reverse crash order *)
  obj_tbl : (int, string * int ref * int ref) Hashtbl.t;
  open_ops : open_op option array;
  metrics : op_metric Vec.t;
  mutable max_step_cont : int;
  mutable max_ivl_cont : int;
}

let dummy_event = Note { ts = 0; text = "" }

let create ?(ring_capacity = 4096) ~n () =
  if n <= 0 then invalid_arg "Obs.create: n must be positive";
  if ring_capacity <= 0 then invalid_arg "Obs.create: ring_capacity must be positive";
  {
    enabled = true;
    n;
    ring_capacity;
    ring = Array.make ring_capacity dummy_event;
    ring_head = 0;
    ring_len = 0;
    clock = 0;
    steps = Array.make n 0;
    rmws = Array.make n 0;
    cas = Array.make n 0;
    aborts = Array.make n 0;
    handoffs = Array.make n 0;
    crashed = [];
    obj_tbl = Hashtbl.create 16;
    open_ops = Array.make n None;
    metrics = Vec.create ();
    max_step_cont = 0;
    max_ivl_cont = 0;
  }

let null =
  {
    enabled = false;
    n = 0;
    ring_capacity = 1;
    ring = [| dummy_event |];
    ring_head = 0;
    ring_len = 0;
    clock = 0;
    steps = [||];
    rmws = [||];
    cas = [||];
    aborts = [||];
    handoffs = [||];
    crashed = [];
    obj_tbl = Hashtbl.create 1;
    open_ops = [||];
    metrics = Vec.create ();
    max_step_cont = 0;
    max_ivl_cont = 0;
  }

let enabled t = t.enabled

let push_event t ev =
  t.ring.(t.ring_head) <- ev;
  t.ring_head <- (t.ring_head + 1) mod t.ring_capacity;
  if t.ring_len < t.ring_capacity then t.ring_len <- t.ring_len + 1

let is_cas info = String.length info >= 3 && String.sub info 0 3 = "cas"

let step t ~pid ~kind ~obj ~obj_name ~info =
  if t.enabled then begin
    t.clock <- t.clock + 1;
    t.steps.(pid) <- t.steps.(pid) + 1;
    (match kind with
    | Rmw ->
        t.rmws.(pid) <- t.rmws.(pid) + 1;
        if is_cas info then t.cas.(pid) <- t.cas.(pid) + 1
    | Read | Write -> ());
    (match Hashtbl.find_opt t.obj_tbl obj with
    | Some (_, steps, rmws) ->
        incr steps;
        if kind = Rmw then incr rmws
    | None ->
        Hashtbl.add t.obj_tbl obj
          (obj_name, ref 1, ref (if kind = Rmw then 1 else 0)));
    push_event t (Step { ts = t.clock; pid; kind; obj; obj_name; info })
  end

let total_steps t = Array.fold_left ( + ) 0 t.steps

let close_bracket t pid ~aborted =
  match t.open_ops.(pid) with
  | None -> ()
  | Some oo ->
      t.open_ops.(pid) <- None;
      let own = t.steps.(pid) - oo.oo_steps0 in
      let all = total_steps t - oo.oo_total0 in
      let ivl = ref 0 in
      Array.iter (fun b -> if b then incr ivl) oo.oo_overlap;
      let m =
        {
          om_pid = pid;
          om_obj = oo.oo_obj;
          om_label = oo.oo_label;
          om_start = oo.oo_start;
          om_finish = t.clock;
          om_steps = own;
          om_step_contention = all - own;
          om_interval_contention = !ivl;
          om_aborted = aborted;
        }
      in
      if m.om_step_contention > t.max_step_cont then
        t.max_step_cont <- m.om_step_contention;
      if m.om_interval_contention > t.max_ivl_cont then
        t.max_ivl_cont <- m.om_interval_contention;
      Vec.push t.metrics m;
      push_event t (Op_end { ts = t.clock; pid; obj = oo.oo_obj; aborted })

let op_begin t ~pid ~obj ~label =
  if t.enabled then begin
    close_bracket t pid ~aborted:false;
    let oo =
      {
        oo_obj = obj;
        oo_label = label;
        oo_start = t.clock;
        oo_steps0 = t.steps.(pid);
        oo_total0 = total_steps t;
        oo_overlap = Array.make t.n false;
      }
    in
    (* Mutual overlap marking with every currently-open bracket. *)
    Array.iteri
      (fun q oq ->
        match oq with
        | Some oq when q <> pid ->
            oq.oo_overlap.(pid) <- true;
            oo.oo_overlap.(q) <- true
        | _ -> ())
      t.open_ops;
    t.open_ops.(pid) <- Some oo;
    push_event t (Op_begin { ts = t.clock; pid; obj; label })
  end

let op_end t ~pid ~aborted = if t.enabled then close_bracket t pid ~aborted

let abort t ~pid =
  if t.enabled then t.aborts.(pid) <- t.aborts.(pid) + 1

let handoff t ~pid ~label =
  if t.enabled then begin
    t.handoffs.(pid) <- t.handoffs.(pid) + 1;
    push_event t (Handoff { ts = t.clock; pid; label })
  end

let crash t ~pid =
  if t.enabled then begin
    close_bracket t pid ~aborted:true;
    t.crashed <- pid :: t.crashed;
    push_event t (Crash { ts = t.clock; pid })
  end

let note t text = if t.enabled then push_event t (Note { ts = t.clock; text })

let n t = t.n
let clock t = t.clock
let steps_of t pid = t.steps.(pid)
let rmws_of t pid = t.rmws.(pid)
let cas_attempts_of t pid = t.cas.(pid)
let aborts_of t pid = t.aborts.(pid)
let total_aborts t = Array.fold_left ( + ) 0 t.aborts
let handoffs_of t pid = t.handoffs.(pid)
let total_handoffs t = Array.fold_left ( + ) 0 t.handoffs
let crashes t = List.rev t.crashed

let objects t =
  Hashtbl.fold (fun _ (name, steps, rmws) acc -> (name, !steps, !rmws) :: acc) t.obj_tbl []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let op_metrics t = Vec.to_list t.metrics
let max_step_contention t = t.max_step_cont
let max_interval_contention t = t.max_ivl_cont

let events t =
  List.init t.ring_len (fun i ->
      let idx = (t.ring_head - t.ring_len + i + (2 * t.ring_capacity)) mod t.ring_capacity in
      t.ring.(idx))

let kind_to_string = function Read -> "read" | Write -> "write" | Rmw -> "rmw"

let event_to_string = function
  | Step { ts; pid; kind; obj_name; info; _ } ->
      Printf.sprintf "%4d  p%d  %-5s %s%s" ts pid (kind_to_string kind) obj_name
        (if info = "" then "" else " (" ^ info ^ ")")
  | Op_begin { ts; pid; obj; label } ->
      Printf.sprintf "%4d  p%d  begin %s#%d" ts pid label obj
  | Op_end { ts; pid; obj; aborted } ->
      Printf.sprintf "%4d  p%d  end   #%d%s" ts pid obj (if aborted then " ABORT" else "")
  | Handoff { ts; pid; label } -> Printf.sprintf "%4d  p%d  handoff %s" ts pid label
  | Crash { ts; pid } -> Printf.sprintf "%4d  p%d  CRASH" ts pid
  | Note { ts; text } -> Printf.sprintf "%4d  --  %s" ts text
