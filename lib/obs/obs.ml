open Scs_util

type kind = Read | Write | Rmw

type event =
  | Step of { ts : int; pid : int; kind : kind; obj : int; obj_name : string; info : string }
  | Op_begin of { ts : int; pid : int; obj : int; label : string }
  | Op_end of { ts : int; pid : int; obj : int; aborted : bool }
  | Handoff of { ts : int; pid : int; label : string }
  | Crash of { ts : int; pid : int }
  | Recover of { ts : int; pid : int }
  | Note of { ts : int; text : string }

type op_metric = {
  om_pid : int;
  om_obj : int;
  om_label : string;
  om_start : int;
  om_finish : int;
  om_steps : int;
  om_step_contention : int;
  om_interval_contention : int;
  om_aborted : bool;
}

(* One open operation bracket. [oo_overlap] marks every other process
   observed with a simultaneously-open bracket — its cardinality at
   op_end is the interval contention of this operation. A pid bitmask
   (n <= 62, matching the simulator's process cap) so begin/end
   allocate no per-bracket array and count by popcount. *)
type open_op = {
  oo_obj : int;
  oo_label : string;
  oo_start : int;
  oo_steps0 : int;  (* own steps at begin *)
  oo_total0 : int;  (* global steps at begin *)
  mutable oo_overlap : int;  (* bit q: overlapped process q *)
}

(* Ring tags: the event ring is a struct-of-arrays (one int tag plus
   scalar slots per event) so recording a step allocates nothing on the
   minor heap; events are re-boxed on demand by [events]. *)
let tag_step_read = 0 (* ts pid obj, s1=obj_name s2=info *)
let tag_step_write = 1
let tag_step_rmw = 2
let tag_op_begin = 3 (* ts pid obj, s1=label *)
let tag_op_end = 4 (* ts pid obj *)
let tag_op_end_abort = 5
let tag_handoff = 6 (* ts pid, s1=label *)
let tag_crash = 7 (* ts pid *)
let tag_note = 8 (* ts, s1=text *)
let tag_recover = 9 (* ts pid *)

type t = {
  enabled : bool;
  n : int;
  ring_on : bool;
      (* [false] skips every event-ring write (the counters, census and
         op metrics are unaffected): the throughput engines use it for
         batch sinks whose ring nobody replays, removing two string
         write-barrier stores per simulated step from the hot path. *)
  ring_capacity : int;
  r_tag : int array;  (* circular; valid once written *)
  r_ts : int array;
  r_pid : int array;
  r_obj : int array;
  r_s1 : string array;
  r_s2 : string array;
  mutable ring_head : int;  (* next write slot *)
  mutable ring_len : int;
  mutable clock : int;
  steps : int array;
  rmws : int array;
  cas : int array;
  aborts : int array;
  handoffs : int array;
  mutable crashed : int list;  (* reverse crash order *)
  mutable recovered : int list;  (* reverse recovery order *)
  (* per-object access census, dense int-indexed arrays (simulator obj
     ids are small and dense); an object is "seen" iff its step count is
     positive, and keeps the name of its first recorded access *)
  mutable obj_names : string array;
  mutable obj_steps : int array;
  mutable obj_rmws : int array;
  mutable obj_hi : int;  (* 1 + highest id seen *)
  open_ops : open_op option array;
  metrics : op_metric Vec.t;
  mutable max_step_cont : int;
  mutable max_ivl_cont : int;
}

let create ?(ring_capacity = 4096) ?(record_ring = true) ~n () =
  if n <= 0 then invalid_arg "Obs.create: n must be positive";
  if n > 62 then
    invalid_arg
      "Obs.create: at most 62 processes (overlap sets are word-sized bitmasks, \
       matching the simulator's cap)";
  if ring_capacity <= 0 then invalid_arg "Obs.create: ring_capacity must be positive";
  {
    enabled = true;
    n;
    ring_on = record_ring;
    ring_capacity;
    r_tag = Array.make ring_capacity tag_note;
    r_ts = Array.make ring_capacity 0;
    r_pid = Array.make ring_capacity 0;
    r_obj = Array.make ring_capacity 0;
    r_s1 = Array.make ring_capacity "";
    r_s2 = Array.make ring_capacity "";
    ring_head = 0;
    ring_len = 0;
    clock = 0;
    steps = Array.make n 0;
    rmws = Array.make n 0;
    cas = Array.make n 0;
    aborts = Array.make n 0;
    handoffs = Array.make n 0;
    crashed = [];
    recovered = [];
    obj_names = [||];
    obj_steps = [||];
    obj_rmws = [||];
    obj_hi = 0;
    open_ops = Array.make n None;
    metrics = Vec.create ();
    max_step_cont = 0;
    max_ivl_cont = 0;
  }

let null =
  {
    enabled = false;
    n = 0;
    ring_on = false;
    ring_capacity = 1;
    r_tag = [| tag_note |];
    r_ts = [| 0 |];
    r_pid = [| 0 |];
    r_obj = [| 0 |];
    r_s1 = [| "" |];
    r_s2 = [| "" |];
    ring_head = 0;
    ring_len = 0;
    clock = 0;
    steps = [||];
    rmws = [||];
    cas = [||];
    aborts = [||];
    handoffs = [||];
    crashed = [];
    recovered = [];
    obj_names = [||];
    obj_steps = [||];
    obj_rmws = [||];
    obj_hi = 0;
    open_ops = [||];
    metrics = Vec.create ();
    max_step_cont = 0;
    max_ivl_cont = 0;
  }

let enabled t = t.enabled
let ring_capacity t = t.ring_capacity

let push_raw t tag ts pid obj s1 s2 =
  if t.ring_on then begin
    let h = t.ring_head in
    t.r_tag.(h) <- tag;
    t.r_ts.(h) <- ts;
    t.r_pid.(h) <- pid;
    t.r_obj.(h) <- obj;
    t.r_s1.(h) <- s1;
    t.r_s2.(h) <- s2;
    t.ring_head <- (h + 1) mod t.ring_capacity;
    if t.ring_len < t.ring_capacity then t.ring_len <- t.ring_len + 1
  end

(* allocation-free [String.sub info 0 3 = "cas"] *)
let is_cas info =
  String.length info >= 3
  && String.unsafe_get info 0 = 'c'
  && String.unsafe_get info 1 = 'a'
  && String.unsafe_get info 2 = 's'

let ensure_obj t id =
  let cap = Array.length t.obj_steps in
  if id >= cap then begin
    let ncap = max (id + 1) (max 16 (2 * cap)) in
    let names = Array.make ncap "" in
    let steps = Array.make ncap 0 in
    let rmws = Array.make ncap 0 in
    Array.blit t.obj_names 0 names 0 cap;
    Array.blit t.obj_steps 0 steps 0 cap;
    Array.blit t.obj_rmws 0 rmws 0 cap;
    t.obj_names <- names;
    t.obj_steps <- steps;
    t.obj_rmws <- rmws
  end

let step t ~pid ~kind ~obj ~obj_name ~info =
  if t.enabled then begin
    t.clock <- t.clock + 1;
    t.steps.(pid) <- t.steps.(pid) + 1;
    ensure_obj t obj;
    if t.obj_steps.(obj) = 0 then begin
      t.obj_names.(obj) <- obj_name;
      if obj >= t.obj_hi then t.obj_hi <- obj + 1
    end;
    t.obj_steps.(obj) <- t.obj_steps.(obj) + 1;
    match kind with
    | Rmw ->
        t.rmws.(pid) <- t.rmws.(pid) + 1;
        if is_cas info then t.cas.(pid) <- t.cas.(pid) + 1;
        t.obj_rmws.(obj) <- t.obj_rmws.(obj) + 1;
        push_raw t tag_step_rmw t.clock pid obj obj_name info
    | Read -> push_raw t tag_step_read t.clock pid obj obj_name info
    | Write -> push_raw t tag_step_write t.clock pid obj obj_name info
  end

(* [clock] ticks exactly once per recorded step, so it doubles as the
   global step total — the brackets below rely on that to avoid folding
   [steps] on every begin/end. *)
let total_steps t = t.clock

let close_bracket t pid ~aborted =
  match t.open_ops.(pid) with
  | None -> ()
  | Some oo ->
      t.open_ops.(pid) <- None;
      let own = t.steps.(pid) - oo.oo_steps0 in
      let all = total_steps t - oo.oo_total0 in
      let ivl = ref 0 in
      let ov = ref oo.oo_overlap in
      while !ov <> 0 do
        ov := !ov land (!ov - 1);
        incr ivl
      done;
      let m =
        {
          om_pid = pid;
          om_obj = oo.oo_obj;
          om_label = oo.oo_label;
          om_start = oo.oo_start;
          om_finish = t.clock;
          om_steps = own;
          om_step_contention = all - own;
          om_interval_contention = !ivl;
          om_aborted = aborted;
        }
      in
      if m.om_step_contention > t.max_step_cont then
        t.max_step_cont <- m.om_step_contention;
      if m.om_interval_contention > t.max_ivl_cont then
        t.max_ivl_cont <- m.om_interval_contention;
      Vec.push t.metrics m;
      push_raw t (if aborted then tag_op_end_abort else tag_op_end) t.clock pid oo.oo_obj "" ""

let op_begin t ~pid ~obj ~label =
  if t.enabled then begin
    close_bracket t pid ~aborted:false;
    let oo =
      {
        oo_obj = obj;
        oo_label = label;
        oo_start = t.clock;
        oo_steps0 = t.steps.(pid);
        oo_total0 = total_steps t;
        oo_overlap = 0;
      }
    in
    (* Mutual overlap marking with every currently-open bracket. *)
    let bit_pid = 1 lsl pid in
    for q = 0 to t.n - 1 do
      if q <> pid then
        match t.open_ops.(q) with
        | Some oq ->
            oq.oo_overlap <- oq.oo_overlap lor bit_pid;
            oo.oo_overlap <- oo.oo_overlap lor (1 lsl q)
        | None -> ()
    done;
    t.open_ops.(pid) <- Some oo;
    push_raw t tag_op_begin t.clock pid obj label ""
  end

let op_end t ~pid ~aborted = if t.enabled then close_bracket t pid ~aborted

let abort t ~pid =
  if t.enabled then t.aborts.(pid) <- t.aborts.(pid) + 1

let handoff t ~pid ~label =
  if t.enabled then begin
    t.handoffs.(pid) <- t.handoffs.(pid) + 1;
    push_raw t tag_handoff t.clock pid 0 label ""
  end

let crash t ~pid =
  if t.enabled then begin
    close_bracket t pid ~aborted:true;
    t.crashed <- pid :: t.crashed;
    push_raw t tag_crash t.clock pid 0 "" ""
  end

let recover t ~pid =
  if t.enabled then begin
    t.recovered <- pid :: t.recovered;
    push_raw t tag_recover t.clock pid 0 "" ""
  end

let note t text = if t.enabled then push_raw t tag_note t.clock 0 0 text ""

let n t = t.n
let clock t = t.clock
let steps_of t pid = t.steps.(pid)
let rmws_of t pid = t.rmws.(pid)
let cas_attempts_of t pid = t.cas.(pid)
let aborts_of t pid = t.aborts.(pid)
let total_aborts t = Array.fold_left ( + ) 0 t.aborts
let handoffs_of t pid = t.handoffs.(pid)
let total_handoffs t = Array.fold_left ( + ) 0 t.handoffs
let crashes t = List.rev t.crashed
let recoveries t = List.rev t.recovered

let objects t =
  let acc = ref [] in
  for id = t.obj_hi - 1 downto 0 do
    if t.obj_steps.(id) > 0 then acc := (t.obj_names.(id), t.obj_steps.(id), t.obj_rmws.(id)) :: !acc
  done;
  List.sort (fun (_, a, _) (_, b, _) -> compare b a) !acc

let op_metrics t = Vec.to_list t.metrics
let max_step_contention t = t.max_step_cont
let max_interval_contention t = t.max_ivl_cont

let event_at t i =
  let idx = (t.ring_head - t.ring_len + i + (2 * t.ring_capacity)) mod t.ring_capacity in
  let tag = t.r_tag.(idx) in
  let ts = t.r_ts.(idx) and pid = t.r_pid.(idx) and obj = t.r_obj.(idx) in
  if tag <= tag_step_rmw then
    let kind = if tag = tag_step_read then Read else if tag = tag_step_write then Write else Rmw in
    Step { ts; pid; kind; obj; obj_name = t.r_s1.(idx); info = t.r_s2.(idx) }
  else if tag = tag_op_begin then Op_begin { ts; pid; obj; label = t.r_s1.(idx) }
  else if tag = tag_op_end then Op_end { ts; pid; obj; aborted = false }
  else if tag = tag_op_end_abort then Op_end { ts; pid; obj; aborted = true }
  else if tag = tag_handoff then Handoff { ts; pid; label = t.r_s1.(idx) }
  else if tag = tag_crash then Crash { ts; pid }
  else if tag = tag_recover then Recover { ts; pid }
  else Note { ts; text = t.r_s1.(idx) }

let events t = List.init t.ring_len (event_at t)

let merge_into ~into src =
  if not src.enabled then ()
  else begin
    if not into.enabled then invalid_arg "Obs.merge_into: destination sink is disabled";
    if into.n < src.n then invalid_arg "Obs.merge_into: destination sized for fewer processes";
    into.clock <- into.clock + src.clock;
    for pid = 0 to src.n - 1 do
      into.steps.(pid) <- into.steps.(pid) + src.steps.(pid);
      into.rmws.(pid) <- into.rmws.(pid) + src.rmws.(pid);
      into.cas.(pid) <- into.cas.(pid) + src.cas.(pid);
      into.aborts.(pid) <- into.aborts.(pid) + src.aborts.(pid);
      into.handoffs.(pid) <- into.handoffs.(pid) + src.handoffs.(pid)
    done;
    (* crashes/recoveries: source order appended after the destination's *)
    into.crashed <- src.crashed @ into.crashed;
    into.recovered <- src.recovered @ into.recovered;
    for id = 0 to src.obj_hi - 1 do
      if src.obj_steps.(id) > 0 then begin
        ensure_obj into id;
        if into.obj_steps.(id) = 0 then begin
          into.obj_names.(id) <- src.obj_names.(id);
          if id >= into.obj_hi then into.obj_hi <- id + 1
        end;
        into.obj_steps.(id) <- into.obj_steps.(id) + src.obj_steps.(id);
        into.obj_rmws.(id) <- into.obj_rmws.(id) + src.obj_rmws.(id)
      end
    done;
    Vec.iter (Vec.push into.metrics) src.metrics;
    if src.max_step_cont > into.max_step_cont then into.max_step_cont <- src.max_step_cont;
    if src.max_ivl_cont > into.max_ivl_cont then into.max_ivl_cont <- src.max_ivl_cont;
    (* replay the source ring oldest-first; destination eviction applies *)
    for i = 0 to src.ring_len - 1 do
      let idx = (src.ring_head - src.ring_len + i + (2 * src.ring_capacity)) mod src.ring_capacity in
      push_raw into src.r_tag.(idx) src.r_ts.(idx) src.r_pid.(idx) src.r_obj.(idx) src.r_s1.(idx)
        src.r_s2.(idx)
    done
  end

let kind_to_string = function Read -> "read" | Write -> "write" | Rmw -> "rmw"

let event_to_string = function
  | Step { ts; pid; kind; obj_name; info; _ } ->
      Printf.sprintf "%4d  p%d  %-5s %s%s" ts pid (kind_to_string kind) obj_name
        (if info = "" then "" else " (" ^ info ^ ")")
  | Op_begin { ts; pid; obj; label } ->
      Printf.sprintf "%4d  p%d  begin %s#%d" ts pid label obj
  | Op_end { ts; pid; obj; aborted } ->
      Printf.sprintf "%4d  p%d  end   #%d%s" ts pid obj (if aborted then " ABORT" else "")
  | Handoff { ts; pid; label } -> Printf.sprintf "%4d  p%d  handoff %s" ts pid label
  | Crash { ts; pid } -> Printf.sprintf "%4d  p%d  CRASH" ts pid
  | Recover { ts; pid } -> Printf.sprintf "%4d  p%d  RECOVER" ts pid
  | Note { ts; text } -> Printf.sprintf "%4d  --  %s" ts text
