(** Observability sink: per-process/per-object counters, online
    contention estimators, and a bounded structured event trace.

    The paper's headline claims are quantitative — A1 commits in O(1)
    steps and space (Theorem 3), AbortableBakery takes O(n) steps and
    aborts only under {e step contention}, SplitConsensus aborts only
    under {e interval contention} (Appendix A). This module is how the
    repo measures those quantities instead of merely proving them: the
    simulator reports every executed shared-memory step to a sink, and
    algorithm drivers bracket each high-level operation with
    {!op_begin}/{!op_end} so the sink can attribute steps and compute
    contention per operation.

    {2 Contention definitions (paper §2 / Appendix A)}

    For a completed high-level operation [op] by process [p]:

    - {b step contention} of [op] is the number of shared-memory steps
      taken by processes other than [p] inside [op]'s execution
      interval. Estimated online in O(1) per operation from two
      snapshots of the global and per-process step counters (begin and
      end) — exactly the count a post-hoc scan of the
      {!Scs_sim.Mem_event} stream would produce ({!Scs_sim.Detect} is
      the reference implementation; the unit tests cross-check them).
    - {b interval contention} of [op] is the number of {e distinct
      other processes} whose own bracketed operations overlap [op]'s
      interval. Maintained online with a per-open-operation overlap
      bitmask (one bit per process — hence the sink's 62-process cap):
      O(n) work at each {!op_begin}, a popcount at {!op_end}, zero on
      the step hot path.

    Solo executions therefore measure 0 for both, and step contention
    always bounds interval contention from above per the paper.

    {2 Cost contract}

    The sink is designed so that a {e disabled} sink ({!null}) costs
    one branch per simulated step: {!Scs_sim.Sim} guards the call with
    {!enabled}, and every hook on a disabled sink returns immediately.
    An {e enabled} sink costs O(1) per step (counter bumps plus a
    ring-buffer write, no allocation beyond the event record) and O(n)
    per operation bracket. The structured trace is a bounded ring —
    memory is O(capacity), never O(run length). *)

type kind =
  | Read
  | Write
  | Rmw  (** atomic read-modify-write: TAS, CAS, fetch&inc, swap *)

(** One entry of the structured ring trace. [ts] is the sink's step
    clock: the number of shared-memory steps reported so far, which
    coincides with [Sim.clock] when the sink is attached at simulator
    creation. *)
type event =
  | Step of { ts : int; pid : int; kind : kind; obj : int; obj_name : string; info : string }
  | Op_begin of { ts : int; pid : int; obj : int; label : string }
  | Op_end of { ts : int; pid : int; obj : int; aborted : bool }
  | Handoff of { ts : int; pid : int; label : string }
      (** a switch value crossing an abort boundary (A1 → backup, or a
          stage hand-off in a consensus chain) *)
  | Crash of { ts : int; pid : int }
  | Recover of { ts : int; pid : int }
      (** a crashed process re-admitted via its recovery entry point
          ({!Scs_sim.Sim.set_recovery}) *)
  | Note of { ts : int; text : string }

(** Everything the sink learned about one completed bracketed
    operation. *)
type op_metric = {
  om_pid : int;
  om_obj : int;  (** object id passed to {!op_begin} (algorithm-level, e.g. one id per consensus instance) *)
  om_label : string;
  om_start : int;  (** step clock at {!op_begin} *)
  om_finish : int;  (** step clock at {!op_end} *)
  om_steps : int;  (** shared-memory steps by [om_pid] inside the interval *)
  om_step_contention : int;
      (** steps by {e other} processes inside the interval (paper §2) *)
  om_interval_contention : int;
      (** distinct other processes with an overlapping bracketed
          operation (paper Appendix A) *)
  om_aborted : bool;
}

type t

val create : ?ring_capacity:int -> ?record_ring:bool -> n:int -> unit -> t
(** An enabled sink for processes [0..n-1]. [ring_capacity] (default
    [4096]) bounds the structured trace; older events are evicted.
    [record_ring] (default [true]) controls whether events are written
    to the ring at all: batch-measurement engines pass [false] for
    sinks whose ring nobody replays, which drops two string stores (and
    their write barriers) per simulated step from the hot path. The
    counters, census, op metrics and crash list are unaffected —
    {!events} just returns []. *)

val null : t
(** The no-op sink: {!enabled} is [false] and every hook returns
    immediately. This is the default everywhere a [?obs] parameter
    exists, keeping instrumentation off the hot path. *)

val enabled : t -> bool

val ring_capacity : t -> int
(** The bound passed at {!create} (1 for {!null}). *)

(** {2 Hooks} — called by the simulator and by algorithm drivers.
    All are no-ops on {!null}. *)

val step : t -> pid:int -> kind:kind -> obj:int -> obj_name:string -> info:string -> unit
(** One executed shared-memory step. Called by {!Scs_sim.Sim} from its
    accounting path; advances the sink's step clock. O(1). *)

val op_begin : t -> pid:int -> obj:int -> label:string -> unit
(** Open a high-level operation bracket for [pid]. At most one bracket
    per process may be open; a second [op_begin] implicitly closes the
    first (recorded as non-aborted). O(n): overlap bookkeeping against
    every other open bracket. *)

val op_end : t -> pid:int -> aborted:bool -> unit
(** Close [pid]'s open bracket, producing an {!op_metric}. No-op if no
    bracket is open. *)

val abort : t -> pid:int -> unit
(** Count one abort for [pid] (independent of brackets, so drivers can
    report aborts of inner layers too). *)

val handoff : t -> pid:int -> label:string -> unit
(** Count one switch-value handoff — the composition cost the paper
    charges when an aborted operation's partial effect is carried into
    the backup object. *)

val crash : t -> pid:int -> unit
(** Record a crash injected by a policy. Closes any open bracket as
    aborted. *)

val recover : t -> pid:int -> unit
(** Record the re-admission of a crashed process (called by the
    simulator when recovery code is scheduled). Opens no bracket — the
    recovery code brackets its own operations if it wants metrics. *)

val note : t -> string -> unit
(** Free-form marker in the structured trace. *)

(** {2 Queries} *)

val n : t -> int
val clock : t -> int
(** Steps reported so far (= [Sim.clock] when attached at creation). *)

val total_steps : t -> int
val steps_of : t -> int -> int
val rmws_of : t -> int -> int

val cas_attempts_of : t -> int -> int
(** RMW steps whose [info] starts with ["cas"] — the compare-and-swap
    attempts counter of the bench schema. *)

val aborts_of : t -> int -> int
val total_aborts : t -> int
val handoffs_of : t -> int -> int
val total_handoffs : t -> int
val crashes : t -> int list
(** Pids recorded as crashed, in crash order. *)

val recoveries : t -> int list
(** Pids recorded as recovered (re-admitted after a crash), in recovery
    order. *)

val objects : t -> (string * int * int) list
(** Per-object step census: [(name, steps, rmws)] sorted by steps,
    descending. Space is O(distinct objects). *)

val op_metrics : t -> op_metric list
(** Completed operation brackets, in completion order. *)

val max_step_contention : t -> int
val max_interval_contention : t -> int
(** Running maxima over completed brackets — O(1), usable mid-run. *)

val events : t -> event list
(** Ring contents, oldest first. At most [ring_capacity] entries. *)

val event_to_string : event -> string

(** {2 Merging} *)

val merge_into : into:t -> t -> unit
(** Fold one sink into another — the join step when each domain of a
    parallel explore/fuzz ran against its own private sink. Counters,
    per-object census and contention maxima are summed/maxed; op
    metrics are appended in the source's completion order; crashes are
    appended after the destination's; the source's ring is replayed
    into the destination oldest-first (destination eviction applies).
    Merging the per-domain sinks in a fixed (worker-index) order makes
    the combined sink deterministic for a deterministic work split.
    Open (un-ended) brackets of the source are dropped. The source is
    not modified. A disabled source is a no-op; raises
    [Invalid_argument] if the destination is disabled or sized for
    fewer processes than the source. *)
