(** The bench trajectory: the [BENCH_*.json] schema, its emitter, and
    its validator.

    Each PR commits a [BENCH_<pr>.json] at the repo root so later PRs
    have a cost trajectory to compare against (see [docs/metrics.md]
    for the schema contract and how each field is measured). The file
    is a single JSON object:

    {v
    { "schema": "scs.bench.trajectory/1",
      "run": "<identifier of the producing run>",
      "seed": <int>,
      "records": [
        { "workload": "<name>", "n": <int>, "runs": <int>,
          "p50_steps": <float>, "p99_steps": <float>,
          "max_interval_contention": <int>,
          "schedules_per_sec": <float> }, ... ] }
    v}

    [p50_steps]/[p99_steps] are percentiles of {e per-operation own
    steps} ({!Obs.op_metric}[.om_steps]) across all bracketed
    operations of all runs; [max_interval_contention] is the maximum
    {!Obs.op_metric}[.om_interval_contention] observed; and
    [schedules_per_sec] is completed runs divided by wall-clock time.
    {!validate} is the schema check CI runs against freshly emitted
    files. *)

type record = {
  workload : string;
  n : int;
  runs : int;
  p50_steps : float;
  p99_steps : float;
  max_interval_contention : int;
  schedules_per_sec : float;
}

type t = { run : string; seed : int; records : record list }

val schema_version : string
(** ["scs.bench.trajectory/1"]. *)

val to_json : t -> Scs_util.Json.t
val of_json : Scs_util.Json.t -> (t, string) result
(** [of_json] {e is} the validator: it checks the [schema] tag and the
    presence and type of every required field, returning a field-level
    error message on the first mismatch. *)

val validate : string -> (t, string) result
(** Parse and validate a raw JSON string. *)

val save : string -> t -> unit
(** Write to a file, round-tripping through {!validate} first so an
    emitter bug can never commit an invalid trajectory ([Failure] on
    mismatch). *)

val load : string -> (t, string) result
