(** The bench trajectory: the [BENCH_*.json] schema, its emitter, and
    its validator.

    Each PR commits a [BENCH_<pr>.json] at the repo root so later PRs
    have a cost trajectory to compare against (see [docs/metrics.md]
    for the schema contract and how each field is measured). The file
    is a single JSON object:

    {v
    { "schema": "scs.bench.trajectory/1",
      "run": "<identifier of the producing run>",
      "seed": <int>,
      "records": [
        { "workload": "<name>", "n": <int>, "runs": <int>,
          "p50_steps": <float>, "p99_steps": <float>,
          "max_interval_contention": <int>,
          "schedules_per_sec": <float> }, ... ] }
    v}

    [p50_steps]/[p99_steps] are percentiles of {e per-operation own
    steps} ({!Obs.op_metric}[.om_steps]) across all bracketed
    operations of all runs; [max_interval_contention] is the maximum
    {!Obs.op_metric}[.om_interval_contention] observed; and
    [schedules_per_sec] is completed runs divided by wall-clock time.
    {!validate} is the schema check CI runs against freshly emitted
    files.

    Records produced by the native load harness ([scs load]) carry an
    additional [native] sub-object with wall-clock metrics measured on
    real OCaml 5 domains:

    {v
    "native": { "backend": "native", "domains": <int>,
                "ops_per_sec": <float>,
                "p50_us": <float>, "p99_us": <float>, "p999_us": <float>,
                "abort_rate": <float> }
    v}

    The sub-object is optional, so files emitted before the native
    harness existed still validate under the same schema tag; for
    native records the simulator-step fields are zeroed and
    [schedules_per_sec] mirrors [ops_per_sec] (see [docs/metrics.md]). *)

type native = {
  backend : string;  (** ["native"] *)
  domains : int;  (** real domains driving the closed loop *)
  ops_per_sec : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;  (** per-op latency quantiles, microseconds *)
  abort_rate : float;  (** fast-path aborts per update operation *)
}

type record = {
  workload : string;
  sim_backend : string option;
      (** simulator primitive backend the record was measured on
          ({!Scs_prims.Backend.name}: ["sim-lin"], ["sim-sc:<lag>"]);
          emitted as an optional ["backend"] JSON key, so files
          predating the SC backend still validate and their records
          read back as [None] (implicitly sim-lin) *)
  n : int;
  runs : int;
  p50_steps : float;
  p99_steps : float;
  max_interval_contention : int;
  schedules_per_sec : float;
  native : native option;
}

type t = { run : string; seed : int; records : record list }

val schema_version : string
(** ["scs.bench.trajectory/1"]. *)

val to_json : t -> Scs_util.Json.t
val of_json : Scs_util.Json.t -> (t, string) result
(** [of_json] {e is} the validator: it checks the [schema] tag and the
    presence and type of every required field, returning a field-level
    error message on the first mismatch. *)

val validate : string -> (t, string) result
(** Parse and validate a raw JSON string. *)

val save : string -> t -> unit
(** Write to a file, round-tripping through {!validate} first so an
    emitter bug can never commit an invalid trajectory ([Failure] on
    mismatch). *)

val load : string -> (t, string) result
