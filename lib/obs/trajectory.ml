open Scs_util

type native = {
  backend : string;
  domains : int;
  ops_per_sec : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  abort_rate : float;
}

type record = {
  workload : string;
  sim_backend : string option;
  n : int;
  runs : int;
  p50_steps : float;
  p99_steps : float;
  max_interval_contention : int;
  schedules_per_sec : float;
  native : native option;
}

type t = { run : string; seed : int; records : record list }

let schema_version = "scs.bench.trajectory/1"

let native_to_json (nv : native) =
  Json.Obj
    [
      ("backend", Json.String nv.backend);
      ("domains", Json.Int nv.domains);
      ("ops_per_sec", Json.Float nv.ops_per_sec);
      ("p50_us", Json.Float nv.p50_us);
      ("p99_us", Json.Float nv.p99_us);
      ("p999_us", Json.Float nv.p999_us);
      ("abort_rate", Json.Float nv.abort_rate);
    ]

let record_to_json r =
  Json.Obj
    ([
       ("workload", Json.String r.workload);
     ]
    @ (match r.sim_backend with
      | None -> []
      | Some b -> [ ("backend", Json.String b) ])
    @ [
       ("n", Json.Int r.n);
       ("runs", Json.Int r.runs);
       ("p50_steps", Json.Float r.p50_steps);
       ("p99_steps", Json.Float r.p99_steps);
       ("max_interval_contention", Json.Int r.max_interval_contention);
       ("schedules_per_sec", Json.Float r.schedules_per_sec);
     ]
    @ match r.native with None -> [] | Some nv -> [ ("native", native_to_json nv) ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("run", Json.String t.run);
      ("seed", Json.Int t.seed);
      ("records", Json.List (List.map record_to_json t.records));
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let native_of_json j =
  let* backend = field "backend" Json.to_stringv j in
  let* domains = field "domains" Json.to_int j in
  let* ops_per_sec = field "ops_per_sec" Json.to_float j in
  let* p50_us = field "p50_us" Json.to_float j in
  let* p99_us = field "p99_us" Json.to_float j in
  let* p999_us = field "p999_us" Json.to_float j in
  let* abort_rate = field "abort_rate" Json.to_float j in
  Ok { backend; domains; ops_per_sec; p50_us; p99_us; p999_us; abort_rate }

let record_of_json j =
  let* workload = field "workload" Json.to_stringv j in
  let sim_backend = Option.bind (Json.member "backend" j) Json.to_stringv in
  let* n = field "n" Json.to_int j in
  let* runs = field "runs" Json.to_int j in
  let* p50_steps = field "p50_steps" Json.to_float j in
  let* p99_steps = field "p99_steps" Json.to_float j in
  let* max_interval_contention = field "max_interval_contention" Json.to_int j in
  let* schedules_per_sec = field "schedules_per_sec" Json.to_float j in
  let* native =
    match Json.member "native" j with
    | None -> Ok None
    | Some nj ->
        let* nv = native_of_json nj in
        Ok (Some nv)
  in
  Ok
    { workload; sim_backend; n; runs; p50_steps; p99_steps;
      max_interval_contention; schedules_per_sec; native }

let of_json j =
  let* schema = field "schema" Json.to_stringv j in
  if schema <> schema_version then
    Error (Printf.sprintf "schema mismatch: expected %S, got %S" schema_version schema)
  else
    let* run = field "run" Json.to_stringv j in
    let* seed = field "seed" Json.to_int j in
    let* records = field "records" Json.to_list j in
    let* records =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* r = record_of_json r in
          Ok (r :: acc))
        (Ok []) records
    in
    Ok { run; seed; records = List.rev records }

let validate s =
  let* j = Json.of_string s in
  of_json j

let save path t =
  let s = Json.to_string (to_json t) ^ "\n" in
  (match validate s with
  | Ok _ -> ()
  | Error e -> failwith ("Trajectory.save: emitted invalid JSON: " ^ e));
  let oc = open_out path in
  output_string oc s;
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  validate s
