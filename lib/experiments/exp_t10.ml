(** T10 (infrastructure) — Schedule-exploration throughput.

    Every mechanically checked safety claim in this repo (splitter mutual
    exclusion, Lemmas 4–7, Theorem 2, abortable-consensus agreement) rests
    on [Explore.exhaustive]. This experiment benchmarks the exploration
    engine itself on the two workloads the tests lean on hardest:

    - the splitter with n = 3 (full space: 236,880 maximal schedules), and
    - the composed speculative TAS (A1 ∘ A2) with n = 2.

    Three engines are compared: the seed implementation (replay the whole
    prefix at {e every} DFS node), the single-replay DFS (replay only on
    backtrack), and single-replay + sleep-set partial-order reduction,
    optionally fanned out over OCaml domains. "Covered" schedules counts
    the maximal schedules certified — for POR runs every pruned schedule is
    covered by the commuting representative that was checked, so the
    steps-per-covered-schedule column is the cost of certifying the same
    space, which is the quantity the test budgets buy. *)

open Scs_util
open Scs_sim
open Scs_workload

(* ---- workloads -------------------------------------------------------- *)

let splitter_setup ~n sim =
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module Sp = Scs_consensus.Splitter.Make (P) in
  let s = Sp.create ~name:"s" () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () -> ignore (Sp.split s ~pid))
  done

(* ---- the seed engine, kept verbatim as the baseline ------------------- *)

let seed_exhaustive ?(max_schedules = 200_000) ?(max_depth = 10_000) ~n ~setup ~check () =
  let count = ref 0 in
  let steps = ref 0 in
  let truncated = ref false in
  let t0 = Unix.gettimeofday () in
  let replay prefix =
    let sim = Sim.create ~n () in
    setup sim;
    List.iter
      (fun p ->
        if Sim.is_runnable sim p then begin
          Sim.step sim p;
          incr steps
        end)
      (List.rev prefix);
    sim
  in
  let rec dfs prefix depth =
    if !count >= max_schedules then truncated := true
    else begin
      let sim = replay prefix in
      match Sim.runnable sim with
      | [] ->
          incr count;
          check sim (List.rev prefix)
      | rs ->
          if depth >= max_depth then begin
            incr count;
            truncated := true;
            check sim (List.rev prefix)
          end
          else List.iter (fun p -> dfs (p :: prefix) (depth + 1)) rs
    end
  in
  dfs [] 0;
  (!count, !steps, Unix.gettimeofday () -. t0, !truncated)

(* ---- table helpers ---------------------------------------------------- *)

let rate schedules wall = if wall <= 0.0 then 0.0 else float_of_int schedules /. wall

let row ~name ~visited ~covered ~pruned ~steps ~wall ~truncated =
  [
    name;
    Printf.sprintf "%d%s" visited (if truncated then "*" else "");
    string_of_int covered;
    string_of_int pruned;
    string_of_int steps;
    Exp_common.f2 (float_of_int steps /. float_of_int (max 1 covered));
    Printf.sprintf "%.0f" (rate visited wall);
    Exp_common.f2 wall;
  ]

let header =
  [ "engine"; "visited"; "covered"; "pruned"; "steps"; "steps/cov"; "visited/s"; "wall s" ]

(* ---- the experiment --------------------------------------------------- *)

let splitter_table ~n ~seed_budget =
  let setup = splitter_setup ~n in
  let nocheck _ _ = () in
  let seed_n, seed_steps, seed_wall, seed_trunc =
    seed_exhaustive ~max_schedules:seed_budget ~n ~setup ~check:nocheck ()
  in
  let full = Explore.exhaustive ~max_schedules:5_000_000 ~n ~setup ~check:nocheck () in
  let covered = full.Explore.schedules in
  (* fan the full-space enumeration out over 2 domains: coverage must be
     identical; whether wall time drops depends on the host (on small
     containers inter-domain GC coordination can outweigh the split) *)
  let par =
    Explore.exhaustive ~max_schedules:5_000_000 ~domains:2 ~n ~setup ~check:nocheck ()
  in
  let por =
    Explore.exhaustive ~max_schedules:5_000_000 ~por:true ~n ~setup ~check:nocheck ()
  in
  let seed_per = float_of_int seed_steps /. float_of_int (max 1 seed_n) in
  let por_per = float_of_int por.Explore.steps_replayed /. float_of_int (max 1 covered) in
  Table.print
    ~title:(Printf.sprintf "Splitter n=%d: schedule exploration engines" n)
    ~header
    [
      row
        ~name:(Printf.sprintf "seed replay-per-node (budget %d)" seed_budget)
        ~visited:seed_n ~covered:seed_n ~pruned:0 ~steps:seed_steps ~wall:seed_wall
        ~truncated:seed_trunc;
      row ~name:"single-replay DFS" ~visited:full.Explore.schedules ~covered ~pruned:0
        ~steps:full.Explore.steps_replayed ~wall:full.Explore.wall_s
        ~truncated:full.Explore.truncated;
      row ~name:"single-replay DFS, 2 domains" ~visited:par.Explore.schedules ~covered
        ~pruned:par.Explore.pruned ~steps:par.Explore.steps_replayed
        ~wall:par.Explore.wall_s ~truncated:par.Explore.truncated;
      row ~name:"single-replay + POR" ~visited:por.Explore.schedules ~covered
        ~pruned:por.Explore.pruned ~steps:por.Explore.steps_replayed
        ~wall:por.Explore.wall_s ~truncated:por.Explore.truncated;
    ];
  Exp_common.note
    (Printf.sprintf
       "steps per covered schedule: seed %.1f vs POR %.2f — a %.0fx reduction in \
        simulator work to certify the same %d-schedule space (* = budget-truncated \
        sample). The 2-domain row must visit the same %d schedules; its wall-clock \
        benefit is hardware-dependent."
       seed_per por_per (seed_per /. por_per) covered covered)

let composed_table ~n ~budget =
  let run ~por ~domains =
    Tas_run.explore_one_shot ~max_schedules:budget ~por ~domains ~n ~algo:Tas_run.Composed
      ()
  in
  let plain, bad_plain = run ~por:false ~domains:1 in
  let por, bad_por = run ~por:true ~domains:1 in
  let covered = plain.Explore.schedules in
  Table.print
    ~title:
      (Printf.sprintf "Composed TAS (A1∘A2) n=%d: full linearizability check per schedule"
         n)
    ~header
    [
      row ~name:"single-replay DFS" ~visited:plain.Explore.schedules ~covered
        ~pruned:0 ~steps:plain.Explore.steps_replayed ~wall:plain.Explore.wall_s
        ~truncated:plain.Explore.truncated;
      row ~name:"single-replay + POR" ~visited:por.Explore.schedules
        ~covered:(if por.Explore.truncated then por.Explore.schedules else covered)
        ~pruned:por.Explore.pruned ~steps:por.Explore.steps_replayed
        ~wall:por.Explore.wall_s ~truncated:por.Explore.truncated;
    ];
  Exp_common.note
    (Printf.sprintf
       "violations: %d (plain) vs %d (POR) — identical verdicts; POR visits %.1f%% of \
        the schedules."
       bad_plain bad_por
       (100.0
       *. float_of_int por.Explore.schedules
       /. float_of_int (max 1 plain.Explore.schedules)))

let run () =
  Exp_common.section "T10"
    "Explorer throughput: single-replay DFS, partial-order reduction, multicore fan-out";
  splitter_table ~n:3 ~seed_budget:200_000;
  print_newline ();
  composed_table ~n:2 ~budget:1_500_000;
  print_newline ()
