type t = { id : string; title : string; run : unit -> unit }

let all =
  [
    { id = "T1"; title = "A1: O(1) steps/space; aborts need step contention"; run = Exp_t1.run };
    { id = "T2"; title = "Composed TAS cost vs baselines; switch cost"; run = Exp_t2.run };
    { id = "T3"; title = "SplitConsensus: O(1) solo, interval-contention progress"; run = Exp_t3.run };
    { id = "T4"; title = "AbortableBakery: Θ(n) solo, step-contention progress"; run = Exp_t4.run };
    { id = "T5"; title = "State transfer: generic UC vs semantics-aware TAS"; run = Exp_t5.run };
    { id = "T6"; title = "Consensus power of base objects"; run = Exp_t6.run };
    { id = "T7"; title = "Fence complexity (RAW/AWAR)"; run = Exp_t7.run };
    { id = "T8"; title = "Solo-fast variant (Appendix B)"; run = Exp_t8.run };
    { id = "T9"; title = "Extension: composition cost by object (open question)"; run = Exp_t9.run };
    {
      id = "T10";
      title = "Explorer throughput: single-replay DFS, POR, multicore fan-out";
      run = Exp_t10.run;
    };
    {
      id = "T11";
      title = "Fuzzing throughput, time-to-first-failure, shrinking";
      run = Exp_t11.run;
    };
    {
      id = "T12";
      title = "Checker throughput: scalable engine vs seed bitmask; differential agreement";
      run = Exp_t12.run;
    };
    {
      id = "T13";
      title = "Observability layer: step/contention claims measured by the obs sink";
      run = Exp_t13.run;
    };
    { id = "F1"; title = "Figure 1 dynamics: contention sweep"; run = Exp_f1.run };
    { id = "F2"; title = "Native multicore throughput"; run = Exp_f2.run };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let run_all () = List.iter (fun e -> e.run ()) all
