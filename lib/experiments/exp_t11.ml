(** T11 (infrastructure) — Fuzzing throughput and time-to-first-failure.

    The schedule fuzzer ([Fuzz]/[Fuzz_run]) complements the exhaustive
    explorer benchmarked in T10: instead of certifying a whole schedule
    space it hunts for violations under a portfolio of randomized
    scheduling policies, then hands failures to the delta-debugging
    shrinker ([Shrink]).

    This experiment measures, on the composed-TAS strict-linearizability
    workload [f1] (the workload behind finding F-1):

    - raw fuzzing throughput (schedules/second) per policy at
      n ∈ {3, 4, 5}, and
    - time-to-first-failure per policy: the run index and wall-clock
      time at which each policy first re-discovers F-1 within the
      budget ("-" = not found).

    A second table shows the shrinker at work: the raw failing schedule
    found at n = 3 is minimized and compared against the 21-turn
    hand-extracted schedule replayed in test/test_findings.ml. *)

open Scs_util
open Scs_sim
open Scs_workload

let runs_budget = 40_000

let header = [ "policy"; "runs"; "sched/s"; "viol"; "first fail (run)"; "first fail (ms)" ]

let stat_row (s : Fuzz.policy_stats) =
  let first_run, first_ms =
    match s.Fuzz.s_first_failure with
    | None -> ("-", "-")
    | Some (run, wall) -> (string_of_int run, Printf.sprintf "%.1f" (wall *. 1000.0))
  in
  [
    s.Fuzz.s_policy;
    string_of_int s.Fuzz.s_runs;
    Printf.sprintf "%.0f" (Fuzz.schedules_per_sec s);
    string_of_int s.Fuzz.s_violations;
    first_run;
    first_ms;
  ]

let throughput_table ~n =
  let report =
    Fuzz_run.fuzz ~runs:runs_budget ~max_violations:1 ~seed:7 Fuzz_run.f1 ~n
  in
  Table.print
    ~title:
      (Printf.sprintf "f1 (composed TAS, strict-lin check) n=%d, %d runs/policy" n
         runs_budget)
    ~header
    (List.map stat_row report.Fuzz.r_stats);
  report

let shrink_table (report : Fuzz.report) =
  match report.Fuzz.r_violations with
  | [] -> Exp_common.note "no violation available to shrink (budget too small?)"
  | v :: _ ->
      let (sched, crashes), (st : Shrink.stats) =
        Fuzz_run.shrink Fuzz_run.f1 ~n:3 ~schedule:v.Fuzz.v_schedule
          ~crashes:v.Fuzz.v_crashes
      in
      Table.print ~title:"Shrinking the first n=3 counterexample (finding F-1)"
        ~header:[ "stage"; "turns"; "crashes" ]
        [
          [ "raw fuzzer schedule"; string_of_int st.Shrink.orig_len;
            string_of_int (List.length v.Fuzz.v_crashes) ];
          [ "after delta-debugging"; string_of_int st.Shrink.final_len;
            string_of_int (List.length crashes) ];
          [ "hand-extracted (test_findings.ml)"; "21"; "0" ];
        ];
      Exp_common.note
        (Printf.sprintf
           "%d replay attempts (%d accepted, %d rejected by Replay_drift) over %d \
            rounds; the minimized schedule replays deterministically via \
            Policy.scripted ~strict:true."
           st.Shrink.attempts st.Shrink.accepted st.Shrink.drifted st.Shrink.rounds);
      ignore sched

let run () =
  Exp_common.section "T11"
    "Fuzzing throughput, time-to-first-failure, and counterexample shrinking";
  let r3 = throughput_table ~n:3 in
  print_newline ();
  ignore (throughput_table ~n:4);
  print_newline ();
  ignore (throughput_table ~n:5);
  print_newline ();
  shrink_table r3;
  print_newline ()
