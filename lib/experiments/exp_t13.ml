(** T13 — Observability layer: the complexity claims, measured.

    The obs sink (lib/obs) turns the paper's quantitative claims into
    numbers: A1's solo step count is independent of n (Theorem 3),
    AbortableBakery's solo step count is linear in n (Appendix A), and
    abort rates track the *measured* contention class each algorithm is
    sensitive to — SplitConsensus commits whenever its measured interval
    contention is 0, AbortableBakery whenever its measured step
    contention is 0.

    Reproduce with: dune exec bin/scs.exe -- experiment T13
    (per-table one-liners are printed in EXPERIMENTS.md). *)

open Scs_util
open Scs_sim
open Scs_workload

let ns = [ 2; 4; 8; 16; 32; 64 ]

(* Solo cost sweep: A1 flat, bakery linear. Uses Obs_run.solo — one
   process runs to completion alone, its op bracket is the sample. *)
let solo_table () =
  let rows =
    List.map
      (fun n ->
        let a1 = Obs_run.solo Obs_run.A1 ~n in
        let bak = Obs_run.solo (Obs_run.Cons Cons_run.Bakery) ~n in
        let split = Obs_run.solo (Obs_run.Cons Cons_run.Split) ~n in
        let steps a = int_of_float a.Obs_run.steps.Stats.median in
        [
          string_of_int n;
          string_of_int (steps a1);
          string_of_int (steps split);
          string_of_int (steps bak);
          Exp_common.f2 (float_of_int (steps bak) /. float_of_int n);
          string_of_int a1.Obs_run.max_interval_contention;
        ])
      ns
  in
  Table.print
    ~title:
      "Solo step counts measured by the obs sink (paper: A1 and SplitConsensus O(1), AbortableBakery O(n))"
    ~header:[ "n"; "A1 steps"; "split steps"; "bakery steps"; "bakery/n"; "ivl cont" ]
    rows

(* Abort count bucketed by the *run's* measured contention. The
   contention flags of both algorithms are sticky object state (split's
   [C], bakery's [Quit]): one contended interval can make later,
   individually-uncontended operations abort, so the per-operation
   version of the progress claim is not what the algorithms guarantee.
   The checkable invariant is run-level — a run whose measured maximum
   interval contention is 0 (brackets never overlap: a sequential
   execution) must have zero aborts. *)
let run_buckets ~algo ~runs ~n ~pick_run =
  let buckets = Hashtbl.create 8 in
  let policies =
    (fun _rng -> Policy.sequential ())
    :: List.map
         (fun p rng -> Policy.sticky rng ~switch_prob:p)
         [ 0.02; 0.1; 0.3; 0.6 ]
  in
  List.iteri
    (fun pi policy ->
      for seed = 1 to runs do
        let obs = Scs_obs.Obs.create ~n () in
        ignore (Cons_run.run ~seed:(seed + (1000 * pi)) ~obs ~n ~algo ~policy ());
        let c = pick_run obs in
        let ops = List.length (Scs_obs.Obs.op_metrics obs) in
        let aborts = Scs_obs.Obs.total_aborts obs in
        let o0, a0 = Option.value ~default:(0, 0) (Hashtbl.find_opt buckets c) in
        Hashtbl.replace buckets c (o0 + ops, a0 + aborts)
      done)
    policies;
  Hashtbl.fold (fun c v acc -> (c, v) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Abort rate bucketed by the measured contention of each operation.
   [pick] selects which estimator the algorithm's progress claim is
   stated against. *)
let contention_buckets ~algo ~pick ~runs ~n =
  let buckets = Hashtbl.create 8 in
  (* sweep stickiness to produce a wide range of contention levels *)
  List.iter
    (fun switch_prob ->
      let agg =
        Obs_run.measure ~runs ~seed:(7 + int_of_float (100.0 *. switch_prob))
          ~policy:(fun rng -> Policy.sticky rng ~switch_prob)
          (Obs_run.Cons algo) ~n
      in
      List.iter
        (fun (m : Scs_obs.Obs.op_metric) ->
          let c = pick m in
          let total, aborted =
            Option.value ~default:(0, 0) (Hashtbl.find_opt buckets c)
          in
          Hashtbl.replace buckets c
            (total + 1, aborted + if m.Scs_obs.Obs.om_aborted then 1 else 0))
        agg.Obs_run.ops)
    [ 0.02; 0.1; 0.3; 0.6 ];
  Hashtbl.fold (fun c v acc -> (c, v) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_rows buckets =
  (* group the tail so the table stays small *)
  let labelled =
    List.map
      (fun (c, (total, aborted)) ->
        let label = if c = 0 then "0" else if c <= 2 then string_of_int c else "3+" in
        (label, total, aborted))
      buckets
  in
  let merged = Hashtbl.create 4 in
  List.iter
    (fun (label, total, aborted) ->
      let t0, a0 = Option.value ~default:(0, 0) (Hashtbl.find_opt merged label) in
      Hashtbl.replace merged label (t0 + total, a0 + aborted))
    labelled;
  List.filter_map
    (fun label ->
      match Hashtbl.find_opt merged label with
      | None -> None
      | Some (total, aborted) ->
          Some
            [
              label;
              string_of_int total;
              string_of_int aborted;
              Printf.sprintf "%.1f%%" (100.0 *. float_of_int aborted /. float_of_int total);
            ])
    [ "0"; "1"; "2"; "3+" ]

let abort_vs_contention () =
  let n = 4 and runs = 80 in
  let pick_run obs = Scs_obs.Obs.max_interval_contention obs in
  let split_runs = run_buckets ~algo:Cons_run.Split ~runs ~n ~pick_run in
  Table.print
    ~title:
      "SplitConsensus: aborts vs the run's measured max interval contention (Appendix A: an interval-contention-free run commits everything)"
    ~header:[ "run ivl cont"; "ops"; "aborts"; "abort rate" ]
    (bucket_rows split_runs);
  print_newline ();
  let bak_runs = run_buckets ~algo:Cons_run.Bakery ~runs ~n ~pick_run in
  Table.print
    ~title:
      "AbortableBakery: aborts vs the run's measured max interval contention (step-contention-free sequential runs commit everything)"
    ~header:[ "run ivl cont"; "ops"; "aborts"; "abort rate" ]
    (bucket_rows bak_runs);
  (* the headline invariant, asserted not just printed *)
  let zero_bucket_clean buckets =
    match List.assoc_opt 0 buckets with
    | None -> true
    | Some (_, aborted) -> aborted = 0
  in
  if not (zero_bucket_clean split_runs) then
    Exp_common.note
      "VIOLATION: SplitConsensus aborted in an interval-contention-free run";
  if not (zero_bucket_clean bak_runs) then
    Exp_common.note
      "VIOLATION: AbortableBakery aborted in an interval-contention-free run";
  print_newline ();
  (* per-operation trend: abort rate rises with the op's own measured
     contention; the sticky flags mean the zero bucket need not be 0%
     here, which is exactly why the invariant above is run-level *)
  let split_ops =
    contention_buckets ~algo:Cons_run.Split
      ~pick:(fun m -> m.Scs_obs.Obs.om_interval_contention)
      ~runs:100 ~n
  in
  Table.print
    ~title:
      "Per-operation trend: SplitConsensus abort rate vs the op's own interval contention (sticky C flag carries earlier contention forward)"
    ~header:[ "op ivl cont"; "ops"; "aborts"; "abort rate" ]
    (bucket_rows split_ops)

(* Composed TAS under contention, as the obs sink sees it: per-op step
   percentiles, estimator maxima, switch-value handoffs. *)
let composed_profile () =
  let rows =
    List.map
      (fun n ->
        let a = Obs_run.measure ~runs:150 (Obs_run.Tas Tas_run.Composed) ~n in
        [
          string_of_int n;
          string_of_int (List.length a.Obs_run.ops);
          Exp_common.f1 a.Obs_run.steps.Stats.median;
          Exp_common.f1 a.Obs_run.steps.Stats.p99;
          string_of_int a.Obs_run.max_interval_contention;
          string_of_int a.Obs_run.aborts;
          string_of_int a.Obs_run.handoffs;
        ])
      [ 2; 4; 8 ]
  in
  Table.print
    ~title:"Speculative TAS under random schedules, measured by the obs sink"
    ~header:[ "n"; "ops"; "p50 steps"; "p99 steps"; "max ivl cont"; "aborts"; "handoffs" ]
    rows

let run () =
  Exp_common.section "T13" "Observability layer: complexity claims, measured";
  solo_table ();
  print_newline ();
  abort_vs_contention ();
  print_newline ();
  composed_profile ()
