(** T12 (infrastructure) — Linearizability-checker throughput and
    differential agreement.

    PR 3 replaced the word-sized-bitmask Wing–Gong checker (62-operation
    cap, linear-scan memo, trace-order candidate exploration) with a
    scalable engine: growable bitvector, hashed state memo, and Lowe-style
    minimal-response-first candidate order. The seed implementation is
    kept verbatim as [Linearize_ref] — both the differential-testing
    oracle and the baseline measured here.

    Two phases:

    - {b Throughput}: both checkers verify the same randomly shuffled
      linearizable queue histories (concurrent batches of width 8) at
      20 / 62 / 200 / 1000 operations, median wall time over 5 seeds.
      The reference checker cannot accept more than 62 operations, so
      larger sizes report "n/a (cap)"; at 62 the new engine must be
      >= 5x faster (the PR's acceptance bar).

    - {b Differential agreement}: 10,000 random queue histories (4..40
      operations, width 2..5, with random pending operations and randomly
      corrupted dequeue responses), each judged by the reference checker,
      the new engine, and the new engine in Legacy mode — any verdict
      disagreement is reported (and there must be none). *)

open Scs_util
open Scs_spec
open Scs_history

(* ---- history generation ----------------------------------------------- *)

(* A linearizable queue history of [size] committed operations built in
   concurrent batches of width [width]: each batch invokes its operations,
   then responds to them in generation order, which is therefore a valid
   linearization witness; responses come from threading the sequential
   queue model through that order. The operation list is Fisher–Yates
   shuffled at the end: verdicts are order-independent, but the reference
   checker explores candidates in list order (so a shuffled list costs it
   many failed candidates), while the scalable engine re-sorts by response
   time internally. *)
let queue_history rng ~size ~width =
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let next_id = ref 0 in
  let fresh = ref 0 in
  let model = Queue.create () in
  let out = ref [] in
  let made = ref 0 in
  while !made < size do
    let w = min width (size - !made) in
    let invs = Array.init w (fun _ -> 0) in
    for i = 0 to w - 1 do
      invs.(i) <- next ()
    done;
    for i = 0 to w - 1 do
      (* Keep the model queue short: a long queue lets wrong within-batch
         enqueue orders survive unrefuted for many batches (the dequeue
         that would expose them is far away), which makes the search
         exponential for BOTH checkers — we want hard-but-tractable
         instances, not pathological ones. *)
      let payload, resp =
        if Queue.is_empty model || (Queue.length model < 4 && Rng.bool rng) then begin
          incr fresh;
          Queue.push !fresh model;
          (Objects.Enqueue !fresh, Objects.Q_ok)
        end
        else (Objects.Dequeue, Objects.Q_dequeued (Queue.take_opt model))
      in
      incr next_id;
      let res = next () in
      out :=
        {
          Trace.op_pid = i;
          op_req = Request.make !next_id payload;
          invoke_seq = invs.(i);
          invoke_ts = invs.(i);
          op_init = None;
          op_recoveries = 0;
          outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
        }
        :: !out;
      incr made
    done
  done;
  let arr = Array.of_list !out in
  Rng.shuffle rng arr;
  Array.to_list arr

(* Differential-phase variations: forget random responses (the operation
   becomes pending) and corrupt random dequeue responses (the history
   usually becomes non-linearizable — either way both checkers must
   agree). *)
let vary rng ops =
  List.map
    (fun (o : _ Trace.operation) ->
      if Rng.bernoulli rng 0.1 then { o with Trace.outcome = Trace.Pending }
      else
        match o.Trace.outcome with
        | Trace.Committed ({ resp = Objects.Q_dequeued v; _ } as c)
          when Rng.bernoulli rng 0.15 ->
            let v' =
              match v with
              | Some x when Rng.bool rng -> Some (x + 1000)
              | Some _ -> None
              | None -> Some 999
            in
            {
              o with
              Trace.outcome = Trace.Committed { c with resp = Objects.Q_dequeued v' };
            }
        | _ -> o)
    ops

(* ---- phase 1: throughput ---------------------------------------------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let sizes = [ 20; 62; 200; 1000 ]
let seeds = [ 11; 22; 33; 44; 55 ]

let throughput_row size =
  let ref_ms = ref [] and new_ms = ref [] in
  List.iter
    (fun seed ->
      let rng = Rng.create ((seed * 7919) + size) in
      let ops = queue_history rng ~size ~width:8 in
      if size <= Linearize_ref.max_operations then begin
        let ok, dt = time (fun () -> Linearize_ref.check_operations Objects.queue ops) in
        assert ok;
        ref_ms := (dt *. 1000.) :: !ref_ms
      end;
      let ok, dt = time (fun () -> Linearize.check_operations Objects.queue ops) in
      assert ok;
      new_ms := (dt *. 1000.) :: !new_ms)
    seeds;
  let new_med = median !new_ms in
  let ref_cell, speedup_cell =
    match !ref_ms with
    | [] -> ("n/a (cap)", "n/a")
    | ms ->
        let m = median ms in
        (Printf.sprintf "%.2f" m, Printf.sprintf "%.0fx" (m /. new_med))
  in
  [ string_of_int size; ref_cell; Printf.sprintf "%.3f" new_med; speedup_cell ]

let throughput_table () =
  Table.print
    ~title:
      (Printf.sprintf
         "Shuffled linearizable queue histories, width 8, median over %d seeds"
         (List.length seeds))
    ~header:[ "ops"; "seed bitmask (ms)"; "scalable (ms)"; "speedup" ]
    (List.map throughput_row sizes)

(* ---- phase 2: differential agreement ---------------------------------- *)

let differential () =
  let cases = 10_000 in
  let rng = Rng.create 0xD1FF in
  let lin = ref 0 and nonlin = ref 0 and disagree = ref 0 in
  for _ = 1 to cases do
    let size = Rng.int_in rng 4 40 in
    let width = Rng.int_in rng 2 5 in
    let ops = vary rng (queue_history rng ~size ~width) in
    let v_ref = Linearize_ref.check_operations Objects.queue ops in
    let v_new = Linearize.check_operations Objects.queue ops in
    let v_legacy = Linearize.check_operations ~mode:Linearize.Legacy Objects.queue ops in
    if v_new then incr lin else incr nonlin;
    if v_ref <> v_new || v_ref <> v_legacy then incr disagree
  done;
  Table.print ~title:"Differential agreement, random queue histories (4..40 ops)"
    ~header:[ "cases"; "linearizable"; "non-linearizable"; "disagreements" ]
    [
      [
        string_of_int cases; string_of_int !lin; string_of_int !nonlin;
        string_of_int !disagree;
      ];
    ];
  if !disagree > 0 then failwith "T12: checker disagreement — differential bug"

let run () =
  Exp_common.section "T12" "Checker throughput: scalable engine vs seed bitmask oracle";
  throughput_table ();
  print_newline ();
  differential ();
  print_newline ()
