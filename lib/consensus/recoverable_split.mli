(** Recoverable SplitConsensus: Algorithm 3 under the crash-recovery
    model, with an explicit durable/volatile split and an idempotent
    recovery procedure.

    Durability assignment and why it is safe:
    - the splitter door [X] is {e volatile} — after a wipe it reads
      [None], which can only deny a Stop (a Stop needs the reader's own
      stale [Some pid]), so crashes cost liveness there, never safety;
    - the splitter latch [Y], the decision [V], the contention flag [C]
      and the per-process phase registers are {e durable}: [Y] remembers
      the door was consumed while the winner is down, [V] moves ⊥ →
      [Some v] at most once per instance, and the write-ahead phase
      ([P_run v] before any shared write, [P_won v] before the decision
      write) tells {!Make.recover} exactly what to redo.

    Recovery is idempotent — it only re-reads durable state and
    re-writes values already written — so a crash {e during} recovery
    followed by another recovery converges to the same outcome, and a
    crash after the phase returns to [P_idle] simply leaves the
    operation without a response (a pending operation, exactly as under
    fail-stop). *)

open Scs_composable

type 'v phase = P_idle | P_run of 'v option | P_won of 'v option

module Make (P : Scs_prims.Prims_intf.S) : sig
  type nonrec 'v phase = 'v phase = P_idle | P_run of 'v option | P_won of 'v option
  type 'v t

  val create : name:string -> n:int -> unit -> 'v t
  (** [n] is the number of processes (pids [0 .. n-1]), sizing the
      per-process phase array. *)

  val propose : 'v t -> pid:int -> 'v option -> ('v option, 'v option) Outcome.t

  val recover : 'v t -> pid:int -> ('v option, 'v option) Outcome.t option
  (** The recovery entry point for [pid]: [None] when no operation was
      in flight at the crash; otherwise completes the interrupted
      proposal and returns its outcome ([Abort] for an undistinguished
      proposal — the crash counts as contention — or the re-executed
      decision for a [P_won] crash). Idempotent under repeated crashes. *)

  val decision : 'v t -> 'v option
  (** Current durable tentative decision (diagnostic). *)

  val instance : 'v t -> 'v Consensus_intf.t
end
