(** Recoverable AbortableBakery: Algorithm 4 under the crash-recovery
    model.

    Durability assignment: the announcement arrays [(Ai)]/[(Bi)], the
    [Quit] flag, [Dec] and the per-process write-ahead phase registers
    are durable; the only volatile state is a per-process decided-hint
    cache, which short-circuits a proposal into a durable [Dec] read and
    can therefore never manufacture a decision on its own (a wiped hint
    just costs the slow path again).

    Recovery is deliberately minimal: an interrupted proposal is aborted
    by raising [Quit] (which only ever forces aborts — agreement-safe)
    while the durable announcements the crashed attempt published remain
    adoptable by the survivors. Both recovery writes are idempotent, so
    crash-during-recovery converges.

    [~volatile_announce:true] builds the {e deliberately unsound}
    variant with volatile announcement arrays [(Ai)] — the instructive
    failure the recovery fuzzer hunts (workload
    [recoverable-bakery-volatile]): a crash wipes every in-flight
    announcement, after which two survivors can both pass their clean
    checks against an empty array and commit different values. *)

open Scs_composable

type 'v phase = P_idle | P_run of 'v option

module Make (P : Scs_prims.Prims_intf.S) : sig
  type nonrec 'v phase = 'v phase = P_idle | P_run of 'v option
  type 'v t

  val create : name:string -> ?volatile_announce:bool -> n:int -> unit -> 'v t
  (** [n] is the number of processes (pids [0 .. n-1]).
      [volatile_announce] (default [false]) makes the [(Ai)] array
      volatile — the unsound variant described above. *)

  val propose : 'v t -> pid:int -> 'v option -> ('v option, 'v option) Outcome.t

  val recover : 'v t -> pid:int -> ('v option, 'v option) Outcome.t option
  (** Recovery entry point for [pid]: [None] when no operation was in
      flight at the crash, otherwise aborts the interrupted proposal
      (raising [Quit]) and returns [Abort] carrying the current durable
      decision as switch value. Idempotent under repeated crashes. *)

  val decision : 'v t -> 'v option
  (** Current durable decision (diagnostic). *)

  val instance : 'v t -> 'v Consensus_intf.t
end
