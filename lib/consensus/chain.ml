open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  let make ?(on_handoff = fun ~pid:_ ~stage:_ -> ()) ~name instances =
    if instances = [] then invalid_arg "Chain.make: empty instance list";
    let stages = Array.of_list instances in
    let k_stages = Array.length stages in
    let moved =
      Array.init k_stages (fun k -> P.reg ~name:(Printf.sprintf "%s.moved[%d]" name k) false)
    in
    (* Leave stage [k]: raise the flag first, then probe, so that any
       stage-[k] committer that returns after our probe is forced to see
       the flag and downgrade. *)
    let leave ~pid k =
      P.write moved.(k) true;
      Consensus_intf.probe stages.(k) ~pid
    in
    let run ~pid ~old v =
      let rec go k old =
        if k >= k_stages then Outcome.Abort old
        else begin
          match stages.(k).Consensus_intf.run ~pid ~old v with
          | Outcome.Commit (Some d) ->
              if P.read moved.(k) then
                (* someone may have probed before our decision landed:
                   carry d forward instead of returning it *)
                go (k + 1) (Some d)
              else Outcome.Commit (Some d)
          | Outcome.Commit None ->
              (* only possible when v itself went unproposed (probe-like
                 call); treat as an undecided pass-through *)
              if P.read moved.(k) then go (k + 1) old else Outcome.Commit None
          | Outcome.Abort _ ->
              on_handoff ~pid ~stage:k;
              let est = leave ~pid k in
              let inherited = match est with Some _ -> est | None -> old in
              go (k + 1) inherited
        end
      in
      go 0 old
    in
    (* Probing consults stages in reverse: a decision at stage [k+1] is
       authoritative over a "ghost" decision at stage [k] that every
       committer downgraded (each such committer carried its value
       forward, but stage [k+1] may have decided differently). *)
    let propose_raw ~pid = function
      | None ->
          let rec probe_stages k =
            if k < 0 then Outcome.Commit None
            else begin
              match Consensus_intf.probe stages.(k) ~pid with
              | Some _ as v -> Outcome.Commit v
              | None -> probe_stages (k - 1)
            end
          in
          probe_stages (k_stages - 1)
      | Some v -> run ~pid ~old:None v
    in
    { Consensus_intf.name; propose_raw; run }
end
