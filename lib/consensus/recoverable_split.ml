open Scs_composable

type 'v phase = P_idle | P_run of 'v option | P_won of 'v option

module Make (P : Scs_prims.Prims_intf.S) = struct
  type nonrec 'v phase = 'v phase = P_idle | P_run of 'v option | P_won of 'v option

  (* The splitter is inlined rather than reused from {!Splitter} so that
     its door [X] can be volatile: [X] only ever *denies* a Stop after a
     wipe (a read can return [None] or a later writer, never the stale
     [Some pid] a Stop needs), so crashes lose at most liveness there.
     [Y] must be durable — forgetting that the door was consumed would
     let a second process Stop in the same era. *)
  type 'v t = {
    x : int option P.reg;  (** volatile splitter door *)
    y : bool P.reg;  (** durable splitter latch *)
    v : 'v option P.reg;  (** durable tentative decision; [None] is ⊥ *)
    c : bool P.reg;  (** durable contention flag *)
    phase : 'v phase P.reg array;  (** durable per-process recovery phase *)
    name : string;
  }

  let create ~name ~n () =
    {
      x = P.volatile_reg ~name:(name ^ ".X") None;
      y = P.reg ~name:(name ^ ".Y") false;
      v = P.reg ~name:(name ^ ".V") None;
      c = P.reg ~name:(name ^ ".C") false;
      phase =
        Array.init n (fun i -> P.reg ~name:(Printf.sprintf "%s.Ph[%d]" name i) P_idle);
      name;
    }

  let split t ~pid =
    P.write t.x (Some pid);
    if P.read t.y then Splitter.Right
    else begin
      P.write t.y true;
      if P.read t.x = Some pid then Splitter.Stop else Splitter.Left
    end

  let reset_splitter t =
    P.write t.x None;
    P.write t.y false

  (* Algorithm 3 with a durable write-ahead phase: [Ph[pid] := P_run v]
     before touching shared state, [P_won v] before the decision write,
     [P_idle] after the response escapes. A crash therefore always finds
     the phase describing exactly what [recover] must redo. *)
  let propose t ~pid (v : 'v option) =
    P.write t.phase.(pid) (P_run v);
    let result =
      if split t ~pid = Splitter.Stop then begin
        match P.read t.v with
        | Some _ as cur ->
            if not (P.read t.c) then begin
              reset_splitter t;
              Outcome.Commit cur
            end
            else Outcome.Abort cur
        | None ->
            P.write t.phase.(pid) (P_won v);
            P.write t.v v;
            if not (P.read t.c) then begin
              reset_splitter t;
              Outcome.Commit v
            end
            else Outcome.Abort (P.read t.v)
      end
      else begin
        P.write t.c true;
        Outcome.Abort (P.read t.v)
      end
    in
    P.write t.phase.(pid) P_idle;
    result

  (* Idempotent recovery: every step either re-reads durable state or
     re-writes the value it already wrote, so crashing *during* recovery
     and recovering again converges to the same outcome.

     - [P_idle]: no operation was in flight; nothing to do.
     - [P_run _]: the crash interrupted an undistinguished proposal.
       Raising [C] declares the crash as contention (only ever making
       others abort — always safe), and the operation aborts with the
       current tentative decision as its switch value.
     - [P_won v]: the process had won the splitter and committed to
       deciding [v], so the decision write is re-executed. No other
       process can have decided differently in between: [Y] is durable,
       so while the winner was down every split returns Right and the
       splitter is only reset once a decision exists. *)
  let recover t ~pid =
    match P.read t.phase.(pid) with
    | P_idle -> None
    | P_run _ ->
        P.write t.c true;
        P.write t.phase.(pid) P_idle;
        Some (Outcome.Abort (P.read t.v))
    | P_won v ->
        (match P.read t.v with Some _ -> () | None -> P.write t.v v);
        let out =
          if not (P.read t.c) then begin
            reset_splitter t;
            Outcome.Commit (P.read t.v)
          end
          else Outcome.Abort (P.read t.v)
        in
        P.write t.phase.(pid) P_idle;
        Some out

  let decision t = P.read t.v
  let instance t = Consensus_intf.wrap ~name:t.name (fun ~pid v -> propose t ~pid v)
end
