open Scs_composable

type 'v phase = P_idle | P_run of 'v option

module Make (P : Scs_prims.Prims_intf.S) = struct
  type nonrec 'v phase = 'v phase = P_idle | P_run of 'v option

  (* The base AbortableBakery state is durable: the arrays [(Ai)]/[(Bi)]
     are the algorithm's announcement record (losing an announcement
     while its clean checks may still pass breaks agreement — see the
     deliberately unsound [~volatile_announce:true] variant), [Quit]
     only forces aborts, and [Dec] moves ⊥ → [Some v] once.

     [hint.(pid)] is the one legitimately volatile piece: a per-process
     cache of "this instance is decided". It is only ever used to
     short-circuit into a durable [Dec] read — a wiped (or stale-empty)
     hint merely sends the proposer down the slow path, and a set hint
     commits only what [Dec] itself says — so the cache can never
     manufacture a decision the durable state does not hold. *)
  type 'v t = {
    a : (int * 'v option) option P.reg array;
    b : (int * 'v option) option P.reg array;
    quit : bool P.reg;
    dec : 'v option P.reg;
    phase : 'v phase P.reg array;
    hint : bool P.reg array;  (** volatile decided-hint, one per process *)
    name : string;
  }

  let create ~name ?(volatile_announce = false) ~n () =
    let announce_reg = if volatile_announce then P.volatile_reg else P.reg in
    {
      a =
        Array.init n (fun i ->
            announce_reg ~name:(Printf.sprintf "%s.A[%d]" name i) None);
      b = Array.init n (fun i -> P.reg ~name:(Printf.sprintf "%s.B[%d]" name i) None);
      quit = P.reg ~name:(name ^ ".Quit") false;
      dec = P.reg ~name:(name ^ ".Dec") None;
      phase =
        Array.init n (fun i -> P.reg ~name:(Printf.sprintf "%s.Ph[%d]" name i) P_idle);
      hint =
        Array.init n (fun i ->
            P.volatile_reg ~name:(Printf.sprintf "%s.H[%d]" name i) false);
      name;
    }

  let collect arr = Array.to_list (Array.map P.read arr)

  let entries collected =
    List.filter_map (function Some (k, Some v) -> Some (k, v) | _ -> None) collected

  let minimal_k collected =
    match entries collected with
    | [] -> 0
    | es ->
        let kmax = List.fold_left (fun m (k, _) -> max m k) 0 es in
        let at_kmax = List.filter_map (fun (k, v) -> if k = kmax then Some v else None) es in
        let conflict =
          match at_kmax with [] -> false | v :: rest -> List.exists (fun u -> u <> v) rest
        in
        if conflict then kmax + 1 else kmax

  let clean_at collected ~k ~v =
    List.for_all (fun (k', v') -> k' < k || (k' = k && Some v' = v)) (entries collected)

  (* Algorithm 4 with a durable write-ahead phase and the volatile
     decided-hint fast path. The slow path is the base algorithm
     verbatim; on a real decision it arms the caller's hint. *)
  let propose t ~pid (input : 'v option) =
    P.write t.phase.(pid) (P_run input);
    let result =
      if P.read t.hint.(pid) then
        (* hint says decided: commit whatever the durable [Dec] holds —
           never the hint's own (wiped-away-able) knowledge *)
        match P.read t.dec with
        | Some _ as d -> Outcome.Commit d
        | None -> Outcome.Abort None (* unreachable: hints are armed after Dec *)
      else begin
        let va = collect t.a in
        let ki = minimal_k va in
        let vi =
          match
            List.find_map (fun (k, v) -> if k = ki then Some v else None) (entries va)
          with
          | Some v -> Some v
          | None -> (
              match entries (collect t.b) with
              | [] -> input
              | (k0, v0) :: rest ->
                  let _, v =
                    List.fold_left
                      (fun (km, vm) (k, v) -> if k > km then (k, v) else (km, vm))
                      (k0, v0) rest
                  in
                  Some v)
        in
        P.write t.a.(pid) (Some (ki, vi));
        let ok1 = clean_at (collect t.a) ~k:ki ~v:vi in
        let committed =
          ok1
          && begin
               P.write t.b.(pid) (Some (ki, vi));
               clean_at (collect t.a) ~k:ki ~v:vi && not (P.read t.quit)
             end
        in
        if committed then begin
          (match vi with
          | Some _ ->
              P.write t.dec vi;
              P.write t.hint.(pid) true
          | None -> ());
          Outcome.Commit vi
        end
        else begin
          P.write t.quit true;
          Outcome.Abort (P.read t.dec)
        end
      end
    in
    P.write t.phase.(pid) P_idle;
    result

  (* Recovery aborts the interrupted proposal: raising [Quit] only
     forces aborts (always agreement-safe), and the durable [(Ai)]/[(Bi)]
     entries the crashed attempt already published stay visible, so any
     value it may have helped impose is still adoptable. Idempotent —
     both writes redo themselves under a crash-during-recovery. *)
  let recover t ~pid =
    match P.read t.phase.(pid) with
    | P_idle -> None
    | P_run _ ->
        P.write t.quit true;
        P.write t.phase.(pid) P_idle;
        Some (Outcome.Abort (P.read t.dec))

  let decision t = P.read t.dec
  let instance t = Consensus_intf.wrap ~name:t.name (fun ~pid v -> propose t ~pid v)
end
