(** Composition of abortable consensus instances into a single consensus
    whose fast path costs only the cheap stages.

    A naive hand-off (abort stage [k], propose your own value at stage
    [k+1]) is unsafe: a slow process can still commit at stage [k] after
    others have moved on, and disagree with stage [k+1]'s decision. The
    chain therefore applies, per stage, the same flag discipline the
    paper's universal construction applies with its [Aborted] register:

    - a process leaving stage [k] first writes [moved[k] := true], then
      probes stage [k] for its best-known decision, which becomes the
      inherited value it proposes at stage [k+1];
    - a process that commits [d] at stage [k] then reads [moved[k]]: if the
      flag is clear it may return [d] — by the flag principle every later
      prober is guaranteed to observe [d] — and if the flag is set it
      downgrades its commit to a switch, carrying [d] to stage [k+1].

    Agreement: if any process returns a stage-[k] decision [d], every
    process that moves past [k] inherits [d], so stage [k+1] can only
    decide [d]. If the final stage is wait-free (e.g. {!Cas_consensus})
    the chain never aborts; [moved] is never set for the last stage, so
    its commits always stand. *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  val make :
    ?on_handoff:(pid:int -> stage:int -> unit) ->
    name:string ->
    'v Consensus_intf.t list ->
    'v Consensus_intf.t
  (** The stage list must be non-empty. The result's [run]/[propose_raw]
      follow {!Consensus_intf}'s conventions; probing consults stages in
      order. [on_handoff] (default a no-op) is invoked each time a
      process leaves an aborted stage [k] carrying its inherited value to
      stage [k+1] — the composition's switch-value handoff — so harnesses
      can count handoffs without instrumenting the simulator (the native
      load harness's per-domain counters hang off this hook). *)
end
