open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  (* Array slots hold (timestamp, value) pairs; [None] is the initial ⊥.
     The proposed values are themselves options ('v option), so that the
     wrapper can run the ⊥ phase of [init]. *)
  type 'v t = {
    a : (int * 'v option) option P.reg array;
    b : (int * 'v option) option P.reg array;
    quit : bool P.reg;
    dec : 'v option P.reg;
    name : string;
  }

  let create ~name ~n () =
    {
      a = Array.init n (fun i -> P.reg ~name:(Printf.sprintf "%s.A[%d]" name i) None);
      b = Array.init n (fun i -> P.reg ~name:(Printf.sprintf "%s.B[%d]" name i) None);
      quit = P.reg ~name:(name ^ ".Quit") false;
      dec = P.reg ~name:(name ^ ".Dec") None;
      name;
    }

  let collect arr = Array.to_list (Array.map P.read arr)

  (* ⊥-valued entries — written by the wrapper's initial ⊥ phase — are
     invisible everywhere: they are not decisions, must not be adopted,
     and must not fail the cleanliness checks (a crashed process's ⊥
     entry would otherwise poison the instance and break obstruction-free
     progress). *)
  let entries collected =
    List.filter_map (function Some (k, Some v) -> Some (k, v) | _ -> None) collected

  (* The minimal k such that the collect contains no timestamp above k and
     no two distinct values at k: the maximal timestamp if all its values
     agree, one above it otherwise, and 0 on an empty collect. *)
  let minimal_k collected =
    match entries collected with
    | [] -> 0
    | es ->
        let kmax = List.fold_left (fun m (k, _) -> max m k) 0 es in
        let at_kmax = List.filter_map (fun (k, v) -> if k = kmax then Some v else None) es in
        let conflict =
          match at_kmax with [] -> false | v :: rest -> List.exists (fun u -> u <> v) rest
        in
        if conflict then kmax + 1 else kmax

  let clean_at collected ~k ~v =
    List.for_all (fun (k', v') -> k' < k || (k' = k && Some v' = v)) (entries collected)

  (* Algorithm 4, [propose]. Adoption skips ⊥-valued entries (written by
     the wrapper's ⊥ phase): adopting ⊥ would let the instance decide ⊥
     forever and starve the real second-phase proposal. *)
  let propose t ~pid (input : 'v option) =
    let va = collect t.a in
    let ki = minimal_k va in
    let vi =
      match List.find_map (fun (k, v) -> if k = ki then Some v else None) (entries va) with
      | Some v -> Some v
      | None -> (
          match entries (collect t.b) with
          | [] -> input
          | (k0, v0) :: rest ->
              let _, v =
                List.fold_left (fun (km, vm) (k, v) -> if k > km then (k, v) else (km, vm))
                  (k0, v0) rest
              in
              Some v)
    in
    P.write t.a.(pid) (Some (ki, vi));
    let ok1 = clean_at (collect t.a) ~k:ki ~v:vi in
    let committed =
      ok1
      && begin
           P.write t.b.(pid) (Some (ki, vi));
           clean_at (collect t.a) ~k:ki ~v:vi && not (P.read t.quit)
         end
    in
    if committed then begin
      (* a ⊥-phase commit is not a decision: writing [Dec := None] here
         could clobber a real decision that landed concurrently, and the
         chain's leave-probe reads [Dec] to learn exactly that decision
         (found by schedule fuzzing: sticky policy, n = 3). Mirror
         Split_consensus: [Dec] moves ⊥ → [Some v] only. *)
      (match vi with Some _ -> P.write t.dec vi | None -> ());
      Outcome.Commit vi
    end
    else begin
      P.write t.quit true;
      Outcome.Abort (P.read t.dec)
    end

  let instance t = Consensus_intf.wrap ~name:t.name (fun ~pid v -> propose t ~pid v)
end
