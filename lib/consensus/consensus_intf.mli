(** Uniform interface to abortable consensus instances.

    An abortable consensus instance returns a commit or abort indication
    together with a decision value (Section 4.2). [⊥] is represented as
    [None]:
    - [Commit (Some d)] — the instance decided [d];
    - [Commit None] — the caller proposed [⊥] on an undecided instance (a
      probe, or initialisation with no inherited value), deciding nothing;
    - [Abort w] — contention: [w] is the instance's current tentative value
      ([None] when it has none).

    [run] is the paper's wrapper (the [SplitConsensus]/[AbortableBakery]
    procedures of Appendix A): first propose the inherited value [old];
    on abort return [Abort old]; on [Commit None] propose the real value.

    Agreement: all [Commit (Some _)] outcomes of one instance carry the
    same value.

    The two Appendix A implementations trade solo cost against the
    contention class that can force an abort — the trade-off T13 and
    [scs stats] measure with the {!Scs_obs.Obs} sink:

    - [SplitConsensus]: O(1) steps solo, but may abort under {e interval
      contention} (a concurrent operation merely pending);
    - [AbortableBakery]: Θ(n) steps solo, aborts only under {e step
      contention} (another process actually taking steps inside the
      interval).

    Both progress guarantees are {e run-level}, not per-operation: each
    implementation latches contention in shared state ([C], [Quit]), so
    one contended interval can abort later, individually-uncontended
    operations. The checkable invariant is "a run whose measured maximal
    interval contention is 0 has no aborts" (asserted by T13). *)

open Scs_composable

type 'v t = {
  name : string;
  propose_raw : pid:int -> 'v option -> ('v option, 'v option) Outcome.t;
      (** the bare [propose] procedure *)
  run : pid:int -> old:'v option -> 'v -> ('v option, 'v option) Outcome.t;
      (** the [init]+[propose] wrapper *)
}

val wrap :
  name:string -> (pid:int -> 'v option -> ('v option, 'v option) Outcome.t) -> 'v t
(** Build the standard wrapper around a bare [propose]. *)

val probe : 'v t -> pid:int -> 'v option
(** Best-known decision value: propose [⊥] and take the returned value,
    whether committed or aborted (Section 4.2's recovery read). *)
