type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  buf

let to_string ?indent v = Buffer.contents (to_string ?indent v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* ASCII range only; anything above is replaced. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?';
              loop ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then fail "expected number"
    else if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_stringv = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
