(** Growable arrays (OCaml 5.1 predates stdlib [Dynarray]).

    Used heavily by the simulator for trace recording, where events arrive
    one at a time and the final length is unknown. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate t len] drops elements past [len] (keeps the storage).
    Raises [Invalid_argument] if [len < 0] or [len > length t]. *)

val reserve : 'a t -> int -> 'a -> unit
(** [reserve t cap fill] pre-sizes the backing store to at least [cap]
    slots so subsequent pushes up to [cap] never reallocate. [fill]
    seeds the storage if none has been allocated yet; slots beyond
    [length t] are never read back. *)

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val last : 'a t -> 'a option
