type 'a t = { mutable data : 'a array; mutable len : int }

(* The capacity hint is accepted for interface stability; storage is
   allocated lazily on first push because we need a seed element. *)
let create ?capacity:_ () = { data = [||]; len = 0 }

let length t = t.len

let grow t needed =
  let cap = Array.length t.data in
  if needed > cap then begin
    let ncap = max needed (max 16 (2 * cap)) in
    (* The fill element is only a placeholder; slots beyond [len] are never
       read. *)
    let fresh = Array.make ncap t.data.(0) in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let push t x =
  if Array.length t.data = 0 then begin
    t.data <- Array.make 16 x;
    t.len <- 1
  end
  else begin
    grow t (t.len + 1);
    t.data.(t.len) <- x;
    t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let clear t = t.len <- 0

let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Vec.truncate: bad length";
  t.len <- len

(* Pre-size the backing store so a burst of pushes triggers no growth;
   [fill] seeds the storage when none has been allocated yet (slots
   beyond [len] are never read back). *)
let reserve t cap fill =
  if cap > Array.length t.data then
    if Array.length t.data = 0 then t.data <- Array.make (max cap 16) fill
    else grow t cap

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)
