(** Minimal JSON values: just enough to emit and re-read the bench
    trajectory files ([BENCH_*.json], see [docs/metrics.md]) without
    adding a dependency. Supports the JSON subset those files use —
    objects, arrays, strings, floats/ints, booleans, null — with string
    escaping on output and a recursive-descent parser on input. Not a
    general-purpose JSON library: no unicode escapes beyond [\uXXXX]
    pass-through on parse, no streaming. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Render a value. [indent] (default [true]) pretty-prints with
    two-space indentation — the format committed in [BENCH_*.json]. *)

val of_string : string -> (t, string) result
(** Parse. Numbers without [.], [e] or [E] become [Int]; everything
    else numeric becomes [Float]. Errors carry a character offset. *)

(** {2 Accessors}

    All return [None] on shape mismatch rather than raising, so schema
    validation code reads as a pipeline of option binds. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to key [k], if any. *)

val to_list : t -> t list option
val to_stringv : t -> string option
val to_int : t -> int option

val to_float : t -> float option
(** Accepts both [Int] and [Float] (JSON does not distinguish). *)
