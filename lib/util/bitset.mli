(** Growable bitvector, [Bytes]-backed.

    Replaces word-sized [int] bitmasks where more than 62 bits are
    needed (the linearizability checker's linearized-operation set).
    All bits start cleared; [set] grows the backing buffer on demand
    (amortised doubling), [test]/[clear] beyond the current capacity are
    a no-op read of 0. Capacity is an implementation detail: two sets
    holding the same bits are [equal] and [hash] alike even if their
    buffers differ in length. Not thread-safe. *)

type t

val create : bits:int -> t
(** Fresh all-zero set pre-sized for [bits] bits (grows beyond on demand). *)

val capacity : t -> int
(** Current capacity in bits (a multiple of 8). *)

val set : t -> int -> unit
val clear : t -> int -> unit
val test : t -> int -> bool
val copy : t -> t

val reset : t -> unit
(** Clear every bit, keeping the allocated capacity (arena reuse). *)

val equal : t -> t -> bool
(** Bit-for-bit equality, ignoring trailing zeros / capacity. *)

val hash : t -> int
(** Content hash consistent with {!equal} (FNV-1a over significant bytes). *)

val popcount : t -> int
(** Number of set bits. *)
