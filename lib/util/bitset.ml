(* Growable bitvector backed by Bytes. Bit [i] lives in byte [i lsr 3],
   position [i land 7]; trailing zero bytes are insignificant, so values
   that differ only in allocated capacity compare equal and hash alike. *)

type t = { mutable data : Bytes.t }

let create ~bits = { data = Bytes.make ((max bits 1 + 7) lsr 3) '\000' }

let capacity t = Bytes.length t.data lsl 3

let ensure t nbytes =
  let len = Bytes.length t.data in
  if nbytes > len then begin
    let data = Bytes.make (max nbytes (2 * len)) '\000' in
    Bytes.blit t.data 0 data 0 len;
    t.data <- data
  end

let set t i =
  ensure t ((i lsr 3) + 1);
  let b = i lsr 3 in
  Bytes.unsafe_set t.data b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.data b) lor (1 lsl (i land 7))))

let clear t i =
  let b = i lsr 3 in
  if b < Bytes.length t.data then
    Bytes.unsafe_set t.data b
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.data b) land lnot (1 lsl (i land 7))))

let test t i =
  let b = i lsr 3 in
  b < Bytes.length t.data
  && Char.code (Bytes.unsafe_get t.data b) land (1 lsl (i land 7)) <> 0

let copy t = { data = Bytes.copy t.data }

let reset t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

(* index just past the last nonzero byte: the significant prefix *)
let significant data =
  let n = ref (Bytes.length data) in
  while !n > 0 && Bytes.unsafe_get data (!n - 1) = '\000' do
    decr n
  done;
  !n

let equal a b =
  let la = significant a.data and lb = significant b.data in
  la = lb
  &&
  let i = ref 0 in
  while !i < la && Bytes.unsafe_get a.data !i = Bytes.unsafe_get b.data !i do
    incr i
  done;
  !i = la

(* FNV-1a over the significant prefix: no allocation, zero-extension
   invariant (equal sets hash equally regardless of capacity). *)
let hash t =
  let n = significant t.data in
  let h = ref 0x811C9DC5 in
  for i = 0 to n - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get t.data i)) * 0x01000193
  done;
  !h land max_int

let popcount t =
  let n = Bytes.length t.data in
  let c = ref 0 in
  for i = 0 to n - 1 do
    let b = ref (Char.code (Bytes.unsafe_get t.data i)) in
    while !b <> 0 do
      b := !b land (!b - 1);
      incr c
    done
  done;
  !c
