(** Deterministic simulator for the asynchronous shared-memory model.

    Each simulated process is an OCaml 5 effect-handler fiber. Every
    shared-memory primitive operation performs an effect carrying an
    {!Op.t}; the scheduler executes the operation atomically, accounts for
    it (steps, RMWs, RAW fences, per-object access census) and resumes the
    fiber until its next operation. A schedule policy chooses which process
    moves at each turn, which gives full, reproducible control over
    interleavings — including solo runs, crash injection, and the
    step-/interval-contention-free execution classes the paper's progress
    claims quantify over.

    Fence accounting follows the paper's reference [7] ("Laws of Order"):
    every RMW counts as one AWAR; a read that follows an earlier write of
    the same process with no intervening RMW counts as one RAW fence. *)

type t
type pid = int

exception Livelock of string
(** Raised by {!run} when the global step budget is exhausted. *)

exception Process_failure of pid * exn
(** An exception escaped a process fiber. *)

val max_processes : int
(** Hard cap on [n] (62): the runnable set is a word-sized bitmask. *)

val create : ?max_steps:int -> ?obs:Scs_obs.Obs.t -> n:int -> unit -> t
(** [create ~n ()] builds a simulator for processes [0 .. n-1]
    ([n <= max_processes]). [max_steps] (default 1_000_000) bounds total
    memory steps to catch livelocks under adversarial schedules. [obs]
    (default {!Scs_obs.Obs.null}) is an observability sink: every executed
    memory step and every injected crash is reported to it, so its
    step clock coincides with {!clock}. A disabled sink costs one
    cached boolean test per step — tracing stays off the hot path. *)

val n : t -> int
val clock : t -> int
(** Total memory steps executed so far (the global logical time). *)

val max_steps : t -> int
(** The step budget passed at {!create}. *)

(** {1 Shared objects}

    Objects must be created before [run]; creating them from inside a
    running fiber is allowed (the allocation itself is a local step). *)

type 'a reg
type tas_obj
type 'a cas_obj
type fai_obj

val reg : t -> ?volatile:bool -> name:string -> 'a -> 'a reg
(** [volatile] (default [false]) opts the register into the
    crash-recovery model's volatile tier: {e any} crash ({!crash} of any
    pid) rewinds its contents to the creation value, modelling state
    that lives in a cache or DRAM rather than persistent memory. The
    default (durable) tier is untouched by crashes — exactly the
    historic fail-stop behaviour. See [docs/recovery.md]. *)

val read : 'a reg -> 'a
val write : 'a reg -> 'a -> unit

val tas_obj : t -> name:string -> unit -> tas_obj
val test_and_set : tas_obj -> bool
(** [true] iff the caller won (the object was 0 and is now 1). One step. *)

val tas_read : tas_obj -> bool
val tas_reset : tas_obj -> unit
(** Writes 0. One (write) step. *)

val cas_obj : t -> name:string -> 'a -> 'a cas_obj
val cas_read : 'a cas_obj -> 'a
val compare_and_swap : 'a cas_obj -> expect:'a -> update:'a -> bool
(** Physical-equality compare, as with [Atomic.compare_and_set]. *)

val fai_obj : t -> name:string -> int -> fai_obj
val fetch_and_inc : fai_obj -> int
val fai_read : fai_obj -> int

type 'a swap_obj

val swap_obj : t -> name:string -> 'a -> 'a swap_obj
val swap : 'a swap_obj -> 'a -> 'a
(** Atomically exchange the value (consensus number 2). One step. *)

val swap_read : 'a swap_obj -> 'a

val pause : t -> unit
(** A deliberate stall: consumes one scheduler turn (modelled as a read of a
    per-simulator dummy object) so that spinning processes cannot starve the
    livelock fuse. *)

(** {1 Custom backend objects}

    Entry points for primitive backends implemented outside this module
    (e.g. the sequentially-consistent register backend
    [Scs_prims.Sc_prims]): allocate an object id in the simulator's
    census with a pooling reset thunk, and perform scheduled memory
    operations against it. Custom operations flow through the ordinary
    effect pipeline, so accounting, tracing, observability, footprints
    and partial-order reduction see them exactly like built-in objects.

    Soundness contract for {!footprints_commute}: a custom operation's
    [run] closure must touch only state owned by object [obj] (plus
    state private to the running process), and two [Read]-kind
    operations on the same object by different processes must commute. *)

val custom_obj : t -> ?rmw:bool -> ?wipe:(unit -> unit) -> reset:(unit -> unit) -> unit -> int
(** Allocate a fresh object id. [reset] must rewind the backing state to
    its creation value; it is replayed by {!reset} like any built-in
    object's thunk. [rmw] (default false) counts the object in the
    consensus-power census ({!rmw_objects_allocated}). [wipe], if
    given, marks the object volatile: the thunk is run by every
    {!crash}, and must rewind the backing state to whatever the model
    says a power loss leaves behind (usually the creation value). *)

val custom_op : obj:int -> obj_name:string -> kind:Op.kind -> info:string -> (unit -> 'r) -> 'r
(** Perform one scheduled memory operation: blocks the calling fiber
    until the scheduler grants it a turn, then executes the closure
    atomically and resumes with its result. Must be called from inside a
    spawned process. *)

val running_pid : t -> pid
(** The pid on whose behalf the current turn executes. Only meaningful
    from code running inside {!step} — in particular from a {!custom_op}
    closure; raises [Invalid_argument] between turns. *)

(** {1 Processes and scheduling} *)

val spawn : t -> pid -> (unit -> unit) -> unit
(** Install the code of process [pid]. A process may be spawned at most once
    per simulator. *)

val runnable : t -> pid list
(** Pids that can take a step now (spawned, not finished, not crashed). *)

val runnable_bits : t -> int
(** The runnable set as a bitmask (bit [pid] set iff [pid] is runnable).
    O(1), no allocation — the hot-path view of {!runnable}. *)

val runnable_count : t -> int
(** Number of runnable processes. O(popcount), no allocation. *)

val nth_runnable : t -> int -> pid
(** [nth_runnable t k] is the [k]-th runnable pid in ascending order,
    i.e. [List.nth (runnable t) k] without building the list. The caller
    must ensure [0 <= k < runnable_count t]. *)

val is_runnable : t -> pid -> bool
val finished : t -> pid -> bool

val is_crashed : t -> pid -> bool
(** Currently crashed (terminally, or awaiting re-admission). *)

val all_done : t -> bool

(** {1 Step footprints}

    The shared-memory footprint of the next scheduler turn of a process, used
    by {!Explore} for conflict-based partial-order reduction. A process
    blocked on a memory operation will execute exactly that operation on its
    next turn; a freshly spawned ([Ready]) process only advances through
    process-local code to its first operation, which touches no shared
    object. *)

type footprint =
  | Local  (** next turn performs no shared-memory operation *)
  | Access of int * Op.kind  (** next turn executes [kind] on object [id] *)

val footprint : t -> pid -> footprint
(** Footprint of [pid]'s next turn ([Local] for non-runnable processes). *)

val footprints_commute : footprint -> footprint -> bool
(** Two adjacent turns by different processes commute (executing them in
    either order yields the same state) unless both access the same object
    and at least one access is a write or an RMW. [Local] turns commute with
    everything. *)

val footprint_code : t -> pid -> int
(** {!footprint} packed into an int ([-1] for [Local], otherwise
    [obj * 4 + kind]) so conflict checks allocate nothing. *)

val codes_commute : int -> int -> bool
(** {!footprints_commute} on packed codes. *)

val step : t -> pid -> unit
(** Let [pid] take one scheduler turn: execute its pending memory operation
    (if any) and run it up to its next operation or completion. The first
    turn of a fresh process only advances it to its first operation. *)

val crash : ?recover_after:int -> t -> pid -> unit
(** Crash [pid]: its current fiber is abandoned and every volatile
    object is wiped to its creation value. Without [recover_after] (or
    when no recovery entry point is installed for [pid]) the crash is
    terminal — the process takes no further steps, the historic
    fail-stop model. With [recover_after:d] and a {!set_recovery} entry
    point, the process is re-admitted once the global clock has
    advanced [d] further memory steps: its recovery code starts on a
    fresh fiber (the abandoned continuation is never resumed). Crashing
    a process that is [Idle], finished or already crashed is a no-op
    (in particular, a crashed-awaiting-recovery process cannot be
    crashed again until it has been re-admitted). *)

val set_recovery : t -> pid -> (unit -> unit) -> unit
(** Install the recovery entry point of [pid], enabling crash-recovery
    for it. The code must be {e idempotent} in the algorithm's sense: it
    can run after a crash at any point of the process's execution,
    including part-way through a previous recovery. Installing again
    replaces the previous entry point; entry points survive {!reset}
    (like spawn code) and are forgotten by {!clear}. *)

val has_recovery : t -> pid -> bool

val recovery_due : t -> pid -> int option
(** [Some c]: [pid] is crashed and will be re-admitted once {!clock}
    reaches [c]. [None]: no recovery pending. *)

val pending_recoveries : t -> int
(** Number of crashed processes currently awaiting re-admission. *)

val admit_stalled_recovery : t -> bool
(** If no process is runnable but recoveries are pending, re-admit the
    earliest-due one (ties towards the smallest pid) immediately,
    without advancing the clock — the delay cannot elapse once nothing
    can advance the clock, so waiting it out is meaningless. Returns
    [true] iff a process was admitted. {!run} and {!run_fast} call this
    themselves; external drivers with their own scheduling loops (e.g.
    {!Policy.drive}) must call it wherever they test {!all_done}. *)

type decision = Sched of pid | Stop

val run : t -> (t -> decision) -> unit
(** Drive the simulation with a policy until every process is done, the
    policy answers [Stop], or the step budget trips ({!Livelock}). *)

val run_fast : t -> (t -> int) -> unit
(** Like {!run} but with the allocation-free policy protocol: the policy
    returns a runnable pid, or a negative int to stop. Semantically
    identical to {!run} with [Sched]/[Stop] boxing removed. *)

(** {1 Pooling}

    A simulator's arenas (status/counter arrays, object-reset thunks,
    trace buffer) are reusable across runs, so harness cost is paid once
    per pooled instance instead of once per schedule.

    Two rewind points are offered: {!reset} rewinds to the post-[setup]
    snapshot (objects restored to their creation values, fibers re-armed
    from their spawned code — for drivers whose workload state lives
    entirely in simulator objects), while {!clear} rewinds all the way to
    the post-[create] empty state keeping only array/buffer capacity (for
    generic workloads whose [setup] captures external mutable state and
    must therefore re-run per schedule). *)

val snapshot : t -> unit
(** Mark the current state — spawned code and allocated objects — as the
    reset point. Must be called before the first step (every process
    still [Idle] or freshly spawned); raises [Invalid_argument]
    otherwise. *)

val reset : t -> unit
(** Rewind to the {!snapshot} point: every snapshotted object back to its
    creation value, objects allocated after the snapshot dropped, fibers
    re-armed from their spawn code, clock/step/fence counters zeroed and
    the trace buffer cleared (capacity kept). The obs sink is not touched
    — it keeps accumulating across runs, as when driving fresh
    simulators. Safe after any outcome, including {!Livelock} and
    {!Process_failure} (abandoned continuations are garbage-collected).
    Raises [Invalid_argument] if no snapshot was taken.

    Soundness caveat: [reset] rewinds simulator-owned state only. Spawn
    code whose closure mutates state outside the simulator (recorders,
    rngs, accumulators) must be re-armed by the caller. *)

val clear : t -> unit
(** Rewind to the post-[create] state: no processes spawned, no objects,
    counters zeroed, any snapshot forgotten — but every arena keeps its
    capacity, so a subsequent [setup]+run allocates almost nothing. The
    obs sink is not touched. *)

(** {1 Accounting} *)

val steps_of : t -> pid -> int
val total_steps : t -> int
val rmws_of : t -> pid -> int
val raw_fences_of : t -> pid -> int
val total_rmws : t -> int
val total_raw_fences : t -> int
val objects_allocated : t -> int
(** Number of base objects (registers + RMW objects) created so far: the
    space-complexity census. *)

val rmw_objects_allocated : t -> int
(** Number of RMW-capable base objects created: consensus-power census. *)

val recoveries_of : t -> pid -> int
val total_recoveries : t -> int
(** Re-admissions after a crash, this run (zeroed by {!reset}/{!clear}). *)

val volatile_objects_allocated : t -> int
(** Number of objects in the volatile tier (wiped by every crash). *)

val reset_counters : t -> unit
(** Zero step/fence/RMW counters (object census is preserved). Used to
    measure a window of an execution, e.g. one operation of a long-lived
    object. *)

(** {1 Tracing} *)

val obs : t -> Scs_obs.Obs.t
(** The observability sink passed at {!create} ({!Scs_obs.Obs.null} if
    none was). *)

val set_trace : t -> bool -> unit
val trace : t -> Mem_event.t list
val trace_arr : t -> Mem_event.t array
