open Scs_util

type t = Sim.t -> Sim.decision

exception Replay_drift of int

let pick_runnable sim = match Sim.runnable sim with [] -> None | p :: _ -> Some p

let round_robin () =
  let last = ref (-1) in
  fun sim ->
    let n = Sim.n sim in
    let rec find k =
      if k > n then Sim.Stop
      else begin
        let cand = (!last + k) mod n in
        if Sim.is_runnable sim cand then begin
          last := cand;
          Sim.Sched cand
        end
        else find (k + 1)
      end
    in
    find 1

let random rng sim =
  match Sim.runnable sim with
  | [] -> Sim.Stop
  | ps -> Sim.Sched (Rng.pick_list rng ps)

let weighted rng weights sim =
  let ps = List.filter (fun p -> p < Array.length weights && weights.(p) > 0.0) (Sim.runnable sim) in
  match ps with
  | [] -> Sim.Stop
  | ps ->
      let total = List.fold_left (fun acc p -> acc +. weights.(p)) 0.0 ps in
      let x = Rng.float rng *. total in
      let rec go acc = function
        | [] -> Sim.Stop
        | [ p ] -> Sim.Sched p
        | p :: rest ->
            let acc = acc +. weights.(p) in
            if x < acc then Sim.Sched p else go acc rest
      in
      go 0.0 ps

let sticky rng ~switch_prob =
  let current = ref None in
  fun sim ->
    let pick () =
      match Sim.runnable sim with
      | [] -> Sim.Stop
      | ps ->
          let p = Rng.pick_list rng ps in
          current := Some p;
          Sim.Sched p
    in
    match !current with
    | Some p when Sim.is_runnable sim p && not (Rng.bernoulli rng switch_prob) -> Sim.Sched p
    | _ -> pick ()

(* PCT (probabilistic concurrency testing, Burckhardt et al., ASPLOS'10):
   distinct random priorities, always run the highest-priority runnable
   process, and at [k - 1] turn indices drawn uniformly from [1, depth]
   demote the process about to run below every other priority. Bugs that
   need few preemptions are found with probability >= 1/(n * depth^(k-1)),
   independent of how rare they are under uniform random scheduling. *)
let pct rng ~k ~depth =
  let prio = ref [||] in
  let change_at = ref [] in
  let turn = ref 0 in
  fun sim ->
    if Array.length !prio = 0 then begin
      let n = Sim.n sim in
      let a = Array.init n (fun i -> i + 1) in
      Rng.shuffle rng a;
      prio := a;
      change_at := List.init (max 0 (k - 1)) (fun _ -> 1 + Rng.int rng (max 1 depth))
    end;
    match Sim.runnable sim with
    | [] -> Sim.Stop
    | p :: ps ->
        incr turn;
        let best =
          List.fold_left (fun b q -> if (!prio).(q) > (!prio).(b) then q else b) p ps
        in
        (* demotion below every initial priority; later demotions go lower
           still, so demoted processes keep their relative order *)
        if List.mem !turn !change_at then (!prio).(best) <- - !turn;
        Sim.Sched best

let solo pid sim = if Sim.is_runnable sim pid then Sim.Sched pid else Sim.Stop

let sequential () =
 fun sim ->
  match Sim.runnable sim with [] -> Sim.Stop | p :: _ -> Sim.Sched p

let scripted ?(strict = false) script =
  let i = ref 0 in
  fun sim ->
    let rec go () =
      if !i >= Array.length script then Sim.Stop
      else begin
        let p = script.(!i) in
        incr i;
        if Sim.is_runnable sim p then Sim.Sched p
        else if strict then raise (Replay_drift p)
        else go ()
      end
    in
    go ()

let scripted_then ?(strict = false) script fallback =
  let i = ref 0 in
  fun sim ->
    let rec go () =
      if !i >= Array.length script then fallback sim
      else begin
        let p = script.(!i) in
        incr i;
        if Sim.is_runnable sim p then Sim.Sched p
        else if strict then raise (Replay_drift p)
        else go ()
      end
    in
    go ()

let with_crashes crashes inner =
  let pending = ref crashes in
  fun sim ->
    pending :=
      List.filter
        (fun (p, k) ->
          if Sim.steps_of sim p >= k then begin
            Sim.crash sim p;
            false
          end
          else true)
        !pending;
    inner sim

let stop_when pred inner = fun sim -> if pred sim then Sim.Stop else inner sim

let capture buf inner sim =
  match inner sim with
  | Sim.Stop -> Sim.Stop
  | Sim.Sched p as d ->
      Vec.push buf p;
      d
