open Scs_util

type t = Sim.t -> Sim.decision

exception Replay_drift of int

let pick_runnable sim = match Sim.runnable sim with [] -> None | p :: _ -> Some p

let round_robin () =
  let last = ref (-1) in
  fun sim ->
    let n = Sim.n sim in
    let rec find k =
      if k > n then Sim.Stop
      else begin
        let cand = (!last + k) mod n in
        if Sim.is_runnable sim cand then begin
          last := cand;
          Sim.Sched cand
        end
        else find (k + 1)
      end
    in
    find 1

let random rng sim =
  match Sim.runnable sim with
  | [] -> Sim.Stop
  | ps -> Sim.Sched (Rng.pick_list rng ps)

let weighted rng weights sim =
  let ps = List.filter (fun p -> p < Array.length weights && weights.(p) > 0.0) (Sim.runnable sim) in
  match ps with
  | [] -> Sim.Stop
  | ps ->
      let total = List.fold_left (fun acc p -> acc +. weights.(p)) 0.0 ps in
      let x = Rng.float rng *. total in
      let rec go acc = function
        | [] -> Sim.Stop
        | [ p ] -> Sim.Sched p
        | p :: rest ->
            let acc = acc +. weights.(p) in
            if x < acc then Sim.Sched p else go acc rest
      in
      go 0.0 ps

let sticky rng ~switch_prob =
  let current = ref None in
  fun sim ->
    let pick () =
      match Sim.runnable sim with
      | [] -> Sim.Stop
      | ps ->
          let p = Rng.pick_list rng ps in
          current := Some p;
          Sim.Sched p
    in
    match !current with
    | Some p when Sim.is_runnable sim p && not (Rng.bernoulli rng switch_prob) -> Sim.Sched p
    | _ -> pick ()

(* PCT (probabilistic concurrency testing, Burckhardt et al., ASPLOS'10):
   distinct random priorities, always run the highest-priority runnable
   process, and at [k - 1] turn indices drawn uniformly from [1, depth]
   demote the process about to run below every other priority. Bugs that
   need few preemptions are found with probability >= 1/(n * depth^(k-1)),
   independent of how rare they are under uniform random scheduling. *)
let pct rng ~k ~depth =
  let prio = ref [||] in
  let change_at = ref [] in
  let turn = ref 0 in
  fun sim ->
    if Array.length !prio = 0 then begin
      let n = Sim.n sim in
      let a = Array.init n (fun i -> i + 1) in
      Rng.shuffle rng a;
      prio := a;
      change_at := List.init (max 0 (k - 1)) (fun _ -> 1 + Rng.int rng (max 1 depth))
    end;
    match Sim.runnable sim with
    | [] -> Sim.Stop
    | p :: ps ->
        incr turn;
        let best =
          List.fold_left (fun b q -> if (!prio).(q) > (!prio).(b) then q else b) p ps
        in
        (* demotion below every initial priority; later demotions go lower
           still, so demoted processes keep their relative order *)
        if List.mem !turn !change_at then (!prio).(best) <- - !turn;
        Sim.Sched best

let solo pid sim = if Sim.is_runnable sim pid then Sim.Sched pid else Sim.Stop

let sequential () =
 fun sim ->
  match Sim.runnable sim with [] -> Sim.Stop | p :: _ -> Sim.Sched p

let scripted ?(strict = false) script =
  let i = ref 0 in
  fun sim ->
    let rec go () =
      if !i >= Array.length script then Sim.Stop
      else begin
        let p = script.(!i) in
        incr i;
        if Sim.is_runnable sim p then Sim.Sched p
        else if strict then raise (Replay_drift p)
        else go ()
      end
    in
    go ()

let scripted_then ?(strict = false) script fallback =
  let i = ref 0 in
  fun sim ->
    let rec go () =
      if !i >= Array.length script then fallback sim
      else begin
        let p = script.(!i) in
        incr i;
        if Sim.is_runnable sim p then Sim.Sched p
        else if strict then raise (Replay_drift p)
        else go ()
      end
    in
    go ()

let with_crashes crashes inner =
  let pending = ref crashes in
  fun sim ->
    pending :=
      List.filter
        (fun (p, k) ->
          if Sim.steps_of sim p >= k then begin
            Sim.crash sim p;
            false
          end
          else true)
        !pending;
    inner sim

let with_crash_events events inner =
  (* Per-pid event queues, built lazily (the simulator's [n] is unknown
     until the first turn). Each turn fires at most the head event of
     each queue, in ascending pid order — the same firing order as
     {!with_crashes} on the historic pair lists, and exactly the order
     {!drive}'s flat plan uses. A queue's head is held back while its
     process is crashed-awaiting-recovery, so a second crash event lands
     on the recovered incarnation rather than being swallowed. *)
  let queues = ref [||] in
  fun sim ->
    let evs =
      if Array.length !queues > 0 || events = [] then !queues
      else begin
        let a = Array.make (Sim.n sim) [] in
        List.iter (fun (c : Crash.t) -> a.(c.pid) <- a.(c.pid) @ [ c ]) (Crash.canonical events);
        queues := a;
        a
      end
    in
    for p = 0 to Array.length evs - 1 do
      match evs.(p) with
      | (c : Crash.t) :: rest when Sim.steps_of sim p >= c.at && not (Sim.is_crashed sim p) ->
          Sim.crash ?recover_after:c.recover sim p;
          evs.(p) <- rest
      | _ -> ()
    done;
    inner sim

let stop_when pred inner = fun sim -> if pred sim then Sim.Stop else inner sim

let capture buf inner sim =
  match inner sim with
  | Sim.Stop -> Sim.Stop
  | Sim.Sched p as d ->
      Vec.push buf p;
      d

(* ------------------------------------------------------------------ *)
(* Allocation-free (fast) protocol                                     *)
(* ------------------------------------------------------------------ *)

(* Fast policies return a pid, or -1 for Stop, and consult the runnable
   set through the simulator's bitmask — no per-turn list or [decision]
   allocation. Each randomized fast policy consumes its Rng stream in
   exactly the same order and quantity as its boxed counterpart above,
   which is what makes pooled fast runs bit-identical to fresh boxed
   runs (checked by test_pool.ml). *)

type fast = Sim.t -> int

let stop = -1

let of_fast f sim =
  let p = f sim in
  if p >= 0 then Sim.Sched p else Sim.Stop

let to_fast t sim = match t sim with Sim.Sched p -> p | Sim.Stop -> -1

let fast_random rng sim =
  let c = Sim.runnable_count sim in
  if c = 0 then stop else Sim.nth_runnable sim (Rng.int rng c)

let fast_weighted rng weights sim =
  (* Mirrors [weighted]: filter in ascending pid order, sum in the same
     order (float addition is order-sensitive), one [Rng.float] draw iff
     some pid qualifies, last qualifying pid as the fallback. *)
  let nw = Array.length weights in
  let bits = Sim.runnable_bits sim in
  let total = ref 0.0 and count = ref 0 and last = ref (-1) in
  let b = ref bits and p = ref 0 in
  while !b <> 0 do
    if !b land 1 = 1 && !p < nw && weights.(!p) > 0.0 then begin
      total := !total +. weights.(!p);
      incr count;
      last := !p
    end;
    b := !b lsr 1;
    incr p
  done;
  if !count = 0 then stop
  else begin
    let x = Rng.float rng *. !total in
    let chosen = ref (-1) in
    let acc = ref 0.0 and b = ref bits and p = ref 0 in
    while !chosen < 0 do
      if !b land 1 = 1 && !p < nw && weights.(!p) > 0.0 then
        if !p = !last then chosen := !p
        else begin
          acc := !acc +. weights.(!p);
          if x < !acc then chosen := !p
        end;
      b := !b lsr 1;
      incr p
    done;
    !chosen
  end

let fast_sticky rng ~switch_prob =
  let current = ref (-1) in
  fun sim ->
    let cur = !current in
    if cur >= 0 && Sim.is_runnable sim cur && not (Rng.bernoulli rng switch_prob) then cur
    else begin
      let c = Sim.runnable_count sim in
      if c = 0 then stop
      else begin
        let p = Sim.nth_runnable sim (Rng.int rng c) in
        current := p;
        p
      end
    end

let fast_pct rng ~k ~depth =
  let prio = ref [||] in
  let change_at = ref [] in
  let turn = ref 0 in
  fun sim ->
    if Array.length !prio = 0 then begin
      let n = Sim.n sim in
      let a = Array.init n (fun i -> i + 1) in
      Rng.shuffle rng a;
      prio := a;
      change_at := List.init (max 0 (k - 1)) (fun _ -> 1 + Rng.int rng (max 1 depth))
    end;
    let bits = Sim.runnable_bits sim in
    if bits = 0 then stop
    else begin
      incr turn;
      let prio = !prio in
      (* first maximum in ascending pid order = the boxed fold over the
         runnable list *)
      let best = ref (-1) and b = ref bits and p = ref 0 in
      while !b <> 0 do
        if !b land 1 = 1 && (!best < 0 || prio.(!p) > prio.(!best)) then best := !p;
        b := !b lsr 1;
        incr p
      done;
      if List.mem !turn !change_at then prio.(!best) <- - !turn;
      !best
    end

let fast_solo pid sim = if Sim.is_runnable sim pid then pid else stop

let fast_sequential () =
 fun sim ->
  let bits = Sim.runnable_bits sim in
  if bits = 0 then stop
  else begin
    (* index of the lowest set bit *)
    let b = ref bits and p = ref 0 in
    while !b land 1 = 0 do
      b := !b lsr 1;
      incr p
    done;
    !p
  end

let fast_round_robin () =
  let last = ref (-1) in
  fun sim ->
    let n = Sim.n sim in
    let rec find k =
      if k > n then stop
      else begin
        let cand = (!last + k) mod n in
        if Sim.is_runnable sim cand then begin
          last := cand;
          cand
        end
        else find (k + 1)
      end
    in
    find 1

let fast_scripted ?(strict = false) script =
  let i = ref 0 in
  fun sim ->
    let rec go () =
      if !i >= Array.length script then stop
      else begin
        let p = script.(!i) in
        incr i;
        if Sim.is_runnable sim p then p
        else if strict then raise (Replay_drift p)
        else go ()
      end
    in
    go ()

(* ------------------------------------------------------------------ *)
(* Crash plans and the flat drive loop                                 *)
(* ------------------------------------------------------------------ *)

type crash_plan = { mutable cp_left : int; cp_events : Crash.t list array }

let crash_plan ~n = { cp_left = 0; cp_events = Array.make n [] }

let arm_crash_events plan events =
  Array.fill plan.cp_events 0 (Array.length plan.cp_events) [];
  plan.cp_left <- 0;
  List.iter
    (fun (c : Crash.t) ->
      plan.cp_events.(c.pid) <- plan.cp_events.(c.pid) @ [ c ];
      plan.cp_left <- plan.cp_left + 1)
    (Crash.canonical events)

let arm_crashes plan crashes = arm_crash_events plan (Crash.of_pairs crashes)

let drive ?capture ?crashes sim fast =
  let ms = Sim.max_steps sim in
  let rec loop () =
    if Sim.clock sim > ms then
      raise
        (Sim.Livelock (Printf.sprintf "step budget %d exhausted at clock %d" ms (Sim.clock sim)));
    if Sim.runnable_bits sim = 0 then ignore (Sim.admit_stalled_recovery sim);
    if Sim.runnable_bits sim <> 0 then begin
      (* fire due crash events in ascending pid order, exactly as the
         [with_crashes]/[with_crash_events] wrappers do; at most one
         event per pid per turn, and a pid's next event is held while it
         is crashed-awaiting-recovery *)
      (match crashes with
      | Some plan when plan.cp_left > 0 ->
          let evs = plan.cp_events in
          for p = 0 to Array.length evs - 1 do
            match Array.unsafe_get evs p with
            | (c : Crash.t) :: rest when Sim.steps_of sim p >= c.at && not (Sim.is_crashed sim p)
              ->
                Sim.crash ?recover_after:c.recover sim p;
                Array.unsafe_set evs p rest;
                plan.cp_left <- plan.cp_left - 1
            | _ -> ()
          done
      | _ -> ());
      let p = fast sim in
      if p >= 0 then begin
        (match capture with Some buf -> Vec.push buf p | None -> ());
        Sim.step sim p;
        loop ()
      end
    end
  in
  loop ()
