open Scs_util

exception Violation of string
exception Skip of string

type sched_kind = Uniform | Sticky of float | Weighted | Pct of int

type policy_spec = { kind : sched_kind; crash_faults : bool; crash_recover : bool }

let spec_name { kind; crash_faults; crash_recover } =
  let base =
    match kind with
    | Uniform -> "uniform"
    | Sticky p -> Printf.sprintf "sticky(%.2f)" p
    | Weighted -> "weighted"
    | Pct k -> Printf.sprintf "pct(%d)" k
  in
  if crash_recover then base ^ "+crashrec" else if crash_faults then base ^ "+crash" else base

let default_portfolio =
  [
    { kind = Uniform; crash_faults = false; crash_recover = false };
    { kind = Sticky 0.25; crash_faults = false; crash_recover = false };
    { kind = Weighted; crash_faults = false; crash_recover = false };
    { kind = Pct 3; crash_faults = false; crash_recover = false };
    { kind = Uniform; crash_faults = true; crash_recover = false };
  ]

let recover_portfolio =
  [
    { kind = Uniform; crash_faults = true; crash_recover = true };
    { kind = Sticky 0.25; crash_faults = true; crash_recover = true };
    { kind = Pct 3; crash_faults = true; crash_recover = true };
  ]

let portfolio_names =
  [ "default"; "all"; "uniform"; "sticky"; "weighted"; "pct"; "crash"; "crash-recover" ]

let portfolio_of_string = function
  | "default" | "all" -> Some default_portfolio
  | "uniform" -> Some [ { kind = Uniform; crash_faults = false; crash_recover = false } ]
  | "sticky" -> Some [ { kind = Sticky 0.25; crash_faults = false; crash_recover = false } ]
  | "weighted" -> Some [ { kind = Weighted; crash_faults = false; crash_recover = false } ]
  | "pct" -> Some [ { kind = Pct 3; crash_faults = false; crash_recover = false } ]
  | "crash" -> Some [ { kind = Uniform; crash_faults = true; crash_recover = false } ]
  | "crash-recover" -> Some recover_portfolio
  | _ -> None

type violation = {
  v_workload : string;
  v_n : int;
  v_policy : string;
  v_seed : int;
  v_schedule : int array;
  v_crashes : Crash.t list;
  v_error : string;
}

type policy_stats = {
  s_policy : string;
  s_runs : int;
  s_turns : int;
  s_violations : int;
  s_skipped : int;
  s_checked_large : int;
  s_check_wall : float;
  s_gen_wall : float;
      (** wall-clock spent generating schedules (the loop minus the
          verification flushes); critical path (max) across gen domains *)
  s_wall : float;
  s_first_failure : (int * float) option;
      (** run index and wall-clock seconds of the first violation *)
  s_step_p50 : float;
  s_step_p99 : float;  (** percentiles of per-run total memory steps *)
  s_max_contention : int;
      (** max schedule-level step contention across the batch's runs *)
}

type report = {
  r_workload : string;
  r_n : int;
  r_seed : int;
  r_stats : policy_stats list;
  r_violations : violation list;
  r_pool : Pool.stats;
      (** simulator-pool totals across all policies and gen domains
          (all-zero when [~pool:false]) *)
}

let schedules_per_sec s = if s.s_wall > 0.0 then float_of_int s.s_runs /. s.s_wall else 0.0
let gen_per_sec s = if s.s_gen_wall > 0.0 then float_of_int s.s_runs /. s.s_gen_wall else 0.0

let check_per_sec s =
  if s.s_check_wall > 0.0 then float_of_int s.s_runs /. s.s_check_wall else 0.0

(* Schedule-level step-contention of one run: for each process, the
   number of turns taken by *other* processes between its first and
   last captured turns; the run's statistic is the max over processes.
   Computed from the captured pid schedule alone, so it costs nothing
   on the simulator's hot path. Each captured turn executes at most
   one memory step, so this upper-bounds the step contention (paper
   §2) any single operation in the run can experience. *)
(* Scratch-array version: the caller owns [first]/[last]/[count]
   (length n), reused across runs so the per-run cost is O(turns) with
   no allocation. *)
let schedule_contention_into ~n ~first ~last ~count (buf : int Vec.t) =
  Array.fill first 0 n (-1);
  Array.fill last 0 n (-1);
  Array.fill count 0 n 0;
  Vec.iteri
    (fun i p ->
      if p >= 0 && p < n then begin
        if first.(p) < 0 then first.(p) <- i;
        last.(p) <- i;
        count.(p) <- count.(p) + 1
      end)
    buf;
  let m = ref 0 in
  for p = 0 to n - 1 do
    if count.(p) > 0 then begin
      let others = last.(p) - first.(p) + 1 - count.(p) in
      if others > !m then m := others
    end
  done;
  !m

let base_policy kind rng n =
  match kind with
  | Uniform -> Policy.random rng
  | Sticky p -> Policy.sticky rng ~switch_prob:p
  | Weighted ->
      (* fresh skewed positive weights per run: biased schedulers reach
         interleavings uniform sampling essentially never produces *)
      let w = Array.init n (fun _ -> float_of_int (1 lsl Rng.int rng 5)) in
      Policy.weighted rng w
  | Pct k -> Policy.pct rng ~k ~depth:(16 * n)

(* Fast counterparts, consuming the Rng stream identically — a pooled
   fast run is bit-identical to a fresh boxed run (test_pool.ml). *)
let fast_base_policy kind rng n =
  match kind with
  | Uniform -> Policy.fast_random rng
  | Sticky p -> Policy.fast_sticky rng ~switch_prob:p
  | Weighted ->
      let w = Array.init n (fun _ -> float_of_int (1 lsl Rng.int rng 5)) in
      Policy.fast_weighted rng w
  | Pct k -> Policy.fast_pct rng ~k ~depth:(16 * n)

(* Crash events for one run. With [recover = false] the Rng draws are
   exactly the historic [gen_crashes] stream (one bernoulli per pid plus
   one int per victim), so fail-stop portfolios keep their seed-for-seed
   behaviour. With [recover = true] each victim usually (3/4) gets a
   recovery delay of 0..7 further global steps, and sometimes (1/4) a
   second crash event landing on the recovered incarnation — the
   recover-during-contention interleavings the crash-recovery model is
   about. *)
let gen_crash_events ~recover rng n max_crash_steps =
  List.concat_map
    (fun p ->
      if not (Rng.bernoulli rng 0.25) then []
      else begin
        let at = 1 + Rng.int rng max_crash_steps in
        if not recover then [ Crash.terminal ~pid:p ~at ]
        else if Rng.bernoulli rng 0.75 then begin
          let first = Crash.recovering ~pid:p ~at ~after:(Rng.int rng 8) in
          if Rng.bernoulli rng 0.25 then begin
            let at2 = at + 1 + Rng.int rng max_crash_steps in
            let second =
              if Rng.bernoulli rng 0.5 then Crash.recovering ~pid:p ~at:at2 ~after:(Rng.int rng 8)
              else Crash.terminal ~pid:p ~at:at2
            in
            [ first; second ]
          end
          else [ first ]
        end
        else [ Crash.terminal ~pid:p ~at ]
      end)
    (List.init n (fun p -> p))

(* Replay a captured [(schedule, crashes)] pair against a fresh simulator.
   Strict scripting: any divergence from the recorded schedule raises
   [Policy.Replay_drift] instead of silently executing a different run.
   The crash wrapper sits outside the script, mirroring the fuzz loop
   ([with_crash_events] fires on [Sim.steps_of], which evolves identically
   for identical executed turn prefixes; recovery re-admission is
   clock-driven and therefore equally deterministic). *)
let replay ?max_steps ~n ~setup ~schedule ~crashes () =
  let sim = Sim.create ?max_steps ~n () in
  setup sim;
  Sim.run sim (Policy.with_crash_events crashes (Policy.scripted ~strict:true schedule));
  sim

let now = Unix.gettimeofday

(* Histories past the legacy 62-operation cap used to be skipped; the
   scalable checker verifies them instead, and workload checks report
   them here so fuzz stats can show the cap is really gone. A global
   atomic (snapshotted around each policy batch, whose verifications are
   joined before the snapshot is read) stays correct when checks run on
   worker domains. *)
let large_counter = Atomic.make 0
let checked_large () = Atomic.incr large_counter

(* A finished execution awaiting verification. [pd_done] runs after the
   verdict is recorded — it releases the run's pooled simulator, which
   is why a pooled simulator is never reused before its (possibly
   deferred) check has read it. *)
type pending = {
  pd_run : int;
  pd_seed : int;
  pd_schedule : int array;
  pd_crashes : Crash.t list;
  pd_check : unit -> unit;
  pd_done : unit -> unit;
}

type verdict = V_ok | V_viol of string | V_skip | V_exn of exn

(* Verify a chunk of finished runs, fanning out over [domains] OCaml
   domains when given more than one. Each run owns its sim/trace (fresh
   workload instance per run), so checks of distinct runs share no
   mutable state. Returns per-run (verdict, check-seconds) in run order. *)
let verify_chunk ~domains (chunk : pending array) =
  let one (p : pending) =
    let t0 = now () in
    let v =
      match p.pd_check () with
      | () -> V_ok
      | exception Violation msg -> V_viol msg
      | exception (Skip _ | Sim.Livelock _) -> V_skip
      | exception e -> V_exn e
    in
    (v, now () -. t0)
  in
  if domains <= 1 || Array.length chunk < 2 then Array.map one chunk
  else begin
    let results = Array.make (Array.length chunk) (V_ok, 0.0) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length chunk then begin
          results.(i) <- one chunk.(i);
          loop ()
        end
      in
      loop ()
    in
    let others =
      Array.init (min (domains - 1) (Array.length chunk - 1)) (fun _ ->
          Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join others;
    results
  end

(* Result of generating one contiguous range of runs on one domain. *)
type partial = {
  mutable p_runs : int;
  mutable p_turns : int;
  mutable p_viol : (int * violation) list;  (* (global run index, v), newest first *)
  mutable p_skipped : int;
  mutable p_check_wall : float;
  mutable p_flush_wall : float;  (* wall spent inside verification flushes *)
  mutable p_wall : float;
  mutable p_first : (int * float) option;
  p_steps : float Vec.t;
  mutable p_max_cont : int;
  p_pool : Pool.stats;
  p_obs : Scs_obs.Obs.t;  (* this domain's sink (the shared one when gen_domains = 1) *)
}

let run ?(policies = default_portfolio) ?(runs = 1000) ?time_budget
    ?(max_violations = max_int) ?(seed = 1) ?max_steps ?(max_crash_steps = 15)
    ?(check_domains = 1) ?(gen_domains = 1) ?(pool = true) ?(obs = Scs_obs.Obs.null) ~workload
    ~n ~instantiate () =
  let gen_domains = max 1 gen_domains in
  let pool_totals = Pool.zero_stats () in
  let per_policy_viols = ref [] in
  (* reverse policy order *)
  let stats =
    List.mapi
      (fun idx spec ->
        let name = spec_name spec in
        let t0 = now () in
        let large0 = Atomic.get large_counter in
        (* shared across this policy's gen domains: early stop on the
           violation budget *)
        let viol_count = Atomic.make 0 in
        (* Generate runs [lo, hi) (global indices) on one domain. For
           [dom = 0] the seed stream is exactly the legacy sequential
           stream, so [gen_domains = 1] reproduces old behaviour run for
           run. *)
        let run_range ~dom ~lo ~hi () =
          let prng = Rng.create (seed + (0x9E3779B9 * (idx + 1)) + (0x51ED270B * dom)) in
          let dobs =
            if gen_domains <= 1 || not (Scs_obs.Obs.enabled obs) then obs
            else Scs_obs.Obs.create ~ring_capacity:(Scs_obs.Obs.ring_capacity obs) ~n ()
          in
          let part =
            {
              p_runs = 0;
              p_turns = 0;
              p_viol = [];
              p_skipped = 0;
              p_check_wall = 0.0;
              p_flush_wall = 0.0;
              p_wall = 0.0;
              p_first = None;
              p_steps = Vec.create ();
              p_max_cont = 0;
              p_pool = Pool.zero_stats ();
              p_obs = dobs;
            }
          in
          let sim_pool = Pool.create ?max_steps ~obs:dobs ~n () in
          let plan = Policy.crash_plan ~n in
          let buf : int Vec.t = Vec.create () in
          let sc_first = Array.make n 0 and sc_last = Array.make n 0 in
          let sc_count = Array.make n 0 in
          let chunk_size = if check_domains <= 1 then 1 else 16 * check_domains in
          let pending : pending Vec.t = Vec.create () in
          let record_violation gidx run_seed schedule crashes msg =
            Atomic.incr viol_count;
            if part.p_first = None then part.p_first <- Some (gidx, now () -. t0);
            part.p_viol <-
              ( gidx,
                {
                  v_workload = workload;
                  v_n = n;
                  v_policy = name;
                  v_seed = run_seed;
                  v_schedule = schedule;
                  v_crashes = crashes;
                  v_error = msg;
                } )
              :: part.p_viol
          in
          let flush () =
            let tf0 = now () in
            let chunk = Vec.to_array pending in
            Vec.clear pending;
            let results = verify_chunk ~domains:check_domains chunk in
            Array.iteri
              (fun i (v, dt) ->
                part.p_check_wall <- part.p_check_wall +. dt;
                let p = chunk.(i) in
                (match v with
                | V_ok -> ()
                | V_skip -> part.p_skipped <- part.p_skipped + 1
                | V_exn e -> raise e
                | V_viol msg -> record_violation p.pd_run p.pd_seed p.pd_schedule p.pd_crashes msg);
                p.pd_done ())
              results;
            part.p_flush_wall <- part.p_flush_wall +. (now () -. tf0)
          in
          let keep_going () =
            lo + part.p_runs < hi
            && Atomic.get viol_count < max_violations
            && match time_budget with None -> true | Some b -> now () -. t0 < b
          in
          while keep_going () do
            let gidx = lo + part.p_runs in
            let run_seed = Rng.int prng 0x3FFFFFFF in
            let rng = Rng.create run_seed in
            let setup, check = instantiate () in
            if pool then begin
              let sim = Pool.acquire sim_pool in
              setup sim;
              let crashes =
                if spec.crash_faults then
                  gen_crash_events ~recover:spec.crash_recover rng n max_crash_steps
                else []
              in
              Vec.clear buf;
              let fast = fast_base_policy spec.kind rng n in
              let ok =
                try
                  (match crashes with
                  | [] -> Policy.drive ~capture:buf sim fast
                  | cs ->
                      Policy.arm_crash_events plan cs;
                      Policy.drive ~capture:buf ~crashes:plan sim fast);
                  true
                with
                | Violation msg ->
                    (* a check raised from inside a process fiber *)
                    record_violation gidx run_seed (Vec.to_array buf) crashes msg;
                    false
                | Skip _ | Sim.Livelock _ ->
                    part.p_skipped <- part.p_skipped + 1;
                    false
              in
              Vec.push part.p_steps (float_of_int (Sim.total_steps sim));
              let c = schedule_contention_into ~n ~first:sc_first ~last:sc_last ~count:sc_count buf in
              if c > part.p_max_cont then part.p_max_cont <- c;
              part.p_turns <- part.p_turns + Vec.length buf;
              if ok then
                Vec.push pending
                  {
                    pd_run = gidx;
                    pd_seed = run_seed;
                    pd_schedule = Vec.to_array buf;
                    pd_crashes = crashes;
                    pd_check = (fun () -> check sim);
                    pd_done = (fun () -> Pool.release sim_pool sim);
                  }
              else Pool.release sim_pool sim
            end
            else begin
              (* fresh-simulator reference path: one Sim.create and boxed
                 policy wrappers per run, the differential baseline for
                 test_pool.ml *)
              let sim = Sim.create ?max_steps ~obs:dobs ~n () in
              setup sim;
              let crashes =
                if spec.crash_faults then
                  gen_crash_events ~recover:spec.crash_recover rng n max_crash_steps
                else []
              in
              let fbuf = Vec.create () in
              let pol =
                Policy.with_crash_events crashes
                  (Policy.capture fbuf (base_policy spec.kind rng n))
              in
              (try
                 Sim.run sim pol;
                 Vec.push pending
                   {
                     pd_run = gidx;
                     pd_seed = run_seed;
                     pd_schedule = Vec.to_array fbuf;
                     pd_crashes = crashes;
                     pd_check = (fun () -> check sim);
                     pd_done = ignore;
                   }
               with
              | Violation msg -> record_violation gidx run_seed (Vec.to_array fbuf) crashes msg
              | Skip _ | Sim.Livelock _ -> part.p_skipped <- part.p_skipped + 1);
              Vec.push part.p_steps (float_of_int (Sim.total_steps sim));
              let c =
                schedule_contention_into ~n ~first:sc_first ~last:sc_last ~count:sc_count fbuf
              in
              if c > part.p_max_cont then part.p_max_cont <- c;
              part.p_turns <- part.p_turns + Vec.length fbuf
            end;
            part.p_runs <- part.p_runs + 1;
            if Vec.length pending >= chunk_size then flush ()
          done;
          flush ();
          Pool.merge_stats ~into:part.p_pool (Pool.stats sim_pool);
          part.p_wall <- now () -. t0;
          part
        in
        let parts =
          if gen_domains <= 1 then [| run_range ~dom:0 ~lo:0 ~hi:runs () |]
          else begin
            let base = runs / gen_domains and rem = runs mod gen_domains in
            let bounds =
              Array.init gen_domains (fun d ->
                  let lo = (d * base) + min d rem in
                  (lo, lo + base + if d < rem then 1 else 0))
            in
            (* [gen_domains] fixes the seed streams and batch split; the
               OS domains actually spawned are capped at the runtime's
               recommendation (oversubscribed domains serialize on every
               minor-GC barrier). Each worker runs its streams
               sequentially into distinct slots, so the mapping of
               streams to workers cannot change any result. *)
            let workers =
              min gen_domains (max 1 (Domain.recommended_domain_count ()))
            in
            let slots = Array.make gen_domains None in
            let run_streams w () =
              let d = ref w in
              while !d < gen_domains do
                let lo, hi = bounds.(!d) in
                slots.(!d) <- Some (run_range ~dom:!d ~lo ~hi ());
                d := !d + workers
              done
            in
            let handles =
              Array.init (workers - 1) (fun i -> Domain.spawn (run_streams (i + 1)))
            in
            run_streams 0 ();
            Array.iter Domain.join handles;
            Array.map (function Some p -> p | None -> assert false) slots
          end
        in
        (* deterministic merge: domain-index order for obs sinks and pool
           stats, global run order for violations and first-failure *)
        if gen_domains > 1 && Scs_obs.Obs.enabled obs then
          Array.iter (fun p -> Scs_obs.Obs.merge_into ~into:obs p.p_obs) parts;
        Array.iter (fun p -> Pool.merge_stats ~into:pool_totals p.p_pool) parts;
        let viols =
          Array.to_list parts
          |> List.concat_map (fun p -> List.rev p.p_viol)
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.map snd
        in
        per_policy_viols := viols :: !per_policy_viols;
        let first =
          Array.fold_left
            (fun acc p ->
              match (acc, p.p_first) with
              | None, f | f, None -> f
              | Some (r1, w1), Some (r2, _) when r1 <= r2 -> Some (r1, w1)
              | _, f -> f)
            None parts
        in
        let steps_arr =
          Array.concat (Array.to_list (Array.map (fun p -> Vec.to_array p.p_steps) parts))
        in
        let pct p = if Array.length steps_arr = 0 then 0.0 else Stats.percentile steps_arr p in
        let sum f = Array.fold_left (fun acc p -> acc + f p) 0 parts in
        let sumf f = Array.fold_left (fun acc p -> acc +. f p) 0.0 parts in
        let maxi f = Array.fold_left (fun acc p -> max acc (f p)) 0 parts in
        {
          s_policy = name;
          s_runs = sum (fun p -> p.p_runs);
          s_turns = sum (fun p -> p.p_turns);
          s_violations = sum (fun p -> List.length p.p_viol);
          s_skipped = sum (fun p -> p.p_skipped);
          s_checked_large = Atomic.get large_counter - large0;
          s_check_wall = sumf (fun p -> p.p_check_wall);
          s_gen_wall =
            Array.fold_left (fun acc p -> Float.max acc (p.p_wall -. p.p_flush_wall)) 0.0 parts;
          s_wall = now () -. t0;
          s_first_failure = first;
          s_step_p50 = pct 50.0;
          s_step_p99 = pct 99.0;
          s_max_contention = maxi (fun p -> p.p_max_cont);
        })
      policies
  in
  {
    r_workload = workload;
    r_n = n;
    r_seed = seed;
    r_stats = stats;
    r_violations = List.concat (List.rev !per_policy_viols);
    r_pool = pool_totals;
  }

(* {1 Repro artifacts} *)

module Repro = struct
  type t = {
    workload : string;
    n : int;
    seed : int;
    policy : string;
    error : string;
    crashes : Crash.t list;
    schedule : int array;
  }

  let of_violation (v : violation) =
    {
      workload = v.v_workload;
      n = v.v_n;
      seed = v.v_seed;
      policy = v.v_policy;
      error = v.v_error;
      crashes = v.v_crashes;
      schedule = v.v_schedule;
    }

  let to_string r =
    let b = Buffer.create 256 in
    Buffer.add_string b "scsrepro 1\n";
    Printf.bprintf b "workload %s\n" r.workload;
    Printf.bprintf b "n %d\n" r.n;
    Printf.bprintf b "seed %d\n" r.seed;
    Printf.bprintf b "policy %s\n" r.policy;
    Printf.bprintf b "error %s\n" r.error;
    Printf.bprintf b "crashes %s\n" (Crash.list_to_string r.crashes);
    Printf.bprintf b "schedule %s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int r.schedule)));
    Buffer.contents b

  let fail fmt = Printf.ksprintf (fun s -> failwith ("Repro.of_string: " ^ s)) fmt

  let of_string s =
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.trim l <> "")
    in
    let field name line =
      let prefix = name ^ " " in
      let pl = String.length prefix in
      if String.length line >= pl && String.sub line 0 pl = prefix then
        String.sub line pl (String.length line - pl)
      else fail "expected %S line, got %S" name line
    in
    match lines with
    | magic :: rest when String.trim magic = "scsrepro 1" -> (
        match rest with
        | [ lw; ln; ls; lp; le; lc; lsched ] ->
            let crashes =
              match Crash.list_of_string (field "crashes" lc) with
              | Some cs -> cs
              | None -> fail "bad crashes field %S" (field "crashes" lc)
            in
            let schedule =
              field "schedule" lsched |> String.split_on_char ' '
              |> List.filter (fun x -> x <> "")
              |> List.map int_of_string |> Array.of_list
            in
            {
              workload = field "workload" lw;
              n = int_of_string (field "n" ln);
              seed = int_of_string (field "seed" ls);
              policy = field "policy" lp;
              error = field "error" le;
              crashes;
              schedule;
            }
        | _ -> fail "expected 7 fields, got %d" (List.length rest))
    | l :: _ -> fail "bad magic %S" l
    | [] -> fail "empty input"

  let save path r =
    let oc = open_out path in
    output_string oc (to_string r);
    close_out oc

  let load path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s
end

(* {1 Lane rendering} *)

let render_lanes ?(title = "failing schedule") ~n ~schedule ~crashes () =
  let len = Array.length schedule in
  (* Walk process [p]'s lane, simulating how its crash events fired
     against the captured schedule. A crash event [at = k] fires once
     [p] has executed [k] memory steps; [p]'s first captured turn after
     a (re)start only advances it to its first operation (no memory
     step), so the step count lags its turn count by one per
     incarnation. A firing crash marks [X] on the next cell (the
     scheduler decision at which the crash policy retired the process,
     [len] = appended past the end if the run ended there); a recovering
     crash additionally marks [R] on [p]'s first captured turn after the
     crash — the re-admitted recovery code's first turn. Returns the
     fired count and the overlay list [(cell, char)]. *)
  let walk p =
    let events = List.filter (fun (c : Crash.t) -> c.pid = p) (Crash.canonical crashes) in
    let marks = ref [] in
    let fired = ref 0 in
    let steps = ref 0 in
    let fresh = ref true in
    (* [p] has a turn coming that advances to its first op, no step *)
    let crashed = ref false in
    let recovering = ref false in
    let pending = ref events in
    for i = 0 to len do
      (* decision point before cell [i] ([i = len]: after the last turn) *)
      (match !pending with
      | (c : Crash.t) :: rest when (not !crashed) && !steps >= c.at ->
          marks := (i, 'X') :: !marks;
          incr fired;
          crashed := true;
          recovering := c.recover <> None;
          pending := rest
      | _ -> ());
      if i < len && schedule.(i) = p then
        if !crashed then begin
          if !recovering then begin
            (* first turn of the re-admitted recovery fiber *)
            marks := (i, 'R') :: !marks;
            crashed := false;
            recovering := false;
            fresh := false
            (* the R turn is the no-step advance turn *)
          end
        end
        else if !fresh then fresh := false
        else incr steps
    done;
    (!fired, List.rev !marks)
  in
  (* ASCII only: Table pads cells by byte length *)
  let lane p marks =
    let base = Bytes.init len (fun i -> if schedule.(i) = p then '#' else '.') in
    let extra = ref "" in
    List.iter
      (fun (i, ch) -> if i < len then Bytes.set base i ch else extra := !extra ^ String.make 1 ch)
      marks;
    Bytes.to_string base ^ !extra
  in
  let rows =
    List.init n (fun p ->
        let fired, marks = walk p in
        let events = List.filter (fun (c : Crash.t) -> c.pid = p) (Crash.canonical crashes) in
        let label =
          String.concat ""
            (List.mapi
               (fun j (c : Crash.t) ->
                 Printf.sprintf " crash@%s%s"
                   (match c.recover with
                   | None -> string_of_int c.at
                   | Some d -> Printf.sprintf "%d+%d" c.at d)
                   (if j >= fired then " (unfired)" else ""))
               events)
        in
        [ Printf.sprintf "p%d%s" p label; lane p marks ])
  in
  let ruler =
    String.concat ""
      (List.init len (fun i -> if (i + 1) mod 10 = 0 then "|" else if (i + 1) mod 5 = 0 then "+" else " "))
  in
  Table.render ~title
    ~header:[ "proc"; Printf.sprintf "turn 1..%d" len ]
    (rows @ [ [ "(x10)"; ruler ] ])
