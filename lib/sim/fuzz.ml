open Scs_util

exception Violation of string
exception Skip of string

type sched_kind = Uniform | Sticky of float | Weighted | Pct of int

type policy_spec = { kind : sched_kind; crash_faults : bool }

let spec_name { kind; crash_faults } =
  let base =
    match kind with
    | Uniform -> "uniform"
    | Sticky p -> Printf.sprintf "sticky(%.2f)" p
    | Weighted -> "weighted"
    | Pct k -> Printf.sprintf "pct(%d)" k
  in
  if crash_faults then base ^ "+crash" else base

let default_portfolio =
  [
    { kind = Uniform; crash_faults = false };
    { kind = Sticky 0.25; crash_faults = false };
    { kind = Weighted; crash_faults = false };
    { kind = Pct 3; crash_faults = false };
    { kind = Uniform; crash_faults = true };
  ]

type violation = {
  v_workload : string;
  v_n : int;
  v_policy : string;
  v_seed : int;
  v_schedule : int array;
  v_crashes : (Sim.pid * int) list;
  v_error : string;
}

type policy_stats = {
  s_policy : string;
  s_runs : int;
  s_turns : int;
  s_violations : int;
  s_skipped : int;
  s_checked_large : int;
  s_check_wall : float;
  s_wall : float;
  s_first_failure : (int * float) option;
      (** run index and wall-clock seconds of the first violation *)
  s_step_p50 : float;
  s_step_p99 : float;  (** percentiles of per-run total memory steps *)
  s_max_contention : int;
      (** max schedule-level step contention across the batch's runs *)
}

type report = {
  r_workload : string;
  r_n : int;
  r_seed : int;
  r_stats : policy_stats list;
  r_violations : violation list;
}

let schedules_per_sec s = if s.s_wall > 0.0 then float_of_int s.s_runs /. s.s_wall else 0.0

(* Schedule-level step-contention of one run: for each process, the
   number of turns taken by *other* processes between its first and
   last captured turns; the run's statistic is the max over processes.
   Computed from the captured pid schedule alone, so it costs nothing
   on the simulator's hot path. Each captured turn executes at most
   one memory step, so this upper-bounds the step contention (paper
   §2) any single operation in the run can experience. *)
let schedule_contention ~n (buf : int Vec.t) =
  let first = Array.make n (-1) in
  let last = Array.make n (-1) in
  let count = Array.make n 0 in
  Vec.iteri
    (fun i p ->
      if p >= 0 && p < n then begin
        if first.(p) < 0 then first.(p) <- i;
        last.(p) <- i;
        count.(p) <- count.(p) + 1
      end)
    buf;
  let m = ref 0 in
  for p = 0 to n - 1 do
    if count.(p) > 0 then begin
      let others = last.(p) - first.(p) + 1 - count.(p) in
      if others > !m then m := others
    end
  done;
  !m

let base_policy kind rng n =
  match kind with
  | Uniform -> Policy.random rng
  | Sticky p -> Policy.sticky rng ~switch_prob:p
  | Weighted ->
      (* fresh skewed positive weights per run: biased schedulers reach
         interleavings uniform sampling essentially never produces *)
      let w = Array.init n (fun _ -> float_of_int (1 lsl Rng.int rng 5)) in
      Policy.weighted rng w
  | Pct k -> Policy.pct rng ~k ~depth:(16 * n)

let gen_crashes rng n max_crash_steps =
  List.filter_map
    (fun p ->
      if Rng.bernoulli rng 0.25 then Some (p, 1 + Rng.int rng max_crash_steps)
      else None)
    (List.init n (fun p -> p))

(* Replay a captured [(schedule, crashes)] pair against a fresh simulator.
   Strict scripting: any divergence from the recorded schedule raises
   [Policy.Replay_drift] instead of silently executing a different run.
   The crash wrapper sits outside the script, mirroring the fuzz loop
   ([with_crashes] fires on [Sim.steps_of], which evolves identically for
   identical executed turn prefixes). *)
let replay ?max_steps ~n ~setup ~schedule ~crashes () =
  let sim = Sim.create ?max_steps ~n () in
  setup sim;
  Sim.run sim (Policy.with_crashes crashes (Policy.scripted ~strict:true schedule));
  sim

let now = Unix.gettimeofday

(* Histories past the legacy 62-operation cap used to be skipped; the
   scalable checker verifies them instead, and workload checks report
   them here so fuzz stats can show the cap is really gone. A global
   atomic (snapshotted around each policy batch, whose verifications are
   joined before the snapshot is read) stays correct when checks run on
   worker domains. *)
let large_counter = Atomic.make 0
let checked_large () = Atomic.incr large_counter

(* A finished execution awaiting verification. *)
type pending = {
  pd_run : int;
  pd_seed : int;
  pd_schedule : int array;
  pd_crashes : (Sim.pid * int) list;
  pd_check : unit -> unit;
}

type verdict = V_ok | V_viol of string | V_skip | V_exn of exn

(* Verify a chunk of finished runs, fanning out over [domains] OCaml
   domains when given more than one. Each run owns its sim/trace (fresh
   workload instance per run), so checks of distinct runs share no
   mutable state. Returns per-run (verdict, check-seconds) in run order. *)
let verify_chunk ~domains (chunk : pending array) =
  let one (p : pending) =
    let t0 = now () in
    let v =
      match p.pd_check () with
      | () -> V_ok
      | exception Violation msg -> V_viol msg
      | exception (Skip _ | Sim.Livelock _) -> V_skip
      | exception e -> V_exn e
    in
    (v, now () -. t0)
  in
  if domains <= 1 || Array.length chunk < 2 then Array.map one chunk
  else begin
    let results = Array.make (Array.length chunk) (V_ok, 0.0) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length chunk then begin
          results.(i) <- one chunk.(i);
          loop ()
        end
      in
      loop ()
    in
    let others =
      Array.init (min (domains - 1) (Array.length chunk - 1)) (fun _ ->
          Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join others;
    results
  end

let run ?(policies = default_portfolio) ?(runs = 1000) ?time_budget
    ?(max_violations = max_int) ?(seed = 1) ?max_steps ?(max_crash_steps = 15)
    ?(check_domains = 1) ?(obs = Scs_obs.Obs.null) ~workload ~n ~instantiate () =
  let violations = ref [] in
  let stats =
    List.mapi
      (fun idx spec ->
        let name = spec_name spec in
        let prng = Rng.create (seed + (0x9E3779B9 * (idx + 1))) in
        let t0 = now () in
        let nrun = ref 0 and nturn = ref 0 in
        let sviol = ref 0 and nskip = ref 0 in
        let check_wall = ref 0.0 in
        let first = ref None in
        let run_steps : float Vec.t = Vec.create () in
        let max_cont = ref 0 in
        let large0 = Atomic.get large_counter in
        let chunk_size = if check_domains <= 1 then 1 else 16 * check_domains in
        let pending : pending Vec.t = Vec.create () in
        let flush () =
          let chunk = Vec.to_array pending in
          Vec.clear pending;
          let results = verify_chunk ~domains:check_domains chunk in
          Array.iteri
            (fun i (v, dt) ->
              check_wall := !check_wall +. dt;
              let p = chunk.(i) in
              match v with
              | V_ok -> ()
              | V_skip -> incr nskip
              | V_exn e -> raise e
              | V_viol msg ->
                  incr sviol;
                  if !first = None then first := Some (p.pd_run, now () -. t0);
                  violations :=
                    {
                      v_workload = workload;
                      v_n = n;
                      v_policy = name;
                      v_seed = p.pd_seed;
                      v_schedule = p.pd_schedule;
                      v_crashes = p.pd_crashes;
                      v_error = msg;
                    }
                    :: !violations)
            results
        in
        let keep_going () =
          !nrun < runs
          && !sviol < max_violations
          && match time_budget with None -> true | Some b -> now () -. t0 < b
        in
        while keep_going () do
          let run_seed = Rng.int prng 0x3FFFFFFF in
          let rng = Rng.create run_seed in
          let sim = Sim.create ?max_steps ~obs ~n () in
          let setup, check = instantiate () in
          setup sim;
          let crashes =
            if spec.crash_faults then gen_crashes rng n max_crash_steps else []
          in
          let buf = Vec.create () in
          let pol =
            Policy.with_crashes crashes (Policy.capture buf (base_policy spec.kind rng n))
          in
          (try
             Sim.run sim pol;
             Vec.push pending
               {
                 pd_run = !nrun;
                 pd_seed = run_seed;
                 pd_schedule = Vec.to_array buf;
                 pd_crashes = crashes;
                 pd_check = (fun () -> check sim);
               }
           with
          | Violation msg ->
              (* a check raised from inside a process fiber *)
              incr sviol;
              if !first = None then first := Some (!nrun, now () -. t0);
              violations :=
                {
                  v_workload = workload;
                  v_n = n;
                  v_policy = name;
                  v_seed = run_seed;
                  v_schedule = Vec.to_array buf;
                  v_crashes = crashes;
                  v_error = msg;
                }
                :: !violations
          | Skip _ | Sim.Livelock _ -> incr nskip);
          Vec.push run_steps (float_of_int (Sim.total_steps sim));
          let c = schedule_contention ~n buf in
          if c > !max_cont then max_cont := c;
          nturn := !nturn + Vec.length buf;
          incr nrun;
          if Vec.length pending >= chunk_size then flush ()
        done;
        flush ();
        let steps_arr = Vec.to_array run_steps in
        let pct p =
          if Array.length steps_arr = 0 then 0.0 else Stats.percentile steps_arr p
        in
        {
          s_policy = name;
          s_runs = !nrun;
          s_turns = !nturn;
          s_violations = !sviol;
          s_skipped = !nskip;
          s_checked_large = Atomic.get large_counter - large0;
          s_check_wall = !check_wall;
          s_wall = now () -. t0;
          s_first_failure = !first;
          s_step_p50 = pct 50.0;
          s_step_p99 = pct 99.0;
          s_max_contention = !max_cont;
        })
      policies
  in
  {
    r_workload = workload;
    r_n = n;
    r_seed = seed;
    r_stats = stats;
    r_violations = List.rev !violations;
  }

(* {1 Repro artifacts} *)

module Repro = struct
  type t = {
    workload : string;
    n : int;
    seed : int;
    policy : string;
    error : string;
    crashes : (Sim.pid * int) list;
    schedule : int array;
  }

  let of_violation (v : violation) =
    {
      workload = v.v_workload;
      n = v.v_n;
      seed = v.v_seed;
      policy = v.v_policy;
      error = v.v_error;
      crashes = v.v_crashes;
      schedule = v.v_schedule;
    }

  let to_string r =
    let b = Buffer.create 256 in
    Buffer.add_string b "scsrepro 1\n";
    Printf.bprintf b "workload %s\n" r.workload;
    Printf.bprintf b "n %d\n" r.n;
    Printf.bprintf b "seed %d\n" r.seed;
    Printf.bprintf b "policy %s\n" r.policy;
    Printf.bprintf b "error %s\n" r.error;
    (match r.crashes with
    | [] -> Buffer.add_string b "crashes -\n"
    | cs ->
        Printf.bprintf b "crashes %s\n"
          (String.concat "," (List.map (fun (p, k) -> Printf.sprintf "%d@%d" p k) cs)));
    Printf.bprintf b "schedule %s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int r.schedule)));
    Buffer.contents b

  let fail fmt = Printf.ksprintf (fun s -> failwith ("Repro.of_string: " ^ s)) fmt

  let of_string s =
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.trim l <> "")
    in
    let field name line =
      let prefix = name ^ " " in
      let pl = String.length prefix in
      if String.length line >= pl && String.sub line 0 pl = prefix then
        String.sub line pl (String.length line - pl)
      else fail "expected %S line, got %S" name line
    in
    match lines with
    | magic :: rest when String.trim magic = "scsrepro 1" -> (
        match rest with
        | [ lw; ln; ls; lp; le; lc; lsched ] ->
            let crashes =
              match field "crashes" lc with
              | "-" -> []
              | cs ->
                  String.split_on_char ',' cs
                  |> List.map (fun c ->
                         match String.split_on_char '@' c with
                         | [ p; k ] -> (int_of_string p, int_of_string k)
                         | _ -> fail "bad crash entry %S" c)
            in
            let schedule =
              field "schedule" lsched |> String.split_on_char ' '
              |> List.filter (fun x -> x <> "")
              |> List.map int_of_string |> Array.of_list
            in
            {
              workload = field "workload" lw;
              n = int_of_string (field "n" ln);
              seed = int_of_string (field "seed" ls);
              policy = field "policy" lp;
              error = field "error" le;
              crashes;
              schedule;
            }
        | _ -> fail "expected 7 fields, got %d" (List.length rest))
    | l :: _ -> fail "bad magic %S" l
    | [] -> fail "empty input"

  let save path r =
    let oc = open_out path in
    output_string oc (to_string r);
    close_out oc

  let load path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s
end

(* {1 Lane rendering} *)

let render_lanes ?(title = "failing schedule") ~n ~schedule ~crashes () =
  let len = Array.length schedule in
  (* Where a crash actually fired. [Policy.with_crashes (p, k)] retires
     process [p] once it has executed [k] memory steps; a process's
     first captured turn only advances it to its first operation (no
     memory step), so [p] reaches [k] steps at its [(k+1)]-th captured
     turn and the crash takes effect at the next scheduler decision.
     Returns the cell index one past that turn, [Some len] if the run
     ended exactly there, or [None] if the process never reached [k]
     steps (the crash never fired). *)
  let crash_point p =
    match List.assoc_opt p crashes with
    | None -> None
    | Some k ->
        let seen = ref 0 in
        let idx = ref None in
        Array.iteri
          (fun i q ->
            if q = p && !idx = None then begin
              incr seen;
              if !seen = k + 1 then idx := Some (i + 1)
            end)
          schedule;
        !idx
  in
  (* ASCII only: Table pads cells by byte length *)
  let lane p =
    let base = String.init len (fun i -> if schedule.(i) = p then '#' else '.') in
    match crash_point p with
    | Some m when m < len -> String.mapi (fun i c -> if i = m then 'X' else c) base
    | Some _ -> base ^ "X"  (* crash point at/after the end of the run *)
    | None -> base
  in
  let rows =
    List.init n (fun p ->
        let crash =
          match List.assoc_opt p crashes with
          | Some k when crash_point p <> None -> Printf.sprintf " crash@%d" k
          | Some k -> Printf.sprintf " crash@%d (unfired)" k
          | None -> ""
        in
        [ Printf.sprintf "p%d%s" p crash; lane p ])
  in
  let ruler =
    String.concat ""
      (List.init len (fun i -> if (i + 1) mod 10 = 0 then "|" else if (i + 1) mod 5 = 0 then "+" else " "))
  in
  Table.render ~title
    ~header:[ "proc"; Printf.sprintf "turn 1..%d" len ]
    (rows @ [ [ "(x10)"; ruler ] ])
