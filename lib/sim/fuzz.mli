(** Randomized schedule fuzzing with deterministic replay.

    The fuzz engine runs seeded batches of simulations against a [check]
    predicate under a portfolio of schedule policies — uniform random,
    sticky, weighted, PCT-style priority scheduling, and crash-injecting
    variants — and records the complete pid schedule of every run via
    {!Policy.capture}. A failure is therefore deterministic by
    construction: the recorded [(n, schedule, crashes)] triple replays
    bit-for-bit with {!replay} (strict scripting, {!Policy.Replay_drift}
    on divergence), independent of RNG state, and serialises to a compact
    [.scsrepro] artifact ({!Repro}) suitable for committing as a
    regression test. {!Shrink.minimize} reduces such triples to locally
    minimal counterexamples. *)

exception Violation of string
(** Raised by [check] functions to signal a property violation. The
    message is recorded in the {!violation} and the repro artifact. *)

exception Skip of string
(** Raised by [check] functions when a run cannot be judged. Counted in
    {!policy_stats.s_skipped}, never treated as a failure. Since the
    scalable linearizability checker landed, no stock workload skips for
    history size any more — past-cap histories are checked and counted
    via {!checked_large} instead. *)

val checked_large : unit -> unit
(** Called by [check] functions that verified a history larger than the
    legacy {!Scs_history.Linearize.max_operations} cap (such runs were
    skipped before the scalable checker). Counted per policy in
    {!policy_stats.s_checked_large}; safe to call from verification
    worker domains. *)

(** {1 Scheduler portfolio} *)

type sched_kind =
  | Uniform  (** {!Policy.random} *)
  | Sticky of float  (** {!Policy.sticky} with the given switch probability *)
  | Weighted  (** {!Policy.weighted} with fresh skewed per-run weights *)
  | Pct of int  (** {!Policy.pct} with [k] preemption points, depth [16n] *)

type policy_spec = {
  kind : sched_kind;
  crash_faults : bool;  (** inject crash events (probability 1/4 per pid) *)
  crash_recover : bool;
      (** crash-recovery mode: injected crashes usually carry a recovery
          delay (and sometimes a second crash on the recovered
          incarnation) instead of being terminal. Only meaningful with
          [crash_faults = true]; workloads without
          {!Sim.set_recovery} entry points degrade gracefully — the
          events fire as terminal crashes. *)
}

val spec_name : policy_spec -> string
(** Stable display name, e.g. ["sticky(0.25)"], ["uniform+crash"],
    ["pct(3)+crashrec"]. *)

val default_portfolio : policy_spec list
(** uniform, sticky(0.25), weighted, pct(3), uniform+crash — unchanged
    since the fail-stop era, so existing seed streams stay stable. *)

val recover_portfolio : policy_spec list
(** uniform+crashrec, sticky(0.25)+crashrec, pct(3)+crashrec: the
    crash-recovery hunting portfolio ([`scs fuzz --policy
    crash-recover`]). *)

val portfolio_names : string list
(** Valid arguments to {!portfolio_of_string}, for CLI error messages. *)

val portfolio_of_string : string -> policy_spec list option
(** Named portfolios: ["default"]/["all"] ({!default_portfolio}),
    ["uniform"], ["sticky"], ["weighted"], ["pct"], ["crash"] (single
    specs) and ["crash-recover"] ({!recover_portfolio}). *)

(** {1 Reports} *)

type violation = {
  v_workload : string;
  v_n : int;
  v_policy : string;
  v_seed : int;  (** per-run derived seed, for provenance *)
  v_schedule : int array;  (** complete captured pid schedule *)
  v_crashes : Crash.t list;
  v_error : string;
}

type policy_stats = {
  s_policy : string;
  s_runs : int;
  s_turns : int;  (** total scheduler turns across all runs *)
  s_violations : int;
  s_skipped : int;  (** {!Skip} + livelocked runs *)
  s_checked_large : int;
      (** runs whose history exceeded the legacy 62-op linearizer cap and
          were checked anyway (see {!checked_large}) *)
  s_check_wall : float;
      (** seconds spent inside [check], summed across runs (and across
          verification domains, so it can exceed elapsed wall time) *)
  s_gen_wall : float;
      (** wall-clock seconds spent generating schedules: the policy's
          loop time minus its verification flushes, taken as the
          critical path (max) over gen domains — what the pooling and
          allocation work optimises, reported as [gen/s] *)
  s_wall : float;
  s_first_failure : (int * float) option;
      (** run index and wall-clock seconds of the first violation *)
  s_step_p50 : float;
  s_step_p99 : float;
      (** percentiles of per-run {e total memory steps} across the
          policy's runs — the cost column of the fuzz report *)
  s_max_contention : int;
      (** maximum schedule-level step contention over the policy's
          runs: per run, the max over processes of the number of turns
          other processes take inside that process's active window
          (first to last captured turn). An upper bound on the paper's
          per-operation step contention, computed from the captured
          schedule alone so the simulator hot path is untouched. *)
}

type report = {
  r_workload : string;
  r_n : int;
  r_seed : int;
  r_stats : policy_stats list;
  r_violations : violation list;
  r_pool : Pool.stats;
      (** simulator-pool totals across all policies and gen domains:
          resets vs fresh creates and peak arena sizes (all-zero under
          [~pool:false]) *)
}

val schedules_per_sec : policy_stats -> float
(** Runs over total elapsed wall: generation + verification. *)

val gen_per_sec : policy_stats -> float
(** Runs over {!policy_stats.s_gen_wall} — schedule-generation
    throughput alone. *)

val check_per_sec : policy_stats -> float
(** Runs over {!policy_stats.s_check_wall} — verification throughput
    alone (CPU-seconds across check domains). *)

(** {1 Engine} *)

val run :
  ?policies:policy_spec list ->
  ?runs:int ->
  ?time_budget:float ->
  ?max_violations:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?max_crash_steps:int ->
  ?check_domains:int ->
  ?gen_domains:int ->
  ?pool:bool ->
  ?obs:Scs_obs.Obs.t ->
  workload:string ->
  n:int ->
  instantiate:(unit -> (Sim.t -> unit) * (Sim.t -> unit)) ->
  unit ->
  report
(** [run ~workload ~n ~instantiate ()] fuzzes: for each policy spec (in
    order), up to [runs] simulations (default 1000) or [time_budget]
    wall-clock seconds, each policy stopping once it has found
    [max_violations] violations of its own (so every portfolio member
    reports its own time-to-first-failure). Each run calls [instantiate]
    for a fresh linked [(setup, check)] pair, builds a fresh sim, applies
    [setup] (which spawns the processes), drives it under the policy with
    the schedule captured, then applies [check], interpreting {!Violation}
    as a failure and {!Skip} / {!Sim.Livelock} as a skipped run.
    Crash-fault specs crash each pid with probability 1/4 after
    1..[max_crash_steps] (default 15) memory steps.

    [check_domains] (default 1) fans run verification out over that many
    OCaml domains: executions are produced by the schedule loop and
    checked in chunks concurrently, instead of interleaving checker time
    into the loop. Because every run has its own instance, checks of
    distinct runs share no mutable state — but [check] closures must be
    domain-safe in what else they touch. With [check_domains = 1] the
    engine verifies inline after each run and is fully deterministic
    given [seed]; with more domains, verdicts and stats are unchanged but
    a policy may execute up to one chunk (16 × domains runs) beyond its
    [max_violations] stop, and [s_first_failure] timing reflects chunked
    verification.

    [gen_domains] (default 1) fans schedule {e generation} out: the run
    range is split into contiguous per-domain chunks, each generated on
    its own domain with its own seed stream, pooled simulator and (when
    [obs] is enabled) private obs sink; reports, failure lists and obs
    sinks are merged deterministically at join (domain-index order for
    sinks, global run order for violations). Domain 0's seed stream is
    the legacy sequential stream, so [gen_domains = 1] reproduces the
    single-domain engine run for run; higher values explore different
    (per-domain) seed streams. Composes with [check_domains], which then
    applies within each gen domain. [max_violations] becomes a shared
    budget across gen domains.

    [pool] (default [true]) reuses one pooled simulator per gen domain
    across runs ({!Pool}): the simulator is rewound with {!Sim.clear}
    and re-[setup] instead of reallocated, and the schedule loop runs
    the allocation-free fast-policy protocol ({!Policy.drive}).
    Verdicts, schedules and obs counters are bit-identical to
    [~pool:false] (the fresh-simulator reference path, kept for
    differential testing — see test_pool.ml).

    [obs] (default {!Scs_obs.Obs.null}) is attached to every run's
    simulator, aggregating counters across the whole campaign; it
    never changes verdicts (executions are driven by the captured
    policies alone — asserted by the fuzz test suite). The engine's
    own cost columns ([s_step_p50]/[s_step_p99]/[s_max_contention])
    are computed without the sink and are always present. *)

val replay :
  ?max_steps:int ->
  n:int ->
  setup:(Sim.t -> unit) ->
  schedule:int array ->
  crashes:Crash.t list ->
  unit ->
  Sim.t
(** Re-execute a recorded run against a fresh simulator using
    [Policy.scripted ~strict:true] under the same crash-event wrapper;
    raises {!Policy.Replay_drift} if the schedule does not replay.
    Recovery re-admission is clock-driven, so recovering crashes replay
    as deterministically as terminal ones. The caller applies its check
    to the returned sim. *)

(** {1 Repro artifacts}

    Textual [.scsrepro] serialization of one failing run:
    {v
scsrepro 1
workload f1
n 3
seed 123456
policy sticky(0.25)
error not strictly linearizable
crashes 1@3+4,2@5
schedule 0 0 0 1 1 ...
    v}
    [crashes] is [-] when empty; [p\@k] is a terminal crash of process
    [p] after [k] of its memory steps, [p\@k+d] one that re-admits its
    recovery code after [d] further global steps ({!Crash}). The format
    is a backward-compatible extension of the fail-stop artifacts —
    every pre-recovery [.scsrepro] file still parses. *)

module Repro : sig
  type t = {
    workload : string;
    n : int;
    seed : int;
    policy : string;
    error : string;
    crashes : Crash.t list;
    schedule : int array;
  }

  val of_violation : violation -> t
  val to_string : t -> string

  val of_string : string -> t
  (** Raises [Failure] on malformed input. *)

  val save : string -> t -> unit
  val load : string -> t
end

val render_lanes :
  ?title:string -> n:int -> schedule:int array -> crashes:Crash.t list -> unit -> string
(** Per-process lane view of a schedule: one row per pid, [#] on its
    turns, [.] elsewhere, plus a turn ruler. Crash markers are rendered
    in-lane: an [X] at the point where the crash policy retired the
    process (one cell past its last executed turn — see
    {!Policy.with_crash_events} step accounting) and, for a crash that
    later recovers, an [R] on the process's first turn after the crash
    (the re-admitted recovery code's first turn) — so a recovered crash
    reads [X…R] along the lane while a terminal one is a bare [X]. The
    row label carries [crash\@k] / [crash\@k+d] per event, flagged
    [(unfired)] when the process finished before reaching [k] steps so
    that event never took effect. *)
