(* Run-pool of simulators (Model "clear": a released simulator is
   rewound to its post-create empty state on reacquisition, keeping its
   arena capacities). Simulators may be held across deferred checks, so
   the pool grows to the number of simultaneously-held instances and
   then stops allocating. Not thread-safe: use one pool per domain. *)

open Scs_util

type stats = {
  mutable created : int;
  mutable reused : int;
  mutable peak_objects : int;
  mutable peak_turns : int;
}

type t = {
  n : int;
  max_steps : int option;
  obs : Scs_obs.Obs.t option;
  free : Sim.t Vec.t;
  stats : stats;
}

let create ?max_steps ?obs ~n () =
  {
    n;
    max_steps;
    obs;
    free = Vec.create ();
    stats = { created = 0; reused = 0; peak_objects = 0; peak_turns = 0 };
  }

let make_sim p =
  match (p.max_steps, p.obs) with
  | Some ms, Some obs -> Sim.create ~max_steps:ms ~obs ~n:p.n ()
  | Some ms, None -> Sim.create ~max_steps:ms ~n:p.n ()
  | None, Some obs -> Sim.create ~obs ~n:p.n ()
  | None, None -> Sim.create ~n:p.n ()

let acquire p =
  let len = Vec.length p.free in
  if len = 0 then begin
    p.stats.created <- p.stats.created + 1;
    make_sim p
  end
  else begin
    let sim = Vec.get p.free (len - 1) in
    Vec.truncate p.free (len - 1);
    p.stats.reused <- p.stats.reused + 1;
    Sim.clear sim;
    sim
  end

let release p sim =
  let s = p.stats in
  if Sim.objects_allocated sim > s.peak_objects then s.peak_objects <- Sim.objects_allocated sim;
  if Sim.clock sim > s.peak_turns then s.peak_turns <- Sim.clock sim;
  Vec.push p.free sim

let with_sim p f =
  let sim = acquire p in
  Fun.protect ~finally:(fun () -> release p sim) (fun () -> f sim)

let stats p = { p.stats with created = p.stats.created }
let size p = Vec.length p.free

let merge_stats ~into s =
  into.created <- into.created + s.created;
  into.reused <- into.reused + s.reused;
  if s.peak_objects > into.peak_objects then into.peak_objects <- s.peak_objects;
  if s.peak_turns > into.peak_turns then into.peak_turns <- s.peak_turns

let zero_stats () = { created = 0; reused = 0; peak_objects = 0; peak_turns = 0 }
