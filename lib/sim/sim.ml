open Scs_util

type pid = int

exception Livelock of string
exception Process_failure of pid * exn

type pending = Pending : 'r Op.t * ('r, unit) Effect.Deep.continuation -> pending

type status =
  | Idle  (** no code installed *)
  | Ready of (unit -> unit)
  | Parked of (unit, unit) Effect.Deep.continuation
      (** re-armed from a fiber that completed its previous run: resuming
          the continuation re-enters the spawn loop and runs the body
          again on the same fiber stack, sparing {!reset} a fresh
          [match_with] per process per run *)
  | Blocked of pending
  | Done
  | Crashed

type t = {
  n : int;
  max_steps : int;
  mutable clock : int;
  status : status array;
  mutable runnable_bits : int;
      (** bit [pid] set iff [status.(pid)] is [Ready _ | Blocked _]; the
          runnable set as a word-sized mask so the scheduler hot path never
          builds a list. Forces [n <= 62]. *)
  code : (unit -> unit) option array;
      (** code installed by {!spawn}, remembered so {!reset} can re-arm
          the fibers without re-running workload setup *)
  park : (unit, unit) Effect.Deep.continuation option array;
      (** continuation captured when a fiber finishes a run (at the
          [End_run] perform of the spawn loop); consumed by the next
          {!reset} to re-arm the process as [Parked] on its existing
          fiber stack instead of allocating a new one *)
  steps : int array;
  rmws : int array;
  raw_fences : int array;
  dirty_write : bool array;  (** wrote since last fence-inducing event *)
  mutable next_obj : int;
  mutable rmw_objs : int;
  obj_resets : (unit -> unit) Vec.t;
      (** one thunk per allocated object, rewinding it to its creation
          value; replayed (up to the snapshot mark) by {!reset} *)
  volatile_wipes : (unit -> unit) Vec.t;
      (** one thunk per volatile object, rewinding it to its creation
          value; replayed by every {!crash} (the crash-recovery model's
          cache wipe: any crash loses all volatile contents) *)
  recov_code : (unit -> unit) option array;
      (** recovery entry points installed by {!set_recovery}; a crashed
          process with one can be re-admitted as a fresh fiber running
          this code *)
  recover_at : int array;
      (** global clock value at which a crashed process is due for
          re-admission; [-1] when no recovery is pending for the pid *)
  mutable pending_recov : int;
      (** number of pids with [recover_at >= 0]; guards the per-step
          admission scan so fail-stop runs pay one load per step *)
  recoveries : int array;  (** per-pid count of re-admissions this run *)
  mutable snap_objs : int;
  mutable snap_rmws : int;
  mutable snap_resets : int;
  mutable snap_wipes : int;
  mutable snapped : bool;
  mutable record_trace : bool;
  trace : Mem_event.t Vec.t;
  pause_obj : int;
  mutable cur_pid : int;
      (** pid whose turn {!step} is currently executing; [-1] between
          turns. Lets backend operation closures ({!custom_op}) learn the
          process on whose behalf they run without threading pids through
          {!Prims_intf.S}. *)
  obs : Scs_obs.Obs.t;
  obs_on : bool;  (** cached [Obs.enabled obs]: one load on the hot path *)
}

type _ Effect.t += Mem : 'r Op.t -> 'r Effect.t

(* Performed by the spawn loop when a fiber's body returns; the handler
   parks the continuation for reuse by the next [reset]. Never escapes
   this module: fibers only ever run under {!handler}. *)
type _ Effect.t += End_run : unit Effect.t

let max_processes = 62

let create ?(max_steps = 1_000_000) ?(obs = Scs_obs.Obs.null) ~n () =
  if n > max_processes then
    invalid_arg "Sim.create: at most 62 processes (runnable set is a word-sized bitmask)";
  if Scs_obs.Obs.enabled obs && Scs_obs.Obs.n obs < n then
    invalid_arg "Sim.create: obs sink sized for fewer processes than n";
  {
    n;
    max_steps;
    clock = 0;
    status = Array.make n Idle;
    runnable_bits = 0;
    code = Array.make n None;
    park = Array.make n None;
    steps = Array.make n 0;
    rmws = Array.make n 0;
    raw_fences = Array.make n 0;
    dirty_write = Array.make n false;
    next_obj = 1;
    rmw_objs = 0;
    obj_resets = Vec.create ();
    volatile_wipes = Vec.create ();
    recov_code = Array.make n None;
    recover_at = Array.make n (-1);
    pending_recov = 0;
    recoveries = Array.make n 0;
    snap_objs = 1;
    snap_rmws = 0;
    snap_resets = 0;
    snap_wipes = 0;
    snapped = false;
    record_trace = false;
    trace = Vec.create ();
    pause_obj = 0;
    cur_pid = -1;
    obs;
    obs_on = Scs_obs.Obs.enabled obs;
  }

let n t = t.n
let clock t = t.clock
let max_steps t = t.max_steps

(* ------------------------------------------------------------------ *)
(* Shared objects                                                      *)
(* ------------------------------------------------------------------ *)

let fresh_obj t =
  let id = t.next_obj in
  t.next_obj <- id + 1;
  id

type 'a reg = { mutable rv : 'a; r_id : int; r_name : string }

let reg t ?(volatile = false) ~name v =
  let r = { rv = v; r_id = fresh_obj t; r_name = name } in
  Vec.push t.obj_resets (fun () -> r.rv <- v);
  if volatile then Vec.push t.volatile_wipes (fun () -> r.rv <- v);
  r

let read r =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = r.r_id; obj_name = r.r_name; info = ""; run = (fun () -> r.rv) })

let write r v =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Write;
         obj = r.r_id;
         obj_name = r.r_name;
         info = "";
         run = (fun () -> r.rv <- v);
       })

type tas_obj = { mutable t_set : bool; t_id : int; t_name : string }

let tas_obj t ~name () =
  t.rmw_objs <- t.rmw_objs + 1;
  let o = { t_set = false; t_id = fresh_obj t; t_name = name } in
  Vec.push t.obj_resets (fun () -> o.t_set <- false);
  o

let test_and_set o =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.t_id;
         obj_name = o.t_name;
         info = "tas";
         run =
           (fun () ->
             if o.t_set then false
             else begin
               o.t_set <- true;
               true
             end);
       })

let tas_read o =
  Effect.perform
    (Mem
       { Op.kind = Op.Read; obj = o.t_id; obj_name = o.t_name; info = ""; run = (fun () -> o.t_set) })

let tas_reset o =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Write;
         obj = o.t_id;
         obj_name = o.t_name;
         info = "reset";
         run = (fun () -> o.t_set <- false);
       })

type 'a cas_obj = { mutable c_v : 'a; c_id : int; c_name : string }

let cas_obj t ~name v =
  t.rmw_objs <- t.rmw_objs + 1;
  let o = { c_v = v; c_id = fresh_obj t; c_name = name } in
  Vec.push t.obj_resets (fun () -> o.c_v <- v);
  o

let cas_read o =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = o.c_id; obj_name = o.c_name; info = ""; run = (fun () -> o.c_v) })

let compare_and_swap o ~expect ~update =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.c_id;
         obj_name = o.c_name;
         info = "cas";
         run =
           (fun () ->
             if o.c_v == expect then begin
               o.c_v <- update;
               true
             end
             else false);
       })

type fai_obj = { mutable f_v : int; f_id : int; f_name : string }

let fai_obj t ~name v =
  t.rmw_objs <- t.rmw_objs + 1;
  let o = { f_v = v; f_id = fresh_obj t; f_name = name } in
  Vec.push t.obj_resets (fun () -> o.f_v <- v);
  o

let fetch_and_inc o =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.f_id;
         obj_name = o.f_name;
         info = "fai";
         run =
           (fun () ->
             let v = o.f_v in
             o.f_v <- v + 1;
             v);
       })

let fai_read o =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = o.f_id; obj_name = o.f_name; info = ""; run = (fun () -> o.f_v) })

type 'a swap_obj = { mutable s_v : 'a; s_id : int; s_name : string }

let swap_obj t ~name v =
  t.rmw_objs <- t.rmw_objs + 1;
  let o = { s_v = v; s_id = fresh_obj t; s_name = name } in
  Vec.push t.obj_resets (fun () -> o.s_v <- v);
  o

let swap o v =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.s_id;
         obj_name = o.s_name;
         info = "swap";
         run =
           (fun () ->
             let old = o.s_v in
             o.s_v <- v;
             old);
       })

let swap_read o =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = o.s_id; obj_name = o.s_name; info = ""; run = (fun () -> o.s_v) })

let pause t =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = t.pause_obj; obj_name = "pause"; info = ""; run = (fun () -> ()) })

(* ------------------------------------------------------------------ *)
(* Custom backend objects                                              *)
(* ------------------------------------------------------------------ *)

let custom_obj t ?(rmw = false) ?wipe ~reset () =
  if rmw then t.rmw_objs <- t.rmw_objs + 1;
  let id = fresh_obj t in
  Vec.push t.obj_resets reset;
  (match wipe with None -> () | Some w -> Vec.push t.volatile_wipes w);
  id

let custom_op ~obj ~obj_name ~kind ~info run =
  Effect.perform (Mem { Op.kind; obj; obj_name; info; run })

let running_pid t =
  if t.cur_pid < 0 then invalid_arg "Sim.running_pid: no turn is executing";
  t.cur_pid

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

(* The runnable bitmask is maintained at every status write. During a
   turn the fiber's status briefly reads [Done] (the placeholder written
   by {!step}) while its bit is still set; no policy observes that
   window because policies only run between turns. *)

let handler t pid : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        t.status.(pid) <- Done;
        t.runnable_bits <- t.runnable_bits land lnot (1 lsl pid));
    exnc =
      (fun e ->
        t.status.(pid) <- Done;
        t.runnable_bits <- t.runnable_bits land lnot (1 lsl pid);
        raise (Process_failure (pid, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Mem op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.status.(pid) <- Blocked (Pending (op, k)))
        | End_run ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.park.(pid) <- Some k;
                t.status.(pid) <- Done;
                t.runnable_bits <- t.runnable_bits land lnot (1 lsl pid))
        | _ -> None);
  }

let spawn t pid f =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.spawn: pid out of range";
  match t.status.(pid) with
  | Idle ->
      (* The loop keeps the fiber alive past the body's return: each
         completed run parks at [End_run], and resuming re-runs the body
         on the same stack. Observationally identical to a fresh fiber —
         the first turn after (re-)arming executes up to the body's
         first memory op without ticking the clock. Parking is gated on
         [snapped] (the pooling opt-in): a one-shot simulator's fibers
         return normally through [retc], handing their stack straight
         back to the runtime's cache instead of pinning it until the
         simulator is collected. *)
      let g () =
        let rec loop () =
          f ();
          if t.snapped then begin
            Effect.perform End_run;
            loop ()
          end
        in
        loop ()
      in
      t.status.(pid) <- Ready g;
      t.runnable_bits <- t.runnable_bits lor (1 lsl pid);
      t.code.(pid) <- Some g
  | _ -> invalid_arg "Sim.spawn: process already spawned"

let is_runnable t pid = t.runnable_bits land (1 lsl pid) <> 0

type footprint = Local | Access of int * Op.kind

let footprint t pid =
  match t.status.(pid) with
  | Blocked (Pending (op, _)) -> Access (op.Op.obj, op.Op.kind)
  | Ready _ | Parked _ | Idle | Done | Crashed -> Local

let footprints_commute a b =
  match (a, b) with
  | Local, _ | _, Local -> true
  | Access (o1, k1), Access (o2, k2) -> o1 <> o2 || (k1 = Op.Read && k2 = Op.Read)

(* Footprints packed into an int — [-1] for [Local], else
   [obj * 4 + kind] — so {!Explore}'s conflict checks allocate nothing. *)

let kind_code : Op.kind -> int = function Op.Read -> 0 | Op.Write -> 1 | Op.Rmw -> 2

let footprint_code t pid =
  match t.status.(pid) with
  | Blocked (Pending (op, _)) -> (op.Op.obj * 4) + kind_code op.Op.kind
  | Ready _ | Parked _ | Idle | Done | Crashed -> -1

let codes_commute a b =
  a < 0 || b < 0 || a lsr 2 <> b lsr 2 || (a land 3 = 0 && b land 3 = 0)

let runnable t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if is_runnable t i then i :: acc else acc) in
  go (t.n - 1) []

let runnable_bits t = t.runnable_bits

let runnable_count t =
  let c = ref 0 and b = ref t.runnable_bits in
  while !b <> 0 do
    b := !b land (!b - 1);
    incr c
  done;
  !c

let nth_runnable t k =
  let b = ref t.runnable_bits and k = ref k and pid = ref 0 in
  while !b land 1 = 0 || !k > 0 do
    if !b land 1 = 1 then decr k;
    b := !b lsr 1;
    incr pid
  done;
  !pid

let finished t pid = match t.status.(pid) with Done | Crashed -> true | _ -> false
let is_crashed t pid = match t.status.(pid) with Crashed -> true | _ -> false
let all_done t = t.runnable_bits = 0

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

let set_recovery t pid f =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.set_recovery: pid out of range";
  t.recov_code.(pid) <- Some f

let has_recovery t pid = t.recov_code.(pid) <> None
let recovery_due t pid = if t.recover_at.(pid) < 0 then None else Some t.recover_at.(pid)
let pending_recoveries t = t.pending_recov

(* Re-admit a crashed process: its recovery code runs on a fresh fiber.
   Unlike spawned bodies, recovery fibers never park at [End_run] — a
   parked recovery continuation would replay recovery (not the spawn
   body) after {!reset}, so they finish through [retc] and {!reset}
   re-arms the process from its remembered spawn code as usual. *)
let admit_recovery t pid =
  match t.recov_code.(pid) with
  | None -> assert false
  | Some f ->
      t.recover_at.(pid) <- -1;
      t.pending_recov <- t.pending_recov - 1;
      t.recoveries.(pid) <- t.recoveries.(pid) + 1;
      t.status.(pid) <- Ready f;
      t.runnable_bits <- t.runnable_bits lor (1 lsl pid);
      if t.obs_on then Scs_obs.Obs.recover t.obs ~pid

let admit_due_recoveries t =
  for pid = 0 to t.n - 1 do
    if t.recover_at.(pid) >= 0 && t.recover_at.(pid) <= t.clock then admit_recovery t pid
  done

let admit_stalled_recovery t =
  if t.runnable_bits <> 0 || t.pending_recov = 0 then false
  else begin
    (* Nothing can advance the clock, so waiting out the remaining delay
       is meaningless: admit the earliest-due pending recovery (ties
       broken towards the smallest pid) without advancing the clock. *)
    let best = ref (-1) in
    for pid = t.n - 1 downto 0 do
      if t.recover_at.(pid) >= 0 && (!best < 0 || t.recover_at.(pid) <= t.recover_at.(!best)) then
        best := pid
    done;
    admit_recovery t !best;
    true
  end

let account t pid (kind : Op.kind) =
  t.clock <- t.clock + 1;
  t.steps.(pid) <- t.steps.(pid) + 1;
  if t.pending_recov > 0 then admit_due_recoveries t;
  match kind with
  | Op.Read ->
      if t.dirty_write.(pid) then begin
        t.raw_fences.(pid) <- t.raw_fences.(pid) + 1;
        t.dirty_write.(pid) <- false
      end
  | Op.Write -> t.dirty_write.(pid) <- true
  | Op.Rmw ->
      t.rmws.(pid) <- t.rmws.(pid) + 1;
      t.dirty_write.(pid) <- false

let obs_kind : Op.kind -> Scs_obs.Obs.kind = function
  | Op.Read -> Scs_obs.Obs.Read
  | Op.Write -> Scs_obs.Obs.Write
  | Op.Rmw -> Scs_obs.Obs.Rmw

let record t pid (op : _ Op.t) =
  if t.obs_on then
    Scs_obs.Obs.step t.obs ~pid ~kind:(obs_kind op.Op.kind) ~obj:op.Op.obj
      ~obj_name:op.Op.obj_name ~info:op.Op.info;
  if t.record_trace then
    Vec.push t.trace
      {
        Mem_event.ts = t.clock;
        pid;
        kind = op.Op.kind;
        obj = op.Op.obj;
        obj_name = op.Op.obj_name;
        info = op.Op.info;
      }

let step t pid =
  match t.status.(pid) with
  | Idle -> invalid_arg "Sim.step: process not spawned"
  | Done | Crashed -> invalid_arg "Sim.step: process not runnable"
  | Ready f ->
      t.status.(pid) <- Done;
      t.cur_pid <- pid;
      (* will be overwritten by the handler or retc *)
      Effect.Deep.match_with f () (handler t pid);
      t.cur_pid <- -1
  | Parked k ->
      t.status.(pid) <- Done;
      t.cur_pid <- pid;
      (* resumes the spawn loop: runs the body up to its first memory op,
         exactly as starting a Ready fiber does *)
      Effect.Deep.continue k ();
      t.cur_pid <- -1
  | Blocked (Pending (op, k)) ->
      t.status.(pid) <- Done;
      t.cur_pid <- pid;
      account t pid op.Op.kind;
      record t pid op;
      let result = op.Op.run () in
      Effect.Deep.continue k result;
      t.cur_pid <- -1

let crash ?recover_after t pid =
  match t.status.(pid) with
  | Idle | Done | Crashed -> ()
  | Ready _ | Parked _ | Blocked _ ->
      (* The pending continuation is abandoned: the process takes no more
         steps, exactly as a crash failure in the model. Every crash
         additionally wipes all volatile objects (the model's shared
         cache loses power with the process); with no volatile objects
         allocated this is free, so fail-stop workloads are unchanged. *)
      t.status.(pid) <- Crashed;
      t.runnable_bits <- t.runnable_bits land lnot (1 lsl pid);
      Vec.iter (fun w -> w ()) t.volatile_wipes;
      (match recover_after with
      | Some d when t.recov_code.(pid) <> None ->
          if t.recover_at.(pid) < 0 then t.pending_recov <- t.pending_recov + 1;
          t.recover_at.(pid) <- t.clock + max 0 d
      | _ -> ());
      if t.obs_on then Scs_obs.Obs.crash t.obs ~pid

type decision = Sched of pid | Stop

let run t policy =
  let rec loop () =
    if t.clock > t.max_steps then
      raise (Livelock (Printf.sprintf "step budget %d exhausted at clock %d" t.max_steps t.clock));
    if t.runnable_bits = 0 then ignore (admit_stalled_recovery t);
    if not (all_done t) then begin
      match policy t with
      | Stop -> ()
      | Sched pid ->
          step t pid;
          loop ()
    end
  in
  loop ()

let run_fast t policy =
  let rec loop () =
    if t.clock > t.max_steps then
      raise (Livelock (Printf.sprintf "step budget %d exhausted at clock %d" t.max_steps t.clock));
    if t.runnable_bits = 0 then ignore (admit_stalled_recovery t);
    if t.runnable_bits <> 0 then begin
      let pid = policy t in
      if pid >= 0 then begin
        step t pid;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Pooling: snapshot / reset / clear                                   *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  Array.iter
    (fun st ->
      match st with
      | Idle | Ready _ -> ()
      | Parked _ | Blocked _ | Done | Crashed ->
          invalid_arg "Sim.snapshot: simulator already ran (snapshot must precede the first step)")
    t.status;
  t.snap_objs <- t.next_obj;
  t.snap_rmws <- t.rmw_objs;
  t.snap_resets <- Vec.length t.obj_resets;
  t.snap_wipes <- Vec.length t.volatile_wipes;
  t.snapped <- true

let reset t =
  if not t.snapped then invalid_arg "Sim.reset: no snapshot taken";
  (* Rewind every snapshotted object to its creation value; objects
     allocated after the snapshot (from inside fibers) are dropped. *)
  for i = 0 to t.snap_resets - 1 do
    (Vec.get t.obj_resets i) ()
  done;
  Vec.truncate t.obj_resets t.snap_resets;
  Vec.truncate t.volatile_wipes t.snap_wipes;
  t.next_obj <- t.snap_objs;
  t.rmw_objs <- t.snap_rmws;
  (* Re-arm the fibers: a process that completed its last run parked its
     continuation, so resume it on the same fiber stack; a process left
     mid-run (livelock abort, crash, policy stop) gets a fresh fiber
     from the remembered spawn code. A [Parked] process that was never
     scheduled last run is still armed — keep it. *)
  t.runnable_bits <- 0;
  for pid = 0 to t.n - 1 do
    (match t.park.(pid) with
    | Some k ->
        t.park.(pid) <- None;
        t.status.(pid) <- Parked k
    | None -> (
        match t.status.(pid) with
        | Parked _ -> ()
        | _ -> (
            match t.code.(pid) with
            | Some f -> t.status.(pid) <- Ready f
            | None -> t.status.(pid) <- Idle)));
    match t.status.(pid) with
    | Ready _ | Parked _ -> t.runnable_bits <- t.runnable_bits lor (1 lsl pid)
    | _ -> ()
  done;
  t.clock <- 0;
  t.cur_pid <- -1;
  Array.fill t.steps 0 t.n 0;
  Array.fill t.rmws 0 t.n 0;
  Array.fill t.raw_fences 0 t.n 0;
  Array.fill t.dirty_write 0 t.n false;
  (* Recovery entry points survive (they were installed by [setup], like
     spawn code); pending re-admissions and counters do not. *)
  Array.fill t.recover_at 0 t.n (-1);
  Array.fill t.recoveries 0 t.n 0;
  t.pending_recov <- 0;
  Vec.clear t.trace

let clear t =
  Array.fill t.status 0 t.n Idle;
  Array.fill t.code 0 t.n None;
  Array.fill t.park 0 t.n None;
  t.runnable_bits <- 0;
  t.clock <- 0;
  t.cur_pid <- -1;
  Array.fill t.steps 0 t.n 0;
  Array.fill t.rmws 0 t.n 0;
  Array.fill t.raw_fences 0 t.n 0;
  Array.fill t.dirty_write 0 t.n false;
  t.next_obj <- 1;
  t.rmw_objs <- 0;
  Vec.clear t.obj_resets;
  Vec.clear t.volatile_wipes;
  Array.fill t.recov_code 0 t.n None;
  Array.fill t.recover_at 0 t.n (-1);
  Array.fill t.recoveries 0 t.n 0;
  t.pending_recov <- 0;
  t.snap_objs <- 1;
  t.snap_rmws <- 0;
  t.snap_resets <- 0;
  t.snap_wipes <- 0;
  t.snapped <- false;
  Vec.clear t.trace

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let steps_of t pid = t.steps.(pid)
let total_steps t = Array.fold_left ( + ) 0 t.steps
let recoveries_of t pid = t.recoveries.(pid)
let total_recoveries t = Array.fold_left ( + ) 0 t.recoveries
let volatile_objects_allocated t = Vec.length t.volatile_wipes
let rmws_of t pid = t.rmws.(pid)
let raw_fences_of t pid = t.raw_fences.(pid)
let total_rmws t = Array.fold_left ( + ) 0 t.rmws
let total_raw_fences t = Array.fold_left ( + ) 0 t.raw_fences
let objects_allocated t = t.next_obj - 1
let rmw_objects_allocated t = t.rmw_objs

let reset_counters t =
  Array.fill t.steps 0 t.n 0;
  Array.fill t.rmws 0 t.n 0;
  Array.fill t.raw_fences 0 t.n 0;
  Array.fill t.dirty_write 0 t.n false

let obs t = t.obs
let set_trace t b = t.record_trace <- b
let trace t = Vec.to_list t.trace
let trace_arr t = Vec.to_array t.trace
