open Scs_util

type pid = int

exception Livelock of string
exception Process_failure of pid * exn

type pending = Pending : 'r Op.t * ('r, unit) Effect.Deep.continuation -> pending

type status =
  | Idle  (** no code installed *)
  | Ready of (unit -> unit)
  | Blocked of pending
  | Done
  | Crashed

type t = {
  n : int;
  max_steps : int;
  mutable clock : int;
  status : status array;
  steps : int array;
  rmws : int array;
  raw_fences : int array;
  dirty_write : bool array;  (** wrote since last fence-inducing event *)
  mutable next_obj : int;
  mutable rmw_objs : int;
  mutable record_trace : bool;
  trace : Mem_event.t Vec.t;
  pause_obj : int;
  obs : Scs_obs.Obs.t;
  obs_on : bool;  (** cached [Obs.enabled obs]: one load on the hot path *)
}

type _ Effect.t += Mem : 'r Op.t -> 'r Effect.t

let create ?(max_steps = 1_000_000) ?(obs = Scs_obs.Obs.null) ~n () =
  if Scs_obs.Obs.enabled obs && Scs_obs.Obs.n obs < n then
    invalid_arg "Sim.create: obs sink sized for fewer processes than n";
  {
    n;
    max_steps;
    clock = 0;
    status = Array.make n Idle;
    steps = Array.make n 0;
    rmws = Array.make n 0;
    raw_fences = Array.make n 0;
    dirty_write = Array.make n false;
    next_obj = 1;
    rmw_objs = 0;
    record_trace = false;
    trace = Vec.create ();
    pause_obj = 0;
    obs;
    obs_on = Scs_obs.Obs.enabled obs;
  }

let n t = t.n
let clock t = t.clock

(* ------------------------------------------------------------------ *)
(* Shared objects                                                      *)
(* ------------------------------------------------------------------ *)

let fresh_obj t =
  let id = t.next_obj in
  t.next_obj <- id + 1;
  id

type 'a reg = { mutable rv : 'a; r_id : int; r_name : string }

let reg t ~name v = { rv = v; r_id = fresh_obj t; r_name = name }

let read r =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = r.r_id; obj_name = r.r_name; info = ""; run = (fun () -> r.rv) })

let write r v =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Write;
         obj = r.r_id;
         obj_name = r.r_name;
         info = "";
         run = (fun () -> r.rv <- v);
       })

type tas_obj = { mutable t_set : bool; t_id : int; t_name : string }

let tas_obj t ~name () =
  t.rmw_objs <- t.rmw_objs + 1;
  { t_set = false; t_id = fresh_obj t; t_name = name }

let test_and_set o =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.t_id;
         obj_name = o.t_name;
         info = "tas";
         run =
           (fun () ->
             if o.t_set then false
             else begin
               o.t_set <- true;
               true
             end);
       })

let tas_read o =
  Effect.perform
    (Mem
       { Op.kind = Op.Read; obj = o.t_id; obj_name = o.t_name; info = ""; run = (fun () -> o.t_set) })

let tas_reset o =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Write;
         obj = o.t_id;
         obj_name = o.t_name;
         info = "reset";
         run = (fun () -> o.t_set <- false);
       })

type 'a cas_obj = { mutable c_v : 'a; c_id : int; c_name : string }

let cas_obj t ~name v =
  t.rmw_objs <- t.rmw_objs + 1;
  { c_v = v; c_id = fresh_obj t; c_name = name }

let cas_read o =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = o.c_id; obj_name = o.c_name; info = ""; run = (fun () -> o.c_v) })

let compare_and_swap o ~expect ~update =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.c_id;
         obj_name = o.c_name;
         info = "cas";
         run =
           (fun () ->
             if o.c_v == expect then begin
               o.c_v <- update;
               true
             end
             else false);
       })

type fai_obj = { mutable f_v : int; f_id : int; f_name : string }

let fai_obj t ~name v =
  t.rmw_objs <- t.rmw_objs + 1;
  { f_v = v; f_id = fresh_obj t; f_name = name }

let fetch_and_inc o =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.f_id;
         obj_name = o.f_name;
         info = "fai";
         run =
           (fun () ->
             let v = o.f_v in
             o.f_v <- v + 1;
             v);
       })

let fai_read o =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = o.f_id; obj_name = o.f_name; info = ""; run = (fun () -> o.f_v) })

type 'a swap_obj = { mutable s_v : 'a; s_id : int; s_name : string }

let swap_obj t ~name v =
  t.rmw_objs <- t.rmw_objs + 1;
  { s_v = v; s_id = fresh_obj t; s_name = name }

let swap o v =
  Effect.perform
    (Mem
       {
         Op.kind = Op.Rmw;
         obj = o.s_id;
         obj_name = o.s_name;
         info = "swap";
         run =
           (fun () ->
             let old = o.s_v in
             o.s_v <- v;
             old);
       })

let swap_read o =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = o.s_id; obj_name = o.s_name; info = ""; run = (fun () -> o.s_v) })

let pause t =
  Effect.perform
    (Mem { Op.kind = Op.Read; obj = t.pause_obj; obj_name = "pause"; info = ""; run = (fun () -> ()) })

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let handler t pid : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> t.status.(pid) <- Done);
    exnc =
      (fun e ->
        t.status.(pid) <- Done;
        raise (Process_failure (pid, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Mem op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.status.(pid) <- Blocked (Pending (op, k)))
        | _ -> None);
  }

let spawn t pid f =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.spawn: pid out of range";
  match t.status.(pid) with
  | Idle -> t.status.(pid) <- Ready f
  | _ -> invalid_arg "Sim.spawn: process already spawned"

let is_runnable t pid =
  match t.status.(pid) with Ready _ | Blocked _ -> true | Idle | Done | Crashed -> false

type footprint = Local | Access of int * Op.kind

let footprint t pid =
  match t.status.(pid) with
  | Blocked (Pending (op, _)) -> Access (op.Op.obj, op.Op.kind)
  | Ready _ | Idle | Done | Crashed -> Local

let footprints_commute a b =
  match (a, b) with
  | Local, _ | _, Local -> true
  | Access (o1, k1), Access (o2, k2) -> o1 <> o2 || (k1 = Op.Read && k2 = Op.Read)

let runnable t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if is_runnable t i then i :: acc else acc) in
  go (t.n - 1) []

let finished t pid = match t.status.(pid) with Done | Crashed -> true | _ -> false

let all_done t =
  let rec go i = i >= t.n || ((not (is_runnable t i)) && go (i + 1)) in
  go 0

let account t pid (kind : Op.kind) =
  t.clock <- t.clock + 1;
  t.steps.(pid) <- t.steps.(pid) + 1;
  match kind with
  | Op.Read ->
      if t.dirty_write.(pid) then begin
        t.raw_fences.(pid) <- t.raw_fences.(pid) + 1;
        t.dirty_write.(pid) <- false
      end
  | Op.Write -> t.dirty_write.(pid) <- true
  | Op.Rmw ->
      t.rmws.(pid) <- t.rmws.(pid) + 1;
      t.dirty_write.(pid) <- false

let obs_kind : Op.kind -> Scs_obs.Obs.kind = function
  | Op.Read -> Scs_obs.Obs.Read
  | Op.Write -> Scs_obs.Obs.Write
  | Op.Rmw -> Scs_obs.Obs.Rmw

let record t pid (op : _ Op.t) =
  if t.obs_on then
    Scs_obs.Obs.step t.obs ~pid ~kind:(obs_kind op.Op.kind) ~obj:op.Op.obj
      ~obj_name:op.Op.obj_name ~info:op.Op.info;
  if t.record_trace then
    Vec.push t.trace
      {
        Mem_event.ts = t.clock;
        pid;
        kind = op.Op.kind;
        obj = op.Op.obj;
        obj_name = op.Op.obj_name;
        info = op.Op.info;
      }

let step t pid =
  match t.status.(pid) with
  | Idle -> invalid_arg "Sim.step: process not spawned"
  | Done | Crashed -> invalid_arg "Sim.step: process not runnable"
  | Ready f ->
      t.status.(pid) <- Done;
      (* will be overwritten by the handler or retc *)
      Effect.Deep.match_with f () (handler t pid)
  | Blocked (Pending (op, k)) ->
      t.status.(pid) <- Done;
      account t pid op.Op.kind;
      record t pid op;
      let result = op.Op.run () in
      Effect.Deep.continue k result

let crash t pid =
  match t.status.(pid) with
  | Idle | Done | Crashed -> ()
  | Ready _ | Blocked _ ->
      (* The pending continuation is abandoned: the process takes no more
         steps, exactly as a crash failure in the model. *)
      t.status.(pid) <- Crashed;
      if t.obs_on then Scs_obs.Obs.crash t.obs ~pid

type decision = Sched of pid | Stop

let run t policy =
  let rec loop () =
    if t.clock > t.max_steps then
      raise (Livelock (Printf.sprintf "step budget %d exhausted at clock %d" t.max_steps t.clock));
    if not (all_done t) then begin
      match policy t with
      | Stop -> ()
      | Sched pid ->
          step t pid;
          loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let steps_of t pid = t.steps.(pid)
let total_steps t = Array.fold_left ( + ) 0 t.steps
let rmws_of t pid = t.rmws.(pid)
let raw_fences_of t pid = t.raw_fences.(pid)
let total_rmws t = Array.fold_left ( + ) 0 t.rmws
let total_raw_fences t = Array.fold_left ( + ) 0 t.raw_fences
let objects_allocated t = t.next_obj - 1
let rmw_objects_allocated t = t.rmw_objs

let reset_counters t =
  Array.fill t.steps 0 t.n 0;
  Array.fill t.rmws 0 t.n 0;
  Array.fill t.raw_fences 0 t.n 0;
  Array.fill t.dirty_write 0 t.n false

let obs t = t.obs
let set_trace t b = t.record_trace <- b
let trace t = Vec.to_list t.trace
let trace_arr t = Vec.to_array t.trace
