(** Crash-event specifications.

    A crash event names a victim process [pid], a trigger threshold [at]
    (the event fires once the victim has executed at least [at] memory
    steps — the same per-process step clock as
    {!Policy.with_crash_events}), and an optional recovery delay: [None]
    is a terminal, fail-stop crash; [Some d] re-admits the process's
    registered recovery code {!Sim.set_recovery} after [d] further
    global memory steps.

    The textual forms round-trip through the [.scsrepro] format:
    [pid@at] for a terminal crash and [pid@at+d] for a recovering one;
    lists are comma-separated, with ["-"] denoting the empty list. *)

type t = { pid : int; at : int; recover : int option }

val terminal : pid:int -> at:int -> t
val recovering : pid:int -> at:int -> after:int -> t

val of_pairs : (int * int) list -> t list
(** Terminal crash events from the historic [(pid, at)] pair encoding. *)

val is_recovering : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val canonical : t list -> t list
(** Sorted (ascending pid, then trigger step) with duplicates removed —
    the firing order the crash-arming policies use. *)

val to_string : t -> string
val of_string : string -> t option
val list_to_string : t list -> string
(** ["-"] for the empty list, else comma-separated {!to_string} forms. *)

val list_of_string : string -> t list option
val pp : Format.formatter -> t -> unit
