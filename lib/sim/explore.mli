(** Bounded stateless model checking of simulated algorithms.

    [exhaustive] enumerates interleavings (schedules) of the spawned
    processes. Continuations cannot be cloned, so branching requires
    re-running the simulation from scratch — but unlike the seed
    implementation, which replayed the whole prefix at {e every} DFS node
    (O(depth²) simulator turns per schedule), the engine enumerates
    schedules in leaf order with an explicit branch stack: the live
    simulator is stepped forward along the current path and a prefix is
    replayed only when backtracking to a node's next untried sibling, so a
    maximal schedule costs O(depth) turns.

    Two further accelerators are available:

    - [~por:true] enables conflict-based partial-order reduction (sleep
      sets). Two adjacent turns by different processes commute unless they
      access the same object with at least one write/RMW
      ({!Sim.footprints_commute}); branches whose first turn commutes with
      an already-explored sibling branch are pruned, so (on acyclic spaces
      like these terminating runs) at most one schedule per
      Mazurkiewicz-equivalence class is checked. [check] must therefore be
      insensitive to the order of commuting turns — true for final-state
      properties and for the repo's linearizability checks. Requires all
      shared objects to be allocated during [setup] (raises
      [Invalid_argument] if a fiber allocates one mid-run).
    - [~domains:k] with [k > 1] partitions the top-level branch frontier
      across [k] OCaml domains (work queue, per-domain counters,
      deterministic merge). Each subtree runs on its worker's own pooled
      simulator, so workers share no simulator state — but
      [setup]/[check] closures run concurrently and must be domain-safe.
      With the default [domains:1] existing callers are fully sequential
      and deterministic. Counts are deterministic for complete
      explorations; when the [max_schedules] budget trips, which
      schedules were checked may vary between runs.

    Backtrack replays reuse one pooled simulator per worker ({!Sim.clear}
    plus a fresh [setup] instead of a fresh allocation); the outcome
    reports the resulting create/reuse split. *)

type outcome = {
  schedules : int;  (** maximal schedules checked (never exceeds budget) *)
  truncated : bool;  (** true if a budget stopped the enumeration early *)
  truncated_runs : int;
      (** runs cut by [max_depth]; not counted as schedules, not checked *)
  pruned : int;  (** branches pruned by partial-order reduction *)
  steps_replayed : int;
      (** total simulator turns executed, including backtrack replays *)
  sims_created : int;  (** fresh simulator allocations (one per worker) *)
  sims_reused : int;
      (** backtrack replays served by rewinding the worker's pooled
          simulator ({!Sim.clear}) instead of allocating a fresh one *)
  wall_s : float;  (** wall-clock seconds for the whole exploration *)
}

exception Replay_drift of int
(** A recorded schedule could not be replayed because the pid was no longer
    runnable — the simulation is not deterministic w.r.t. the schedule
    (e.g. [setup] depends on mutable state outside the simulator). The seed
    implementation silently skipped such pids, masking the drift. *)

val exhaustive :
  ?max_schedules:int ->
  ?max_depth:int ->
  ?por:bool ->
  ?domains:int ->
  ?obs:Scs_obs.Obs.t ->
  n:int ->
  setup:(Sim.t -> unit) ->
  check:(Sim.t -> Sim.pid list -> unit) ->
  unit ->
  outcome
(** [setup] must create shared objects and spawn all processes on the fresh
    simulator it receives. [check sim schedule] is called after each maximal
    run ([schedule] is the executed pid sequence); it should raise to report
    a violation. [max_schedules] budgets {e terminated runs} — maximal
    schedules and depth-truncated runs together — so exploration cost stays
    bounded even on spaces where most runs exceed [max_depth]. Defaults:
    [max_schedules = 200_000], [max_depth = 10_000], [por = false],
    [domains = 1].

    [obs] (default {!Scs_obs.Obs.null}) is attached to every simulator
    the engine creates, aggregating step counters across all explored
    schedules (including backtrack replays). With [domains > 1] each
    worker domain records into a private sink which is folded into
    [obs] at join ({!Scs_obs.Obs.merge_into}, worker-index order):
    counter totals are exact; the bounded ring's surviving events
    depend on which worker picked up which subtree. *)

val random_runs :
  ?runs:int ->
  ?seed:int ->
  n:int ->
  setup:(Sim.t -> unit) ->
  check:(Sim.t -> unit) ->
  unit ->
  unit
(** [runs] (default 200) random-schedule simulations with distinct streams
    derived from [seed] (default 42). All runs reuse one pooled simulator
    ({!Sim.clear} + [setup] per run) under the allocation-free scheduling
    loop; schedules are identical to the historic fresh-simulator
    engine. *)
