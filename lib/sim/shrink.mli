(** Automatic counterexample shrinking by delta debugging.

    Minimizes a failing [(n, schedule, crashes)] triple found by {!Fuzz}
    while preserving the failure. The shrink lattice, coarse to fine:

    + drop each injected crash event;
    + simplify recovery placement: turn a recovering crash into a
      terminal one if the recovery is not load-bearing, else shrink its
      re-admission delay to 0 (the crash position itself never moves, so
      a repro that needs recover-during-contention keeps it);
    + drop every turn of a whole process (and its crash events);
    + remove contiguous schedule chunks, ddmin-style, halving chunk
      sizes down to single turns;
    + remove non-adjacent turn {e pairs} (only for schedules ≤ 64 turns
      — O(L²) replays).

    Passes repeat until a fixpoint (or [max_rounds]), so the result is
    locally minimal: no single crash, process, remaining turn, or short
    pair can be removed without losing the violation.

    Every candidate is re-validated by {!Fuzz.replay} with
    [Policy.scripted ~strict:true]; candidates that drift
    ({!Policy.Replay_drift}), livelock, or raise {!Fuzz.Skip} are
    rejected, never silently mangled. *)

type stats = {
  attempts : int;  (** candidate replays executed *)
  accepted : int;  (** reductions that preserved the failure *)
  drifted : int;  (** candidates rejected by {!Policy.Replay_drift} *)
  rounds : int;
  orig_len : int;
  final_len : int;
}

val minimize :
  ?max_rounds:int ->
  ?max_steps:int ->
  n:int ->
  setup:(Sim.t -> unit) ->
  check:(Sim.t -> unit) ->
  schedule:int array ->
  crashes:Crash.t list ->
  unit ->
  (int array * Crash.t list) * stats
(** [minimize ~n ~setup ~check ~schedule ~crashes ()] returns the
    minimized triple and shrink statistics. [check] must raise
    {!Fuzz.Violation} on the property violation being preserved.
    Raises [Invalid_argument] if the input triple does not reproduce
    the violation in the first place. *)
