(** Run-pool of simulators.

    Amortises harness cost across schedules: an acquired simulator is a
    released one rewound with {!Sim.clear} (arena capacities kept, so
    repeated setup+run cycles stop hitting the allocator) or, when the
    free list is empty, a fresh {!Sim.create}. Instances may be held
    across deferred verification — the pool grows to the number of
    simultaneously-held simulators and then reuses forever.

    Not thread-safe: use one pool per domain. *)

type t

type stats = {
  mutable created : int;  (** fresh [Sim.create] calls *)
  mutable reused : int;  (** acquisitions served by [Sim.clear] reuse *)
  mutable peak_objects : int;  (** largest object arena seen at release *)
  mutable peak_turns : int;  (** longest run (memory steps) seen at release *)
}

val create : ?max_steps:int -> ?obs:Scs_obs.Obs.t -> n:int -> unit -> t
(** All simulators built by this pool share these creation parameters
    (including the obs sink, which accumulates across runs as usual). *)

val acquire : t -> Sim.t
(** Take a simulator in post-[create] state (cleared if reused). *)

val release : t -> Sim.t -> unit
(** Return a simulator to the free list (records peak arena sizes; the
    actual rewind happens at the next {!acquire}). Do not use the
    simulator after releasing it. *)

val with_sim : t -> (Sim.t -> 'a) -> 'a
(** [acquire]/[release] bracket, exception-safe. *)

val stats : t -> stats
(** Snapshot of the counters so far. *)

val size : t -> int
(** Simulators currently on the free list. *)

val zero_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit
(** Sum counters, max the peaks — for aggregating per-domain pools. *)
