open Scs_util

type outcome = {
  schedules : int;
  truncated : bool;
  truncated_runs : int;
  pruned : int;
  steps_replayed : int;
  wall_s : float;
}

exception Replay_drift = Policy.Replay_drift

(* Per-engine mutable state. One [ctx] per worker domain; [run_count] is
   the only piece shared between workers: the global budget over
   terminated runs, maximal and depth-truncated alike (a budget over
   maximal runs only would let a deep, mostly-truncating space consume
   unbounded work without ever touching the budget). *)
type ctx = {
  n : int;
  obs : Scs_obs.Obs.t;
  setup : Sim.t -> unit;
  check : Sim.t -> Sim.pid list -> unit;
  por : bool;
  max_depth : int;
  max_schedules : int;
  run_count : int Atomic.t;
  mutable schedules : int;  (** maximal runs checked by this worker *)
  mutable base_objs : int;  (** objects allocated by [setup]; POR guard *)
  mutable steps : int;
  mutable pruned : int;
  mutable truncated_runs : int;
  mutable truncated : bool;
  mutable stop : bool;
}

let mk_ctx ~n ~obs ~setup ~check ~por ~max_depth ~max_schedules ~run_count =
  {
    n;
    obs;
    setup;
    check;
    por;
    max_depth;
    max_schedules;
    run_count;
    schedules = 0;
    base_objs = 0;
    steps = 0;
    pruned = 0;
    truncated_runs = 0;
    truncated = false;
    stop = false;
  }

(* Charge one terminated run against the global budget; [true] iff the
   budget is exhausted (callers flag truncation and stop). *)
let budget_spent ctx =
  let c = Atomic.fetch_and_add ctx.run_count 1 in
  c >= ctx.max_schedules

let fresh_sim ctx =
  let sim = Sim.create ~obs:ctx.obs ~n:ctx.n () in
  ctx.setup sim;
  ctx.base_objs <- Sim.objects_allocated sim;
  sim

let step ctx sim p =
  Sim.step sim p;
  ctx.steps <- ctx.steps + 1;
  if ctx.por && Sim.objects_allocated sim <> ctx.base_objs then
    invalid_arg
      "Explore.exhaustive: ~por:true requires all shared objects to be \
       allocated during setup (a fiber allocated one mid-run, so step \
       footprints no longer capture all shared effects)"

(* Rebuild the simulator state after [prefix] (pids in execution order).
   Unlike the seed implementation this refuses to skip a pid that is not
   runnable: a silently dropped step would mean the recorded schedule has
   drifted from what was actually executed. *)
let replay ctx prefix =
  let sim = fresh_sim ctx in
  List.iter
    (fun p ->
      if not (Sim.is_runnable sim p) then raise (Replay_drift p);
      step ctx sim p)
    prefix;
  sim

let leaf ctx sim rev_prefix =
  if budget_spent ctx then begin
    ctx.truncated <- true;
    ctx.stop <- true
  end
  else begin
    ctx.schedules <- ctx.schedules + 1;
    ctx.check sim (List.rev rev_prefix)
  end

(* Single-replay DFS with sleep sets.

   The recursion owns a live simulator positioned at the current node. The
   first child is explored by stepping the live simulator forward (no
   replay); each later sibling replays the prefix once. A maximal schedule
   therefore costs O(depth) simulator turns instead of the seed's O(depth)
   replays per node (O(depth^2) turns per schedule).

   [sleep] is the sleep set of the node: pids whose next turn has already
   been explored from an equivalent state along a sibling branch. When
   [ctx.por] is set, enabled-but-sleeping pids are pruned; a child's sleep
   set keeps exactly the sleepers (plus earlier siblings) whose pending turn
   commutes with the branching turn. *)
let rec dfs ctx sim rev_prefix depth sleep =
  if not ctx.stop then
    match Sim.runnable sim with
    | [] -> leaf ctx sim rev_prefix
    | enabled ->
        if depth >= ctx.max_depth then begin
          ctx.truncated_runs <- ctx.truncated_runs + 1;
          ctx.truncated <- true;
          if budget_spent ctx then ctx.stop <- true
        end
        else begin
          let sleeping, candidates =
            if ctx.por then List.partition (fun p -> List.mem p sleep) enabled
            else ([], enabled)
          in
          ctx.pruned <- ctx.pruned + List.length sleeping;
          let fps = List.map (fun p -> (p, Sim.footprint sim p)) enabled in
          let fp p = List.assoc p fps in
          let child_sleep p explored =
            if ctx.por then
              List.filter
                (fun q -> q <> p && Sim.footprints_commute (fp q) (fp p))
                (sleeping @ explored)
            else []
          in
          let rec branch sim explored = function
            | [] -> ()
            | p :: rest ->
                if not ctx.stop then begin
                  let sim =
                    match sim with
                    | Some s -> s
                    | None -> replay ctx (List.rev rev_prefix)
                  in
                  let sl = child_sleep p explored in
                  step ctx sim p;
                  dfs ctx sim (p :: rev_prefix) (depth + 1) sl;
                  branch None (p :: explored) rest
                end
          in
          branch (Some sim) [] candidates
        end

(* ------------------------------------------------------------------ *)
(* Multicore fan-out                                                   *)
(* ------------------------------------------------------------------ *)

type task = { t_prefix : int list (* execution order *); t_sleep : int list }

(* Expand the root into a frontier of independent subtree tasks, enough to
   keep [domains] workers busy. Expansion runs in the calling domain and
   uses the same sleep-set rule as [dfs], so the union of the tasks covers
   exactly the schedules the sequential engine would visit. Leaves met
   during expansion are checked inline. *)
let expand_frontier ctx ~target =
  let frontier = Queue.create () in
  Queue.add { t_prefix = []; t_sleep = [] } frontier;
  let out = ref [] in
  let budget_depth = 8 in
  while (not ctx.stop) && Queue.length frontier > 0
        && Queue.length frontier + List.length !out < target do
    let t = Queue.pop frontier in
    if List.length t.t_prefix >= budget_depth then out := t :: !out
    else begin
      let sim = replay ctx t.t_prefix in
      match Sim.runnable sim with
      | [] -> leaf ctx sim (List.rev t.t_prefix)
      | enabled ->
          let sleeping, candidates =
            if ctx.por then List.partition (fun p -> List.mem p t.t_sleep) enabled
            else ([], enabled)
          in
          ctx.pruned <- ctx.pruned + List.length sleeping;
          let fps = List.map (fun p -> (p, Sim.footprint sim p)) enabled in
          let fp p = List.assoc p fps in
          let explored = ref [] in
          List.iter
            (fun p ->
              let sl =
                if ctx.por then
                  List.filter
                    (fun q -> q <> p && Sim.footprints_commute (fp q) (fp p))
                    (sleeping @ !explored)
                else []
              in
              Queue.add { t_prefix = t.t_prefix @ [ p ]; t_sleep = sl } frontier;
              explored := p :: !explored)
            candidates
    end
  done;
  Queue.fold (fun acc t -> t :: acc) !out frontier

let run_tasks ctx tasks =
  match
    List.iter
      (fun t ->
        if not ctx.stop then begin
          let sim = replay ctx t.t_prefix in
          dfs ctx sim (List.rev t.t_prefix) (List.length t.t_prefix) t.t_sleep
        end)
      tasks
  with
  | () -> (ctx, None)
  | exception e -> (ctx, Some e)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let exhaustive ?(max_schedules = 200_000) ?(max_depth = 10_000) ?(por = false)
    ?(domains = 1) ?(obs = Scs_obs.Obs.null) ~n ~setup ~check () =
  if Scs_obs.Obs.enabled obs && domains > 1 then
    invalid_arg "Explore.exhaustive: ~obs requires ~domains:1 (the sink is not domain-safe)";
  let t0 = Unix.gettimeofday () in
  let run_count = Atomic.make 0 in
  let mk () = mk_ctx ~n ~obs ~setup ~check ~por ~max_depth ~max_schedules ~run_count in
  let ctxs, exns =
    if domains <= 1 then begin
      let ctx = mk () in
      let sim = fresh_sim ctx in
      dfs ctx sim [] 0 [];
      ([ ctx ], [])
    end
    else begin
      let root = mk () in
      let tasks = expand_frontier root ~target:(4 * domains) in
      let queue = Array.of_list tasks in
      let next = Atomic.make 0 in
      let worker () =
        let ctx = mk () in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i >= Array.length queue || ctx.stop then (ctx, None)
          else
            match run_tasks ctx [ queue.(i) ] with
            | _, None -> loop ()
            | _, Some _ as r -> r
        in
        loop ()
      in
      let others = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      let mine = worker () in
      let joined = mine :: Array.to_list (Array.map Domain.join others) in
      ( root :: List.map fst joined,
        List.filter_map snd joined )
    end
  in
  (match exns with e :: _ -> raise e | [] -> ());
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 ctxs in
  {
    schedules = sum (fun c -> c.schedules);
    truncated = List.exists (fun c -> c.truncated) ctxs;
    truncated_runs = sum (fun c -> c.truncated_runs);
    pruned = sum (fun c -> c.pruned);
    steps_replayed = sum (fun c -> c.steps);
    wall_s = Unix.gettimeofday () -. t0;
  }

let random_runs ?(runs = 200) ?(seed = 42) ~n ~setup ~check () =
  let rng = Rng.create seed in
  for _ = 1 to runs do
    let sim = Sim.create ~n () in
    setup sim;
    let policy = Policy.random (Rng.split rng) in
    Sim.run sim policy;
    check sim
  done
