open Scs_util

type outcome = {
  schedules : int;
  truncated : bool;
  truncated_runs : int;
  pruned : int;
  steps_replayed : int;
  sims_created : int;
  sims_reused : int;
  wall_s : float;
}

exception Replay_drift = Policy.Replay_drift

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

(* lowest set bit index of a non-zero mask *)
let lsb m =
  let i = ref 0 and m = ref m in
  while !m land 1 = 0 do
    m := !m lsr 1;
    incr i
  done;
  !i

(* Per-engine mutable state. One [ctx] per worker domain; [run_count] is
   the only piece shared between workers: the global budget over
   terminated runs, maximal and depth-truncated alike (a budget over
   maximal runs only would let a deep, mostly-truncating space consume
   unbounded work without ever touching the budget). *)
type ctx = {
  n : int;
  obs : Scs_obs.Obs.t;
  setup : Sim.t -> unit;
  check : Sim.t -> Sim.pid list -> unit;
  por : bool;
  max_depth : int;
  max_schedules : int;
  run_count : int Atomic.t;
  mutable schedules : int;  (** maximal runs checked by this worker *)
  mutable base_objs : int;  (** objects allocated by [setup]; POR guard *)
  mutable steps : int;
  mutable pruned : int;
  mutable truncated_runs : int;
  mutable truncated : bool;
  mutable stop : bool;
  mutable cached : Sim.t option;  (** the worker's pooled simulator *)
  mutable created : int;  (** fresh [Sim.create]s *)
  mutable reused : int;  (** [Sim.clear] rewinds instead of creates *)
}

let mk_ctx ~n ~obs ~setup ~check ~por ~max_depth ~max_schedules ~run_count =
  {
    n;
    obs;
    setup;
    check;
    por;
    max_depth;
    max_schedules;
    run_count;
    schedules = 0;
    base_objs = 0;
    steps = 0;
    pruned = 0;
    truncated_runs = 0;
    truncated = false;
    stop = false;
    cached = None;
    created = 0;
    reused = 0;
  }

(* Charge one terminated run against the global budget; [true] iff the
   budget is exhausted (callers flag truncation and stop). *)
let budget_spent ctx =
  let c = Atomic.fetch_and_add ctx.run_count 1 in
  c >= ctx.max_schedules

(* Rewind the worker's pooled simulator and re-run [setup] — a fresh
   start without reallocating arenas. Safe because the DFS only ever
   advances the newest simulator: by the time a backtrack replays, no
   frame touches the previous instance again. *)
let fresh_sim ctx =
  let sim =
    match ctx.cached with
    | Some s ->
        ctx.reused <- ctx.reused + 1;
        Sim.clear s;
        s
    | None ->
        ctx.created <- ctx.created + 1;
        let s = Sim.create ~obs:ctx.obs ~n:ctx.n () in
        ctx.cached <- Some s;
        s
  in
  ctx.setup sim;
  ctx.base_objs <- Sim.objects_allocated sim;
  sim

let step ctx sim p =
  Sim.step sim p;
  ctx.steps <- ctx.steps + 1;
  if ctx.por && Sim.objects_allocated sim <> ctx.base_objs then
    invalid_arg
      "Explore.exhaustive: ~por:true requires all shared objects to be \
       allocated during setup (a fiber allocated one mid-run, so step \
       footprints no longer capture all shared effects)"

(* Rebuild the simulator state after [prefix] (pids in execution order).
   Unlike the seed implementation this refuses to skip a pid that is not
   runnable: a silently dropped step would mean the recorded schedule has
   drifted from what was actually executed. *)
let replay ctx prefix =
  let sim = fresh_sim ctx in
  List.iter
    (fun p ->
      if not (Sim.is_runnable sim p) then raise (Replay_drift p);
      step ctx sim p)
    prefix;
  sim

let leaf ctx sim rev_prefix =
  if budget_spent ctx then begin
    ctx.truncated <- true;
    ctx.stop <- true
  end
  else begin
    ctx.schedules <- ctx.schedules + 1;
    ctx.check sim (List.rev rev_prefix)
  end

(* Packed footprint codes ({!Sim.footprint_code}) for every enabled pid
   at the current node; -1 (Local, commutes with everything) elsewhere.
   One small array per node — it must survive the recursion into earlier
   children, so it cannot live in a per-ctx scratch buffer. *)
let node_codes ctx sim enabled =
  Array.init ctx.n (fun p ->
      if enabled land (1 lsl p) <> 0 then Sim.footprint_code sim p else -1)

(* Single-replay DFS with sleep sets.

   The recursion owns a live simulator positioned at the current node. The
   first child is explored by stepping the live simulator forward (no
   replay); each later sibling replays the prefix once — into the same
   pooled simulator, rewound with [Sim.clear]. A maximal schedule
   therefore costs O(depth) simulator turns instead of the seed's O(depth)
   replays per node (O(depth^2) turns per schedule), and zero simulator
   allocations after the first.

   [sleep] is the sleep set of the node as a pid bitmask: pids whose next
   turn has already been explored from an equivalent state along a sibling
   branch. When [ctx.por] is set, enabled-but-sleeping pids are pruned; a
   child's sleep set keeps exactly the sleepers (plus earlier siblings)
   whose pending turn commutes with the branching turn
   ({!Sim.codes_commute} on packed footprint codes — no allocation). *)
let rec dfs ctx sim rev_prefix depth sleep =
  if not ctx.stop then begin
    let enabled = Sim.runnable_bits sim in
    if enabled = 0 then leaf ctx sim rev_prefix
    else if depth >= ctx.max_depth then begin
      ctx.truncated_runs <- ctx.truncated_runs + 1;
      ctx.truncated <- true;
      if budget_spent ctx then ctx.stop <- true
    end
    else begin
      let sleeping = if ctx.por then enabled land sleep else 0 in
      let candidates = enabled land lnot sleeping in
      ctx.pruned <- ctx.pruned + popcount sleeping;
      let codes = if ctx.por then node_codes ctx sim enabled else [||] in
      let child_sleep p explored =
        if not ctx.por then 0
        else begin
          let base = (sleeping lor explored) land lnot (1 lsl p) in
          let out = ref 0 in
          let m = ref base in
          while !m <> 0 do
            let q = lsb !m in
            m := !m land (!m - 1);
            if Sim.codes_commute codes.(q) codes.(p) then out := !out lor (1 lsl q)
          done;
          !out
        end
      in
      (* children in ascending pid order, lowest set bit first *)
      let rec branch sim explored m =
        if m <> 0 && not ctx.stop then begin
          let p = lsb m in
          let sim =
            match sim with
            | Some s -> s
            | None -> replay ctx (List.rev rev_prefix)
          in
          let sl = child_sleep p explored in
          step ctx sim p;
          dfs ctx sim (p :: rev_prefix) (depth + 1) sl;
          branch None (explored lor (1 lsl p)) (m land (m - 1))
        end
      in
      branch (Some sim) 0 candidates
    end
  end

(* ------------------------------------------------------------------ *)
(* Multicore fan-out                                                   *)
(* ------------------------------------------------------------------ *)

type task = { t_prefix : int list (* execution order *); t_sleep : int (* pid mask *) }

(* Expand the root into a frontier of independent subtree tasks, enough to
   keep [domains] workers busy. Expansion runs in the calling domain and
   uses the same sleep-set rule as [dfs], so the union of the tasks covers
   exactly the schedules the sequential engine would visit. Leaves met
   during expansion are checked inline. *)
let expand_frontier ctx ~target =
  let frontier = Queue.create () in
  Queue.add { t_prefix = []; t_sleep = 0 } frontier;
  let out = ref [] in
  let budget_depth = 8 in
  while (not ctx.stop) && Queue.length frontier > 0
        && Queue.length frontier + List.length !out < target do
    let t = Queue.pop frontier in
    if List.length t.t_prefix >= budget_depth then out := t :: !out
    else begin
      let sim = replay ctx t.t_prefix in
      let enabled = Sim.runnable_bits sim in
      if enabled = 0 then leaf ctx sim (List.rev t.t_prefix)
      else begin
        let sleeping = if ctx.por then enabled land t.t_sleep else 0 in
        let candidates = enabled land lnot sleeping in
        ctx.pruned <- ctx.pruned + popcount sleeping;
        let codes = if ctx.por then node_codes ctx sim enabled else [||] in
        let explored = ref 0 in
        let m = ref candidates in
        while !m <> 0 do
          let p = lsb !m in
          m := !m land (!m - 1);
          let sl =
            if not ctx.por then 0
            else begin
              let base = (sleeping lor !explored) land lnot (1 lsl p) in
              let out = ref 0 in
              let b = ref base in
              while !b <> 0 do
                let q = lsb !b in
                b := !b land (!b - 1);
                if Sim.codes_commute codes.(q) codes.(p) then out := !out lor (1 lsl q)
              done;
              !out
            end
          in
          Queue.add { t_prefix = t.t_prefix @ [ p ]; t_sleep = sl } frontier;
          explored := !explored lor (1 lsl p)
        done
      end
    end
  done;
  Queue.fold (fun acc t -> t :: acc) !out frontier

let run_tasks ctx tasks =
  match
    List.iter
      (fun t ->
        if not ctx.stop then begin
          let sim = replay ctx t.t_prefix in
          dfs ctx sim (List.rev t.t_prefix) (List.length t.t_prefix) t.t_sleep
        end)
      tasks
  with
  | () -> (ctx, None)
  | exception e -> (ctx, Some e)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let exhaustive ?(max_schedules = 200_000) ?(max_depth = 10_000) ?(por = false)
    ?(domains = 1) ?(obs = Scs_obs.Obs.null) ~n ~setup ~check () =
  let t0 = Unix.gettimeofday () in
  let run_count = Atomic.make 0 in
  let mk ~obs () = mk_ctx ~n ~obs ~setup ~check ~por ~max_depth ~max_schedules ~run_count in
  let ctxs, exns =
    if domains <= 1 then begin
      let ctx = mk ~obs () in
      let sim = fresh_sim ctx in
      dfs ctx sim [] 0 0;
      ([ ctx ], [])
    end
    else begin
      (* Root expansion runs in the calling domain against the user's
         sink; each worker then gets a private sink (merged at join in
         worker-index order), so an enabled sink no longer restricts
         exploration to one domain. *)
      let fan_obs = Scs_obs.Obs.enabled obs in
      let worker_obs =
        Array.init (domains - 1) (fun _ ->
            if fan_obs then
              Scs_obs.Obs.create ~ring_capacity:(Scs_obs.Obs.ring_capacity obs) ~n ()
            else obs)
      in
      let root = mk ~obs () in
      let tasks = expand_frontier root ~target:(4 * domains) in
      let queue = Array.of_list tasks in
      let next = Atomic.make 0 in
      let worker wobs () =
        let ctx = mk ~obs:wobs () in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i >= Array.length queue || ctx.stop then (ctx, None)
          else
            match run_tasks ctx [ queue.(i) ] with
            | _, None -> loop ()
            | _, Some _ as r -> r
        in
        loop ()
      in
      let others =
        Array.init (domains - 1) (fun i -> Domain.spawn (worker worker_obs.(i)))
      in
      let mine = worker obs () in
      let joined = mine :: Array.to_list (Array.map Domain.join others) in
      if fan_obs then
        Array.iter (fun wobs -> Scs_obs.Obs.merge_into ~into:obs wobs) worker_obs;
      ( root :: List.map fst joined,
        List.filter_map snd joined )
    end
  in
  (match exns with e :: _ -> raise e | [] -> ());
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 ctxs in
  {
    schedules = sum (fun c -> c.schedules);
    truncated = List.exists (fun c -> c.truncated) ctxs;
    truncated_runs = sum (fun c -> c.truncated_runs);
    pruned = sum (fun c -> c.pruned);
    steps_replayed = sum (fun c -> c.steps);
    sims_created = sum (fun c -> c.created);
    sims_reused = sum (fun c -> c.reused);
    wall_s = Unix.gettimeofday () -. t0;
  }

let random_runs ?(runs = 200) ?(seed = 42) ~n ~setup ~check () =
  let rng = Rng.create seed in
  let sim = Sim.create ~n () in
  for i = 1 to runs do
    if i > 1 then Sim.clear sim;
    setup sim;
    Sim.run_fast sim (Policy.fast_random (Rng.split rng));
    check sim
  done
