(** Low-level memory trace events: one per executed shared-memory step.

    This is the repo's representation of the paper's step-complexity
    currency (§2): every base-object access a process performs — read,
    write, or atomic read-modify-write — appears as exactly one event,
    so counting events {e is} counting steps. Two consumers build on
    this stream:

    - {!Detect} scans a completed trace post hoc to classify operation
      intervals by contention (the reference implementation of the
      estimators);
    - {!Scs_obs.Obs} receives the same information online, one hook call
      per step, and aggregates it without retaining the stream.

    Recording the full stream is O(run length) memory, so {!Sim} only
    keeps it when asked ([trace] in the simulator API); the obs sink is
    the bounded-memory alternative. *)

type t = {
  ts : int;  (** global logical time: value of the step counter after the step.
                 Intervals in {!Detect} use the convention
                 [start < ts <= end], i.e. [ts] at invocation excludes
                 steps already counted. *)
  pid : int;  (** the process that took the step *)
  kind : Op.kind;  (** read, write, or RMW (the paper charges all three one step) *)
  obj : int;  (** dense object id, unique per base object *)
  obj_name : string;  (** human-readable name, e.g. ["bakery.A[3]"] *)
  info : string;  (** operation detail, e.g. ["cas 0->1"]; drives the
                      CAS-attempt counter of {!Scs_obs.Obs} *)
}

val to_string : t -> string
(** One-line rendering, e.g. ["[ 12] p1 rmw bakery.Dec cas 0->1"]. *)
