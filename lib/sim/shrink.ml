(* Delta-debugging minimizer for failing (schedule, crashes) triples.

   Every candidate is validated by a full strict-scripted replay: a
   reduction is kept only if the replayed run still raises
   [Fuzz.Violation]. A candidate whose schedule no longer matches the
   execution (a removed turn changed a branch, so a later scripted pid is
   not runnable) raises [Policy.Replay_drift] and is rejected — shrunk
   schedules are never silently mangled into different runs. *)

type stats = {
  attempts : int;
  accepted : int;
  drifted : int;
  rounds : int;
  orig_len : int;
  final_len : int;
}

let remove_span a i len =
  Array.append (Array.sub a 0 i) (Array.sub a (i + len) (Array.length a - i - len))

let remove_two a i j =
  (* i < j *)
  Array.init
    (Array.length a - 2)
    (fun k ->
      let k = if k >= i then k + 1 else k in
      let k = if k >= j then k + 1 else k in
      a.(k))

let minimize ?(max_rounds = 16) ?max_steps ~n ~setup ~check ~schedule ~crashes () =
  let attempts = ref 0 and accepted = ref 0 and drifted = ref 0 in
  let reproduces sched crs =
    incr attempts;
    match
      let sim = Fuzz.replay ?max_steps ~n ~setup ~schedule:sched ~crashes:crs () in
      check sim
    with
    | () -> false
    | exception Fuzz.Violation _ -> true
    | exception Policy.Replay_drift _ ->
        incr drifted;
        false
    | exception Fuzz.Skip _ -> false
    | exception Sim.Livelock _ -> false
  in
  if not (reproduces schedule crashes) then
    invalid_arg "Shrink.minimize: input triple does not reproduce the violation";
  let sched = ref schedule and crs = ref crashes in
  let accept s c =
    sched := s;
    crs := c;
    incr accepted
  in

  (* each crash is either load-bearing or dead weight *)
  let pass_crashes () =
    let changed = ref false in
    List.iter
      (fun c ->
        if List.mem c !crs then begin
          let cand = List.filter (fun c' -> c' <> c) !crs in
          if reproduces !sched cand then begin
            accept !sched cand;
            changed := true
          end
        end)
      !crs;
    !changed
  in

  (* simplify recovery placement without moving the crash itself: a
     recovering crash whose recovery is not load-bearing becomes a
     terminal one; otherwise long re-admission delays shrink to 0 so
     the minimal repro recovers at the earliest legal point *)
  let pass_recovery () =
    let changed = ref false in
    List.iter
      (fun (c : Crash.t) ->
        if List.mem c !crs then
          match c.recover with
          | None -> ()
          | Some d ->
              let attempt c' =
                let cand =
                  Crash.canonical
                    (List.map (fun c0 -> if Crash.equal c0 c then c' else c0) !crs)
                in
                if reproduces !sched cand then begin
                  accept !sched cand;
                  changed := true;
                  true
                end
                else false
              in
              if (not (attempt { c with recover = None })) && d > 0 then
                ignore (attempt { c with recover = Some 0 }))
      !crs;
    !changed
  in

  (* drop entire processes: the strongest single reduction (F-1 at n=4
     typically shrinks to a 3-process core this way) *)
  let pass_processes () =
    let changed = ref false in
    let pids = List.sort_uniq compare (Array.to_list !sched) in
    List.iter
      (fun p ->
        let s = Array.of_list (List.filter (fun q -> q <> p) (Array.to_list !sched)) in
        let c = List.filter (fun (c : Crash.t) -> c.pid <> p) !crs in
        if Array.length s < Array.length !sched && reproduces s c then begin
          accept s c;
          changed := true
        end)
      pids;
    !changed
  in

  (* ddmin-style contiguous chunk removal, halving sizes down to single
     turns; on success stay at the same index (the array shifted left) *)
  let pass_chunks () =
    let changed = ref false in
    let size = ref (max 1 (Array.length !sched / 2)) in
    while !size >= 1 do
      let i = ref 0 in
      while !i + !size <= Array.length !sched do
        let cand = remove_span !sched !i !size in
        if reproduces cand !crs then begin
          accept cand !crs;
          changed := true
        end
        else i := !i + max 1 (!size / 2)
      done;
      size := !size / 2
    done;
    !changed
  in

  (* non-adjacent pairs: catches turns that are individually load-bearing
     only because of a matching partner (e.g. a write and its observing
     read). O(L^2) replays, so gated on short schedules. *)
  let pass_pairs () =
    let changed = ref false in
    let again = ref true in
    while !again do
      again := false;
      let len = Array.length !sched in
      (try
         for i = 0 to len - 2 do
           for j = i + 1 to len - 1 do
             let cand = remove_two !sched i j in
             if reproduces cand !crs then begin
               accept cand !crs;
               again := true;
               changed := true;
               raise Exit
             end
           done
         done
       with Exit -> ())
    done;
    !changed
  in

  let rounds = ref 0 in
  let progress = ref true in
  while !progress && !rounds < max_rounds do
    incr rounds;
    let c1 = pass_crashes () in
    let c1' = pass_recovery () in
    let c2 = pass_processes () in
    let c3 = pass_chunks () in
    let c4 = Array.length !sched <= 64 && pass_pairs () in
    progress := c1 || c1' || c2 || c3 || c4
  done;

  ( (!sched, !crs),
    {
      attempts = !attempts;
      accepted = !accepted;
      drifted = !drifted;
      rounds = !rounds;
      orig_len = Array.length schedule;
      final_len = Array.length !sched;
    } )
