(* Crash-event specifications: which process crashes, when, and whether
   (and after how long) it recovers. Shared by the crash-injecting
   policies, the fuzzer's violation records, the shrinker and the
   [.scsrepro] textual format. *)

type t = { pid : int; at : int; recover : int option }

let terminal ~pid ~at = { pid; at; recover = None }
let recovering ~pid ~at ~after = { pid; at; recover = Some after }
let of_pairs ps = List.map (fun (pid, at) -> { pid; at; recover = None }) ps
let is_recovering c = c.recover <> None

let compare a b =
  let c = Int.compare a.pid b.pid in
  if c <> 0 then c
  else
    let c = Int.compare a.at b.at in
    if c <> 0 then c else Option.compare Int.compare a.recover b.recover

let equal a b = compare a b = 0

(* Sort into the canonical firing order used by the crash-arming
   policies: ascending pid, then ascending trigger step. *)
let canonical cs = List.sort_uniq compare cs

let to_string c =
  match c.recover with
  | None -> Printf.sprintf "%d@%d" c.pid c.at
  | Some d -> Printf.sprintf "%d@%d+%d" c.pid c.at d

let of_string s =
  match String.index_opt s '@' with
  | None -> None
  | Some i -> (
      let pid = int_of_string_opt (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let at, recover =
        match String.index_opt rest '+' with
        | None -> (int_of_string_opt rest, Some None)
        | Some j -> (
            ( int_of_string_opt (String.sub rest 0 j),
              match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
              | Some d when d >= 0 -> Some (Some d)
              | _ -> None ))
      in
      match (pid, at, recover) with
      | Some pid, Some at, Some recover when pid >= 0 && at >= 0 -> Some { pid; at; recover }
      | _ -> None)

let list_to_string = function
  | [] -> "-"
  | cs -> String.concat "," (List.map to_string cs)

let list_of_string s =
  if String.trim s = "-" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> ( match of_string (String.trim p) with None -> None | Some c -> go (c :: acc) rest)
    in
    go [] parts

let pp fmt c = Format.pp_print_string fmt (to_string c)
