(** Schedule policies: adversaries that pick which process moves next.

    Policies are stateful closures, so every function here returns a fresh
    policy; reusing one across runs would leak state between simulations. *)

type t = Sim.t -> Sim.decision

exception Replay_drift of int
(** Raised by strict scripted policies when the scripted pid is not
    runnable — the recorded schedule does not replay against this
    execution. Carries the offending pid. [Explore.Replay_drift] is an
    alias of this exception. *)

val round_robin : unit -> t
(** Cycle over runnable processes in pid order. *)

val random : Scs_util.Rng.t -> t
(** Uniform choice among runnable processes at every turn. *)

val weighted : Scs_util.Rng.t -> float array -> t
(** Choose among runnable processes with the given per-pid weights. A pid
    with weight 0 never runs. Weights need not be normalised. *)

val sticky : Scs_util.Rng.t -> switch_prob:float -> t
(** Keep scheduling the same process; at each turn, switch to a uniformly
    random runnable process with probability [switch_prob]. [0.0] is
    essentially sequential (contention-free), [1.0] is {!random} — a
    single dial for the contention sweeps of experiment F1. *)

val pct : Scs_util.Rng.t -> k:int -> depth:int -> t
(** PCT-style priority scheduler (Burckhardt et al., ASPLOS 2010): assign
    each process a distinct random priority, always run the
    highest-priority runnable process, and at [k - 1] turn indices drawn
    uniformly from [1, depth] demote the process about to run below all
    others. Finds any bug requiring at most [k] ordering constraints with
    probability ≥ 1/(n·depth^(k-1)) per run, regardless of how rare the
    bug is under uniform random scheduling. *)

val solo : Sim.pid -> t
(** Run only [pid]; stop when it finishes (other processes never move). *)

val sequential : unit -> t
(** Run process 0 to completion, then 1, and so on: no contention at all. *)

val scripted : ?strict:bool -> Sim.pid array -> t
(** Follow the given pid sequence; stop when the script is exhausted.
    By default, entries that are not runnable are silently skipped — fine
    for exploratory use, but it mangles replays: the executed schedule is
    no longer the scripted one. With [~strict:true] a non-runnable entry
    raises {!Replay_drift} instead; all shrinker and replay paths use
    strict mode. *)

val scripted_then : ?strict:bool -> Sim.pid array -> t -> t
(** Follow the script, then delegate to the fallback policy. [?strict]
    as in {!scripted}. *)

val with_crashes : (Sim.pid * int) list -> t -> t
(** [with_crashes [(p, k); ...] inner] crashes process [p] as soon as it has
    taken [k] memory steps, then behaves as [inner]. Terminal (fail-stop)
    crashes only — the historic pair encoding; see {!with_crash_events}
    for crash-recovery events. *)

val with_crash_events : Crash.t list -> t -> t
(** Generalisation of {!with_crashes} to {!Crash.t} events: an event
    fires once its victim has taken [at] memory steps, as a terminal
    crash or (for [recover = Some d], when the victim has a
    {!Sim.set_recovery} entry point) a crash that re-admits the victim's
    recovery code after [d] further global steps. Events fire in
    ascending pid order, at most one per pid per turn; a pid's next
    event is held back while it is crashed-awaiting-recovery, so
    multi-crash specs land each crash on a live incarnation. *)

val stop_when : (Sim.t -> bool) -> t -> t
(** Stop as soon as the predicate holds; otherwise delegate. *)

val capture : Sim.pid Scs_util.Vec.t -> t -> t
(** Record every pid the inner policy schedules into the vector, in turn
    order. The recorded sequence replayed with [scripted ~strict:true]
    reproduces the run exactly (given the same initial sim and crash
    wrappers outside the capture). *)

val pick_runnable : Sim.t -> Sim.pid option
(** Smallest runnable pid, if any (helper for custom policies). *)

(** {1 Allocation-free (fast) protocol}

    A fast policy returns the pid to schedule, or a negative int to
    stop, and reads the runnable set through {!Sim.runnable_bits} — no
    per-turn list or [decision] allocation. Every randomized fast
    policy consumes its Rng stream in exactly the same order and
    quantity as its boxed counterpart, so a fast run is bit-identical
    (schedule, verdict, obs counters) to the equivalent boxed run —
    the property test_pool.ml checks differentially. *)

type fast = Sim.t -> int

val of_fast : fast -> t
val to_fast : t -> fast

val fast_random : Scs_util.Rng.t -> fast
val fast_weighted : Scs_util.Rng.t -> float array -> fast
val fast_sticky : Scs_util.Rng.t -> switch_prob:float -> fast
val fast_pct : Scs_util.Rng.t -> k:int -> depth:int -> fast
val fast_solo : Sim.pid -> fast
val fast_sequential : unit -> fast
val fast_round_robin : unit -> fast
val fast_scripted : ?strict:bool -> Sim.pid array -> fast

(** {2 Crash plans and the flat drive loop} *)

type crash_plan
(** Preallocated crash-injection state (per-pid queues of {!Crash.t}
    events), reusable across runs via {!arm_crashes} /
    {!arm_crash_events} — the low-allocation counterpart of
    {!with_crashes} / {!with_crash_events}. *)

val crash_plan : n:int -> crash_plan

val arm_crashes : crash_plan -> (Sim.pid * int) list -> unit
(** Load a terminal-crash list ([(p, k)]: crash [p] once it has taken
    [k] steps) into the plan, replacing whatever was armed before. *)

val arm_crash_events : crash_plan -> Crash.t list -> unit
(** Load {!Crash.t} events (terminal and recovering alike) into the
    plan, replacing whatever was armed before. Firing semantics are
    those of {!with_crash_events}. *)

val drive : ?capture:Sim.pid Scs_util.Vec.t -> ?crashes:crash_plan -> Sim.t -> fast -> unit
(** Flat scheduling loop: semantically identical to
    [Sim.run sim (with_crash_events cs (capture buf (of_fast policy)))]
    but with the wrapper closures and per-turn allocations compiled away
    — crash events fire from the plan's per-pid queues in ascending pid
    order, scheduled pids are pushed into [capture] before each step,
    and stalled pending recoveries are admitted exactly as {!Sim.run}
    does ({!Sim.admit_stalled_recovery}). Raises {!Sim.Livelock} exactly
    as {!Sim.run} does. *)
