(** Schedule policies: adversaries that pick which process moves next.

    Policies are stateful closures, so every function here returns a fresh
    policy; reusing one across runs would leak state between simulations. *)

type t = Sim.t -> Sim.decision

exception Replay_drift of int
(** Raised by strict scripted policies when the scripted pid is not
    runnable — the recorded schedule does not replay against this
    execution. Carries the offending pid. [Explore.Replay_drift] is an
    alias of this exception. *)

val round_robin : unit -> t
(** Cycle over runnable processes in pid order. *)

val random : Scs_util.Rng.t -> t
(** Uniform choice among runnable processes at every turn. *)

val weighted : Scs_util.Rng.t -> float array -> t
(** Choose among runnable processes with the given per-pid weights. A pid
    with weight 0 never runs. Weights need not be normalised. *)

val sticky : Scs_util.Rng.t -> switch_prob:float -> t
(** Keep scheduling the same process; at each turn, switch to a uniformly
    random runnable process with probability [switch_prob]. [0.0] is
    essentially sequential (contention-free), [1.0] is {!random} — a
    single dial for the contention sweeps of experiment F1. *)

val pct : Scs_util.Rng.t -> k:int -> depth:int -> t
(** PCT-style priority scheduler (Burckhardt et al., ASPLOS 2010): assign
    each process a distinct random priority, always run the
    highest-priority runnable process, and at [k - 1] turn indices drawn
    uniformly from [1, depth] demote the process about to run below all
    others. Finds any bug requiring at most [k] ordering constraints with
    probability ≥ 1/(n·depth^(k-1)) per run, regardless of how rare the
    bug is under uniform random scheduling. *)

val solo : Sim.pid -> t
(** Run only [pid]; stop when it finishes (other processes never move). *)

val sequential : unit -> t
(** Run process 0 to completion, then 1, and so on: no contention at all. *)

val scripted : ?strict:bool -> Sim.pid array -> t
(** Follow the given pid sequence; stop when the script is exhausted.
    By default, entries that are not runnable are silently skipped — fine
    for exploratory use, but it mangles replays: the executed schedule is
    no longer the scripted one. With [~strict:true] a non-runnable entry
    raises {!Replay_drift} instead; all shrinker and replay paths use
    strict mode. *)

val scripted_then : ?strict:bool -> Sim.pid array -> t -> t
(** Follow the script, then delegate to the fallback policy. [?strict]
    as in {!scripted}. *)

val with_crashes : (Sim.pid * int) list -> t -> t
(** [with_crashes [(p, k); ...] inner] crashes process [p] as soon as it has
    taken [k] memory steps, then behaves as [inner]. *)

val stop_when : (Sim.t -> bool) -> t -> t
(** Stop as soon as the predicate holds; otherwise delegate. *)

val capture : Sim.pid Scs_util.Vec.t -> t -> t
(** Record every pid the inner policy schedules into the vector, in turn
    order. The recorded sequence replayed with [scripted ~strict:true]
    reproduces the run exactly (given the same initial sim and crash
    wrappers outside the capture). *)

val pick_runnable : Sim.t -> Sim.pid option
(** Smallest runnable pid, if any (helper for custom policies). *)
