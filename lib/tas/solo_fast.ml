open Scs_spec
open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  module A2m = A2.Make (P)

  type t = {
    p : int option P.reg;
    s : int option P.reg;
    aborted : bool P.reg;
    v : bool P.reg;
    a2 : A2m.t;
  }

  let create ~name () =
    {
      p = P.reg ~name:(name ^ ".P") None;
      s = P.reg ~name:(name ^ ".S") None;
      aborted = P.reg ~name:(name ^ ".aborted") false;
      v = P.reg ~name:(name ^ ".V") false;
      a2 = A2m.create ~name:(name ^ ".A2") ();
    }

  (* Algorithm 1 without lines 4–6: no solidarity aborts. *)
  let apply_fast t ~pid init =
    if P.read t.v || init = Some Tas_switch.L then Outcome.Commit Objects.Loser
    else if P.read t.p <> None then Outcome.Commit Objects.Loser
    else begin
      P.write t.p (Some pid);
      if P.read t.s <> None then Outcome.Commit Objects.Loser
      else begin
        P.write t.s (Some pid);
        if P.read t.p = Some pid then begin
          P.write t.v true;
          if not (P.read t.aborted) then Outcome.Commit Objects.Winner
          else Outcome.Abort Tas_switch.W
        end
        else begin
          P.write t.aborted true;
          if P.read t.v then Outcome.Commit Objects.Loser else Outcome.Abort Tas_switch.W
        end
      end
    end

  let apply_fallback t ~pid init = A2m.apply t.a2 ~pid init

  let test_and_set_staged t ~pid =
    match apply_fast t ~pid None with
    | Outcome.Commit r -> (r, One_shot.Fast)
    | Outcome.Abort v -> (
        match apply_fallback t ~pid (Some v) with
        | Outcome.Commit r -> (r, One_shot.Fallback)
        | Outcome.Abort _ -> assert false)

  let test_and_set t ~pid = fst (test_and_set_staged t ~pid)

  let value_read t = P.read t.v || A2m.value_read t.a2

  let harness_reset t =
    P.write t.p None;
    P.write t.s None;
    P.write t.aborted false;
    P.write t.v false;
    A2m.harness_reset t.a2
end
