(** Module [A2]: the wait-free test-and-set module (Algorithm 2, lines
    16–19), essentially a hardware test-and-set.

    A participant entering with switch value [L] returns loser without
    touching the hardware object; every other participant plays the
    hardware TAS and commits the result. Never aborts; safely composable
    w.r.t. Definition 3 (Lemma 5). *)

open Scs_spec
open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) : sig
  type t

  val create : name:string -> unit -> t

  val apply :
    t -> pid:int -> Tas_switch.t option -> (Objects.tas_resp, Tas_switch.t) Outcome.t

  val as_module : t -> (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Outcome.m

  val value_read : t -> bool
  (** [tas_read] of the hardware object (a read, not an RMW). *)

  val harness_reset : t -> unit
  (** Reset the hardware object (harness use only). *)
end
