(** The long-lived resettable test-and-set (Algorithm 2).

    An array [TAS[]] of one-shot composed instances and an atomic register
    [Count] select the current round; only the current winner may reset
    (well-formedness, after Afek et al.), which advances [Count] and
    returns the object to the speculative register-only module — the back
    edge of Figure 1.

    The per-process [crtWinner] flag of the paper is process-local state,
    so each process operates through its own {!handle}.

    The round array is pre-allocated: [rounds] bounds the number of resets
    over the object's lifetime (the paper's array is unbounded; a bound
    keeps the simulator's space census meaningful). *)

open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) : sig
  module Os : module type of One_shot.Make (P)

  type t
  type handle

  val create : ?strict:bool -> name:string -> rounds:int -> unit -> t
  val handle : t -> pid:int -> handle

  val test_and_set : handle -> Objects.tas_resp
  val test_and_set_staged : handle -> Objects.tas_resp * One_shot.stage

  val test_and_set_info : handle -> Objects.tas_resp * One_shot.stage * int
  (** Also reports the round ([Count] value) the operation executed in. *)

  val reset : handle -> unit
  (** No-op unless the calling handle currently holds the win. *)

  val read_round : handle -> int
  (** [Count.read()] as a proper shared-memory step (must run inside a
      process fiber on the simulator backend). *)

  val value_read : handle -> bool
  (** Whether the current round's one-shot instance has visibly been won
      (a [Count] read plus a {!One_shot.value_read}); the load harness's
      YCSB-read analogue. [false] once round capacity is exceeded. *)

  val instance : t -> round:int -> Os.t
  (** The underlying one-shot instance of a given round (for checkers). *)

  val harness_recycle : t -> unit
  (** Reinitialise every used round instance and rewind [Count] to 0.
      {b Not} part of the algorithm — only sound while no operation is in
      flight and no handle holds [crtWinner]; the load harness calls it at
      a quiescent barrier so a closed loop can run indefinitely against a
      bounded round array. *)
end
