open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) = struct
  module Os = One_shot.Make (P)

  type t = { count : int P.reg; arr : Os.t array; rounds : int }

  type handle = { t : t; pid : int; mutable crt_winner : bool }

  let create ?strict ~name ~rounds () =
    {
      count = P.reg ~name:(name ^ ".Count") 0;
      arr =
        Array.init rounds (fun i ->
            Os.create ?strict ~name:(Printf.sprintf "%s.TAS[%d]" name i) ());
      rounds;
    }

  let handle t ~pid = { t; pid; crt_winner = false }

  let test_and_set_info h =
    let c = P.read h.t.count in
    if c >= h.t.rounds then failwith "Long_lived.test_and_set: round capacity exceeded";
    let resp, stage = Os.test_and_set_staged h.t.arr.(c) ~pid:h.pid in
    if resp = Objects.Winner then h.crt_winner <- true;
    (resp, stage, c)

  let test_and_set_staged h =
    let resp, stage, _ = test_and_set_info h in
    (resp, stage)

  let test_and_set h = fst (test_and_set_staged h)

  let reset h =
    if h.crt_winner then begin
      let c = P.read h.t.count in
      P.write h.t.count (c + 1);
      h.crt_winner <- false
    end

  let read_round h = P.read h.t.count

  let value_read h =
    let c = P.read h.t.count in
    if c >= h.t.rounds then false else Os.value_read h.t.arr.(c)

  let instance t ~round = t.arr.(round)

  let harness_recycle t =
    let c = P.read t.count in
    let hi = if c >= t.rounds then t.rounds - 1 else c in
    for i = 0 to hi do
      Os.harness_reset t.arr.(i)
    done;
    P.write t.count 0
end
