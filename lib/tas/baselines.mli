(** Baseline test-and-set implementations the speculative algorithm is
    benchmarked against.

    - {!Make.Hardware}: the raw hardware TAS (what the speculative object
      degrades to under permanent contention; one AWAR per operation even
      when uncontended).
    - {!Make.Tournament}: an Afek–Gafni–Tromp–Vitányi-style wait-free TAS
      from registers only: a binary tournament tree whose nodes are
      randomized two-process consensus instances ({!Scs_consensus.Cil_consensus}).
      O(log n) expected steps per operation, O(n) space, no RMW at all. *)

open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) : sig
  module Hardware : sig
    type t

    val create : name:string -> unit -> t
    val test_and_set : t -> pid:int -> Objects.tas_resp
    val reset : t -> unit

    val read : t -> bool
    (** [tas_read] of the underlying object (read-only probe, used as the
        load harness's YCSB-read analogue). *)
  end

  module Tournament : sig
    type t

    val create : name:string -> n:int -> unit -> t
    (** Supports pids [0 .. n-1]; the tree has [n] leaves (n rounded up to
        a power of two internally). *)

    val test_and_set : t -> pid:int -> rng:Scs_util.Rng.t -> Objects.tas_resp
  end
end
