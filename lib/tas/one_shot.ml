open Scs_composable

type stage = Fast | Fallback

module Make (P : Scs_prims.Prims_intf.S) = struct
  module A1m = A1.Make (P)
  module A2m = A2.Make (P)

  type t = { a1 : A1m.t; a2 : A2m.t }

  let create ?strict ~name () =
    { a1 = A1m.create ?strict ~name:(name ^ ".A1") (); a2 = A2m.create ~name:(name ^ ".A2") () }

  let a1 t = t.a1
  let a2 t = t.a2

  let apply_staged t ~pid init =
    match A1m.apply t.a1 ~pid init with
    | Outcome.Commit r -> (Outcome.Commit r, Fast)
    | Outcome.Abort v -> (A2m.apply t.a2 ~pid (Some v), Fallback)

  let test_and_set_staged t ~pid =
    match apply_staged t ~pid None with
    | Outcome.Commit r, stage -> (r, stage)
    | Outcome.Abort _, _ ->
        (* A2 never aborts *)
        assert false

  let test_and_set t ~pid = fst (test_and_set_staged t ~pid)

  let as_module t = Outcome.compose (A1m.as_module t.a1) (A2m.as_module t.a2)

  let value_read t = A1m.value_read t.a1 || A2m.value_read t.a2

  let harness_reset t =
    A1m.harness_reset t.a1;
    A2m.harness_reset t.a2
end
