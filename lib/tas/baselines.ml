open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) = struct
  module Hardware = struct
    type t = { t : P.tas_obj }

    let create ~name () = { t = P.tas_obj ~name:(name ^ ".T") () }

    let test_and_set t ~pid:_ =
      if P.test_and_set t.t then Objects.Winner else Objects.Loser

    let reset t = P.tas_reset t.t
    let read t = P.tas_read t.t
  end

  module Tournament = struct
    module Cil = Scs_consensus.Cil_consensus.Make (P)

    (* One consensus node per internal tree node, indexed heap-style:
       node 1 is the root, node [k]'s children are [2k] and [2k+1].
       Leaves are [leaves + pid]. A process climbs from its leaf; at each
       node it plays the side it arrived from (0 = left child, 1 = right).
       At most one process arrives per side (subtree winners are unique),
       so two-process consensus per node suffices. *)
    type t = { nodes : int Cil.t array; leaves : int }

    let create ~name ~n () =
      let rec pow2 k = if k >= n then k else pow2 (2 * k) in
      let leaves = pow2 1 in
      {
        nodes =
          Array.init leaves (fun i ->
              Cil.create ~name:(Printf.sprintf "%s.node[%d]" name i) ());
        leaves;
      }

    let test_and_set t ~pid ~rng =
      if pid < 0 || pid >= t.leaves then invalid_arg "Tournament.test_and_set: pid out of range";
      let rec climb node =
        if node <= 1 then Objects.Winner
        else begin
          let parent = node / 2 in
          let side = node land 1 in
          let decided = Cil.propose t.nodes.(parent) ~pid:side ~rng side in
          if decided = side then climb parent else Objects.Loser
        end
      in
      climb (t.leaves + pid)
    end
end
