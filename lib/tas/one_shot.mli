(** The one-shot composed test-and-set: [A1 ∘ A2] (Figure 1, forward path).

    A request first runs the register-only obstruction-free module; on
    abort, the switch value initialises the wait-free hardware module. The
    composition is a wait-free linearizable one-shot TAS (Lemma 7) that
    touches only registers in the absence of step contention.

    [stage] reports which module resolved the request, for the speculation
    benchmarks (F1). *)

open Scs_spec
open Scs_composable

type stage = Fast | Fallback

module Make (P : Scs_prims.Prims_intf.S) : sig
  module A1m : module type of A1.Make (P)
  module A2m : module type of A2.Make (P)

  type t

  val create : ?strict:bool -> name:string -> unit -> t
  (** [strict] selects the strictly linearizable [A1] variant (see
      {!A1}); default is the paper's algorithm. *)

  val a1 : t -> A1m.t
  val a2 : t -> A2m.t

  val test_and_set : t -> pid:int -> Objects.tas_resp
  (** The full composition; never aborts. *)

  val test_and_set_staged : t -> pid:int -> Objects.tas_resp * stage

  val apply_staged :
    t ->
    pid:int ->
    Tas_switch.t option ->
    (Objects.tas_resp, Tas_switch.t) Outcome.t * stage
  (** Like [test_and_set_staged] but entering the composition with an
      inherited switch value, for chaining compositions. *)

  val as_module : t -> (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Outcome.m

  val value_read : t -> bool
  (** Whether the composed object has visibly been won: [A1]'s [V] or,
      failing that, the hardware object's value. Read-only probe used as
      the YCSB-read analogue by the load harness. *)

  val harness_reset : t -> unit
  (** Reinitialise both modules (harness use only, quiescent state). *)
end
