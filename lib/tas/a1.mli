(** Module [A1]: the obstruction-free test-and-set module (Algorithm 1).

    Four registers ([P], [S], [aborted], [V]); constant step and space
    complexity. Each operation either reaches a winner/loser decision, or
    detects contention and aborts with a switch value: [W] if the object
    has not visibly been won, [L] if the caller has definitely lost. The
    module never aborts in executions without step contention (Lemma 6),
    and is a safely composable TAS implementation w.r.t. the constraint
    function of Definition 3 (Lemma 4).

    {b Reproduction finding (strict mode).} As published, the composed
    algorithm [A1 ∘ A2] is {e not} linearizable in the strict
    Herlihy–Wing sense once n ≥ 3: racing processes interfere and abort
    with [W], one process commits loser off [P ≠ ⊥] (line 9) while
    [V = 0], and a {e later} process — invoked after that loser's
    response — aborts [W] through lines 4–6 and wins the hardware object
    in [A2]. The trace still admits a valid interpretation under
    Definition 2 (the paper's correctness notion, which reads the
    Validity property globally), but the loser's response precedes every
    candidate winner's invocation. This also falsifies Invariant 4 of the
    Lemma 4 proof for n ≥ 3 (POR-complete exploration in [test_a1.ml];
    minimal deterministic schedules in [test_findings.ml]).

    [create ~strict:true] restores strict linearizability by routing the
    loser commits of lines 9 and 11 through the interference protocol of
    lines 19–23 (raise [aborted], re-read [V]): a loser is then only ever
    declared after observing [V = 1] — so the fast-path candidate that set
    [V] was invoked before the loss — or inside the linearizable hardware
    module. Every process that reaches the hardware module carries [W] and
    read [V = 0] before any such loser committed, so the eventual winner
    is always invoked before every loser's response. Solo step complexity
    and safe composability are unchanged; the price is more hardware
    traffic, and fast-path progress weakens from step-contention-freedom
    to interval-contention-freedom (a stalled racer's leftover write can
    force deferral). *)

open Scs_spec
open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) : sig
  type t

  val create : ?strict:bool -> name:string -> unit -> t
  (** [strict] defaults to [false] (the paper's algorithm, verbatim). *)

  val apply :
    t -> pid:int -> Tas_switch.t option -> (Objects.tas_resp, Tas_switch.t) Outcome.t
  (** One test-and-set attempt by process [pid]. The optional switch value
      is the initialisation inherited from a previous module ([Some L]
      short-circuits to loser, line 7). *)

  val as_module : t -> (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Outcome.m

  val value_read : t -> bool
  (** One read of [V]: whether the module has visibly been won. Not part
      of the paper's interface; the load harness's read operations use it
      as the TAS analogue of a YCSB read. *)

  val harness_reset : t -> unit
  (** Reinitialise all four registers. {b Not} part of the algorithm —
      only sound while no operation is in flight; used by the wall-clock
      harness to measure steady-state round cost without preallocating
      rounds. *)
end
