open Scs_spec
open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  type t = {
    p : int option P.reg;
    s : int option P.reg;
    aborted : bool P.reg;
    v : bool P.reg;  (** the object's value: [true] once won *)
    strict : bool;
  }

  let create ?(strict = false) ~name () =
    {
      p = P.reg ~name:(name ^ ".P") None;
      s = P.reg ~name:(name ^ ".S") None;
      aborted = P.reg ~name:(name ^ ".aborted") false;
      v = P.reg ~name:(name ^ ".V") false;
      strict;
    }

  (* In strict mode a process may not declare itself loser merely because
     a racer's write is visible (see the .mli): it runs the interference
     protocol of lines 19–23 instead — raise [aborted], then re-read [V].
     Raising the flag first is what excludes a concurrent fast-path win:
     the fast path re-reads [aborted] after setting [V] (line 15), so
     either it sees our flag and defers to the hardware module with us, or
     we see its [V = 1] and lose to it legitimately. *)
  let lose_or_defer t =
    if t.strict then begin
      P.write t.aborted true;
      if P.read t.v then Outcome.Commit Objects.Loser else Outcome.Abort Tas_switch.W
    end
    else Outcome.Commit Objects.Loser

  (* Algorithm 1, line for line. *)
  let apply t ~pid init =
    if P.read t.aborted then begin
      (* lines 4–6 *)
      if not (P.read t.v) then Outcome.Abort Tas_switch.W else Outcome.Abort Tas_switch.L
    end
    else if P.read t.v || init = Some Tas_switch.L then
      (* lines 7–8 *)
      Outcome.Commit Objects.Loser
    else if P.read t.p <> None then
      (* line 9 *)
      lose_or_defer t
    else begin
      P.write t.p (Some pid);
      (* line 10 *)
      if P.read t.s <> None then
        (* line 11 *)
        lose_or_defer t
      else begin
        P.write t.s (Some pid);
        (* line 12 *)
        if P.read t.p = Some pid then begin
          (* lines 13–17 *)
          P.write t.v true;
          if not (P.read t.aborted) then Outcome.Commit Objects.Winner
          else Outcome.Abort Tas_switch.W
        end
        else begin
          (* lines 18–23: interval contention detected *)
          P.write t.aborted true;
          if P.read t.v then Outcome.Commit Objects.Loser else Outcome.Abort Tas_switch.W
        end
      end
    end

  let as_module t =
    {
      Outcome.m_name = "A1";
      m_apply = (fun ~pid ?init Objects.Test_and_set -> apply t ~pid init);
    }

  let value_read t = P.read t.v

  let harness_reset t =
    P.write t.p None;
    P.write t.s None;
    P.write t.aborted false;
    P.write t.v false
end
