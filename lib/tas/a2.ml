open Scs_spec
open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  type t = { t : P.tas_obj }

  let create ~name () = { t = P.tas_obj ~name:(name ^ ".T") () }

  let apply t ~pid:_ init =
    if init = Some Tas_switch.L then Outcome.Commit Objects.Loser
    else if P.test_and_set t.t then Outcome.Commit Objects.Winner
    else Outcome.Commit Objects.Loser

  let as_module t =
    {
      Outcome.m_name = "A2";
      m_apply = (fun ~pid ?init Objects.Test_and_set -> apply t ~pid init);
    }

  let value_read t = P.tas_read t.t
  let harness_reset t = P.tas_reset t.t
end
