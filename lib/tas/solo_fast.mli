(** The solo-fast test-and-set variant (Appendix B).

    Obtained from [A1] by removing the entry check of the [aborted]
    register (lines 4–6): a process no longer aborts merely because
    {e another} process experienced step contention; it reverts to the
    hardware object only when {e itself} encountering step contention.
    The composed algorithm [A1' ∘ A2] is the first solo-fast TAS with
    constant step complexity for uncontended operations. Only switch value
    [W] can arise. *)

open Scs_spec
open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) : sig
  type t

  val create : name:string -> unit -> t

  val apply_fast :
    t -> pid:int -> Tas_switch.t option -> (Objects.tas_resp, Tas_switch.t) Outcome.t
  (** The modified [A1'] alone. *)

  val apply_fallback :
    t -> pid:int -> Tas_switch.t option -> (Objects.tas_resp, Tas_switch.t) Outcome.t
  (** The embedded [A2] instance (for runners that record per-module
      traces). *)

  val test_and_set_staged : t -> pid:int -> Objects.tas_resp * One_shot.stage
  (** The full composition [A1' ∘ A2]. *)

  val test_and_set : t -> pid:int -> Objects.tas_resp

  val value_read : t -> bool
  (** Whether the object has visibly been won (fast-path [V] or the
      hardware object) — read-only probe for the load harness. *)

  val harness_reset : t -> unit
  (** Reinitialise all registers and the hardware object (harness use
      only, quiescent state). *)
end
