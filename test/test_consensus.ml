(* Verification of the abortable consensus algorithms: agreement, validity,
   progress under the advertised contention classes, and solo step
   complexity. Small instances are model-checked exhaustively; larger ones
   are explored with budgets plus seeded random schedules. *)

open Scs_sim
open Scs_composable
open Scs_consensus
open Scs_workload

(* ---- generic exhaustive safety check -------------------------------- *)

type mk = { mk : 'a. (module Scs_prims.Prims_intf.S) -> n:int -> int Consensus_intf.t }

let exhaustive_safety ?(max_schedules = 60_000) ?(por = false) ~n make_instance =
  let outcomes = Array.make n None in
  let setup sim =
    Array.fill outcomes 0 n None;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let inst = make_instance.mk (module P : Scs_prims.Prims_intf.S) ~n in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          outcomes.(pid) <- Some (inst.Consensus_intf.run ~pid ~old:None (100 + pid)))
    done
  in
  let bad = ref [] in
  let check _sim sched =
    let decisions =
      Array.to_list outcomes
      |> List.filter_map (function Some (Outcome.Commit (Some d)) -> Some d | _ -> None)
    in
    (match decisions with
    | [] -> ()
    | d :: rest ->
        if not (List.for_all (fun x -> x = d) rest) then bad := ("disagreement", sched) :: !bad);
    List.iter
      (fun d -> if d < 100 || d >= 100 + n then bad := ("invalid decision", sched) :: !bad)
      decisions
  in
  let outcome = Explore.exhaustive ~max_schedules ~por ~n ~setup ~check () in
  (outcome, !bad)

let split_mk =
  {
    mk =
      (fun (module P : Scs_prims.Prims_intf.S) ~n:_ ->
        let module SC = Split_consensus.Make (P) in
        SC.instance (SC.create ~name:"split" ()));
  }

let bakery_mk =
  {
    mk =
      (fun (module P : Scs_prims.Prims_intf.S) ~n ->
        let module AB = Abortable_bakery.Make (P) in
        AB.instance (AB.create ~name:"bakery" ~n ()));
  }

let cas_mk =
  {
    mk =
      (fun (module P : Scs_prims.Prims_intf.S) ~n:_ ->
        let module CC = Cas_consensus.Make (P) in
        CC.instance (CC.create ~name:"cas" ()));
  }

let chain_mk =
  {
    mk =
      (fun (module P : Scs_prims.Prims_intf.S) ~n ->
        let module SC = Split_consensus.Make (P) in
        let module AB = Abortable_bakery.Make (P) in
        let module CC = Cas_consensus.Make (P) in
        let module CH = Chain.Make (P) in
        CH.make ~name:"chain"
          [
            SC.instance (SC.create ~name:"c.split" ());
            AB.instance (AB.create ~name:"c.bakery" ~n ());
            CC.instance (CC.create ~name:"c.cas" ());
          ]);
  }

(* [complete] asserts the space was fully explored (agreement and validity
   are functions of the decided values, so POR's per-class representatives
   certify the whole space) *)
let check_exhaustive name ?(max_schedules = 60_000) ?(por = false) ?(complete = false) ~n mk
    () =
  let outcome, bad = exhaustive_safety ~max_schedules ~por ~n mk in
  if complete then
    Alcotest.(check bool) (name ^ ": full coverage") false outcome.Explore.truncated;
  Alcotest.(check int) (name ^ ": no safety violations") 0 (List.length bad)

(* ---- random-schedule safety over larger configurations -------------- *)

let random_safety ~n ~algo ~runs () =
  for seed = 1 to runs do
    let r = Cons_run.run ~seed ~n ~algo ~policy:Policy.random () in
    if not r.Cons_run.agreement then
      Alcotest.failf "%s: disagreement at seed %d" (Cons_run.algo_name algo) seed;
    if not r.Cons_run.validity then
      Alcotest.failf "%s: invalid decision at seed %d" (Cons_run.algo_name algo) seed
  done

(* ---- progress -------------------------------------------------------- *)

let all_commit r =
  List.for_all
    (fun (o : Cons_run.op) ->
      match o.Cons_run.outcome with Outcome.Commit (Some _) -> true | _ -> false)
    r.Cons_run.ops

let test_split_solo_commits () =
  let r = Cons_run.run ~n:4 ~algo:Cons_run.Split ~policy:(fun _ -> Policy.solo 0) () in
  match r.Cons_run.ops with
  | [ o ] ->
      Alcotest.(check bool) "committed own value" true
        (o.Cons_run.outcome = Outcome.Commit (Some 100))
  | _ -> Alcotest.fail "expected exactly one op"

let test_split_sequential_commits () =
  (* no interval contention: every process commits *)
  let r = Cons_run.run ~n:6 ~algo:Cons_run.Split ~policy:(fun _ -> Policy.sequential ()) () in
  Alcotest.(check bool) "all commit" true (all_commit r);
  Alcotest.(check bool) "agreement" true r.Cons_run.agreement

let test_bakery_sequential_commits () =
  let r = Cons_run.run ~n:5 ~algo:Cons_run.Bakery ~policy:(fun _ -> Policy.sequential ()) () in
  Alcotest.(check bool) "all commit" true (all_commit r);
  Alcotest.(check bool) "agreement" true r.Cons_run.agreement

let test_cas_always_commits () =
  for seed = 1 to 30 do
    let r = Cons_run.run ~seed ~n:5 ~algo:Cons_run.Cas ~policy:Policy.random () in
    Alcotest.(check bool) "wait-free" true (all_commit r)
  done

let test_chain_always_commits () =
  for seed = 1 to 30 do
    let r = Cons_run.run ~seed ~n:4 ~algo:Cons_run.Chain3 ~policy:Policy.random () in
    Alcotest.(check bool) "chain wait-free" true (all_commit r);
    Alcotest.(check bool) "chain agreement" true r.Cons_run.agreement
  done

(* ---- solo step complexity ------------------------------------------- *)

let test_split_solo_steps_constant () =
  let s4 = Cons_run.solo_steps Cons_run.Split ~n:4 in
  let s32 = Cons_run.solo_steps Cons_run.Split ~n:32 in
  Alcotest.(check int) "independent of n" s4 s32;
  Alcotest.(check bool) "small constant" true (s4 <= 24)

let test_bakery_solo_steps_linear () =
  let s4 = Cons_run.solo_steps Cons_run.Bakery ~n:4 in
  let s8 = Cons_run.solo_steps Cons_run.Bakery ~n:8 in
  let s16 = Cons_run.solo_steps Cons_run.Bakery ~n:16 in
  Alcotest.(check bool) "grows with n" true (s8 > s4 && s16 > s8);
  (* three collects per propose, two proposes in the wrapper: ~6n + O(1) *)
  Alcotest.(check bool) "linear upper" true (s16 < 10 * 16);
  Alcotest.(check bool) "linear lower" true (s16 - s8 >= 3 * 8)

let test_cas_solo_steps () =
  let s = Cons_run.solo_steps Cons_run.Cas ~n:8 in
  Alcotest.(check bool) "constant" true (s <= 5)

(* ---- abort only under contention ------------------------------------ *)

let test_split_abort_implies_contention () =
  (* under any random schedule, a process that runs with no overlapping
     ops commits; we verify the contrapositive statistically: in
     sequential runs nothing aborts (checked above), and in contended runs
     aborts are possible *)
  let saw_abort = ref false in
  for seed = 1 to 50 do
    let r = Cons_run.run ~seed ~n:4 ~algo:Cons_run.Split ~policy:Policy.random () in
    if not (all_commit r) then saw_abort := true
  done;
  Alcotest.(check bool) "contention can abort" true !saw_abort

let test_bakery_abort_implies_contention () =
  let saw_abort = ref false in
  for seed = 1 to 50 do
    let r = Cons_run.run ~seed ~n:4 ~algo:Cons_run.Bakery ~policy:Policy.random () in
    if not (all_commit r) then saw_abort := true
  done;
  Alcotest.(check bool) "contention can abort" true !saw_abort

(* ---- abort value propagation ---------------------------------------- *)

let test_split_abort_learns_decision () =
  (* p0 commits solo; p1 then aborts or commits — if it commits it must
     return p0's value; its probe must also see it *)
  let sim = Sim.create ~n:2 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module SC = Split_consensus.Make (P) in
  let c = SC.create ~name:"s" () in
  let inst = SC.instance c in
  let r0 = ref None and probe1 = ref None in
  Sim.spawn sim 0 (fun () -> r0 := Some (inst.Consensus_intf.run ~pid:0 ~old:None 100));
  Sim.spawn sim 1 (fun () -> probe1 := Consensus_intf.probe inst ~pid:1);
  Sim.run sim (Policy.sequential ());
  Alcotest.(check bool) "p0 committed 100" true (!r0 = Some (Outcome.Commit (Some 100)));
  Alcotest.(check bool) "probe sees 100" true (!probe1 = Some 100)

(* ---- randomized 2-process consensus (CIL) ---------------------------- *)

let test_cil_solo () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module C = Cil_consensus.Make (P) in
  let c = C.create ~name:"cil" () in
  let d = ref None in
  Sim.spawn sim 0 (fun () ->
      d := Some (C.propose c ~pid:0 ~rng:(Scs_util.Rng.create 1) 42));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "solo decides own" true (!d = Some 42)

let test_cil_agreement_random () =
  for seed = 1 to 300 do
    let sim = Sim.create ~max_steps:100_000 ~n:2 () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module C = Cil_consensus.Make (P) in
    let c = C.create ~name:"cil" () in
    let rng = Scs_util.Rng.create seed in
    let d = Array.make 2 None in
    for pid = 0 to 1 do
      let prng = Scs_util.Rng.split rng in
      Sim.spawn sim pid (fun () -> d.(pid) <- Some (C.propose c ~pid ~rng:prng (pid + 10)))
    done;
    Sim.run sim (Policy.random (Scs_util.Rng.split rng));
    match (d.(0), d.(1)) with
    | Some a, Some b ->
        if a <> b then Alcotest.failf "cil disagreement at seed %d: %d vs %d" seed a b;
        if a <> 10 && a <> 11 then Alcotest.failf "cil invalid at seed %d" seed
    | _ -> Alcotest.failf "cil did not terminate at seed %d" seed
  done

let test_cil_exhaustive_safety () =
  (* bounded exhaustive check: agreement must hold on every interleaving
     explored within the budget (coin flips fixed by per-pid seeds) *)
  let d = Array.make 2 None in
  let setup sim =
    Array.fill d 0 2 None;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module C = Cil_consensus.Make (P) in
    let c = C.create ~name:"cil" () in
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          d.(pid) <- Some (C.propose c ~pid ~rng:(Scs_util.Rng.create (pid + 1)) (pid + 10)))
    done
  in
  let bad = ref 0 in
  let check _ _ =
    match (d.(0), d.(1)) with Some a, Some b when a <> b -> incr bad | _ -> ()
  in
  let _ = Explore.exhaustive ~max_schedules:30_000 ~max_depth:200 ~n:2 ~setup ~check () in
  Alcotest.(check int) "no disagreement" 0 !bad

(* ---- consensus-number census (Related Work, ref [6]) ------------------ *)

let test_abortable_consensus_register_only () =
  (* "a safely composable consensus implementation may have consensus
     number 1": both appendix algorithms use registers only *)
  let census algo =
    let r = Cons_run.run ~n:4 ~algo ~policy:Policy.random () in
    Sim.rmw_objects_allocated r.Cons_run.sim
  in
  Alcotest.(check int) "SplitConsensus: no RMW objects" 0 (census Cons_run.Split);
  Alcotest.(check int) "AbortableBakery: no RMW objects" 0 (census Cons_run.Bakery);
  Alcotest.(check bool) "the wait-free closer does need one" true (census Cons_run.Cas > 0)

(* ---- 2-process consensus from TAS (hierarchy witness) ---------------- *)

let test_tas_consensus_exhaustive () =
  let d = Array.make 2 None in
  let setup sim =
    Array.fill d 0 2 None;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module TC = Tas_consensus.Make (P) in
    let c = TC.create ~name:"tc" () in
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () -> d.(pid) <- Some (TC.propose c ~pid (pid + 10)))
    done
  in
  let bad = ref 0 in
  let check _ _ =
    match (d.(0), d.(1)) with
    | Some a, Some b -> if a <> b then incr bad
    | _ -> incr bad
  in
  let outcome = Explore.exhaustive ~n:2 ~setup ~check () in
  Alcotest.(check bool) "full exploration" false outcome.Explore.truncated;
  Alcotest.(check int) "agreement everywhere" 0 !bad

let tests =
  [
    (* the plain split n=2 space is 875,780 schedules — the seed engine's
       60k default budget covered 7% of it; POR certifies all of it
       through 470 representatives *)
    Alcotest.test_case "split exhaustive n=2 (POR-complete)" `Quick
      (check_exhaustive "split" ~por:true ~complete:true ~n:2 split_mk);
    Alcotest.test_case "split exhaustive n=3 (budget)" `Slow
      (check_exhaustive "split" ~max_schedules:40_000 ~n:3 split_mk);
    (* the plain bakery n=2 space dwarfs the old 40k budget; POR covers
       all of it through ~2.6k representatives in under a second *)
    Alcotest.test_case "bakery exhaustive n=2 (POR-complete)" `Quick
      (check_exhaustive "bakery" ~por:true ~complete:true ~max_schedules:100_000 ~n:2
         bakery_mk);
    Alcotest.test_case "cas exhaustive n=2" `Quick
      (check_exhaustive "cas" ~complete:true ~n:2 cas_mk);
    Alcotest.test_case "chain exhaustive n=2 (budget)" `Slow
      (check_exhaustive "chain" ~max_schedules:40_000 ~n:2 chain_mk);
    Alcotest.test_case "split random n=6" `Quick (fun () ->
        random_safety ~n:6 ~algo:Cons_run.Split ~runs:100 ());
    Alcotest.test_case "bakery random n=6" `Quick (fun () ->
        random_safety ~n:6 ~algo:Cons_run.Bakery ~runs:100 ());
    Alcotest.test_case "chain random n=5" `Quick (fun () ->
        random_safety ~n:5 ~algo:Cons_run.Chain3 ~runs:100 ());
    Alcotest.test_case "split solo commits" `Quick test_split_solo_commits;
    Alcotest.test_case "split sequential commits" `Quick test_split_sequential_commits;
    Alcotest.test_case "bakery sequential commits" `Quick test_bakery_sequential_commits;
    Alcotest.test_case "cas always commits" `Quick test_cas_always_commits;
    Alcotest.test_case "chain always commits" `Quick test_chain_always_commits;
    Alcotest.test_case "split solo steps constant" `Quick test_split_solo_steps_constant;
    Alcotest.test_case "bakery solo steps linear" `Quick test_bakery_solo_steps_linear;
    Alcotest.test_case "cas solo steps" `Quick test_cas_solo_steps;
    Alcotest.test_case "split aborts under contention" `Quick test_split_abort_implies_contention;
    Alcotest.test_case "bakery aborts under contention" `Quick
      test_bakery_abort_implies_contention;
    Alcotest.test_case "split abort learns decision" `Quick test_split_abort_learns_decision;
    Alcotest.test_case "cil solo" `Quick test_cil_solo;
    Alcotest.test_case "cil agreement random" `Quick test_cil_agreement_random;
    Alcotest.test_case "cil exhaustive safety" `Slow test_cil_exhaustive_safety;
    Alcotest.test_case "tas-consensus exhaustive" `Quick test_tas_consensus_exhaustive;
    Alcotest.test_case "abortable consensus is register-only" `Quick
      test_abortable_consensus_register_only;
  ]
