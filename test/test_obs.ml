(* Observability sink (lib/obs): known-answer contention traces,
   counter bookkeeping, ring-buffer bounds, trajectory JSON round-trips,
   and the no-interference contract (attaching a sink never changes any
   verdict). The contention known-answers are hand-computed from the
   definitions in paper §2 / Appendix A; the simulator-driven cases are
   cross-checked against Scs_sim.Detect, the post-hoc reference
   implementation. *)

open Scs_util
open Scs_sim
open Scs_workload
open Scs_obs

let step obs ~pid ?(obj = 0) ?(name = "r") () =
  Obs.step obs ~pid ~kind:Obs.Read ~obj ~obj_name:name ~info:""

(* p0 brackets an op; p1 takes 3 steps inside it but never opens a
   bracket of its own: step contention 3, interval contention 0. *)
let test_known_answer_step_contention () =
  let obs = Obs.create ~n:3 () in
  Obs.op_begin obs ~pid:0 ~obj:0 ~label:"op";
  step obs ~pid:0 ();
  step obs ~pid:1 ();
  step obs ~pid:1 ();
  step obs ~pid:0 ();
  step obs ~pid:1 ();
  Obs.op_end obs ~pid:0 ~aborted:false;
  match Obs.op_metrics obs with
  | [ m ] ->
      Alcotest.(check int) "own steps" 2 m.Obs.om_steps;
      Alcotest.(check int) "step contention" 3 m.Obs.om_step_contention;
      Alcotest.(check int) "interval contention" 0 m.Obs.om_interval_contention;
      Alcotest.(check bool) "not aborted" false m.Obs.om_aborted;
      Alcotest.(check int) "interval" 5 (m.Obs.om_finish - m.Obs.om_start)
  | ms -> Alcotest.failf "expected 1 op metric, got %d" (List.length ms)

(* Overlap diagram (time left to right, brackets are op intervals):
     p0:  [===============]
     p1:    [====]
     p2:            [========]
   p0 overlaps both p1 and p2 (interval contention 2); p1 and p2 never
   coexist (1 each). Step contention stays 0: nobody takes steps. *)
let test_known_answer_interval_contention () =
  let obs = Obs.create ~n:3 () in
  Obs.op_begin obs ~pid:0 ~obj:0 ~label:"p0";
  Obs.op_begin obs ~pid:1 ~obj:0 ~label:"p1";
  Obs.op_end obs ~pid:1 ~aborted:false;
  Obs.op_begin obs ~pid:2 ~obj:0 ~label:"p2";
  Obs.op_end obs ~pid:2 ~aborted:true;
  Obs.op_end obs ~pid:0 ~aborted:false;
  let find pid =
    List.find (fun m -> m.Obs.om_pid = pid) (Obs.op_metrics obs)
  in
  Alcotest.(check int) "p0 ivl" 2 (find 0).Obs.om_interval_contention;
  Alcotest.(check int) "p1 ivl" 1 (find 1).Obs.om_interval_contention;
  Alcotest.(check int) "p2 ivl" 1 (find 2).Obs.om_interval_contention;
  Alcotest.(check int) "p0 stepC" 0 (find 0).Obs.om_step_contention;
  Alcotest.(check bool) "p2 aborted" true (find 2).Obs.om_aborted;
  Alcotest.(check int) "max ivl" 2 (Obs.max_interval_contention obs);
  Alcotest.(check int) "max stepC" 0 (Obs.max_step_contention obs)

(* Back-to-back brackets of the same process never overlap themselves,
   and a second op_begin implicitly closes the first as non-aborted. *)
let test_implicit_close () =
  let obs = Obs.create ~n:2 () in
  Obs.op_begin obs ~pid:0 ~obj:0 ~label:"first";
  step obs ~pid:0 ();
  Obs.op_begin obs ~pid:0 ~obj:1 ~label:"second";
  Obs.op_end obs ~pid:0 ~aborted:false;
  let ms = Obs.op_metrics obs in
  Alcotest.(check int) "two metrics" 2 (List.length ms);
  let first = List.find (fun m -> m.Obs.om_label = "first") ms in
  Alcotest.(check bool) "closed clean" false first.Obs.om_aborted;
  Alcotest.(check int) "first's steps" 1 first.Obs.om_steps;
  (* op_end without a bracket is a no-op, not an error *)
  Obs.op_end obs ~pid:1 ~aborted:false;
  Alcotest.(check int) "still two" 2 (List.length (Obs.op_metrics obs))

let test_counters_and_objects () =
  let obs = Obs.create ~n:2 () in
  Obs.step obs ~pid:0 ~kind:Obs.Rmw ~obj:1 ~obj_name:"l.cas" ~info:"cas 0->1";
  Obs.step obs ~pid:0 ~kind:Obs.Rmw ~obj:1 ~obj_name:"l.cas" ~info:"cas 0->1";
  Obs.step obs ~pid:1 ~kind:Obs.Rmw ~obj:2 ~obj_name:"l.swap" ~info:"swap";
  Obs.step obs ~pid:1 ~kind:Obs.Write ~obj:3 ~obj_name:"r" ~info:"";
  Alcotest.(check int) "total" 4 (Obs.total_steps obs);
  Alcotest.(check int) "clock" 4 (Obs.clock obs);
  Alcotest.(check int) "p0 steps" 2 (Obs.steps_of obs 0);
  Alcotest.(check int) "p0 rmw" 2 (Obs.rmws_of obs 0);
  Alcotest.(check int) "p0 cas" 2 (Obs.cas_attempts_of obs 0);
  Alcotest.(check int) "p1 rmw" 1 (Obs.rmws_of obs 1);
  Alcotest.(check int) "p1 cas (swap is not cas)" 0 (Obs.cas_attempts_of obs 1);
  Obs.abort obs ~pid:1;
  Obs.handoff obs ~pid:1 ~label:"a1->a2";
  Obs.crash obs ~pid:0;
  Alcotest.(check int) "aborts" 1 (Obs.total_aborts obs);
  Alcotest.(check int) "handoffs" 1 (Obs.handoffs_of obs 1);
  Alcotest.(check (list int)) "crashes" [ 0 ] (Obs.crashes obs);
  match Obs.objects obs with
  | (top, steps, rmws) :: _ ->
      Alcotest.(check string) "busiest object" "l.cas" top;
      Alcotest.(check int) "its steps" 2 steps;
      Alcotest.(check int) "its rmws" 2 rmws
  | [] -> Alcotest.fail "object census empty"

let test_crash_closes_bracket_aborted () =
  let obs = Obs.create ~n:2 () in
  Obs.op_begin obs ~pid:0 ~obj:0 ~label:"doomed";
  step obs ~pid:0 ();
  Obs.crash obs ~pid:0;
  match Obs.op_metrics obs with
  | [ m ] -> Alcotest.(check bool) "aborted by crash" true m.Obs.om_aborted
  | ms -> Alcotest.failf "expected 1 metric, got %d" (List.length ms)

let test_ring_eviction () =
  let obs = Obs.create ~ring_capacity:4 ~n:1 () in
  for i = 1 to 10 do
    Obs.step obs ~pid:0 ~kind:Obs.Read ~obj:0 ~obj_name:"r" ~info:(string_of_int i)
  done;
  let evs = Obs.events obs in
  Alcotest.(check int) "bounded" 4 (List.length evs);
  (* oldest first, and the oldest survivor is step 7 of 10 *)
  (match evs with
  | Obs.Step { info; _ } :: _ -> Alcotest.(check string) "oldest" "7" info
  | _ -> Alcotest.fail "expected Step events");
  Alcotest.(check int) "counters unaffected by eviction" 10 (Obs.total_steps obs)

let test_null_sink () =
  let obs = Obs.null in
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  step obs ~pid:0 ();
  Obs.op_begin obs ~pid:0 ~obj:0 ~label:"x";
  Obs.op_end obs ~pid:0 ~aborted:true;
  Obs.abort obs ~pid:0;
  Obs.crash obs ~pid:0;
  Alcotest.(check int) "no steps" 0 (Obs.total_steps obs);
  Alcotest.(check int) "no metrics" 0 (List.length (Obs.op_metrics obs));
  Alcotest.(check int) "no events" 0 (List.length (Obs.events obs))

(* A solo run measures zero for both estimators — the premise of every
   "solo cost" claim in the paper. *)
let test_solo_zero_contention () =
  let a = Obs_run.solo (Obs_run.Cons Cons_run.Bakery) ~n:4 in
  Alcotest.(check int) "solo ivl contention" 0 a.Obs_run.max_interval_contention;
  List.iter
    (fun m ->
      Alcotest.(check int) "solo stepC" 0 m.Obs.om_step_contention;
      Alcotest.(check bool) "solo commits" false m.Obs.om_aborted)
    a.Obs_run.ops

(* Cross-check the online estimator against Scs_sim.Detect, the post-hoc
   reference scan over the low-level memory trace. The sink's clock
   coincides with Sim.clock when attached at creation, so each
   op_metric's [om_start, om_finish] is directly a Detect.interval. *)
let test_cross_check_detect () =
  List.iter
    (fun seed ->
      let obs = Obs.create ~n:4 () in
      let r =
        Tas_run.one_shot ~seed ~trace_mem:true ~obs ~n:4 ~algo:Tas_run.Composed
          ~policy:(fun rng -> Policy.random rng)
          ()
      in
      let mem = r.Tas_run.mem in
      List.iter
        (fun m ->
          let iv =
            {
              Detect.pid = m.Obs.om_pid;
              start_ts = m.Obs.om_start;
              end_ts = m.Obs.om_finish;
            }
          in
          Alcotest.(check int)
            (Printf.sprintf "seed %d p%d own steps" seed m.Obs.om_pid)
            (Detect.steps_within mem iv) m.Obs.om_steps;
          let ref_contention =
            Array.fold_left
              (fun acc (e : Mem_event.t) ->
                if e.pid <> iv.Detect.pid && e.ts > iv.Detect.start_ts
                   && e.ts <= iv.Detect.end_ts
                then acc + 1
                else acc)
              0 mem
          in
          Alcotest.(check int)
            (Printf.sprintf "seed %d p%d step contention" seed m.Obs.om_pid)
            ref_contention m.Obs.om_step_contention;
          Alcotest.(check bool)
            (Printf.sprintf "seed %d p%d contended flag agrees" seed m.Obs.om_pid)
            (Detect.step_contended mem iv)
            (m.Obs.om_step_contention > 0))
        (Obs.op_metrics obs))
    [ 1; 7; 42; 1234 ]

(* Attaching a sink must never change what the fuzzer concludes: same
   seeds, same policies, obs on vs off, identical verdict counts and
   identical violation schedules. *)
let test_obs_never_changes_verdicts () =
  let run ~obs =
    Fuzz_run.fuzz ?obs ~runs:40 ~seed:9 ~check_domains:1
      (Option.get (Fuzz_run.find "tas-composed"))
      ~n:3
  in
  let off = run ~obs:None in
  let on = run ~obs:(Some (Obs.create ~n:3 ())) in
  let digest (r : Fuzz.report) =
    List.map
      (fun (s : Fuzz.policy_stats) ->
        ((s.Fuzz.s_policy, s.Fuzz.s_runs), (s.Fuzz.s_violations, s.Fuzz.s_skipped)))
      r.Fuzz.r_stats
  in
  Alcotest.(check (list (pair (pair string int) (pair int int))))
    "per-policy verdicts identical" (digest off) (digest on);
  Alcotest.(check int) "violation lists identical"
    (List.length off.Fuzz.r_violations)
    (List.length on.Fuzz.r_violations)

(* merge_into folds one sink into another: counters summed, census
   merged, maxima maxed, crashes appended after the destination's, ring
   replayed oldest-first, open brackets of the source dropped. *)
let test_merge_into () =
  let a = Obs.create ~n:3 () in
  let b = Obs.create ~n:3 () in
  Obs.op_begin a ~pid:0 ~obj:0 ~label:"opA";
  step a ~pid:0 ();
  step a ~pid:1 ~obj:1 ~name:"s" ();
  Obs.op_end a ~pid:0 ~aborted:false;
  Obs.crash a ~pid:2;
  Obs.op_begin b ~pid:1 ~obj:0 ~label:"opB";
  step b ~pid:1 ();
  step b ~pid:1 ();
  Obs.op_end b ~pid:1 ~aborted:true;
  Obs.abort b ~pid:1;
  Obs.crash b ~pid:0;
  Obs.op_begin b ~pid:2 ~obj:0 ~label:"open";
  (* still open: must be dropped by the merge *)
  Obs.merge_into ~into:a b;
  Alcotest.(check int) "steps summed" 4 (Obs.total_steps a);
  Alcotest.(check int) "clock summed" 4 (Obs.clock a);
  Alcotest.(check int) "p1 steps summed" 3 (Obs.steps_of a 1);
  Alcotest.(check int) "aborts summed" 1 (Obs.total_aborts a);
  Alcotest.(check (list int)) "crashes appended after destination" [ 2; 0 ]
    (Obs.crashes a);
  Alcotest.(check int) "op metrics appended" 2 (List.length (Obs.op_metrics a));
  (match Obs.objects a with
  | (name, steps, _) :: _ ->
      Alcotest.(check string) "census merged: busiest object" "r" name;
      Alcotest.(check int) "census merged: steps" 3 steps
  | [] -> Alcotest.failf "census empty after merge");
  (* the open bracket's begin event stays in the ring (history), only
     its bracket state is dropped *)
  Alcotest.(check int) "ring replayed"
    (4 (* steps *) + 2 (* begin/end A *) + 2 (* begin/end B *) + 2 (* crashes *)
   + 1 (* dangling op_begin *))
    (List.length (Obs.events a));
  (* source unchanged *)
  Alcotest.(check int) "source untouched" 2 (Obs.total_steps b);
  (* disabled destination rejected, disabled source a no-op *)
  (match Obs.merge_into ~into:Obs.null a with
  | () -> Alcotest.failf "merge into null must raise"
  | exception Invalid_argument _ -> ());
  let before = Obs.total_steps a in
  Obs.merge_into ~into:a Obs.null;
  Alcotest.(check int) "null source is no-op" before (Obs.total_steps a)

(* Parallel exploration with a sink: domains > 1 used to raise; now each
   worker records into a private sink merged at join, and for a complete
   exploration the merged step totals equal the sequential ones. *)
let test_explore_obs_domains () =
  let setup sim =
    let r = Sim.reg sim ~name:"r" 0 in
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          ignore (Sim.read r);
          Sim.write r pid)
    done
  in
  let run domains =
    let obs = Obs.create ~n:2 () in
    let outcome =
      Explore.exhaustive ~domains ~obs ~n:2 ~setup ~check:(fun _ _ -> ()) ()
    in
    (outcome, obs)
  in
  let (seq_out, seq_obs) = run 1 in
  let (par_out, par_obs) = run 2 in
  Alcotest.(check int) "same schedule count" seq_out.Explore.schedules
    par_out.Explore.schedules;
  (* recorded steps include backtrack replays, whose structure differs
     between engines, so totals are engine-specific — but every maximal
     schedule contributes its 4 memory steps (2 reads + 2 writes), and
     the merged clock must stay consistent with the merged step count *)
  Alcotest.(check bool) "merged sink covers every schedule" true
    (Obs.total_steps par_obs >= 4 * par_out.Explore.schedules);
  Alcotest.(check int) "sequential clock consistent" (Obs.total_steps seq_obs)
    (Obs.clock seq_obs);
  Alcotest.(check int) "merged clock consistent" (Obs.total_steps par_obs)
    (Obs.clock par_obs);
  Alcotest.(check (list string)) "merged census covers the same objects"
    (List.map (fun (name, _, _) -> name) (Obs.objects seq_obs))
    (List.map (fun (name, _, _) -> name) (Obs.objects par_obs))

(* Trajectory schema: value round-trip, file round-trip, and the
   validator rejecting what it must reject. *)
let test_trajectory_roundtrip () =
  let t =
    {
      Trajectory.run = "test";
      seed = 7;
      records =
        [
          {
            Trajectory.workload = "a1";
            sim_backend = Some "sim-lin";
            n = 4;
            runs = 10;
            p50_steps = 3.0;
            p99_steps = 9.5;
            max_interval_contention = 2;
            schedules_per_sec = 123.4;
            native = None;
          };
          {
            Trajectory.workload = "native:speculative:r0.50-zipf0.99-k16";
            sim_backend = None;
            n = 4;
            runs = 100000;
            p50_steps = 0.0;
            p99_steps = 0.0;
            max_interval_contention = 0;
            schedules_per_sec = 81234.5;
            native =
              Some
                {
                  Trajectory.backend = "native";
                  domains = 4;
                  ops_per_sec = 81234.5;
                  p50_us = 1.2;
                  p99_us = 9.8;
                  p999_us = 40.0;
                  abort_rate = 0.05;
                };
          };
        ];
    }
  in
  (match Trajectory.of_json (Trajectory.to_json t) with
  | Ok t' -> Alcotest.(check bool) "value round-trip" true (t = t')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  let file = Filename.temp_file "traj" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trajectory.save file t;
      match Trajectory.load file with
      | Ok t' -> Alcotest.(check bool) "file round-trip" true (t = t')
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_trajectory_validation_errors () =
  let reject label raw =
    match Trajectory.validate raw with
    | Ok _ -> Alcotest.failf "%s: accepted invalid input" label
    | Error _ -> ()
  in
  reject "not json" "][";
  reject "wrong schema tag"
    {|{"schema":"scs.bench.trajectory/999","run":"x","seed":1,"records":[]}|};
  reject "missing seed" {|{"schema":"scs.bench.trajectory/1","run":"x","records":[]}|};
  reject "record missing field"
    {|{"schema":"scs.bench.trajectory/1","run":"x","seed":1,
       "records":[{"workload":"a1","n":2,"runs":5}]}|};
  reject "native sub-record missing field"
    {|{"schema":"scs.bench.trajectory/1","run":"x","seed":1,
       "records":[{"workload":"w","n":2,"runs":5,"p50_steps":1.0,"p99_steps":2.0,
                   "max_interval_contention":0,"schedules_per_sec":1.0,
                   "native":{"backend":"native","domains":2}}]}|};
  match
    Trajectory.validate
      {|{"schema":"scs.bench.trajectory/1","run":"x","seed":1,"records":[]}|}
  with
  | Ok t -> Alcotest.(check int) "empty records ok" 0 (List.length t.Trajectory.records)
  | Error e -> Alcotest.failf "rejected valid input: %s" e

let test_json_parser () =
  let roundtrip v =
    match Json.of_string (Json.to_string v) with
    | Ok v' -> Alcotest.(check bool) "json round-trip" true (v = v')
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  roundtrip
    (Json.Obj
       [
         ("s", Json.String "q\"uo\\te\n");
         ("i", Json.Int (-42));
         ("f", Json.Float 1.5);
         ("l", Json.List [ Json.Bool true; Json.Null ]);
         ("empty", Json.Obj []);
       ]);
  (match Json.of_string "{\"a\": [1, 2.5]}" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5 ]) ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed json: %s" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

let tests =
  [
    Alcotest.test_case "known-answer: step contention" `Quick
      test_known_answer_step_contention;
    Alcotest.test_case "known-answer: interval contention" `Quick
      test_known_answer_interval_contention;
    Alcotest.test_case "implicit close on re-begin" `Quick test_implicit_close;
    Alcotest.test_case "counters and object census" `Quick test_counters_and_objects;
    Alcotest.test_case "crash closes bracket as aborted" `Quick
      test_crash_closes_bracket_aborted;
    Alcotest.test_case "ring buffer evicts oldest" `Quick test_ring_eviction;
    Alcotest.test_case "null sink is inert" `Quick test_null_sink;
    Alcotest.test_case "solo run measures zero contention" `Quick
      test_solo_zero_contention;
    Alcotest.test_case "online estimators match Detect" `Quick test_cross_check_detect;
    Alcotest.test_case "obs never changes fuzz verdicts" `Quick
      test_obs_never_changes_verdicts;
    Alcotest.test_case "merge_into folds sinks" `Quick test_merge_into;
    Alcotest.test_case "explore merges per-domain sinks" `Quick
      test_explore_obs_domains;
    Alcotest.test_case "trajectory round-trip" `Quick test_trajectory_roundtrip;
    Alcotest.test_case "trajectory validation errors" `Quick
      test_trajectory_validation_errors;
    Alcotest.test_case "json parser round-trip and errors" `Quick test_json_parser;
  ]
