(* The native OCaml 5 backend: the same algorithm functors running on
   [Atomic] under real [Domain] parallelism. Safety properties that can be
   checked without a global clock: winner uniqueness, lock mutual
   exclusion, counter exactness, consensus agreement.

   The quick section runs everywhere. The stress section scales 2-8
   domains and is auto-skipped (with a visible notice) on hosts where
   [Domain.recommended_domain_count () < 2] — there domains only
   time-share, so the extra interleaving coverage the stress suite pays
   for is not actually exercised; set SCS_NATIVE_STRESS=1 to force it. *)

open Scs_spec
module P = Scs_prims.Native_prims
module OS = Scs_tas.One_shot.Make (P)
module SF = Scs_tas.Solo_fast.Make (P)
module LL = Scs_tas.Long_lived.Make (P)
module B = Scs_tas.Baselines.Make (P)
module L = Scs_tas.Locks.Make (P)
module Ch = Scs_consensus.Chain.Make (P)
module Sc = Scs_consensus.Split_consensus.Make (P)
module Ab = Scs_consensus.Abortable_bakery.Make (P)
module Cc = Scs_consensus.Cas_consensus.Make (P)
module CI = Scs_consensus.Consensus_intf
module Outcome = Scs_composable.Outcome

let n_domains = 4

let spawn_n n f =
  let domains = List.init n (fun pid -> Domain.spawn (fun () -> f pid)) in
  List.map Domain.join domains

let spawn_all f = spawn_n n_domains f

let test_one_shot_unique_winner () =
  for _ = 1 to 50 do
    let os = OS.create ~name:"t" () in
    let results = spawn_all (fun pid -> OS.test_and_set os ~pid) in
    let winners = List.filter (fun r -> r = Objects.Winner) results in
    Alcotest.(check int) "exactly one winner" 1 (List.length winners)
  done

let test_one_shot_strict_unique_winner () =
  for _ = 1 to 50 do
    let os = OS.create ~strict:true ~name:"t" () in
    let results = spawn_all (fun pid -> OS.test_and_set os ~pid) in
    let winners = List.filter (fun r -> r = Objects.Winner) results in
    Alcotest.(check int) "exactly one winner" 1 (List.length winners)
  done

let test_long_lived_round_winners () =
  let iters = 20 in
  (* every iteration of every domain may win and reset *)
  let rounds = (n_domains * iters) + 2 in
  let ll = LL.create ~name:"ll" ~rounds () in
  let per_round = Array.make rounds 0 in
  let mutex = Mutex.create () in
  let _ =
    spawn_all (fun pid ->
        let h = LL.handle ll ~pid in
        for _ = 1 to iters do
          let resp, _, round = LL.test_and_set_info h in
          if resp = Objects.Winner then begin
            Mutex.lock mutex;
            per_round.(round) <- per_round.(round) + 1;
            Mutex.unlock mutex;
            LL.reset h
          end
        done)
  in
  Array.iteri
    (fun i w -> if w > 1 then Alcotest.failf "round %d has %d winners" i w)
    per_round

let test_tournament_unique_winner () =
  for seed = 1 to 50 do
    let t = B.Tournament.create ~name:"agtv" ~n:n_domains () in
    let results =
      spawn_all (fun pid ->
          B.Tournament.test_and_set t ~pid ~rng:(Scs_util.Rng.create ((seed * 17) + pid)))
    in
    let winners = List.filter (fun r -> r = Objects.Winner) results in
    Alcotest.(check int) "exactly one winner" 1 (List.length winners)
  done

let test_speculative_lock_counter () =
  let lock = L.Speculative.create ~name:"l" ~rounds:100_000 () in
  let counter = ref 0 in
  let iters = 300 in
  let _ =
    spawn_all (fun pid ->
        let h = L.Speculative.handle lock ~pid in
        for _ = 1 to iters do
          L.Speculative.acquire h;
          (* non-atomic increment guarded by the lock *)
          counter := !counter + 1;
          L.Speculative.release h
        done)
  in
  Alcotest.(check int) "no lost updates" (n_domains * iters) !counter

let test_ttas_lock_counter () =
  let lock = L.Ttas.create ~name:"l" () in
  let counter = ref 0 in
  let iters = 300 in
  let _ =
    spawn_all (fun pid ->
        ignore pid;
        for _ = 1 to iters do
          L.Ttas.acquire lock;
          counter := !counter + 1;
          L.Ttas.release lock
        done)
  in
  Alcotest.(check int) "no lost updates" (n_domains * iters) !counter

let test_native_prims_semantics () =
  let t = P.tas_obj ~name:"t" () in
  Alcotest.(check bool) "first tas wins" true (P.test_and_set t);
  Alcotest.(check bool) "second loses" false (P.test_and_set t);
  P.tas_reset t;
  Alcotest.(check bool) "wins after reset" true (P.test_and_set t);
  let f = P.fai_obj ~name:"f" 3 in
  Alcotest.(check int) "fai returns old" 3 (P.fetch_and_inc f);
  Alcotest.(check int) "fai incremented" 4 (P.fai_read f);
  let c = P.cas_obj ~name:"c" None in
  Alcotest.(check bool) "cas succeeds" true (P.compare_and_swap c ~expect:None ~update:(Some 1));
  Alcotest.(check bool) "cas fails" false (P.compare_and_swap c ~expect:None ~update:(Some 2))

(* ------------------------------------------------------------------ *)
(* 2-8 domain stress suite                                             *)
(* ------------------------------------------------------------------ *)

let stress_ns = [ 2; 4; 8 ]

let stress body () =
  let cores = Domain.recommended_domain_count () in
  if cores < 2 && Sys.getenv_opt "SCS_NATIVE_STRESS" = None then begin
    Printf.printf
      "SKIP native stress: Domain.recommended_domain_count () = %d < 2 — domains \
       would only time-share on this host; set SCS_NATIVE_STRESS=1 to force.\n%!"
      cores;
    ()
  end
  else body ()

let mk_chain ~n name =
  Ch.make ~name
    [
      Sc.instance (Sc.create ~name:(name ^ ".split") ());
      Ab.instance (Ab.create ~name:(name ^ ".bakery") ~n ());
      Cc.instance (Cc.create ~name:(name ^ ".cas") ());
    ]

let test_stress_chain_agreement () =
  List.iter
    (fun n ->
      for iter = 1 to 15 do
        let chain = mk_chain ~n (Printf.sprintf "stress.chain.%d.%d" n iter) in
        let outcomes = spawn_n n (fun pid -> chain.CI.run ~pid ~old:None (pid + 1)) in
        let decided =
          List.filter_map
            (function Outcome.Commit (Some v) -> Some v | _ -> None)
            outcomes
        in
        (* the chain ends in CAS consensus: nobody aborts, all agree *)
        Alcotest.(check int) "all commit" n (List.length decided);
        match decided with
        | [] -> Alcotest.fail "no decision"
        | d :: rest ->
            List.iter
              (fun v -> if v <> d then Alcotest.failf "disagreement: %d vs %d" v d)
              rest;
            if d < 1 || d > n then Alcotest.failf "decided %d not proposed" d
      done)
    stress_ns

let test_stress_solo_fast_epochs () =
  (* one object reused across epochs through the quiescent harness_reset
     — the exact lifecycle the load harness's recycle barrier runs *)
  List.iter
    (fun n ->
      let sf = SF.create ~name:"stress.sf" () in
      for _epoch = 1 to 12 do
        let results = spawn_n n (fun pid -> SF.test_and_set sf ~pid) in
        let winners = List.filter (fun r -> r = Objects.Winner) results in
        Alcotest.(check int) "one winner per epoch" 1 (List.length winners);
        Alcotest.(check bool) "won value visible" true (SF.value_read sf);
        SF.harness_reset sf;
        Alcotest.(check bool) "reset clears value" false (SF.value_read sf)
      done)
    stress_ns

let test_stress_long_lived_recycle () =
  (* 8-domain long-lived TAS driven past its round array twice via
     harness_recycle; per-round winner uniqueness must hold per epoch *)
  let n = 8 and iters = 12 in
  let rounds = (n * iters) + 2 in
  let ll = LL.create ~name:"stress.ll" ~rounds () in
  let run_epoch () =
    let per_round = Array.make rounds 0 in
    let mutex = Mutex.create () in
    let _ =
      spawn_n n (fun pid ->
          let h = LL.handle ll ~pid in
          for _ = 1 to iters do
            let resp, _, round = LL.test_and_set_info h in
            if resp = Objects.Winner then begin
              Mutex.lock mutex;
              per_round.(round) <- per_round.(round) + 1;
              Mutex.unlock mutex;
              LL.reset h
            end
          done)
    in
    Array.iteri
      (fun i w -> if w > 1 then Alcotest.failf "round %d has %d winners" i w)
      per_round
  in
  run_epoch ();
  (* quiescent: all domains joined, no handle holds the win past reset *)
  LL.harness_recycle ll;
  run_epoch ()

let test_stress_one_shot_arena () =
  (* keyed arena, every domain hits every key: per-key winner uniqueness
     under full contention, the invariant the load harness's one-shot
     family relies on *)
  List.iter
    (fun n ->
      let keys = 4 in
      for _iter = 1 to 10 do
        let arena =
          Array.init keys (fun k -> OS.create ~name:(Printf.sprintf "arena[%d]" k) ())
        in
        let wins = spawn_n n (fun pid ->
            let w = Array.make keys 0 in
            for k = 0 to keys - 1 do
              (* stagger start keys so contention hits every key *)
              let key = (k + pid) mod keys in
              if OS.test_and_set arena.(key) ~pid = Objects.Winner then
                w.(key) <- w.(key) + 1
            done;
            w)
        in
        for k = 0 to keys - 1 do
          let total = List.fold_left (fun acc w -> acc + w.(k)) 0 wins in
          Alcotest.(check int) "one winner per key" 1 total
        done
      done)
    stress_ns

let test_stress_speculative_lock () =
  List.iter
    (fun n ->
      let lock = L.Speculative.create ~name:"stress.l" ~rounds:200_000 () in
      let counter = ref 0 in
      let iters = 500 in
      let _ =
        spawn_n n (fun pid ->
            let h = L.Speculative.handle lock ~pid in
            for _ = 1 to iters do
              L.Speculative.acquire h;
              counter := !counter + 1;
              L.Speculative.release h
            done)
      in
      Alcotest.(check int) "no lost updates" (n * iters) !counter)
    stress_ns

let tests =
  [
    Alcotest.test_case "native prims semantics" `Quick test_native_prims_semantics;
    Alcotest.test_case "one-shot unique winner (4 domains)" `Quick test_one_shot_unique_winner;
    Alcotest.test_case "strict one-shot unique winner (4 domains)" `Quick
      test_one_shot_strict_unique_winner;
    Alcotest.test_case "long-lived round winners (4 domains)" `Quick
      test_long_lived_round_winners;
    Alcotest.test_case "tournament unique winner (4 domains)" `Quick
      test_tournament_unique_winner;
    Alcotest.test_case "speculative lock counter (4 domains)" `Quick
      test_speculative_lock_counter;
    Alcotest.test_case "ttas lock counter (4 domains)" `Quick test_ttas_lock_counter;
    Alcotest.test_case "stress: chain agreement (2-8 domains)" `Slow
      (stress test_stress_chain_agreement);
    Alcotest.test_case "stress: solo-fast reset epochs (2-8 domains)" `Slow
      (stress test_stress_solo_fast_epochs);
    Alcotest.test_case "stress: long-lived recycle (8 domains)" `Slow
      (stress test_stress_long_lived_recycle);
    Alcotest.test_case "stress: one-shot arena winners (2-8 domains)" `Slow
      (stress test_stress_one_shot_arena);
    Alcotest.test_case "stress: speculative lock counter (2-8 domains)" `Slow
      (stress test_stress_speculative_lock);
  ]
