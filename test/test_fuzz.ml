(* The fuzz/shrink/replay loop, end to end (acceptance for the fuzzing
   subsystem):

   - the fuzzer re-discovers findings F-1 and F-2 at n = 3 by plain
     randomized search;
   - the shrinker reduces the raw failing schedules to at most the
     length of the hand-extracted minimal schedules replayed in
     test_findings.ml (21 turns for F-1, 19 for F-2);
   - the emitted .scsrepro artifacts round-trip through the textual
     format and deterministically re-trigger each violation under
     strict scripted replay. *)

open Scs_sim
open Scs_workload

let uniform = [ { Fuzz.kind = Fuzz.Uniform; crash_faults = false; crash_recover = false } ]

let fuzz_one w ~n =
  let report = Fuzz_run.fuzz ~policies:uniform ~runs:100_000 ~max_violations:1 ~seed:7 w ~n in
  match report.Fuzz.r_violations with
  | [ v ] -> v
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

(* recorded minimal lengths from test_findings.ml *)
let f1_recorded_len = 21
let f2_recorded_len = 19

let find_shrink_replay w ~n ~recorded_len =
  let v = fuzz_one w ~n in
  let (sched, crashes), (st : Shrink.stats) =
    Fuzz_run.shrink w ~n ~schedule:v.Fuzz.v_schedule ~crashes:v.Fuzz.v_crashes
  in
  if Array.length sched > recorded_len then
    Alcotest.failf "shrunk schedule has %d turns > recorded minimal %d" (Array.length sched)
      recorded_len;
  Alcotest.(check int) "stats agree with result" (Array.length sched) st.Shrink.final_len;
  Alcotest.(check bool) "shrinking reduced or kept length" true
    (st.Shrink.final_len <= st.Shrink.orig_len);
  (* the minimized triple still deterministically reproduces *)
  (match Fuzz_run.replay w ~n ~schedule:sched ~crashes with
  | Fuzz_run.Violates _ -> ()
  | Fuzz_run.Passes -> Alcotest.fail "shrunk schedule no longer violates"
  | Fuzz_run.Skipped m -> Alcotest.failf "shrunk schedule skipped: %s" m
  | Fuzz_run.Drifted p -> Alcotest.failf "shrunk schedule drifts at pid %d" p);
  (* 1-minimality: removing any single remaining turn loses the failure *)
  let still_fails i =
    let cand =
      Array.init
        (Array.length sched - 1)
        (fun j -> if j < i then sched.(j) else sched.(j + 1))
    in
    match Fuzz_run.replay w ~n ~schedule:cand ~crashes with
    | Fuzz_run.Violates _ -> true
    | _ -> false
  in
  for i = 0 to Array.length sched - 1 do
    if still_fails i then Alcotest.failf "dropping turn %d still fails: not 1-minimal" i
  done;
  (* and the .scsrepro artifact round-trips and replays *)
  let repro = { (Fuzz.Repro.of_violation v) with Fuzz.Repro.schedule = sched; crashes } in
  let path = Filename.temp_file "scs" ".scsrepro" in
  Fuzz.Repro.save path repro;
  let loaded = Fuzz.Repro.load path in
  Sys.remove path;
  Alcotest.(check string) "workload survives round-trip" repro.Fuzz.Repro.workload
    loaded.Fuzz.Repro.workload;
  Alcotest.(check (array int)) "schedule survives round-trip" repro.Fuzz.Repro.schedule
    loaded.Fuzz.Repro.schedule;
  Alcotest.(check bool) "crashes survive round-trip" true
    (repro.Fuzz.Repro.crashes = loaded.Fuzz.Repro.crashes);
  match
    Fuzz_run.replay w ~n:loaded.Fuzz.Repro.n ~schedule:loaded.Fuzz.Repro.schedule
      ~crashes:loaded.Fuzz.Repro.crashes
  with
  | Fuzz_run.Violates _ -> ()
  | _ -> Alcotest.fail "loaded artifact did not re-trigger the violation"

let test_f1_fuzz_shrink_replay () =
  find_shrink_replay Fuzz_run.f1 ~n:3 ~recorded_len:f1_recorded_len

let test_f2_fuzz_shrink_replay () =
  find_shrink_replay Fuzz_run.f2 ~n:3 ~recorded_len:f2_recorded_len

let test_fuzz_deterministic () =
  let v1 = fuzz_one Fuzz_run.f1 ~n:3 in
  let v2 = fuzz_one Fuzz_run.f1 ~n:3 in
  Alcotest.(check (array int)) "same seed, same failing schedule" v1.Fuzz.v_schedule
    v2.Fuzz.v_schedule;
  Alcotest.(check int) "same run seed" v1.Fuzz.v_seed v2.Fuzz.v_seed

let test_portfolio_green_workloads () =
  (* every expect_failures=false workload must fuzz clean on a smoke
     budget across the whole portfolio, including crash injection *)
  List.iter
    (fun (w : Fuzz_run.t) ->
      if not w.Fuzz_run.expect_failures then begin
        let report = Fuzz_run.fuzz ~runs:60 ~seed:5 w ~n:w.Fuzz_run.default_n in
        List.iter
          (fun (s : Fuzz.policy_stats) ->
            if s.Fuzz.s_violations > 0 then
              Alcotest.failf "%s: %d violations under %s" w.Fuzz_run.name
                s.Fuzz.s_violations s.Fuzz.s_policy)
          report.Fuzz.r_stats
      end)
    Fuzz_run.all

let test_queue_past_cap_checked () =
  (* 3 processes x 22 ops = 66 operations > the legacy 62-op cap: such
     runs used to be skipped and are now checked and counted as
     checked-large, with zero capacity skips *)
  let report = Fuzz_run.fuzz ~policies:uniform ~runs:3 ~seed:3 Fuzz_run.queue ~n:3 in
  match report.Fuzz.r_stats with
  | [ s ] ->
      Alcotest.(check int) "no skips" 0 s.Fuzz.s_skipped;
      Alcotest.(check int) "all runs checked past the cap" 3 s.Fuzz.s_checked_large;
      Alcotest.(check int) "no violations" 0 s.Fuzz.s_violations;
      Alcotest.(check int) "all runs accounted" 3 s.Fuzz.s_runs
  | _ -> Alcotest.fail "expected one policy"

let test_long_lived_fuzz_no_capacity_skips () =
  (* the headline acceptance check: 200+ op long-lived TAS histories are
     actually verified — zero capacity skips, every run counted as
     checked-large, and the scalable + per-round compositional checks
     both hold *)
  let report =
    Fuzz_run.fuzz ~policies:uniform ~runs:5 ~seed:9 Fuzz_run.tas_long_lived ~n:3
  in
  match report.Fuzz.r_stats with
  | [ s ] ->
      Alcotest.(check int) "no skips" 0 s.Fuzz.s_skipped;
      Alcotest.(check int) "every run checked past the cap" 5 s.Fuzz.s_checked_large;
      Alcotest.(check int) "no violations" 0 s.Fuzz.s_violations
  | _ -> Alcotest.fail "expected one policy"

let test_long_lived_direct_sequential () =
  (* one deterministic sequential run, inspected directly: enough rounds
     to give 100+ resets, a history far past the legacy cap, decided by
     the scalable checker but rejected by Legacy-mode capacity *)
  let open Scs_spec in
  let open Scs_history in
  let n = 3 in
  let iters = 67 in
  let sim = Sim.create ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module LL = Scs_tas.Long_lived.Make (P) in
  let ll = LL.create ~strict:true ~name:"ll" ~rounds:((n * iters) + 1) () in
  let gen = Request.Gen.create () in
  let tr : (Objects.rtas_req, Objects.rtas_resp, unit) Trace.t =
    Trace.create ~clock:(fun () -> Sim.clock sim) ()
  in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let h = LL.handle ll ~pid in
        for _ = 1 to iters do
          let req = Request.Gen.fresh gen Objects.R_test_and_set in
          Trace.invoke tr ~pid req;
          let resp, _, _ = LL.test_and_set_info h in
          Trace.commit tr ~pid req
            (match resp with
            | Objects.Winner -> Objects.R_winner
            | Objects.Loser -> Objects.R_loser);
          if resp = Objects.Winner then begin
            let rq = Request.Gen.fresh gen Objects.R_reset in
            Trace.invoke tr ~pid rq;
            LL.reset h;
            Trace.commit tr ~pid rq Objects.R_ok
          end
        done)
  done;
  Sim.run sim (Policy.sequential ());
  let ops = Trace.operations (Trace.events tr) in
  let nops = List.length ops in
  let resets =
    List.length
      (List.filter
         (fun (o : _ Trace.operation) ->
           Request.payload o.Trace.op_req = Objects.R_reset)
         ops)
  in
  Alcotest.(check bool) (Printf.sprintf "history is large (%d ops)" nops) true (nops >= 300);
  Alcotest.(check bool) (Printf.sprintf "long-lived: %d resets" resets) true (resets >= 100);
  Alcotest.(check bool) "scalable checker accepts" true
    (Linearize.check_operations Objects.resettable_tas ops);
  try
    ignore (Linearize.check_operations ~mode:Linearize.Legacy Objects.resettable_tas ops);
    Alcotest.fail "legacy mode should reject on capacity"
  with Linearize.Capacity_exceeded k -> Alcotest.(check int) "capacity count" nops k

let test_check_domains_equivalent () =
  (* parallel verification must not change verdicts or accounting *)
  let stats cd =
    let report =
      Fuzz_run.fuzz ~policies:uniform ~runs:20 ~seed:13 ~check_domains:cd Fuzz_run.queue
        ~n:3
    in
    match report.Fuzz.r_stats with
    | [ s ] -> (s.Fuzz.s_runs, s.Fuzz.s_violations, s.Fuzz.s_skipped, s.Fuzz.s_checked_large)
    | _ -> Alcotest.fail "expected one policy"
  in
  let r1 = stats 1 and r2 = stats 2 in
  Alcotest.(check bool) "same runs/violations/skips/checked-large" true (r1 = r2)

let test_crash_variant_finds_f1 () =
  (* crash-injecting portfolio member also rediscovers F-1, and its
     (schedule, crashes) pair replays deterministically *)
  let policies = [ { Fuzz.kind = Fuzz.Uniform; crash_faults = true; crash_recover = false } ] in
  let report =
    Fuzz_run.fuzz ~policies ~runs:100_000 ~max_violations:1 ~seed:7 Fuzz_run.f1 ~n:3
  in
  match report.Fuzz.r_violations with
  | [ v ] -> (
      match
        Fuzz_run.replay Fuzz_run.f1 ~n:3 ~schedule:v.Fuzz.v_schedule
          ~crashes:v.Fuzz.v_crashes
      with
      | Fuzz_run.Violates _ -> ()
      | _ -> Alcotest.fail "crash-variant violation did not replay")
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_chain_bakery_dec_regression () =
  (* regression for a bug this fuzzer found on its first smoke sweep: the
     bakery's ⊥-phase commit wrote Dec := None, clobbering a concurrent
     real decision, so the chain's leave-probe missed it and a later
     process decided its own value. sticky(0.25), seed 11, disagreement
     at run 65 before the fix. *)
  let policies =
    [ { Fuzz.kind = Fuzz.Sticky 0.25; crash_faults = false; crash_recover = false } ]
  in
  let report =
    Fuzz_run.fuzz ~policies ~runs:2000 ~seed:11 Fuzz_run.consensus_chain ~n:3
  in
  match report.Fuzz.r_violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "chain agreement regressed: %s" v.Fuzz.v_error

let test_shrink_rejects_non_reproducing_input () =
  (* a passing schedule is not a counterexample: minimize must refuse *)
  let { Fuzz_run.setup; check } = Fuzz_run.f1.Fuzz_run.instantiate ~n:3 () in
  let sim = Sim.create ~n:3 () in
  setup sim;
  let buf = Scs_util.Vec.create () in
  Sim.run sim (Policy.capture buf (Policy.sequential ()));
  check sim;
  (* sequential runs are linearizable: check passes *)
  match
    Fuzz_run.shrink Fuzz_run.f1 ~n:3 ~schedule:(Scs_util.Vec.to_array buf) ~crashes:[]
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_repro_parse_errors () =
  List.iter
    (fun s ->
      match Fuzz.Repro.of_string s with
      | _ -> Alcotest.failf "accepted malformed input %S" s
      | exception Failure _ -> ())
    [
      "";
      "bogus";
      "scsrepro 2\nworkload f1\nn 3\nseed 1\npolicy u\nerror e\ncrashes -\nschedule 0";
      "scsrepro 1\nworkload f1\nn 3\nseed 1\npolicy u\nerror e\ncrashes 0@\nschedule 0";
      "scsrepro 1\nworkload f1\nn 3";
    ]

let test_repro_crashes_field () =
  let r =
    {
      Fuzz.Repro.workload = "f1";
      n = 4;
      seed = 99;
      policy = "uniform+crash";
      error = "some failure with spaces";
      crashes =
        [ Crash.terminal ~pid:0 ~at:3; Crash.recovering ~pid:2 ~at:11 ~after:4 ];
      schedule = [| 0; 1; 2; 3; 0 |];
    }
  in
  let r' = Fuzz.Repro.of_string (Fuzz.Repro.to_string r) in
  Alcotest.(check bool) "full record round-trips" true (r = r')

let tests =
  [
    Alcotest.test_case "F-1: fuzz, shrink to <= 21 turns, replay" `Quick
      test_f1_fuzz_shrink_replay;
    Alcotest.test_case "F-2: fuzz, shrink to <= 19 turns, replay" `Quick
      test_f2_fuzz_shrink_replay;
    Alcotest.test_case "fuzzing is deterministic given the seed" `Quick
      test_fuzz_deterministic;
    Alcotest.test_case "green workloads fuzz clean (smoke portfolio)" `Quick
      test_portfolio_green_workloads;
    Alcotest.test_case "queue past the 62-op cap is checked, counted" `Quick
      test_queue_past_cap_checked;
    Alcotest.test_case "long-lived TAS: zero capacity skips in a fuzz batch" `Quick
      test_long_lived_fuzz_no_capacity_skips;
    Alcotest.test_case "long-lived TAS: 100+ resets checked directly" `Quick
      test_long_lived_direct_sequential;
    Alcotest.test_case "check-domains parallel verify is equivalent" `Quick
      test_check_domains_equivalent;
    Alcotest.test_case "crash-injecting policy finds and replays F-1" `Quick
      test_crash_variant_finds_f1;
    Alcotest.test_case "regression: bakery Dec clobber (fuzzer-found)" `Quick
      test_chain_bakery_dec_regression;
    Alcotest.test_case "shrink refuses non-reproducing input" `Quick
      test_shrink_rejects_non_reproducing_input;
    Alcotest.test_case "repro: malformed inputs rejected" `Quick test_repro_parse_errors;
    Alcotest.test_case "repro: crash set round-trips" `Quick test_repro_crashes_field;
  ]
