(* Reproduction findings: deterministic regressions documenting where the
   paper's claims need qualification. See DESIGN.md ("Findings") and the
   A1 interface documentation.

   F-1. For n >= 3 the composed A1∘A2 algorithm (verbatim Algorithm 1 + 2)
        admits crash-free executions that are NOT linearizable in the
        strict Herlihy–Wing sense: a loser can commit before any eventual
        winner candidate is invoked. The executions still satisfy the
        paper's own correctness notion — a valid Definition 2
        interpretation exists — and winner uniqueness is never violated.
        The n = 3 boundary was found by the POR-complete explorer (the
        seed engine's 25k-schedule budget never reached it; seed-based
        random search below only hits it from n = 4); the minimal
        counterexample schedule is replayed deterministically here.

   F-2. Invariant 4 of the Lemma 4 proof ("no operation that aborts with W
        may start after an operation commits loser") is falsified by the
        same executions, already at the level of module A1 alone — and
        likewise from n = 3 on, as the POR-complete exploration shows.

   F-3. The strict variant (losing only after observing V = 1) restores
        strict linearizability, at the price of weakening the fast path's
        progress from step-contention-freedom to interval-contention-
        freedom.

   F-4. Composition is lost under per-object sequential consistency: on
        the sim-sc backend with lag 1, the Moir–Anderson splitter lets
        TWO processes return Stop under a schedule where each register's
        own history is sequentially consistent. The minimal witness —
        found by `scs difffuzz` and shrunk by the schedule minimizer —
        needs no interleaving at all: p0 runs its whole splitter
        acquisition solo, then p1 runs its whole acquisition solo, and
        p1's stale (one-write-old, hence still-initial) view of the door
        and turn registers replays p0's uncontended fast path. The same
        schedule on atomic registers passes. This is the paper's
        composition theme inverted: the algorithms' correctness proofs
        consume linearizability of the base objects, and weakening the
        bases to SC — which is indistinguishable process-locally —
        breaks the composed object even sequentially. *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_composable
open Scs_workload

(* Deterministic seeds found by search; reproducibility is guaranteed by
   the SplitMix64 streams. *)
let counterexample_seeds = [ (4, 1978); (5, 456); (5, 826) ]

(* The minimal-n counterexample: an exact 3-process schedule (step i hands
   the turn to process [sched.(i)]) under which p0 commits Loser before
   the eventual winner p2 has even invoked. Found by the POR-based
   exhaustive explorer; replayed here without any exploration machinery. *)
let f1_schedule_n3 = [ 0; 0; 0; 0; 1; 1; 1; 1; 1; 0; 1; 1; 0; 1; 1; 1; 2; 2; 2; 2; 1 ]

let test_f1_minimal_n3_schedule () =
  let n = 3 in
  let sim = Sim.create ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module OS = Scs_tas.One_shot.Make (P) in
  let os = OS.create ~strict:false ~name:"tas" () in
  let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let req = Request.make pid Objects.Test_and_set in
        Trace.invoke tr ~pid req;
        let r = OS.test_and_set os ~pid in
        Trace.commit tr ~pid req r)
  done;
  List.iter
    (fun p ->
      Alcotest.(check bool) "scheduled process is runnable" true (Sim.is_runnable sim p);
      Sim.step sim p)
    f1_schedule_n3;
  Alcotest.(check bool) "schedule is maximal" true (Sim.all_done sim);
  let evs = Trace.events tr in
  let ops = Trace.operations evs in
  Alcotest.(check bool) "not strictly linearizable" false (Tas_lin.check_one_shot ops);
  Alcotest.(check bool) "generic checker agrees" false
    (Linearize.check_operations Objects.tas ops);
  (match Tas_interp.check_events evs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "interpretation should exist: %s" e);
  let winners =
    List.filter
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Committed { resp = Objects.Winner; _ } -> true
        | _ -> false)
      ops
  in
  Alcotest.(check int) "one winner" 1 (List.length winners)

let test_f1_composed_not_strictly_linearizable () =
  let confirmed = ref 0 in
  List.iter
    (fun (n, seed) ->
      let r = Tas_run.one_shot ~seed ~n ~algo:Tas_run.Composed ~policy:Policy.random () in
      let ops = Trace.operations r.Tas_run.outer in
      if not (Tas_lin.check_one_shot ops) then begin
        incr confirmed;
        (* cross-validate with the generic Wing–Gong checker *)
        Alcotest.(check bool) "generic checker agrees" false
          (Linearize.check_operations Objects.tas ops);
        (* the paper's own correctness notion still holds *)
        (match Tas_interp.check_events r.Tas_run.outer with
        | Ok () -> ()
        | Error e -> Alcotest.failf "interpretation should exist: %s" e);
        (* and winner uniqueness is intact *)
        Alcotest.(check int) "one winner" 1 (List.length (Tas_run.winners r))
      end)
    counterexample_seeds;
  Alcotest.(check bool) "counterexamples reproduced" true (!confirmed >= 2)

let test_f1_strict_fixes_the_seeds () =
  List.iter
    (fun (n, seed) ->
      let r = Tas_run.one_shot ~seed ~n ~algo:Tas_run.Strict ~policy:Policy.random () in
      let ops = Trace.operations r.Tas_run.outer in
      Alcotest.(check bool)
        (Printf.sprintf "strict linearizable at n=%d seed=%d" n seed)
        true (Tas_lin.check_one_shot ops))
    counterexample_seeds

(* the same turn-by-turn schedule violates Invariant 4 on the bare A1 at
   n = 3 (the composed replay above takes 21 steps because losers continue
   into A2; bare A1 finishes in 19) *)
let f2_schedule_n3 = [ 0; 0; 0; 0; 1; 1; 1; 1; 1; 0; 1; 1; 0; 1; 1; 1; 2; 2; 2 ]

let test_f2_minimal_n3_schedule () =
  let n = 3 in
  let sim = Sim.create ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A1 = Scs_tas.A1.Make (P) in
  let a1 = A1.create ~name:"a1" () in
  let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let req = Request.make pid Objects.Test_and_set in
        Trace.invoke tr ~pid req;
        match A1.apply a1 ~pid None with
        | Outcome.Commit r -> Trace.commit tr ~pid req r
        | Outcome.Abort v -> Trace.abort tr ~pid req v)
  done;
  List.iter
    (fun p ->
      Alcotest.(check bool) "scheduled process is runnable" true (Sim.is_runnable sim p);
      Sim.step sim p)
    f2_schedule_n3;
  Alcotest.(check bool) "schedule is maximal" true (Sim.all_done sim);
  let ops = Trace.operations (Trace.events tr) in
  let resp_seq (o : _ Trace.operation) =
    match o.Trace.outcome with
    | Trace.Committed { resp_seq; _ } | Trace.Aborted { resp_seq; _ } -> resp_seq
    | Trace.Pending -> max_int
  in
  let losers =
    List.filter
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Committed { resp = Objects.Loser; _ } -> true
        | _ -> false)
      ops
  in
  let first_loser = List.fold_left (fun m o -> min m (resp_seq o)) max_int losers in
  let late_w_abort =
    List.exists
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Aborted { switch = Tas_switch.W; _ } -> o.Trace.invoke_seq > first_loser
        | _ -> false)
      ops
  in
  Alcotest.(check bool) "W-abort invoked after a loser committed" true late_w_abort

let test_f2_invariant4_fails_at_n4 () =
  (* module A1 alone: find an execution where a W-abort is invoked after a
     loser committed *)
  let violated = ref false in
  let seed = ref 0 in
  while (not !violated) && !seed < 3000 do
    incr seed;
    let sim = Sim.create ~n:4 () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module A1 = Scs_tas.A1.Make (P) in
    let a1 = A1.create ~name:"a1" () in
    let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    for pid = 0 to 3 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          Trace.invoke tr ~pid req;
          match A1.apply a1 ~pid None with
          | Outcome.Commit r -> Trace.commit tr ~pid req r
          | Outcome.Abort v -> Trace.abort tr ~pid req v)
    done;
    Sim.run sim (Policy.random (Scs_util.Rng.create !seed));
    let ops = Trace.operations (Trace.events tr) in
    let resp_seq (o : _ Trace.operation) =
      match o.Trace.outcome with
      | Trace.Committed { resp_seq; _ } | Trace.Aborted { resp_seq; _ } -> resp_seq
      | Trace.Pending -> max_int
    in
    let losers =
      List.filter
        (fun (o : _ Trace.operation) ->
          match o.Trace.outcome with
          | Trace.Committed { resp = Objects.Loser; _ } -> true
          | _ -> false)
        ops
    in
    let first_loser = List.fold_left (fun m o -> min m (resp_seq o)) max_int losers in
    List.iter
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Aborted { switch = Tas_switch.W; _ } when o.Trace.invoke_seq > first_loser ->
            violated := true
        | _ -> ())
      ops
  done;
  Alcotest.(check bool) "Invariant 4 violated in some 4-process execution" true !violated

let test_f3_strict_still_fast_solo () =
  (* the fix must not change the uncontended cost profile *)
  let r = Tas_run.one_shot ~n:4 ~algo:Tas_run.Strict ~policy:(fun _ -> Policy.solo 0) () in
  match r.Tas_run.ops with
  | [ op ] ->
      Alcotest.(check bool) "winner" true (op.Tas_run.resp = Objects.Winner);
      Alcotest.(check int) "nine steps" 9 op.Tas_run.steps;
      Alcotest.(check int) "no RMW" 0 op.Tas_run.rmws
  | _ -> Alcotest.fail "expected one op"

let test_f3_strict_sequential_all_fast () =
  let r = Tas_run.one_shot ~n:6 ~algo:Tas_run.Strict ~policy:(fun _ -> Policy.sequential ()) () in
  Alcotest.(check int) "one winner" 1 (List.length (Tas_run.winners r));
  List.iter
    (fun (op : Tas_run.op_record) ->
      Alcotest.(check int) "no rmw sequentially" 0 op.Tas_run.rmws)
    r.Tas_run.ops

(* The F-4 witness: two back-to-back solo splitter acquisitions, no
   interleaving. On sim-sc:1 both processes Stop; the identical schedule
   on atomic registers keeps the splitter's uniqueness guarantee. *)
let f4_schedule_n2 = [| 0; 0; 0; 0; 0; 1; 1; 1; 1; 1 |]

let f4_workload () =
  match Fuzz_run.find "splitter" with
  | Some w -> w
  | None -> Alcotest.fail "splitter workload missing"

let test_f4_minimal_sc_schedule () =
  let w = f4_workload () in
  (match
     Fuzz_run.replay
       ~backend:(Scs_prims.Backend.Sim_sc { lag = 1 })
       w ~n:2 ~schedule:f4_schedule_n2 ~crashes:[]
   with
  | Fuzz_run.Violates msg ->
      Alcotest.(check string) "double Stop" "2 processes returned Stop" msg
  | o ->
      Alcotest.failf "expected an SC violation, got %s"
        (match o with
        | Fuzz_run.Passes -> "Passes"
        | Fuzz_run.Skipped m -> "Skipped: " ^ m
        | Fuzz_run.Drifted p -> Printf.sprintf "Drifted at p%d" p
        | Fuzz_run.Violates m -> m));
  match Fuzz_run.replay w ~n:2 ~schedule:f4_schedule_n2 ~crashes:[] with
  | Fuzz_run.Passes -> ()
  | _ -> Alcotest.fail "the same schedule must pass on atomic registers"

let test_f4_lag0_neutralizes_the_schedule () =
  (* the violation is the staleness's doing, not the schedule's: at lag 0
     the SC backend replays the schedule to a passing run *)
  let w = f4_workload () in
  match
    Fuzz_run.replay
      ~backend:(Scs_prims.Backend.Sim_sc { lag = 0 })
      w ~n:2 ~schedule:f4_schedule_n2 ~crashes:[]
  with
  | Fuzz_run.Passes -> ()
  | _ -> Alcotest.fail "lag 0 must be observationally atomic on the F-4 schedule"

let test_f4_difffuzz_rediscovers () =
  (* the differential fuzzer finds SC-only splitter violations readily:
     a small budget suffices, and every finding replays deterministically *)
  let w = f4_workload () in
  let report =
    Diff_fuzz.run ~policies:[ Diff_fuzz.Uniform ] ~runs:25 ~max_findings:1 ~shrink:false w
      ~n:4 ~lag:1
  in
  let sc_only =
    List.fold_left (fun acc s -> acc + s.Diff_fuzz.dp_sc_only) 0 report.Diff_fuzz.dr_stats
  in
  Alcotest.(check bool) "difffuzz finds SC-only violations" true (sc_only > 0);
  match report.Diff_fuzz.dr_findings with
  | [] -> Alcotest.fail "a finding should have been collected"
  | f :: _ -> (
      match
        Fuzz_run.replay
          ~backend:(Scs_prims.Backend.Sim_sc { lag = 1 })
          w ~n:4 ~schedule:f.Diff_fuzz.df_schedule ~crashes:[]
      with
      | Fuzz_run.Violates _ -> ()
      | _ -> Alcotest.fail "collected finding must replay to a violation")

let tests =
  [
    Alcotest.test_case "F-1: minimal n=3 counterexample schedule" `Quick
      test_f1_minimal_n3_schedule;
    Alcotest.test_case "F-1: composed not strictly linearizable (n>=3)" `Quick
      test_f1_composed_not_strictly_linearizable;
    Alcotest.test_case "F-1: strict variant fixes the counterexamples" `Quick
      test_f1_strict_fixes_the_seeds;
    Alcotest.test_case "F-2: minimal n=3 counterexample schedule" `Quick
      test_f2_minimal_n3_schedule;
    Alcotest.test_case "F-2: Invariant 4 fails under random search (n=4)" `Quick
      test_f2_invariant4_fails_at_n4;
    Alcotest.test_case "F-3: strict keeps solo cost" `Quick test_f3_strict_still_fast_solo;
    Alcotest.test_case "F-3: strict sequential register-only" `Quick
      test_f3_strict_sequential_all_fast;
    Alcotest.test_case "F-4: minimal sequential SC-only splitter violation" `Quick
      test_f4_minimal_sc_schedule;
    Alcotest.test_case "F-4: lag 0 neutralizes the schedule" `Quick
      test_f4_lag0_neutralizes_the_schedule;
    Alcotest.test_case "F-4: difffuzz rediscovers and replays" `Quick
      test_f4_difffuzz_rediscovers;
  ]
