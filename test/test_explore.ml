(* Cross-validation of the exploration engine itself (lib/sim/explore):
   - the single-replay DFS enumerates exactly the same maximal schedules
     as a naive replay-at-every-node reference enumerator;
   - sleep-set POR visits a subset of schedules but preserves every
     reachable outcome profile (it prunes only commuting reorderings);
   - multicore fan-out (domains > 1) covers the same schedule count;
   - depth-truncated runs are counted separately and never checked;
   - nondeterministic setups are rejected with [Replay_drift], and
     mid-run allocation is rejected under POR. *)

open Scs_sim

(* ---- a naive reference enumerator: the seed engine's semantics ------- *)

let naive_schedules ?(max_schedules = 1_000_000) ~n ~setup () =
  let acc = ref [] in
  let count = ref 0 in
  let replay prefix =
    let sim = Sim.create ~n () in
    setup sim;
    List.iter (fun p -> if Sim.is_runnable sim p then Sim.step sim p) (List.rev prefix);
    sim
  in
  let rec dfs prefix =
    if !count < max_schedules then begin
      let sim = replay prefix in
      match Sim.runnable sim with
      | [] ->
          incr count;
          acc := List.rev prefix :: !acc
      | rs -> List.iter (fun p -> dfs (p :: prefix)) rs
    end
  in
  dfs [];
  List.sort compare !acc

let engine_schedules ?max_schedules ?(por = false) ?(domains = 1) ~n ~setup () =
  let acc = ref [] in
  let m = Mutex.create () in
  let check _sim sched =
    Mutex.lock m;
    acc := sched :: !acc;
    Mutex.unlock m
  in
  let outcome = Explore.exhaustive ?max_schedules ~por ~domains ~n ~setup ~check () in
  (outcome, List.sort compare !acc)

(* ---- workloads -------------------------------------------------------- *)

(* Two registers, partly disjoint accesses: enough commuting structure for
   POR to bite, small enough to enumerate by hand-countable means. *)
let regs_setup ~n ~writes_per_proc sim =
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let r = Array.init n (fun i -> P.reg ~name:(Printf.sprintf "r%d" i) 0) in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        for k = 1 to writes_per_proc do
          P.write r.(pid) k;
          (* one shared-register read creates real conflicts *)
          ignore (P.read r.(0))
        done)
  done

(* The classic lost-update race: read-modify-write on one register without
   atomicity. [obs] records the value each process read. *)
let lost_update_setup obs sim =
  let n = Array.length obs in
  Array.fill obs 0 n (-1);
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let c = P.reg ~name:"c" 0 in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let v = P.read c in
        obs.(pid) <- v;
        P.write c (v + 1))
  done

(* ---- DFS vs the naive reference -------------------------------------- *)

let test_same_schedules_as_naive () =
  List.iter
    (fun (n, writes_per_proc) ->
      let setup = regs_setup ~n ~writes_per_proc in
      let reference = naive_schedules ~n ~setup () in
      let outcome, got = engine_schedules ~n ~setup () in
      Alcotest.(check bool) "untruncated" false outcome.Explore.truncated;
      Alcotest.(check int)
        (Printf.sprintf "schedule count n=%d w=%d" n writes_per_proc)
        (List.length reference) (List.length got);
      Alcotest.(check bool)
        (Printf.sprintf "identical schedule sets n=%d w=%d" n writes_per_proc)
        true
        (reference = got))
    [ (2, 2); (3, 1) ]

let test_outcome_field_consistency () =
  let setup = regs_setup ~n:2 ~writes_per_proc:2 in
  let outcome, scheds = engine_schedules ~n:2 ~setup () in
  Alcotest.(check int) "schedules = checks run" outcome.Explore.schedules
    (List.length scheds);
  Alcotest.(check int) "plain DFS prunes nothing" 0 outcome.Explore.pruned;
  Alcotest.(check int) "no truncated runs" 0 outcome.Explore.truncated_runs;
  Alcotest.(check bool) "wall time measured" true (outcome.Explore.wall_s >= 0.0)

(* ---- POR: subset of schedules, same reachable outcomes ---------------- *)

let test_por_preserves_outcome_profiles () =
  let n = 3 in
  let obs = Array.make n (-1) in
  let profiles por =
    let seen = Hashtbl.create 16 in
    let check _sim _sched = Hashtbl.replace seen (Array.to_list obs) () in
    let outcome =
      Explore.exhaustive ~por ~n ~setup:(lost_update_setup obs) ~check ()
    in
    Alcotest.(check bool) "untruncated" false outcome.Explore.truncated;
    let ps = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
    (outcome, List.sort compare ps)
  in
  let full, full_profiles = profiles false in
  let por, por_profiles = profiles true in
  Alcotest.(check bool) "POR visits fewer schedules" true
    (por.Explore.schedules < full.Explore.schedules);
  Alcotest.(check bool) "POR pruned something" true (por.Explore.pruned > 0);
  (* every observation profile — including the lost-update races where
     two processes read the same value — survives the reduction *)
  Alcotest.(check (list (list int))) "same reachable profiles" full_profiles por_profiles;
  (* the race is genuinely present in the reduced exploration *)
  Alcotest.(check bool) "lost update reachable" true
    (List.exists
       (fun p -> List.length (List.sort_uniq compare p) < n)
       por_profiles)

let test_por_schedules_are_a_subset () =
  let setup = regs_setup ~n:2 ~writes_per_proc:2 in
  let _, full = engine_schedules ~n:2 ~setup () in
  let outcome, reduced = engine_schedules ~por:true ~n:2 ~setup () in
  Alcotest.(check bool) "pruned" true (outcome.Explore.pruned > 0);
  Alcotest.(check bool) "subset of the full schedule set" true
    (List.for_all (fun s -> List.mem s full) reduced)

(* ---- multicore fan-out ------------------------------------------------ *)

let test_domains_cover_same_space () =
  let setup = regs_setup ~n:3 ~writes_per_proc:1 in
  let seq, seq_scheds = engine_schedules ~n:3 ~setup () in
  let par, par_scheds = engine_schedules ~domains:2 ~n:3 ~setup () in
  Alcotest.(check int) "same schedule count" seq.Explore.schedules par.Explore.schedules;
  Alcotest.(check bool) "identical schedule sets" true (seq_scheds = par_scheds);
  let seq_por, _ = engine_schedules ~por:true ~n:3 ~setup () in
  let par_por, _ = engine_schedules ~por:true ~domains:2 ~n:3 ~setup () in
  Alcotest.(check int) "same POR schedule count" seq_por.Explore.schedules
    par_por.Explore.schedules

(* ---- truncation accounting -------------------------------------------- *)

let test_depth_truncated_runs_not_checked () =
  let setup = regs_setup ~n:2 ~writes_per_proc:4 in
  let checked = ref 0 in
  let check _ _ = incr checked in
  let outcome = Explore.exhaustive ~max_depth:6 ~n:2 ~setup ~check () in
  Alcotest.(check bool) "truncated flagged" true outcome.Explore.truncated;
  Alcotest.(check bool) "some runs hit the depth bound" true
    (outcome.Explore.truncated_runs > 0);
  (* maximal schedules only: every check saw a completed run *)
  Alcotest.(check int) "checks = maximal schedules" outcome.Explore.schedules !checked;
  Alcotest.(check int) "nothing completes within 6 turns" 0 outcome.Explore.schedules

let test_budget_truncation () =
  let setup = regs_setup ~n:3 ~writes_per_proc:2 in
  let outcome = Explore.exhaustive ~max_schedules:50 ~n:3 ~setup ~check:(fun _ _ -> ()) () in
  Alcotest.(check bool) "truncated" true outcome.Explore.truncated;
  Alcotest.(check int) "stopped at the budget" 50 outcome.Explore.schedules

(* ---- misuse is reported, not silently absorbed ------------------------ *)

let test_nondeterministic_setup_raises () =
  (* the second replay builds a different workload: the engine must notice
     the drift instead of silently exploring garbage *)
  let calls = ref 0 in
  let setup sim =
    incr calls;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let r = P.reg ~name:"r" 0 in
    let work = if !calls = 1 then 3 else 1 in
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          for k = 1 to work do
            P.write r k
          done)
    done
  in
  let drifted = ref false in
  (try ignore (Explore.exhaustive ~n:2 ~setup ~check:(fun _ _ -> ()) ())
   with Explore.Replay_drift _ -> drifted := true);
  Alcotest.(check bool) "replay drift detected" true !drifted

let test_por_rejects_midrun_allocation () =
  let setup sim =
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let r = P.reg ~name:"r" 0 in
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          P.write r 1;
          (* allocating inside the run invalidates footprint-based
             independence: object ids are no longer schedule-invariant *)
          let extra = P.reg ~name:"extra" 0 in
          P.write extra pid)
    done
  in
  let rejected = ref false in
  (try ignore (Explore.exhaustive ~por:true ~n:2 ~setup ~check:(fun _ _ -> ()) ())
   with Invalid_argument _ -> rejected := true);
  Alcotest.(check bool) "mid-run allocation rejected under POR" true !rejected;
  (* without POR the same workload is fine *)
  let outcome = Explore.exhaustive ~n:2 ~setup ~check:(fun _ _ -> ()) () in
  Alcotest.(check bool) "plain engine accepts it" false outcome.Explore.truncated

let tests =
  [
    Alcotest.test_case "matches naive enumerator" `Quick test_same_schedules_as_naive;
    Alcotest.test_case "outcome fields consistent" `Quick test_outcome_field_consistency;
    Alcotest.test_case "POR preserves outcome profiles" `Quick
      test_por_preserves_outcome_profiles;
    Alcotest.test_case "POR schedules form a subset" `Quick test_por_schedules_are_a_subset;
    Alcotest.test_case "domains cover same space" `Quick test_domains_cover_same_space;
    Alcotest.test_case "depth-truncated runs not checked" `Quick
      test_depth_truncated_runs_not_checked;
    Alcotest.test_case "budget truncation exact" `Quick test_budget_truncation;
    Alcotest.test_case "nondeterministic setup raises" `Quick
      test_nondeterministic_setup_raises;
    Alcotest.test_case "POR rejects mid-run allocation" `Quick
      test_por_rejects_midrun_allocation;
  ]
