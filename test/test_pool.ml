(* Differential tests for the pooled simulation engine (PR 5).

   The fuzz engine has two execution paths: the pooled fast path
   ([~pool:true], default — one simulator per gen domain rewound with
   [Sim.clear], allocation-free [Policy.drive] loop) and the fresh
   reference path ([~pool:false] — a new [Sim.create] and boxed policy
   per run, the pre-pool engine kept verbatim). The contract is that
   they are bit-identical: same schedules, same verdicts, same obs
   counters, for every portfolio policy including the crash-injecting
   ones. These tests enforce that contract, plus [Sim.snapshot]/
   [Sim.reset] rewind correctness and recovery after [Livelock] and
   [Process_failure]. *)

open Scs_sim
open Scs_workload

let seeds = [ 1; 7; 1234 ]

let check_viol_eq label (a : Fuzz.violation) (b : Fuzz.violation) =
  Alcotest.(check string) (label ^ " policy") a.Fuzz.v_policy b.Fuzz.v_policy;
  Alcotest.(check int) (label ^ " seed") a.v_seed b.v_seed;
  Alcotest.(check (array int)) (label ^ " schedule") a.v_schedule b.v_schedule;
  Alcotest.(check (list (testable Crash.pp Crash.equal)))
    (label ^ " crashes") a.v_crashes b.v_crashes;
  Alcotest.(check string) (label ^ " error") a.v_error b.v_error

let check_stats_eq label (a : Fuzz.policy_stats) (b : Fuzz.policy_stats) =
  Alcotest.(check string) (label ^ " policy") a.Fuzz.s_policy b.Fuzz.s_policy;
  Alcotest.(check int) (label ^ " runs") a.s_runs b.s_runs;
  Alcotest.(check int) (label ^ " turns") a.s_turns b.s_turns;
  Alcotest.(check int) (label ^ " violations") a.s_violations b.s_violations;
  Alcotest.(check int) (label ^ " skipped") a.s_skipped b.s_skipped;
  Alcotest.(check int) (label ^ " checked_large") a.s_checked_large b.s_checked_large;
  Alcotest.(check (float 1e-9)) (label ^ " p50") a.s_step_p50 b.s_step_p50;
  Alcotest.(check (float 1e-9)) (label ^ " p99") a.s_step_p99 b.s_step_p99;
  Alcotest.(check int) (label ^ " maxC") a.s_max_contention b.s_max_contention

let check_report_eq label (a : Fuzz.report) (b : Fuzz.report) =
  List.iter2 (check_stats_eq label) a.Fuzz.r_stats b.Fuzz.r_stats;
  Alcotest.(check int)
    (label ^ " #violations")
    (List.length a.r_violations)
    (List.length b.r_violations);
  List.iter2 (check_viol_eq label) a.r_violations b.r_violations

(* Pooled vs fresh: full portfolio over a green workload and a
   known-failing finder, at several seeds. Verdict counts, turn counts,
   step percentiles and every recorded violation (schedule + crashes +
   error, bit for bit) must agree. *)
let test_pooled_vs_fresh_reports () =
  List.iter
    (fun (w, n, runs) ->
      List.iter
        (fun seed ->
          let pooled = Fuzz_run.fuzz ~runs ~seed ~pool:true w ~n in
          let fresh = Fuzz_run.fuzz ~runs ~seed ~pool:false w ~n in
          check_report_eq
            (Printf.sprintf "%s seed=%d" w.Fuzz_run.name seed)
            pooled fresh)
        seeds)
    [ (Fuzz_run.tas_composed, 3, 40); (Fuzz_run.f1, 3, 40); (Fuzz_run.splitter, 3, 30) ]

(* Turn-for-turn schedules for EVERY run, not just violating ones: wrap
   a workload so check always raises Violation, surfacing the captured
   schedule of each run in the report. Pooled and fresh must produce
   identical schedule arrays run for run, for every portfolio policy
   (including uniform+crash, whose crash lists must also match). *)
let test_pooled_vs_fresh_every_schedule () =
  let n = 3 in
  let instantiate () =
    let inst = Fuzz_run.tas_composed.Fuzz_run.instantiate ~n () in
    (inst.Fuzz_run.setup, fun _ -> raise (Fuzz.Violation "capture"))
  in
  List.iter
    (fun seed ->
      let go pool =
        Fuzz.run ~runs:25 ~seed ~pool ~workload:"capture" ~n ~instantiate ()
      in
      let pooled = go true and fresh = go false in
      let np = List.length pooled.Fuzz.r_violations in
      Alcotest.(check int) "all runs surfaced" (5 * 25) np;
      check_report_eq (Printf.sprintf "capture seed=%d" seed) pooled fresh)
    seeds

(* Obs counters: attach a sink to both engines and require identical
   step clocks, per-pid counters, abort/handoff totals, crash lists,
   contention maxima and object census. *)
let test_pooled_vs_fresh_obs () =
  let n = 3 in
  List.iter
    (fun seed ->
      let go pool =
        let obs = Scs_obs.Obs.create ~n () in
        let (_ : Fuzz.report) =
          Fuzz_run.fuzz ~runs:40 ~seed ~pool ~obs Fuzz_run.tas_composed ~n
        in
        obs
      in
      let a = go true and b = go false in
      let module O = Scs_obs.Obs in
      Alcotest.(check int) "clock" (O.clock a) (O.clock b);
      Alcotest.(check int) "total steps" (O.total_steps a) (O.total_steps b);
      for pid = 0 to n - 1 do
        Alcotest.(check int) "steps_of" (O.steps_of a pid) (O.steps_of b pid);
        Alcotest.(check int) "rmws_of" (O.rmws_of a pid) (O.rmws_of b pid);
        Alcotest.(check int) "aborts_of" (O.aborts_of a pid) (O.aborts_of b pid);
        Alcotest.(check int) "handoffs_of" (O.handoffs_of a pid) (O.handoffs_of b pid)
      done;
      Alcotest.(check (list int)) "crashes" (O.crashes a) (O.crashes b);
      Alcotest.(check int) "max step contention" (O.max_step_contention a)
        (O.max_step_contention b);
      Alcotest.(check int) "max interval contention" (O.max_interval_contention a)
        (O.max_interval_contention b);
      Alcotest.(check (list (triple string int int))) "object census" (O.objects a)
        (O.objects b);
      Alcotest.(check int) "op metric count"
        (List.length (O.op_metrics a))
        (List.length (O.op_metrics b)))
    seeds

(* Pool accounting: one pooled simulator per policy batch — exactly one
   fresh create per policy, every later acquire a reuse. The fresh path
   reports all-zero pool stats. *)
let test_pool_stats () =
  let runs = 20 in
  let r = Fuzz_run.fuzz ~runs ~seed:7 ~pool:true Fuzz_run.tas_composed ~n:3 in
  let p = r.Fuzz.r_pool in
  let policies = List.length r.Fuzz.r_stats in
  Alcotest.(check int) "one create per policy" policies p.Pool.created;
  Alcotest.(check int) "rest reused" ((policies * runs) - policies) p.Pool.reused;
  if p.Pool.peak_objects <= 0 then Alcotest.failf "peak_objects not recorded";
  if p.Pool.peak_turns <= 0 then Alcotest.failf "peak_turns not recorded";
  let f = Fuzz_run.fuzz ~runs ~seed:7 ~pool:false Fuzz_run.tas_composed ~n:3 in
  Alcotest.(check int) "fresh path: no creates counted" 0 f.Fuzz.r_pool.Pool.created;
  Alcotest.(check int) "fresh path: no reuse counted" 0 f.Fuzz.r_pool.Pool.reused

(* A little workload touching every object class, with a mid-run
   allocation so reset has something to truncate. *)
let setup_kitchen_sink sim =
  let r = Sim.reg sim ~name:"r" 0 in
  let t = Sim.tas_obj sim ~name:"t" () in
  let c = Sim.cas_obj sim ~name:"c" 10 in
  let f = Sim.fai_obj sim ~name:"f" 0 in
  let s = Sim.swap_obj sim ~name:"s" "init" in
  Sim.spawn sim 0 (fun () ->
      Sim.write r 1;
      ignore (Sim.test_and_set t);
      ignore (Sim.compare_and_swap c ~expect:10 ~update:11);
      (* allocated mid-run: must disappear on reset *)
      let extra = Sim.reg sim ~name:"extra" 99 in
      Sim.write extra 100;
      ignore (Sim.read extra));
  Sim.spawn sim 1 (fun () ->
      ignore (Sim.fetch_and_inc f);
      ignore (Sim.swap s "one");
      ignore (Sim.read r));
  Sim.spawn sim 2 (fun () ->
      ignore (Sim.tas_read t);
      ignore (Sim.cas_read c);
      ignore (Sim.fai_read f))

(* snapshot/reset rewinds the simulator to its post-setup state:
   replaying the same schedule after reset reproduces the fresh run's
   trace, counters and object values, and mid-run allocations are
   rolled back. *)
let test_snapshot_reset_differential () =
  let run_once sim rng_seed =
    let rng = Scs_util.Rng.create rng_seed in
    Sim.run_fast sim (Policy.fast_random rng);
    (Sim.trace sim, Sim.clock sim, Sim.total_steps sim, Sim.total_rmws sim,
     Sim.objects_allocated sim)
  in
  let fresh_of seed =
    let sim = Sim.create ~n:3 () in
    Sim.set_trace sim true;
    setup_kitchen_sink sim;
    run_once sim seed
  in
  let sim = Sim.create ~n:3 () in
  Sim.set_trace sim true;
  setup_kitchen_sink sim;
  Sim.snapshot sim;
  let objs0 = Sim.objects_allocated sim in
  List.iter
    (fun seed ->
      let (trace, clock, steps, rmws, objs) = run_once sim seed in
      let (ftrace, fclock, fsteps, frmws, fobjs) = fresh_of seed in
      Alcotest.(check int) "clock matches fresh" fclock clock;
      Alcotest.(check int) "steps match fresh" fsteps steps;
      Alcotest.(check int) "rmws match fresh" frmws rmws;
      Alcotest.(check int) "allocations match fresh" fobjs objs;
      Alcotest.(check int) "trace length" (List.length ftrace) (List.length trace);
      if trace <> ftrace then Alcotest.failf "trace diverged from fresh sim (seed %d)" seed;
      Sim.reset sim;
      Alcotest.(check int) "reset rewinds clock" 0 (Sim.clock sim);
      Alcotest.(check int) "reset truncates mid-run allocations" objs0
        (Sim.objects_allocated sim);
      Alcotest.(check int) "reset re-arms all fibers" 3 (Sim.runnable_count sim))
    [ 5; 42; 5 (* same seed twice: reset must be idempotent *) ]

(* Reset after Livelock: the budget blowup leaves fibers mid-flight;
   reset must rewind to a state from which a bounded fresh-equivalent
   run succeeds. *)
let test_reset_after_livelock () =
  let spin sim =
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          let r = Sim.reg sim ~name:"spin" 0 in
          while true do
            Sim.write r pid
          done)
    done
  in
  let sim = Sim.create ~max_steps:10 ~n:2 () in
  spin sim;
  Sim.snapshot sim;
  (match Sim.run_fast sim (Policy.fast_round_robin ()) with
  | () -> Alcotest.failf "expected Livelock"
  | exception Sim.Livelock _ -> ());
  Sim.reset sim;
  Alcotest.(check int) "clock rewound" 0 (Sim.clock sim);
  Alcotest.(check int) "fibers re-armed" 2 (Sim.runnable_count sim);
  (* a bounded scripted prefix now behaves like a fresh sim's *)
  let script = [| 0; 0; 0; 1; 1 |] in
  let go sim =
    Sim.set_trace sim true;
    Sim.run_fast sim (Policy.fast_scripted ~strict:true script);
    Sim.trace sim
  in
  let reset_trace = go sim in
  let fresh = Sim.create ~max_steps:10 ~n:2 () in
  spin fresh;
  let fresh_trace = go fresh in
  Alcotest.(check int) "prefix length" (List.length fresh_trace) (List.length reset_trace);
  if reset_trace <> fresh_trace then Alcotest.failf "post-livelock replay diverged"

(* Reset after Process_failure: the failing run is deterministic, reset
   rewinds object state (the register written before the raise), and
   the failure reproduces identically on the next run. *)
let test_reset_after_process_failure () =
  let sim = Sim.create ~n:2 () in
  Sim.set_trace sim true;
  let r = Sim.reg sim ~name:"pf" 0 in
  Sim.spawn sim 0 (fun () ->
      Sim.write r 7;
      failwith "boom");
  Sim.spawn sim 1 (fun () ->
      (* the extra write happens iff the register holds its initial
         value, so a stale (un-rewound) register shows up as a missing
         trace event — and as Replay_drift under the strict script *)
      if Sim.read r = 0 then Sim.write r 1);
  Sim.snapshot sim;
  let observe () =
    match Sim.run_fast sim (Policy.fast_scripted ~strict:true [| 1; 1; 1; 0; 0 |]) with
    | () -> Alcotest.failf "expected Process_failure"
    | exception Sim.Process_failure (pid, e) ->
        (pid, Printexc.to_string e, Sim.clock sim, Sim.trace sim)
  in
  let (pid1, msg1, clock1, trace1) = observe () in
  Sim.reset sim;
  Alcotest.(check int) "clock rewound" 0 (Sim.clock sim);
  Alcotest.(check int) "fibers re-armed" 2 (Sim.runnable_count sim);
  let (pid2, msg2, clock2, trace2) = observe () in
  Alcotest.(check (triple int string int)) "failure reproduces" (pid1, msg1, clock1)
    (pid2, msg2, clock2);
  Alcotest.(check int) "trace length reproduces" (List.length trace1)
    (List.length trace2);
  if trace1 <> trace2 then Alcotest.failf "post-failure replay diverged"

(* gen_domains: two identical parallel-generation campaigns agree with
   each other, run the full budget, and merged obs counters are
   reproducible. *)
let test_gen_domains_determinism () =
  let n = 3 in
  let go () =
    let obs = Scs_obs.Obs.create ~n () in
    let r = Fuzz_run.fuzz ~runs:40 ~seed:1234 ~gen_domains:2 ~obs Fuzz_run.f1 ~n in
    (r, obs)
  in
  let (ra, oa) = go () in
  let (rb, ob) = go () in
  check_report_eq "gen-domains repeat" ra rb;
  Alcotest.(check int) "merged clock deterministic" (Scs_obs.Obs.clock oa)
    (Scs_obs.Obs.clock ob);
  Alcotest.(check int) "merged steps deterministic" (Scs_obs.Obs.total_steps oa)
    (Scs_obs.Obs.total_steps ob);
  List.iter
    (fun (s : Fuzz.policy_stats) ->
      Alcotest.(check int) ("full budget: " ^ s.Fuzz.s_policy) 40 s.s_runs)
    ra.Fuzz.r_stats

let tests =
  [
    Alcotest.test_case "pooled vs fresh: reports and violations" `Slow
      test_pooled_vs_fresh_reports;
    Alcotest.test_case "pooled vs fresh: every schedule bit-identical" `Quick
      test_pooled_vs_fresh_every_schedule;
    Alcotest.test_case "pooled vs fresh: obs counters" `Quick test_pooled_vs_fresh_obs;
    Alcotest.test_case "pool stats: creates vs reuses" `Quick test_pool_stats;
    Alcotest.test_case "snapshot/reset: scripted differential" `Quick
      test_snapshot_reset_differential;
    Alcotest.test_case "reset recovers after Livelock" `Quick test_reset_after_livelock;
    Alcotest.test_case "reset recovers after Process_failure" `Quick
      test_reset_after_process_failure;
    Alcotest.test_case "gen domains: deterministic parallel generation" `Quick
      test_gen_domains_determinism;
  ]
