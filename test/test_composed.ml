(* Verification of the composed speculative TAS (A1 ∘ A2, Lemma 7), the
   solo-fast variant (Appendix B), module A2 in isolation (Lemma 5), and
   the A1 ∘ A1 ∘ A2 chain (modules compose in any order, Section 6.3).
   Safety is checked exhaustively for 2 processes, with sleep-set POR
   coverage (one representative per class of commuting reorderings) for
   3, and with random schedules plus crash injection for more. *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_composable
open Scs_workload

(* ---- exhaustive: composed one-shot ---------------------------------- *)

let run_composed_exhaustive ?(max_schedules = 100_000) ?(por = false) ~n ~variant () =
  let current = ref None in
  let setup sim =
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    current := Some tr;
    let op =
      match variant with
      | `Composed | `Strict ->
          let module OS = Scs_tas.One_shot.Make (P) in
          let os = OS.create ~strict:(variant = `Strict) ~name:"tas" () in
          fun ~pid -> OS.test_and_set os ~pid
      | `Solo_fast ->
          let module SF = Scs_tas.Solo_fast.Make (P) in
          let sf = SF.create ~name:"sf" () in
          fun ~pid -> SF.test_and_set sf ~pid
      | `A1A1A2 ->
          let module A1 = Scs_tas.A1.Make (P) in
          let module A2 = Scs_tas.A2.Make (P) in
          let a = A1.create ~name:"a" () in
          let b = A1.create ~name:"b" () in
          let c = A2.create ~name:"c" () in
          let m = Outcome.chain [ A1.as_module a; A1.as_module b; A2.as_module c ] in
          fun ~pid ->
            (match m.Outcome.m_apply ~pid Objects.Test_and_set with
            | Outcome.Commit r -> r
            | Outcome.Abort _ -> Alcotest.fail "wait-free chain aborted")
    in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          Trace.invoke tr ~pid req;
          let r = op ~pid in
          Trace.commit tr ~pid req r)
    done
  in
  let failures = ref [] in
  let check _sim sched =
    let tr = Option.get !current in
    let ops = Trace.operations (Trace.events tr) in
    if not (Tas_lin.check_one_shot ops) then failures := sched :: !failures;
    (* cross-check with the generic checker on small traces *)
    if
      List.length ops <= 6
      && Tas_lin.check_one_shot ops <> Linearize.check_operations Objects.tas ops
    then failures := sched :: !failures
  in
  let outcome = Explore.exhaustive ~max_schedules ~por ~n ~setup ~check () in
  (outcome, !failures)

let check_variant name ?max_schedules ?por ~n variant () =
  let outcome, failures = run_composed_exhaustive ?max_schedules ?por ~n ~variant () in
  Alcotest.(check bool) (name ^ " fully explored") false outcome.Explore.truncated;
  Alcotest.(check int) (name ^ " linearizable everywhere") 0 (List.length failures)

(* ---- full POR coverage of the composed algorithm at n = 3 ------------- *)

(* Finding F-1 in fact begins at n = 3 (not 4, as seed-based random search
   suggested): the POR-complete exploration below finds maximal schedules
   of the paper-faithful composition whose histories are not strictly
   linearizable — a loser commits before the eventual winner is invoked.
   The paper's own correctness notion is intact: every explored schedule
   admits a valid Definition 2 interpretation and has at most one winner.
   The minimal counterexample is replayed deterministically in
   Test_findings. *)
let test_composed_por_3 () =
  let current = ref None in
  let setup sim =
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module OS = Scs_tas.One_shot.Make (P) in
    let os = OS.create ~strict:false ~name:"tas" () in
    let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    current := Some tr;
    for pid = 0 to 2 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          Trace.invoke tr ~pid req;
          let r = OS.test_and_set os ~pid in
          Trace.commit tr ~pid req r)
    done
  in
  let not_lin = ref 0 in
  let no_interp = ref [] in
  let multi_winner = ref [] in
  let check _sim sched =
    let tr = Option.get !current in
    let evs = Trace.events tr in
    let ops = Trace.operations evs in
    if not (Tas_lin.check_one_shot ops) then incr not_lin;
    (match Tas_interp.check_events evs with
    | Ok () -> ()
    | Error e -> no_interp := (e, sched) :: !no_interp);
    let winners =
      List.filter
        (fun (o : _ Trace.operation) ->
          match o.Trace.outcome with
          | Trace.Committed { resp = Objects.Winner; _ } -> true
          | _ -> false)
        ops
    in
    if List.length winners > 1 then multi_winner := sched :: !multi_winner
  in
  let outcome = Explore.exhaustive ~max_schedules:200_000 ~por:true ~n:3 ~setup ~check () in
  Alcotest.(check bool) "fully explored" false outcome.Explore.truncated;
  Alcotest.(check bool) "POR pruned schedules" true (outcome.Explore.pruned > 0);
  Alcotest.(check int) "interpretation exists everywhere" 0 (List.length !no_interp);
  Alcotest.(check int) "winner unique everywhere" 0 (List.length !multi_winner);
  Alcotest.(check bool) "strict-lin violations exist at n=3 (F-1)" true (!not_lin > 0)

(* ---- wait-freedom: every op completes under any schedule ------------- *)

let test_composed_wait_free () =
  for seed = 1 to 100 do
    let r = Tas_run.one_shot ~seed ~n:5 ~algo:Tas_run.Composed ~policy:Policy.random () in
    Alcotest.(check int) "all complete" 5 (List.length r.Tas_run.ops)
  done

(* ---- exactly one winner under random schedules ----------------------- *)

(* The paper-faithful composition is only "speculatively" linearizable for
   n >= 3 (see Test_findings); it is checked against the paper's own
   notion (a valid Definition 2 interpretation). All other variants are
   checked against strict Herlihy-Wing linearizability. *)
let one_winner_check ?(paper_notion = false) ~algo ~n ~runs () =
  for seed = 1 to runs do
    let r = Tas_run.one_shot ~seed ~n ~algo ~policy:Policy.random () in
    let w = List.length (Tas_run.winners r) in
    if w <> 1 then
      Alcotest.failf "%s: %d winners at seed %d" (Tas_run.algo_name algo) w seed;
    if paper_notion then begin
      match Tas_interp.check_events r.Tas_run.outer with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: no valid interpretation at seed %d: %s"
                     (Tas_run.algo_name algo) seed e
    end
    else begin
      let ops = Trace.operations r.Tas_run.outer in
      if not (Tas_lin.check_one_shot ops) then
        Alcotest.failf "%s: not linearizable at seed %d" (Tas_run.algo_name algo) seed
    end
  done

let test_composed_one_winner () =
  one_winner_check ~paper_notion:true ~algo:Tas_run.Composed ~n:8 ~runs:150 ()

let test_strict_one_winner () = one_winner_check ~algo:Tas_run.Strict ~n:8 ~runs:300 ()
let test_solo_fast_one_winner () = one_winner_check ~algo:Tas_run.Solo_fast ~n:8 ~runs:300 ()
let test_hardware_one_winner () = one_winner_check ~algo:Tas_run.Hardware ~n:8 ~runs:50 ()
let test_tournament_one_winner () = one_winner_check ~algo:Tas_run.Tournament ~n:8 ~runs:150 ()

(* ---- crash injection -------------------------------------------------- *)

let crash_safety ~algo ~check =
  for seed = 1 to 120 do
    let rng = Scs_util.Rng.create (seed * 7) in
    let crashes =
      [ (Scs_util.Rng.int rng 6, 1 + Scs_util.Rng.int rng 8) ]
      @ (if Scs_util.Rng.bool rng then [ ((Scs_util.Rng.int rng 6 + 3) mod 6, 1 + Scs_util.Rng.int rng 5) ] else [])
    in
    let r = Tas_run.one_shot ~seed ~n:6 ~algo ~crashes ~policy:Policy.random () in
    check seed r;
    let w = List.length (Tas_run.winners r) in
    if w > 1 then Alcotest.failf "crash run: %d winners at seed %d" w seed
  done

let test_composed_crash_safety () =
  crash_safety ~algo:Tas_run.Composed ~check:(fun seed r ->
      match Tas_interp.check_events r.Tas_run.outer with
      | Ok () -> ()
      | Error e -> Alcotest.failf "crash run has no interpretation at seed %d: %s" seed e)

let test_strict_crash_safety () =
  crash_safety ~algo:Tas_run.Strict ~check:(fun seed r ->
      let ops = Trace.operations r.Tas_run.outer in
      if not (Tas_lin.check_one_shot ops) then
        Alcotest.failf "strict crash run not linearizable at seed %d" seed)

(* ---- speculation: solo stays on registers ----------------------------- *)

let test_composed_solo_uses_registers_only () =
  let r = Tas_run.one_shot ~n:4 ~algo:Tas_run.Composed ~policy:(fun _ -> Policy.solo 0) () in
  match r.Tas_run.ops with
  | [ op ] ->
      Alcotest.(check bool) "winner" true (op.Tas_run.resp = Objects.Winner);
      Alcotest.(check bool) "fast stage" true (op.Tas_run.stage = Some Scs_tas.One_shot.Fast);
      Alcotest.(check int) "no RMW" 0 op.Tas_run.rmws;
      Alcotest.(check int) "nine steps" 9 op.Tas_run.steps
  | _ -> Alcotest.fail "expected one op"

let test_composed_sequential_all_fast () =
  let r = Tas_run.one_shot ~n:6 ~algo:Tas_run.Composed ~policy:(fun _ -> Policy.sequential ()) () in
  Alcotest.(check int) "one winner" 1 (List.length (Tas_run.winners r));
  List.iter
    (fun (op : Tas_run.op_record) ->
      Alcotest.(check bool) "no rmw sequentially" true (op.Tas_run.rmws = 0);
      Alcotest.(check bool) "fast stage" true (op.Tas_run.stage = Some Scs_tas.One_shot.Fast))
    r.Tas_run.ops

let test_contended_falls_back () =
  (* under heavy contention some operation must reach A2 in some seed *)
  let fell_back = ref false in
  for seed = 1 to 60 do
    let r = Tas_run.one_shot ~seed ~n:6 ~algo:Tas_run.Composed ~policy:Policy.random () in
    if
      List.exists
        (fun (op : Tas_run.op_record) -> op.Tas_run.stage = Some Scs_tas.One_shot.Fallback)
        r.Tas_run.ops
    then fell_back := true
  done;
  Alcotest.(check bool) "fallback exercised" true !fell_back

(* ---- abort implies step contention ------------------------------------ *)

let test_fallback_implies_contention () =
  (* Lemma 6, global reading, for the paper variant: any fallback implies
     some operation in the execution ran under step contention *)
  for seed = 1 to 60 do
    let r = Tas_run.one_shot ~seed ~n:5 ~algo:Tas_run.Composed ~policy:Policy.random () in
    let pairs = Tas_run.step_contended_ops r in
    let any_fallback =
      List.exists
        (fun ((op : Tas_run.op_record), _) -> op.Tas_run.stage = Some Scs_tas.One_shot.Fallback)
        pairs
    in
    let any_contention = List.exists snd pairs in
    if any_fallback && not any_contention then
      Alcotest.failf "fallback in a contention-free execution at seed %d" seed
  done

let test_solo_fast_fallback_first_person () =
  (* Appendix B's claim is per-operation: a solo-fast process reverts to
     the hardware only when ITSELF encountering step contention *)
  for seed = 1 to 150 do
    let r = Tas_run.one_shot ~seed ~n:5 ~algo:Tas_run.Solo_fast ~policy:Policy.random () in
    List.iter
      (fun ((op : Tas_run.op_record), contended) ->
        if op.Tas_run.stage = Some Scs_tas.One_shot.Fallback && not contended then
          Alcotest.failf "solo-fast op fell back without first-person contention at seed %d"
            seed)
      (Tas_run.step_contended_ops r)
  done

(* ---- A2 in isolation (Lemma 5) ---------------------------------------- *)

let test_a2_exhaustive () =
  let current = ref None in
  let setup sim =
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module A2 = Scs_tas.A2.Make (P) in
    let a2 = A2.create ~name:"a2" () in
    let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    current := Some tr;
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          (* pid 1 enters with an L token: it lost elsewhere *)
          let init = if pid = 1 then Some Tas_switch.L else Some Tas_switch.W in
          Trace.init tr ~pid req (Option.get init);
          match A2.apply a2 ~pid init with
          | Outcome.Commit r -> Trace.commit tr ~pid req r
          | Outcome.Abort _ -> Alcotest.fail "A2 never aborts")
    done
  in
  let failures = ref 0 in
  let check _ _ =
    let tr = Option.get !current in
    match Tas_interp.check_events (Trace.events tr) with
    | Ok () -> ()
    | Error _ -> incr failures
  in
  let outcome = Explore.exhaustive ~n:2 ~setup ~check () in
  Alcotest.(check bool) "explored all" false outcome.Explore.truncated;
  Alcotest.(check int) "A2 safely composable everywhere" 0 !failures

let test_a2_l_entrant_never_touches_hardware () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A2 = Scs_tas.A2.Make (P) in
  let a2 = A2.create ~name:"a2" () in
  let r = ref None in
  Sim.spawn sim 0 (fun () -> r := Some (A2.apply a2 ~pid:0 (Some Tas_switch.L)));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "loser" true (!r = Some (Outcome.Commit Objects.Loser));
  Alcotest.(check int) "zero RMWs" 0 (Sim.rmws_of sim 0)

(* ---- composed trace is itself safely composable ------------------------ *)

let test_composed_module_traces_interpretable () =
  for seed = 1 to 80 do
    let r = Tas_run.one_shot ~seed ~n:4 ~algo:Tas_run.Composed ~policy:Policy.random () in
    (match Tas_interp.check_events r.Tas_run.a1 with
    | Ok () -> ()
    | Error e -> Alcotest.failf "A1 trace at seed %d: %s" seed e);
    match Tas_interp.check_events r.Tas_run.a2 with
    | Ok () -> ()
    | Error e -> Alcotest.failf "A2 trace at seed %d: %s" seed e
  done

let tests =
  [
    (* n = 2 spaces are covered in full by the single-replay DFS; n = 3
       spaces (tens of millions of schedules) are covered via sleep-set
       POR, one representative per class of commuting reorderings, with
       truncation asserted away (the seed engine needed 25k-schedule
       budgets here and missed the n=3 F-1 violations entirely) *)
    Alcotest.test_case "composed exhaustive n=2" `Quick
      (check_variant "composed" ~n:2 `Composed);
    Alcotest.test_case "composed POR-complete n=3 (F-1 boundary)" `Slow
      test_composed_por_3;
    Alcotest.test_case "strict exhaustive n=2" `Quick
      (check_variant "strict" ~max_schedules:200_000 ~n:2 `Strict);
    Alcotest.test_case "strict POR-complete n=3" `Slow
      (check_variant "strict" ~max_schedules:200_000 ~por:true ~n:3 `Strict);
    Alcotest.test_case "solo-fast exhaustive n=2" `Quick
      (check_variant "solo-fast" ~n:2 `Solo_fast);
    Alcotest.test_case "solo-fast POR-complete n=3" `Slow
      (check_variant "solo-fast" ~max_schedules:200_000 ~por:true ~n:3 `Solo_fast);
    (* the chain's plain n=2 space exceeds 5M schedules; POR covers it
       with a complete set of per-class representatives *)
    Alcotest.test_case "A1.A1.A2 chain POR-complete n=2" `Quick
      (check_variant "chain" ~por:true ~n:2 `A1A1A2);
    Alcotest.test_case "composed wait-free" `Quick test_composed_wait_free;
    Alcotest.test_case "composed one winner (random)" `Quick test_composed_one_winner;
    Alcotest.test_case "strict one winner + linearizable (random)" `Quick
      test_strict_one_winner;
    Alcotest.test_case "solo-fast one winner (random)" `Quick test_solo_fast_one_winner;
    Alcotest.test_case "hardware one winner (random)" `Quick test_hardware_one_winner;
    Alcotest.test_case "tournament one winner (random)" `Quick test_tournament_one_winner;
    Alcotest.test_case "crash safety (paper notion)" `Quick test_composed_crash_safety;
    Alcotest.test_case "crash safety (strict)" `Quick test_strict_crash_safety;
    Alcotest.test_case "solo uses registers only" `Quick test_composed_solo_uses_registers_only;
    Alcotest.test_case "sequential all fast" `Quick test_composed_sequential_all_fast;
    Alcotest.test_case "contention falls back" `Quick test_contended_falls_back;
    Alcotest.test_case "fallback implies step contention (global)" `Quick
      test_fallback_implies_contention;
    Alcotest.test_case "solo-fast fallback is first-person (App. B)" `Quick
      test_solo_fast_fallback_first_person;
    Alcotest.test_case "A2 exhaustive (Lemma 5)" `Quick test_a2_exhaustive;
    Alcotest.test_case "A2 L-entrant avoids hardware" `Quick
      test_a2_l_entrant_never_touches_hardware;
    Alcotest.test_case "module traces interpretable" `Quick
      test_composed_module_traces_interpretable;
  ]
