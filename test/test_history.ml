(* Tests for traces, the generic linearizability checker, the specialised
   TAS checker (cross-validated by property tests), and the Abstract
   property checker. *)

open Scs_spec
open Scs_history

let treq id = Request.make id Objects.Test_and_set

(* Build a Trace.operation directly. *)
let comp ~pid ~id ~inv ~res resp =
  {
    Trace.op_pid = pid;
    op_req = treq id;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
  }

let pend ~pid ~id ~inv =
  {
    Trace.op_pid = pid;
    op_req = treq id;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Pending;
  }

(* --- generic checker ----------------------------------------------- *)

let test_lin_single_winner () =
  let ops = [ comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Winner ] in
  Alcotest.(check bool) "winner alone" true (Linearize.check_operations Objects.tas ops)

let test_lin_single_loser_rejected () =
  let ops = [ comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Loser ] in
  Alcotest.(check bool) "lone loser impossible" false
    (Linearize.check_operations Objects.tas ops)

let test_lin_loser_explained_by_pending () =
  let ops = [ pend ~pid:1 ~id:2 ~inv:0; comp ~pid:0 ~id:1 ~inv:1 ~res:2 Objects.Loser ] in
  Alcotest.(check bool) "pending explains loser" true
    (Linearize.check_operations Objects.tas ops)

let test_lin_pending_too_late () =
  (* the only winner candidate is invoked after the loser completed *)
  let ops = [ comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Loser; pend ~pid:1 ~id:2 ~inv:2 ] in
  Alcotest.(check bool) "pending after response cannot explain" false
    (Linearize.check_operations Objects.tas ops)

let test_lin_two_winners_rejected () =
  let ops =
    [
      comp ~pid:0 ~id:1 ~inv:0 ~res:2 Objects.Winner;
      comp ~pid:1 ~id:2 ~inv:1 ~res:3 Objects.Winner;
    ]
  in
  Alcotest.(check bool) "two winners" false (Linearize.check_operations Objects.tas ops)

let test_lin_winner_after_loser_rejected () =
  (* loser completes strictly before the winner is invoked *)
  let ops =
    [
      comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Loser;
      comp ~pid:1 ~id:2 ~inv:2 ~res:3 Objects.Winner;
    ]
  in
  Alcotest.(check bool) "winner invoked after loser done" false
    (Linearize.check_operations Objects.tas ops)

let test_lin_sequential_ok () =
  let ops =
    [
      comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Winner;
      comp ~pid:1 ~id:2 ~inv:2 ~res:3 Objects.Loser;
      comp ~pid:2 ~id:3 ~inv:4 ~res:5 Objects.Loser;
    ]
  in
  Alcotest.(check bool) "sequential run" true (Linearize.check_operations Objects.tas ops)

let test_lin_queue () =
  let q id p = Request.make id p in
  let mk ~id ~inv ~res req resp =
    {
      Trace.op_pid = 0;
      op_req = q id req;
      invoke_seq = inv;
      invoke_ts = inv;
      op_init = None;
      op_recoveries = 0;
      outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
    }
  in
  (* concurrent enqueues, then dequeues observing either order *)
  let ops =
    [
      mk ~id:1 ~inv:0 ~res:3 (Objects.Enqueue 1) Objects.Q_ok;
      mk ~id:2 ~inv:1 ~res:2 (Objects.Enqueue 2) Objects.Q_ok;
      mk ~id:3 ~inv:4 ~res:5 Objects.Dequeue (Objects.Q_dequeued (Some 2));
      mk ~id:4 ~inv:6 ~res:7 Objects.Dequeue (Objects.Q_dequeued (Some 1));
    ]
  in
  Alcotest.(check bool) "queue lin ok" true (Linearize.check_operations Objects.queue ops);
  let bad =
    [
      mk ~id:1 ~inv:0 ~res:1 (Objects.Enqueue 1) Objects.Q_ok;
      mk ~id:2 ~inv:2 ~res:3 (Objects.Enqueue 2) Objects.Q_ok;
      (* sequential enqueues: dequeue must see 1 first *)
      mk ~id:3 ~inv:4 ~res:5 Objects.Dequeue (Objects.Q_dequeued (Some 2));
    ]
  in
  Alcotest.(check bool) "queue order violation" false
    (Linearize.check_operations Objects.queue bad)

let test_lin_register () =
  let mk ~id ~inv ~res req resp =
    {
      Trace.op_pid = 0;
      op_req = Request.make id req;
      invoke_seq = inv;
      invoke_ts = inv;
      op_init = None;
      op_recoveries = 0;
      outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
    }
  in
  let ops =
    [
      mk ~id:1 ~inv:0 ~res:1 (Objects.Reg_write 5) Objects.Reg_ok;
      mk ~id:2 ~inv:2 ~res:3 Objects.Reg_read (Objects.Reg_value 5);
    ]
  in
  Alcotest.(check bool) "register ok" true (Linearize.check_operations Objects.register ops);
  let bad =
    [
      mk ~id:1 ~inv:0 ~res:1 (Objects.Reg_write 5) Objects.Reg_ok;
      mk ~id:2 ~inv:2 ~res:3 Objects.Reg_read (Objects.Reg_value 7);
    ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Linearize.check_operations Objects.register bad)

(* --- TAS fast checker cross-validation ------------------------------ *)

let build_ops choices =
  (* interpret an int list as an interleaved trace builder *)
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let fresh = ref 0 in
  let open_ops = ref [] in
  let closed = ref [] in
  List.iter
    (fun c ->
      let c = abs c in
      match (c mod 3, !open_ops) with
      | 0, _ | _, [] ->
          incr fresh;
          open_ops := (!fresh, next ()) :: !open_ops
      | 1, (id, inv) :: rest ->
          open_ops := rest;
          let resp = if c / 3 mod 2 = 0 then Objects.Winner else Objects.Loser in
          closed := comp ~pid:id ~id ~inv ~res:(next ()) resp :: !closed
      | _, ops ->
          (* close the oldest open op *)
          let (id, inv), rest =
            match List.rev ops with
            | last :: r -> (last, List.rev r)
            | [] -> assert false
          in
          open_ops := rest;
          let resp = if c / 3 mod 2 = 0 then Objects.Winner else Objects.Loser in
          closed := comp ~pid:id ~id ~inv ~res:(next ()) resp :: !closed)
    choices;
  let pending = List.map (fun (id, inv) -> pend ~pid:id ~id ~inv) !open_ops in
  List.rev !closed @ pending

let prop_tas_checker_agrees =
  QCheck.Test.make ~count:2000 ~name:"Tas_lin agrees with Wing-Gong"
    QCheck.(list_of_size Gen.(int_range 0 12) small_int)
    (fun choices ->
      let ops = build_ops choices in
      Tas_lin.check_one_shot ops = Linearize.check_operations Objects.tas ops)

(* --- Abstract property checker -------------------------------------- *)

let areq id = Request.make id ()

let test_abstract_good_trace () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r1; r2 ] };
    ]
  in
  Alcotest.(check bool) "good" true (Abstract_check.is_ok evs)

let test_abstract_commit_order_violation () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r2 ] };
    ]
  in
  Alcotest.(check bool) "prefix violation" false (Abstract_check.is_ok evs)

let test_abstract_abort_ordering_violation () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1; r2 ] };
      Abstract_check.Abort { seq = 3; pid = 1; req = r2; hist = [ r2 ] };
    ]
  in
  Alcotest.(check bool) "commit not prefix of abort" false (Abstract_check.is_ok evs)

let test_abstract_validity_dup () =
  let r1 = areq 1 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ r1; r1 ] };
    ]
  in
  Alcotest.(check bool) "dup in history" false (Abstract_check.is_ok evs)

let test_abstract_validity_uninvoked () =
  let r1 = areq 1 and ghost = areq 99 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ ghost; r1 ] };
    ]
  in
  Alcotest.(check bool) "uninvoked request" false (Abstract_check.is_ok evs);
  Alcotest.(check bool) "also rejected globally" false
    (Abstract_check.is_ok ~validity:Abstract_check.Global evs)

let test_abstract_validity_timing_modes () =
  let r1 = areq 1 and r2 = areq 2 in
  (* r2 appears in r1's commit history but is invoked later *)
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ r1; r2 ] };
      Abstract_check.Invoke { seq = 2; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r1; r2 ] };
    ]
  in
  Alcotest.(check bool) "strict rejects" false (Abstract_check.is_ok evs);
  Alcotest.(check bool) "global accepts" true
    (Abstract_check.is_ok ~validity:Abstract_check.Global evs)

let test_abstract_missing_own_request () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 1; req = r2; hist = [ r1 ] };
    ]
  in
  Alcotest.(check bool) "history misses own request" false (Abstract_check.is_ok evs)

let test_abstract_init_ordering () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs_ok =
    [
      Abstract_check.Init { seq = 0; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Init { seq = 2; pid = 1; req = r2; hist = [ r1 ] };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r1; r2 ] };
    ]
  in
  Alcotest.(check bool) "init ordering ok" true (Abstract_check.is_ok evs_ok);
  let evs_bad =
    [
      Abstract_check.Init { seq = 0; pid = 0; req = r1; hist = [ r1; r2 ] };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1 ] };
    ]
  in
  Alcotest.(check bool) "init not prefix of commit" false (Abstract_check.is_ok evs_bad)

(* --- Trace recorder --------------------------------------------------- *)

let test_trace_operations_pairing () =
  let tr : (unit, string, int) Trace.t = Trace.create () in
  let r1 = Request.make 1 () and r2 = Request.make 2 () in
  Trace.invoke tr ~pid:0 r1;
  Trace.init tr ~pid:1 r2 7;
  Trace.commit tr ~pid:0 r1 "ok";
  Trace.abort tr ~pid:1 r2 9;
  let ops = Trace.operations (Trace.events tr) in
  Alcotest.(check int) "two ops" 2 (List.length ops);
  let o1 = List.nth ops 0 and o2 = List.nth ops 1 in
  Alcotest.(check bool) "o1 committed" true
    (match o1.Trace.outcome with Trace.Committed { resp = "ok"; _ } -> true | _ -> false);
  Alcotest.(check bool) "o2 init" true (o2.Trace.op_init = Some 7);
  Alcotest.(check bool) "o2 aborted with 9" true
    (match o2.Trace.outcome with Trace.Aborted { switch = 9; _ } -> true | _ -> false)

let test_trace_malformed () =
  let tr : (unit, string, int) Trace.t = Trace.create () in
  let r1 = Request.make 1 () in
  Trace.commit tr ~pid:0 r1 "oops";
  (try
     ignore (Trace.operations (Trace.events tr));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let tr2 : (unit, string, int) Trace.t = Trace.create () in
  Trace.invoke tr2 ~pid:0 r1;
  Trace.invoke tr2 ~pid:1 r1;
  try
    ignore (Trace.operations (Trace.events tr2));
    Alcotest.fail "expected Invalid_argument on double invoke"
  with Invalid_argument _ -> ()

(* --- the 62-operation capacity boundary (Legacy mode only) ----------- *)

(* a sequential TAS history of [k] operations: first wins, rest lose *)
let sequential_tas_ops k =
  List.init k (fun i ->
      comp ~pid:0 ~id:(i + 1) ~inv:(2 * i)
        ~res:((2 * i) + 1)
        (if i = 0 then Objects.Winner else Objects.Loser))

let test_lin_cap_boundary_accepts_62 () =
  Alcotest.(check int) "cap is 62" 62 Linearize.max_operations;
  let ops = sequential_tas_ops Linearize.max_operations in
  Alcotest.(check bool) "62 operations, legacy mode" true
    (Linearize.check_operations ~mode:Linearize.Legacy Objects.tas ops);
  Alcotest.(check bool) "62 operations, scalable mode" true
    (Linearize.check_operations Objects.tas ops)

let test_lin_cap_boundary_63 () =
  let ops = sequential_tas_ops (Linearize.max_operations + 1) in
  Alcotest.check_raises "legacy mode raises at 63" (Linearize.Capacity_exceeded 63)
    (fun () ->
      ignore (Linearize.check_operations ~mode:Linearize.Legacy Objects.tas ops));
  Alcotest.check_raises "seed oracle raises at 63" (Linearize_ref.Capacity_exceeded 63)
    (fun () -> ignore (Linearize_ref.check_operations Objects.tas ops));
  Alcotest.(check bool) "scalable mode passes 63" true
    (Linearize.check_operations Objects.tas ops)

let test_lin_scalable_large_histories () =
  (* far past the word-sized bitmask: 200- and 1000-op histories are
     decided — both accepted when linearizable and refuted when not *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "%d sequential ops accepted" k)
        true
        (Linearize.check_operations Objects.tas (sequential_tas_ops k)))
    [ 200; 1000 ];
  let bad =
    sequential_tas_ops 200 @ [ comp ~pid:1 ~id:2000 ~inv:500 ~res:501 Objects.Winner ]
  in
  Alcotest.(check bool) "201-op second winner refuted" false
    (Linearize.check_operations Objects.tas bad)

let test_lin_cap_counts_pending () =
  (* pending operations occupy mask bits too (in Legacy accounting) *)
  let ops =
    sequential_tas_ops (Linearize.max_operations - 1)
    @ [ pend ~pid:1 ~id:1000 ~inv:0; pend ~pid:2 ~id:1001 ~inv:0 ]
  in
  Alcotest.check_raises "61 committed + 2 pending overflow legacy"
    (Linearize.Capacity_exceeded 63) (fun () ->
      ignore (Linearize.check_operations ~mode:Linearize.Legacy Objects.tas ops));
  Alcotest.(check bool) "scalable mode unaffected" true
    (Linearize.check_operations Objects.tas ops)

let test_lin_search_budget () =
  let ops = sequential_tas_ops 100 in
  Alcotest.check_raises "tiny budget exhausts" (Linearize.Search_budget_exceeded 5)
    (fun () -> ignore (Linearize.check_operations ~budget:5 Objects.tas ops));
  Alcotest.(check bool) "ample budget decides" true
    (Linearize.check_operations ~budget:1_000_000 Objects.tas ops)

(* --- known-answer battery -------------------------------------------- *)

(* generic hand-built operations (comp/pend above are TAS-specific) *)
let mkop ~id ~inv ~res req resp =
  {
    Trace.op_pid = 0;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
  }

let mkpend ~id ~inv req =
  {
    Trace.op_pid = 0;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Pending;
  }

let mkabort ~id ~inv ~res req =
  {
    Trace.op_pid = 0;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Aborted { switch = (); resp_seq = res; resp_ts = res };
  }

(* Product of two int registers as one monolithic spec; the payload names
   the register. Pins down compositional splitting: [check_partitioned]
   by register index must agree with the monolithic product-spec verdict
   (the criterion factors — no cross-register constraint). *)
type pair_req = PW of int * int | PR of int

type pair_resp = P_ok | P_val of int

let pair_register : (int * int, pair_req, pair_resp) Spec.t =
  Spec.make ~name:"pair-register" ~init:(0, 0)
    ~apply:(fun (a, b) req ->
      match req with
      | PW (0, v) -> ((v, b), P_ok)
      | PW (_, v) -> ((a, v), P_ok)
      | PR 0 -> ((a, b), P_val a)
      | PR _ -> ((a, b), P_val b))
    ()

(* the per-partition view: every op in a partition touches one register *)
let proj_register _idx : (int, pair_req, pair_resp) Spec.t =
  Spec.make ~name:"proj-register" ~init:0
    ~apply:(fun s req ->
      match req with PW (_, v) -> (v, P_ok) | PR _ -> (s, P_val s))
    ()

let pair_key (o : _ Trace.operation) =
  match Request.payload o.Trace.op_req with PW (i, _) | PR i -> i

let check_pair_both what expected ops =
  Alcotest.(check bool) (what ^ " (monolithic product)") expected
    (Linearize.check_operations pair_register ops);
  Alcotest.(check bool) (what ^ " (partitioned)") expected
    (Linearize.check_partitioned ~key:pair_key ~spec:proj_register ops)

let test_register_swap_battery () =
  (* the classic store-buffer anomaly, sequentialised:
       P0: X := 1; read Y -> 0        P1: Y := 1; read X -> 0
     each read follows the write it misses in real time *)
  let bad =
    [
      mkop ~id:1 ~inv:0 ~res:1 (PW (0, 1)) P_ok;
      mkop ~id:2 ~inv:2 ~res:3 (PW (1, 1)) P_ok;
      mkop ~id:3 ~inv:4 ~res:5 (PR 1) (P_val 0);
      mkop ~id:4 ~inv:6 ~res:7 (PR 0) (P_val 0);
    ]
  in
  check_pair_both "sequential swap anomaly" false bad;
  (* overlapping variant: each read is concurrent with (or precedes) the
     write it misses, so both zeros are explainable *)
  let ok =
    [
      mkop ~id:1 ~inv:0 ~res:7 (PW (0, 1)) P_ok;
      mkop ~id:2 ~inv:1 ~res:2 (PR 1) (P_val 0);
      mkop ~id:3 ~inv:3 ~res:4 (PW (1, 1)) P_ok;
      mkop ~id:4 ~inv:5 ~res:6 (PR 0) (P_val 0);
    ]
  in
  check_pair_both "overlapping swap" true ok

let test_pending_resurrection_battery () =
  (* a pending (never-responded) enqueue may still be linearized to
     explain a later dequeue... *)
  let ops =
    [
      mkpend ~id:1 ~inv:0 (Objects.Enqueue 5);
      mkop ~id:2 ~inv:1 ~res:2 Objects.Dequeue (Objects.Q_dequeued (Some 5));
    ]
  in
  Alcotest.(check bool) "pending enqueue resurrected" true
    (Linearize.check_operations Objects.queue ops);
  (* ...but a value never enqueued at all cannot materialise *)
  let bad =
    [ mkop ~id:2 ~inv:1 ~res:2 Objects.Dequeue (Objects.Q_dequeued (Some 5)) ]
  in
  Alcotest.(check bool) "impossible dequeue refuted" false
    (Linearize.check_operations Objects.queue bad)

let test_aborted_effect_battery () =
  (* Section 5: an aborted operation of a safely composable module may or
     may not have taken effect — both continuations must be accepted *)
  let took_effect =
    [
      mkabort ~id:1 ~inv:0 ~res:1 (Objects.Enqueue 9);
      mkop ~id:2 ~inv:2 ~res:3 Objects.Dequeue (Objects.Q_dequeued (Some 9));
    ]
  in
  Alcotest.(check bool) "aborted enqueue took effect" true
    (Linearize.check_operations Objects.queue took_effect);
  let no_effect =
    [
      mkabort ~id:1 ~inv:0 ~res:1 (Objects.Enqueue 9);
      mkop ~id:2 ~inv:2 ~res:3 Objects.Dequeue (Objects.Q_dequeued None);
    ]
  in
  Alcotest.(check bool) "aborted enqueue took no effect" true
    (Linearize.check_operations Objects.queue no_effect)

(* single-shot consensus object: first applied proposal decides *)
let consensus_spec : (int option, int, int) Spec.t =
  Spec.make ~name:"consensus" ~init:None
    ~apply:(fun s v -> match s with None -> (Some v, v) | Some d -> (Some d, d))
    ()

let test_consensus_clobber_battery () =
  (* the disagreement shape of the fuzzer-found bakery Dec-clobber bug
     (see test_fuzz.ml's regression): an early real decision is
     overwritten and a later process decides its own value. As a history:
     propose(100) -> 100 completes strictly before propose(101) -> 101
     is invoked; no consensus object explains both. *)
  let bad = [ mkop ~id:1 ~inv:0 ~res:1 100 100; mkop ~id:2 ~inv:2 ~res:3 101 101 ] in
  Alcotest.(check bool) "sequential disagreement refuted" false
    (Linearize.check_operations consensus_spec bad);
  (* concurrent proposals may legitimately decide the first one *)
  let ok = [ mkop ~id:1 ~inv:0 ~res:3 100 100; mkop ~id:2 ~inv:1 ~res:2 101 100 ] in
  Alcotest.(check bool) "concurrent agreement accepted" true
    (Linearize.check_operations consensus_spec ok)

let test_partition_key_pending_hazard () =
  (* the compositional split is only sound when [key] names each
     operation's true object — including pending ones. Shape found by the
     fuzzer in the long-lived TAS workload under crash injection: a
     process crashes inside test-and-set after winning but before its
     round is recorded, leaving a Pending op of unknown round. Globally
     the history is linearizable (the pending op completes as the
     Winner); a key that dumps unknown ops into a catch-all partition
     strands the committed Loser alone against a fresh spec. *)
  let pending_winner = mkpend ~id:1 ~inv:0 Objects.Test_and_set in
  let committed_loser =
    mkop ~id:2 ~inv:1 ~res:2 Objects.Test_and_set Objects.Loser
  in
  let ops = [ pending_winner; committed_loser ] in
  Alcotest.(check bool) "globally linearizable" true
    (Linearize.check_operations Objects.tas ops);
  let accurate_key _ = 0 in
  Alcotest.(check bool) "accurate key: split agrees" true
    (Linearize.check_partitioned ~key:accurate_key
       ~spec:(fun _ -> Objects.tas)
       ops);
  let lossy_key (o : _ Trace.operation) =
    match o.Trace.outcome with Trace.Pending -> -1 | _ -> 0
  in
  Alcotest.(check bool) "lossy key: false violation (pinned hazard)" false
    (Linearize.check_partitioned ~key:lossy_key
       ~spec:(fun _ -> Objects.tas)
       ops)

(* --- memo soundness: equal_state must be a congruence ------------------ *)

(* Three-state spec whose probe distinguishes states 1 and 2. The coarse
   equality below conflates them (zero / nonzero), breaking the
   congruence requirement: the search first refutes the x;y ordering and
   memoizes its final state, then wrongly "remembers" the y;x state as
   already refuted — a false negative that exact equality does not
   produce. This pins the documented memo hazard for BOTH engines (the
   seed oracle and the scalable checker share the memo idea). *)
let trap_apply s = function
  | "w1" -> (1, "ok")
  | "w2" -> (2, "ok")
  | "probe" -> (s, if s = 1 then "one" else "other")
  | _ -> (s, "?")

let trap_exact : (int, string, string) Spec.t =
  Spec.make ~name:"trap" ~init:0 ~apply:trap_apply ()

let trap_coarse : (int, string, string) Spec.t =
  Spec.make ~name:"trap-coarse" ~init:0 ~apply:trap_apply
    ~equal_state:(fun a b -> a = 0 && b = 0 || (a <> 0 && b <> 0))
    ~hash_state:(fun a -> if a = 0 then 0 else 1)
    ()

(* hash collisions, by contrast, may never change verdicts: membership is
   decided by exact equality inside the bucket *)
let trap_const_hash : (int, string, string) Spec.t =
  Spec.make ~name:"trap-const-hash" ~init:0 ~apply:trap_apply
    ~hash_state:(fun _ -> 0) ()

let trap_ops =
  (* x = w1 and y = w2 overlap (x responds first, and first in list
     order, so both engines explore x;y before y;x); the probe then
     requires final state 1, i.e. the y;x witness *)
  [
    mkop ~id:1 ~inv:0 ~res:2 "w1" "ok";
    mkop ~id:2 ~inv:1 ~res:3 "w2" "ok";
    mkop ~id:3 ~inv:4 ~res:5 "probe" "one";
  ]

let test_memo_congruence_trap () =
  Alcotest.(check bool) "scalable, exact equality: accepted" true
    (Linearize.check_operations trap_exact trap_ops);
  Alcotest.(check bool) "seed oracle, exact equality: accepted" true
    (Linearize_ref.check_operations trap_exact trap_ops);
  (* the documented hazard, pinned: a non-congruent equal_state turns the
     memo unsound and yields a false negative *)
  Alcotest.(check bool) "scalable, coarse equality: false negative" false
    (Linearize.check_operations trap_coarse trap_ops);
  Alcotest.(check bool) "seed oracle, coarse equality: false negative" false
    (Linearize_ref.check_operations trap_coarse trap_ops)

let test_memo_hash_collision_safe () =
  Alcotest.(check bool) "constant hash_state: verdict unchanged (true)" true
    (Linearize.check_operations trap_const_hash trap_ops);
  let bad = [ mkop ~id:1 ~inv:0 ~res:1 "w1" "ok"; mkop ~id:2 ~inv:2 ~res:3 "probe" "other" ] in
  (* probe after w1 alone must answer "one" *)
  Alcotest.(check bool) "constant hash_state: verdict unchanged (false)" false
    (Linearize.check_operations trap_const_hash bad)

let tests =
  [
    Alcotest.test_case "lin: single winner" `Quick test_lin_single_winner;
    Alcotest.test_case "lin: lone loser rejected" `Quick test_lin_single_loser_rejected;
    Alcotest.test_case "lin: pending explains loser" `Quick test_lin_loser_explained_by_pending;
    Alcotest.test_case "lin: pending too late" `Quick test_lin_pending_too_late;
    Alcotest.test_case "lin: two winners rejected" `Quick test_lin_two_winners_rejected;
    Alcotest.test_case "lin: winner after loser" `Quick test_lin_winner_after_loser_rejected;
    Alcotest.test_case "lin: sequential" `Quick test_lin_sequential_ok;
    Alcotest.test_case "lin: queue" `Quick test_lin_queue;
    Alcotest.test_case "lin: register" `Quick test_lin_register;
    QCheck_alcotest.to_alcotest ~rand:(Test_seed.rand ()) prop_tas_checker_agrees;
    Alcotest.test_case "lin: 62-op boundary, both modes" `Quick
      test_lin_cap_boundary_accepts_62;
    Alcotest.test_case "lin: 63 ops — legacy raises, scalable passes" `Quick
      test_lin_cap_boundary_63;
    Alcotest.test_case "lin: 200/1000-op histories decided" `Quick
      test_lin_scalable_large_histories;
    Alcotest.test_case "lin: pending ops count against the legacy cap" `Quick
      test_lin_cap_counts_pending;
    Alcotest.test_case "lin: search budget" `Quick test_lin_search_budget;
    Alcotest.test_case "battery: register swap (product + partitioned)" `Quick
      test_register_swap_battery;
    Alcotest.test_case "battery: pending-op resurrection" `Quick
      test_pending_resurrection_battery;
    Alcotest.test_case "battery: aborted op may or may not take effect" `Quick
      test_aborted_effect_battery;
    Alcotest.test_case "battery: consensus Dec-clobber shape" `Quick
      test_consensus_clobber_battery;
    Alcotest.test_case "battery: partition key must cover pending ops" `Quick
      test_partition_key_pending_hazard;
    Alcotest.test_case "memo: non-congruent equal_state is unsound (pinned)" `Quick
      test_memo_congruence_trap;
    Alcotest.test_case "memo: hash collisions cannot change verdicts" `Quick
      test_memo_hash_collision_safe;
    Alcotest.test_case "abstract: good trace" `Quick test_abstract_good_trace;
    Alcotest.test_case "abstract: commit order" `Quick test_abstract_commit_order_violation;
    Alcotest.test_case "abstract: abort ordering" `Quick test_abstract_abort_ordering_violation;
    Alcotest.test_case "abstract: dup validity" `Quick test_abstract_validity_dup;
    Alcotest.test_case "abstract: uninvoked validity" `Quick test_abstract_validity_uninvoked;
    Alcotest.test_case "abstract: validity timing modes" `Quick test_abstract_validity_timing_modes;
    Alcotest.test_case "abstract: missing own request" `Quick test_abstract_missing_own_request;
    Alcotest.test_case "abstract: init ordering" `Quick test_abstract_init_ordering;
    Alcotest.test_case "trace: operation pairing" `Quick test_trace_operations_pairing;
    Alcotest.test_case "trace: malformed" `Quick test_trace_malformed;
  ]
