(* Tests for traces, the generic linearizability checker, the specialised
   TAS checker (cross-validated by property tests), and the Abstract
   property checker. *)

open Scs_spec
open Scs_history

let treq id = Request.make id Objects.Test_and_set

(* Build a Trace.operation directly. *)
let comp ~pid ~id ~inv ~res resp =
  {
    Trace.op_pid = pid;
    op_req = treq id;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
  }

let pend ~pid ~id ~inv =
  {
    Trace.op_pid = pid;
    op_req = treq id;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    outcome = Trace.Pending;
  }

(* --- generic checker ----------------------------------------------- *)

let test_lin_single_winner () =
  let ops = [ comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Winner ] in
  Alcotest.(check bool) "winner alone" true (Linearize.check_operations Objects.tas ops)

let test_lin_single_loser_rejected () =
  let ops = [ comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Loser ] in
  Alcotest.(check bool) "lone loser impossible" false
    (Linearize.check_operations Objects.tas ops)

let test_lin_loser_explained_by_pending () =
  let ops = [ pend ~pid:1 ~id:2 ~inv:0; comp ~pid:0 ~id:1 ~inv:1 ~res:2 Objects.Loser ] in
  Alcotest.(check bool) "pending explains loser" true
    (Linearize.check_operations Objects.tas ops)

let test_lin_pending_too_late () =
  (* the only winner candidate is invoked after the loser completed *)
  let ops = [ comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Loser; pend ~pid:1 ~id:2 ~inv:2 ] in
  Alcotest.(check bool) "pending after response cannot explain" false
    (Linearize.check_operations Objects.tas ops)

let test_lin_two_winners_rejected () =
  let ops =
    [
      comp ~pid:0 ~id:1 ~inv:0 ~res:2 Objects.Winner;
      comp ~pid:1 ~id:2 ~inv:1 ~res:3 Objects.Winner;
    ]
  in
  Alcotest.(check bool) "two winners" false (Linearize.check_operations Objects.tas ops)

let test_lin_winner_after_loser_rejected () =
  (* loser completes strictly before the winner is invoked *)
  let ops =
    [
      comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Loser;
      comp ~pid:1 ~id:2 ~inv:2 ~res:3 Objects.Winner;
    ]
  in
  Alcotest.(check bool) "winner invoked after loser done" false
    (Linearize.check_operations Objects.tas ops)

let test_lin_sequential_ok () =
  let ops =
    [
      comp ~pid:0 ~id:1 ~inv:0 ~res:1 Objects.Winner;
      comp ~pid:1 ~id:2 ~inv:2 ~res:3 Objects.Loser;
      comp ~pid:2 ~id:3 ~inv:4 ~res:5 Objects.Loser;
    ]
  in
  Alcotest.(check bool) "sequential run" true (Linearize.check_operations Objects.tas ops)

let test_lin_queue () =
  let q id p = Request.make id p in
  let mk ~id ~inv ~res req resp =
    {
      Trace.op_pid = 0;
      op_req = q id req;
      invoke_seq = inv;
      invoke_ts = inv;
      op_init = None;
      outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
    }
  in
  (* concurrent enqueues, then dequeues observing either order *)
  let ops =
    [
      mk ~id:1 ~inv:0 ~res:3 (Objects.Enqueue 1) Objects.Q_ok;
      mk ~id:2 ~inv:1 ~res:2 (Objects.Enqueue 2) Objects.Q_ok;
      mk ~id:3 ~inv:4 ~res:5 Objects.Dequeue (Objects.Q_dequeued (Some 2));
      mk ~id:4 ~inv:6 ~res:7 Objects.Dequeue (Objects.Q_dequeued (Some 1));
    ]
  in
  Alcotest.(check bool) "queue lin ok" true (Linearize.check_operations Objects.queue ops);
  let bad =
    [
      mk ~id:1 ~inv:0 ~res:1 (Objects.Enqueue 1) Objects.Q_ok;
      mk ~id:2 ~inv:2 ~res:3 (Objects.Enqueue 2) Objects.Q_ok;
      (* sequential enqueues: dequeue must see 1 first *)
      mk ~id:3 ~inv:4 ~res:5 Objects.Dequeue (Objects.Q_dequeued (Some 2));
    ]
  in
  Alcotest.(check bool) "queue order violation" false
    (Linearize.check_operations Objects.queue bad)

let test_lin_register () =
  let mk ~id ~inv ~res req resp =
    {
      Trace.op_pid = 0;
      op_req = Request.make id req;
      invoke_seq = inv;
      invoke_ts = inv;
      op_init = None;
      outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
    }
  in
  let ops =
    [
      mk ~id:1 ~inv:0 ~res:1 (Objects.Reg_write 5) Objects.Reg_ok;
      mk ~id:2 ~inv:2 ~res:3 Objects.Reg_read (Objects.Reg_value 5);
    ]
  in
  Alcotest.(check bool) "register ok" true (Linearize.check_operations Objects.register ops);
  let bad =
    [
      mk ~id:1 ~inv:0 ~res:1 (Objects.Reg_write 5) Objects.Reg_ok;
      mk ~id:2 ~inv:2 ~res:3 Objects.Reg_read (Objects.Reg_value 7);
    ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Linearize.check_operations Objects.register bad)

(* --- TAS fast checker cross-validation ------------------------------ *)

let build_ops choices =
  (* interpret an int list as an interleaved trace builder *)
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let fresh = ref 0 in
  let open_ops = ref [] in
  let closed = ref [] in
  List.iter
    (fun c ->
      let c = abs c in
      match (c mod 3, !open_ops) with
      | 0, _ | _, [] ->
          incr fresh;
          open_ops := (!fresh, next ()) :: !open_ops
      | 1, (id, inv) :: rest ->
          open_ops := rest;
          let resp = if c / 3 mod 2 = 0 then Objects.Winner else Objects.Loser in
          closed := comp ~pid:id ~id ~inv ~res:(next ()) resp :: !closed
      | _, ops ->
          (* close the oldest open op *)
          let (id, inv), rest =
            match List.rev ops with
            | last :: r -> (last, List.rev r)
            | [] -> assert false
          in
          open_ops := rest;
          let resp = if c / 3 mod 2 = 0 then Objects.Winner else Objects.Loser in
          closed := comp ~pid:id ~id ~inv ~res:(next ()) resp :: !closed)
    choices;
  let pending = List.map (fun (id, inv) -> pend ~pid:id ~id ~inv) !open_ops in
  List.rev !closed @ pending

let prop_tas_checker_agrees =
  QCheck.Test.make ~count:2000 ~name:"Tas_lin agrees with Wing-Gong"
    QCheck.(list_of_size Gen.(int_range 0 12) small_int)
    (fun choices ->
      let ops = build_ops choices in
      Tas_lin.check_one_shot ops = Linearize.check_operations Objects.tas ops)

(* --- Abstract property checker -------------------------------------- *)

let areq id = Request.make id ()

let test_abstract_good_trace () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r1; r2 ] };
    ]
  in
  Alcotest.(check bool) "good" true (Abstract_check.is_ok evs)

let test_abstract_commit_order_violation () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r2 ] };
    ]
  in
  Alcotest.(check bool) "prefix violation" false (Abstract_check.is_ok evs)

let test_abstract_abort_ordering_violation () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1; r2 ] };
      Abstract_check.Abort { seq = 3; pid = 1; req = r2; hist = [ r2 ] };
    ]
  in
  Alcotest.(check bool) "commit not prefix of abort" false (Abstract_check.is_ok evs)

let test_abstract_validity_dup () =
  let r1 = areq 1 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ r1; r1 ] };
    ]
  in
  Alcotest.(check bool) "dup in history" false (Abstract_check.is_ok evs)

let test_abstract_validity_uninvoked () =
  let r1 = areq 1 and ghost = areq 99 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ ghost; r1 ] };
    ]
  in
  Alcotest.(check bool) "uninvoked request" false (Abstract_check.is_ok evs);
  Alcotest.(check bool) "also rejected globally" false
    (Abstract_check.is_ok ~validity:Abstract_check.Global evs)

let test_abstract_validity_timing_modes () =
  let r1 = areq 1 and r2 = areq 2 in
  (* r2 appears in r1's commit history but is invoked later *)
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ r1; r2 ] };
      Abstract_check.Invoke { seq = 2; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r1; r2 ] };
    ]
  in
  Alcotest.(check bool) "strict rejects" false (Abstract_check.is_ok evs);
  Alcotest.(check bool) "global accepts" true
    (Abstract_check.is_ok ~validity:Abstract_check.Global evs)

let test_abstract_missing_own_request () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs =
    [
      Abstract_check.Invoke { seq = 0; pid = 0; req = r1 };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 1; req = r2; hist = [ r1 ] };
    ]
  in
  Alcotest.(check bool) "history misses own request" false (Abstract_check.is_ok evs)

let test_abstract_init_ordering () =
  let r1 = areq 1 and r2 = areq 2 in
  let evs_ok =
    [
      Abstract_check.Init { seq = 0; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Commit { seq = 1; pid = 0; req = r1; hist = [ r1 ] };
      Abstract_check.Init { seq = 2; pid = 1; req = r2; hist = [ r1 ] };
      Abstract_check.Commit { seq = 3; pid = 1; req = r2; hist = [ r1; r2 ] };
    ]
  in
  Alcotest.(check bool) "init ordering ok" true (Abstract_check.is_ok evs_ok);
  let evs_bad =
    [
      Abstract_check.Init { seq = 0; pid = 0; req = r1; hist = [ r1; r2 ] };
      Abstract_check.Invoke { seq = 1; pid = 1; req = r2 };
      Abstract_check.Commit { seq = 2; pid = 0; req = r1; hist = [ r1 ] };
    ]
  in
  Alcotest.(check bool) "init not prefix of commit" false (Abstract_check.is_ok evs_bad)

(* --- Trace recorder --------------------------------------------------- *)

let test_trace_operations_pairing () =
  let tr : (unit, string, int) Trace.t = Trace.create () in
  let r1 = Request.make 1 () and r2 = Request.make 2 () in
  Trace.invoke tr ~pid:0 r1;
  Trace.init tr ~pid:1 r2 7;
  Trace.commit tr ~pid:0 r1 "ok";
  Trace.abort tr ~pid:1 r2 9;
  let ops = Trace.operations (Trace.events tr) in
  Alcotest.(check int) "two ops" 2 (List.length ops);
  let o1 = List.nth ops 0 and o2 = List.nth ops 1 in
  Alcotest.(check bool) "o1 committed" true
    (match o1.Trace.outcome with Trace.Committed { resp = "ok"; _ } -> true | _ -> false);
  Alcotest.(check bool) "o2 init" true (o2.Trace.op_init = Some 7);
  Alcotest.(check bool) "o2 aborted with 9" true
    (match o2.Trace.outcome with Trace.Aborted { switch = 9; _ } -> true | _ -> false)

let test_trace_malformed () =
  let tr : (unit, string, int) Trace.t = Trace.create () in
  let r1 = Request.make 1 () in
  Trace.commit tr ~pid:0 r1 "oops";
  (try
     ignore (Trace.operations (Trace.events tr));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let tr2 : (unit, string, int) Trace.t = Trace.create () in
  Trace.invoke tr2 ~pid:0 r1;
  Trace.invoke tr2 ~pid:1 r1;
  try
    ignore (Trace.operations (Trace.events tr2));
    Alcotest.fail "expected Invalid_argument on double invoke"
  with Invalid_argument _ -> ()

(* --- the 62-operation capacity boundary ------------------------------ *)

(* a sequential TAS history of [k] operations: first wins, rest lose *)
let sequential_tas_ops k =
  List.init k (fun i ->
      comp ~pid:0 ~id:(i + 1) ~inv:(2 * i)
        ~res:((2 * i) + 1)
        (if i = 0 then Objects.Winner else Objects.Loser))

let test_lin_cap_boundary_accepts_62 () =
  Alcotest.(check int) "cap is 62" 62 Linearize.max_operations;
  let ops = sequential_tas_ops Linearize.max_operations in
  Alcotest.(check bool) "62 operations check fine" true
    (Linearize.check_operations Objects.tas ops)

let test_lin_cap_boundary_rejects_63 () =
  let ops = sequential_tas_ops (Linearize.max_operations + 1) in
  Alcotest.check_raises "63 operations exceed capacity"
    (Linearize.Capacity_exceeded 63) (fun () ->
      ignore (Linearize.check_operations Objects.tas ops))

let test_lin_cap_counts_pending () =
  (* pending operations occupy mask bits too *)
  let ops =
    sequential_tas_ops (Linearize.max_operations - 1)
    @ [ pend ~pid:1 ~id:1000 ~inv:0; pend ~pid:2 ~id:1001 ~inv:0 ]
  in
  Alcotest.check_raises "62 committed + 2 pending overflow"
    (Linearize.Capacity_exceeded 63) (fun () ->
      ignore (Linearize.check_operations Objects.tas ops))

let tests =
  [
    Alcotest.test_case "lin: single winner" `Quick test_lin_single_winner;
    Alcotest.test_case "lin: lone loser rejected" `Quick test_lin_single_loser_rejected;
    Alcotest.test_case "lin: pending explains loser" `Quick test_lin_loser_explained_by_pending;
    Alcotest.test_case "lin: pending too late" `Quick test_lin_pending_too_late;
    Alcotest.test_case "lin: two winners rejected" `Quick test_lin_two_winners_rejected;
    Alcotest.test_case "lin: winner after loser" `Quick test_lin_winner_after_loser_rejected;
    Alcotest.test_case "lin: sequential" `Quick test_lin_sequential_ok;
    Alcotest.test_case "lin: queue" `Quick test_lin_queue;
    Alcotest.test_case "lin: register" `Quick test_lin_register;
    QCheck_alcotest.to_alcotest ~rand:(Test_seed.rand ()) prop_tas_checker_agrees;
    Alcotest.test_case "lin: 62-op capacity accepted" `Quick test_lin_cap_boundary_accepts_62;
    Alcotest.test_case "lin: 63 ops raise Capacity_exceeded" `Quick
      test_lin_cap_boundary_rejects_63;
    Alcotest.test_case "lin: pending ops count against the cap" `Quick
      test_lin_cap_counts_pending;
    Alcotest.test_case "abstract: good trace" `Quick test_abstract_good_trace;
    Alcotest.test_case "abstract: commit order" `Quick test_abstract_commit_order_violation;
    Alcotest.test_case "abstract: abort ordering" `Quick test_abstract_abort_ordering_violation;
    Alcotest.test_case "abstract: dup validity" `Quick test_abstract_validity_dup;
    Alcotest.test_case "abstract: uninvoked validity" `Quick test_abstract_validity_uninvoked;
    Alcotest.test_case "abstract: validity timing modes" `Quick test_abstract_validity_timing_modes;
    Alcotest.test_case "abstract: missing own request" `Quick test_abstract_missing_own_request;
    Alcotest.test_case "abstract: init ordering" `Quick test_abstract_init_ordering;
    Alcotest.test_case "trace: operation pairing" `Quick test_trace_operations_pairing;
    Alcotest.test_case "trace: malformed" `Quick test_trace_malformed;
  ]
