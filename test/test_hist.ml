(* The load harness's log-bucketed latency histogram: known-answer
   quantiles, bounded relative error, merge associativity/commutativity,
   overflow behaviour. *)

module Hist = Scs_load.Hist

let test_exact_small () =
  let h = Hist.create () in
  for v = 0 to 31 do
    Hist.record h v
  done;
  (* 32 samples 0..31: rank ceil(q*32) picks value rank-1 exactly *)
  Alcotest.(check int) "p50 exact" 15 (Hist.quantile h 0.5);
  Alcotest.(check int) "p100 exact" 31 (Hist.quantile h 1.0);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 31 (Hist.max_value h);
  Alcotest.(check int) "count" 32 (Hist.count h);
  Alcotest.(check int) "total" (31 * 32 / 2) (Hist.total h)

let test_known_answer_quantiles () =
  let h = Hist.create () in
  for v = 1 to 100 do
    Hist.record h v
  done;
  (* width-1 and width-2 buckets below 128 keep these exact or off by 1 *)
  Alcotest.(check int) "p50" 50 (Hist.quantile h 0.5);
  Alcotest.(check int) "p25" 25 (Hist.quantile h 0.25);
  (* 99 shares the width-2 bucket [98,99] whose representative is 98 *)
  Alcotest.(check int) "p99 bucket representative" 98 (Hist.quantile h 0.99);
  Alcotest.(check int) "p100 overlaps max" 100 (Hist.quantile h 1.0)

let test_relative_error_bound () =
  (* single-sample histograms: every quantile must resolve the sample
     to within 1/32 relative error across the whole dynamic range *)
  let check_value v =
    let h = Hist.create () in
    Hist.record h v;
    let q = Hist.quantile h 0.5 in
    let err = abs (q - v) in
    let bound = (v / 32) + 1 in
    if err > bound then
      Alcotest.failf "value %d resolved to %d (err %d > bound %d)" v q err bound
  in
  let rng = Scs_util.Rng.create 11 in
  List.iter check_value [ 0; 1; 31; 32; 33; 50; 99; 100; 1023; 1024; 1025 ];
  for _ = 1 to 2000 do
    check_value (Scs_util.Rng.int rng ((1 lsl 40) - 1))
  done

let test_monotone_buckets () =
  (* recording v then v' > v must never make quantile(1.0) decrease:
     bucket index is monotone in the value *)
  let h = Hist.create () in
  let prev = ref 0 in
  let v = ref 1 in
  while !v < 1 lsl 40 do
    Hist.record h !v;
    let q = Hist.quantile h 1.0 in
    if q < !prev then Alcotest.failf "quantile decreased at value %d" !v;
    prev := q;
    v := !v * 3 / 2 + 1
  done

let random_hist seed k =
  let rng = Scs_util.Rng.create seed in
  let h = Hist.create () in
  for _ = 1 to k do
    Hist.record h (Scs_util.Rng.int rng 5_000_000)
  done;
  h

let test_merge_associative_commutative () =
  let a = random_hist 1 500 and b = random_hist 2 300 and c = random_hist 3 700 in
  (* (a + b) + c *)
  let l = Hist.create () in
  Hist.merge ~into:l a;
  Hist.merge ~into:l b;
  Hist.merge ~into:l c;
  (* a + (b + c) *)
  let bc = Hist.create () in
  Hist.merge ~into:bc b;
  Hist.merge ~into:bc c;
  let r = Hist.create () in
  Hist.merge ~into:r a;
  Hist.merge ~into:r bc;
  Alcotest.(check bool) "associative" true (Hist.equal l r);
  (* b + a vs a + b *)
  let ab = Hist.create () in
  Hist.merge ~into:ab a;
  Hist.merge ~into:ab b;
  let ba = Hist.create () in
  Hist.merge ~into:ba b;
  Hist.merge ~into:ba a;
  Alcotest.(check bool) "commutative" true (Hist.equal ab ba);
  (* merging empty is the identity *)
  let id = Hist.create () in
  Hist.merge ~into:ab id;
  Alcotest.(check bool) "identity" true (Hist.equal ab ba)

let test_merge_quantiles_match_pooled () =
  (* quantiles of a merge equal quantiles of recording everything into
     one histogram *)
  let pooled = Hist.create () in
  let parts = List.map (fun s -> random_hist s 400) [ 5; 6; 7; 8 ] in
  List.iter
    (fun s ->
      let rng = Scs_util.Rng.create s in
      for _ = 1 to 400 do
        Hist.record pooled (Scs_util.Rng.int rng 5_000_000)
      done)
    [ 5; 6; 7; 8 ];
  let merged = Hist.create () in
  List.iter (fun p -> Hist.merge ~into:merged p) parts;
  Alcotest.(check bool) "merged = pooled" true (Hist.equal merged pooled)

let test_overflow () =
  let h = Hist.create () in
  Hist.record h 10;
  Hist.record h (1 lsl 50);
  Alcotest.(check int) "overflow count" 1 (Hist.overflow h);
  Alcotest.(check int) "max tracked exactly" (1 lsl 50) (Hist.max_value h);
  (* the overflow bucket answers with the exact maximum *)
  Alcotest.(check int) "overflow quantile = max" (1 lsl 50) (Hist.quantile h 1.0);
  Alcotest.(check int) "p50 still resolves below" 10 (Hist.quantile h 0.5);
  (* just below the overflow threshold lands in the last regular bucket *)
  let g = Hist.create () in
  let v = (1 lsl 40) - 1 in
  Hist.record g v;
  Alcotest.(check int) "no overflow below 2^40" 0 (Hist.overflow g);
  let q = Hist.quantile g 1.0 in
  if abs (q - v) > (v / 32) + 1 then Alcotest.failf "boundary value resolved to %d" q

let test_negative_clamp_and_clear () =
  let h = Hist.create () in
  Hist.record h (-5);
  Alcotest.(check int) "clamped to 0" 0 (Hist.quantile h 1.0);
  Alcotest.(check int) "min 0" 0 (Hist.min_value h);
  Alcotest.(check int) "total 0" 0 (Hist.total h);
  Hist.clear h;
  Alcotest.(check int) "cleared count" 0 (Hist.count h);
  Alcotest.(check int) "empty quantile" 0 (Hist.quantile h 0.5);
  Alcotest.(check bool) "cleared equals fresh" true (Hist.equal h (Hist.create ()))

let tests =
  [
    Alcotest.test_case "exact below 32" `Quick test_exact_small;
    Alcotest.test_case "known-answer quantiles" `Quick test_known_answer_quantiles;
    Alcotest.test_case "1/32 relative error bound" `Quick test_relative_error_bound;
    Alcotest.test_case "bucket index monotone" `Quick test_monotone_buckets;
    Alcotest.test_case "merge associative/commutative" `Quick
      test_merge_associative_commutative;
    Alcotest.test_case "merge equals pooled recording" `Quick
      test_merge_quantiles_match_pooled;
    Alcotest.test_case "overflow bucket" `Quick test_overflow;
    Alcotest.test_case "negative clamp and clear" `Quick test_negative_clamp_and_clear;
  ]
