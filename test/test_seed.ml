(* One explicit seed for every randomized test suite.

   qcheck's default is the process-random state, which makes CI failures
   unreproducible. All property tests instead draw from
   [SCS_QCHECK_SEED] (default 42): a failing run prints the seed along
   with the offending case, and re-running with the same environment
   replays it exactly. *)

let seed =
  match Sys.getenv_opt "SCS_QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None ->
          Printf.eprintf "ignoring non-integer SCS_QCHECK_SEED=%S\n%!" s;
          42)
  | None -> 42

(* a fresh qcheck random state per test, so tests stay independent of
   suite order *)
let rand () = Random.State.make [| seed |]

(* appended to counterexample printers and failure messages *)
let label = Printf.sprintf " [SCS_QCHECK_SEED=%d]" seed

(* derived deterministic stream for seeded non-qcheck loops *)
let rng tag = Scs_util.Rng.create (seed + (1_000_003 * tag))
