(* Failure injection across the stack: every safety property must survive
   crashes of arbitrary subsets of processes at arbitrary points (the
   model is wait-free: n-1 crash failures are legal). *)

open Scs_sim
open Scs_composable
open Scs_workload

let rng_crashes rng ~n ~max_crashes =
  let k = Scs_util.Rng.int rng (max_crashes + 1) in
  List.init k (fun _ -> (Scs_util.Rng.int rng n, 1 + Scs_util.Rng.int rng 15))

(* consensus: agreement + validity must hold among completed ops even when
   others crash mid-protocol *)
let consensus_crash ~algo ~runs () =
  (* crash sets derive from the suite seed: export the printed
     SCS_QCHECK_SEED to replay a failure *)
  let rng = Test_seed.rng 99 in
  for seed = 1 to runs do
    let n = 4 in
    let crashes = rng_crashes rng ~n ~max_crashes:2 in
    let sim = Sim.create ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let inst : int Scs_consensus.Consensus_intf.t =
      match algo with
      | `Split ->
          let module SC = Scs_consensus.Split_consensus.Make (P) in
          SC.instance (SC.create ~name:"s" ())
      | `Bakery ->
          let module AB = Scs_consensus.Abortable_bakery.Make (P) in
          AB.instance (AB.create ~name:"b" ~n ())
      | `Chain ->
          let module SC = Scs_consensus.Split_consensus.Make (P) in
          let module CC = Scs_consensus.Cas_consensus.Make (P) in
          let module CH = Scs_consensus.Chain.Make (P) in
          CH.make ~name:"ch"
            [ SC.instance (SC.create ~name:"ch.s" ()); CC.instance (CC.create ~name:"ch.c" ()) ]
    in
    let outcomes = Array.make n None in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          outcomes.(pid) <- Some (inst.Scs_consensus.Consensus_intf.run ~pid ~old:None (100 + pid)))
    done;
    Sim.run sim
      (Policy.with_crashes crashes (Policy.random (Scs_util.Rng.create seed)));
    let decisions =
      Array.to_list outcomes
      |> List.filter_map (function Some (Outcome.Commit (Some d)) -> Some d | _ -> None)
    in
    (match decisions with
    | [] -> ()
    | d :: rest ->
        if not (List.for_all (fun x -> x = d) rest) then
          Alcotest.failf "disagreement under crashes at seed %d crashes=%s%s" seed
            (String.concat ","
               (List.map (fun (p, k) -> Printf.sprintf "%d@%d" p k) crashes))
            Test_seed.label;
        if d < 100 || d >= 100 + n then
          Alcotest.failf "invalid decision at seed %d%s" seed Test_seed.label)
  done

let test_split_crashes () = consensus_crash ~algo:`Split ~runs:150 ()
let test_bakery_crashes () = consensus_crash ~algo:`Bakery ~runs:150 ()
let test_chain_crashes () = consensus_crash ~algo:`Chain ~runs:150 ()

(* the chain stays wait-free for survivors even when others crash *)
let test_chain_survivor_progress () =
  for seed = 1 to 60 do
    let n = 3 in
    let sim = Sim.create ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module SC = Scs_consensus.Split_consensus.Make (P) in
    let module CC = Scs_consensus.Cas_consensus.Make (P) in
    let module CH = Scs_consensus.Chain.Make (P) in
    let inst =
      CH.make ~name:"ch"
        [ SC.instance (SC.create ~name:"s" ()); CC.instance (CC.create ~name:"c" ()) ]
    in
    let done_ = Array.make n false in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          (match inst.Scs_consensus.Consensus_intf.run ~pid ~old:None pid with
          | Outcome.Commit (Some _) -> ()
          | Outcome.Commit None | Outcome.Abort _ ->
              Alcotest.failf "chain did not decide at seed %d" seed);
          done_.(pid) <- true)
    done;
    (* crash p0 early; the others must finish *)
    Sim.run sim
      (Policy.with_crashes [ (0, 2) ] (Policy.random (Scs_util.Rng.create seed)));
    Alcotest.(check bool) "survivors decided" true (done_.(1) && done_.(2))
  done

(* tournament TAS: a crashed competitor leaves at most a pending win *)
let test_tournament_crashes () =
  for seed = 1 to 100 do
    let r =
      Tas_run.one_shot ~seed ~n:4 ~algo:Tas_run.Tournament
        ~crashes:[ (seed mod 4, 1 + (seed mod 9)) ]
        ~policy:Policy.random ()
    in
    let ops = Scs_history.Trace.operations r.Tas_run.outer in
    if not (Scs_history.Tas_lin.check_one_shot ops) then
      Alcotest.failf "tournament with crash not linearizable at seed %d" seed;
    if List.length (Tas_run.winners r) > 1 then
      Alcotest.failf "two winners under crash at seed %d" seed
  done

(* snapshot: scans remain mutually comparable when an updater crashes *)
let test_snapshot_crashes () =
  for seed = 1 to 60 do
    let n = 3 in
    let sim = Sim.create ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module S = Scs_universal.Snapshot.Make (P) in
    let s = S.create ~name:"s" ~n ~init:0 in
    let scans = ref [] in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          for k = 1 to 3 do
            S.update s ~pid k;
            scans := S.scan s ~pid :: !scans
          done)
    done;
    Sim.run sim
      (Policy.with_crashes
         [ (seed mod n, 1 + (seed mod 7)) ]
         (Policy.random (Scs_util.Rng.create seed)));
    let le a b = Array.for_all2 (fun x y -> x <= y) a b in
    if
      not
        (List.for_all (fun a -> List.for_all (fun b -> le a b || le b a) !scans) !scans)
    then Alcotest.failf "incomparable scans under crash at seed %d" seed
  done

(* universal construction: survivors finish and histories stay consistent *)
let test_uc_crashes () =
  for seed = 1 to 40 do
    let r =
      Uc_run.run ~seed ~n:3 ~ops_per_proc:2
        ~crashes:[ (seed mod 3, 1 + (seed mod 19)) ]
        ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
        ~policy:Policy.random
        ~gen_payload:(fun ~pid:_ ~k:_ -> Scs_spec.Objects.Fai_inc)
        ()
    in
    (* survivors' commit histories must stay prefix-consistent and replay *)
    match Uc_run.check_responses Scs_spec.Objects.fetch_and_increment r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "uc inconsistent under crash at seed %d: %s" seed e
  done

let tests =
  [
    Alcotest.test_case "split consensus under crashes" `Quick test_split_crashes;
    Alcotest.test_case "bakery consensus under crashes" `Quick test_bakery_crashes;
    Alcotest.test_case "chain consensus under crashes" `Quick test_chain_crashes;
    Alcotest.test_case "chain survivor progress" `Quick test_chain_survivor_progress;
    Alcotest.test_case "tournament TAS under crashes" `Quick test_tournament_crashes;
    Alcotest.test_case "snapshot under crashes" `Quick test_snapshot_crashes;
    Alcotest.test_case "universal construction under crashes" `Quick test_uc_crashes;
  ]
