(* Exhaustive verification of the Moir-Anderson splitter over all
   interleavings of 2 and 3 processes — the 3-process space in full
   (236,880 maximal schedules) and again under sleep-set POR. *)

open Scs_sim
open Scs_consensus

let run_exhaustive ?(max_schedules = 300_000) ?(por = false) n =
  let violations = ref [] in
  let results = Array.make n None in
  let setup sim =
    Array.fill results 0 n None;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module Sp = Splitter.Make (P) in
    let s = Sp.create ~name:"s" () in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () -> results.(pid) <- Some (Sp.split s ~pid))
    done
  in
  let check _sim sched =
    let completed = Array.to_list results |> List.filter_map (fun x -> x) in
    let count v = List.length (List.filter (fun r -> r = v) completed) in
    let stops = count Splitter.Stop in
    let lefts = count Splitter.Left in
    let rights = count Splitter.Right in
    let total = List.length completed in
    if stops > 1 then violations := ("two stops", sched) :: !violations;
    if total = n && n > 0 then begin
      if lefts = n then violations := ("all left", sched) :: !violations;
      if rights = n then violations := ("all right", sched) :: !violations
    end
  in
  let outcome = Explore.exhaustive ~max_schedules ~por ~n ~setup ~check () in
  (outcome, !violations)

let test_exhaustive_2 () =
  let outcome, violations = run_exhaustive 2 in
  Alcotest.(check bool) "explored all" false outcome.Explore.truncated;
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check bool) "many schedules" true (outcome.Explore.schedules > 10)

let test_exhaustive_3 () =
  (* the full 3-process space is 236,880 maximal schedules; the
     single-replay DFS covers all of it in well under a second (the seed
     engine needed a 200k budget and still truncated) *)
  let outcome, violations = run_exhaustive 3 in
  Alcotest.(check bool) "explored all" false outcome.Explore.truncated;
  Alcotest.(check bool) "full space" true (outcome.Explore.schedules >= 200_000);
  Alcotest.(check int) "no violations" 0 (List.length violations)

let test_exhaustive_3_por () =
  (* the splitter verdicts are functions of the values each process reads,
     so sleep-set POR certifies the same property from one representative
     per class of commuting reorderings *)
  let outcome, violations = run_exhaustive ~por:true 3 in
  Alcotest.(check bool) "explored all" false outcome.Explore.truncated;
  Alcotest.(check bool) "POR pruned schedules" true (outcome.Explore.pruned > 0);
  Alcotest.(check bool) "far fewer representatives" true
    (outcome.Explore.schedules < 10_000);
  Alcotest.(check int) "no violations" 0 (List.length violations)

let test_solo_stops () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module Sp = Splitter.Make (P) in
  let s = Sp.create ~name:"s" () in
  let result = ref None in
  Sim.spawn sim 0 (fun () -> result := Some (Sp.split s ~pid:0));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "solo stops" true (!result = Some Splitter.Stop)

let test_solo_steps_constant () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module Sp = Splitter.Make (P) in
  let s = Sp.create ~name:"s" () in
  Sim.spawn sim 0 (fun () -> ignore (Sp.split s ~pid:0));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check int) "4 steps" 4 (Sim.steps_of sim 0)

let test_reset_reuse () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module Sp = Splitter.Make (P) in
  let s = Sp.create ~name:"s" () in
  let results = ref [] in
  Sim.spawn sim 0 (fun () ->
      results := Sp.split s ~pid:0 :: !results;
      Sp.reset s;
      results := Sp.split s ~pid:0 :: !results);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "stop twice after reset" true
    (!results = [ Splitter.Stop; Splitter.Stop ])

let test_sequential_after_stop () =
  (* without reset, a second solo process cannot stop *)
  let sim = Sim.create ~n:2 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module Sp = Splitter.Make (P) in
  let s = Sp.create ~name:"s" () in
  let results = Array.make 2 None in
  for pid = 0 to 1 do
    Sim.spawn sim pid (fun () -> results.(pid) <- Some (Sp.split s ~pid))
  done;
  Sim.run sim (Policy.sequential ());
  Alcotest.(check bool) "first stops" true (results.(0) = Some Splitter.Stop);
  Alcotest.(check bool) "second goes right" true (results.(1) = Some Splitter.Right)

let tests =
  [
    Alcotest.test_case "exhaustive n=2" `Quick test_exhaustive_2;
    Alcotest.test_case "exhaustive n=3 (full space)" `Slow test_exhaustive_3;
    Alcotest.test_case "exhaustive n=3 (POR)" `Quick test_exhaustive_3_por;
    Alcotest.test_case "solo stops" `Quick test_solo_stops;
    Alcotest.test_case "solo steps constant" `Quick test_solo_steps_constant;
    Alcotest.test_case "reset reuse" `Quick test_reset_reuse;
    Alcotest.test_case "sequential after stop" `Quick test_sequential_after_stop;
  ]
