(* Property-based tests (qcheck): randomized coverage over process counts,
   schedules, contention profiles and workloads, complementing the
   exhaustive and seeded tests. *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_composable
open Scs_workload

let gen_n = QCheck.Gen.int_range 2 7
let gen_seed = QCheck.Gen.int_range 1 1_000_000

(* a schedule policy choice: uniform random or sticky with dialled
   contention *)
let gen_policy_choice = QCheck.Gen.int_range 0 10

let policy_of_choice c rng =
  if c = 0 then Policy.random rng
  else Policy.sticky rng ~switch_prob:(float_of_int c /. 10.0)

let arbitrary_run =
  QCheck.make
    ~print:(fun (n, seed, pc) ->
      Printf.sprintf "n=%d seed=%d policy=%d%s" n seed pc Test_seed.label)
    QCheck.Gen.(triple gen_n gen_seed gen_policy_choice)

let prop_strict_linearizable =
  QCheck.Test.make ~count:300 ~name:"strict composed TAS is linearizable"
    arbitrary_run
    (fun (n, seed, pc) ->
      let r =
        Tas_run.one_shot ~seed ~n ~algo:Tas_run.Strict ~policy:(policy_of_choice pc) ()
      in
      Tas_lin.check_one_shot (Trace.operations r.Tas_run.outer)
      && List.length (Tas_run.winners r) = 1)

let prop_paper_interpretable =
  QCheck.Test.make ~count:300
    ~name:"paper composed TAS admits a valid interpretation, unique winner"
    arbitrary_run
    (fun (n, seed, pc) ->
      let r =
        Tas_run.one_shot ~seed ~n ~algo:Tas_run.Composed ~policy:(policy_of_choice pc) ()
      in
      Tas_interp.is_safely_composable r.Tas_run.outer
      && Tas_interp.is_safely_composable r.Tas_run.a1
      && List.length (Tas_run.winners r) = 1)

let prop_solo_fast_linearizable =
  QCheck.Test.make ~count:300 ~name:"solo-fast TAS is linearizable"
    arbitrary_run
    (fun (n, seed, pc) ->
      let r =
        Tas_run.one_shot ~seed ~n ~algo:Tas_run.Solo_fast ~policy:(policy_of_choice pc) ()
      in
      Tas_lin.check_one_shot (Trace.operations r.Tas_run.outer))

let prop_crashes_preserve_safety =
  QCheck.Test.make ~count:200 ~name:"crash sets preserve safety (strict)"
    (QCheck.make
       ~print:(fun (n, seed, crashes) ->
         Printf.sprintf "n=%d seed=%d crashes=%s%s" n seed
           (String.concat ","
              (List.map (fun (p, k) -> Printf.sprintf "(%d,%d)" p k) crashes))
           Test_seed.label)
       QCheck.Gen.(
         triple gen_n gen_seed
           (list_size (int_range 0 3) (pair (int_range 0 6) (int_range 1 12)))))
    (fun (n, seed, crashes) ->
      let crashes = List.filter (fun (p, _) -> p < n) crashes in
      let r =
        Tas_run.one_shot ~seed ~n ~algo:Tas_run.Strict ~crashes ~policy:Policy.random ()
      in
      Tas_lin.check_one_shot (Trace.operations r.Tas_run.outer)
      && List.length (Tas_run.winners r) <= 1)

let prop_consensus_agreement =
  QCheck.Test.make ~count:200 ~name:"abortable consensus agreement+validity"
    (QCheck.make
       ~print:(fun (n, seed, a) ->
         Printf.sprintf "n=%d seed=%d algo=%d%s" n seed a Test_seed.label)
       QCheck.Gen.(triple gen_n gen_seed (int_range 0 3)))
    (fun (n, seed, a) ->
      let algo =
        match a with
        | 0 -> Cons_run.Split
        | 1 -> Cons_run.Bakery
        | 2 -> Cons_run.Cas
        | _ -> Cons_run.Chain3
      in
      let r = Cons_run.run ~seed ~n ~algo ~policy:Policy.random () in
      r.Cons_run.agreement && r.Cons_run.validity)

let prop_splitter_at_most_one_stop =
  QCheck.Test.make ~count:300 ~name:"splitter: at most one stop"
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d%s" n seed Test_seed.label)
       QCheck.Gen.(pair gen_n gen_seed))
    (fun (n, seed) ->
      let sim = Sim.create ~n () in
      let module P = (val Scs_prims.Sim_prims.make sim) in
      let module Sp = Scs_consensus.Splitter.Make (P) in
      let s = Sp.create ~name:"s" () in
      let stops = ref 0 in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            if Sp.split s ~pid = Scs_consensus.Splitter.Stop then incr stops)
      done;
      Sim.run sim (Policy.random (Scs_util.Rng.create seed));
      !stops <= 1)

let prop_snapshot_scans_comparable =
  QCheck.Test.make ~count:150 ~name:"snapshot scans are totally ordered"
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d%s" n seed Test_seed.label)
       QCheck.Gen.(pair (int_range 2 4) gen_seed))
    (fun (n, seed) ->
      let sim = Sim.create ~n () in
      let module P = (val Scs_prims.Sim_prims.make sim) in
      let module S = Scs_universal.Snapshot.Make (P) in
      let s = S.create ~name:"s" ~n ~init:0 in
      let scans = ref [] in
      for pid = 0 to n - 1 do
        Sim.spawn sim pid (fun () ->
            for k = 1 to 2 do
              S.update s ~pid k;
              scans := S.scan s ~pid :: !scans
            done)
      done;
      Sim.run sim (Policy.random (Scs_util.Rng.create seed));
      let le a b = Array.for_all2 (fun x y -> x <= y) a b in
      List.for_all (fun a -> List.for_all (fun b -> le a b || le b a) !scans) !scans)

(* metamorphic checks on the history machinery *)

let gen_tas_history =
  QCheck.Gen.(
    map
      (fun ids ->
        List.mapi (fun i _ -> Request.make i Objects.Test_and_set) (List.init ids (fun _ -> ())))
      (int_range 0 8))

let prop_history_prefix_laws =
  QCheck.Test.make ~count:300 ~name:"history prefix laws"
    (QCheck.make QCheck.Gen.(pair gen_tas_history gen_tas_history))
    (fun (h1, h2) ->
      let c = History.common_prefix h1 h2 in
      History.is_prefix c h1 && History.is_prefix c h2
      && History.is_prefix h1 h1
      && (not (History.strict_prefix h1 h1)))

let prop_beta_consistent_with_run =
  QCheck.Test.make ~count:300 ~name:"beta_at agrees with run"
    (QCheck.make gen_tas_history)
    (fun h ->
      let _, resps = History.run Objects.tas h in
      List.for_all
        (fun (r, resp) -> History.beta_at Objects.tas h (Request.id r) = Some resp)
        resps)

let prop_sequential_traces_linearizable =
  (* generate a genuinely sequential register trace and check the generic
     checker accepts it; corrupt one read to an unwritten value and check
     it rejects *)
  QCheck.Test.make ~count:200 ~name:"sequential register traces: accept/reject"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 8) (int_range 0 1)))
    (fun choices ->
      let seq = ref 0 in
      let next () =
        incr seq;
        !seq
      in
      let state = ref 0 in
      let id = ref 0 in
      let ops =
        List.map
          (fun c ->
            incr id;
            let inv = next () in
            let req, resp =
              if c = 0 then begin
                let v = 1000 + !id in
                state := v;
                (Objects.Reg_write v, Objects.Reg_ok)
              end
              else (Objects.Reg_read, Objects.Reg_value !state)
            in
            {
              Trace.op_pid = 0;
              op_req = Request.make !id req;
              invoke_seq = inv;
              invoke_ts = inv;
              op_init = None;
              op_recoveries = 0;
              outcome = Trace.Committed { resp; resp_seq = next (); resp_ts = !seq };
            })
          choices
      in
      let ok = Linearize.check_operations Objects.register ops in
      (* corrupt the first read, if any *)
      let corrupted =
        List.map
          (fun (o : _ Trace.operation) ->
            match (Request.payload o.Trace.op_req, o.Trace.outcome) with
            | Objects.Reg_read, Trace.Committed c ->
                { o with Trace.outcome = Trace.Committed { c with resp = Objects.Reg_value (-1) } }
            | _ -> o)
          ops
      in
      let has_read =
        List.exists
          (fun (o : _ Trace.operation) -> Request.payload o.Trace.op_req = Objects.Reg_read)
          ops
      in
      ok && ((not has_read) || not (Linearize.check_operations Objects.register corrupted)))

let prop_uc_fai_distinct =
  QCheck.Test.make ~count:60 ~name:"UC fetch&inc responses are distinct"
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d%s" n seed Test_seed.label)
       QCheck.Gen.(pair (int_range 2 4) gen_seed))
    (fun (n, seed) ->
      let r =
        Uc_run.run ~seed ~n ~ops_per_proc:2
          ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
          ~policy:Policy.random
          ~gen_payload:(fun ~pid:_ ~k:_ -> Objects.Fai_inc)
          ()
      in
      let values =
        List.filter_map
          (fun (_, hist) ->
            match hist with
            | [] -> None
            | _ -> (
                let last = List.nth hist (List.length hist - 1) in
                match History.beta_at Objects.fetch_and_increment hist (Request.id last) with
                | Some (Objects.Fai_value v) -> Some v
                | None -> None))
          r.Uc_run.commit_hists
      in
      ignore values;
      (* distinctness of every request's own response *)
      let own =
        List.filter_map
          (fun (pid, req, _) ->
            ignore pid;
            (* find the longest commit history containing the request *)
            let best =
              List.fold_left
                (fun acc (_, h) ->
                  if History.mem (Request.id req) h then
                    match acc with
                    | Some b when List.length b >= List.length h -> acc
                    | _ -> Some h
                  else acc)
                None r.Uc_run.commit_hists
            in
            match best with
            | None -> None
            | Some h -> (
                match History.beta_at Objects.fetch_and_increment h (Request.id req) with
                | Some (Objects.Fai_value v) -> Some v
                | None -> None))
          r.Uc_run.responses
      in
      List.length (List.sort_uniq compare own) = List.length own)

let tests =
  (* explicit seed: failures are reproducible by exporting the printed
     SCS_QCHECK_SEED value *)
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~rand:(Test_seed.rand ()) t)
    [
      prop_strict_linearizable;
      prop_paper_interpretable;
      prop_solo_fast_linearizable;
      prop_crashes_preserve_safety;
      prop_consensus_agreement;
      prop_splitter_at_most_one_stop;
      prop_snapshot_scans_comparable;
      prop_history_prefix_laws;
      prop_beta_consistent_with_run;
      prop_sequential_traces_linearizable;
      prop_uc_fai_distinct;
    ]
