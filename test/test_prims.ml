(* Native_prims / Sim_prims parity audit.

   Both backends implement {!Scs_prims.Prims_intf.S}; the module-level
   coercions below make the interface conformance a compile-time fact,
   and the scripted run checks *behavioural* parity: one deterministic
   op sequence over every object class, executed directly on the native
   backend and inside a single simulator fiber, must produce the exact
   same observation list. *)

module Intf = Scs_prims.Prims_intf
module Sim = Scs_sim.Sim

(* compile-time conformance pins *)
module _ : Intf.S = Scs_prims.Native_prims

let _sim_conforms (sim : Sim.t) : (module Intf.S) = Scs_prims.Sim_prims.make sim

(* The audit script: every operation of every object class in
   {!Intf.S}, solo, recording each observable result. Booleans are
   encoded as 0/1 so the whole trace is one int list. *)
let script (module P : Intf.S) : int list =
  let out = ref [] in
  let int i = out := i :: !out in
  let bool b = int (if b then 1 else 0) in
  (* registers *)
  let r = P.reg ~name:"r" 7 in
  int (P.read r);
  P.write r 13;
  int (P.read r);
  (* test-and-set *)
  let t = P.tas_obj ~name:"t" () in
  bool (P.tas_read t);
  bool (P.test_and_set t);
  bool (P.test_and_set t);
  bool (P.tas_read t);
  P.tas_reset t;
  bool (P.tas_read t);
  bool (P.test_and_set t);
  (* fetch-and-increment *)
  let f = P.fai_obj ~name:"f" 5 in
  int (P.fetch_and_inc f);
  int (P.fetch_and_inc f);
  int (P.fai_read f);
  (* swap *)
  let s = P.swap_obj ~name:"s" 1 in
  int (P.swap s 2);
  int (P.swap s 3);
  int (P.swap_read s);
  (* compare-and-swap (physical equality; immediates compare reliably) *)
  let c = P.cas_obj ~name:"c" 10 in
  int (P.cas_read c);
  bool (P.compare_and_swap c ~expect:10 ~update:20);
  bool (P.compare_and_swap c ~expect:10 ~update:30);
  int (P.cas_read c);
  bool (P.compare_and_swap c ~expect:20 ~update:40);
  int (P.cas_read c);
  (* pause must be a no-op for values (it only yields the scheduler) *)
  P.pause ();
  int (P.cas_read c);
  List.rev !out

let expected =
  [
    7; 13;                (* reg *)
    0; 1; 0; 1; 0; 1;     (* tas *)
    5; 6; 7;              (* fai *)
    1; 2; 3;              (* swap *)
    10; 1; 0; 20; 1; 40;  (* cas *)
    40;                   (* after pause *)
  ]

let run_native () = script (module Scs_prims.Native_prims)

let run_sim () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let result = ref [] in
  Sim.spawn sim 0 (fun () -> result := script (module P));
  Sim.run sim (fun s ->
      match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p);
  !result

let test_native_script () =
  Alcotest.(check (list int)) "native trace" expected (run_native ())

let test_sim_script () =
  Alcotest.(check (list int)) "sim trace" expected (run_sim ())

let test_parity () =
  Alcotest.(check (list int)) "native = sim" (run_native ()) (run_sim ())

let test_pause_costs_a_sim_step () =
  (* interface parity does not mean cost parity: the simulator's pause
     consumes one scheduler turn so spinners cannot starve the fuse *)
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  Sim.spawn sim 0 (fun () ->
      P.pause ();
      P.pause ());
  Sim.run sim (fun s ->
      match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p);
  Alcotest.(check bool) "pause consumed steps" true (Sim.total_steps sim >= 2)

let tests =
  [
    Alcotest.test_case "audit script on native backend" `Quick test_native_script;
    Alcotest.test_case "audit script on sim backend" `Quick test_sim_script;
    Alcotest.test_case "native/sim behavioural parity" `Quick test_parity;
    Alcotest.test_case "sim pause consumes a step" `Quick test_pause_costs_a_sim_step;
  ]
