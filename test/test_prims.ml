(* Native / sim-linearizable / sim-SC parity audit.

   All three backends implement {!Scs_prims.Prims_intf.S}; the
   module-level coercions below make the interface conformance a
   compile-time fact, and the scripted run checks *behavioural* parity:
   one deterministic op sequence over every object class, executed
   directly on the native backend and inside a single simulator fiber,
   must produce the exact same observation list.

   The audit script is solo, so it pins the *universal* conformance
   properties — the ones every backend must satisfy regardless of
   consistency model: a process always sees its own writes, and RMW
   objects are atomic. The SC backend therefore matches at every lag on
   the solo script; what separates it is a *backend-specific* property,
   remote-write visibility, which needs two processes — the
   discriminator test at the bottom pins fresh reads on native-style
   backends (sim-lin, sim-sc:0) and a stale read on sim-sc:1. *)

module Intf = Scs_prims.Prims_intf
module Sim = Scs_sim.Sim
module Backend = Scs_prims.Backend

(* compile-time conformance pins *)
module _ : Intf.S = Scs_prims.Native_prims

let _sim_conforms (sim : Sim.t) : (module Intf.S) = Scs_prims.Sim_prims.make sim
let _sc_conforms (sim : Sim.t) : (module Intf.S) = Scs_prims.Sc_prims.make sim

(* The audit script: every operation of every object class in
   {!Intf.S}, solo, recording each observable result. Booleans are
   encoded as 0/1 so the whole trace is one int list. *)
let script (module P : Intf.S) : int list =
  let out = ref [] in
  let int i = out := i :: !out in
  let bool b = int (if b then 1 else 0) in
  (* registers *)
  let r = P.reg ~name:"r" 7 in
  int (P.read r);
  P.write r 13;
  int (P.read r);
  (* test-and-set *)
  let t = P.tas_obj ~name:"t" () in
  bool (P.tas_read t);
  bool (P.test_and_set t);
  bool (P.test_and_set t);
  bool (P.tas_read t);
  P.tas_reset t;
  bool (P.tas_read t);
  bool (P.test_and_set t);
  (* fetch-and-increment *)
  let f = P.fai_obj ~name:"f" 5 in
  int (P.fetch_and_inc f);
  int (P.fetch_and_inc f);
  int (P.fai_read f);
  (* swap *)
  let s = P.swap_obj ~name:"s" 1 in
  int (P.swap s 2);
  int (P.swap s 3);
  int (P.swap_read s);
  (* compare-and-swap (physical equality; immediates compare reliably) *)
  let c = P.cas_obj ~name:"c" 10 in
  int (P.cas_read c);
  bool (P.compare_and_swap c ~expect:10 ~update:20);
  bool (P.compare_and_swap c ~expect:10 ~update:30);
  int (P.cas_read c);
  bool (P.compare_and_swap c ~expect:20 ~update:40);
  int (P.cas_read c);
  (* pause must be a no-op for values (it only yields the scheduler) *)
  P.pause ();
  int (P.cas_read c);
  List.rev !out

let expected =
  [
    7; 13;                (* reg *)
    0; 1; 0; 1; 0; 1;     (* tas *)
    5; 6; 7;              (* fai *)
    1; 2; 3;              (* swap *)
    10; 1; 0; 20; 1; 40;  (* cas *)
    40;                   (* after pause *)
  ]

let run_native () = script (module Scs_prims.Native_prims)

let run_backend backend =
  let sim = Sim.create ~n:1 () in
  let module P = (val Backend.sim_prims backend sim) in
  let result = ref [] in
  Sim.spawn sim 0 (fun () -> result := script (module P));
  Sim.run sim (fun s ->
      match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p);
  !result

let run_sim () = run_backend Backend.Sim_lin

let test_native_script () =
  Alcotest.(check (list int)) "native trace" expected (run_native ())

let test_sim_script () =
  Alcotest.(check (list int)) "sim trace" expected (run_sim ())

let test_parity () =
  Alcotest.(check (list int)) "native = sim" (run_native ()) (run_sim ())

let test_sc_parity_solo () =
  (* universal conformance: own-write visibility makes the solo audit
     trace backend-independent, at any staleness bound *)
  List.iter
    (fun lag ->
      Alcotest.(check (list int))
        (Printf.sprintf "native = sim-sc:%d on the solo script" lag)
        (run_native ())
        (run_backend (Backend.Sim_sc { lag })))
    [ 0; 1; 3 ]

let test_backend_discriminator () =
  (* backend-specific conformance: a fully-completed remote write is
     visible to a later reader on linearizable backends, but may be lag
     writes stale on sim-sc — the one property the audit script cannot
     see solo, and exactly what difffuzz exploits *)
  let read_after_remote_write backend =
    let sim = Sim.create ~n:2 () in
    let module P = (val Backend.sim_prims backend sim) in
    let x = P.reg ~name:"x" 0 in
    let seen = ref (-1) in
    Sim.spawn sim 0 (fun () -> P.write x 1);
    Sim.spawn sim 1 (fun () -> seen := P.read x);
    Sim.run sim (fun s ->
        match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p);
    !seen
  in
  Alcotest.(check int) "sim-lin reads fresh" 1 (read_after_remote_write Backend.Sim_lin);
  Alcotest.(check int) "sim-sc:0 reads fresh" 1
    (read_after_remote_write (Backend.Sim_sc { lag = 0 }));
  Alcotest.(check int) "sim-sc:1 reads stale" 0
    (read_after_remote_write (Backend.Sim_sc { lag = 1 }))

let test_backend_names_roundtrip () =
  List.iter
    (fun b ->
      match Backend.of_string (Backend.name b) with
      | Ok b' -> Alcotest.(check bool) (Backend.name b) true (b = b')
      | Error e -> Alcotest.failf "%s does not round-trip: %s" (Backend.name b) e)
    [ Backend.Sim_lin; Backend.Sim_sc { lag = 0 }; Backend.Sim_sc { lag = 4 }; Backend.Native ];
  (match Backend.of_string "sim-sc" with
  | Ok (Backend.Sim_sc { lag }) ->
      Alcotest.(check int) "bare sim-sc gets the default lag" Scs_prims.Sc_prims.default_lag lag
  | _ -> Alcotest.fail "bare sim-sc should parse");
  (match Backend.of_string "sim-sc:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative lag must be rejected");
  (match Backend.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend must be rejected");
  let sim = Sim.create ~n:1 () in
  match Backend.sim_prims Backend.Native sim with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sim_prims must reject Native"

let test_pause_costs_a_sim_step () =
  (* interface parity does not mean cost parity: the simulator's pause
     consumes one scheduler turn so spinners cannot starve the fuse *)
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  Sim.spawn sim 0 (fun () ->
      P.pause ();
      P.pause ());
  Sim.run sim (fun s ->
      match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p);
  Alcotest.(check bool) "pause consumed steps" true (Sim.total_steps sim >= 2)

let tests =
  [
    Alcotest.test_case "audit script on native backend" `Quick test_native_script;
    Alcotest.test_case "audit script on sim backend" `Quick test_sim_script;
    Alcotest.test_case "native/sim behavioural parity" `Quick test_parity;
    Alcotest.test_case "native/sim-sc solo parity at any lag" `Quick test_sc_parity_solo;
    Alcotest.test_case "remote-write visibility discriminates backends" `Quick
      test_backend_discriminator;
    Alcotest.test_case "backend names round-trip" `Quick test_backend_names_roundtrip;
    Alcotest.test_case "sim pause consumes a step" `Quick test_pause_costs_a_sim_step;
  ]
