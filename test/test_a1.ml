(* Verification of module A1 (Algorithm 1):
   - the five invariants from the proof of Lemma 4;
   - Lemma 6 (aborts only under step contention);
   - Lemma 4 itself, executed: every reachable trace admits a valid
     interpretation under the Definition 3 constraint function;
   - constant solo step and space complexity.
   n = 2 is covered exhaustively; n = 3 in full via sleep-set POR (the
   plain n = 3 space exceeds 20M schedules; POR certifies one
   representative per class of commuting reorderings, untruncated).

   Invariant 4 ("no operation that aborts with W starts after a loser
   commits") is accounted separately: it holds for n = 2 but is violated
   from n = 3 on — finding F-2, previously believed to start at n = 4
   until the POR-complete exploration reached the violating schedules
   that the seed engine's 25k budget never saw. See Test_findings. *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_composable

type probe = {
  mutable events : (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event array;
  mutable mem : Mem_event.t array;
  mutable intervals : (int * Detect.interval * bool) list;
      (** (request id, interval, aborted?) *)
}

let run_a1_exhaustive ?(max_schedules = 60_000) ?(por = false) ~n () =
  let probe = { events = [||]; mem = [||]; intervals = [] } in
  let current = ref None in
  let setup sim =
    Sim.set_trace sim true;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module A1 = Scs_tas.A1.Make (P) in
    let a1 = A1.create ~name:"a1" () in
    let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    let intervals = ref [] in
    current := Some (tr, intervals);
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          let t0 = Sim.clock sim in
          Trace.invoke tr ~pid req;
          let aborted =
            match A1.apply a1 ~pid None with
            | Outcome.Commit r ->
                Trace.commit tr ~pid req r;
                false
            | Outcome.Abort v ->
                Trace.abort tr ~pid req v;
                true
          in
          intervals :=
            (pid, { Detect.pid; start_ts = t0; end_ts = Sim.clock sim }, aborted) :: !intervals)
    done
  in
  let failures = ref [] in
  let inv4_violations = ref [] in
  let fail_schedule sched msg = failures := (msg, sched) :: !failures in
  let check sim sched =
    let tr, intervals = Option.get !current in
    probe.events <- Trace.events tr;
    probe.mem <- Sim.trace_arr sim;
    probe.intervals <- !intervals;
    let ops = Trace.operations probe.events in
    let committed r =
      List.filter
        (fun (o : _ Trace.operation) ->
          match o.Trace.outcome with
          | Trace.Committed { resp; _ } -> resp = r
          | _ -> false)
        ops
    in
    let aborted v =
      List.filter
        (fun (o : _ Trace.operation) ->
          match o.Trace.outcome with
          | Trace.Aborted { switch; _ } -> switch = v
          | _ -> false)
        ops
    in
    let resp_seq (o : _ Trace.operation) =
      match o.Trace.outcome with
      | Trace.Committed { resp_seq; _ } | Trace.Aborted { resp_seq; _ } -> resp_seq
      | Trace.Pending -> max_int
    in
    (* Invariant 1: at most one winner *)
    if List.length (committed Objects.Winner) > 1 then fail_schedule sched "two winners";
    (* Invariant 2: winner => no W-aborts *)
    if committed Objects.Winner <> [] && aborted Tas_switch.W <> [] then
      fail_schedule sched "winner and W-abort coexist";
    (* Invariant 4: no W-abort starts after a loser commits. Violations
       are collected separately: this invariant is genuinely false from
       n = 3 on (finding F-2). *)
    (match committed Objects.Loser with
    | [] -> ()
    | losers ->
        let first_loser = List.fold_left (fun m o -> min m (resp_seq o)) max_int losers in
        List.iter
          (fun (o : _ Trace.operation) ->
            if o.Trace.invoke_seq > first_loser then
              inv4_violations := sched :: !inv4_violations)
          (aborted Tas_switch.W));
    (* Invariant 5: ops starting after an abort abort; after an L-abort,
       they abort with L *)
    let aborts = aborted Tas_switch.W @ aborted Tas_switch.L in
    (match aborts with
    | [] -> ()
    | _ ->
        let first_abort = List.fold_left (fun m o -> min m (resp_seq o)) max_int aborts in
        let first_l_abort =
          List.fold_left (fun m o -> min m (resp_seq o)) max_int (aborted Tas_switch.L)
        in
        List.iter
          (fun (o : _ Trace.operation) ->
            if o.Trace.invoke_seq > first_abort then begin
              match o.Trace.outcome with
              | Trace.Committed _ -> fail_schedule sched "op starting after abort committed"
              | Trace.Aborted { switch; _ } ->
                  if o.Trace.invoke_seq > first_l_abort && switch <> Tas_switch.L then
                    fail_schedule sched "op after L-abort did not abort with L"
              | Trace.Pending -> ()
            end)
          ops);
    (* Lemma 6, global reading: an abort implies step contention existed
       somewhere in the execution. (The per-operation reading is false for
       n >= 3 — Appendix B: "a process may abort if another process
       experiences step contention" — and belongs to the solo-fast
       variant.) *)
    let any_abort = List.exists (fun (_, _, a) -> a) probe.intervals in
    let any_contention =
      List.exists (fun (_, iv, _) -> Detect.step_contended probe.mem iv) probe.intervals
    in
    if any_abort && not any_contention then
      fail_schedule sched "abort in a step-contention-free execution";
    (* Lemma 4: the trace admits a valid interpretation *)
    (match Tas_interp.check_events probe.events with
    | Ok () -> ()
    | Error e -> fail_schedule sched ("not safely composable: " ^ e));
    (* And the basic TAS linearizability of the commit projection *)
    if not (Tas_lin.check_one_shot ops) then fail_schedule sched "commit projection not lin"
  in
  let outcome = Explore.exhaustive ~max_schedules ~por ~n ~setup ~check () in
  (outcome, !failures, !inv4_violations)

let pp_failures fs =
  String.concat "; "
    (List.map
       (fun (m, sched) ->
         Printf.sprintf "%s [%s]" m (String.concat "," (List.map string_of_int sched)))
       (match fs with a :: b :: c :: _ -> [ a; b; c ] | l -> l))

let test_a1_exhaustive_2 () =
  let outcome, failures, inv4 = run_a1_exhaustive ~n:2 () in
  Alcotest.(check bool) "fully explored" false outcome.Explore.truncated;
  Alcotest.(check int) "Invariant 4 holds at n=2" 0 (List.length inv4);
  if failures <> [] then Alcotest.failf "violations: %s" (pp_failures failures)

let test_a1_exhaustive_3 () =
  let outcome, failures, inv4 = run_a1_exhaustive ~max_schedules:100_000 ~por:true ~n:3 () in
  Alcotest.(check bool) "fully explored (POR)" false outcome.Explore.truncated;
  Alcotest.(check bool) "POR pruned schedules" true (outcome.Explore.pruned > 0);
  (* F-2 starts here: the bare module already breaks Invariant 4 at n=3 *)
  Alcotest.(check bool) "Invariant 4 violated at n=3 (F-2)" true (List.length inv4 > 0);
  if failures <> [] then Alcotest.failf "violations: %s" (pp_failures failures)

let test_a1_solo () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A1 = Scs_tas.A1.Make (P) in
  let a1 = A1.create ~name:"a1" () in
  let result = ref None in
  Sim.spawn sim 0 (fun () -> result := Some (A1.apply a1 ~pid:0 None));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "solo wins" true (!result = Some (Outcome.Commit Objects.Winner));
  Alcotest.(check int) "constant steps" 9 (Sim.steps_of sim 0);
  Alcotest.(check int) "constant space: 4 registers" 4 (Sim.objects_allocated sim);
  Alcotest.(check int) "no RMW" 0 (Sim.rmws_of sim 0)

let test_a1_second_sequential_loses () =
  let sim = Sim.create ~n:2 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A1 = Scs_tas.A1.Make (P) in
  let a1 = A1.create ~name:"a1" () in
  let results = Array.make 2 None in
  for pid = 0 to 1 do
    Sim.spawn sim pid (fun () -> results.(pid) <- Some (A1.apply a1 ~pid None))
  done;
  Sim.run sim (Policy.sequential ());
  Alcotest.(check bool) "p0 wins" true (results.(0) = Some (Outcome.Commit Objects.Winner));
  Alcotest.(check bool) "p1 loses" true (results.(1) = Some (Outcome.Commit Objects.Loser));
  (* the sequential loser pays even fewer steps: V is already set *)
  Alcotest.(check int) "loser steps" 2 (Sim.steps_of sim 1)

let test_a1_init_l_short_circuits () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A1 = Scs_tas.A1.Make (P) in
  let a1 = A1.create ~name:"a1" () in
  let result = ref None in
  Sim.spawn sim 0 (fun () -> result := Some (A1.apply a1 ~pid:0 (Some Tas_switch.L)));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "L commits loser" true (!result = Some (Outcome.Commit Objects.Loser));
  Alcotest.(check bool) "few steps" true (Sim.steps_of sim 0 <= 2)

let test_a1_after_abort_all_abort () =
  (* drive two processes into mutual interference so that [aborted] is
     set, then a third arrives and must abort (lines 4-6) *)
  let found = ref false in
  for seed = 1 to 80 do
    let sim = Sim.create ~n:3 () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module A1 = Scs_tas.A1.Make (P) in
    let a1 = A1.create ~name:"a1" () in
    let results = Array.make 3 None in
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () -> results.(pid) <- Some (A1.apply a1 ~pid None))
    done;
    Sim.spawn sim 2 (fun () -> results.(2) <- Some (A1.apply a1 ~pid:2 None));
    let rng = Scs_util.Rng.create seed in
    (* run p0/p1 interleaved first, p2 only afterwards *)
    let phase = ref 0 in
    Sim.run sim (fun s ->
        if !phase = 0 && Sim.finished s 0 && Sim.finished s 1 then phase := 1;
        if !phase = 0 then begin
          match List.filter (fun p -> p < 2) (Sim.runnable s) with
          | [] -> Sim.Stop
          | ps -> Sim.Sched (Scs_util.Rng.pick_list rng ps)
        end
        else begin
          match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p
        end);
    let aborted pid =
      match results.(pid) with Some (Outcome.Abort _) -> true | _ -> false
    in
    if aborted 0 || aborted 1 then begin
      found := true;
      Alcotest.(check bool) "late arrival also aborts or loses" true
        (match results.(2) with
        | Some (Outcome.Abort _) | Some (Outcome.Commit Objects.Loser) -> true
        | _ -> false)
    end
  done;
  Alcotest.(check bool) "some schedule aborted" true !found

let tests =
  [
    Alcotest.test_case "exhaustive n=2 (invariants, Lemma 4, Lemma 6)" `Quick
      test_a1_exhaustive_2;
    Alcotest.test_case "exhaustive n=3 (POR-complete)" `Slow test_a1_exhaustive_3;
    Alcotest.test_case "solo: 9 steps, 4 regs, no RMW" `Quick test_a1_solo;
    Alcotest.test_case "sequential second loses" `Quick test_a1_second_sequential_loses;
    Alcotest.test_case "init L short-circuits" `Quick test_a1_init_l_short_circuits;
    Alcotest.test_case "after abort, late ops abort" `Quick test_a1_after_abort_all_abort;
  ]
