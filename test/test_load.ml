(* The native load harness: workload mixes, the backend-agnostic driver
   checked under the simulator, and a short real-domain engine smoke for
   each acceptance family. *)

module Load = Scs_load.Load
module Mix = Scs_load.Mix

let test_mix_profiles () =
  Alcotest.(check (float 0.)) "A" 0.5 (Mix.profile_read_ratio Mix.A);
  Alcotest.(check (float 0.)) "B" 0.95 (Mix.profile_read_ratio Mix.B);
  Alcotest.(check (float 0.)) "C" 1.0 (Mix.profile_read_ratio Mix.C);
  Alcotest.(check (float 0.)) "U" 0.0 (Mix.profile_read_ratio Mix.U);
  List.iter
    (fun (s, p) ->
      match Mix.profile_of_string s with
      | Some p' when p' = p -> ()
      | _ -> Alcotest.failf "profile_of_string %S" s)
    [ ("a", Mix.A); ("B", Mix.B); ("c", Mix.C); ("u", Mix.U) ];
  Alcotest.(check bool) "unknown rejected" true (Mix.profile_of_string "z" = None)

let test_mix_sampling () =
  let keys = 16 in
  let mix = Mix.make ~read_ratio:0.5 ~keys ~skew:(Mix.Zipfian 0.99) in
  let rng = Scs_util.Rng.create 7 in
  let hits = Array.make keys 0 in
  let reads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Mix.is_read mix rng then incr reads;
    let k = Mix.sample_key mix rng in
    if k < 0 || k >= keys then Alcotest.failf "key %d out of range" k;
    hits.(k) <- hits.(k) + 1
  done;
  (* the zipfian head must dominate the tail *)
  Alcotest.(check bool) "skewed head" true (hits.(0) > hits.(keys - 1) * 4);
  let ratio = float_of_int !reads /. float_of_int n in
  if ratio < 0.45 || ratio > 0.55 then Alcotest.failf "read ratio drifted: %.3f" ratio;
  (* uniform: no key should starve *)
  let u = Mix.make ~read_ratio:0.0 ~keys ~skew:Mix.Uniform in
  let uh = Array.make keys 0 in
  for _ = 1 to n do
    let k = Mix.sample_key u rng in
    uh.(k) <- uh.(k) + 1
  done;
  Array.iteri (fun k c -> if c = 0 then Alcotest.failf "uniform starved key %d" k) uh

let test_workload_names_roundtrip () =
  List.iter
    (fun w ->
      match Load.workload_of_string (Load.workload_name w) with
      | Some w' when w' = w -> ()
      | _ -> Alcotest.failf "name round-trip failed for %s" (Load.workload_name w))
    Load.all_workloads;
  (* the acceptance families partition into known workloads *)
  let fam = List.concat_map snd Load.workload_families in
  List.iter
    (fun w ->
      if not (List.mem w Load.all_workloads) then
        Alcotest.failf "family workload %s not in all_workloads" (Load.workload_name w))
    fam;
  Alcotest.(check int) "four families" 4 (List.length Load.workload_families)

let test_flag_encoding () =
  Alcotest.(check int) "win" 1 Load.f_win;
  Alcotest.(check int) "reset" 2 Load.f_reset;
  Alcotest.(check int) "recycle" 4 Load.f_recycle;
  let w = Load.f_win lor Load.f_reset lor 0x300 lor 0x20000 in
  Alcotest.(check int) "aborts field" 3 (Load.flag_aborts w);
  Alcotest.(check int) "handoffs field" 2 (Load.flag_handoffs w)

(* Tentpole seam check: the exact driver code that runs on domains also
   runs under the simulator, where its per-workload invariants (unique
   winners per one-shot instance, every long-lived update winning solo,
   zero aborts without contention) are checked deterministically. *)
let test_sim_selfcheck () =
  List.iter
    (fun w ->
      if not (Load.sim_selfcheck ~seed:3 ~n:3 ~ops_per_proc:5 w) then
        Alcotest.failf "sim selfcheck failed for %s" (Load.workload_name w))
    Load.all_workloads

let check_result (r : Load.result) =
  if r.Load.r_ops <= 0 then Alcotest.failf "%s: no ops completed" r.Load.r_label;
  Alcotest.(check int) "ops = reads + updates" r.Load.r_ops
    (r.Load.r_reads + r.Load.r_updates);
  if r.Load.r_elapsed_s <= 0. then Alcotest.fail "elapsed <= 0";
  if r.Load.r_ops_per_sec <= 0. then Alcotest.fail "throughput <= 0";
  if r.Load.r_p50_us > r.Load.r_p99_us +. 1e-9 then Alcotest.fail "p50 > p99";
  if r.Load.r_p99_us > r.Load.r_p999_us +. 1e-9 then Alcotest.fail "p99 > p999";
  if r.Load.r_p999_us > r.Load.r_max_us +. 1e-9 then Alcotest.fail "p999 > max";
  if r.Load.r_abort_rate < 0. then Alcotest.fail "negative abort rate"

let smoke_cfg workload =
  {
    (Load.default_cfg ~workload ~domains:2) with
    Load.warmup_s = 0.02;
    duration_s = 0.08;
  }

(* one representative per acceptance family, on two real domains (they
   time-share on small hosts; correctness is unaffected) *)
let test_engine_smoke_tas () = check_result (Load.run (smoke_cfg Load.Speculative))

(* the UC object replays its request history, so per-op cost grows with
   the history and arena recycles are expensive — a window shorter than
   one recycle can legitimately complete zero measured ops *)
let test_engine_smoke_uc () =
  check_result
    (Load.run { (smoke_cfg Load.Uc_register) with Load.duration_s = 0.4 })
(* the chain closed loop also recycles its consensus arena; on a
   contended 1-core host an 80ms window can elapse inside one recycle,
   so it gets the same longer window as the uc cell *)
let test_engine_smoke_chain () =
  check_result (Load.run { (smoke_cfg Load.Chain) with Load.duration_s = 0.4 })

(* sharded family: 2 shards with a live migration every 40 updates of
   domain 0; per-shard op counters must account for every batched op *)
let test_engine_smoke_sharded () =
  let r =
    Load.run
      {
        (smoke_cfg Load.Sharded_uc) with
        Load.duration_s = 0.4;
        shards = 2;
        buckets = 8;
        migrate_every = 40;
      }
  in
  check_result r;
  let extra k = match List.assoc_opt k r.Load.r_extra with Some v -> v | None -> -1 in
  if extra "batched_ops" < 0 then Alcotest.fail "batched_ops counter missing";
  let shard_total = extra "shard0_ops" + extra "shard1_ops" in
  if shard_total < 0 then Alcotest.fail "per-shard counters missing";
  Alcotest.(check int) "per-shard counters account for the batched ops" (extra "batched_ops")
    shard_total

let test_to_record () =
  let r = Load.run (smoke_cfg Load.Hardware) in
  check_result r;
  let rec_ = Load.to_record r in
  (match rec_.Scs_obs.Trajectory.native with
  | None -> Alcotest.fail "native sub-record missing"
  | Some nv ->
      Alcotest.(check string) "backend" "native" nv.Scs_obs.Trajectory.backend;
      Alcotest.(check int) "domains" 2 nv.Scs_obs.Trajectory.domains;
      Alcotest.(check bool) "throughput copied" true
        (nv.Scs_obs.Trajectory.ops_per_sec = r.Load.r_ops_per_sec));
  (* the record must survive the schema round trip *)
  let file = Filename.temp_file "scs_load" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Scs_obs.Trajectory.save file
        { Scs_obs.Trajectory.run = "test"; seed = 0; records = [ rec_ ] };
      match Scs_obs.Trajectory.load file with
      | Ok t ->
          Alcotest.(check int) "one record" 1 (List.length t.Scs_obs.Trajectory.records)
      | Error e -> Alcotest.failf "native record failed validation: %s" e)

let tests =
  [
    Alcotest.test_case "mix profiles" `Quick test_mix_profiles;
    Alcotest.test_case "mix sampling" `Quick test_mix_sampling;
    Alcotest.test_case "workload names round-trip" `Quick test_workload_names_roundtrip;
    Alcotest.test_case "driver flag encoding" `Quick test_flag_encoding;
    Alcotest.test_case "driver selfcheck on sim backend (all workloads)" `Quick
      test_sim_selfcheck;
    Alcotest.test_case "engine smoke: tas family (2 domains)" `Quick
      test_engine_smoke_tas;
    Alcotest.test_case "engine smoke: uc family (2 domains)" `Quick test_engine_smoke_uc;
    Alcotest.test_case "engine smoke: chain family (2 domains)" `Quick
      test_engine_smoke_chain;
    Alcotest.test_case "engine smoke: sharded family (2 domains, 2 shards, migrating)"
      `Quick test_engine_smoke_sharded;
    Alcotest.test_case "native trajectory record round-trip" `Quick test_to_record;
  ]
