let () =
  Alcotest.run "repro"
    [
      ("util", Test_util.tests);
      ("sim", Test_sim.tests);
      ("explore", Test_explore.tests);
      ("spec", Test_spec.tests);
      ("history", Test_history.tests);
      ("linearize-diff", Test_linearize_diff.tests);
      ("sc", Test_sc.tests);
      ("splitter", Test_splitter.tests);
      ("consensus", Test_consensus.tests);
      ("a1", Test_a1.tests);
      ("composed", Test_composed.tests);
      ("findings", Test_findings.tests);
      ("long_lived", Test_long_lived.tests);
      ("universal", Test_universal.tests);
      ("locks", Test_locks.tests);
      ("native", Test_native.tests);
      ("prims-parity", Test_prims.tests);
      ("hist", Test_hist.tests);
      ("load", Test_load.tests);
      ("shard", Test_shard.tests);
      ("policy", Test_policy.tests);
      ("properties", Test_props.tests);
      ("fuzz", Test_fuzz.tests);
      ("futures", Test_futures.tests);
      ("crashes", Test_crashes.tests);
      ("composition", Test_composition.tests);
      ("obs", Test_obs.tests);
      ("pool", Test_pool.tests);
      ("recovery", Test_recovery.tests);
    ]
