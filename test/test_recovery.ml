(* Crash-recovery model tests: durable vs volatile registers, recovery
   re-admission, re-invocation traces, lane rendering, and the
   recoverable consensus workloads — including the pinned F-5 repro
   (volatile announcements break bakery agreement).

   The worked schedule walkthrough these tests pin down is documented in
   docs/recovery.md. *)

open Scs_sim
open Scs_history
open Scs_workload

let crash_t = Alcotest.testable Crash.pp Crash.equal

(* --- Crash event strings --------------------------------------------- *)

let test_crash_strings () =
  let cs = [ Crash.terminal ~pid:0 ~at:3; Crash.recovering ~pid:2 ~at:11 ~after:4 ] in
  Alcotest.(check string) "list to string" "0@3,2@11+4" (Crash.list_to_string cs);
  Alcotest.(check (option (list crash_t)))
    "round trip" (Some cs)
    (Crash.list_of_string (Crash.list_to_string cs));
  Alcotest.(check string) "empty list" "-" (Crash.list_to_string []);
  Alcotest.(check (option (list crash_t))) "dash is empty" (Some []) (Crash.list_of_string "-");
  Alcotest.(check (option crash_t)) "garbage" None (Crash.of_string "x");
  Alcotest.(check (option crash_t)) "missing at" None (Crash.of_string "1@");
  Alcotest.(check (option crash_t)) "double delay" None (Crash.of_string "1@2+3+4");
  Alcotest.(check (list crash_t))
    "canonical sorts and dedups"
    [ Crash.terminal ~pid:0 ~at:3; Crash.terminal ~pid:2 ~at:5 ]
    (Crash.canonical
       [ Crash.terminal ~pid:2 ~at:5; Crash.terminal ~pid:0 ~at:3; Crash.terminal ~pid:0 ~at:3 ]);
  Alcotest.(check (list crash_t))
    "of_pairs is terminal"
    [ Crash.terminal ~pid:1 ~at:2 ]
    (Crash.of_pairs [ (1, 2) ])

(* --- durable survives, volatile wiped -------------------------------- *)

(* p0 writes a durable and a volatile register, then crashes; p1 reads
   both afterwards. The durable value survives, the volatile one is back
   at its creation value. *)
let test_durable_volatile_litmus () =
  let sim = Sim.create ~n:2 () in
  let d = Sim.reg sim ~name:"d" 0 in
  let v = Sim.reg sim ~volatile:true ~name:"v" 0 in
  let seen = ref (-1, -1) in
  Sim.spawn sim 0 (fun () ->
      Sim.write d 1;
      Sim.write v 1;
      Sim.write d 2 (* never reached: crash fires at 2 steps *));
  Sim.spawn sim 1 (fun () -> seen := (Sim.read d, Sim.read v));
  Sim.run sim
    (Policy.with_crash_events [ Crash.terminal ~pid:0 ~at:2 ] (Policy.sequential ()));
  Alcotest.(check bool) "p0 crashed" true (Sim.is_crashed sim 0);
  Alcotest.(check (pair int int)) "durable kept, volatile wiped" (1, 0) !seen;
  Alcotest.(check int) "one volatile object" 1 (Sim.volatile_objects_allocated sim)

(* Every crash wipes every volatile object: p1's own volatile register is
   lost to p0's crash even though p1 never fails. *)
let test_global_wipe () =
  let sim = Sim.create ~n:2 () in
  let d = Sim.reg sim ~name:"d" 0 in
  let v = Sim.reg sim ~volatile:true ~name:"v" 0 in
  let seen = ref (-1) in
  Sim.spawn sim 0 (fun () ->
      Sim.write d 1;
      Sim.write d 2;
      Sim.write d 3);
  Sim.spawn sim 1 (fun () ->
      Sim.write v 5;
      seen := Sim.read v);
  (* round robin: p1 writes v between p0's steps; p0's crash at 2 steps
     wipes it before p1 reads it back *)
  Sim.run sim
    (Policy.with_crash_events [ Crash.terminal ~pid:0 ~at:2 ] (Policy.round_robin ()));
  Alcotest.(check int) "p1's volatile write gone" 0 !seen

(* --- recovery re-admission ------------------------------------------- *)

(* A recovering crash re-admits the registered recovery code only after
   the delay has elapsed on the global step clock. *)
let test_recovery_delay () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let crash_clock = ref (-1) in
  let recovery_clock = ref (-1) in
  Sim.set_recovery sim 0 (fun () ->
      recovery_clock := Sim.clock sim;
      Sim.write r 99);
  Sim.spawn sim 0 (fun () ->
      for k = 1 to 5 do
        Sim.write r k
      done);
  Sim.spawn sim 1 (fun () ->
      for _ = 1 to 20 do
        ignore (Sim.read r)
      done);
  let delay = 4 in
  let saw_crash = Policy.stop_when (fun sim ->
      if Sim.is_crashed sim 0 && !crash_clock < 0 then crash_clock := Sim.clock sim;
      false)
  in
  Sim.run sim
    (Policy.with_crash_events
       [ Crash.recovering ~pid:0 ~at:2 ~after:delay ]
       (saw_crash (Policy.round_robin ())));
  Alcotest.(check bool) "recovery ran" true (!recovery_clock >= 0);
  Alcotest.(check bool) "crash observed" true (!crash_clock >= 0);
  Alcotest.(check bool)
    (Printf.sprintf "re-admitted no earlier than crash clock %d + %d (got %d)" !crash_clock
       delay !recovery_clock)
    true
    (!recovery_clock >= !crash_clock + delay);
  Alcotest.(check int) "one recovery" 1 (Sim.recoveries_of sim 0);
  Alcotest.(check int) "total recoveries" 1 (Sim.total_recoveries sim);
  Alcotest.(check bool) "no longer crashed" false (Sim.is_crashed sim 0)

(* If every other process finishes first, a pending recovery is admitted
   immediately rather than dead-locking the run on its delay. *)
let test_stalled_recovery_admitted () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let recovered = ref false in
  Sim.set_recovery sim 0 (fun () ->
      recovered := true;
      Sim.write r 99);
  Sim.spawn sim 0 (fun () ->
      for k = 1 to 5 do
        Sim.write r k
      done);
  Sim.spawn sim 1 (fun () ->
      (* outlives p0's crash so the stall is reached at a loop top,
         not at the crash decision itself (see the solo-crash test) *)
      for _ = 1 to 3 do
        ignore (Sim.read r)
      done);
  Sim.run sim
    (Policy.with_crash_events
       [ Crash.recovering ~pid:0 ~at:2 ~after:1_000_000 ]
       (Policy.round_robin ()));
  Alcotest.(check bool) "recovery admitted at stall" true !recovered;
  Alcotest.(check int) "one recovery" 1 (Sim.recoveries_of sim 0);
  Alcotest.(check int) "nothing pending" 0 (Sim.pending_recoveries sim)

(* Documented edge: when the crash retires the last runnable process
   mid-decision, the run ends with the recovery still pending — crash
   placement decides whether the recovery gets to run at all. *)
let test_solo_crash_ends_run () =
  let sim = Sim.create ~n:1 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let recovered = ref false in
  Sim.set_recovery sim 0 (fun () -> recovered := true);
  Sim.spawn sim 0 (fun () ->
      for k = 1 to 5 do
        Sim.write r k
      done);
  Sim.run sim
    (Policy.with_crash_events
       [ Crash.recovering ~pid:0 ~at:2 ~after:3 ]
       (Policy.round_robin ()));
  Alcotest.(check bool) "recovery never ran" false !recovered;
  Alcotest.(check int) "recovery still pending" 1 (Sim.pending_recoveries sim)

(* Two recovering crashes on one process: the second interrupts the
   recovery code itself, which is then re-run from the start. *)
let test_double_crash_idempotent_recovery () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let completed = ref 0 in
  Sim.set_recovery sim 0 (fun () ->
      Sim.write r 99;
      Sim.write r 100;
      incr completed);
  Sim.spawn sim 0 (fun () ->
      for k = 1 to 5 do
        Sim.write r k
      done);
  Sim.spawn sim 1 (fun () ->
      for _ = 1 to 40 do
        ignore (Sim.read r)
      done);
  Sim.run sim
    (Policy.with_crash_events
       [ Crash.recovering ~pid:0 ~at:2 ~after:0; Crash.recovering ~pid:0 ~at:3 ~after:0 ]
       (Policy.round_robin ()));
  Alcotest.(check int) "two recoveries" 2 (Sim.recoveries_of sim 0);
  Alcotest.(check int) "recovery completed exactly once" 1 !completed

(* A recovering crash against a process with no registered entry point
   degrades to a terminal crash. *)
let test_recover_without_entry_point () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" 0 in
  Sim.spawn sim 0 (fun () ->
      for k = 1 to 5 do
        Sim.write r k
      done);
  Sim.spawn sim 1 (fun () -> ignore (Sim.read r));
  Sim.run sim
    (Policy.with_crash_events
       [ Crash.recovering ~pid:0 ~at:2 ~after:3 ]
       (Policy.round_robin ()));
  Alcotest.(check bool) "has no recovery" false (Sim.has_recovery sim 0);
  Alcotest.(check bool) "terminally crashed" true (Sim.is_crashed sim 0);
  Alcotest.(check int) "nothing pending" 0 (Sim.pending_recoveries sim);
  Alcotest.(check int) "no recoveries" 0 (Sim.recoveries_of sim 0)

(* --- snapshot / reset ------------------------------------------------- *)

(* Reset forgets crash state and scheduled recoveries but keeps the
   registered entry points, so pooled reuse replays crash schedules
   deterministically. *)
let test_reset_keeps_entry_points () =
  let sim = Sim.create ~n:2 () in
  let d = Sim.reg sim ~name:"d" 0 in
  let v = Sim.reg sim ~volatile:true ~name:"v" 0 in
  let recovery_runs = ref 0 in
  Sim.set_recovery sim 0 (fun () ->
      incr recovery_runs;
      Sim.write d 99);
  let body0 () =
    Sim.write v 1;
    for k = 1 to 4 do
      Sim.write d k
    done
  in
  let body1 () =
    for _ = 1 to 10 do
      ignore (Sim.read d)
    done
  in
  Sim.spawn sim 0 body0;
  Sim.spawn sim 1 body1;
  Sim.snapshot sim;
  let run () =
    Sim.run sim
      (Policy.with_crash_events
         [ Crash.recovering ~pid:0 ~at:2 ~after:2 ]
         (Policy.round_robin ()))
  in
  run ();
  Alcotest.(check int) "first run recovered" 1 (Sim.recoveries_of sim 0);
  let clock1 = Sim.clock sim in
  Sim.reset sim;
  Alcotest.(check int) "reset clears recovery count" 0 (Sim.recoveries_of sim 0);
  Alcotest.(check int) "reset clears pending" 0 (Sim.pending_recoveries sim);
  Alcotest.(check bool) "reset keeps entry point" true (Sim.has_recovery sim 0);
  Alcotest.(check bool) "reset un-crashes" false (Sim.is_crashed sim 0);
  run ();
  Alcotest.(check int) "second run recovered too" 1 (Sim.recoveries_of sim 0);
  Alcotest.(check int) "deterministic across reset" clock1 (Sim.clock sim);
  Alcotest.(check int) "recovery body ran both times" 2 !recovery_runs;
  Sim.clear sim;
  Alcotest.(check bool) "clear drops entry point" false (Sim.has_recovery sim 0);
  Alcotest.(check int) "clear drops counters" 0 (Sim.total_recoveries sim)

(* --- re-invocation traces --------------------------------------------- *)

let treq id = Scs_spec.Request.make id Scs_spec.Objects.Test_and_set

let test_trace_reinvocation () =
  let tr : (Scs_spec.Objects.tas_req, Scs_spec.Objects.tas_resp, unit) Trace.t =
    Trace.create ()
  in
  let req = treq 1 in
  Trace.invoke tr ~pid:0 req;
  Trace.recover tr ~pid:0 req;
  Trace.commit tr ~pid:0 req Scs_spec.Objects.Winner;
  match Trace.operations (Trace.events tr) with
  | [ op ] ->
      Alcotest.(check int) "one re-invocation folded in" 1 op.Trace.op_recoveries;
      Alcotest.(check int) "interval starts at original invoke" 0 op.Trace.invoke_seq;
      (match op.Trace.outcome with
      | Trace.Committed { resp = Scs_spec.Objects.Winner; _ } -> ()
      | _ -> Alcotest.fail "expected committed winner")
  | ops -> Alcotest.failf "expected one operation, got %d" (List.length ops)

let test_trace_recover_errors () =
  let tr : (Scs_spec.Objects.tas_req, Scs_spec.Objects.tas_resp, unit) Trace.t =
    Trace.create ()
  in
  let req = treq 1 in
  Trace.invoke tr ~pid:0 req;
  Trace.recover tr ~pid:0 (treq 2);
  (match Trace.operations (Trace.events tr) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "recovery of an uninvoked request must be rejected");
  let tr2 : (Scs_spec.Objects.tas_req, Scs_spec.Objects.tas_resp, unit) Trace.t =
    Trace.create ()
  in
  Trace.invoke tr2 ~pid:0 req;
  Trace.commit tr2 ~pid:0 req Scs_spec.Objects.Winner;
  Trace.recover tr2 ~pid:0 req;
  match Trace.operations (Trace.events tr2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "recovery after a response must be rejected"

(* A recovered operation is one operation spanning its whole interval:
   the TAS checker needs no special case. *)
let test_tas_lin_accepts_recovered_op () =
  let tr : (Scs_spec.Objects.tas_req, Scs_spec.Objects.tas_resp, unit) Trace.t =
    Trace.create ()
  in
  let r0 = treq 1 and r1 = treq 2 in
  Trace.invoke tr ~pid:0 r0;
  Trace.invoke tr ~pid:1 r1;
  Trace.commit tr ~pid:1 r1 Scs_spec.Objects.Winner;
  Trace.recover tr ~pid:0 r0;
  Trace.commit tr ~pid:0 r0 Scs_spec.Objects.Loser;
  let ops = Trace.operations (Trace.events tr) in
  Alcotest.(check bool) "linearizable with a recovered loser" true
    (Tas_lin.check_one_shot ops)

(* --- lane rendering ---------------------------------------------------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_render_lanes_recovering () =
  let s =
    Fuzz.render_lanes ~n:2
      ~schedule:[| 0; 0; 0; 1; 1; 0; 1 |]
      ~crashes:[ Crash.recovering ~pid:0 ~at:2 ~after:0 ]
      ()
  in
  Alcotest.(check bool) "X then R along the lane" true (contains s "###X.R.");
  Alcotest.(check bool) "recovering label" true (contains s "crash@2+0");
  Alcotest.(check bool) "fired" false (contains s "(unfired)")

let test_render_lanes_terminal () =
  let s =
    Fuzz.render_lanes ~n:2
      ~schedule:[| 0; 0; 0; 1; 1; 1 |]
      ~crashes:[ Crash.terminal ~pid:0 ~at:2 ]
      ()
  in
  Alcotest.(check bool) "bare X" true (contains s "###X..");
  Alcotest.(check bool) "no R on a terminal crash" false (String.contains s 'R');
  Alcotest.(check bool) "terminal label" true (contains s "crash@2")

let test_render_lanes_unfired () =
  let s =
    Fuzz.render_lanes ~n:2
      ~schedule:[| 0; 0; 0; 1; 1; 1 |]
      ~crashes:[ Crash.terminal ~pid:0 ~at:99 ]
      ()
  in
  Alcotest.(check bool) "flagged unfired" true (contains s "(unfired)");
  Alcotest.(check bool) "no X mark" false (String.contains s 'X')

(* --- backend error message (satellite: actionable CLI errors) --------- *)

let test_backend_error_lists_valid_names () =
  match Scs_prims.Backend.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus backend accepted"
  | Error msg ->
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %s" name)
            true (contains msg name))
        Scs_prims.Backend.valid_names

(* --- recoverable consensus workloads ---------------------------------- *)

(* Bounded exhaustive exploration, crash-free: the recoverable algorithms
   are plain consensus when nothing crashes. *)
let explore_recoverable w () =
  let inst = ref None in
  let setup sim =
    let i = w.Fuzz_run.instantiate ~n:2 () in
    inst := Some i;
    i.Fuzz_run.setup sim
  in
  let check sim _sched = (Option.get !inst).Fuzz_run.check sim in
  let outcome = Explore.exhaustive ~max_schedules:40_000 ~n:2 ~setup ~check () in
  Alcotest.(check bool) "explored some schedules" true (outcome.Explore.schedules > 0)

(* Crash-recover fuzzing stays clean on the sound algorithms. *)
let fuzz_clean w ~n ~runs () =
  let report =
    Fuzz_run.fuzz ~policies:Fuzz.recover_portfolio ~runs ~seed:42 w ~n
  in
  Alcotest.(check int)
    (w.Fuzz_run.name ^ ": no violations under crash-recover policies")
    0
    (List.length report.Fuzz.r_violations);
  let total_runs =
    List.fold_left (fun acc s -> acc + s.Fuzz.s_runs) 0 report.Fuzz.r_stats
  in
  Alcotest.(check bool) "ran the full budget" true (total_runs >= runs)

(* Pooled and fresh-simulator fuzzing agree run for run — recovery state
   is fully reset between pooled runs. *)
let test_pool_fresh_differential () =
  let run ~pool =
    Fuzz_run.fuzz ~policies:Fuzz.recover_portfolio ~runs:80 ~seed:7 ~pool
      Fuzz_run.recoverable_split ~n:3
  in
  let a = run ~pool:true and b = run ~pool:false in
  List.iter2
    (fun (sa : Fuzz.policy_stats) (sb : Fuzz.policy_stats) ->
      Alcotest.(check string) "same policy" sa.Fuzz.s_policy sb.Fuzz.s_policy;
      Alcotest.(check int) ("turns agree: " ^ sa.Fuzz.s_policy) sa.Fuzz.s_turns
        sb.Fuzz.s_turns;
      Alcotest.(check int) ("violations agree: " ^ sa.Fuzz.s_policy) sa.Fuzz.s_violations
        sb.Fuzz.s_violations)
    a.Fuzz.r_stats b.Fuzz.r_stats

(* Capture a run with a recovering crash, then replay the recorded
   schedule + crash events strictly: same outcome, no drift. *)
let test_capture_replay_with_recovery () =
  let w = Fuzz_run.recoverable_split in
  let n = 3 in
  let inst = w.Fuzz_run.instantiate ~n () in
  let sim = Sim.create ~n () in
  inst.Fuzz_run.setup sim;
  let buf = Scs_util.Vec.create () in
  let crashes = [ Crash.recovering ~pid:0 ~at:2 ~after:1 ] in
  Sim.run sim
    (Policy.with_crash_events crashes
       (Policy.capture buf (Policy.random (Scs_util.Rng.create 5))));
  inst.Fuzz_run.check sim;
  Alcotest.(check int) "the crash recovered" 1 (Sim.recoveries_of sim 0);
  let schedule = Scs_util.Vec.to_array buf in
  match Fuzz_run.replay w ~n ~schedule ~crashes with
  | Fuzz_run.Passes -> ()
  | Fuzz_run.Violates e -> Alcotest.failf "replay violated: %s" e
  | Fuzz_run.Skipped e -> Alcotest.failf "replay skipped: %s" e
  | Fuzz_run.Drifted p -> Alcotest.failf "replay drifted at pid %d" p

(* --- pinned finding F-5 ------------------------------------------------ *)

(* Volatile announcement arrays break bakery agreement: a single terminal
   crash wipes every in-flight announcement, after which two survivors
   pass their clean checks against an empty array and decide different
   values. Shrunk from a crash-recover fuzz run (seed 42); see
   docs/recovery.md and EXPERIMENTS.md T17. *)
let f5_repro =
  String.concat "\n"
    [
      "scsrepro 1";
      "workload recoverable-bakery-volatile";
      "n 3";
      "seed 540250794";
      "policy pct(3)+crashrec";
      "error recoverable-bakery-volatile: agreement violated: decision values disagree";
      "crashes 0@1";
      "schedule 1 1 1 1 1 1 1 1 1 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 0 0 1 1 1 1 1 \
       1 1 1 1 1 1 1";
      "";
    ]

let test_f5_pinned_repro () =
  let repro = Fuzz.Repro.of_string f5_repro in
  match Fuzz_run.find_qualified repro.Fuzz.Repro.workload with
  | None -> Alcotest.failf "unknown workload %s" repro.Fuzz.Repro.workload
  | Some (w, backend) -> (
      Alcotest.(check bool) "volatile variant is a known-failing finder" true
        w.Fuzz_run.expect_failures;
      match
        Fuzz_run.replay ~backend w ~n:repro.Fuzz.Repro.n
          ~schedule:repro.Fuzz.Repro.schedule ~crashes:repro.Fuzz.Repro.crashes
      with
      | Fuzz_run.Violates _ -> ()
      | Fuzz_run.Passes -> Alcotest.fail "F-5 repro no longer violates"
      | Fuzz_run.Skipped e -> Alcotest.failf "F-5 repro skipped: %s" e
      | Fuzz_run.Drifted p -> Alcotest.failf "F-5 repro drifted at pid %d" p)

(* The durable bakery survives the exact same schedule and crash. *)
let test_f5_schedule_sound_variant () =
  let repro = Fuzz.Repro.of_string f5_repro in
  match
    Fuzz_run.replay Fuzz_run.recoverable_bakery ~n:repro.Fuzz.Repro.n
      ~schedule:repro.Fuzz.Repro.schedule ~crashes:repro.Fuzz.Repro.crashes
  with
  | Fuzz_run.Violates e -> Alcotest.failf "durable bakery violated: %s" e
  | Fuzz_run.Passes | Fuzz_run.Drifted _ | Fuzz_run.Skipped _ ->
      (* the schedule need not replay cell for cell on a different
         algorithm; all that matters is that no violation surfaces *)
      ()

(* The shrinker preserves the crash explanation: shrinking the F-5 repro
   keeps a crash on pid 0 and the result still violates. *)
let test_f5_shrink_preserves_crash () =
  let repro = Fuzz.Repro.of_string f5_repro in
  match Fuzz_run.find_qualified repro.Fuzz.Repro.workload with
  | None -> Alcotest.fail "workload missing"
  | Some (w, backend) -> (
      let (schedule, crashes), _stats =
        Fuzz_run.shrink ~backend w ~n:repro.Fuzz.Repro.n
          ~schedule:repro.Fuzz.Repro.schedule ~crashes:repro.Fuzz.Repro.crashes
      in
      Alcotest.(check bool) "a crash survives shrinking" true
        (List.exists (fun (c : Crash.t) -> c.pid = 0) crashes);
      match Fuzz_run.replay ~backend w ~n:repro.Fuzz.Repro.n ~schedule ~crashes with
      | Fuzz_run.Violates _ -> ()
      | _ -> Alcotest.fail "shrunk repro must still violate")

let tests =
  [
    Alcotest.test_case "crash strings" `Quick test_crash_strings;
    Alcotest.test_case "durable/volatile litmus" `Quick test_durable_volatile_litmus;
    Alcotest.test_case "global volatile wipe" `Quick test_global_wipe;
    Alcotest.test_case "recovery delay" `Quick test_recovery_delay;
    Alcotest.test_case "stalled recovery admitted" `Quick test_stalled_recovery_admitted;
    Alcotest.test_case "solo crash ends run" `Quick test_solo_crash_ends_run;
    Alcotest.test_case "double crash, idempotent recovery" `Quick
      test_double_crash_idempotent_recovery;
    Alcotest.test_case "recover without entry point" `Quick test_recover_without_entry_point;
    Alcotest.test_case "reset keeps entry points" `Quick test_reset_keeps_entry_points;
    Alcotest.test_case "trace re-invocation" `Quick test_trace_reinvocation;
    Alcotest.test_case "trace recover errors" `Quick test_trace_recover_errors;
    Alcotest.test_case "tas-lin accepts recovered op" `Quick test_tas_lin_accepts_recovered_op;
    Alcotest.test_case "render lanes: X...R" `Quick test_render_lanes_recovering;
    Alcotest.test_case "render lanes: terminal X" `Quick test_render_lanes_terminal;
    Alcotest.test_case "render lanes: unfired" `Quick test_render_lanes_unfired;
    Alcotest.test_case "backend error lists names" `Quick test_backend_error_lists_valid_names;
    Alcotest.test_case "explore recoverable-split" `Slow
      (explore_recoverable Fuzz_run.recoverable_split);
    Alcotest.test_case "explore recoverable-bakery" `Slow
      (explore_recoverable Fuzz_run.recoverable_bakery);
    Alcotest.test_case "crash-recover fuzz clean: split" `Slow
      (fuzz_clean Fuzz_run.recoverable_split ~n:3 ~runs:200);
    Alcotest.test_case "crash-recover fuzz clean: bakery" `Slow
      (fuzz_clean Fuzz_run.recoverable_bakery ~n:3 ~runs:200);
    Alcotest.test_case "pool/fresh differential" `Slow test_pool_fresh_differential;
    Alcotest.test_case "capture/replay with recovery" `Quick
      test_capture_replay_with_recovery;
    Alcotest.test_case "F-5 pinned repro" `Quick test_f5_pinned_repro;
    Alcotest.test_case "F-5 schedule, sound variant" `Quick test_f5_schedule_sound_variant;
    Alcotest.test_case "F-5 shrink preserves crash" `Quick test_f5_shrink_preserves_crash;
  ]
