(* The generic light-weight speculative object (lib/futures): queues and
   fetch&inc — the paper's future-work objects — with an O(1) fast path
   and history transfer on switch. Includes the executable negative
   result: state-only transfer (dropping the replay table) duplicates
   surviving effects and breaks linearizability. *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_futures

let queue_state_to_requests q = List.map (fun x -> Objects.Enqueue x) q

(* run a queue workload on the simulator and return the client trace *)
let run_queue ?(transfer = Spec_object.History) ?(ops_per_proc = 3) ?(crashes = []) ~n ~seed
    ~policy () =
  let sim = Sim.create ~max_steps:20_000_000 ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module SO = Spec_object.Make (P) in
  let obj =
    SO.create ~transfer ~name:"q" ~n ~max_requests:(8 * n * ops_per_proc)
      ~spec:Objects.queue ~state_to_requests:queue_state_to_requests ()
  in
  let gen = Request.Gen.create () in
  let tr : (Objects.queue_req, Objects.queue_resp, unit) Trace.t =
    Trace.create ~clock:(fun () -> Sim.clock sim) ()
  in
  let stages = Array.make n Spec_object.Fast in
  let switch_lens = ref [] in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let h = SO.handle obj ~pid in
        for k = 1 to ops_per_proc do
          let payload =
            if k mod 2 = 1 then Objects.Enqueue ((100 * pid) + k) else Objects.Dequeue
          in
          let req = Request.Gen.fresh gen payload in
          Trace.invoke tr ~pid req;
          let resp = SO.apply h req in
          Trace.commit tr ~pid req resp
        done;
        stages.(pid) <- SO.stage_of h;
        match SO.switch_len h with Some l -> switch_lens := l :: !switch_lens | None -> ())
  done;
  let p = policy (Scs_util.Rng.create seed) in
  let p = if crashes = [] then p else Policy.with_crashes crashes p in
  Sim.run sim p;
  (Trace.events tr, stages, !switch_lens, sim)

let test_queue_sequential () =
  let evs, stages, _, _ = run_queue ~n:3 ~seed:1 ~policy:(fun _ -> Policy.sequential ()) () in
  Alcotest.(check bool) "linearizable" true (Linearize.check_events Objects.queue evs);
  Array.iter
    (fun s -> Alcotest.(check bool) "stayed fast" true (s = Spec_object.Fast))
    stages

let test_queue_solo_steps_constant () =
  let _, _, _, sim = run_queue ~n:4 ~ops_per_proc:1 ~seed:1 ~policy:(fun _ -> Policy.solo 0) () in
  let module SOs = Spec_object.Make (Scs_prims.Native_prims) in
  Alcotest.(check int) "solo steps" (SOs.fast_solo_steps ()) (Sim.steps_of sim 0);
  Alcotest.(check int) "no RMW on fast path" 0 (Sim.rmws_of sim 0)

let test_queue_random_linearizable () =
  for seed = 1 to 60 do
    let evs, _, _, _ = run_queue ~n:3 ~seed ~policy:Policy.random () in
    if not (Linearize.check_events Objects.queue evs) then
      Alcotest.failf "queue not linearizable at seed %d" seed
  done

let test_queue_crash_safety () =
  for seed = 1 to 40 do
    let evs, _, _, _ =
      run_queue ~n:3 ~seed ~crashes:[ (seed mod 3, 1 + (seed mod 11)) ] ~policy:Policy.random ()
    in
    if not (Linearize.check_events Objects.queue evs) then
      Alcotest.failf "queue with crash not linearizable at seed %d" seed
  done

let test_queue_contention_switches () =
  let switched = ref false in
  for seed = 1 to 30 do
    let _, stages, _, _ = run_queue ~n:3 ~seed ~policy:Policy.random () in
    if Array.exists (fun s -> s = Spec_object.Fallback) stages then switched := true
  done;
  Alcotest.(check bool) "fallback exercised" true !switched

let test_queue_switch_len_grows_with_work () =
  let max_len ~ops_per_proc =
    let acc = ref 0 in
    for seed = 1 to 25 do
      let _, _, lens, _ =
        run_queue ~ops_per_proc ~n:3 ~seed
          ~policy:(fun rng -> Policy.sticky rng ~switch_prob:0.08)
          ()
      in
      List.iter (fun l -> acc := max !acc l) lens
    done;
    !acc
  in
  let small = max_len ~ops_per_proc:2 in
  let large = max_len ~ops_per_proc:10 in
  Alcotest.(check bool) "longer runs transfer longer histories" true (large > small)

let test_state_only_transfer_breaks () =
  (* the executable negative result: dropping the replay table lets a
     surviving effect be re-applied; some schedule shows a duplicate
     (non-linearizable queue behaviour) *)
  let broken = ref false in
  (try
     for seed = 1 to 4000 do
       let evs, _, _, _ =
         run_queue ~transfer:Spec_object.State_only ~n:3 ~ops_per_proc:4 ~seed
           ~policy:Policy.random ()
       in
       if not (Linearize.check_events Objects.queue evs) then begin
         broken := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "state-only transfer exhibits non-linearizable runs" true !broken

(* fetch&inc instance *)

let run_fai ~n ~seed ~ops_per_proc ~policy () =
  let sim = Sim.create ~max_steps:20_000_000 ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module SO = Spec_object.Make (P) in
  let obj =
    SO.create ~name:"f" ~n ~max_requests:(8 * n * ops_per_proc) ~spec:Objects.fetch_and_increment
      ~state_to_requests:(fun v -> List.init v (fun _ -> Objects.Fai_inc))
      ()
  in
  let gen = Request.Gen.create () in
  let tr : (Objects.fai_req, Objects.fai_resp, unit) Trace.t =
    Trace.create ~clock:(fun () -> Sim.clock sim) ()
  in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let h = SO.handle obj ~pid in
        for _ = 1 to ops_per_proc do
          let req = Request.Gen.fresh gen Objects.Fai_inc in
          Trace.invoke tr ~pid req;
          let resp = SO.apply h req in
          Trace.commit tr ~pid req resp
        done)
  done;
  Sim.run sim (policy (Scs_util.Rng.create seed));
  Trace.events tr

let test_fai_linearizable_and_distinct () =
  for seed = 1 to 60 do
    let evs = run_fai ~n:3 ~seed ~ops_per_proc:3 ~policy:Policy.random () in
    if not (Linearize.check_events Objects.fetch_and_increment evs) then
      Alcotest.failf "fai not linearizable at seed %d" seed;
    (* all returned values distinct *)
    let values =
      Array.to_list evs
      |> List.filter_map (function
           | Trace.Commit { resp = Objects.Fai_value v; _ } -> Some v
           | _ -> None)
    in
    if List.length (List.sort_uniq compare values) <> List.length values then
      Alcotest.failf "duplicate counter values at seed %d" seed
  done

let test_fai_exhaustive_2 () =
  let current = ref None in
  let setup sim =
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module SO = Spec_object.Make (P) in
    let obj =
      SO.create ~name:"f" ~n:2 ~max_requests:16 ~spec:Objects.fetch_and_increment
        ~state_to_requests:(fun v -> List.init v (fun _ -> Objects.Fai_inc))
        ()
    in
    let tr : (Objects.fai_req, Objects.fai_resp, unit) Trace.t =
      Trace.create ~clock:(fun () -> Sim.clock sim) ()
    in
    current := Some tr;
    for pid = 0 to 1 do
      Sim.spawn sim pid (fun () ->
          let h = SO.handle obj ~pid in
          let req = Request.make pid Objects.Fai_inc in
          Trace.invoke tr ~pid req;
          let resp = SO.apply h req in
          Trace.commit tr ~pid req resp)
    done
  in
  let bad = ref 0 in
  let check _ _ =
    let tr = Option.get !current in
    if not (Linearize.check_events Objects.fetch_and_increment (Trace.events tr)) then incr bad
  in
  (* the plain n=2 space exceeds 20M schedules (the seed engine's 120k
     budget sampled under 1% of it); sleep-set POR covers the whole space
     through ~1.7k class representatives in about a second *)
  let outcome = Explore.exhaustive ~max_schedules:120_000 ~por:true ~n:2 ~setup ~check () in
  Alcotest.(check bool) "full POR coverage" false outcome.Explore.truncated;
  Alcotest.(check bool) "POR pruned schedules" true (outcome.Explore.pruned > 0);
  Alcotest.(check int) "linearizable on all explored schedules" 0 !bad;
  Alcotest.(check bool) "substantial coverage" true (outcome.Explore.schedules > 1000)

let tests =
  [
    Alcotest.test_case "queue sequential" `Quick test_queue_sequential;
    Alcotest.test_case "queue solo O(1), RMW-free" `Quick test_queue_solo_steps_constant;
    Alcotest.test_case "queue random linearizable" `Quick test_queue_random_linearizable;
    Alcotest.test_case "queue crash safety" `Quick test_queue_crash_safety;
    Alcotest.test_case "queue switches under contention" `Quick test_queue_contention_switches;
    Alcotest.test_case "queue switch length grows" `Quick test_queue_switch_len_grows_with_work;
    Alcotest.test_case "state-only transfer breaks (negative)" `Quick
      test_state_only_transfer_breaks;
    Alcotest.test_case "fai linearizable + distinct" `Quick test_fai_linearizable_and_distinct;
    Alcotest.test_case "fai exhaustive n=2 (POR-complete)" `Slow test_fai_exhaustive_2;
  ]
