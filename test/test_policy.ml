(* Unit coverage for the schedule policies (lib/sim/policy.ml) and the
   contention-class detectors (lib/sim/detect.ml). *)

open Scs_sim
open Scs_util

(* a simulator where process [pid] performs [work.(pid)] register reads
   (= memory steps), so turn counts are fully predictable *)
let make_sim work =
  let n = Array.length work in
  let sim = Sim.create ~n () in
  let r = Sim.reg sim ~name:"r" 0 in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        for _ = 1 to work.(pid) do
          ignore (Sim.read r)
        done)
  done;
  sim

let run_captured sim policy =
  let buf = Vec.create () in
  Sim.run sim (Policy.capture buf policy);
  Vec.to_array buf

(* ---- weighted --------------------------------------------------------- *)

let test_weighted_zero_weight_never_runs () =
  let sim = make_sim [| 5; 5; 5 |] in
  let sched = run_captured sim (Policy.weighted (Rng.create 7) [| 1.0; 0.0; 1.0 |]) in
  Array.iter
    (fun p -> if p = 1 then Alcotest.fail "zero-weight pid was scheduled")
    sched;
  Alcotest.(check bool) "p0 finished" true (Sim.finished sim 0);
  Alcotest.(check bool) "p2 finished" true (Sim.finished sim 2);
  Alcotest.(check int) "p1 never moved" 0 (Sim.steps_of sim 1)

let test_weighted_stops_when_only_zero_weight_runnable () =
  let sim = make_sim [| 3; 3 |] in
  let sched = run_captured sim (Policy.weighted (Rng.create 7) [| 1.0; 0.0 |]) in
  (* p0 runs to completion, then the policy must answer Stop rather than
     schedule the zero-weight p1 *)
  Alcotest.(check bool) "p0 finished" true (Sim.finished sim 0);
  Alcotest.(check bool) "p1 unfinished" false (Sim.finished sim 1);
  Array.iter (fun p -> Alcotest.(check int) "only p0 scheduled" 0 p) sched

let test_weighted_never_schedules_crashed () =
  let sim = make_sim [| 8; 8; 8 |] in
  let buf = Vec.create () in
  Sim.run sim
    (Policy.with_crashes [ (0, 2) ]
       (Policy.capture buf (Policy.weighted (Rng.create 11) [| 10.0; 1.0; 1.0 |])));
  (* heavily-weighted p0 crashes after 2 steps and must never be picked
     again, despite its weight *)
  Alcotest.(check int) "p0 stopped at its crash point" 2 (Sim.steps_of sim 0);
  Alcotest.(check bool) "p1 finished" true (Sim.finished sim 1);
  Alcotest.(check bool) "p2 finished" true (Sim.finished sim 2)

(* ---- sticky ----------------------------------------------------------- *)

let test_sticky_switch_rate () =
  (* With both processes runnable, sticky re-picks with probability p and
     the re-pick lands on the other process with probability (n-1)/n, so
     observed switch rate ≈ p/2 at n = 2. *)
  let p = 0.3 in
  let work = 1600 in
  let sim = make_sim [| work + 1; work + 1 |] in
  let sched = run_captured sim (Policy.sticky (Rng.create 5) ~switch_prob:p) in
  let window = min (2 * work) (Array.length sched) in
  let switches = ref 0 in
  for i = 1 to window - 1 do
    if sched.(i) <> sched.(i - 1) then incr switches
  done;
  let rate = float_of_int !switches /. float_of_int (window - 1) in
  let expected = p /. 2.0 in
  if Float.abs (rate -. expected) > 0.05 then
    Alcotest.failf "switch rate %.3f too far from %.3f%s" rate expected Test_seed.label

let test_sticky_zero_never_switches () =
  let sim = make_sim [| 4; 4 |] in
  let sched = run_captured sim (Policy.sticky (Rng.create 3) ~switch_prob:0.0) in
  (* one block per process: a switch only happens when the current
     process finishes *)
  let blocks = ref 1 in
  Array.iteri (fun i p -> if i > 0 && p <> sched.(i - 1) then incr blocks) sched;
  Alcotest.(check int) "two contiguous blocks" 2 !blocks

(* ---- with_crashes ----------------------------------------------------- *)

let test_with_crashes_fires_at_configured_step () =
  let sim = make_sim [| 10; 10; 10 |] in
  Sim.run sim
    (Policy.with_crashes [ (0, 3); (1, 5) ] (Policy.random (Rng.create 9)));
  (* a crash fires at the first policy call after the pid reaches k
     steps, so the pid takes exactly k memory steps *)
  Alcotest.(check int) "p0 crashed after 3 steps" 3 (Sim.steps_of sim 0);
  Alcotest.(check int) "p1 crashed after 5 steps" 5 (Sim.steps_of sim 1);
  Alcotest.(check int) "p2 ran to completion" 10 (Sim.steps_of sim 2);
  Alcotest.(check bool) "p0 not runnable" false (Sim.is_runnable sim 0);
  Alcotest.(check bool) "p1 not runnable" false (Sim.is_runnable sim 1)

let test_with_crashes_after_completion_is_noop () =
  let sim = make_sim [| 4; 4 |] in
  Sim.run sim (Policy.with_crashes [ (0, 100) ] (Policy.random (Rng.create 2)));
  Alcotest.(check bool) "all done" true (Sim.all_done sim);
  Alcotest.(check int) "p0 completed its work" 4 (Sim.steps_of sim 0)

(* ---- pct -------------------------------------------------------------- *)

let test_pct_deterministic_and_replayable () =
  let capture seed =
    let sim = make_sim [| 6; 6; 6; 6 |] in
    run_captured sim (Policy.pct (Rng.create seed) ~k:3 ~depth:40)
  in
  let s1 = capture 17 and s2 = capture 17 in
  Alcotest.(check (array int)) "same seed, same schedule" s1 s2;
  (* and the capture replays strictly against a fresh sim *)
  let sim = make_sim [| 6; 6; 6; 6 |] in
  Sim.run sim (Policy.scripted ~strict:true s1);
  Alcotest.(check bool) "replay is maximal" true (Sim.all_done sim)

let test_pct_without_change_points_runs_priority_blocks () =
  (* k = 1 means no priority changes: the highest-priority process runs
     to completion, then the next — each pid forms one contiguous block *)
  let sim = make_sim [| 5; 5; 5 |] in
  let sched = run_captured sim (Policy.pct (Rng.create 23) ~k:1 ~depth:40) in
  let blocks = ref 1 in
  Array.iteri (fun i p -> if i > 0 && p <> sched.(i - 1) then incr blocks) sched;
  Alcotest.(check int) "three contiguous blocks" 3 !blocks;
  Alcotest.(check bool) "maximal" true (Sim.all_done sim)

let test_pct_at_most_k_minus_1_preemptions () =
  (* every block boundary that is not a process completion must come from
     one of the k - 1 priority change points *)
  let k = 3 in
  let sim = make_sim [| 8; 8; 8 |] in
  let sched = run_captured sim (Policy.pct (Rng.create 31) ~k ~depth:24) in
  let seen = Hashtbl.create 8 in
  let preemptions = ref 0 in
  Array.iteri
    (fun i p ->
      Hashtbl.replace seen p (1 + Option.value ~default:0 (Hashtbl.find_opt seen p));
      if i > 0 && p <> sched.(i - 1) && Hashtbl.find seen sched.(i - 1) < 9 then
        (* 9 turns = 8 reads + 1 spawn turn; fewer means it was preempted *)
        incr preemptions)
    sched;
  Alcotest.(check bool)
    (Printf.sprintf "%d preemptions <= k-1" !preemptions)
    true
    (!preemptions <= k - 1)

(* ---- scripted strictness ---------------------------------------------- *)

let test_scripted_lenient_skips () =
  (* each process needs 2 turns (advance-to-op + the read); the third 0 in
     the script hits a finished p0 and is skipped silently *)
  let sim = make_sim [| 1; 1 |] in
  let sched = run_captured sim (Policy.scripted [| 0; 0; 0; 1; 1 |]) in
  Alcotest.(check (array int)) "executed schedule drifted" [| 0; 0; 1; 1 |] sched;
  Alcotest.(check bool) "maximal" true (Sim.all_done sim)

let test_scripted_strict_raises () =
  let sim = make_sim [| 1; 1 |] in
  Alcotest.check_raises "drift detected" (Policy.Replay_drift 0) (fun () ->
      Sim.run sim (Policy.scripted ~strict:true [| 0; 0; 0; 1; 1 |]))

let test_scripted_then_strict_raises () =
  let sim = make_sim [| 1; 1 |] in
  Alcotest.check_raises "drift detected" (Policy.Replay_drift 0) (fun () ->
      Sim.run sim
        (Policy.scripted_then ~strict:true [| 0; 0; 0 |] (Policy.sequential ())))

let test_explore_drift_is_policy_drift () =
  (* the explorer's drift exception is the same exception *)
  Alcotest.(check bool) "aliased" true
    (match Explore.Replay_drift 3 with Policy.Replay_drift 3 -> true | _ -> false)

(* ---- detectors -------------------------------------------------------- *)

let ev ~ts ~pid = { Mem_event.ts; pid; kind = Op.Read; obj = 0; obj_name = "r"; info = "" }

let test_step_contention_detector () =
  let events = [| ev ~ts:1 ~pid:0; ev ~ts:2 ~pid:0; ev ~ts:3 ~pid:1; ev ~ts:5 ~pid:0 |] in
  let iv = { Detect.pid = 0; start_ts = 2; end_ts = 4 } in
  Alcotest.(check bool) "p1's step at ts=3 contends" true (Detect.step_contended events iv);
  let iv0 = { Detect.pid = 0; start_ts = 0; end_ts = 2 } in
  Alcotest.(check bool) "own steps don't contend" false (Detect.step_contended events iv0);
  let iv1 = { Detect.pid = 0; start_ts = 3; end_ts = 5 } in
  Alcotest.(check bool) "start boundary is exclusive" false
    (Detect.step_contended events iv1);
  Alcotest.(check int) "own steps within (0,2]" 2 (Detect.steps_within events iv0)

let test_interval_contention_detector () =
  let a = { Detect.pid = 0; start_ts = 0; end_ts = 5 } in
  let b = { Detect.pid = 1; start_ts = 3; end_ts = 8 } in
  let c = { Detect.pid = 2; start_ts = 6; end_ts = 9 } in
  Alcotest.(check bool) "overlapping intervals" true (Detect.overlap a b);
  Alcotest.(check bool) "disjoint intervals" false (Detect.overlap a c);
  Alcotest.(check bool) "contended by b" true (Detect.interval_contended [ a; b; c ] a);
  Alcotest.(check bool) "c only overlaps b" true (Detect.interval_contended [ a; b; c ] c);
  Alcotest.(check bool) "alone is uncontended" false (Detect.interval_contended [ a ] a);
  (* same pid never contends with itself *)
  let a' = { Detect.pid = 0; start_ts = 2; end_ts = 7 } in
  Alcotest.(check bool) "same-pid overlap ignored" false
    (Detect.interval_contended [ a; a' ] a)

let tests =
  [
    Alcotest.test_case "weighted: zero weight never runs" `Quick
      test_weighted_zero_weight_never_runs;
    Alcotest.test_case "weighted: stops on zero-weight remainder" `Quick
      test_weighted_stops_when_only_zero_weight_runnable;
    Alcotest.test_case "weighted: crashed pid never re-scheduled" `Quick
      test_weighted_never_schedules_crashed;
    Alcotest.test_case "sticky: switch rate tracks switch_prob" `Quick
      test_sticky_switch_rate;
    Alcotest.test_case "sticky: switch_prob 0 never preempts" `Quick
      test_sticky_zero_never_switches;
    Alcotest.test_case "with_crashes: fires once at the configured step" `Quick
      test_with_crashes_fires_at_configured_step;
    Alcotest.test_case "with_crashes: post-completion crash is a no-op" `Quick
      test_with_crashes_after_completion_is_noop;
    Alcotest.test_case "pct: deterministic and strictly replayable" `Quick
      test_pct_deterministic_and_replayable;
    Alcotest.test_case "pct: k=1 runs pure priority blocks" `Quick
      test_pct_without_change_points_runs_priority_blocks;
    Alcotest.test_case "pct: at most k-1 preemptions" `Quick
      test_pct_at_most_k_minus_1_preemptions;
    Alcotest.test_case "scripted: lenient mode skips silently" `Quick
      test_scripted_lenient_skips;
    Alcotest.test_case "scripted: strict mode raises Replay_drift" `Quick
      test_scripted_strict_raises;
    Alcotest.test_case "scripted_then: strict mode raises Replay_drift" `Quick
      test_scripted_then_strict_raises;
    Alcotest.test_case "Explore.Replay_drift aliases Policy.Replay_drift" `Quick
      test_explore_drift_is_policy_drift;
    Alcotest.test_case "detect: step contention on hand-built trace" `Quick
      test_step_contention_detector;
    Alcotest.test_case "detect: interval contention on hand-built trace" `Quick
      test_interval_contention_detector;
  ]
