(* Differential testing of the scalable linearizability checker
   (Linearize) against the seed word-sized-bitmask implementation, kept
   verbatim as Linearize_ref exactly for this purpose.

   A choice-list interpreter builds random well-formed histories of up to
   ~40 operations (within the oracle's 62-op cap) with mixed
   committed / aborted / pending outcomes. Responses are drawn from a
   response-order linearization witness and then randomly corrupted, so
   the generator covers both linearizable and non-linearizable histories
   for every spec. The property is three-way verdict agreement:

     Linearize_ref  =  Linearize (Scalable)  =  Linearize (Legacy)

   across TAS, register, fetch-and-increment and queue specs, plus the
   compositional front-end: on a two-register product object,
   [check_partitioned] by register index must agree with the monolithic
   product-spec check (the compositionality theorem, exercised on random
   histories).

   CI runs this suite under several SCS_QCHECK_SEED values. *)

open Scs_spec
open Scs_history

let mkop ~id ~inv ~res req resp =
  {
    Trace.op_pid = 0;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
  }

let mkpend ~id ~inv req =
  {
    Trace.op_pid = 0;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Pending;
  }

let mkabort ~id ~inv ~res req =
  {
    Trace.op_pid = 0;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Aborted { switch = (); resp_seq = res; resp_ts = res };
  }

(* Interpret a list of small ints as history-building choices:
   - [c mod 5 < 2] (or nothing open): invoke a fresh operation, payload
     chosen by [payload (c / 5)];
   - [c mod 5 = 2]: commit the oldest open operation;
   - [c mod 5 = 3]: commit the newest open operation;
   - [c mod 5 = 4]: abort the oldest open operation.
   Leftover open operations stay pending. Committed responses come from
   applying the spec in commit order (a valid witness — commits are
   sequential in generation time), then pass through [corrupt (c / 5)],
   which flips some of them to make non-linearizable histories. Aborted
   operations are not applied: dropping them is always consistent. *)
let interp (spec : _ Spec.t) ~payload ~corrupt choices =
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let next_id = ref 0 in
  let state = ref spec.Spec.init in
  let opened = ref [] (* newest first *) in
  let out = ref [] in
  let take_oldest () =
    match List.rev !opened with
    | [] -> None
    | o :: _ ->
        opened := List.filter (fun x -> x != o) !opened;
        Some o
  in
  let take_newest () =
    match !opened with
    | [] -> None
    | o :: rest ->
        opened := rest;
        Some o
  in
  List.iter
    (fun c ->
      let c = abs c in
      let k = c / 5 in
      match (c mod 5, !opened) with
      | (0 | 1), _ | _, [] ->
          incr next_id;
          opened := (!next_id, payload k, next ()) :: !opened
      | 2, _ | 3, _ -> (
          match (if c mod 5 = 2 then take_oldest () else take_newest ()) with
          | None -> ()
          | Some (id, pl, inv) ->
              let st', resp = spec.Spec.apply !state pl in
              state := st';
              out := mkop ~id ~inv ~res:(next ()) pl (corrupt k resp) :: !out)
      | _, _ -> (
          match take_oldest () with
          | None -> ()
          | Some (id, pl, inv) -> out := mkabort ~id ~inv ~res:(next ()) pl :: !out))
    choices;
  List.rev !out @ List.rev_map (fun (id, pl, inv) -> mkpend ~id ~inv pl) !opened

let agree spec ops =
  let r = Linearize_ref.check_operations spec ops in
  r = Linearize.check_operations spec ops
  && r = Linearize.check_operations ~mode:Linearize.Legacy spec ops

let gen_choices = QCheck.(list_of_size Gen.(int_range 0 40) small_int)

let prop name spec ~payload ~corrupt =
  QCheck.Test.make ~count:2500 ~name gen_choices (fun choices ->
      agree spec (interp spec ~payload ~corrupt choices))

let prop_tas =
  prop "diff: tas agrees" Objects.tas
    ~payload:(fun _ -> Objects.Test_and_set)
    ~corrupt:(fun k r ->
      if k mod 7 = 0 then
        match r with Objects.Winner -> Objects.Loser | Objects.Loser -> Objects.Winner
      else r)

let prop_register =
  prop "diff: register agrees" Objects.register
    ~payload:(fun k -> if k mod 2 = 0 then Objects.Reg_write (k mod 5) else Objects.Reg_read)
    ~corrupt:(fun k r ->
      match r with
      | Objects.Reg_value v when k mod 7 = 0 -> Objects.Reg_value (v + 1)
      | r -> r)

let prop_fai =
  prop "diff: fetch-and-increment agrees" Objects.fetch_and_increment
    ~payload:(fun k -> if k mod 3 = 0 then Objects.Fai_read else Objects.Fai_inc)
    ~corrupt:(fun k (Objects.Fai_value v) ->
      if k mod 7 = 0 then Objects.Fai_value (v + 1) else Objects.Fai_value v)

let prop_queue =
  prop "diff: queue agrees" Objects.queue
    ~payload:(fun k -> if k mod 2 = 0 then Objects.Enqueue (k mod 8) else Objects.Dequeue)
    ~corrupt:(fun k r ->
      match r with
      | Objects.Q_dequeued v when k mod 7 = 0 ->
          Objects.Q_dequeued (match v with Some _ -> None | None -> Some 3)
      | r -> r)

(* ---- compositional front-end ------------------------------------------ *)

type pair_req = PW of int * int | PR of int

type pair_resp = P_ok | P_val of int

let pair_register : (int * int, pair_req, pair_resp) Spec.t =
  Spec.make ~name:"pair-register" ~init:(0, 0)
    ~apply:(fun (a, b) req ->
      match req with
      | PW (0, v) -> ((v, b), P_ok)
      | PW (_, v) -> ((a, v), P_ok)
      | PR 0 -> ((a, b), P_val a)
      | PR _ -> ((a, b), P_val b))
    ()

let proj_register _idx : (int, pair_req, pair_resp) Spec.t =
  Spec.make ~name:"proj-register" ~init:0
    ~apply:(fun s req ->
      match req with PW (_, v) -> (v, P_ok) | PR _ -> (s, P_val s))
    ()

let pair_key (o : _ Trace.operation) =
  match Request.payload o.Trace.op_req with PW (i, _) | PR i -> i

let prop_partitioned =
  QCheck.Test.make ~count:2500
    ~name:"diff: check_partitioned = monolithic product check" gen_choices
    (fun choices ->
      let ops =
        interp pair_register
          ~payload:(fun k ->
            let reg = k mod 2 in
            if k / 2 mod 2 = 0 then PW (reg, k mod 5) else PR reg)
          ~corrupt:(fun k r ->
            match r with P_val v when k mod 11 = 0 -> P_val (v + 1) | r -> r)
          choices
      in
      Linearize.check_operations pair_register ops
      = Linearize.check_partitioned ~key:pair_key ~spec:proj_register ops)

(* ---- sequential consistency ------------------------------------------- *)

(* Well-formed variant of [interp]: every operation is bound to a process
   drawn from a free-pid pool (freed when the operation commits), so
   each process's operations are sequential — the history shape
   {!Linearize.check_sc_operations} is specified for. Choices that would
   open an operation with no pid free commit the oldest instead.

   Aborts do NOT free their pid (the process is treated as crashed), so
   aborted operations are process-final. That matters for the
   implication property below: the linearizability checker lets an
   unresponded operation float past later operations of the same
   process, while the SC checker pins its effect to its program-order
   slot, so a process that continues after an abort can be linearizable
   yet not SC (see the mli note on check_sc_operations). With
   process-final aborts the implication is a theorem. *)
let interp_wf (spec : _ Spec.t) ~n_pids ~payload ~corrupt choices =
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let next_id = ref 0 in
  let state = ref spec.Spec.init in
  let opened = ref [] (* (id, payload, inv, pid), newest first *) in
  let free = ref (List.init n_pids (fun p -> p)) in
  let out = ref [] in
  let close ~abort o =
    let id, pl, inv, pid = o in
    if abort then
      out :=
        { (mkabort ~id ~inv ~res:(next ()) pl) with Trace.op_pid = pid } :: !out
    else begin
      free := pid :: !free;
      let st', resp = spec.Spec.apply !state pl in
      state := st';
      out :=
        { (mkop ~id ~inv ~res:(next ()) pl (corrupt (id + inv) resp)) with
          Trace.op_pid = pid }
        :: !out
    end
  in
  let take_oldest () =
    match List.rev !opened with
    | [] -> None
    | o :: _ ->
        opened := List.filter (fun x -> x != o) !opened;
        Some o
  in
  List.iter
    (fun c ->
      let c = abs c in
      let k = c / 4 in
      match (c mod 4, !opened, !free) with
      | 0, _, pid :: rest | _, [], pid :: rest ->
          free := rest;
          incr next_id;
          opened := (!next_id, payload k, next (), pid) :: !opened
      | (1 | 0), _, _ | 2, _, _ -> (
          match take_oldest () with None -> () | Some o -> close ~abort:false o)
      | _, _, _ -> (
          match take_oldest () with None -> () | Some o -> close ~abort:true o))
    choices;
  List.rev !out
  @ List.rev_map
      (fun (id, pl, inv, pid) -> { (mkpend ~id ~inv pl) with Trace.op_pid = pid })
      !opened

(* Linearizability implies sequential consistency (dropping the real-time
   constraint only enlarges the set of admissible orders); and the SC
   checker's two engine modes must agree with each other. *)
let prop_sc name spec ~payload ~corrupt =
  QCheck.Test.make ~count:1500 ~name gen_choices (fun choices ->
      let ops = interp_wf spec ~n_pids:5 ~payload ~corrupt choices in
      let sc = Linearize.check_sc_operations spec ops in
      (sc = Linearize.check_sc_operations ~mode:Linearize.Legacy spec ops)
      && ((not (Linearize.check_operations spec ops)) || sc))

let prop_sc_register =
  prop_sc "sc: linearizable => SC (register)" Objects.register
    ~payload:(fun k -> if k mod 2 = 0 then Objects.Reg_write (k mod 5) else Objects.Reg_read)
    ~corrupt:(fun k r ->
      match r with
      | Objects.Reg_value v when k mod 7 = 0 -> Objects.Reg_value (v + 1)
      | r -> r)

let prop_sc_queue =
  prop_sc "sc: linearizable => SC (queue)" Objects.queue
    ~payload:(fun k -> if k mod 2 = 0 then Objects.Enqueue (k mod 8) else Objects.Dequeue)
    ~corrupt:(fun k r ->
      match r with
      | Objects.Q_dequeued v when k mod 7 = 0 ->
          Objects.Q_dequeued (match v with Some _ -> None | None -> Some 3)
      | r -> r)

let prop_sc_tas =
  prop_sc "sc: linearizable => SC (tas)" Objects.tas
    ~payload:(fun _ -> Objects.Test_and_set)
    ~corrupt:(fun k r ->
      if k mod 7 = 0 then
        match r with Objects.Winner -> Objects.Loser | Objects.Loser -> Objects.Winner
      else r)

(* The differential fuzzing harness's own soundness gate: with lag 0 the
   SC register backend is observationally atomic, so on every workload —
   including the known-failing ones, which must fail identically — the
   two backends' verdicts agree run for run. *)
let test_sc_lag0_verdict_identity () =
  List.iter
    (fun (w : Scs_workload.Fuzz_run.t) ->
      let report =
        Scs_workload.Diff_fuzz.run
          ~policies:[ Scs_workload.Diff_fuzz.Uniform; Scs_workload.Diff_fuzz.Sticky 0.25 ]
          ~runs:12 ~seed:42 ~max_findings:0 ~shrink:false w ~n:w.Scs_workload.Fuzz_run.default_n
          ~lag:0
      in
      List.iter
        (fun (s : Scs_workload.Diff_fuzz.policy_stats) ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: no SC-only divergence at lag 0"
               w.Scs_workload.Fuzz_run.name s.Scs_workload.Diff_fuzz.dp_policy)
            0 s.Scs_workload.Diff_fuzz.dp_sc_only;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: no lin-only divergence at lag 0"
               w.Scs_workload.Fuzz_run.name s.Scs_workload.Diff_fuzz.dp_policy)
            0 s.Scs_workload.Diff_fuzz.dp_lin_only)
        report.Scs_workload.Diff_fuzz.dr_stats)
    Scs_workload.Fuzz_run.all

let tests =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Test_seed.rand ()))
    [
      prop_tas; prop_register; prop_fai; prop_queue; prop_partitioned;
      prop_sc_register; prop_sc_queue; prop_sc_tas;
    ]
  @ [
      Alcotest.test_case "sc-lag 0 differential runs are verdict-identical" `Slow
        test_sc_lag0_verdict_identity;
    ]
