(* Sequential consistency: known-answer litmus battery for the SC
   membership checker (Linearize.check_sc_operations) and the SC
   register backend (Scs_prims.Sc_prims).

   The history-level tests hand-check the classic shapes against both
   checkers: a stale read after a remote completed write separates SC
   from linearizability; a new/old inversion violates even SC; the
   store-buffering (SB) shape is the minimal witness that SC is not
   compositional — the global history is not SC while each register's
   subhistory is.

   The backend-level tests run the same shapes operationally on
   Sc_prims: lag 0 is observationally atomic, lag >= 1 serves bounded
   stale reads while keeping own writes visible and per-process views
   monotone, and RMW objects stay atomic at any lag. *)

open Scs_spec
open Scs_history
module Sim = Scs_sim.Sim

(* ---- history constructors --------------------------------------------- *)

let mkop ~pid ~id ~inv ~res req resp =
  {
    Trace.op_pid = pid;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Committed { resp; resp_seq = res; resp_ts = res };
  }

let mkpend ~pid ~id ~inv req =
  {
    Trace.op_pid = pid;
    op_req = Request.make id req;
    invoke_seq = inv;
    invoke_ts = inv;
    op_init = None;
    op_recoveries = 0;
    outcome = Trace.Pending;
  }

let w ~pid ~id ~inv ~res v = mkop ~pid ~id ~inv ~res (Objects.Reg_write v) Objects.Reg_ok

let r ~pid ~id ~inv ~res v =
  mkop ~pid ~id ~inv ~res Objects.Reg_read (Objects.Reg_value v)

let lin ops = Linearize.check_operations Objects.register ops
let sc ops = Linearize.check_sc_operations Objects.register ops

(* ---- single-register litmus ------------------------------------------- *)

let test_stale_read_sc_not_lin () =
  (* p0's write(1) completes strictly before p1's read begins; the read
     returns the initial 0. Illegal in real time, legal under SC (order
     the read before the write). *)
  let h = [ w ~pid:0 ~id:0 ~inv:1 ~res:2 1; r ~pid:1 ~id:1 ~inv:3 ~res:4 0 ] in
  Alcotest.(check bool) "not linearizable" false (lin h);
  Alcotest.(check bool) "sequentially consistent" true (sc h)

let test_fresh_read_both () =
  let h = [ w ~pid:0 ~id:0 ~inv:1 ~res:2 1; r ~pid:1 ~id:1 ~inv:3 ~res:4 1 ] in
  Alcotest.(check bool) "linearizable" true (lin h);
  Alcotest.(check bool) "sequentially consistent" true (sc h)

let test_new_old_inversion_not_sc () =
  (* p1 reads the new value and then, later in its own program order,
     the old one. No total order explains that: even SC forbids it. *)
  let h =
    [
      w ~pid:0 ~id:0 ~inv:1 ~res:2 1;
      r ~pid:1 ~id:1 ~inv:3 ~res:4 1;
      r ~pid:1 ~id:2 ~inv:5 ~res:6 0;
    ]
  in
  Alcotest.(check bool) "not linearizable" false (lin h);
  Alcotest.(check bool) "not SC either" false (sc h)

let test_stale_pair_reads_sc () =
  (* both readers stale, independently orderable before the write *)
  let h =
    [
      w ~pid:0 ~id:0 ~inv:1 ~res:2 5;
      r ~pid:1 ~id:1 ~inv:3 ~res:4 0;
      r ~pid:2 ~id:2 ~inv:5 ~res:6 5;
    ]
  in
  Alcotest.(check bool) "not linearizable" false (lin h);
  Alcotest.(check bool) "sequentially consistent" true (sc h)

let test_read_from_nowhere_not_sc () =
  (* no write of 2 exists anywhere: no consistency model explains it *)
  let h = [ w ~pid:0 ~id:0 ~inv:1 ~res:2 1; r ~pid:1 ~id:1 ~inv:3 ~res:4 2 ] in
  Alcotest.(check bool) "not SC" false (sc h)

let test_pending_write_may_take_effect () =
  (* a pending write may be linearized (explaining the read) or dropped
     (explaining nothing) — the read of 1 forces the former *)
  let h = [ mkpend ~pid:0 ~id:0 ~inv:1 (Objects.Reg_write 1); r ~pid:1 ~id:1 ~inv:2 ~res:3 1 ] in
  Alcotest.(check bool) "pending write can explain the read" true (sc h);
  let h' = [ mkpend ~pid:0 ~id:0 ~inv:1 (Objects.Reg_write 1); r ~pid:1 ~id:1 ~inv:2 ~res:3 2 ] in
  Alcotest.(check bool) "but cannot invent values" false (sc h')

(* ---- the SB / MP shapes: SC is not compositional ----------------------- *)

(* A two-register product spec: requests name the register. *)
type pair_req = PW of int * int | PR of int
type pair_resp = P_ok | P_val of int

let pair_register : (int * int, pair_req, pair_resp) Spec.t =
  Spec.make ~name:"pair-register" ~init:(0, 0)
    ~apply:(fun (a, b) req ->
      match req with
      | PW (0, v) -> ((v, b), P_ok)
      | PW (_, v) -> ((a, v), P_ok)
      | PR 0 -> ((a, b), P_val a)
      | PR _ -> ((a, b), P_val b))
    ()

(* Store buffering: p0 writes x then reads y; p1 writes y then reads x;
   both reads return the initial 0. Program order gives
   Ry < Wy < Rx < Wx < Ry — a cycle, so the global history is not SC.
   Each register's subhistory in isolation is just a stale read, which
   IS SC: per-object SC does not compose (Perrin et al.). *)
let sb_global =
  [
    mkop ~pid:0 ~id:0 ~inv:1 ~res:3 (PW (0, 1)) P_ok;
    mkop ~pid:1 ~id:1 ~inv:2 ~res:4 (PW (1, 1)) P_ok;
    mkop ~pid:0 ~id:2 ~inv:5 ~res:7 (PR 1) (P_val 0);
    mkop ~pid:1 ~id:3 ~inv:6 ~res:8 (PR 0) (P_val 0);
  ]

let sb_projection ~reg =
  List.filter_map
    (fun (o : _ Trace.operation) ->
      match (Request.payload o.Trace.op_req, o.Trace.outcome) with
      | PW (i, v), Trace.Committed { resp_seq; _ } when i = reg ->
          Some (w ~pid:o.Trace.op_pid ~id:(Request.id o.Trace.op_req)
                  ~inv:o.Trace.invoke_seq ~res:resp_seq v)
      | PR i, Trace.Committed { resp = P_val v; resp_seq; _ } when i = reg ->
          Some (r ~pid:o.Trace.op_pid ~id:(Request.id o.Trace.op_req)
                  ~inv:o.Trace.invoke_seq ~res:resp_seq v)
      | _ -> None)
    sb_global

let test_sb_not_sc_globally () =
  Alcotest.(check bool) "SB history is not SC over the whole memory" false
    (Linearize.check_sc_operations pair_register sb_global)

let test_sb_projections_are_sc () =
  List.iter
    (fun reg ->
      let sub = sb_projection ~reg in
      Alcotest.(check int) "projection has both ops" 2 (List.length sub);
      Alcotest.(check bool)
        (Printf.sprintf "register %d subhistory is SC" reg)
        true (sc sub);
      Alcotest.(check bool)
        (Printf.sprintf "register %d subhistory is not linearizable" reg)
        false (lin sub))
    [ 0; 1 ]

let test_mp_not_sc () =
  (* message passing: p0 writes data x then flag y; p1 reads the flag as
     set but the data as stale — forbidden even under SC, because p0's
     program order sequences Wx before Wy. *)
  let h =
    [
      mkop ~pid:0 ~id:0 ~inv:1 ~res:2 (PW (0, 1)) P_ok;
      mkop ~pid:0 ~id:1 ~inv:3 ~res:4 (PW (1, 1)) P_ok;
      mkop ~pid:1 ~id:2 ~inv:5 ~res:6 (PR 1) (P_val 1);
      mkop ~pid:1 ~id:3 ~inv:7 ~res:8 (PR 0) (P_val 0);
    ]
  in
  Alcotest.(check bool) "MP stale-data-behind-flag is not SC" false
    (Linearize.check_sc_operations pair_register h)

let test_mp_fresh_is_linearizable () =
  let h =
    [
      mkop ~pid:0 ~id:0 ~inv:1 ~res:2 (PW (0, 1)) P_ok;
      mkop ~pid:0 ~id:1 ~inv:3 ~res:4 (PW (1, 1)) P_ok;
      mkop ~pid:1 ~id:2 ~inv:5 ~res:6 (PR 1) (P_val 1);
      mkop ~pid:1 ~id:3 ~inv:7 ~res:8 (PR 0) (P_val 1);
    ]
  in
  Alcotest.(check bool) "fresh MP is linearizable" true
    (Linearize.check_operations pair_register h);
  Alcotest.(check bool) "and therefore SC" true
    (Linearize.check_sc_operations pair_register h)

(* ---- operational litmus on the Sc_prims backend ------------------------ *)

(* Run [fibers] (one closure per pid) on a fresh simulator with the SC
   backend at [lag], under the deterministic lowest-pid-first policy:
   each fiber executes to completion before the next starts, so every
   observed staleness is the backend's doing, not the schedule's. *)
let run_sc ~lag ~n fibers =
  let sim = Sim.create ~n () in
  let module P = (val Scs_prims.Sc_prims.make ~lag sim) in
  let fibers = fibers (module P : Scs_prims.Prims_intf.S) in
  List.iteri (fun pid f -> Sim.spawn sim pid f) fibers;
  Sim.run sim (fun s ->
      match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p);
  ()

let test_backend_stale_read_at_lag1 () =
  (* p0's write is globally complete before p1 even starts — yet p1's
     first read may lawfully return the initial value at lag 1 *)
  let observed = ref (-1) in
  run_sc ~lag:1 ~n:2 (fun (module P : Scs_prims.Prims_intf.S) ->
      let x = P.reg ~name:"x" 0 in
      [ (fun () -> P.write x 1); (fun () -> observed := P.read x) ]);
  Alcotest.(check int) "read is one write stale" 0 !observed

let test_backend_lag0_is_atomic () =
  let observed = ref (-1) in
  run_sc ~lag:0 ~n:2 (fun (module P : Scs_prims.Prims_intf.S) ->
      let x = P.reg ~name:"x" 0 in
      [ (fun () -> P.write x 1); (fun () -> observed := P.read x) ]);
  Alcotest.(check int) "lag 0 reads are fresh" 1 !observed

let test_backend_lag_bounds_staleness () =
  (* after three writes, lag 2 may hide at most the last two *)
  let observed = ref (-1) in
  run_sc ~lag:2 ~n:2 (fun (module P : Scs_prims.Prims_intf.S) ->
      let x = P.reg ~name:"x" 0 in
      [
        (fun () -> P.write x 1; P.write x 2; P.write x 3);
        (fun () -> observed := P.read x);
      ]);
  Alcotest.(check int) "staleness bounded by lag" 1 !observed

let test_backend_own_writes_visible () =
  (* own writes are always visible, at any lag *)
  let observed = ref (-1) in
  run_sc ~lag:9 ~n:1 (fun (module P : Scs_prims.Prims_intf.S) ->
      let x = P.reg ~name:"x" 0 in
      [ (fun () -> P.write x 1; P.write x 2; observed := P.read x) ]);
  Alcotest.(check int) "reads own latest write" 2 !observed

let test_backend_views_monotone () =
  (* once a process has observed a value, it never reads an older one:
     p1's second read must repeat 1 even though lag would allow 0 for a
     fresh observer *)
  let first = ref (-1) and second = ref (-1) in
  run_sc ~lag:1 ~n:3 (fun (module P : Scs_prims.Prims_intf.S) ->
      let x = P.reg ~name:"x" 0 in
      [
        (fun () -> P.write x 1; P.write x 1);
        (* two writes: lag 1 exposes at least the first, pinning p1 at 1 *)
        (fun () ->
          first := P.read x;
          second := P.read x);
        (fun () -> ());
      ]);
  Alcotest.(check int) "first read" 1 !first;
  Alcotest.(check int) "no new/old inversion" 1 !second

let test_backend_sb_outcome_reachable () =
  (* the SB outcome — both processes read 0 — is reachable at lag 1 even
     under a fully sequential schedule: exactly the behaviour the
     history-level tests prove non-SC over the whole memory while each
     register stays SC *)
  let r0 = ref (-1) and r1 = ref (-1) in
  run_sc ~lag:1 ~n:2 (fun (module P : Scs_prims.Prims_intf.S) ->
      let x = P.reg ~name:"x" 0 and y = P.reg ~name:"y" 0 in
      [
        (fun () -> P.write x 1; r0 := P.read y);
        (fun () -> P.write y 1; r1 := P.read x);
      ]);
  Alcotest.(check int) "p0 misses p1's write" 0 !r0;
  Alcotest.(check int) "p1 misses p0's write" 0 !r1

let test_backend_rmw_stays_atomic () =
  (* RMW objects are linearizable on the SC backend regardless of lag:
     exactly one TAS winner, FAI never repeats a value *)
  let wins = ref 0 and a = ref (-1) and b = ref (-1) in
  run_sc ~lag:5 ~n:2 (fun (module P : Scs_prims.Prims_intf.S) ->
      let t = P.tas_obj ~name:"t" () in
      let f = P.fai_obj ~name:"f" 0 in
      [
        (fun () ->
          if not (P.test_and_set t) then incr wins;
          a := P.fetch_and_inc f);
        (fun () ->
          if not (P.test_and_set t) then incr wins;
          b := P.fetch_and_inc f);
      ]);
  Alcotest.(check int) "one TAS winner" 1 !wins;
  Alcotest.(check bool) "FAI values distinct" true (!a <> !b)

let test_backend_reset_clears_staleness () =
  (* Sim.reset rewinds the log and views: a pooled reuse must not leak
     the previous run's writes through a stale view *)
  let sim = Sim.create ~n:2 () in
  let module P = (val Scs_prims.Sc_prims.make ~lag:1 sim) in
  let x = P.reg ~name:"x" 0 in
  let observed = ref (-1) in
  Sim.spawn sim 0 (fun () -> P.write x 7);
  Sim.spawn sim 1 (fun () -> observed := P.read x);
  Sim.snapshot sim;
  let seq s = match Sim.runnable s with [] -> Sim.Stop | p :: _ -> Sim.Sched p in
  Sim.run sim seq;
  Alcotest.(check int) "first run stale" 0 !observed;
  Sim.reset sim;
  observed := -1;
  Sim.run sim seq;
  Alcotest.(check int) "identical after reset" 0 !observed

let tests =
  [
    Alcotest.test_case "litmus: stale read is SC, not linearizable" `Quick
      test_stale_read_sc_not_lin;
    Alcotest.test_case "litmus: fresh read is both" `Quick test_fresh_read_both;
    Alcotest.test_case "litmus: new/old inversion is not SC" `Quick
      test_new_old_inversion_not_sc;
    Alcotest.test_case "litmus: independent stale readers are SC" `Quick
      test_stale_pair_reads_sc;
    Alcotest.test_case "litmus: out-of-thin-air value is not SC" `Quick
      test_read_from_nowhere_not_sc;
    Alcotest.test_case "litmus: pending write may or may not take effect" `Quick
      test_pending_write_may_take_effect;
    Alcotest.test_case "SB: global history not SC" `Quick test_sb_not_sc_globally;
    Alcotest.test_case "SB: both per-register projections SC (non-compositionality)"
      `Quick test_sb_projections_are_sc;
    Alcotest.test_case "MP: stale data behind set flag not SC" `Quick test_mp_not_sc;
    Alcotest.test_case "MP: fresh variant linearizable" `Quick
      test_mp_fresh_is_linearizable;
    Alcotest.test_case "backend: remote read stale at lag 1" `Quick
      test_backend_stale_read_at_lag1;
    Alcotest.test_case "backend: lag 0 observationally atomic" `Quick
      test_backend_lag0_is_atomic;
    Alcotest.test_case "backend: staleness bounded by lag" `Quick
      test_backend_lag_bounds_staleness;
    Alcotest.test_case "backend: own writes always visible" `Quick
      test_backend_own_writes_visible;
    Alcotest.test_case "backend: per-process views monotone" `Quick
      test_backend_views_monotone;
    Alcotest.test_case "backend: SB outcome reachable sequentially" `Quick
      test_backend_sb_outcome_reachable;
    Alcotest.test_case "backend: RMW objects stay atomic" `Quick
      test_backend_rmw_stays_atomic;
    Alcotest.test_case "backend: reset rewinds log and views" `Quick
      test_backend_reset_clears_staleness;
  ]
