(* The sharded universal-construction service (lib/shard): routing
   totality and stability across migration epochs, migration safety and
   recovery, the flat-combining batcher, the 1-shard differential
   identity against the bare universal construction, and the
   partitioned-vs-monolithic checker agreement on migration-spanning
   fuzzed histories. All deterministic tests run on the native backend
   single-threaded (no concurrency, so outcomes are reproducible); the
   schedule-sensitive ones go through the simulator fuzz harness. *)

open Scs_spec
module Kv = Scs_shard.Kv
module P = Scs_prims.Native_prims
module S = Scs_shard.Service.Make (P)
module Sc = Scs_consensus.Split_consensus.Make (P)
module Ab = Scs_consensus.Abortable_bakery.Make (P)
module Cc = Scs_consensus.Cas_consensus.Make (P)

(* distinct object names per service instance: qcheck creates many *)
let fresh_name =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "tsvc%d" !c

let mk_svc ?(n = 2) ?(shards = 2) ?(buckets = 4) () =
  S.create ~name:(fresh_name ()) ~n ~shards ~buckets ~capacity:128 ()

(* ---- routing: totality and stability --------------------------------- *)

let prop_bucket_total =
  QCheck.Test.make ~count:500 ~name:"bucket_of_key total, deterministic, in range"
    QCheck.(pair int (int_range 1 64))
    (fun (key, buckets) ->
      let b = Kv.bucket_of_key ~buckets key in
      b = Kv.bucket_of_key ~buckets key && 0 <= b && b < buckets)

(* Every key routes to exactly one shard before, during and after a
   random sequence of freeze/assign table transitions, and each
   transition strictly bumps the bucket's epoch (the stale-router retry
   signal can never be missed). *)
let prop_routing_stable =
  QCheck.Test.make ~count:60 ~name:"routing total across migration epochs"
    QCheck.(small_list (pair (int_range 0 3) (int_range 0 1)))
    (fun transitions ->
      let svc = mk_svc () in
      let rt = S.router svc in
      let check_total () =
        List.for_all
          (fun key ->
            let r = S.R.route rt ~key in
            0 <= r.S.R.owner && r.S.R.owner < 2)
          (List.init 32 (fun k -> k))
      in
      check_total ()
      && List.for_all
           (fun (bucket, dst) ->
             let before = S.R.route_bucket rt ~bucket in
             let frozen = S.R.freeze rt ~bucket in
             let ok_frozen =
               frozen.S.R.frozen && frozen.S.R.epoch > before.S.R.epoch && check_total ()
             in
             let after = S.R.assign rt ~bucket ~shard:dst in
             ok_frozen
             && (not after.S.R.frozen)
             && after.S.R.owner = dst
             && after.S.R.epoch > frozen.S.R.epoch
             && check_total ())
           transitions)

(* ---- frozen buckets: bounded retries, never silent drops ------------- *)

let test_frozen_gives_up () =
  let svc = mk_svc () in
  let h = S.handle svc ~pid:0 in
  (match S.apply h (Kv.Put (0, 7)) with
  | S.Done Kv.Ack -> ()
  | _ -> Alcotest.fail "put should commit");
  let b = Kv.bucket_of_key ~buckets:(S.buckets svc) 0 in
  let owner = (S.R.route_bucket (S.router svc) ~bucket:b).S.R.owner in
  ignore (S.R.freeze (S.router svc) ~bucket:b);
  (* single-threaded: nobody will ever unfreeze, so the bounded retry
     loop must surface Gave_up — the op is reported, not dropped *)
  (match S.apply ~retries:5 h (Kv.Get 0) with
  | S.Gave_up -> ()
  | S.Done r -> Alcotest.failf "frozen bucket answered %s" (Kv.show_resp r));
  (* unfreeze in place: the same client op now commits, exactly once *)
  ignore (S.R.assign (S.router svc) ~bucket:b ~shard:owner);
  match S.apply h (Kv.Get 0) with
  | S.Done (Kv.Value 7) -> ()
  | _ -> Alcotest.fail "value lost across freeze/unfreeze"

(* ---- migration: end-to-end, state transfer, idempotent recovery ------ *)

let test_migration_moves_bucket () =
  let svc = mk_svc ~shards:2 ~buckets:4 () in
  let h = S.handle svc ~pid:0 in
  let mig = S.Migration.create ~name:(fresh_name ()) svc in
  List.iter
    (fun (k, v) ->
      match S.apply h (Kv.Put (k, v)) with
      | S.Done Kv.Ack -> ()
      | _ -> Alcotest.fail "seed put failed")
    [ (0, 10); (4, 14); (1, 11) ];
  let b = Kv.bucket_of_key ~buckets:4 0 in
  let src = (S.R.route_bucket (S.router svc) ~bucket:b).S.R.owner in
  let dst = (src + 1) mod 2 in
  S.Migration.migrate mig ~h ~bucket:b ~dst;
  let r = S.R.route_bucket (S.router svc) ~bucket:b in
  Alcotest.(check int) "bucket re-routed to dst" dst r.S.R.owner;
  Alcotest.(check bool) "bucket unfrozen" false r.S.R.frozen;
  (match S.Migration.phase mig with
  | S.Migration.Idle -> ()
  | _ -> Alcotest.fail "migration did not settle to Idle");
  (* the sealed state moved: reads through the router see every write,
     and a fresh write lands on the new owner *)
  List.iter
    (fun (k, v) ->
      match S.apply h (Kv.Get k) with
      | S.Done (Kv.Value got) when got = v -> ()
      | S.Done r -> Alcotest.failf "key %d: got %s, want %d" k (Kv.show_resp r) v
      | S.Gave_up -> Alcotest.failf "key %d: gave up" k)
    [ (0, 10); (4, 14); (1, 11) ];
  (match S.apply h (Kv.Put (0, 99)) with
  | S.Done Kv.Ack -> ()
  | _ -> Alcotest.fail "post-migration put failed");
  (match S.apply h (Kv.Get 0) with
  | S.Done (Kv.Value 99) -> ()
  | _ -> Alcotest.fail "post-migration value wrong");
  (* recovery on an Idle migration is a no-op *)
  S.Migration.recover mig ~h;
  match S.apply h (Kv.Get 0) with
  | S.Done (Kv.Value 99) -> ()
  | _ -> Alcotest.fail "idle recover disturbed state"

let test_migration_in_place () =
  (* migrating a bucket onto its current owner: freeze, reinstall,
     unfreeze — state intact *)
  let svc = mk_svc ~shards:2 ~buckets:4 () in
  let h = S.handle svc ~pid:0 in
  let mig = S.Migration.create ~name:(fresh_name ()) svc in
  ignore (S.apply h (Kv.Put (2, 22)));
  let b = Kv.bucket_of_key ~buckets:4 2 in
  let owner = (S.R.route_bucket (S.router svc) ~bucket:b).S.R.owner in
  S.Migration.migrate mig ~h ~bucket:b ~dst:owner;
  match S.apply h (Kv.Get 2) with
  | S.Done (Kv.Value 22) -> ()
  | _ -> Alcotest.fail "in-place migration lost the bucket"

(* ---- the flat-combining batcher -------------------------------------- *)

let test_batcher_self_service () =
  let svc = mk_svc () in
  let bat = S.Batcher.create ~name:(fresh_name ()) svc in
  let h = S.handle svc ~pid:0 in
  (match S.Batcher.apply bat ~h (Kv.Put (3, 33)) with
  | S.Done Kv.Ack -> ()
  | _ -> Alcotest.fail "batched put failed");
  (match S.Batcher.apply bat ~h (Kv.Get 3) with
  | S.Done (Kv.Value 33) -> ()
  | _ -> Alcotest.fail "batched get wrong");
  Alcotest.(check bool) "drains counted" true (S.Batcher.batches bat >= 2);
  Alcotest.(check int) "every cell served" 2 (S.Batcher.batched_ops bat)

(* ---- 1-shard differential identity ----------------------------------- *)

(* The same deterministic op sequence through (a) the 1-shard service
   and (b) the bare universal-construction keyspace object must yield
   identical responses op for op: the router/migration layer degenerates
   to the identity when there is nothing to route. *)
let script n =
  List.concat_map
    (fun pid ->
      List.map
        (fun req -> (pid, req))
        [
          Kv.Put (pid mod 4, (10 * pid) + 1);
          Kv.Get (pid mod 4);
          Kv.Put ((pid + 1) mod 4, (10 * pid) + 2);
          Kv.Get ((pid + 1) mod 4);
          Kv.Get ((pid + 2) mod 4);
        ])
    (List.init n (fun p -> p))

let test_s1_identity () =
  let n = 3 in
  let svc = mk_svc ~n ~shards:1 ~buckets:1 () in
  let sh = Array.init n (fun pid -> S.handle svc ~pid) in
  let svc_resps =
    List.map
      (fun (pid, req) ->
        match S.apply sh.(pid) req with
        | S.Done r -> r
        | S.Gave_up -> Alcotest.fail "1-shard service gave up uncontended")
      (script n)
  in
  let stages =
    let spf = Printf.sprintf in
    [
      (fun ~name ~slot -> Sc.instance (Sc.create ~name:(spf "%s.split[%d]" name slot) ()));
      (fun ~name ~slot -> Ab.instance (Ab.create ~name:(spf "%s.bakery[%d]" name slot) ~n ()));
      (fun ~name ~slot -> Cc.instance (Cc.create ~name:(spf "%s.cas[%d]" name slot) ()));
    ]
  in
  let obj =
    S.Uc.Typed.create (Kv.spec ~buckets:1)
      (S.Uc.create ~name:(fresh_name ()) ~n ~max_requests:128 ~stages ())
  in
  let uh = Array.init n (fun pid -> S.Uc.Typed.handle obj ~pid) in
  let gen = Request.Gen.create () in
  let uc_resps =
    List.map (fun (pid, req) -> S.Uc.Typed.apply uh.(pid) (Request.Gen.fresh gen req)) (script n)
  in
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "op %d: service %s <> uc %s" i (Kv.show_resp a) (Kv.show_resp b))
    (List.combine svc_resps uc_resps)

(* ---- fuzzed migration-spanning histories ------------------------------ *)

(* Random schedules over the migrating 2-shard workload, including
   crash and crash-recover faults fired mid-migration. The workload's
   check runs the per-key partitioned linearizability verdict AND the
   monolithic cross-check on every small history — so each clean run is
   one verified instance of the compositionality agreement. *)
let fuzz_specs ~crash ~recover =
  [ { Scs_sim.Fuzz.kind = Scs_sim.Fuzz.Uniform; crash_faults = crash; crash_recover = recover } ]

let mini_fuzz name w ~crash ~recover =
  let report =
    Scs_workload.Fuzz_run.fuzz ~policies:(fuzz_specs ~crash ~recover) ~runs:120
      ~max_violations:1 ~seed:91 w ~n:w.Scs_workload.Fuzz_run.default_n
  in
  match report.Scs_sim.Fuzz.r_violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%s: %s" name v.Scs_sim.Fuzz.v_error

let test_fuzz_migrate () =
  mini_fuzz "sharded-kv-migrate" Scs_workload.Shard_run.sharded_kv_migrate ~crash:false
    ~recover:false

let test_fuzz_migrate_crash () =
  mini_fuzz "sharded-kv-migrate+crash" Scs_workload.Shard_run.sharded_kv_migrate ~crash:true
    ~recover:false

let test_fuzz_migrate_recover () =
  mini_fuzz "sharded-kv-migrate+crash-recover" Scs_workload.Shard_run.sharded_kv_migrate
    ~crash:true ~recover:true

let test_fuzz_s1_vs_uc () =
  (* the differential pair both fuzz clean on the same seeds *)
  mini_fuzz "sharded-kv-s1" Scs_workload.Shard_run.sharded_kv_s1 ~crash:false ~recover:false;
  mini_fuzz "uc-kv" Scs_workload.Shard_run.uc_kv ~crash:false ~recover:false

let props =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~rand:(Test_seed.rand ()) t)
    [ prop_bucket_total; prop_routing_stable ]

let tests =
  props
  @ [
      Alcotest.test_case "frozen bucket: bounded Gave_up, then exactly-once" `Quick
        test_frozen_gives_up;
      Alcotest.test_case "migration moves a bucket with its state" `Quick
        test_migration_moves_bucket;
      Alcotest.test_case "in-place migration preserves state" `Quick test_migration_in_place;
      Alcotest.test_case "batcher self-service drains" `Quick test_batcher_self_service;
      Alcotest.test_case "1-shard service ≡ bare UC (response identity)" `Quick
        test_s1_identity;
      Alcotest.test_case "fuzz: migrating service (uniform)" `Slow test_fuzz_migrate;
      Alcotest.test_case "fuzz: migrating service (crash)" `Slow test_fuzz_migrate_crash;
      Alcotest.test_case "fuzz: migrating service (crash-recover)" `Slow
        test_fuzz_migrate_recover;
      Alcotest.test_case "fuzz: differential pair both clean" `Slow test_fuzz_s1_vs_uc;
    ]
