(* The biased lock of the paper's introduction, on real domains.

   The speculative lock acquires by winning the long-lived speculative TAS
   and releases by resetting it: a lone owner touches only registers,
   while a classic test-and-test-and-set lock pays an atomic RMW on every
   acquisition. We protect a plain (non-atomic) counter with each lock and
   compare correctness and wall-clock time in two regimes:
   - biased: one domain does all the locking (the speculative sweet spot);
   - contended: several domains fight for the lock.

   Run with:  dune exec examples/spinlock.exe *)

module P = Scs_prims.Native_prims
module L = Scs_tas.Locks.Make (P)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let biased_iters = 200_000
let contended_iters = 20_000
let contenders = 4

let run_biased name acquire release =
  let counter = ref 0 in
  let (), dt =
    time (fun () ->
        for _ = 1 to biased_iters do
          acquire ();
          incr counter;
          release ()
        done)
  in
  Printf.printf "  %-12s biased:    %8d increments, %6.1f ns/critical-section\n" name !counter
    (dt /. float_of_int biased_iters *. 1e9);
  assert (!counter = biased_iters)

let run_contended name acquire release =
  let counter = ref 0 in
  let (), dt =
    time (fun () ->
        let ds =
          List.init contenders (fun pid ->
              Domain.spawn (fun () ->
                  for _ = 1 to contended_iters do
                    acquire pid;
                    counter := !counter + 1;
                    release pid
                  done))
        in
        List.iter Domain.join ds)
  in
  Printf.printf "  %-12s contended: %8d increments, %6.1f ns/critical-section%s\n" name !counter
    (dt /. float_of_int (contenders * contended_iters) *. 1e9)
    (if !counter = contenders * contended_iters then "" else "  <- LOST UPDATES");
  assert (!counter = contenders * contended_iters)

let () =
  Printf.printf "spinlock comparison (%d biased ops; %d domains x %d contended ops)\n\n"
    biased_iters contenders contended_iters;
  (* --- speculative (biased) lock --- *)
  let spec = L.Speculative.create ~name:"spec" ~rounds:(biased_iters + 2) () in
  let h0 = L.Speculative.handle spec ~pid:0 in
  run_biased "speculative" (fun () -> L.Speculative.acquire h0) (fun () -> L.Speculative.release h0);
  let spec2 =
    L.Speculative.create ~name:"spec2" ~rounds:((contenders * contended_iters) + 2) ()
  in
  let handles = Array.init contenders (fun pid -> L.Speculative.handle spec2 ~pid) in
  run_contended "speculative"
    (fun pid -> L.Speculative.acquire handles.(pid))
    (fun pid -> L.Speculative.release handles.(pid));
  (* --- test-and-test-and-set lock --- *)
  let ttas = L.Ttas.create ~name:"ttas" () in
  run_biased "ttas" (fun () -> L.Ttas.acquire ttas) (fun () -> L.Ttas.release ttas);
  let ttas2 = L.Ttas.create ~name:"ttas2" () in
  run_contended "ttas" (fun _ -> L.Ttas.acquire ttas2) (fun _ -> L.Ttas.release ttas2);
  print_endline "\nboth locks preserved every update; the speculative lock did so without an \
                 atomic RMW in the biased run (see `scs experiment T7' for the fence census)"
