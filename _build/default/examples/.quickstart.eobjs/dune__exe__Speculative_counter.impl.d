examples/speculative_counter.ml: Array List Objects Policy Printf Request Scs_futures Scs_prims Scs_sim Scs_spec Scs_util Sim Spec_object String Sys
