examples/spinlock.ml: Array Domain List Printf Scs_prims Scs_tas Unix
