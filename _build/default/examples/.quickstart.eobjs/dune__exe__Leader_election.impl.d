examples/leader_election.ml: Array List Policy Printf Scs_composable Scs_history Scs_sim Scs_tas Scs_workload Sim Sys Tas_lin Tas_run Trace
