examples/quickstart.mli:
