examples/spinlock.mli:
