examples/speculative_counter.mli:
