examples/quickstart.ml: Array Domain List Objects Printf Scs_prims Scs_spec Scs_tas
