examples/universal_queue.ml: Array List Objects Policy Printf Request Scs_sim Scs_spec Scs_workload Spec String Sys
