(* A FIFO queue through the composable universal construction (the
   paper's Section 4 machinery, and its future-work object).

   Three simulated processes enqueue and dequeue through a two-stage
   composition: a SplitConsensus-backed instance that is cheap but aborts
   under contention, closed by a wait-free CAS-backed instance. On a
   switch, the full request history is transferred — the Θ(k) state cost
   that motivates the paper's light-weight Section 5 framework.

   Run with:  dune exec examples/universal_queue.exe [seed] *)

open Scs_spec
open Scs_sim

module Run = Scs_workload.Uc_run

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let n = 3 in
  let r =
    Run.run ~seed ~n ~ops_per_proc:4
      ~stages:[ Run.S_split; Run.S_cas ]
      ~policy:(fun rng -> Policy.sticky rng ~switch_prob:0.15)
      ~gen_payload:(fun ~pid ~k ->
        if k mod 2 = 1 then Objects.Enqueue ((10 * pid) + k) else Objects.Dequeue)
      ()
  in
  Printf.printf "universal-construction queue: %d processes, %d requests, seed %d\n\n" n
    (List.length r.Run.responses) seed;
  (* the canonical history is the longest commit history *)
  let canonical =
    List.fold_left
      (fun acc (_, h) -> if List.length h > List.length acc then h else acc)
      [] r.Run.commit_hists
  in
  print_endline "agreed request order (decided by the consensus slots):";
  List.iteri
    (fun i req ->
      let _, resps = Scs_spec.History.run Objects.queue canonical in
      let resp = List.assq req resps in
      Printf.printf "  slot %2d: %s -> %s\n" i
        (Objects.queue.Spec.show_req (Request.payload req))
        (Objects.queue.Spec.show_resp resp))
    canonical;
  print_newline ();
  (match r.Run.switch_lens with
  | [] -> print_endline "no process needed the wait-free stage (low contention)"
  | lens ->
      List.iter
        (fun (pid, len) ->
          Printf.printf
            "p%d switched to the wait-free stage, transferring a %d-request history\n" pid len)
        lens);
  Printf.printf "\nfinal stage per process: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.mapi
             (fun pid s -> Printf.sprintf "p%d:%s" pid (if s = 0 then "split" else "cas"))
             r.Run.final_stages)));
  match Run.check_responses Objects.queue r with
  | Ok () -> print_endline "commit histories are prefix-consistent and replay cleanly"
  | Error e -> Printf.printf "CHECK FAILED: %s\n" e
