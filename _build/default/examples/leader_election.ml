(* Leader election on the deterministic simulator.

   Each round, every process runs test-and-set on a fresh composed
   one-shot instance: the winner is the round's leader. The example shows
   the checker pipeline the repository is built around: after the run we
   verify strict linearizability, the paper's safe-composability notion,
   and print which module resolved each operation.

   Run with:  dune exec examples/leader_election.exe [seed] *)

open Scs_history
open Scs_sim
open Scs_workload

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7 in
  let n = 5 in
  Printf.printf "electing leaders among %d processes (seed %d)\n\n" n seed;
  for round = 1 to 4 do
    let r =
      Tas_run.one_shot ~seed:(seed + round) ~n ~algo:Tas_run.Strict ~policy:Policy.random ()
    in
    let leader =
      match Tas_run.winners r with
      | [ w ] -> w.Tas_run.pid
      | ws -> failwith (Printf.sprintf "expected one leader, got %d" (List.length ws))
    in
    let fast =
      List.length
        (List.filter
           (fun (o : Tas_run.op_record) -> o.Tas_run.stage = Some Scs_tas.One_shot.Fast)
           r.Tas_run.ops)
    in
    let ops = Trace.operations r.Tas_run.outer in
    Printf.printf
      "round %d: leader = p%d | %d/%d ops on registers | linearizable: %b | safely \
       composable: %b | steps: %d\n"
      round leader fast n
      (Tas_lin.check_one_shot ops)
      (Scs_composable.Tas_interp.is_safely_composable r.Tas_run.outer)
      (Sim.total_steps r.Tas_run.sim)
  done;
  print_newline ();
  (* the same election under a crash: the leader-elect dies mid-protocol *)
  let r =
    Tas_run.one_shot ~seed ~n ~algo:Tas_run.Strict ~crashes:[ (0, 4) ] ~policy:Policy.random ()
  in
  let completed = List.length r.Tas_run.ops in
  Printf.printf "crash round: p0 crashed after 4 steps; %d/%d ops still completed, \
                 linearizable: %b\n"
    completed n
    (Tas_lin.check_one_shot (Trace.operations r.Tas_run.outer))
