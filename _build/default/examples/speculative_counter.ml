(* A speculative fetch-and-increment counter — the paper's other
   future-work object — built with the generic light-weight speculative
   object of lib/futures: an O(1) register-only fast path that transfers
   its applied history into a wait-free universal-construction stage when
   contention hits.

   The run prints each process's journey: which values it drew, whether it
   stayed on the fast path, and how much state its switch carried —
   the empirical answer to the paper's closing open question.

   Run with:  dune exec examples/speculative_counter.exe [seed] *)

open Scs_spec
open Scs_sim
open Scs_futures

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11 in
  let n = 3 and ops_per_proc = 4 in
  let sim = Sim.create ~max_steps:20_000_000 ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module SO = Spec_object.Make (P) in
  let counter =
    SO.create ~name:"ctr" ~n ~max_requests:(8 * n * ops_per_proc)
      ~spec:Objects.fetch_and_increment
      ~state_to_requests:(fun v -> List.init v (fun _ -> Objects.Fai_inc))
      ()
  in
  let gen = Request.Gen.create () in
  let drawn = Array.make n [] in
  let journeys = Array.make n (Spec_object.Fast, None) in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let h = SO.handle counter ~pid in
        for _ = 1 to ops_per_proc do
          match SO.apply h (Request.Gen.fresh gen Objects.Fai_inc) with
          | Objects.Fai_value v -> drawn.(pid) <- v :: drawn.(pid)
        done;
        journeys.(pid) <- (SO.stage_of h, SO.switch_len h))
  done;
  Sim.run sim (Policy.sticky (Scs_util.Rng.create seed) ~switch_prob:0.2);
  Printf.printf "speculative fetch-and-increment, %d processes x %d ops (seed %d)\n\n" n
    ops_per_proc seed;
  for pid = 0 to n - 1 do
    let stage, switch = journeys.(pid) in
    Printf.printf "p%d drew %-18s %s\n" pid
      (String.concat "," (List.rev_map string_of_int drawn.(pid)))
      (match (stage, switch) with
      | Spec_object.Fast, _ -> "(register fast path throughout)"
      | Spec_object.Fallback, Some len ->
          Printf.sprintf "(switched to the wait-free stage carrying a %d-request history)" len
      | Spec_object.Fallback, None -> "(switched)")
  done;
  (* uniqueness is the counter's whole point *)
  let all = Array.to_list drawn |> List.concat |> List.sort compare in
  let distinct = List.sort_uniq compare all in
  Printf.printf "\nall %d drawn values distinct: %b\n" (List.length all)
    (List.length all = List.length distinct);
  Printf.printf "total simulated shared-memory steps: %d\n" (Sim.total_steps sim)
