(* Quickstart: the speculative long-lived test-and-set on real domains.

   Four domains repeatedly compete for the object; each winner resets it,
   returning it to the register-only fast path (Figure 1 of the paper).
   Run with:  dune exec examples/quickstart.exe *)

open Scs_spec

(* Algorithms are functors over the primitive layer; on real hardware we
   instantiate them with the Atomic-backed primitives. *)
module P = Scs_prims.Native_prims
module Tas = Scs_tas.Long_lived.Make (P)

let domains = 4
let attempts_per_domain = 10_000

let () =
  let tas =
    Tas.create ~name:"quickstart" ~rounds:((domains * attempts_per_domain) + 2) ()
  in
  let wins = Array.make domains 0 in
  let fast = Array.make domains 0 in
  let workers =
    List.init domains (fun pid ->
        Domain.spawn (fun () ->
            let handle = Tas.handle tas ~pid in
            for _ = 1 to attempts_per_domain do
              let resp, stage = Tas.test_and_set_staged handle in
              if stage = Scs_tas.One_shot.Fast then fast.(pid) <- fast.(pid) + 1;
              match resp with
              | Objects.Winner ->
                  wins.(pid) <- wins.(pid) + 1;
                  (* only the current winner may reset (well-formedness) *)
                  Tas.reset handle
              | Objects.Loser -> ()
            done))
  in
  List.iter Domain.join workers;
  let total_wins = Array.fold_left ( + ) 0 wins in
  let total_fast = Array.fold_left ( + ) 0 fast in
  let total_ops = domains * attempts_per_domain in
  Printf.printf "ops: %d, wins: %d\n" total_ops total_wins;
  Array.iteri (fun pid w -> Printf.printf "  domain %d won %d rounds\n" pid w) wins;
  Printf.printf "operations resolved on the register-only fast path: %d/%d (%.1f%%)\n"
    total_fast total_ops
    (100.0 *. float_of_int total_fast /. float_of_int total_ops)
