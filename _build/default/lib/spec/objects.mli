(** Sequential specifications of the concrete objects used in the paper and
    in the experiment harness. *)

(** {1 One-shot test-and-set} (Section 3: initial state 0; the unique
    process returning 0 is the winner) *)

type tas_req = Test_and_set
type tas_resp = Winner | Loser

val tas : (bool, tas_req, tas_resp) Spec.t

(** {1 Long-lived (resettable) test-and-set} (Section 6.3; well-formed: only
    the current winner resets) *)

type rtas_req = R_test_and_set | R_reset
type rtas_resp = R_winner | R_loser | R_ok

val resettable_tas : (bool, rtas_req, rtas_resp) Spec.t

(** {1 Read/write register} *)

type reg_req = Reg_read | Reg_write of int
type reg_resp = Reg_value of int | Reg_ok

val register : (int, reg_req, reg_resp) Spec.t

(** {1 Fetch-and-increment} (the paper's future-work object) *)

type fai_req = Fai_inc | Fai_read
type fai_resp = Fai_value of int

val fetch_and_increment : (int, fai_req, fai_resp) Spec.t

(** {1 FIFO queue} (the paper's future-work object) *)

type queue_req = Enqueue of int | Dequeue
type queue_resp = Q_ok | Q_dequeued of int option

val queue : (int list, queue_req, queue_resp) Spec.t

(** {1 Binary consensus as a sequential object} *)

type cons_req = Propose of int
type cons_resp = Decided of int

val consensus : (int option, cons_req, cons_resp) Spec.t
