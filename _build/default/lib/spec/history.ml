type 'i t = 'i Request.t list

let ids h = List.map Request.id h

let no_dups h =
  let sorted = List.sort compare (ids h) in
  let rec ok = function a :: (b :: _ as rest) -> a <> b && ok rest | _ -> true in
  ok sorted

let mem id h = List.exists (fun r -> Request.id r = id) h

let rec is_prefix h h' =
  match (h, h') with
  | [], _ -> true
  | _, [] -> false
  | a :: ta, b :: tb -> Request.id a = Request.id b && is_prefix ta tb

let strict_prefix h h' = List.length h < List.length h' && is_prefix h h'

let rec common_prefix h h' =
  match (h, h') with
  | a :: ta, b :: tb when Request.id a = Request.id b -> a :: common_prefix ta tb
  | _ -> []

let run (spec : _ Spec.t) h =
  let state = ref spec.Spec.init in
  let out =
    List.map
      (fun r ->
        let q', resp = spec.Spec.apply !state (Request.payload r) in
        state := q';
        (r, resp))
      h
  in
  (!state, out)

let beta spec h =
  match run spec h with
  | _, [] -> None
  | _, responses ->
      let _, last = List.nth responses (List.length responses - 1) in
      Some last

let beta_at spec h id =
  let _, responses = run spec h in
  List.find_map (fun (r, resp) -> if Request.id r = id then Some resp else None) responses

let final_state spec h = fst (run spec h)

let equiv (spec : _ Spec.t) ~ids:wanted h1 h2 =
  let contains_all h = List.for_all (fun id -> mem id h) wanted in
  contains_all h1 && contains_all h2
  && spec.Spec.equal_state (final_state spec h1) (final_state spec h2)
  && List.for_all
       (fun id ->
         match (beta_at spec h1 id, beta_at spec h2 id) with
         | Some a, Some b -> spec.Spec.equal_resp a b
         | None, None -> true
         | _ -> false)
       wanted

let show show_payload h = "[" ^ String.concat "; " (List.map (Request.show show_payload) h) ^ "]"
