type tas_req = Test_and_set
type tas_resp = Winner | Loser

let tas =
  Spec.make ~name:"test-and-set" ~init:false
    ~apply:(fun set Test_and_set -> if set then (true, Loser) else (true, Winner))
    ~show_req:(fun Test_and_set -> "tas")
    ~show_resp:(function Winner -> "winner" | Loser -> "loser")
    ()

type rtas_req = R_test_and_set | R_reset
type rtas_resp = R_winner | R_loser | R_ok

let resettable_tas =
  Spec.make ~name:"resettable-test-and-set" ~init:false
    ~apply:(fun set req ->
      match req with
      | R_test_and_set -> if set then (true, R_loser) else (true, R_winner)
      | R_reset -> (false, R_ok))
    ~show_req:(function R_test_and_set -> "tas" | R_reset -> "reset")
    ~show_resp:(function R_winner -> "winner" | R_loser -> "loser" | R_ok -> "ok")
    ()

type reg_req = Reg_read | Reg_write of int
type reg_resp = Reg_value of int | Reg_ok

let register =
  Spec.make ~name:"register" ~init:0
    ~apply:(fun v req ->
      match req with Reg_read -> (v, Reg_value v) | Reg_write x -> (x, Reg_ok))
    ~show_req:(function Reg_read -> "read" | Reg_write x -> Printf.sprintf "write %d" x)
    ~show_resp:(function Reg_value v -> Printf.sprintf "=%d" v | Reg_ok -> "ok")
    ()

type fai_req = Fai_inc | Fai_read
type fai_resp = Fai_value of int

let fetch_and_increment =
  Spec.make ~name:"fetch-and-increment" ~init:0
    ~apply:(fun v req ->
      match req with Fai_inc -> (v + 1, Fai_value v) | Fai_read -> (v, Fai_value v))
    ~show_req:(function Fai_inc -> "f&i" | Fai_read -> "read")
    ~show_resp:(function Fai_value v -> Printf.sprintf "=%d" v)
    ()

type queue_req = Enqueue of int | Dequeue
type queue_resp = Q_ok | Q_dequeued of int option

let queue =
  Spec.make ~name:"fifo-queue" ~init:[]
    ~apply:(fun q req ->
      match req with
      | Enqueue x -> (q @ [ x ], Q_ok)
      | Dequeue -> ( match q with [] -> ([], Q_dequeued None) | x :: rest -> (rest, Q_dequeued (Some x))))
    ~show_req:(function Enqueue x -> Printf.sprintf "enq %d" x | Dequeue -> "deq")
    ~show_resp:(function
      | Q_ok -> "ok"
      | Q_dequeued None -> "empty"
      | Q_dequeued (Some x) -> Printf.sprintf "deq=%d" x)
    ()

type cons_req = Propose of int
type cons_resp = Decided of int

let consensus =
  Spec.make ~name:"consensus" ~init:None
    ~apply:(fun st (Propose v) ->
      match st with None -> (Some v, Decided v) | Some d -> (Some d, Decided d))
    ~show_req:(function Propose v -> Printf.sprintf "propose %d" v)
    ~show_resp:(function Decided v -> Printf.sprintf "decided %d" v)
    ()
