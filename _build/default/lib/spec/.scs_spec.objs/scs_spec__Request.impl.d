lib/spec/request.ml: Printf
