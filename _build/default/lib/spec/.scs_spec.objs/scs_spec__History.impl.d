lib/spec/history.ml: List Request Spec String
