lib/spec/spec.mli:
