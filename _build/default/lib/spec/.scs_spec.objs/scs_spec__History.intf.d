lib/spec/history.mli: Request Spec
