lib/spec/spec.ml:
