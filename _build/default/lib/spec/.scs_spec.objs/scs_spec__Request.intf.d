lib/spec/request.mli:
