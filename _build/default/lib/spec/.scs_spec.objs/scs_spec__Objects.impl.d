lib/spec/objects.ml: Printf Spec
