lib/spec/objects.mli: Spec
