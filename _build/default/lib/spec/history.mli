(** Histories: duplicate-free sequences of requests, and the paper's [β]
    evaluation functions.

    [β h] is the last response obtained by applying [h] sequentially to the
    object from its start state; [β (h, m)] is the response matching request
    [m] within [h] (Section 5.1). *)

type 'i t = 'i Request.t list

val no_dups : 'i t -> bool
(** No request id appears twice. *)

val mem : int -> 'i t -> bool
(** Does the request with this id appear? *)

val ids : 'i t -> int list

val is_prefix : 'i t -> 'i t -> bool
(** [is_prefix h h'] — comparison is by request ids. *)

val strict_prefix : 'i t -> 'i t -> bool

val common_prefix : 'i t -> 'i t -> 'i t
(** Longest common prefix (by request ids). *)

val run : ('q, 'i, 'r) Spec.t -> 'i t -> 'q * ('i Request.t * 'r) list
(** Apply the whole history; return final state and per-request responses. *)

val beta : ('q, 'i, 'r) Spec.t -> 'i t -> 'r option
(** Response of the last request; [None] on the empty history. *)

val beta_at : ('q, 'i, 'r) Spec.t -> 'i t -> int -> 'r option
(** [beta_at spec h id] — response matching the request with id [id]. *)

val final_state : ('q, 'i, 'r) Spec.t -> 'i t -> 'q

val equiv : ('q, 'i, 'r) Spec.t -> ids:int list -> 'i t -> 'i t -> bool
(** The equivalence [≡I] of Section 5.1 for the id set [ids]:
    (i) both histories contain every id of [ids];
    (ii) the histories are indistinguishable under all extensions — decided
    here by final-state equality, which is exact for the canonical state
    spaces used in this repository;
    (iii) matching responses agree for every id of [ids]. *)

val show : ('i -> string) -> 'i t -> string
