type 'i t = { id : int; payload : 'i }

let make id payload = { id; payload }
let id r = r.id
let payload r = r.payload
let show show_payload r = Printf.sprintf "#%d:%s" r.id (show_payload r.payload)

module Gen = struct
  type nonrec t = { mutable next : int }

  let create () = { next = 0 }

  let fresh g payload =
    let id = g.next in
    g.next <- id + 1;
    { id; payload }
end
