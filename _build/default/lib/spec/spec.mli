(** Sequential object types.

    The paper defines an object as a quadruple [(Q, s, I, R, Δ)] — states,
    start state, requests, responses and a sequential specification
    [Δ ⊆ Q × I × Q × R]. We represent the (deterministic) specification as
    an [apply] function together with equality and printing support, which
    is what the history machinery, the linearizability checker and the
    universal construction consume. *)

type ('q, 'i, 'r) t = {
  name : string;
  init : 'q;
  apply : 'q -> 'i -> 'q * 'r;
  equal_state : 'q -> 'q -> bool;
  equal_resp : 'r -> 'r -> bool;
  show_req : 'i -> string;
  show_resp : 'r -> string;
}

val make :
  name:string ->
  init:'q ->
  apply:('q -> 'i -> 'q * 'r) ->
  ?equal_state:('q -> 'q -> bool) ->
  ?equal_resp:('r -> 'r -> bool) ->
  ?show_req:('i -> string) ->
  ?show_resp:('r -> string) ->
  unit ->
  ('q, 'i, 'r) t
(** Equalities default to structural equality; printers default to ["_"]. *)
