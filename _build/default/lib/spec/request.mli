(** Uniquely identified requests.

    The paper assumes every request has a unique identifier (histories are
    duplicate-free sequences of requests); we make the identifier explicit
    and carry the payload alongside. *)

type 'i t = { id : int; payload : 'i }

val make : int -> 'i -> 'i t
val id : 'i t -> int
val payload : 'i t -> 'i
val show : ('i -> string) -> 'i t -> string

(** A monotonic id supply for building workloads. *)
module Gen : sig
  type 'i req := 'i t
  type t

  val create : unit -> t
  val fresh : t -> 'i -> 'i req
end
