(** T4 — AbortableBakery (Algorithm 4): Θ(n) solo step complexity (three
    collects per propose); commits in the absence of step contention. *)

open Scs_util
open Scs_sim
open Scs_composable
open Scs_workload

let run () =
  Exp_common.section "T4" "AbortableBakery: Θ(n) solo; commits absent step contention";
  let rows =
    List.map
      (fun n ->
        let s = Cons_run.solo_steps Cons_run.Bakery ~n in
        [ string_of_int n; string_of_int s; Exp_common.f2 (float_of_int s /. float_of_int n) ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Table.print
    ~title:"Solo decision cost (paper: linear in n; the ratio steps/n converges)"
    ~header:[ "n"; "solo steps"; "steps/n" ]
    rows;
  print_newline ();
  (* sequential = no step contention during each op: everyone commits *)
  let commits = ref 0 and total = ref 0 and aborts_rand = ref 0 and total_rand = ref 0 in
  for seed = 1 to 30 do
    let r = Cons_run.run ~seed ~n:8 ~algo:Cons_run.Bakery ~policy:(fun _ -> Policy.sequential ()) () in
    List.iter
      (fun (o : Cons_run.op) ->
        incr total;
        if Outcome.is_commit o.Cons_run.outcome then incr commits)
      r.Cons_run.ops;
    let r = Cons_run.run ~seed ~n:8 ~algo:Cons_run.Bakery ~policy:Policy.random () in
    List.iter
      (fun (o : Cons_run.op) ->
        incr total_rand;
        if Outcome.is_abort o.Cons_run.outcome then incr aborts_rand)
      r.Cons_run.ops
  done;
  Exp_common.note
    (Printf.sprintf
       "n=8: sequential commit rate %d/%d (paper: 100%%); random-schedule abort rate \
        %d/%d (contention can abort)"
       !commits !total !aborts_rand !total_rand)
