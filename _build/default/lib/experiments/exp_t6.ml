(** T6 — Computational power of the base objects: the speculative TAS uses
    only consensus-number ≤ 2 objects (registers + one hardware TAS per
    round), whereas any wait-free generic Abstract needs consensus
    (Proposition 2) — our UC's wait-free closing stage uses CAS. *)

open Scs_util
open Scs_sim
open Scs_spec
open Scs_workload

(* Census of base objects allocated and of RMW operations executed, by
   algorithm, over a contended run. *)
let tas_census ~algo =
  let r = Tas_run.one_shot ~seed:7 ~n:8 ~algo ~policy:Policy.random () in
  let rmw_ops = List.fold_left (fun acc (o : Tas_run.op_record) -> acc + o.Tas_run.rmws) 0 r.Tas_run.ops in
  (r.Tas_run.registers - r.Tas_run.rmw_objects, r.Tas_run.rmw_objects, rmw_ops)

let uc_census () =
  let sim = Sim.create ~max_steps:20_000_000 ~n:4 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module UO = Scs_universal.Uc_object.Make (P) in
  let module SC = Scs_consensus.Split_consensus.Make (P) in
  let module CC = Scs_consensus.Cas_consensus.Make (P) in
  let stages =
    [
      (fun ~name ~slot:_ -> SC.instance (SC.create ~name ()));
      (fun ~name ~slot:_ -> CC.instance (CC.create ~name ()));
    ]
  in
  let chain = UO.create ~name:"uc" ~n:4 ~max_requests:48 ~stages () in
  let obj = UO.Typed.create Objects.tas chain in
  let gen = Scs_spec.Request.Gen.create () in
  for pid = 0 to 3 do
    Sim.spawn sim pid (fun () ->
        let h = UO.Typed.handle obj ~pid in
        ignore (UO.Typed.apply h (Scs_spec.Request.Gen.fresh gen Objects.Test_and_set)))
  done;
  Sim.run sim (Policy.random (Rng.create 11));
  ( Sim.objects_allocated sim - Sim.rmw_objects_allocated sim,
    Sim.rmw_objects_allocated sim,
    Sim.total_rmws sim )

let run () =
  Exp_common.section "T6" "Consensus power of base objects per implementation";
  let speculative = tas_census ~algo:Tas_run.Composed in
  let strict = tas_census ~algo:Tas_run.Strict in
  let hardware = tas_census ~algo:Tas_run.Hardware in
  let tournament = tas_census ~algo:Tas_run.Tournament in
  let uc = uc_census () in
  let row name (regs, rmw_objs, rmw_ops) power =
    [ name; string_of_int regs; string_of_int rmw_objs; string_of_int rmw_ops; power ]
  in
  Table.print
    ~title:
      "Base-object census, one-shot TAS among contending processes (paper: the composed \
       TAS needs consensus number ≤ 2; a wait-free generic Abstract solves consensus)"
    ~header:[ "implementation"; "registers"; "RMW objects"; "RMW ops executed"; "max consensus number needed" ]
    [
      row "speculative A1∘A2" speculative "2 (one TAS)";
      row "strict A1∘A2" strict "2 (one TAS)";
      row "hardware TAS" hardware "2";
      row "AGTV tournament" tournament "1 (registers only)";
      row "universal construction (TAS type)" uc "∞ (CAS closing stage)";
    ]
