(** F1 — Figure 1 dynamics: the long-lived object resolves operations in
    the register-only module under low contention, switches forward to the
    hardware module as contention grows, and the reset back edge returns
    it to speculation. Rendered as a contention sweep. *)

open Scs_sim
open Scs_util
open Scs_workload

let sweep_point ~switch_prob =
  let ops = ref [] in
  let hw_rounds = ref 0 and rounds = ref 0 in
  for seed = 1 to 20 do
    let r =
      Tas_run.long_lived ~seed ~n:4 ~ops_per_proc:6
        ~policy:(fun rng -> Policy.sticky rng ~switch_prob)
        ()
    in
    ops := r.Tas_run.ops @ !ops;
    (* per-round resolution: was the round's winner decided in hardware? *)
    let winners = Hashtbl.create 16 in
    List.iter
      (fun (o : Tas_run.op_record) ->
        if o.Tas_run.resp = Scs_spec.Objects.Winner then
          Hashtbl.replace winners o.Tas_run.round o.Tas_run.stage)
      r.Tas_run.ops;
    Hashtbl.iter
      (fun _ stage ->
        incr rounds;
        if stage = Some Scs_tas.One_shot.Fallback then incr hw_rounds)
      winners
  done;
  let all = !ops in
  let hw_round_frac =
    if !rounds = 0 then 0.0 else float_of_int !hw_rounds /. float_of_int !rounds
  in
  (Exp_common.fast_fraction all, Exp_common.mean_steps all, Exp_common.mean_rmws all,
   hw_round_frac)

let probs = [ 0.0; 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 ]

let run () =
  Exp_common.section "F1"
    "Figure 1 dynamics: fast-path share and cost vs contention (long-lived, n=4)";
  let points = List.map (fun p -> (p, sweep_point ~switch_prob:p)) probs in
  let rows =
    List.map
      (fun (p, (fast, steps, rmws, hw_rounds)) ->
        [
          Printf.sprintf "%.2f" p;
          Printf.sprintf "%.0f%%" (100.0 *. fast);
          Printf.sprintf "%.0f%%" (100.0 *. hw_rounds);
          Exp_common.f2 steps;
          Exp_common.f2 rmws;
        ])
      points
  in
  Table.print
    ~title:
      "Contention dial = probability the scheduler switches process each step (paper: \
       speculation resolves ops on registers at low contention; hardware absorbs high \
       contention; resets keep returning the object to the fast module)"
    ~header:
      [ "contention"; "fast-path ops"; "rounds won in hardware"; "mean steps/op"; "mean RMWs/op" ]
    rows;
  print_newline ();
  print_string
    (Chart.series ~width:46 ~title:"Rounds won in the hardware module vs contention (%)" ()
       (List.map
          (fun (p, (_, _, _, hw)) -> (Printf.sprintf "p=%.2f" p, 100.0 *. hw))
          points));
  print_newline ();
  print_string
    (Chart.series ~width:46 ~title:"Mean RMW operations per op vs contention" ()
       (List.map (fun (p, (_, _, rmws, _)) -> (Printf.sprintf "p=%.2f" p, rmws)) points))
