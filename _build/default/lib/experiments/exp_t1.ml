(** T1 — Module A1: constant step and space complexity; aborts only under
    step contention (Algorithm 1, Lemma 6).

    Paper claim: A1 has O(1) step and space complexity independent of n,
    and never aborts in the absence of step contention. *)

open Scs_util
open Scs_sim
open Scs_composable

let solo_profile ~n =
  let sim = Sim.create ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A1 = Scs_tas.A1.Make (P) in
  let a1 = A1.create ~name:"a1" () in
  Sim.spawn sim 0 (fun () -> ignore (A1.apply a1 ~pid:0 None));
  Sim.run sim (Policy.solo 0);
  (Sim.steps_of sim 0, Sim.objects_allocated sim, Sim.rmws_of sim 0, Sim.raw_fences_of sim 0)

let abort_census ~n ~runs =
  (* random schedules; classify aborts: first-person (the aborting op saw
     another process step inside its interval) vs solidarity (somebody
     else experienced the contention — the behaviour Appendix B's
     solo-fast variant removes); and check no abort happens in an
     execution with no step contention at all (Lemma 6) *)
  let aborts = ref 0 and ops = ref 0 and solidarity = ref 0 and lemma6_violations = ref 0 in
  for seed = 1 to runs do
    let sim = Sim.create ~n () in
    Sim.set_trace sim true;
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module A1 = Scs_tas.A1.Make (P) in
    let a1 = A1.create ~name:"a1" () in
    let intervals = ref [] in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          let t0 = Sim.clock sim in
          let outcome = A1.apply a1 ~pid None in
          intervals :=
            (outcome, { Detect.pid; start_ts = t0; end_ts = Sim.clock sim }) :: !intervals)
    done;
    Sim.run sim (Policy.random (Rng.create seed));
    let mem = Sim.trace_arr sim in
    let any_contention =
      List.exists (fun (_, iv) -> Detect.step_contended mem iv) !intervals
    in
    let any_abort =
      List.exists (fun (o, _) -> match o with Outcome.Abort _ -> true | _ -> false) !intervals
    in
    if any_abort && not any_contention then incr lemma6_violations;
    List.iter
      (fun (outcome, iv) ->
        incr ops;
        match outcome with
        | Outcome.Abort _ ->
            incr aborts;
            if not (Detect.step_contended mem iv) then incr solidarity
        | Outcome.Commit _ -> ())
      !intervals
  done;
  (!ops, !aborts, !solidarity, !lemma6_violations)

let run () =
  Exp_common.section "T1" "Module A1: O(1) steps and space; aborts need step contention";
  let rows =
    List.map
      (fun n ->
        let steps, objs, rmws, raws = solo_profile ~n in
        [
          string_of_int n;
          string_of_int steps;
          string_of_int objs;
          string_of_int rmws;
          string_of_int raws;
        ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Table.print
    ~title:"Solo operation cost vs number of processes (paper: constant, registers only)"
    ~header:[ "n"; "solo steps"; "registers"; "RMWs"; "RAW fences" ]
    rows;
  print_newline ();
  let rows =
    List.map
      (fun n ->
        let ops, aborts, solidarity, lemma6 = abort_census ~n ~runs:200 in
        [
          string_of_int n;
          string_of_int ops;
          string_of_int aborts;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int aborts /. float_of_int ops);
          string_of_int solidarity;
          string_of_int lemma6;
        ])
      [ 2; 4; 8 ]
  in
  Table.print
    ~title:
      "Abort census over 200 random schedules (Lemma 6: no abort in a contention-free        execution; solidarity aborts are the behaviour Appendix B removes)"
    ~header:
      [ "n"; "ops"; "aborts"; "abort rate"; "solidarity aborts"; "Lemma 6 violations" ]
    rows
