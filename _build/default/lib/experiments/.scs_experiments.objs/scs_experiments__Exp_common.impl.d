lib/experiments/exp_common.ml: List Printf Scs_tas Scs_workload Tas_run
