lib/experiments/registry.mli:
