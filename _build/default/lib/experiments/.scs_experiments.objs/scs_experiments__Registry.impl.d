lib/experiments/registry.ml: Exp_f1 Exp_f2 Exp_t1 Exp_t2 Exp_t3 Exp_t4 Exp_t5 Exp_t6 Exp_t7 Exp_t8 Exp_t9 List String
