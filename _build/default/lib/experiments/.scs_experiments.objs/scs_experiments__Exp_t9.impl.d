lib/experiments/exp_t9.ml: Exp_common List Objects Policy Request Rng Scs_futures Scs_prims Scs_sim Scs_spec Scs_util Scs_workload Sim Spec_object Table Tas_run Uc_run
