lib/experiments/exp_t5.ml: Exp_common List Objects Policy Printf Scs_sim Scs_spec Scs_util Scs_workload Table Tas_run Uc_run
