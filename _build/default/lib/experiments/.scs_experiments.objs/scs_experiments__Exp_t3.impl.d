lib/experiments/exp_t3.ml: Cons_run Exp_common List Outcome Policy Printf Scs_composable Scs_sim Scs_util Scs_workload Table
