lib/experiments/exp_t8.ml: Exp_common List Policy Printf Rng Scs_sim Scs_tas Scs_util Scs_workload Sim Table Tas_run
