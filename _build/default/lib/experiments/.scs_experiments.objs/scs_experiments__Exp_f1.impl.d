lib/experiments/exp_f1.ml: Chart Exp_common Hashtbl List Policy Printf Scs_sim Scs_spec Scs_tas Scs_util Scs_workload Table Tas_run
