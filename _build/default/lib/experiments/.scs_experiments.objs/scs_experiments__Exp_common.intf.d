lib/experiments/exp_common.mli: Scs_workload
