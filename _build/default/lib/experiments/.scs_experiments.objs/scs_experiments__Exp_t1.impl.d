lib/experiments/exp_t1.ml: Detect Exp_common List Outcome Policy Printf Rng Scs_composable Scs_prims Scs_sim Scs_tas Scs_util Sim Table
