lib/experiments/exp_t7.ml: Exp_common List Policy Scs_sim Scs_util Scs_workload Table Tas_run
