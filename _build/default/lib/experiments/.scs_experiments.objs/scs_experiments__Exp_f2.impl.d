lib/experiments/exp_f2.ml: Domain Exp_common List Objects Printf Scs_prims Scs_spec Scs_tas Scs_util Table Unix
