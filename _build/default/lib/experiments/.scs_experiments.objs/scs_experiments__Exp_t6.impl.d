lib/experiments/exp_t6.ml: Exp_common List Objects Policy Rng Scs_consensus Scs_prims Scs_sim Scs_spec Scs_universal Scs_util Scs_workload Sim Table Tas_run
