lib/experiments/exp_t2.ml: Exp_common List Policy Printf Scs_sim Scs_tas Scs_util Scs_workload Table Tas_run
