(** T5 — The cost of generic composition: a universal-construction switch
    transfers the full request history (Θ(k) after k requests), whereas
    the semantics-aware TAS transfers a single switch value (O(1))
    (Section 4 "Complexity Cost" vs Section 5/6). *)

open Scs_util
open Scs_spec
open Scs_sim
open Scs_workload

let uc_switch_lens ~ops_per_proc =
  let lens = ref [] in
  for seed = 1 to 25 do
    let r =
      Uc_run.run ~seed ~n:3 ~ops_per_proc
        ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
        ~policy:(fun rng -> Policy.sticky rng ~switch_prob:0.05)
        ~gen_payload:(fun ~pid:_ ~k:_ -> Objects.Fai_inc)
        ()
    in
    lens := List.map snd r.Uc_run.switch_lens @ !lens
  done;
  !lens

let run () =
  Exp_common.section "T5"
    "State transferred on a module switch: generic (UC) vs semantics-aware (TAS)";
  let rows =
    List.map
      (fun ops ->
        let lens = uc_switch_lens ~ops_per_proc:ops in
        let mean =
          match lens with
          | [] -> 0.0
          | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
        in
        [
          string_of_int (3 * ops);
          string_of_int (List.length lens);
          Exp_common.f2 mean;
          string_of_int (List.fold_left max 0 lens);
          "1 (switch token)";
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.print
    ~title:
      "Abort-history length at switch, universal construction (split→cas), 3 processes, \
       sticky schedules (paper: Θ(committed requests) for UC; O(1) for the TAS modules)"
    ~header:
      [ "total requests"; "switches observed"; "mean |h_abort|"; "max |h_abort|"; "TAS transfer" ]
    rows;
  print_newline ();
  (* per-operation step cost comparison: UC TAS vs composed TAS, solo *)
  let uc_solo_steps =
    let r =
      Uc_run.run ~n:3 ~ops_per_proc:1
        ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
        ~policy:(fun _ -> Policy.solo 0)
        ~gen_payload:(fun ~pid:_ ~k:_ -> Objects.Fai_inc)
        ()
    in
    match r.Uc_run.responses with (_, _, steps) :: _ -> steps | [] -> 0
  in
  let tas_solo_steps =
    let r = Tas_run.one_shot ~n:3 ~algo:Tas_run.Composed ~policy:(fun _ -> Policy.solo 0) () in
    match r.Tas_run.ops with o :: _ -> o.Tas_run.steps | [] -> 0
  in
  Exp_common.note
    (Printf.sprintf
       "Solo operation cost: universal construction %d steps (announce via snapshot + \
        consensus) vs semantics-aware composed TAS %d steps — the generic construction's \
        overhead the paper's Section 5 framework removes."
       uc_solo_steps tas_solo_steps)
