(** Shared helpers for the experiment harness. Each experiment module
    prints the table(s)/series recorded in EXPERIMENTS.md and is
    addressable by id from both [bench/main.exe] and the [scs] CLI. *)

val section : string -> string -> unit
(** [section id title] prints the experiment banner. *)

val note : string -> unit

val mean_steps : Scs_workload.Tas_run.op_record list -> float
val mean_rmws : Scs_workload.Tas_run.op_record list -> float
val mean_raws : Scs_workload.Tas_run.op_record list -> float

val fast_fraction : Scs_workload.Tas_run.op_record list -> float
(** Fraction of operations resolved by the register-only module. *)

val f2 : float -> string
val f1 : float -> string
