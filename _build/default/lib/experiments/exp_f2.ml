(** F2 — "Speculation pays off" on the native backend: throughput of
    acquire/release cycles on real domains ([Atomic] + [Domain]), for the
    speculative long-lived TAS against the raw hardware TAS.

    Absolute numbers depend on the host (and on how many cores the
    container exposes); the paper-relevant shape is that the speculative
    object matches or beats a hardware-only object while a single domain
    uses it, and degrades gracefully to hardware cost under parallelism. *)

open Scs_util
open Scs_spec
module P = Scs_prims.Native_prims
module LL = Scs_tas.Long_lived.Make (P)
module B = Scs_tas.Baselines.Make (P)

let ops_per_domain = 20_000

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run_domains ~domains f =
  let ds = List.init domains (fun pid -> Domain.spawn (fun () -> f pid)) in
  List.iter Domain.join ds

(* win-or-lose cycles on the speculative long-lived object: winners reset *)
let speculative_cycle ~strict ~domains () =
  let ll = LL.create ~strict ~name:"f2" ~rounds:((domains * ops_per_domain) + 2) () in
  run_domains ~domains (fun pid ->
      let h = LL.handle ll ~pid in
      for _ = 1 to ops_per_domain do
        if LL.test_and_set h = Objects.Winner then LL.reset h
      done)

let hardware_cycle ~domains () =
  let hw = B.Hardware.create ~name:"f2hw" () in
  run_domains ~domains (fun pid ->
      for _ = 1 to ops_per_domain do
        if B.Hardware.test_and_set hw ~pid = Objects.Winner then B.Hardware.reset hw
      done)

let mops ~domains seconds =
  float_of_int (domains * ops_per_domain) /. seconds /. 1.0e6

let run () =
  Exp_common.section "F2" "Native throughput: speculative vs hardware TAS cycles";
  Printf.printf "recommended domains on this host: %d\n\n" (Domain.recommended_domain_count ());
  let rows =
    List.concat_map
      (fun domains ->
        let t_spec = time (speculative_cycle ~strict:false ~domains) in
        let t_strict = time (speculative_cycle ~strict:true ~domains) in
        let t_hw = time (hardware_cycle ~domains) in
        [
          [
            string_of_int domains;
            Printf.sprintf "%.2f" (mops ~domains t_spec);
            Printf.sprintf "%.2f" (mops ~domains t_strict);
            Printf.sprintf "%.2f" (mops ~domains t_hw);
            Printf.sprintf "%.2f" (t_hw /. t_spec);
          ];
        ])
      [ 1; 2; 4 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Mops/s over %d TAS(+reset) cycles per domain (paper: register-only speculation \
          is never worse than hardware when uncontended)"
         ops_per_domain)
    ~header:[ "domains"; "speculative"; "strict"; "hardware"; "spec/hw speedup" ]
    rows
