(** T7 — Fence complexity ("Laws of Order", the paper's reference [7]):
    TAS-like objects need at least one RAW or AWAR per operation. The
    speculative TAS pays exactly one RAW on the uncontended fast path —
    optimal — while the hardware baseline pays one AWAR always. *)

open Scs_sim
open Scs_util
open Scs_workload

let solo_fences ~algo =
  let r = Tas_run.one_shot ~n:4 ~algo ~policy:(fun _ -> Policy.solo 0) () in
  match r.Tas_run.ops with
  | o :: _ -> (o.Tas_run.raws, o.Tas_run.rmws)
  | [] -> (0, 0)

let contended_fences ~algo =
  let raws = ref 0 and rmws = ref 0 and ops = ref 0 in
  for seed = 1 to 50 do
    let r = Tas_run.one_shot ~seed ~n:6 ~algo ~policy:Policy.random () in
    List.iter
      (fun (o : Tas_run.op_record) ->
        incr ops;
        raws := !raws + o.Tas_run.raws;
        rmws := !rmws + o.Tas_run.rmws)
      r.Tas_run.ops
  done;
  ( float_of_int !raws /. float_of_int !ops,
    float_of_int !rmws /. float_of_int !ops )

let run () =
  Exp_common.section "T7" "Fence complexity per operation (RAW + AWAR; optimum ≥ 1)";
  let rows =
    List.map
      (fun algo ->
        let raw_solo, awar_solo = solo_fences ~algo in
        let raw_c, awar_c = contended_fences ~algo in
        [
          Tas_run.algo_name algo;
          string_of_int raw_solo;
          string_of_int awar_solo;
          string_of_int (raw_solo + awar_solo);
          Exp_common.f2 raw_c;
          Exp_common.f2 awar_c;
        ])
      [ Tas_run.Composed; Tas_run.Strict; Tas_run.Solo_fast; Tas_run.Hardware; Tas_run.Tournament ]
  in
  Table.print
    ~title:
      "Fences per operation (paper: the composed TAS is fence-optimal — exactly one RAW \
       uncontended, no AWAR; hardware pays one AWAR per op)"
    ~header:
      [ "algorithm"; "solo RAW"; "solo AWAR"; "solo total"; "contended RAW/op"; "contended AWAR/op" ]
    rows
