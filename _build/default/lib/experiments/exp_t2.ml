(** T2 — The composed speculative TAS (Theorem 4): wait-free, constant
    steps when uncontended, O(1) switch cost, negligible composition
    overhead compared to the baselines. *)

open Scs_util
open Scs_sim
open Scs_workload

let algo_row ~algo ~n ~policy_name ~policy =
  let all_ops = ref [] in
  for seed = 1 to 50 do
    let r = Tas_run.one_shot ~seed ~n ~algo ~policy () in
    all_ops := r.Tas_run.ops @ !all_ops
  done;
  let ops = !all_ops in
  [
    Tas_run.algo_name algo;
    policy_name;
    string_of_int n;
    Exp_common.f2 (Exp_common.mean_steps ops);
    Exp_common.f2 (Exp_common.mean_rmws ops);
    Exp_common.f2 (Exp_common.mean_raws ops);
    Printf.sprintf "%.0f%%" (100.0 *. Exp_common.fast_fraction ops);
  ]

let switch_cost ~n =
  (* steps spent after the abort of A1 (the A2 part), for operations that
     fell back: entering A2 costs O(1) *)
  let fallback_steps = ref [] in
  for seed = 1 to 80 do
    let r = Tas_run.one_shot ~seed ~n ~algo:Tas_run.Composed ~policy:Policy.random () in
    List.iter
      (fun (o : Tas_run.op_record) ->
        if o.Tas_run.stage = Some Scs_tas.One_shot.Fallback then
          fallback_steps := o.Tas_run.steps :: !fallback_steps)
      r.Tas_run.ops
  done;
  match !fallback_steps with
  | [] -> (0.0, 0)
  | l ->
      ( float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l),
        List.fold_left max 0 l )

let run () =
  Exp_common.section "T2" "Composed TAS: step complexity by contention, vs baselines";
  let seq_name = "sequential" and rnd_name = "random" in
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun algo ->
            [
              algo_row ~algo ~n ~policy_name:seq_name ~policy:(fun _ -> Policy.sequential ());
              algo_row ~algo ~n ~policy_name:rnd_name ~policy:Policy.random;
            ])
          [ Tas_run.Composed; Tas_run.Strict; Tas_run.Hardware; Tas_run.Tournament ])
      [ 4; 16 ]
  in
  Table.print
    ~title:
      "Mean per-operation cost over 50 seeds (paper: composed ≈ hardware-free when \
       uncontended; tournament pays Θ(log n) always; hardware pays 1 AWAR always)"
    ~header:[ "algorithm"; "schedule"; "n"; "steps"; "RMWs"; "RAWs"; "fast-path %" ]
    rows;
  print_newline ();
  let rows =
    List.map
      (fun n ->
        let mean, mx = switch_cost ~n in
        [ string_of_int n; Exp_common.f2 mean; string_of_int mx ])
      [ 2; 4; 8; 16; 32 ]
  in
  Table.print
    ~title:
      "Total steps of operations that switched to the hardware module (paper: switch cost \
       is a small constant, independent of n)"
    ~header:[ "n"; "mean steps (abort+A2)"; "max" ]
    rows
