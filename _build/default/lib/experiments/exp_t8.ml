(** T8 — The solo-fast variant (Appendix B): a process reverts to the
    hardware object only when {e itself} encountering step contention; a
    process whose interval merely overlaps somebody else's contention
    keeps the fast path. *)

open Scs_util
open Scs_sim
open Scs_workload

(* Compare fallback rates: the paper variant aborts in "solidarity" (the
   aborted flag diverts everyone), the solo-fast variant only on first-
   person interference. We engineer schedules where two processes collide
   and a third runs after the collision. *)
let third_party_fallbacks ~algo ~runs =
  let third_fell_back = ref 0 and applicable = ref 0 in
  for seed = 1 to runs do
    let rng = Rng.create seed in
    let r =
      Tas_run.one_shot ~seed ~n:3 ~algo
        ~policy:(fun _ ->
          (* interleave p0/p1 tightly while they live, then run p2 alone *)
          fun sim ->
            let runnable = Sim.runnable sim in
            let racers = List.filter (fun p -> p < 2) runnable in
            match racers with
            | _ :: _ -> Sim.Sched (Rng.pick_list rng racers)
            | [] -> (
                match runnable with [] -> Sim.Stop | p :: _ -> Sim.Sched p))
        ()
    in
    (* p2 ran effectively alone after the collision *)
    match
      List.find_opt (fun (o : Tas_run.op_record) -> o.Tas_run.pid = 2) r.Tas_run.ops
    with
    | Some o ->
        incr applicable;
        if o.Tas_run.stage = Some Scs_tas.One_shot.Fallback then incr third_fell_back
    | None -> ()
  done;
  (!third_fell_back, !applicable)

let solo_cost ~algo =
  let r = Tas_run.one_shot ~n:4 ~algo ~policy:(fun _ -> Policy.solo 0) () in
  match r.Tas_run.ops with o :: _ -> (o.Tas_run.steps, o.Tas_run.rmws) | [] -> (0, 0)

let run () =
  Exp_common.section "T8" "Solo-fast variant: hardware only on first-person contention";
  let rows =
    List.map
      (fun (name, algo) ->
        let fell, app = third_party_fallbacks ~algo ~runs:120 in
        let steps, rmws = solo_cost ~algo in
        [
          name;
          Printf.sprintf "%d/%d" fell app;
          string_of_int steps;
          string_of_int rmws;
        ])
      [
        ("paper A1∘A2", Tas_run.Composed);
        ("solo-fast (App. B)", Tas_run.Solo_fast);
      ]
  in
  Table.print
    ~title:
      "Third process arriving after a 2-way collision: does it pay for the hardware? \
       (paper: the solo-fast variant keeps such bystanders on registers)"
    ~header:[ "variant"; "bystander fallbacks"; "solo steps"; "solo RMWs" ]
    rows
