(** T9 (extension) — Categorising objects by the cost of safe composition,
    the paper's closing open question ("can we categorize objects based on
    the cost of their safely composable implementations, such as ... the
    amount of state that must be transferred between the components?").

    Three implementations per object:
    - the generic universal construction (Θ(n) announce/scan per op,
      Θ(history) transferred on switch);
    - the generic light-weight speculative object of lib/futures (O(1)
      fast-path steps for {e any} type, but the switch still transfers the
      applied history — the replay table cannot be compressed away when
      responses depend on long-past operations);
    - the semantics-aware TAS of Section 6 (O(1) fast path {e and} O(1)
      switch state).

    The empirical answer: light-weight composition buys constant {e time}
    for every type, but constant {e switch state} only where the
    semantics admit a bounded summary — TAS yes, queues and counters no. *)

open Scs_util
open Scs_spec
open Scs_sim
open Scs_workload
open Scs_futures

let queue_switch_lens ~ops_per_proc =
  let lens = ref [] in
  for seed = 1 to 25 do
    let sim = Sim.create ~max_steps:20_000_000 ~n:3 () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module SO = Spec_object.Make (P) in
    let obj =
      SO.create ~name:"q" ~n:3 ~max_requests:(8 * 3 * ops_per_proc) ~spec:Objects.queue
        ~state_to_requests:(fun q -> List.map (fun x -> Objects.Enqueue x) q)
        ()
    in
    let gen = Request.Gen.create () in
    for pid = 0 to 2 do
      Sim.spawn sim pid (fun () ->
          let h = SO.handle obj ~pid in
          for k = 1 to ops_per_proc do
            let payload =
              if k mod 2 = 1 then Objects.Enqueue ((100 * pid) + k) else Objects.Dequeue
            in
            ignore (SO.apply h (Request.Gen.fresh gen payload))
          done;
          match SO.switch_len h with Some l -> lens := l :: !lens | None -> ())
    done;
    Sim.run sim (Policy.sticky (Rng.create seed) ~switch_prob:0.08)
  done;
  !lens

let fast_solo_queue_steps () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module SO = Spec_object.Make (P) in
  let obj =
    SO.create ~name:"q" ~n:1 ~max_requests:8 ~spec:Objects.queue
      ~state_to_requests:(fun q -> List.map (fun x -> Objects.Enqueue x) q)
      ()
  in
  Sim.spawn sim 0 (fun () ->
      let h = SO.handle obj ~pid:0 in
      ignore (SO.apply h (Request.make 0 (Objects.Enqueue 1))));
  Sim.run sim (Policy.solo 0);
  Sim.steps_of sim 0

let uc_solo_queue_steps () =
  let r =
    Uc_run.run ~n:3 ~ops_per_proc:1
      ~stages:[ Uc_run.S_cas ]
      ~policy:(fun _ -> Policy.solo 0)
      ~gen_payload:(fun ~pid:_ ~k:_ -> Objects.Enqueue 1)
      ()
  in
  match r.Uc_run.responses with (_, _, steps) :: _ -> steps | [] -> 0

let tas_solo_steps () =
  let r = Tas_run.one_shot ~n:3 ~algo:Tas_run.Composed ~policy:(fun _ -> Policy.solo 0) () in
  match r.Tas_run.ops with o :: _ -> o.Tas_run.steps | [] -> 0

let run () =
  Exp_common.section "T9"
    "Extension: the cost of safe composition, by object (the paper's open question)";
  let mean l =
    if l = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let rows =
    List.map
      (fun ops ->
        let lens = queue_switch_lens ~ops_per_proc:ops in
        [
          string_of_int (3 * ops);
          string_of_int (List.length lens);
          Exp_common.f2 (mean lens);
          string_of_int (List.fold_left max 0 lens);
        ])
      [ 2; 4; 8; 16 ]
  in
  Table.print
    ~title:
      "Light-weight speculative QUEUE: history transferred at switch grows with committed \
       work (the replay table is incompressible for queues)"
    ~header:[ "total requests"; "switches"; "mean |transfer|"; "max |transfer|" ]
    rows;
  print_newline ();
  Table.print
    ~title:"Fast-path solo cost and switch state, by implementation"
    ~header:[ "object / implementation"; "solo steps/op"; "switch state" ]
    [
      [ "TAS, semantics-aware (Sec. 6)"; string_of_int (tas_solo_steps ()); "O(1): one token" ];
      [
        "queue, light-weight speculative (ext.)";
        string_of_int (fast_solo_queue_steps ());
        "Θ(applied history)";
      ];
      [
        "queue, universal construction (Sec. 4)";
        string_of_int (uc_solo_queue_steps ());
        "Θ(full history)";
      ];
    ];
  print_newline ();
  Exp_common.note
    "Reading: O(1)-time fast paths exist generically (the splitter-owned state register \
     needs 10 steps for any type), but O(1)-state switches only where the semantics bound \
     the recovery information — which is exactly what separates test-and-set from queues \
     and counters.";
  Exp_common.note
    "The naive O(state) transfer that drops the replay table is non-linearizable: see the \
     'state-only transfer breaks' test (an aborted-but-effective request is re-applied)."
