open Scs_workload

let section id title =
  Printf.printf "\n==== %s: %s ====\n\n" id title

let note s = Printf.printf "%s\n" s

let mean field ops =
  match ops with
  | [] -> 0.0
  | _ ->
      float_of_int (List.fold_left (fun acc o -> acc + field o) 0 ops)
      /. float_of_int (List.length ops)

let mean_steps ops = mean (fun (o : Tas_run.op_record) -> o.Tas_run.steps) ops
let mean_rmws ops = mean (fun (o : Tas_run.op_record) -> o.Tas_run.rmws) ops
let mean_raws ops = mean (fun (o : Tas_run.op_record) -> o.Tas_run.raws) ops

let fast_fraction ops =
  match ops with
  | [] -> 0.0
  | _ ->
      let fast =
        List.length
          (List.filter
             (fun (o : Tas_run.op_record) -> o.Tas_run.stage = Some Scs_tas.One_shot.Fast)
             ops)
      in
      float_of_int fast /. float_of_int (List.length ops)

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
