(** T3 — SplitConsensus (Algorithm 3): O(1) solo step complexity; commits
    in the absence of interval contention; aborts possible otherwise. *)

open Scs_util
open Scs_sim
open Scs_composable
open Scs_workload

let commit_rate ~algo ~n ~policy ~runs =
  let commits = ref 0 and total = ref 0 in
  for seed = 1 to runs do
    let r = Cons_run.run ~seed ~n ~algo ~policy () in
    List.iter
      (fun (o : Cons_run.op) ->
        incr total;
        match o.Cons_run.outcome with
        | Outcome.Commit (Some _) -> incr commits
        | Outcome.Commit None | Outcome.Abort _ -> ())
      r.Cons_run.ops
  done;
  100.0 *. float_of_int !commits /. float_of_int !total

let run () =
  Exp_common.section "T3" "SplitConsensus: O(1) solo; commits absent interval contention";
  let rows =
    List.map
      (fun n ->
        [ string_of_int n; string_of_int (Cons_run.solo_steps Cons_run.Split ~n) ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Table.print ~title:"Solo decision cost (paper: constant)" ~header:[ "n"; "solo steps" ] rows;
  print_newline ();
  let rows =
    List.map
      (fun n ->
        [
          string_of_int n;
          Printf.sprintf "%.1f%%"
            (commit_rate ~algo:Cons_run.Split ~n ~policy:(fun _ -> Policy.sequential ())
               ~runs:30);
          Printf.sprintf "%.1f%%"
            (commit_rate ~algo:Cons_run.Split ~n ~policy:Policy.random ~runs:100);
        ])
      [ 2; 4; 8 ]
  in
  Table.print
    ~title:
      "Commit rate (paper: 100% without interval contention; may abort under contention)"
    ~header:[ "n"; "sequential"; "random schedules" ]
    rows
