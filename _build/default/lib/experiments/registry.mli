(** Experiment registry: id → title → runner, shared by [bench/main.exe]
    and the [scs experiment] CLI command. *)

type t = { id : string; title : string; run : unit -> unit }

val all : t list
val find : string -> t option
val run_all : unit -> unit
