(** Checking the Abstract properties (Definition 1).

    An Abstract trace is the sequence of invocations, inits, commits and
    aborts of one Abstract instance, where each commit/abort carries the
    history the implementation returned and each init carries the history
    the client passed in. The checker verifies the four safety properties:

    - {b Commit Order}: any two commit histories are prefix-ordered;
    - {b Abort Ordering}: every commit history is a (non-strict) prefix of
      every abort history;
    - {b Validity}: histories are duplicate-free; the history returned for
      request [m] contains [m]; every request in a returned history was
      invoked (directly, or as part of an init history) before the carrying
      operation returned;
    - {b Init Ordering}: the longest common prefix of init histories is a
      prefix of every commit and abort history.

    Termination and Non-Triviality are progress properties and are checked
    by the scheduler-level tests instead. *)

open Scs_spec

type 'i event =
  | Invoke of { seq : int; pid : int; req : 'i Request.t }
  | Init of { seq : int; pid : int; req : 'i Request.t; hist : 'i History.t }
  | Commit of { seq : int; pid : int; req : 'i Request.t; hist : 'i History.t }
  | Abort of { seq : int; pid : int; req : 'i Request.t; hist : 'i History.t }

type validity_timing =
  | Per_index
      (** every request of a commit/abort history must be invoked before
          that response returns (the strict reading of Definition 1; holds
          for the universal construction, whose histories only contain
          previously announced requests) *)
  | Global
      (** requests of a returned history must be invoked somewhere in the
          trace. Interpretations built for the TAS modules (Lemmas 4–5)
          fold the whole execution into one shared abort/init history, so a
          response returned early may name requests invoked later; this is
          the reading under which the paper's constructions go through. *)

val check : ?validity:validity_timing -> 'i event list -> (unit, string) result
(** [Error reason] pinpoints the first violated property.
    [validity] defaults to [Per_index]. *)

val is_ok : ?validity:validity_timing -> 'i event list -> bool
